package mclg

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section plus ablations of the design choices called out in
// DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks use a small suite scale so the whole harness completes in
// minutes; pass -benchtime=1x for a single-shot regeneration of every
// artifact.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"mclg/internal/abacus"
	"mclg/internal/baselines/chow"
	"mclg/internal/baselines/wang"
	"mclg/internal/cluster"
	"mclg/internal/core"
	"mclg/internal/dense"
	"mclg/internal/design"
	"mclg/internal/eco"
	"mclg/internal/experiments"
	"mclg/internal/gen"
	"mclg/internal/gp"
	"mclg/internal/lcp"
	"mclg/internal/metrics"
	"mclg/internal/qp"
	"mclg/internal/refine"
	"mclg/internal/render"
	"mclg/internal/sparse"
	"mclg/internal/tetris"
	"mclg/internal/window"
)

const benchScale = 0.01

// benchSuite is the benchmark subset used by the per-table benches: one
// high-density, one medium, one large.
var benchSuite = []string{"des_perf_1", "fft_2", "superblue19"}

func genBench(b *testing.B, name string, scale float64) *design.Design {
	b.Helper()
	e, err := gen.FindEntry(name)
	if err != nil {
		b.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkTable1IllegalCells regenerates Table 1: the MMSIM legalization
// and its illegal-cell count per benchmark.
func BenchmarkTable1IllegalCells(b *testing.B) {
	for _, name := range benchSuite {
		b.Run(name, func(b *testing.B) {
			base := genBench(b, name, benchScale)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				stats, err := core.New(core.Options{}).Legalize(d)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Illegal), "illegal-cells")
				b.ReportMetric(100*float64(stats.Illegal)/float64(len(d.Cells)), "illegal-%")
			}
		})
	}
}

// BenchmarkTable2Legalizers regenerates Table 2: displacement / ΔHPWL /
// runtime for the four methods.
func BenchmarkTable2Legalizers(b *testing.B) {
	methods := []struct {
		name string
		run  func(d *design.Design) error
	}{
		{"DAC16", chow.Legalize},
		{"DAC16-Imp", func(d *design.Design) error { return chow.LegalizeImproved(d, chow.Options{}) }},
		{"ASPDAC17", func(d *design.Design) error {
			if err := wang.Legalize(d, wang.Options{}); err != nil {
				return err
			}
			_, err := tetris.Allocate(d)
			return err
		}},
		{"Ours", func(d *design.Design) error {
			_, err := core.New(core.Options{}).Legalize(d)
			return err
		}},
	}
	for _, name := range benchSuite {
		base := genBench(b, name, benchScale)
		for _, m := range methods {
			b.Run(fmt.Sprintf("%s/%s", name, m.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d := base.Clone()
					if err := m.run(d); err != nil {
						b.Fatal(err)
					}
					disp := metrics.MeasureDisplacement(d)
					b.ReportMetric(disp.TotalSites, "disp-sites")
					b.ReportMetric(100*metrics.DeltaHPWL(d), "ΔHPWL-%")
				}
			})
		}
	}
}

// BenchmarkWorkersScaling measures the parallel hot path: the full pipeline
// on the largest suite benchmark at fixed worker counts plus all cores.
// Every variant produces the identical placement (the determinism contract
// of internal/par), so only wall-clock may differ; compare against the
// serial numbers in BENCH_baseline.json with cmd/benchdiff. On a 4+ core
// machine workers=all is the speedup check over workers=1.
func BenchmarkWorkersScaling(b *testing.B) {
	base := genBench(b, "superblue19", benchScale)
	for _, w := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				if _, err := core.New(core.Options{Workers: w}).Legalize(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleRowMMSIMvsPlaceRow regenerates the Section 5.3 experiment:
// the MMSIM and Abacus PlaceRow on the single-height suite variants.
func BenchmarkSingleRowMMSIMvsPlaceRow(b *testing.B) {
	for _, name := range []string{"fft_2", "superblue19"} {
		e, err := gen.FindEntry(name)
		if err != nil {
			b.Fatal(err)
		}
		base, err := gen.Generate(gen.SingleHeightVariant(gen.SuiteSpec(e, benchScale)))
		if err != nil {
			b.Fatal(err)
		}
		if err := core.AssignRows(base); err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/MMSIM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				p, err := core.BuildProblem(d, 1000)
				if err != nil {
					b.Fatal(err)
				}
				x, _, err := core.SolveMMSIM(p, core.New(core.Options{Eps: 1e-6}).Opts)
				if err != nil {
					b.Fatal(err)
				}
				core.Restore(p, x)
			}
		})
		b.Run(name+"/PlaceRow", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				if err := abacus.PlaceRowsAssigned(d, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLambdaSweep is the E7 ablation: the subcell penalty λ vs.
// solver effort and residual mismatch.
func BenchmarkLambdaSweep(b *testing.B) {
	base := genBench(b, "fft_1", benchScale)
	for _, lambda := range []float64{1, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("lambda=%g", lambda), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				stats, err := core.New(core.Options{Lambda: lambda}).Legalize(d)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(stats.MaxSubcellMismatch, "mismatch")
				b.ReportMetric(float64(stats.Iterations), "iterations")
			}
		})
	}
}

// BenchmarkSolverComparison is the E8 ablation: MMSIM vs. Lemke vs. PGS vs.
// active-set QP on random strictly-diagonally-dominant LCPs.
func BenchmarkSolverComparison(b *testing.B) {
	n := 60
	rng := rand.New(rand.NewSource(77))
	// SPD, strictly diagonally dominant A.
	ad := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64() * 0.3
			ad.Set(i, j, v)
			ad.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		s := 1.0
		for j := 0; j < n; j++ {
			if j != i {
				s += abs(ad.At(i, j))
			}
		}
		ad.Set(i, i, s)
	}
	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64() * 3
	}
	sb := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := ad.At(i, j); v != 0 {
				sb.Add(i, j, v)
			}
		}
	}
	prob := &lcp.Problem{A: sb.Build(), Q: q}

	b.Run("MMSIM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp, err := lcp.NewDiagSplitting(prob.A, 0.9)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := lcp.MMSIM(prob, sp, lcp.Options{Eps: 1e-10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Lemke", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lcp.Lemke(ad, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PGS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lcp.PGS(ad, q, 1e-10, 100000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ActiveSetQP", func(b *testing.B) {
		// Equivalent bound-constrained QP: min ½xᵀAx + qᵀx s.t. x >= 0.
		g := dense.New(n, n)
		for i := 0; i < n; i++ {
			g.Set(i, i, 1)
		}
		p := &qp.Problem{H: ad, P: q, G: g, Hv: make([]float64, n)}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = 1
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := qp.Solve(p, x0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOmegaAblation compares the paper's Ω = I against the scaled
// variants on a mixed-height instance (DESIGN.md "key design decisions").
func BenchmarkOmegaAblation(b *testing.B) {
	base := genBench(b, "fft_2", benchScale)
	cases := []struct {
		name string
		opts core.Options
	}{
		{"paper-omega-I", core.Options{PaperOmega: true}},
		{"omegaR-0.01", core.Options{OmegaR: 0.01}},
		{"scaled-omegaX", core.Options{ScaledOmegaX: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				stats, err := core.New(tc.opts).Legalize(d)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Iterations), "iterations")
			}
		})
	}
}

// BenchmarkWarmStartAblation measures the warm start from GP positions
// against the cold (zero) start of a literal Algorithm 1 reading.
func BenchmarkWarmStartAblation(b *testing.B) {
	base := genBench(b, "superblue19", benchScale)
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"warm", core.Options{}},
		{"cold", core.Options{ColdStart: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				stats, err := core.New(tc.opts).Legalize(d)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Iterations), "iterations")
			}
		})
	}
}

// BenchmarkSchurAblation compares the tridiagonal Schur approximation D
// against a diagonal-only approximation (DESIGN.md ablation: D = diag vs
// tridiag). The diagonal variant reuses the generic diagonal splitting on
// the assembled LCP matrix.
func BenchmarkSchurAblation(b *testing.B) {
	base := genBench(b, "fft_2", benchScale)
	b.Run("tridiag-D", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := base.Clone()
			stats, err := core.New(core.Options{}).Legalize(d)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.Iterations), "iterations")
		}
	})
	b.Run("structured-build-only", func(b *testing.B) {
		d := base.Clone()
		if err := core.AssignRows(d); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			p, err := core.BuildProblem(d, 1000)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.NewStructuredSplitting(p, 0.5, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure5Render regenerates the Figure 5 artifact: legalize fft_2
// and render the layout with displacement vectors to SVG.
func BenchmarkFigure5Render(b *testing.B) {
	base := genBench(b, "fft_2", benchScale)
	d := base.Clone()
	if _, err := core.New(core.Options{}).Legalize(d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := render.SVG(d, &sink, render.Options{Displacement: true}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sink), "svg-bytes")
	}
}

// BenchmarkTetrisAllocate isolates the Tetris-like allocation stage.
func BenchmarkTetrisAllocate(b *testing.B) {
	base := genBench(b, "superblue19", benchScale)
	pre := base.Clone()
	if _, err := core.New(core.Options{SkipTetris: true}).Legalize(pre); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := pre.Clone()
		if _, err := tetris.Allocate(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMSIMIteration measures the per-iteration cost of the structured
// splitting (the O(n) claim of DESIGN.md).
func BenchmarkMMSIMIteration(b *testing.B) {
	for _, name := range []string{"fft_2", "superblue19"} {
		b.Run(name, func(b *testing.B) {
			d := genBench(b, name, benchScale)
			if err := core.AssignRows(d); err != nil {
				b.Fatal(err)
			}
			p, err := core.BuildProblem(d, 1000)
			if err != nil {
				b.Fatal(err)
			}
			iters := 0
			opts := core.New(core.Options{}).Opts
			opts.MaxIter = 0
			opts.OnIter = func(k int, dz float64) { iters++ }
			b.ReportAllocs()
			b.ResetTimer()
			// One full solve per b.N batch; report time per iteration.
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SolveMMSIM(p, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if iters > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(iters), "ns/iter")
			}
		})
	}
}

// BenchmarkGenerateSuite measures the synthetic benchmark generator.
func BenchmarkGenerateSuite(b *testing.B) {
	e, err := gen.FindEntry("superblue19")
	if err != nil {
		b.Fatal(err)
	}
	spec := gen.SuiteSpec(e, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentsTable1 runs the full Table 1 harness at a tiny scale
// as an end-to-end smoke benchmark.
func BenchmarkExperimentsTable1(b *testing.B) {
	cfg := experiments.Config{Scale: 0.002, Benchmarks: []string{"fft_2", "pci_bridge32_b"}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

type countingWriter int

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkRefine measures the MrDP-style detailed-placement extension on a
// legalized design (extension beyond the paper; see internal/refine).
func BenchmarkRefine(b *testing.B) {
	base := genBench(b, "fft_2", benchScale)
	legal := base.Clone()
	if _, err := core.New(core.Options{}).Legalize(legal); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		obj  refine.Objective
	}{
		{"displacement", refine.Displacement},
		{"hpwl", refine.HPWL},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := legal.Clone()
				res, err := refine.Refine(d, refine.Options{Objective: tc.obj})
				if err != nil {
					b.Fatal(err)
				}
				if res.Initial > 0 {
					b.ReportMetric(100*(res.Initial-res.Final)/res.Initial, "improvement-%")
				}
			}
		})
	}
}

// BenchmarkNoiseSensitivity runs the E9 crossover sweep: how the method
// ranking changes as the global placement degrades.
func BenchmarkNoiseSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NoiseSensitivity("fft_2", 0.004, []float64{0.5, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		if r := rows[len(rows)-1]; r.Disp[experiments.MethodOurs] > 0 {
			b.ReportMetric(r.Disp[experiments.MethodOurs]/r.Disp[experiments.MethodASPDAC17],
				"ours/aspdac-at-8x-noise")
		}
	}
}

// BenchmarkGlobalPlace measures the analytic global placer substrate.
func BenchmarkGlobalPlace(b *testing.B) {
	e, err := gen.FindEntry("fft_2")
	if err != nil {
		b.Fatal(err)
	}
	base, err := gen.Generate(gen.SuiteSpec(e, benchScale))
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range base.Cells {
		c.GX, c.GY = base.Core.Center().X, base.Core.Center().Y
		c.X, c.Y = c.GX, c.GY
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		res, err := gp.Place(d, gp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overflow, "overflow")
		b.ReportMetric(float64(res.CGIters), "cg-iters")
	}
}

// BenchmarkBoundaryMode compares the paper's relaxed-boundary flow against
// the exact right-boundary extension on a dense design.
func BenchmarkBoundaryMode(b *testing.B) {
	base := genBench(b, "des_perf_1", benchScale)
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"relaxed-paper", core.Options{}},
		{"bound-right", core.Options{BoundRight: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				stats, err := core.New(tc.opts).Legalize(d)
				if err != nil {
					b.Fatal(err)
				}
				disp := metrics.MeasureDisplacement(d)
				b.ReportMetric(disp.TotalSites, "disp-sites")
				b.ReportMetric(float64(stats.Illegal), "illegal-cells")
			}
		})
	}
}

// BenchmarkScaleSweep documents how MMSIM iteration count and wall time
// grow with instance size (the runtime-shape deviation EXPERIMENTS.md
// discusses): per-iteration cost is O(n), but the iteration count grows
// with row length because multiplier information diffuses along constraint
// chains.
func BenchmarkScaleSweep(b *testing.B) {
	for _, scale := range []float64{0.005, 0.01, 0.02, 0.04} {
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			base := genBench(b, "fft_2", scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := base.Clone()
				stats, err := core.New(core.Options{}).Legalize(d)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Iterations), "iterations")
				b.ReportMetric(float64(stats.NumVars), "vars")
			}
		})
	}
}

// BenchmarkMMSIMSteadyState pins the steady-state cost of one MMSIM
// iteration on a caller-owned workspace: after the warm-up step the hot
// loop must run at 0 allocs/op (the alloc-smoke CI gate feeds this
// benchmark to benchdiff -gate allocs).
func BenchmarkMMSIMSteadyState(b *testing.B) {
	d := genBench(b, "fft_2", benchScale)
	if err := core.AssignRows(d); err != nil {
		b.Fatal(err)
	}
	p, err := core.BuildProblem(d, 1000)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := core.NewStructuredSplittingOmegaR(p, 0.5, 0.5, 1)
	if err != nil {
		b.Fatal(err)
	}
	prob := &lcp.Problem{A: p.AssembleLCPMatrix(), Q: p.LCPVector()}
	ws := lcp.NewWorkspace(p.NumVars + p.NumCons)
	sv, err := lcp.NewSolver(prob, sp, lcp.Options{Workers: 1, Workspace: ws, MaxIter: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	// One warm-up step lets lazy runtime state (stack growth) settle, as
	// it would after the first iteration of any production solve.
	if _, err := sv.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmResolve measures the sweep-mode pattern mclgd serves: a
// WarmState primed by one cold solve accelerates re-solves of a slightly
// perturbed instance. The warm-iters/cold-iters metrics expose the
// iteration savings the warm seed buys.
func BenchmarkWarmResolve(b *testing.B) {
	base := genBench(b, "fft_2", benchScale)
	warm := core.NewWarmState()
	lg := core.New(core.Options{Workers: 1, SkipTetris: true})
	lg.Opts.Warm = warm
	if _, err := lg.Legalize(base.Clone()); err != nil {
		b.Fatal(err)
	}
	pert := base.Clone()
	rng := rand.New(rand.NewSource(99))
	for _, c := range pert.Cells {
		if !c.Fixed {
			c.GX += (rng.Float64()*2 - 1) * 1e-3
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var warmIters int
	for i := 0; i < b.N; i++ {
		st, err := lg.Legalize(pert.Clone())
		if err != nil {
			b.Fatal(err)
		}
		warmIters = st.Iterations
	}
	b.StopTimer()
	b.ReportMetric(float64(warmIters), "warm-iters")
	b.ReportMetric(float64(warm.ColdIterations()), "cold-iters")
}

// BenchmarkECOApply measures the streaming-ECO steady state: a live session
// absorbing a 5-cell move batch through dirty-window re-legalization (only
// the touched row bands re-solve, warm-seeded per run). Two extra metrics
// put the number in context against BenchmarkWarmResolve's cold path:
// cold-ns is the wall time of one cold full re-legalization of the same
// design measured in setup on the same machine, and eco-vs-cold is the
// per-apply ratio — the serving-latency target is < 0.25. The large
// benchmark is the honest one here: dirty-window cost scales with the
// touched bands while the cold solve scales with the whole design.
func BenchmarkECOApply(b *testing.B) {
	base := genBench(b, "superblue19", benchScale)
	ctx := context.Background()
	s, err := eco.Create(ctx, "bench", base, eco.Options{Core: core.Options{Workers: 1}})
	if err != nil {
		b.Fatal(err)
	}
	d := s.Design()
	var ids []int
	for _, c := range d.Cells {
		if !c.Fixed {
			ids = append(ids, c.ID)
			if len(ids) == 5 {
				break
			}
		}
	}
	// Two alternating target sets so every iteration genuinely moves cells.
	batch := func(phase int) []eco.Delta {
		out := make([]eco.Delta, 0, len(ids))
		for i, id := range ids {
			out = append(out, eco.Delta{
				Op: eco.OpMove, Cell: id,
				X: d.Core.Lo.X + float64(4+2*i+10*phase)*d.SiteW,
				Y: d.Core.Lo.Y + float64(1+(i+phase)%3)*d.RowHeight,
			})
		}
		return out
	}

	// Cold reference: a full from-scratch re-legalization of the same design.
	cold := base.Clone()
	t0 := time.Now()
	if _, err := core.NewResilient(core.ResilientOptions{Base: core.Options{Workers: 1}}).LegalizeContext(ctx, cold); err != nil {
		b.Fatal(err)
	}
	coldNS := float64(time.Since(t0).Nanoseconds())

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(ctx, batch(i%2)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(coldNS, "cold-ns")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/coldNS, "eco-vs-cold")
}

// BenchmarkClusterDispatch measures the coordinator's routing overhead for a
// windowed job shipped over the shard protocol. The workers' shard caches
// are warmed first, so each iteration pays ring lookup, HTTP round-trip, and
// wire decode per window — not the solves themselves. A fresh coordinator
// per iteration keeps its local result cache cold; the reported
// window-dispatch-ns metric is the per-window cost of remote routing.
func BenchmarkClusterDispatch(b *testing.B) {
	base := genBench(b, "fft_2", 0.004)
	opts := window.Options{
		Cascade:       core.ResilientOptions{Base: core.Options{Workers: 1}},
		WindowRows:    4,
		ContextRows:   2,
		WindowTimeout: 2 * time.Minute,
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		wk := cluster.NewWorker(cluster.WorkerConfig{Solves: 2})
		srv := httptest.NewServer(wk.Handler())
		defer srv.Close()
		addrs = append(addrs, srv.URL)
	}

	// Warm the worker caches so iterations measure dispatch, not solving.
	warm := cluster.NewCoordinator(cluster.CoordinatorConfig{Peers: addrs})
	st, err := warm.DispatchWindows(context.Background(), base.Clone(), opts)
	if err != nil {
		b.Fatal(err)
	}
	if st.Windows == 0 {
		b.Fatal("no windows to dispatch")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Peers: addrs})
		if _, err := coord.DispatchWindows(context.Background(), base.Clone(), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(st.Windows), "window-dispatch-ns")
}
