package mclg

// End-to-end test for the cluster: a real coordinator mclgd sharding window
// solves over two real worker mclgd processes, driven by the real mclg
// client. Verifies the determinism contract at the process level (cluster
// placement bit-identical to a standalone windowed run), survival of a
// worker SIGKILL mid-job, and the coordinator's cluster metrics surface.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestE2EClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mclgd := buildCmd(t, "mclgd")
	mclg := buildCmd(t, "mclg")

	// drainLogs goroutines keep the stderr pipes from filling; they exit on
	// their own once the deferred kills close the pipes.
	w1, w1url, w1sc := startDaemon(t, mclgd, "mclgd worker listening", "-role", "worker")
	defer func() { _ = w1.Process.Kill() }()
	_ = drainLogs(w1sc)
	w2, w2url, w2sc := startDaemon(t, mclgd, "mclgd worker listening", "-role", "worker")
	defer func() { _ = w2.Process.Kill() }()
	_ = drainLogs(w2sc)

	const windowRows = "4"
	coord, coordURL, csc := startDaemon(t, mclgd, "mclgd listening",
		"-role", "coordinator", "-peers", w1url+","+w2url,
		"-windows", "-window-rows", windowRows)
	defer func() { _ = coord.Process.Kill() }()
	_ = drainLogs(csc)

	type rep struct {
		Legal   bool   `json:"legal"`
		PosHash string `json:"pos_hash"`
	}
	run := func(args ...string) rep {
		t.Helper()
		cmd := exec.Command(mclg, append(args, "-json")...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("mclg %v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		var r rep
		if err := json.Unmarshal(out, &r); err != nil {
			t.Fatalf("mclg %v: unparsable -json output: %v\n%s", args, err, out)
		}
		if !r.Legal || r.PosHash == "" {
			t.Fatalf("mclg %v: not a legal result: %+v", args, r)
		}
		return r
	}

	// The determinism contract, end to end: for each benchmark the cluster
	// (coordinator + 2 workers, shards over HTTP) must produce the placement
	// digest of a standalone windowed run with the same partition.
	trio := []struct {
		bench string
		scale string
	}{
		{"des_perf_1", "0.004"},
		{"fft_2", "0.004"},
		{"superblue19", "0.002"},
	}
	for _, bm := range trio {
		remote := run("-server", coordURL, "-bench", bm.bench, "-scale", bm.scale)
		local := run("-bench", bm.bench, "-scale", bm.scale, "-windows", "-window-rows", windowRows)
		if remote.PosHash != local.PosHash {
			t.Errorf("%s@%s: cluster pos_hash %s != standalone windowed %s",
				bm.bench, bm.scale, remote.PosHash, local.PosHash)
		}
	}

	// Kill a worker mid-job: a slow windowed job is in flight when worker 1
	// dies without warning (SIGKILL, no drain). The coordinator must fail
	// over and still deliver the bit-identical placement.
	type result struct {
		rep rep
		err error
		out string
	}
	slowArgs := []string{"-server", coordURL, "-bench", "superblue19", "-scale", "0.02", "-eps", "1e-6", "-json"}
	inFlight := make(chan result, 1)
	go func() {
		out, err := exec.Command(mclg, slowArgs...).Output()
		var r rep
		if err == nil {
			err = json.Unmarshal(out, &r)
		}
		inFlight <- result{r, err, string(out)}
	}()
	time.Sleep(500 * time.Millisecond) // let shard solves reach the workers
	if err := w1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	var crashed result
	select {
	case crashed = <-inFlight:
	case <-time.After(120 * time.Second):
		t.Fatal("windowed job never completed after the worker crash")
	}
	if crashed.err != nil {
		t.Fatalf("job failed across the worker crash: %v\n%s", crashed.err, crashed.out)
	}
	if !crashed.rep.Legal {
		t.Errorf("job across the worker crash returned an illegal result: %+v", crashed.rep)
	}
	local := run("-bench", "superblue19", "-scale", "0.02", "-eps", "1e-6",
		"-windows", "-window-rows", windowRows)
	if crashed.rep.PosHash != local.PosHash {
		t.Errorf("worker crash changed the placement: cluster %s != standalone %s",
			crashed.rep.PosHash, local.PosHash)
	}

	// The coordinator's metrics must show real shard traffic: every worker
	// was routed to, and the cluster series are all present.
	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, series := range []string{
		"mclgd_cluster_routed_total",
		"mclgd_cluster_hedged_total",
		"mclgd_cluster_failovers_total",
		"mclgd_cluster_local_fallbacks_total",
		"mclgd_cluster_cache_hits_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("coordinator /metrics missing %s", series)
		}
	}
	routed := 0
	for _, wurl := range []string{w1url, w2url} {
		needle := `mclgd_cluster_routed_total{worker="` + wurl + `"}`
		found := false
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, needle) {
				found = true
				var n int
				if _, err := fmt.Sscanf(line[len(needle):], "%d", &n); err == nil {
					routed += n
				}
			}
		}
		if !found {
			t.Errorf("coordinator /metrics has no routed counter for %s", wurl)
		}
	}
	if routed == 0 {
		t.Error("coordinator routed no window jobs to its workers")
	}
}
