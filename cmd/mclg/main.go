// Command mclg legalizes a mixed-cell-height placement.
//
// Input is either a Bookshelf .aux file (-aux) or a named benchmark from
// the synthetic suite (-bench, with -scale). The legalized placement can be
// written back as Bookshelf (-out) and quality metrics are printed; -json
// swaps the human summary for the machine-readable report schema shared
// with the mclgd daemon. With -server the job is submitted to a running
// mclgd instead of being solved locally.
//
//	mclg -bench fft_2 -scale 0.01
//	mclg -aux design.aux -method ours -out legal.aux
//	mclg -bench fft_2 -scale 0.01 -json
//	mclg -server http://localhost:8080 -bench fft_2 -scale 0.01
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mclg/internal/audit"
	"mclg/internal/baselines/chow"
	"mclg/internal/baselines/wang"
	"mclg/internal/bookshelf"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/gp"
	"mclg/internal/metrics"
	"mclg/internal/refine"
	"mclg/internal/serve"
	"mclg/internal/serve/report"
	"mclg/internal/tetris"
	"mclg/internal/window"
)

// info is where human-readable chatter goes: stdout normally, stderr under
// -json so stdout carries exactly one JSON document.
var info io.Writer = os.Stdout

func main() {
	var (
		auxPath    = flag.String("aux", "", "Bookshelf .aux input file")
		benchName  = flag.String("bench", "", "synthetic suite benchmark name (e.g. fft_2)")
		scale      = flag.Float64("scale", 0.01, "suite scale factor (1 = paper-size)")
		method     = flag.String("method", "ours", "legalizer: ours | dac16 | dac16imp | aspdac17")
		outPath    = flag.String("out", "", "write legalized placement as Bookshelf .aux")
		lambda     = flag.Float64("lambda", 1000, "subcell equality penalty λ")
		beta       = flag.Float64("beta", 0.5, "MMSIM splitting constant β*")
		theta      = flag.Float64("theta", 0.5, "MMSIM splitting constant θ*")
		eps        = flag.Float64("eps", 1e-4, "MMSIM convergence tolerance")
		autoTheta  = flag.Bool("autotheta", false, "clamp θ* below the Theorem-2 bound")
		autoTune   = flag.Bool("autotune", false, "auto-tune θ* per problem structure by ranking candidates on the estimated iteration spectral radius (supersedes -autotheta; deterministic)")
		refineObj  = flag.String("refine", "", "post-legalization refinement objective: disp | hpwl")
		checkOnly  = flag.Bool("check", false, "only check legality of the input placement and exit")
		boundRight = flag.Bool("boundright", false, "solve with exact right-boundary constraints (extension)")
		runGP      = flag.Bool("gp", false, "re-derive the global placement from the netlist (internal/gp) before legalizing")
		verbose    = flag.Bool("v", false, "print per-stage details")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		resilient  = flag.Bool("resilient", false, "with -method ours: run the fallback cascade (mmsim -> retuned -> pgs -> greedy)")
		workers    = flag.Int("workers", 0, "worker goroutines for the hot stages: 0 = all cores, 1 = serial (any value gives identical output)")
		serverURL  = flag.String("server", "", "submit the job to a running mclgd at this base URL instead of solving locally")
		retryN     = flag.Int("retry", 0, "with -server: retry a 429 (queue full / rate-limited) up to N times, honoring the daemon's Retry-After hint with jitter")
		jsonOut    = flag.Bool("json", false, "emit the machine-readable run report (mclgd schema) on stdout")
		auditRun   = flag.Bool("audit", false, "audit the result: re-run the pipeline independently, recompute optimality residuals, cross-check against a reference solve, and print the sealed certificate (exit 1 unless it passes)")
		windowsOn  = flag.Bool("windows", false, "fault-isolated windowed legalization: solve per-row-band windows under supervision (retry, hedging, degradation) and stitch deterministically (method ours only)")
		windowRows = flag.Int("window-rows", 0, "rows per window with -windows (0 = default 16)")
		hedge      = flag.Float64("hedge", 0, "straggler-hedging quantile in (0,1] with -windows: re-issue the slowest windows once this fraction has completed (0 = off)")
		exactK     = flag.Int("exact", 0, "with -windows: after stitch, re-solve the K worst-displacement windows with the branch-and-bound exact legalizer and report measured optimality gaps (0 = off)")
		ecoPath    = flag.String("eco", "", "apply an ECO delta stream (JSON file) to the legal base placement via dirty-window re-legalization, then certify by replay")
	)
	flag.Parse()
	if *jsonOut {
		info = os.Stderr
	}
	if *auditRun && (*method != "ours" || *resilient || *refineObj != "") {
		fatal(fmt.Errorf("-audit certifies the standard pipeline: method ours, without -resilient or -refine"))
	}
	if *windowsOn && (*method != "ours" || *resilient || *auditRun) {
		fatal(fmt.Errorf("-windows requires method ours, without -resilient or -audit"))
	}
	if !*windowsOn && *ecoPath == "" && *windowRows != 0 {
		fatal(fmt.Errorf("-window-rows requires -windows or -eco"))
	}
	if !*windowsOn && *hedge != 0 {
		fatal(fmt.Errorf("-hedge requires -windows"))
	}
	if !*windowsOn && *exactK != 0 {
		fatal(fmt.Errorf("-exact requires -windows"))
	}
	if *exactK < 0 {
		fatal(fmt.Errorf("-exact %d must be non-negative", *exactK))
	}
	if *ecoPath != "" && (*method != "ours" || *resilient || *auditRun || *windowsOn ||
		*refineObj != "" || *checkOnly || *runGP || *serverURL != "") {
		fatal(fmt.Errorf("-eco runs locally with method ours and no other pipeline flags"))
	}
	if *hedge < 0 || *hedge > 1 {
		fatal(fmt.Errorf("-hedge %g out of range [0, 1]", *hedge))
	}

	if *serverURL != "" {
		runRemote(*serverURL, *auxPath, *benchName, *scale, *method, *resilient, *auditRun,
			serve.OptionsJSON{
				Lambda: *lambda, Beta: *beta, Theta: *theta, Eps: *eps,
				AutoTheta: *autoTheta, AutoTune: *autoTune, BoundRight: *boundRight, Workers: *workers,
			}, *windowsOn, *windowRows, *hedge, *exactK,
			*timeout, *retryN, *outPath, *jsonOut, *runGP || *checkOnly || *refineObj != "")
		return
	}
	if *retryN != 0 {
		fatal(fmt.Errorf("-retry requires -server"))
	}

	// SIGINT/SIGTERM and -timeout cancel the same context; every solver
	// stage polls it and aborts with a typed mclgerr.ErrCanceled error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	d, err := loadDesign(*auxPath, *benchName, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "design %s: %d cells (%d multi-row), %d rows, density %.2f\n",
		d.Name, len(d.Cells), countMulti(d), len(d.Rows), d.Density())

	if *ecoPath != "" {
		runEco(ctx, d, *ecoPath,
			core.Options{Lambda: *lambda, Beta: *beta, Theta: *theta, Eps: *eps,
				AutoTheta: *autoTheta, Workers: *workers},
			*windowRows, *jsonOut, *outPath)
		return
	}

	if *runGP {
		res, err := gp.Place(d, gp.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(info, "global placement: %d rounds, %d CG iterations, overflow %.3f\n",
			res.Iterations, res.CGIters, res.Overflow)
	}

	if *checkOnly {
		rep := design.CheckLegal(d)
		fmt.Fprintf(info, "legality: %s\n", rep)
		for i, v := range rep.Violations {
			if i >= 20 {
				fmt.Fprintf(info, "  ... %d more\n", len(rep.Violations)-20)
				break
			}
			fmt.Fprintf(info, "  %s\n", v)
		}
		if !rep.Legal() {
			os.Exit(1)
		}
		return
	}

	gpHPWL := metrics.HPWLGlobal(d)
	t0 := time.Now()
	var (
		stats       *core.Stats
		winStats    *window.Stats
		rung        string
		numAttempts int
	)
	oursOpts := core.Options{Lambda: *lambda, Beta: *beta, Theta: *theta, Eps: *eps,
		AutoTheta: *autoTheta, AutoTune: *autoTune, BoundRight: *boundRight, Workers: *workers}
	switch *method {
	case "ours":
		opts := oursOpts
		if *windowsOn {
			wst, err := window.Legalize(ctx, d, window.Options{
				Cascade:       core.ResilientOptions{Base: opts},
				WindowRows:    *windowRows,
				HedgeQuantile: *hedge,
				ExactWindows:  *exactK,
			})
			if err != nil {
				fatal(err)
			}
			winStats = wst
			fmt.Fprintf(info, "  windows: %d solved of %d (retries %d, hedges won %d/%d, degraded %d)\n",
				wst.Solved, wst.Windows, wst.Retries, wst.HedgesWon, wst.HedgesIssued, wst.Degraded)
			if ex := wst.Exact; ex != nil {
				fmt.Fprintf(info, "  exact: %d refined (%d improved, %d proven optimal, %d skipped), max gap %.3g\n",
					ex.Selected, ex.Improved, ex.Proven, ex.Skipped, ex.MaxGap)
				if *verbose {
					for _, g := range ex.Gaps {
						fmt.Fprintf(info, "    window %d: %d cells gap=%.3g proven=%v improved=%v maxdisp %.0f -> %.0f\n",
							g.Window, g.Cells, g.Gap, g.Proven, g.Improved, g.MaxDispBefore, g.MaxDispAfter)
					}
				}
			}
		} else if *resilient {
			rs, err := core.NewResilient(core.ResilientOptions{Base: opts}).LegalizeContext(ctx, d)
			if err != nil {
				fatal(err)
			}
			stats, rung, numAttempts = &rs.Stats, string(rs.Rung), len(rs.Attempts)
			fmt.Fprintf(info, "  resilient: succeeded on rung %q after %d attempt(s)\n", rs.Rung, len(rs.Attempts))
			if *verbose {
				for _, a := range rs.Attempts {
					if a.Err != nil {
						fmt.Fprintf(info, "    %s failed in %v: %v\n", a.Rung, a.Elapsed, a.Err)
					} else {
						fmt.Fprintf(info, "    %s succeeded in %v\n", a.Rung, a.Elapsed)
					}
				}
			}
		} else {
			var err error
			stats, err = core.New(opts).LegalizeContext(ctx, d)
			if err != nil {
				fatal(err)
			}
		}
		if *verbose && stats != nil {
			fmt.Fprintf(info, "  vars=%d cons=%d iters=%d converged=%v\n",
				stats.NumVars, stats.NumCons, stats.Iterations, stats.Converged)
			fmt.Fprintf(info, "  subcell mismatch=%.4g illegal=%d unplaced=%d\n",
				stats.MaxSubcellMismatch, stats.Illegal, stats.Unplaced)
			fmt.Fprintf(info, "  build=%v solve=%v tetris=%v\n",
				stats.BuildTime, stats.SolveTime, stats.TetrisTime)
		}
	case "dac16":
		if err := chow.LegalizeContext(ctx, d); err != nil {
			fatal(err)
		}
	case "dac16imp":
		if err := chow.LegalizeImprovedContext(ctx, d, chow.Options{}); err != nil {
			fatal(err)
		}
	case "aspdac17":
		if err := wang.LegalizeContext(ctx, d, wang.Options{}); err != nil {
			fatal(err)
		}
		if _, err := tetris.AllocateContext(ctx, d); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if *refineObj != "" {
		obj := refine.Displacement
		if *refineObj == "hpwl" {
			obj = refine.HPWL
		} else if *refineObj != "disp" {
			fatal(fmt.Errorf("unknown refine objective %q", *refineObj))
		}
		res, err := refine.RefineContext(ctx, d, refine.Options{Objective: obj})
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(info, "  refine: %d slides, %d swaps, objective %.4g -> %.4g\n",
				res.Slides, res.Swaps, res.Initial, res.Final)
		}
	}
	elapsed := time.Since(t0)

	rep := report.FromDesign(d, *method, elapsed)
	rep.Rung, rep.Attempts = rung, numAttempts
	if winStats != nil {
		rep.Windows = report.WindowsFromStats(winStats)
	}
	if stats != nil {
		rep.Iterations = stats.Iterations
		rep.Converged = stats.Converged
		rep.Illegal = stats.Illegal
		rep.Unplaced = stats.Unplaced
		rep.BuildMS = float64(stats.BuildTime) / float64(time.Millisecond)
		rep.SolveMS = float64(stats.SolveTime) / float64(time.Millisecond)
		rep.TetrisMS = float64(stats.TetrisTime) / float64(time.Millisecond)
	}

	lrep := design.CheckLegal(d)
	fmt.Fprintf(info, "method=%s runtime=%v\n", *method, elapsed)
	fmt.Fprintf(info, "total displacement: %.0f sites (max %.0f, avg %.2f)\n",
		rep.DisplacementSites, rep.MaxDispSites, rep.AvgDispSites)
	if gpHPWL > 0 {
		fmt.Fprintf(info, "HPWL: %.4g -> %.4g (ΔHPWL %.2f%%)\n",
			gpHPWL, rep.HPWL, 100*rep.DeltaHPWL)
	}
	fmt.Fprintf(info, "legality: %s\n", lrep)

	// Audit-on-demand: the auditor re-runs the pipeline from the global
	// placement on its own clones, so the certificate is an independent
	// verdict on the result just printed — its PosHash must reproduce it.
	if *auditRun {
		cert, err := audit.Run(ctx, d, audit.Options{Core: oursOpts})
		if err != nil {
			fatal(err)
		}
		rep.Certificate = cert
		fmt.Fprintf(info, "%s\n", cert.Summary())
		if cert.PosHash != rep.PosHash {
			fmt.Fprintf(info, "audit: re-run placement %s does not reproduce this run's %s\n",
				cert.PosHash, rep.PosHash)
		}
	}

	if *jsonOut {
		printJSON(rep)
	}

	if *outPath != "" {
		writeLegalized(d, *outPath)
	}
	if !rep.Legal {
		os.Exit(1)
	}
	if c := rep.Certificate; c != nil && (!c.Pass || c.PosHash != rep.PosHash) {
		os.Exit(1)
	}
}

// runRemote is the -server flow: submit, report, optionally write the
// returned placement back as Bookshelf.
func runRemote(serverURL, auxPath, bench string, scale float64, method string, resilient, auditRun bool,
	opts serve.OptionsJSON, windows bool, windowRows int, hedge float64, exactK int,
	timeout time.Duration, retries int, outPath string, jsonOut, localOnlyFlags bool) {
	if localOnlyFlags {
		fatal(fmt.Errorf("-gp, -check and -refine run locally and cannot be combined with -server"))
	}
	if retries < 0 {
		fatal(fmt.Errorf("-retry %d must be non-negative", retries))
	}
	req, err := remoteRequest(auxPath, bench, scale, method, resilient, auditRun, opts, timeout, outPath != "")
	if err == nil && windows {
		req.Windows, req.WindowRows, req.Hedge, req.Exact = true, windowRows, hedge, exactK
	}
	if err != nil {
		fatal(err)
	}
	rep, err := submitRemote(serverURL, req, timeout, retries)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "design %s: %d cells (%d multi-row) [served by %s, cache %s]\n",
		rep.Design, rep.Cells, rep.MultiRowCells, serverURL, rep.Cache)
	fmt.Fprintf(info, "method=%s runtime=%.0fms\n", rep.Method, rep.WallMS)
	fmt.Fprintf(info, "total displacement: %.0f sites (max %.0f, avg %.2f)\n",
		rep.DisplacementSites, rep.MaxDispSites, rep.AvgDispSites)
	fmt.Fprintf(info, "HPWL: %.4g (ΔHPWL %.2f%%)\n", rep.HPWL, 100*rep.DeltaHPWL)
	legality := "illegal"
	if rep.Legal {
		legality = "legal"
	}
	fmt.Fprintf(info, "legality: %s\n", legality)
	if ws := rep.Windows; ws != nil {
		fmt.Fprintf(info, "windows: %d solved + %d resumed of %d (retries %d, hedges won %d/%d, degraded %d)\n",
			ws.Solved, ws.Resumed, ws.Total, ws.Retries, ws.HedgesWon, ws.HedgesIssued, ws.Degraded)
		if ex := ws.Exact; ex != nil {
			fmt.Fprintf(info, "exact: %d refined (%d improved, %d proven optimal, %d skipped), max gap %.3g\n",
				ex.Selected, ex.Improved, ex.Proven, ex.Skipped, ex.MaxGap)
		}
	}
	if rep.Certificate != nil {
		fmt.Fprintf(info, "%s\n", rep.Certificate.Summary())
	}
	if jsonOut {
		printJSON(rep)
	}
	if outPath != "" {
		d, err := loadDesign(auxPath, bench, scale)
		if err != nil {
			fatal(err)
		}
		if !rep.ApplyPlacement(d) {
			fatal(fmt.Errorf("server response carries no usable placement for %d cells", len(d.Cells)))
		}
		writeLegalized(d, outPath)
	}
	if !rep.Legal {
		os.Exit(1)
	}
	if c := rep.Certificate; c != nil && (!c.Pass || c.PosHash != rep.PosHash) {
		os.Exit(1)
	}
}

func printJSON(rep *report.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// writeLegalized stores the legalized positions as the .pl positions.
func writeLegalized(d *design.Design, outPath string) {
	out := d.Clone()
	for _, c := range out.Cells {
		c.GX, c.GY = c.X, c.Y
	}
	if err := bookshelf.Write(out, outPath); err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "wrote %s\n", outPath)
}

func loadDesign(aux, bench string, scale float64) (*design.Design, error) {
	switch {
	case aux != "":
		return bookshelf.Read(aux)
	case bench != "":
		e, err := gen.FindEntry(bench)
		if err != nil {
			return nil, err
		}
		return gen.Generate(gen.SuiteSpec(e, scale))
	default:
		return nil, fmt.Errorf("one of -aux or -bench is required")
	}
}

func countMulti(d *design.Design) int {
	n := 0
	for _, c := range d.Cells {
		if c.RowSpan > 1 {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mclg:", err)
	os.Exit(2)
}
