// Command mclg legalizes a mixed-cell-height placement.
//
// Input is either a Bookshelf .aux file (-aux) or a named benchmark from
// the synthetic suite (-bench, with -scale). The legalized placement can be
// written back as Bookshelf (-out) and quality metrics are printed.
//
//	mclg -bench fft_2 -scale 0.01
//	mclg -aux design.aux -method ours -out legal.aux
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mclg/internal/baselines/chow"
	"mclg/internal/baselines/wang"
	"mclg/internal/bookshelf"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/gp"
	"mclg/internal/metrics"
	"mclg/internal/refine"
	"mclg/internal/tetris"
)

func main() {
	var (
		auxPath    = flag.String("aux", "", "Bookshelf .aux input file")
		benchName  = flag.String("bench", "", "synthetic suite benchmark name (e.g. fft_2)")
		scale      = flag.Float64("scale", 0.01, "suite scale factor (1 = paper-size)")
		method     = flag.String("method", "ours", "legalizer: ours | dac16 | dac16imp | aspdac17")
		outPath    = flag.String("out", "", "write legalized placement as Bookshelf .aux")
		lambda     = flag.Float64("lambda", 1000, "subcell equality penalty λ")
		beta       = flag.Float64("beta", 0.5, "MMSIM splitting constant β*")
		theta      = flag.Float64("theta", 0.5, "MMSIM splitting constant θ*")
		eps        = flag.Float64("eps", 1e-4, "MMSIM convergence tolerance")
		autoTheta  = flag.Bool("autotheta", false, "clamp θ* below the Theorem-2 bound")
		refineObj  = flag.String("refine", "", "post-legalization refinement objective: disp | hpwl")
		checkOnly  = flag.Bool("check", false, "only check legality of the input placement and exit")
		boundRight = flag.Bool("boundright", false, "solve with exact right-boundary constraints (extension)")
		runGP      = flag.Bool("gp", false, "re-derive the global placement from the netlist (internal/gp) before legalizing")
		verbose    = flag.Bool("v", false, "print per-stage details")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		resilient  = flag.Bool("resilient", false, "with -method ours: run the fallback cascade (mmsim -> retuned -> pgs -> greedy)")
		workers    = flag.Int("workers", 0, "worker goroutines for the hot stages: 0 = all cores, 1 = serial (any value gives identical output)")
	)
	flag.Parse()

	// SIGINT/SIGTERM and -timeout cancel the same context; every solver
	// stage polls it and aborts with a typed mclgerr.ErrCanceled error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	d, err := loadDesign(*auxPath, *benchName, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design %s: %d cells (%d multi-row), %d rows, density %.2f\n",
		d.Name, len(d.Cells), countMulti(d), len(d.Rows), d.Density())

	if *runGP {
		res, err := gp.Place(d, gp.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("global placement: %d rounds, %d CG iterations, overflow %.3f\n",
			res.Iterations, res.CGIters, res.Overflow)
	}

	if *checkOnly {
		rep := design.CheckLegal(d)
		fmt.Printf("legality: %s\n", rep)
		for i, v := range rep.Violations {
			if i >= 20 {
				fmt.Printf("  ... %d more\n", len(rep.Violations)-20)
				break
			}
			fmt.Printf("  %s\n", v)
		}
		if !rep.Legal() {
			os.Exit(1)
		}
		return
	}

	gpHPWL := metrics.HPWLGlobal(d)
	t0 := time.Now()
	switch *method {
	case "ours":
		opts := core.Options{Lambda: *lambda, Beta: *beta, Theta: *theta, Eps: *eps,
			AutoTheta: *autoTheta, BoundRight: *boundRight, Workers: *workers}
		var stats *core.Stats
		if *resilient {
			rs, err := core.NewResilient(core.ResilientOptions{Base: opts}).LegalizeContext(ctx, d)
			if err != nil {
				fatal(err)
			}
			stats = &rs.Stats
			fmt.Printf("  resilient: succeeded on rung %q after %d attempt(s)\n", rs.Rung, len(rs.Attempts))
			if *verbose {
				for _, a := range rs.Attempts {
					if a.Err != nil {
						fmt.Printf("    %s failed in %v: %v\n", a.Rung, a.Elapsed, a.Err)
					} else {
						fmt.Printf("    %s succeeded in %v\n", a.Rung, a.Elapsed)
					}
				}
			}
		} else {
			var err error
			stats, err = core.New(opts).LegalizeContext(ctx, d)
			if err != nil {
				fatal(err)
			}
		}
		if *verbose {
			fmt.Printf("  vars=%d cons=%d iters=%d converged=%v\n",
				stats.NumVars, stats.NumCons, stats.Iterations, stats.Converged)
			fmt.Printf("  subcell mismatch=%.4g illegal=%d unplaced=%d\n",
				stats.MaxSubcellMismatch, stats.Illegal, stats.Unplaced)
			fmt.Printf("  build=%v solve=%v tetris=%v\n",
				stats.BuildTime, stats.SolveTime, stats.TetrisTime)
		}
	case "dac16":
		if err := chow.LegalizeContext(ctx, d); err != nil {
			fatal(err)
		}
	case "dac16imp":
		if err := chow.LegalizeImprovedContext(ctx, d, chow.Options{}); err != nil {
			fatal(err)
		}
	case "aspdac17":
		if err := wang.LegalizeContext(ctx, d, wang.Options{}); err != nil {
			fatal(err)
		}
		if _, err := tetris.AllocateContext(ctx, d); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if *refineObj != "" {
		obj := refine.Displacement
		if *refineObj == "hpwl" {
			obj = refine.HPWL
		} else if *refineObj != "disp" {
			fatal(fmt.Errorf("unknown refine objective %q", *refineObj))
		}
		res, err := refine.RefineContext(ctx, d, refine.Options{Objective: obj})
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Printf("  refine: %d slides, %d swaps, objective %.4g -> %.4g\n",
				res.Slides, res.Swaps, res.Initial, res.Final)
		}
	}
	elapsed := time.Since(t0)

	disp := metrics.MeasureDisplacement(d)
	rep := design.CheckLegal(d)
	fmt.Printf("method=%s runtime=%v\n", *method, elapsed)
	fmt.Printf("total displacement: %.0f sites (max %.0f, avg %.2f)\n",
		disp.TotalSites, disp.MaxSites, disp.TotalSites/float64(max(1, len(d.Cells))))
	if gpHPWL > 0 {
		fmt.Printf("HPWL: %.4g -> %.4g (ΔHPWL %.2f%%)\n",
			gpHPWL, metrics.HPWL(d), 100*metrics.DeltaHPWL(d))
	}
	fmt.Printf("legality: %s\n", rep)

	if *outPath != "" {
		// Store the legalized positions as the .pl positions.
		out := d.Clone()
		for _, c := range out.Cells {
			c.GX, c.GY = c.X, c.Y
		}
		if err := bookshelf.Write(out, *outPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if !rep.Legal() {
		os.Exit(1)
	}
}

func loadDesign(aux, bench string, scale float64) (*design.Design, error) {
	switch {
	case aux != "":
		return bookshelf.Read(aux)
	case bench != "":
		e, err := gen.FindEntry(bench)
		if err != nil {
			return nil, err
		}
		return gen.Generate(gen.SuiteSpec(e, scale))
	default:
		return nil, fmt.Errorf("one of -aux or -bench is required")
	}
}

func countMulti(d *design.Design) int {
	n := 0
	for _, c := range d.Cells {
		if c.RowSpan > 1 {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mclg:", err)
	os.Exit(2)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
