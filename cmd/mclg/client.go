package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mclg/internal/bookshelf"
	"mclg/internal/serve"
	"mclg/internal/serve/report"
)

// submitRemote sends the run described by the CLI flags to an mclgd daemon
// instead of solving locally, and returns the daemon's report. For -aux
// inputs the Bookshelf component files are inlined into the request body,
// so the daemon needs no filesystem access to the design.
func submitRemote(serverURL string, req *serve.Request, timeout time.Duration) (*report.Report, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := &http.Client{}
	if timeout > 0 {
		// Leave headroom over the job deadline so the daemon's own 504
		// arrives instead of a client-side cutoff.
		client.Timeout = timeout + 10*time.Second
	}
	url := strings.TrimSuffix(serverURL, "/") + "/v1/legalize"
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
			Class string `json:"class"`
		}
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return nil, fmt.Errorf("server: %s (%s, HTTP %d)", eb.Error, eb.Class, resp.StatusCode)
		}
		return nil, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	rep := &report.Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("server: unparsable response: %w", err)
	}
	return rep, nil
}

// remoteRequest translates the CLI flags into a serve.Request. aux designs
// are uploaded inline; bench designs travel by name.
func remoteRequest(auxPath, bench string, scale float64, method string, resilient, auditRun bool,
	opts serve.OptionsJSON, timeout time.Duration, wantPlacement bool) (*serve.Request, error) {
	req := &serve.Request{
		Method:           method,
		Resilient:        resilient,
		Audit:            auditRun,
		Options:          &opts,
		IncludePlacement: wantPlacement,
	}
	if timeout > 0 {
		req.TimeoutMS = int64(timeout / time.Millisecond)
	}
	switch {
	case auxPath != "":
		files, err := bookshelf.ReadAux(auxPath)
		if err != nil {
			return nil, err
		}
		req.Files = map[string]string{}
		for comp, path := range map[string]string{
			"nodes": files.Nodes, "nets": files.Nets, "pl": files.Pl,
			"scl": files.Scl, "wts": files.Wts,
		} {
			if path == "" {
				continue
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			req.Files[comp] = string(raw)
		}
	case bench != "":
		req.Bench, req.Scale = bench, scale
	default:
		return nil, fmt.Errorf("one of -aux or -bench is required")
	}
	return req, nil
}
