package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mclg/internal/bookshelf"
	"mclg/internal/serve"
	"mclg/internal/serve/report"
)

// maxRetryWait caps how long a single Retry-After hint can park the client;
// a daemon advertising a longer wait is treated as too busy to wait out.
const maxRetryWait = 60 * time.Second

// submitRemote sends the run described by the CLI flags to an mclgd daemon
// instead of solving locally, and returns the daemon's report. For -aux
// inputs the Bookshelf component files are inlined into the request body,
// so the daemon needs no filesystem access to the design.
//
// A 429 (queue full or tenant rate-limited) is retried up to retries times,
// honoring the daemon's Retry-After hint plus up to 25% jitter so a herd of
// refused clients does not re-stampede in lockstep. Any other status is
// terminal: the daemon's error classes are not transient.
func submitRemote(serverURL string, req *serve.Request, timeout time.Duration, retries int) (*report.Report, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := &http.Client{}
	if timeout > 0 {
		// Leave headroom over the job deadline so the daemon's own 504
		// arrives instead of a client-side cutoff.
		client.Timeout = timeout + 10*time.Second
	}
	url := strings.TrimSuffix(serverURL, "/") + "/v1/legalize"
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < retries {
			wait := retryWait(resp.Header.Get("Retry-After"), attempt)
			fmt.Fprintf(os.Stderr, "mclg: server busy (HTTP 429), retry %d/%d in %s\n",
				attempt+1, retries, wait.Round(time.Millisecond))
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var eb struct {
				Error string `json:"error"`
				Class string `json:"class"`
			}
			if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
				return nil, fmt.Errorf("server: %s (%s, HTTP %d)", eb.Error, eb.Class, resp.StatusCode)
			}
			return nil, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		}
		rep := &report.Report{}
		if err := json.Unmarshal(raw, rep); err != nil {
			return nil, fmt.Errorf("server: unparsable response: %w", err)
		}
		return rep, nil
	}
}

// retryWait turns a Retry-After header into a bounded, jittered sleep. A
// missing or malformed hint falls back to exponential backoff from 1s.
func retryWait(header string, attempt int) time.Duration {
	base := time.Second << min(attempt, 5)
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs > 0 {
		base = time.Duration(secs) * time.Second
	}
	if base > maxRetryWait {
		base = maxRetryWait
	}
	return base + time.Duration(rand.Int64N(int64(base)/4+1))
}

// remoteRequest translates the CLI flags into a serve.Request. aux designs
// are uploaded inline; bench designs travel by name.
func remoteRequest(auxPath, bench string, scale float64, method string, resilient, auditRun bool,
	opts serve.OptionsJSON, timeout time.Duration, wantPlacement bool) (*serve.Request, error) {
	req := &serve.Request{
		Method:           method,
		Resilient:        resilient,
		Audit:            auditRun,
		Options:          &opts,
		IncludePlacement: wantPlacement,
	}
	if timeout > 0 {
		req.TimeoutMS = int64(timeout / time.Millisecond)
	}
	switch {
	case auxPath != "":
		files, err := bookshelf.ReadAux(auxPath)
		if err != nil {
			return nil, err
		}
		req.Files = map[string]string{}
		for comp, path := range map[string]string{
			"nodes": files.Nodes, "nets": files.Nets, "pl": files.Pl,
			"scl": files.Scl, "wts": files.Wts,
		} {
			if path == "" {
				continue
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			req.Files[comp] = string(raw)
		}
	case bench != "":
		req.Bench, req.Scale = bench, scale
	default:
		return nil, fmt.Errorf("one of -aux or -bench is required")
	}
	return req, nil
}
