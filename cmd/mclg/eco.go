// The -eco flow: load a design, open an in-memory ECO session over it,
// stream the delta batches from a JSON file, certify the final state by
// replaying the journal from base, and print the outcome.
//
// The deltas file is either a single batch — a JSON array of delta
// objects — or a multi-batch document {"batches": [[...], [...]]}. Each
// delta is the same shape the daemon accepts on /v1/eco:
//
//	{"op": "move", "cell": 12, "x": 104.0, "y": 36.0}
//	{"op": "insert", "name": "u_eco1", "x": 80, "y": 24, "w": 4.8, "h": 12}
//	{"op": "delete", "cell": 7}
//	{"op": "resize", "cell": 3, "w": 9.6, "h": 24}
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"mclg/internal/audit"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/eco"
	"mclg/internal/serve/report"
)

// ecoFile is the on-disk deltas document accepted by -eco.
type ecoFile struct {
	Batches [][]eco.Delta `json:"batches"`
}

// ecoReport is the -json document for an -eco run: the final placement
// report plus per-batch apply results and the sealed replay certificate.
type ecoReport struct {
	Report      *report.Report           `json:"report"`
	Applies     []*eco.ApplyResult       `json:"applies"`
	Certificate *audit.ReplayCertificate `json:"certificate"`
}

// loadDeltas reads either a bare batch array or a {"batches": ...} doc.
func loadDeltas(path string) ([][]eco.Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var one []eco.Delta
	if err := json.Unmarshal(data, &one); err == nil {
		return [][]eco.Delta{one}, nil
	}
	var doc ecoFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: want a JSON delta array or {\"batches\": [...]}: %w", path, err)
	}
	return doc.Batches, nil
}

// runEco drives a whole ECO session locally: create, apply every batch,
// commit (certify), close. Exit status 1 if the certificate fails.
func runEco(ctx context.Context, d *design.Design, ecoPath string,
	opts core.Options, windowRows int, jsonOut bool, outPath string) {
	batches, err := loadDeltas(ecoPath)
	if err != nil {
		fatal(err)
	}
	if len(batches) == 0 {
		fatal(fmt.Errorf("%s: no delta batches", ecoPath))
	}

	t0 := time.Now()
	s, err := eco.Create(ctx, "cli", d, eco.Options{Core: opts, WindowRows: windowRows})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	fmt.Fprintf(info, "eco session over %s: %d cells, base hash %s\n",
		d.Name, len(d.Cells), s.PosHash())

	applies := make([]*eco.ApplyResult, 0, len(batches))
	for i, batch := range batches {
		res, err := s.Apply(ctx, batch)
		if err != nil {
			fatal(fmt.Errorf("batch %d/%d: %w", i+1, len(batches), err))
		}
		applies = append(applies, res)
		fmt.Fprintf(info, "  batch %d: %d deltas, %d dirty rows, %d bands in %d runs (%d repaired) -> %s\n",
			res.Seq, res.Deltas, res.DirtyRows, res.Bands, res.Runs, res.Repaired, res.PosHash)
	}

	cert, err := s.Certify(ctx)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)

	final := s.Design()
	rep := report.FromDesign(final, "eco", elapsed)
	fmt.Fprintf(info, "eco: %d batches (%d deltas) in %v\n",
		len(applies), countDeltas(applies), elapsed)
	fmt.Fprintf(info, "total displacement: %.0f sites (max %.0f, avg %.2f)\n",
		rep.DisplacementSites, rep.MaxDispSites, rep.AvgDispSites)
	fmt.Fprintf(info, "legality: %s\n", design.CheckLegal(final))
	fmt.Fprintf(info, "%s\n", cert.Summary())

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&ecoReport{Report: rep, Applies: applies, Certificate: cert}); err != nil {
			fatal(err)
		}
	}
	if outPath != "" {
		writeLegalized(final, outPath)
	}
	if !rep.Legal || !cert.Pass {
		os.Exit(1)
	}
}

func countDeltas(applies []*eco.ApplyResult) int {
	n := 0
	for _, a := range applies {
		n += a.Deltas
	}
	return n
}
