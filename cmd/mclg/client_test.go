package main

import (
	"testing"
	"time"
)

// TestRetryWaitHonorsRetryAfter pins the 429 backoff contract: the daemon's
// Retry-After hint is the base wait, jitter adds at most 25%, a malformed or
// missing hint falls back to exponential backoff from 1s, and no single wait
// exceeds the cap.
func TestRetryWaitHonorsRetryAfter(t *testing.T) {
	inRange := func(name string, got, lo, hi time.Duration) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s: wait %v outside [%v, %v]", name, got, lo, hi)
		}
	}
	for i := 0; i < 50; i++ { // jitter is random; the bounds must always hold
		inRange("Retry-After: 3", retryWait("3", 0), 3*time.Second, 3*time.Second+750*time.Millisecond)
		inRange("Retry-After: 3 (late attempt)", retryWait(" 3 ", 4), 3*time.Second, 3*time.Second+750*time.Millisecond)

		// Missing / malformed / non-positive hints: exponential from 1s.
		inRange("no header, attempt 0", retryWait("", 0), time.Second, time.Second+250*time.Millisecond)
		inRange("no header, attempt 2", retryWait("", 2), 4*time.Second, 5*time.Second)
		inRange("malformed", retryWait("soon", 0), time.Second, time.Second+250*time.Millisecond)
		inRange("zero", retryWait("0", 1), 2*time.Second, 2500*time.Millisecond)

		// An absurd hint (or deep exponential backoff) is capped.
		inRange("huge hint", retryWait("86400", 0), maxRetryWait, maxRetryWait+maxRetryWait/4)
		inRange("deep backoff", retryWait("", 30), 32*time.Second, 40*time.Second)
	}
}
