package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// testEvent is the subset of the go test -json (test2json) event stream the
// parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchResult is one benchmark's parsed measurements. Allocs is only
// meaningful when HasAllocs is set: it requires a -benchmem run, and
// baselines recorded before -benchmem carry ns/op only.
type benchResult struct {
	NS        float64
	Allocs    float64
	HasAllocs bool
}

// benchResultRe matches one reassembled benchmark result line, e.g.
//
//	BenchmarkTable2Legalizers/fft_2/Ours-8   1   4577919 ns/op   0.31 illegal-%
//	BenchmarkMMSIMSteadyState-8   12345   98765 ns/op   0 B/op   0 allocs/op
//
// capturing the name (with the optional -GOMAXPROCS suffix still attached),
// the ns/op value, and the rest of the line for the metric scan.
var benchResultRe = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

// allocsRe extracts the -benchmem allocations metric from the tail of a
// result line.
var allocsRe = regexp.MustCompile(`([0-9.e+]+) allocs/op`)

// gomaxprocsSuffixRe strips the trailing -N the benchmark runner appends when
// GOMAXPROCS > 1, so baselines recorded on different machines compare by
// benchmark identity.
var gomaxprocsSuffixRe = regexp.MustCompile(`-\d+$`)

// parseBench reads a test2json stream and returns the measurements keyed by
// normalized benchmark name. test2json splits a result line into separate
// events (the name fragment has no trailing newline), so output fragments are
// concatenated first and then split back into real lines.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchdiff: malformed test2json line %q: %w", truncate(line, 80), err)
		}
		if ev.Action == "output" {
			sb.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]benchResult{}
	for _, line := range strings.Split(sb.String(), "\n") {
		m := benchResultRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		res := benchResult{NS: ns}
		if am := allocsRe.FindStringSubmatch(m[3]); am != nil {
			if allocs, err := strconv.ParseFloat(am[1], 64); err == nil {
				res.Allocs = allocs
				res.HasAllocs = true
			}
		}
		out[gomaxprocsSuffixRe.ReplaceAllString(m[1], "")] = res
	}
	return out, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
