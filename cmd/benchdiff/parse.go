package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// testEvent is the subset of the go test -json (test2json) event stream the
// parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchResultRe matches one reassembled benchmark result line, e.g.
//
//	BenchmarkTable2Legalizers/fft_2/Ours-8   1   4577919 ns/op   0.31 illegal-%
//
// capturing the name (with the optional -GOMAXPROCS suffix still attached)
// and the ns/op value.
var benchResultRe = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op`)

// gomaxprocsSuffixRe strips the trailing -N the benchmark runner appends when
// GOMAXPROCS > 1, so baselines recorded on different machines compare by
// benchmark identity.
var gomaxprocsSuffixRe = regexp.MustCompile(`-\d+$`)

// parseBench reads a test2json stream and returns ns/op keyed by normalized
// benchmark name. test2json splits a result line into separate events (the
// name fragment has no trailing newline), so output fragments are
// concatenated first and then split back into real lines.
func parseBench(r io.Reader) (map[string]float64, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchdiff: malformed test2json line %q: %w", truncate(line, 80), err)
		}
		if ev.Action == "output" {
			sb.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		m := benchResultRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[gomaxprocsSuffixRe.ReplaceAllString(m[1], "")] = ns
	}
	return out, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
