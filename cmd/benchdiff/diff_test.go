package main

import (
	"strings"
	"testing"
)

func TestCompareRegression(t *testing.T) {
	var out strings.Builder
	sum := compare(
		map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100},
		map[string]float64{"BenchmarkA": 130, "BenchmarkB": 110},
		0.25, &out)
	if sum.Regressed != 1 {
		t.Errorf("Regressed = %d, want 1", sum.Regressed)
	}
	if sum.Compared != 2 {
		t.Errorf("Compared = %d, want 2", sum.Compared)
	}
	if !strings.Contains(out.String(), "REGRESS  BenchmarkA") {
		t.Errorf("output missing regression line:\n%s", out.String())
	}
}

// TestCompareNewBenchmarksNeverFail pins the perf-gate contract: a
// benchmark present in the current run but missing from the committed
// baseline (e.g. a freshly added server benchmark) is reported as NEW and
// contributes nothing to the failure count.
func TestCompareNewBenchmarksNeverFail(t *testing.T) {
	var out strings.Builder
	sum := compare(
		map[string]float64{"BenchmarkOld": 100},
		map[string]float64{
			"BenchmarkOld":              100,
			"BenchmarkServeLegalize":    12345,
			"BenchmarkServeCacheLookup": 99999999, // arbitrarily slow — still must not fail
		},
		0.25, &out)
	if sum.Regressed != 0 {
		t.Fatalf("Regressed = %d, want 0 — new benchmarks must not fail the gate\n%s",
			sum.Regressed, out.String())
	}
	if sum.New != 2 {
		t.Errorf("New = %d, want 2", sum.New)
	}
	for _, want := range []string{
		"NEW      BenchmarkServeLegalize",
		"NEW      BenchmarkServeCacheLookup",
		"2 new, 0 missing",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareMissingBenchmarksNeverFail pins the symmetric case: a baseline
// entry absent from the current run (renamed or filtered out) is reported
// but does not fail the gate.
func TestCompareMissingBenchmarksNeverFail(t *testing.T) {
	var out strings.Builder
	sum := compare(
		map[string]float64{"BenchmarkOld": 100, "BenchmarkGone": 50},
		map[string]float64{"BenchmarkOld": 100},
		0.25, &out)
	if sum.Regressed != 0 {
		t.Errorf("Regressed = %d, want 0", sum.Regressed)
	}
	if sum.Missing != 1 {
		t.Errorf("Missing = %d, want 1", sum.Missing)
	}
	if !strings.Contains(out.String(), "MISSING  BenchmarkGone") {
		t.Errorf("output missing MISSING line:\n%s", out.String())
	}
}

func TestCompareDisjointSetsOnlyReport(t *testing.T) {
	var out strings.Builder
	sum := compare(
		map[string]float64{"BenchmarkA": 100},
		map[string]float64{"BenchmarkB": 100},
		0.25, &out)
	if sum.Regressed != 0 || sum.Compared != 0 || sum.New != 1 || sum.Missing != 1 {
		t.Errorf("summary = %+v, want 0 regressed/compared, 1 new, 1 missing", sum)
	}
}
