package main

import (
	"strings"
	"testing"
)

// ns builds an ns-only result map (no allocs metric), the pre--benchmem shape.
func ns(pairs map[string]float64) map[string]benchResult {
	out := map[string]benchResult{}
	for name, v := range pairs {
		out[name] = benchResult{NS: v}
	}
	return out
}

var gateNS = gateSpec{ns: true}

func TestCompareRegression(t *testing.T) {
	var out strings.Builder
	sum := compare(
		ns(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}),
		ns(map[string]float64{"BenchmarkA": 130, "BenchmarkB": 110}),
		0.25, 0.10, gateNS, &out)
	if sum.Regressed != 1 {
		t.Errorf("Regressed = %d, want 1", sum.Regressed)
	}
	if sum.Compared != 2 {
		t.Errorf("Compared = %d, want 2", sum.Compared)
	}
	if !strings.Contains(out.String(), "REGRESS  BenchmarkA") {
		t.Errorf("output missing regression line:\n%s", out.String())
	}
}

// TestCompareNewBenchmarksNeverFail pins the perf-gate contract: a
// benchmark present in the current run but missing from the committed
// baseline (e.g. a freshly added server benchmark) is reported as NEW and
// contributes nothing to the failure count.
func TestCompareNewBenchmarksNeverFail(t *testing.T) {
	var out strings.Builder
	sum := compare(
		ns(map[string]float64{"BenchmarkOld": 100}),
		ns(map[string]float64{
			"BenchmarkOld":              100,
			"BenchmarkServeLegalize":    12345,
			"BenchmarkServeCacheLookup": 99999999, // arbitrarily slow — still must not fail
		}),
		0.25, 0.10, gateNS, &out)
	if sum.Regressed != 0 {
		t.Fatalf("Regressed = %d, want 0 — new benchmarks must not fail the gate\n%s",
			sum.Regressed, out.String())
	}
	if sum.New != 2 {
		t.Errorf("New = %d, want 2", sum.New)
	}
	for _, want := range []string{
		"NEW      BenchmarkServeLegalize",
		"NEW      BenchmarkServeCacheLookup",
		"2 new, 0 missing",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareMissingBenchmarksNeverFail pins the symmetric case: a baseline
// entry absent from the current run (renamed or filtered out) is reported
// but does not fail the gate.
func TestCompareMissingBenchmarksNeverFail(t *testing.T) {
	var out strings.Builder
	sum := compare(
		ns(map[string]float64{"BenchmarkOld": 100, "BenchmarkGone": 50}),
		ns(map[string]float64{"BenchmarkOld": 100}),
		0.25, 0.10, gateNS, &out)
	if sum.Regressed != 0 {
		t.Errorf("Regressed = %d, want 0", sum.Regressed)
	}
	if sum.Missing != 1 {
		t.Errorf("Missing = %d, want 1", sum.Missing)
	}
	if !strings.Contains(out.String(), "MISSING  BenchmarkGone") {
		t.Errorf("output missing MISSING line:\n%s", out.String())
	}
}

func TestCompareDisjointSetsOnlyReport(t *testing.T) {
	var out strings.Builder
	sum := compare(
		ns(map[string]float64{"BenchmarkA": 100}),
		ns(map[string]float64{"BenchmarkB": 100}),
		0.25, 0.10, gateNS, &out)
	if sum.Regressed != 0 || sum.Compared != 0 || sum.New != 1 || sum.Missing != 1 {
		t.Errorf("summary = %+v, want 0 regressed/compared, 1 new, 1 missing", sum)
	}
}

// TestCompareAllocGate pins the allocs/op gate: a zero-alloc baseline fails
// on the first allocation, growth within the threshold passes, and with the
// ns-only gate the same regression is report-only.
func TestCompareAllocGate(t *testing.T) {
	baseline := map[string]benchResult{
		"BenchmarkSteady": {NS: 1000, Allocs: 0, HasAllocs: true},
		"BenchmarkSome":   {NS: 1000, Allocs: 100, HasAllocs: true},
	}
	current := map[string]benchResult{
		"BenchmarkSteady": {NS: 1000, Allocs: 2, HasAllocs: true},
		"BenchmarkSome":   {NS: 1000, Allocs: 105, HasAllocs: true}, // +5% < 10%
	}
	var out strings.Builder
	sum := compare(baseline, current, 0.25, 0.10, gateSpec{allocs: true}, &out)
	if sum.Regressed != 1 {
		t.Fatalf("Regressed = %d, want 1 (0 -> 2 allocs/op)\n%s", sum.Regressed, out.String())
	}
	if !strings.Contains(out.String(), "REGRESS  BenchmarkSteady") {
		t.Errorf("output missing alloc regression line:\n%s", out.String())
	}

	out.Reset()
	if sum := compare(baseline, current, 0.25, 0.10, gateNS, &out); sum.Regressed != 0 {
		t.Errorf("ns-only gate: Regressed = %d, want 0 (alloc regressions report-only)", sum.Regressed)
	}
}

// TestCompareAllocsAgainstNSOnlyBaseline pins the new-metric contract from
// the PR that introduced the perf gate: a metric the baseline does not carry
// is reported but can never fail, even when gated.
func TestCompareAllocsAgainstNSOnlyBaseline(t *testing.T) {
	var out strings.Builder
	sum := compare(
		ns(map[string]float64{"BenchmarkOld": 100}),
		map[string]benchResult{"BenchmarkOld": {NS: 100, Allocs: 12345, HasAllocs: true}},
		0.25, 0.10, gateSpec{ns: true, allocs: true}, &out)
	if sum.Regressed != 0 {
		t.Fatalf("Regressed = %d, want 0 — allocs absent from baseline must not fail\n%s",
			sum.Regressed, out.String())
	}
	if !strings.Contains(out.String(), "NEWMETRIC") {
		t.Errorf("output missing NEWMETRIC line:\n%s", out.String())
	}
}

func TestParseGate(t *testing.T) {
	for s, want := range map[string]gateSpec{
		"ns": {ns: true}, "allocs": {allocs: true}, "both": {ns: true, allocs: true},
	} {
		got, err := parseGate(s)
		if err != nil || got != want {
			t.Errorf("parseGate(%q) = %+v, %v; want %+v", s, got, err, want)
		}
	}
	if _, err := parseGate("bogus"); err == nil {
		t.Error("parseGate(\"bogus\") did not fail")
	}
}
