package main

import (
	"strings"
	"testing"
)

// stream mimics test2json's habit of splitting one benchmark result line into
// a name fragment (no newline) and a measurement fragment.
const stream = `{"Action":"run","Test":"BenchmarkFoo"}
{"Action":"output","Test":"BenchmarkFoo","Output":"BenchmarkFoo\n"}
{"Action":"output","Test":"BenchmarkFoo","Output":"BenchmarkFoo-8         \t"}
{"Action":"output","Test":"BenchmarkFoo","Output":"       1\t 161138784 ns/op\t         1.332 illegal-%\n"}
{"Action":"output","Test":"BenchmarkBar/case_1","Output":"BenchmarkBar/case_1    \t       2\t   4577919 ns/op\n"}
{"Action":"output","Output":"PASS\n"}
{"Action":"pass"}
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFoo":        161138784,
		"BenchmarkBar/case_1": 4577919,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results (%v), want %d", len(got), got, len(want))
	}
	for name, ns := range want {
		if got[name].NS != ns {
			t.Errorf("%s = %g, want %g", name, got[name].NS, ns)
		}
		if got[name].HasAllocs {
			t.Errorf("%s: HasAllocs without -benchmem output", name)
		}
	}
}

func TestParseBenchStripsGomaxprocsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		`{"Action":"output","Output":"BenchmarkX/sub-16 \t 1\t 1000 ns/op\n"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX/sub"].NS != 1000 {
		t.Fatalf("suffix not stripped: %v", got)
	}
}

// TestParseBenchAllocs pins the -benchmem extension: the allocs/op column is
// captured when present (B/op is skipped), including an exact zero.
func TestParseBenchAllocs(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		`{"Action":"output","Output":"BenchmarkMem-8 \t 100\t 5000 ns/op\t 1024 B/op\t 17 allocs/op\n"}` + "\n" +
			`{"Action":"output","Output":"BenchmarkZero-8 \t 100\t 900 ns/op\t 0 B/op\t 0 allocs/op\n"}` + "\n" +
			`{"Action":"output","Output":"BenchmarkPlain-8 \t 100\t 800 ns/op\n"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	mem := got["BenchmarkMem"]
	if !mem.HasAllocs || mem.Allocs != 17 || mem.NS != 5000 {
		t.Errorf("BenchmarkMem = %+v, want 5000 ns/op, 17 allocs/op", mem)
	}
	zero := got["BenchmarkZero"]
	if !zero.HasAllocs || zero.Allocs != 0 {
		t.Errorf("BenchmarkZero = %+v, want HasAllocs with 0 allocs/op", zero)
	}
	if got["BenchmarkPlain"].HasAllocs {
		t.Errorf("BenchmarkPlain = %+v, want no allocs metric", got["BenchmarkPlain"])
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	if _, err := parseBench(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected an error for a non-JSON stream")
	}
}
