package main

import (
	"strings"
	"testing"
)

// stream mimics test2json's habit of splitting one benchmark result line into
// a name fragment (no newline) and a measurement fragment.
const stream = `{"Action":"run","Test":"BenchmarkFoo"}
{"Action":"output","Test":"BenchmarkFoo","Output":"BenchmarkFoo\n"}
{"Action":"output","Test":"BenchmarkFoo","Output":"BenchmarkFoo-8         \t"}
{"Action":"output","Test":"BenchmarkFoo","Output":"       1\t 161138784 ns/op\t         1.332 illegal-%\n"}
{"Action":"output","Test":"BenchmarkBar/case_1","Output":"BenchmarkBar/case_1    \t       2\t   4577919 ns/op\n"}
{"Action":"output","Output":"PASS\n"}
{"Action":"pass"}
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFoo":        161138784,
		"BenchmarkBar/case_1": 4577919,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results (%v), want %d", len(got), got, len(want))
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %g, want %g", name, got[name], ns)
		}
	}
}

func TestParseBenchStripsGomaxprocsSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		`{"Action":"output","Output":"BenchmarkX/sub-16 \t 1\t 1000 ns/op\n"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX/sub"] != 1000 {
		t.Fatalf("suffix not stripped: %v", got)
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	if _, err := parseBench(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected an error for a non-JSON stream")
	}
}
