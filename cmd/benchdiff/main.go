// Command benchdiff compares a go test -bench -json run against a committed
// baseline and fails when any gated metric regressed beyond its threshold.
//
//	go test -run '^$' -bench=. -benchtime=1x -benchmem -json . > /tmp/bench.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current /tmp/bench.json
//
// Two metrics are tracked: ns/op (always present) and allocs/op (present in
// -benchmem runs). -gate selects which of them fail the run; the other is
// report-only, as is any metric present on only one side — an ns-only
// baseline never fails an allocs comparison until it is regenerated with
// -benchmem.
//
// The exit status is 1 on regression (unless -advisory), 2 on usage or
// parse errors. Benchmarks present only in one input are reported but never
// fail the run: new benchmarks are expected to appear, and renamed ones
// should update the baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline test2json file")
		currentPath  = flag.String("current", "-", "test2json stream to check ('-' = stdin)")
		threshold    = flag.Float64("threshold", 0.25, "fail when ns/op grows more than this fraction over baseline")
		allocThresh  = flag.Float64("alloc-threshold", 0.10, "fail when allocs/op grows more than this fraction over baseline (0 allocs baseline fails on any allocation)")
		gateFlag     = flag.String("gate", "ns", "which metrics fail the run: ns, allocs, or both (ungated metrics are report-only)")
		advisory     = flag.Bool("advisory", false, "report regressions but always exit 0 (for noisy shared runners)")
	)
	flag.Parse()

	gate, err := parseGate(*gateFlag)
	if err != nil {
		fatal(err)
	}
	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fatal(err)
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in baseline %s", *baselinePath))
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in current input"))
	}

	sum := compare(baseline, current, *threshold, *allocThresh, gate, os.Stdout)
	if sum.Regressed > 0 {
		fmt.Printf("benchdiff: %d benchmark metric(s) regressed beyond threshold\n", sum.Regressed)
		if !*advisory {
			os.Exit(1)
		}
		fmt.Println("benchdiff: advisory mode, not failing")
	}
}

func parseFile(path string) (map[string]benchResult, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return parseBench(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
