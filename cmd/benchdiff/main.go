// Command benchdiff compares a go test -bench -json run against a committed
// baseline and fails when any benchmark regressed beyond the threshold.
//
//	go test -run '^$' -bench=. -benchtime=1x -json . > /tmp/bench.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current /tmp/bench.json
//
// The exit status is 1 on regression (unless -advisory), 2 on usage or
// parse errors. Benchmarks present only in one input are reported but never
// fail the run: new benchmarks are expected to appear, and renamed ones
// should update the baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline test2json file")
		currentPath  = flag.String("current", "-", "test2json stream to check ('-' = stdin)")
		threshold    = flag.Float64("threshold", 0.25, "fail when ns/op grows more than this fraction over baseline")
		advisory     = flag.Bool("advisory", false, "report regressions but always exit 0 (for noisy shared runners)")
	)
	flag.Parse()

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fatal(err)
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in baseline %s", *baselinePath))
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in current input"))
	}

	sum := compare(baseline, current, *threshold, os.Stdout)
	if sum.Regressed > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", sum.Regressed, 100**threshold)
		if !*advisory {
			os.Exit(1)
		}
		fmt.Println("benchdiff: advisory mode, not failing")
	}
}

func parseFile(path string) (map[string]float64, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return parseBench(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
