package main

import (
	"fmt"
	"io"
	"sort"
)

// gateSpec selects which metrics fail the run; the others are report-only.
type gateSpec struct {
	ns, allocs bool
}

func parseGate(s string) (gateSpec, error) {
	switch s {
	case "ns":
		return gateSpec{ns: true}, nil
	case "allocs":
		return gateSpec{allocs: true}, nil
	case "both":
		return gateSpec{ns: true, allocs: true}, nil
	}
	return gateSpec{}, fmt.Errorf("benchdiff: unknown -gate %q (want ns, allocs, or both)", s)
}

// diffSummary is the outcome of one baseline/current comparison.
type diffSummary struct {
	Regressed int // benchmarks beyond a gated threshold — the only gate failures
	New       int // in current but missing from the baseline (reported, never fail)
	Missing   int // in the baseline but absent from current (reported, never fail)
	Compared  int // present in both
}

// compare reports every benchmark of baseline and current against each
// other. Only regressions of a gated metric beyond its threshold count
// against the gate: benchmarks missing from the baseline are "new" (a
// freshly added benchmark must not break the perf gate until the baseline is
// regenerated), benchmarks missing from the current run are "missing"
// (renamed or filtered out; update the baseline), and a metric present in
// only one side — an old ns-only baseline against a -benchmem run — is
// report-only by the same contract: new metrics never fail until the
// baseline records them.
func compare(baseline, current map[string]benchResult, nsThreshold, allocThreshold float64, gate gateSpec, w io.Writer) diffSummary {
	var sum diffSummary

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			sum.Missing++
			fmt.Fprintf(w, "MISSING  %-60s baseline %.0f ns/op, absent from current run\n", name, base.NS)
			continue
		}
		sum.Compared++

		delta := cur.NS/base.NS - 1
		status := "ok      "
		if delta > nsThreshold {
			status = "REGRESS "
			if gate.ns {
				sum.Regressed++
			}
		}
		fmt.Fprintf(w, "%s %-60s %14.0f -> %14.0f ns/op  (%+.1f%%)\n", status, name, base.NS, cur.NS, 100*delta)

		switch {
		case base.HasAllocs && cur.HasAllocs:
			// Allocation counts are near-deterministic, so the gate is
			// absolute growth past the threshold fraction; a 0-alloc
			// baseline regresses on the first allocation.
			status := "ok      "
			if cur.Allocs > base.Allocs*(1+allocThreshold) && cur.Allocs > base.Allocs {
				status = "REGRESS "
				if gate.allocs {
					sum.Regressed++
				}
			}
			fmt.Fprintf(w, "%s %-60s %14.0f -> %14.0f allocs/op\n", status, name, base.Allocs, cur.Allocs)
		case cur.HasAllocs:
			fmt.Fprintf(w, "NEWMETRIC %-59s %14.0f allocs/op (baseline has no allocs; refresh it to gate)\n",
				name, cur.Allocs)
		case base.HasAllocs && gate.allocs:
			fmt.Fprintf(w, "NOMETRIC %-60s baseline has %0.f allocs/op but current run lacks -benchmem\n",
				name, base.Allocs)
		}
	}

	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		sum.New++
		fmt.Fprintf(w, "NEW      %-60s %14.0f ns/op (not in baseline; add with the next baseline refresh)\n",
			name, current[name].NS)
	}
	if sum.New > 0 || sum.Missing > 0 {
		fmt.Fprintf(w, "benchdiff: %d compared, %d new, %d missing (new/missing never fail the gate)\n",
			sum.Compared, sum.New, sum.Missing)
	}
	return sum
}
