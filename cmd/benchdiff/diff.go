package main

import (
	"fmt"
	"io"
	"sort"
)

// diffSummary is the outcome of one baseline/current comparison.
type diffSummary struct {
	Regressed int // benchmarks beyond the threshold — the only gate failures
	New       int // in current but missing from the baseline (reported, never fail)
	Missing   int // in the baseline but absent from current (reported, never fail)
	Compared  int // present in both
}

// compare reports every benchmark of baseline and current against each
// other. Only regressions beyond threshold count against the gate:
// benchmarks missing from the baseline are "new" (a freshly added
// benchmark — e.g. a server benchmark — must not break the perf gate until
// the baseline is regenerated), and benchmarks missing from the current run
// are "missing" (a renamed or filtered-out benchmark; update the baseline).
func compare(baseline, current map[string]float64, threshold float64, w io.Writer) diffSummary {
	var sum diffSummary

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			sum.Missing++
			fmt.Fprintf(w, "MISSING  %-60s baseline %.0f ns/op, absent from current run\n", name, base)
			continue
		}
		sum.Compared++
		delta := cur/base - 1
		status := "ok      "
		if delta > threshold {
			status = "REGRESS "
			sum.Regressed++
		}
		fmt.Fprintf(w, "%s %-60s %14.0f -> %14.0f ns/op  (%+.1f%%)\n", status, name, base, cur, 100*delta)
	}

	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		sum.New++
		fmt.Fprintf(w, "NEW      %-60s %14.0f ns/op (not in baseline; add with the next baseline refresh)\n",
			name, current[name])
	}
	if sum.New > 0 || sum.Missing > 0 {
		fmt.Fprintf(w, "benchdiff: %d compared, %d new, %d missing (new/missing never fail the gate)\n",
			sum.Compared, sum.New, sum.Missing)
	}
	return sum
}
