// Command renderlayout draws a placement as SVG in the style of the
// paper's Figure 5: cells blue, displacement vectors red.
//
//	renderlayout -bench fft_2 -legalize -out fft_2.svg
//	renderlayout -aux design.aux -out layout.svg -window 0,0,200,100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mclg/internal/bookshelf"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/render"
)

func main() {
	var (
		auxPath  = flag.String("aux", "", "Bookshelf .aux input file")
		bench    = flag.String("bench", "", "synthetic suite benchmark name")
		scale    = flag.Float64("scale", 0.01, "suite scale factor")
		legalize = flag.Bool("legalize", false, "run the MMSIM legalizer before rendering")
		outPath  = flag.String("out", "layout.svg", "output SVG path")
		widthPx  = flag.Float64("width", 1200, "output width in pixels")
		window   = flag.String("window", "", "x0,y0,x1,y1 sub-window in design units")
		noDisp   = flag.Bool("nodisp", false, "suppress displacement vectors")
		nets     = flag.Bool("nets", false, "draw nets as centroid stars")
	)
	flag.Parse()

	var d *design.Design
	var err error
	switch {
	case *auxPath != "":
		d, err = bookshelf.Read(*auxPath)
	case *bench != "":
		var e gen.SuiteEntry
		if e, err = gen.FindEntry(*bench); err == nil {
			d, err = gen.Generate(gen.SuiteSpec(e, *scale))
		}
	default:
		err = fmt.Errorf("one of -aux or -bench is required")
	}
	if err != nil {
		fatal(err)
	}

	if *legalize {
		stats, err := core.New(core.Options{}).Legalize(d)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("legalized: %d illegal repaired, %d iterations\n", stats.Illegal, stats.Iterations)
	}

	opts := render.Options{WidthPx: *widthPx, Displacement: !*noDisp, Nets: *nets}
	if *window != "" {
		parts := strings.Split(*window, ",")
		if len(parts) != 4 {
			fatal(fmt.Errorf("window must be x0,y0,x1,y1"))
		}
		vals := make([]float64, 4)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fatal(err)
			}
			vals[i] = v
		}
		opts.Window.X0, opts.Window.Y0, opts.Window.X1, opts.Window.Y1 = vals[0], vals[1], vals[2], vals[3]
	}
	if err := render.SVGFile(d, *outPath, opts); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *outPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "renderlayout:", err)
	os.Exit(2)
}
