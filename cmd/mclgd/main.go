// Command mclgd is the resident legalization daemon: it accepts
// legalization jobs over HTTP, runs them on a bounded worker pool, caches
// results by content, and drains gracefully on SIGTERM.
//
//	mclgd -addr :8080 -pool 2 -queue 8 -cache 128
//	curl -s localhost:8080/v1/legalize -d '{"bench":"fft_2","scale":0.004}'
//	curl -s localhost:8080/metrics
//
// See docs/serving.md for the full API and lifecycle contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers served only behind the -pprof flag
	"os"
	"os/signal"
	"syscall"
	"time"

	"mclg/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		pool         = flag.Int("pool", 2, "worker pool size (concurrent solves)")
		queueCap     = flag.Int("queue", 8, "job queue capacity (admissions past it get 429)")
		cacheCap     = flag.Int("cache", 128, "result cache capacity in entries (negative disables)")
		warmCap      = flag.Int("warm-cache", 32, "warm-start store capacity in topologies (negative disables)")
		auditAll     = flag.Bool("audit", false, "audit every eligible job on commit (method ours, non-resilient): responses carry sealed optimality certificates")
		windowsAll   = flag.Bool("windows", false, "run every eligible job (method ours, non-resilient, non-audit) through fault-isolated windowed legalization")
		windowRows   = flag.Int("window-rows", 0, "default rows per window for windowed jobs (0 = 16)")
		hedgeQ       = flag.Float64("hedge", 0, "default straggler-hedging quantile in (0,1] for windowed jobs (0 = off)")
		journalDir   = flag.String("journal-dir", "", "directory for per-job write-ahead window journals; a restarted daemon resumes interrupted windowed jobs from it (empty = journaling off)")
		ecoDir       = flag.String("eco-dir", "", "directory for durable /v1/eco session delta logs; a restarted daemon replays them to resume live sessions (empty = sessions are memory-only)")
		ecoSessions  = flag.Int("eco-sessions", 8, "max concurrently open /v1/eco sessions")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
		jobTimeout   = flag.Duration("job-timeout", 60*time.Second, "default per-job deadline (requests may shorten it)")
		maxJobTime   = flag.Duration("max-job-timeout", 2*time.Minute, "hard cap on any per-job deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on SIGTERM before they are canceled")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := serve.New(serve.Config{
		Workers:           *pool,
		QueueCap:          *queueCap,
		CacheCap:          *cacheCap,
		WarmCap:           *warmCap,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxJobTime,
		AuditAll:          *auditAll,
		WindowsAll:        *windowsAll,
		WindowRows:        *windowRows,
		HedgeQuantile:     *hedgeQ,
		JournalDir:        *journalDir,
		ECODir:            *ecoDir,
		ECOSessionCap:     *ecoSessions,
		Logger:            logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}
	handler := srv.Handler()
	if *pprofOn {
		// The pprof handlers register themselves on http.DefaultServeMux at
		// import time; mounting that mux under /debug/ keeps the profiling
		// surface opt-in and the service mux otherwise untouched.
		mux := http.NewServeMux()
		mux.Handle("/debug/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	logger.Info("mclgd listening", "addr", ln.Addr().String(),
		"pool", *pool, "queue", *queueCap, "cache", *cacheCap, "warm", *warmCap,
		"audit", *auditAll, "windows", *windowsAll, "journal_dir", *journalDir,
		"eco_dir", *ecoDir, "eco_sessions", *ecoSessions)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "grace", drainTimeout.String())
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}

	// Drain first so in-flight jobs finish (or are canceled at the grace
	// deadline) and their HTTP responses flush; then stop the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain canceled in-flight jobs at the deadline", "err", err.Error())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	logger.Info("mclgd stopped")
}
