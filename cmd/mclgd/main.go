// Command mclgd is the resident legalization daemon: it accepts
// legalization jobs over HTTP, runs them on a bounded worker pool, caches
// results by content, and drains gracefully on SIGTERM.
//
//	mclgd -addr :8080 -pool 2 -queue 8 -cache 128
//	curl -s localhost:8080/v1/legalize -d '{"bench":"fft_2","scale":0.004}'
//	curl -s localhost:8080/metrics
//
// With -role it also runs as one node of a multi-node cluster: a
// coordinator accepts the same /v1 API and ships window solves to worker
// daemons over the shard protocol, a worker serves shard solves and hosted
// ECO sessions.
//
//	mclgd -role worker -addr :8081
//	mclgd -role coordinator -addr :8080 -peers http://localhost:8081 -windows
//
// See docs/serving.md for the single-node API and docs/cluster.md for the
// cluster topology, shard protocol, and failure matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers served only behind the -pprof flag
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mclg/internal/cluster"
	"mclg/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		role         = flag.String("role", "standalone", "node role: standalone | coordinator | worker")
		peers        = flag.String("peers", "", "comma-separated worker base URLs (coordinator role), e.g. http://h1:8081,http://h2:8081")
		tenantLimits = flag.String("tenant-limits", "", "per-tenant admission rate limits, tenant=rate/burst[,...]; \"*\" is the default tenant (empty = unlimited)")
		pool         = flag.Int("pool", 2, "worker pool size (concurrent solves)")
		queueCap     = flag.Int("queue", 8, "job queue capacity (admissions past it get 429)")
		cacheCap     = flag.Int("cache", 128, "result cache capacity in entries (negative disables)")
		warmCap      = flag.Int("warm-cache", 32, "warm-start store capacity in topologies (negative disables)")
		auditAll     = flag.Bool("audit", false, "audit every eligible job on commit (method ours, non-resilient): responses carry sealed optimality certificates")
		windowsAll   = flag.Bool("windows", false, "run every eligible job (method ours, non-resilient, non-audit) through fault-isolated windowed legalization")
		windowRows   = flag.Int("window-rows", 0, "default rows per window for windowed jobs (0 = 16)")
		hedgeQ       = flag.Float64("hedge", 0, "default straggler-hedging quantile in (0,1] for windowed jobs (0 = off)")
		exactK       = flag.Int("exact", 0, "default exact-refinement window count for windowed jobs: re-solve the K worst windows with the branch-and-bound legalizer after stitch (0 = off)")
		journalDir   = flag.String("journal-dir", "", "directory for per-job write-ahead window journals; a restarted daemon resumes interrupted windowed jobs from it (empty = journaling off)")
		ecoDir       = flag.String("eco-dir", "", "directory for durable /v1/eco session delta logs; a restarted daemon replays them to resume live sessions (empty = sessions are memory-only)")
		ecoSessions  = flag.Int("eco-sessions", 8, "max concurrently open /v1/eco sessions")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
		jobTimeout   = flag.Duration("job-timeout", 60*time.Second, "default per-job deadline (requests may shorten it)")
		maxJobTime   = flag.Duration("max-job-timeout", 2*time.Minute, "hard cap on any per-job deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on SIGTERM before they are canceled")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	limits, err := cluster.ParseTenantLimits(*tenantLimits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}

	switch *role {
	case "worker":
		runWorker(logger, *addr, *pool, *ecoDir, *ecoSessions, *drainTimeout)
		return
	case "standalone", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "mclgd: unknown -role %q (want standalone, coordinator, or worker)\n", *role)
		os.Exit(2)
	}

	cfg := serve.Config{
		Workers:           *pool,
		QueueCap:          *queueCap,
		CacheCap:          *cacheCap,
		WarmCap:           *warmCap,
		DefaultJobTimeout: *jobTimeout,
		MaxJobTimeout:     *maxJobTime,
		AuditAll:          *auditAll,
		WindowsAll:        *windowsAll,
		WindowRows:        *windowRows,
		HedgeQuantile:     *hedgeQ,
		ExactWindows:      *exactK,
		JournalDir:        *journalDir,
		ECODir:            *ecoDir,
		ECOSessionCap:     *ecoSessions,
		Logger:            logger,
	}

	var extra []func(w io.Writer)
	if len(limits) > 0 {
		gate := cluster.NewTenantGate(limits)
		cfg.Gate = gate
		extra = append(extra, gate.WritePrometheus)
		logger.Info("tenant gate enabled", "limits", cluster.FormatTenantLimits(limits))
	}
	if *role == "coordinator" {
		var workerAddrs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				workerAddrs = append(workerAddrs, p)
			}
		}
		coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Peers:  workerAddrs,
			Logger: logger,
		})
		cfg.Dispatcher = coord
		extra = append(extra, coord.Metrics().WritePrometheus)
		pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
		coord.CheckPeers(pctx)
		pcancel()
		logger.Info("coordinator role", "peers", workerAddrs)
	}
	if len(extra) > 0 {
		cfg.ExtraMetrics = func(w io.Writer) {
			for _, f := range extra {
				f(w)
			}
		}
	}

	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}
	handler := srv.Handler()
	if *pprofOn {
		// The pprof handlers register themselves on http.DefaultServeMux at
		// import time; mounting that mux under /debug/ keeps the profiling
		// surface opt-in and the service mux otherwise untouched.
		mux := http.NewServeMux()
		mux.Handle("/debug/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	logger.Info("mclgd listening", "addr", ln.Addr().String(), "role", *role,
		"pool", *pool, "queue", *queueCap, "cache", *cacheCap, "warm", *warmCap,
		"audit", *auditAll, "windows", *windowsAll, "journal_dir", *journalDir,
		"eco_dir", *ecoDir, "eco_sessions", *ecoSessions)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "grace", drainTimeout.String())
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}

	// Drain first so in-flight jobs finish (or are canceled at the grace
	// deadline) and their HTTP responses flush; then stop the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain canceled in-flight jobs at the deadline", "err", err.Error())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	logger.Info("mclgd stopped")
}

// runWorker serves the shard protocol: remote window solves and hosted ECO
// sessions. On SIGTERM the worker flips /readyz to 503 (so coordinators stop
// routing to it), finishes in-flight shard jobs within the grace period, and
// exits; hosted sessions are migrated by the coordinator's drain call before
// the signal in an orchestrated drain, or resumed from durable logs after.
func runWorker(logger *slog.Logger, addr string, pool int, ecoDir string, ecoSessions int, drainTimeout time.Duration) {
	wk := cluster.NewWorker(cluster.WorkerConfig{
		ID:         addr,
		Solves:     pool,
		ECODir:     ecoDir,
		SessionCap: ecoSessions,
		Logger:     logger,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Handler: wk.Handler()}
	logger.Info("mclgd worker listening", "addr", ln.Addr().String(),
		"pool", pool, "eco_dir", ecoDir, "eco_sessions", ecoSessions)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("worker draining", "signal", sig.String(), "grace", drainTimeout.String())
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mclgd:", err)
		os.Exit(2)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := wk.Drain(drainCtx); err != nil {
		logger.Warn("worker drain timed out with shard jobs in flight", "err", err.Error())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	logger.Info("mclgd worker stopped")
}
