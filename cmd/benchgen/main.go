// Command benchgen materializes the synthetic benchmark suite as Bookshelf
// files, one directory per benchmark.
//
//	benchgen -out ./bench -scale 0.01
//	benchgen -out ./bench -bench fft_2 -scale 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mclg/internal/bookshelf"
	"mclg/internal/gen"
)

func main() {
	var (
		outDir = flag.String("out", "bench", "output directory")
		scale  = flag.Float64("scale", 0.01, "suite scale factor (1 = paper-size)")
		bench  = flag.String("bench", "", "single benchmark name (default: whole suite)")
		single = flag.Bool("single", false, "emit the single-height variants (Section 5.3)")
	)
	flag.Parse()

	entries := gen.Suite
	if *bench != "" {
		e, err := gen.FindEntry(*bench)
		if err != nil {
			fatal(err)
		}
		entries = []gen.SuiteEntry{e}
	}
	for _, e := range entries {
		spec := gen.SuiteSpec(e, *scale)
		if *single {
			spec = gen.SingleHeightVariant(spec)
		}
		d, err := gen.Generate(spec)
		if err != nil {
			fatal(err)
		}
		dir := filepath.Join(*outDir, spec.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		aux := filepath.Join(dir, spec.Name+".aux")
		if err := bookshelf.Write(d, aux); err != nil {
			fatal(err)
		}
		fmt.Printf("%-24s %8d cells  %4d rows  density %.2f  -> %s\n",
			spec.Name, len(d.Cells), len(d.Rows), d.Density(), aux)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(2)
}
