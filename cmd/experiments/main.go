// Command experiments regenerates the paper's evaluation tables on the
// synthetic suite and prints them in the paper's layout.
//
//	experiments -table1 -scale 0.01
//	experiments -table2 -bench fft_2,des_perf_b
//	experiments -single            # Section 5.3 optimality experiment
//	experiments -all -scale 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mclg/internal/core"
	"mclg/internal/experiments"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run Table 1 (illegal cells after MMSIM)")
		table2   = flag.Bool("table2", false, "run Table 2 (legalizer comparison)")
		single   = flag.Bool("single", false, "run the Section 5.3 single-height experiment")
		noise    = flag.Bool("noise", false, "run the GP-noise sensitivity sweep (E9)")
		converge = flag.String("converge", "", "record an MMSIM convergence trace for the named benchmark")
		params   = flag.Bool("params", false, "sweep the β*/θ* splitting constants")
		all      = flag.Bool("all", false, "run everything")
		scale    = flag.Float64("scale", 0.01, "suite scale factor (1 = paper-size)")
		bench    = flag.String("bench", "", "comma-separated benchmark subset")
	)
	flag.Parse()

	if !*table1 && !*table2 && !*single && !*noise && !*params && *converge == "" && !*all {
		*all = true
	}
	cfg := experiments.Config{Scale: *scale}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}

	if *table1 || *all {
		fmt.Printf("=== Table 1: benchmark statistics and illegal cells after MMSIM (scale %g) ===\n", *scale)
		rows, err := experiments.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatTable1(rows))
		fmt.Println()
	}
	if *table2 || *all {
		fmt.Printf("=== Table 2: legalizer comparison (scale %g) ===\n", *scale)
		rows, err := experiments.Table2(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatTable2(rows))
		fmt.Println()
	}
	if *single || *all {
		fmt.Printf("=== Section 5.3: MMSIM vs PlaceRow on single-height designs (scale %g) ===\n", *scale)
		rows, err := experiments.SingleRow(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatSingleRow(rows))
		fmt.Println()
	}
	if *noise || *all {
		name := "fft_2"
		if len(cfg.Benchmarks) > 0 {
			name = cfg.Benchmarks[0]
		}
		fmt.Printf("=== E9: GP-noise sensitivity on %s (scale %g) ===\n", name, *scale)
		rows, err := experiments.NoiseSensitivity(name, *scale, []float64{0.25, 0.5, 1, 2, 4, 8})
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatNoise(rows))
		fmt.Println()
	}
	if *params {
		name := "fft_2"
		if len(cfg.Benchmarks) > 0 {
			name = cfg.Benchmarks[0]
		}
		betas := []float64{0.25, 0.5, 0.75, 1.0, 1.25}
		thetas := []float64{0.25, 0.5, 1.0, 1.5, 2.0}
		fmt.Printf("=== β*/θ* sweep on %s (scale %g, iterations to converge) ===\n", name, *scale)
		pts, err := experiments.ParamSweep(name, *scale, betas, thetas)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatParamSweep(pts, betas, thetas))
		fmt.Println()
	}
	if *converge != "" {
		fmt.Printf("=== MMSIM convergence trace: %s (scale %g) ===\n", *converge, *scale)
		trace, err := experiments.ConvergenceTrace(*converge, *scale, core.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatConvergence(trace, false))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
