package cluster

import (
	"container/list"
	"sync"

	"mclg/internal/window"
)

// windowCache is the shared content-addressed window-result cache: an LRU
// keyed by WindowKey. The coordinator consults it before dispatching a
// window, and each worker keeps its own so repeat windows (identical jobs,
// retries from another coordinator, hedges) are served without solving.
// Because a window's result is a pure function of its key, a cache hit is
// always bit-identical to a fresh solve — caching is invisible to the
// placement.
type windowCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element

	hits, misses, evictions counter
}

type cacheEntry struct {
	key   string
	cells []window.CellPos
}

// newWindowCache builds a cache bounded to capacity entries; capacity <= 0
// disables caching (every lookup misses).
func newWindowCache(capacity int) *windowCache {
	return &windowCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached cells for key, if present.
func (c *windowCache) get(key string) ([]window.CellPos, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.inc()
	return el.Value.(*cacheEntry).cells, true
}

// put stores the cells for key. Degraded results must not be cached by the
// caller: a degraded window is a per-run fallback, not the window's answer.
func (c *windowCache) put(key string, cells []window.CellPos) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).cells = cells
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, cells: cells})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
		c.evictions.inc()
	}
}

// len reports the current entry count.
func (c *windowCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
