package cluster

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mclg/internal/design"
	"mclg/internal/regress"
	"mclg/internal/window"
)

// jitterGX nudges every movable cell's global x by a tiny deterministic
// amount: positions change (so neither result cache can answer), topology
// does not (so the worker's warm pool routes the re-solve onto the pooled
// state for each window).
func jitterGX(d *design.Design, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		c.GX += (rng.Float64()*2 - 1) * 1e-3
		c.X = c.GX
	}
}

// TestClusterWarmPoolReuse covers the worker warm-pool satellite end to end:
// a first dispatch runs every shard cold (misses only), a re-dispatch of the
// same topology with moved cells reuses pooled warm states (hits recorded),
// and the warm-path placement stays bit-identical to a standalone solve of
// the same moved design.
func TestClusterWarmPoolReuse(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	m := NewMetrics()
	wk := NewWorker(WorkerConfig{Solves: 2, Metrics: m})
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()
	coord := NewCoordinator(CoordinatorConfig{Peers: []string{srv.URL}})

	d1 := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d1, clusterOptions()); err != nil {
		t.Fatalf("first dispatch: %v", err)
	}
	if m.WarmHits() != 0 {
		t.Fatalf("first pass through a fresh pool recorded %d warm hits, want 0", m.WarmHits())
	}
	if m.WarmMisses() == 0 {
		t.Fatal("first pass recorded no warm-pool misses — pool not wired into shard solves")
	}

	// Standalone reference for the moved design.
	ref := clusterTestDesign(t, bench, scale)
	jitterGX(ref, 97)
	if _, err := window.Legalize(context.Background(), ref, clusterOptions()); err != nil {
		t.Fatalf("standalone Legalize: %v", err)
	}
	want := regress.PositionHash(ref)

	d2 := clusterTestDesign(t, bench, scale)
	jitterGX(d2, 97)
	if _, err := coord.DispatchWindows(context.Background(), d2, clusterOptions()); err != nil {
		t.Fatalf("second dispatch: %v", err)
	}
	if m.WarmHits() == 0 {
		t.Fatal("re-dispatch of the same topology recorded no warm-pool hits")
	}
	if got := regress.PositionHash(d2); got != want {
		t.Fatalf("warm-path placement %s != standalone %s — warm reuse changed positions", got, want)
	}

	// The outcome counters are exported on the worker's scrape surface.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`mclgd_cluster_warm_total{result="hit"}`,
		`mclgd_cluster_warm_total{result="miss"}`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestWorkerWarmPoolConfig pins the WarmCap contract: zero means a default
// pool, negative disables pooling entirely.
func TestWorkerWarmPoolConfig(t *testing.T) {
	if wk := NewWorker(WorkerConfig{}); wk.warm == nil {
		t.Fatal("default worker has no warm pool")
	}
	if wk := NewWorker(WorkerConfig{WarmCap: -1}); wk.warm != nil {
		t.Fatal("WarmCap < 0 should disable the warm pool")
	}
}

// TestShardWarmKeyPositionInvariant: the warm routing key ignores cell
// positions but distinguishes window index and structural edits.
func TestShardWarmKeyPositionInvariant(t *testing.T) {
	d1 := clusterTestDesign(t, "fft_2", 0.004)
	d2 := clusterTestDesign(t, "fft_2", 0.004)
	jitterGX(d2, 131)
	opts := clusterOptions().Cascade.Base

	if shardWarmKey(d1, 3, &opts) != shardWarmKey(d2, 3, &opts) {
		t.Fatal("warm key changed under a position-only perturbation")
	}
	if shardWarmKey(d1, 3, &opts) == shardWarmKey(d1, 4, &opts) {
		t.Fatal("warm key does not separate window indices")
	}
	d3 := clusterTestDesign(t, "fft_2", 0.004)
	for _, c := range d3.Cells {
		if !c.Fixed {
			c.W += d3.SiteW
			break
		}
	}
	if shardWarmKey(d1, 3, &opts) == shardWarmKey(d3, 3, &opts) {
		t.Fatal("warm key missed a structural width change")
	}
}
