package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/eco"
	"mclg/internal/regress"
	"mclg/internal/window"
)

// clusterOptions are the windowed-solve knobs shared by every test: small
// windows so even the small benchmarks shard into several jobs.
func clusterOptions() window.Options {
	return window.Options{
		Cascade:       core.ResilientOptions{Base: core.Options{Workers: 1}},
		WindowRows:    4,
		ContextRows:   2,
		WindowTimeout: 2 * time.Minute,
	}
}

// standaloneHash solves the design single-node and returns its placement
// digest — the reference every cluster path must reproduce bit-for-bit.
func standaloneHash(t *testing.T, bench string, scale float64) string {
	t.Helper()
	d := clusterTestDesign(t, bench, scale)
	if _, err := window.Legalize(context.Background(), d, clusterOptions()); err != nil {
		t.Fatalf("standalone Legalize: %v", err)
	}
	return regress.PositionHash(d)
}

// startWorkers launches n in-process worker daemons and returns their base
// URLs (which double as ring identities).
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		wk := NewWorker(WorkerConfig{Solves: 2})
		srv := httptest.NewServer(wk.Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestClusterPlacementIdenticalAcrossWorkerCounts is the core acceptance
// property: on the regress trio, the cluster path's stitched placement is
// bit-identical to the standalone solve at 1, 2, and 3 workers.
func TestClusterPlacementIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, c := range []struct {
		bench string
		scale float64
	}{
		{"des_perf_1", 0.004},
		{"fft_2", 0.004},
		{"superblue19", 0.002},
	} {
		t.Run(c.bench, func(t *testing.T) {
			want := standaloneHash(t, c.bench, c.scale)
			for _, n := range []int{1, 2, 3} {
				coord := NewCoordinator(CoordinatorConfig{Peers: startWorkers(t, n)})
				d := clusterTestDesign(t, c.bench, c.scale)
				st, err := coord.DispatchWindows(context.Background(), d, clusterOptions())
				if err != nil {
					t.Fatalf("%d workers: DispatchWindows: %v", n, err)
				}
				if got := regress.PositionHash(d); got != want {
					t.Fatalf("%d workers: placement %s != standalone %s", n, got, want)
				}
				if st.Solved == 0 {
					t.Fatalf("%d workers: no windows solved (%+v)", n, st)
				}
				if got := coord.Metrics().RoutedTotal(); got == 0 {
					t.Fatalf("%d workers: nothing routed remotely", n)
				}
			}
		})
	}
}

// TestClusterRemoveWorkerMidJobReroutes rips a worker out of the ring while
// a job is in flight: its first shard request triggers the membership change
// and fails, the retry re-routes along the updated preference list, and the
// stitched placement is still bit-identical to standalone.
func TestClusterRemoveWorkerMidJobReroutes(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	want := standaloneHash(t, bench, scale)

	survivor := startWorkers(t, 1)[0]
	var coord *Coordinator
	var victimURL string // assigned before any dispatch can reach the handler
	var removed atomic.Bool
	victimWk := NewWorker(WorkerConfig{Solves: 2})
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathSolve {
			// First solve on the victim: the operator removes it mid-job.
			// The in-flight request fails; the supervised retry must land on
			// the survivor because the ring no longer lists the victim.
			if removed.CompareAndSwap(false, true) {
				coord.RemoveWorker(victimURL)
			}
			writeShardErr(w, http.StatusInternalServerError, "solver", "worker evicted mid-solve")
			return
		}
		victimWk.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(victim.Close)
	victimURL = victim.URL

	coord = NewCoordinator(CoordinatorConfig{Peers: []string{survivor, victim.URL}})
	d := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d, clusterOptions()); err != nil {
		t.Fatalf("DispatchWindows across mid-job removal: %v", err)
	}
	if got := regress.PositionHash(d); got != want {
		t.Fatalf("placement %s != standalone %s", got, want)
	}
	if !removed.Load() {
		t.Skip("routing never touched the victim (degenerate split); nothing to assert")
	}
	if nodes := coord.Workers(); len(nodes) != 1 || nodes[0] != survivor {
		t.Fatalf("ring after removal = %v, want just the survivor", nodes)
	}
	// Every window the victim failed was re-routed, so the survivor (or the
	// coordinator-local fallback) answered everything.
	if coord.Metrics().Routed(victim.URL) != 0 {
		t.Fatalf("windows recorded as served by the removed worker")
	}
}

// TestClusterSurvivesDeadWorker kills one of two workers' listeners before
// dispatch: every window it owned fails over along the preference list, the
// worker is marked down, and the placement still matches standalone.
func TestClusterSurvivesDeadWorker(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	want := standaloneHash(t, bench, scale)

	addrs := startWorkers(t, 2)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := dead.URL
	dead.Close() // connection refused from the first dial

	coord := NewCoordinator(CoordinatorConfig{Peers: append(addrs, deadAddr)})
	d := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d, clusterOptions()); err != nil {
		t.Fatalf("DispatchWindows with a dead worker: %v", err)
	}
	if got := regress.PositionHash(d); got != want {
		t.Fatalf("placement %s != standalone %s", got, want)
	}
}

// TestClusterFallsBackLocalWhenNoWorkerUsable runs a coordinator whose only
// peer is unreachable: every window degrades to a coordinator-local solve and
// the result is still bit-identical — a limping cluster is exactly a
// standalone node.
func TestClusterFallsBackLocalWhenNoWorkerUsable(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	want := standaloneHash(t, bench, scale)

	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := dead.URL
	dead.Close()

	coord := NewCoordinator(CoordinatorConfig{Peers: []string{deadAddr}})
	d := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d, clusterOptions()); err != nil {
		t.Fatalf("DispatchWindows with no usable workers: %v", err)
	}
	if got := regress.PositionHash(d); got != want {
		t.Fatalf("placement %s != standalone %s", got, want)
	}
	if coord.Metrics().localFallbacks.get() == 0 {
		t.Fatal("expected coordinator-local fallbacks")
	}

	// An empty peer list is the same degenerate cluster, explicitly.
	coord2 := NewCoordinator(CoordinatorConfig{})
	d2 := clusterTestDesign(t, bench, scale)
	if _, err := coord2.DispatchWindows(context.Background(), d2, clusterOptions()); err != nil {
		t.Fatalf("DispatchWindows with no peers: %v", err)
	}
	if got := regress.PositionHash(d2); got != want {
		t.Fatalf("peerless placement %s != standalone %s", got, want)
	}
}

// TestClusterCacheHits exercises both cache tiers: the coordinator's own
// cache short-circuits a repeat dispatch without any HTTP, and a second
// coordinator sharing the same workers is served from the workers' caches
// (Cached responses) without re-solving.
func TestClusterCacheHits(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	addrs := startWorkers(t, 2)

	coord := NewCoordinator(CoordinatorConfig{Peers: addrs})
	d := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d, clusterOptions()); err != nil {
		t.Fatal(err)
	}
	want := regress.PositionHash(d)
	routedBefore := coord.Metrics().RoutedTotal()

	d2 := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d2, clusterOptions()); err != nil {
		t.Fatal(err)
	}
	if got := regress.PositionHash(d2); got != want {
		t.Fatalf("repeat placement %s != %s", got, want)
	}
	if coord.Metrics().cacheLocalHits.get() == 0 {
		t.Fatal("repeat dispatch produced no coordinator-cache hits")
	}
	if coord.Metrics().RoutedTotal() != routedBefore {
		t.Fatal("repeat dispatch re-routed windows despite local cache")
	}

	// A fresh coordinator with a cold local cache but the same workers: the
	// workers answer from their own caches.
	coord2 := NewCoordinator(CoordinatorConfig{Peers: addrs})
	d3 := clusterTestDesign(t, bench, scale)
	if _, err := coord2.DispatchWindows(context.Background(), d3, clusterOptions()); err != nil {
		t.Fatal(err)
	}
	if got := regress.PositionHash(d3); got != want {
		t.Fatalf("second-coordinator placement %s != %s", got, want)
	}
	if coord2.Metrics().RemoteCacheHits() == 0 {
		t.Fatal("second coordinator saw no worker-cache hits")
	}
}

// stallHandler wraps a worker handler and stalls PathSolve requests for the
// given window indices until the request is canceled (the hedge winning and
// the supervisor canceling the loser), proving hedges route to a different
// machine and win.
func stallHandler(next http.Handler, stalled map[int]bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathSolve {
			raw, _ := io.ReadAll(r.Body)
			var req solveRequest
			_ = json.Unmarshal(raw, &req)
			if stalled[req.Window] {
				<-r.Context().Done()
				writeShardErr(w, http.StatusInternalServerError, "canceled", "stalled")
				return
			}
			r.Body = io.NopCloser(strings.NewReader(string(raw)))
		}
		next.ServeHTTP(w, r)
	})
}

// TestClusterHedgeWinsOnSecondOwner makes one worker a straggler for the
// windows it primarily owns: the hedge re-issue pins the second-ranked owner
// (a different machine), wins, and the placement still matches standalone.
func TestClusterHedgeWinsOnSecondOwner(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	want := standaloneHash(t, bench, scale)

	// The stalled windows are decided after routing is known: recreate the
	// routing inputs (sig and keys) exactly as the coordinator will.
	d := clusterTestDesign(t, bench, scale)
	opts := clusterOptions()
	base := core.New(opts.Cascade.Base).Opts
	sig := window.Sig(d, opts.WindowRows, opts.ContextRows, base)
	p, err := window.Partition(d, opts.WindowRows, opts.ContextRows)
	if err != nil {
		t.Fatal(err)
	}

	// Ring identities come from ephemeral httptest ports, so a given server
	// pair may degenerately own all or none of the windows. Redraw servers
	// until both own at least one — the hedge needs a completing worker (to
	// cross the quantile) and a stalled one (to hedge against).
	var srvA, srvB *httptest.Server
	stalledA := map[int]bool{}
	for tries := 0; ; tries++ {
		if tries == 50 {
			t.Fatal("no non-degenerate routing split in 50 draws")
		}
		wkA := NewWorker(WorkerConfig{Solves: 2})
		wkB := NewWorker(WorkerConfig{Solves: 2})
		srvA = httptest.NewServer(stallHandler(wkA.Handler(), stalledA))
		srvB = httptest.NewServer(wkB.Handler())
		ring := NewRing([]string{srvA.URL, srvB.URL}, 0)
		aOwned, bOwned := 0, 0
		for wi := range p.Bands {
			if ring.Owner(WindowKey(sig, wi)) == srvA.URL {
				stalledA[wi] = true
				aOwned++
			} else {
				bOwned++
			}
		}
		if aOwned > 0 && bOwned > 0 {
			t.Cleanup(srvA.Close)
			t.Cleanup(srvB.Close)
			break
		}
		srvA.Close()
		srvB.Close()
		for wi := range stalledA {
			delete(stalledA, wi)
		}
	}

	// A minimal hedge quantile: the first completion (from the non-stalled
	// worker) crosses the threshold and hedges every straggler. All windows
	// must be in flight together — with one window goroutine the first
	// stalled primary would block the queue until its timeout, and hedges
	// for not-yet-started windows never launch — so the supervisor gets one
	// goroutine per window. The stalled primaries are canceled by their
	// winning hedges; the timeout is only the broken-hedge failure bound.
	opts.Cascade.Base.Workers = len(p.Bands)
	opts.WindowTimeout = 30 * time.Second
	opts.HedgeQuantile = 0.01
	coord := NewCoordinator(CoordinatorConfig{Peers: []string{srvA.URL, srvB.URL}})
	st, err := coord.DispatchWindows(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("DispatchWindows: %v", err)
	}
	if got := regress.PositionHash(d); got != want {
		t.Fatalf("placement %s != standalone %s", got, want)
	}
	if st.HedgesWon == 0 {
		t.Fatalf("no hedge won against the stalled primary (%+v)", st)
	}
	if coord.Metrics().hedgedRemote.get() == 0 {
		t.Fatal("hedge attempts were not routed remotely")
	}
}

// TestWorkerDrainFlipsReadyzAndRefusesSolves pins the drain contract on the
// worker side: /readyz answers 200 before and 503 during a drain, new shard
// solves are refused 503, and session export stays available for migration.
func TestWorkerDrainFlipsReadyzAndRefusesSolves(t *testing.T) {
	wk := NewWorker(WorkerConfig{Solves: 1})
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()

	status := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", got)
	}

	resp, err := http.Post(srv.URL+PathDrain, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain = %d, want 202", resp.StatusCode)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", got)
	}

	solveResp, err := http.Post(srv.URL+PathSolve, "application/json",
		strings.NewReader(`{"key":"k","window":0,"sub":{"row_h":1,"site_w":1,"rows":[{"y":0,"h":1,"ox":0,"sw":1,"ns":8,"r":0}],"cells":[]},"idx":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, solveResp.Body)
	solveResp.Body.Close()
	if solveResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain = %d, want 503", solveResp.StatusCode)
	}
	if wk.m.refusedDrain.get() == 0 {
		t.Fatal("refused-while-draining counter not bumped")
	}

	// Drain with nothing in flight returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := wk.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestCoordinatorRoutesAwayFromDrainingWorker: after CheckPeers observes a
// draining worker's 503, no further windows route to it.
func TestCoordinatorRoutesAwayFromDrainingWorker(t *testing.T) {
	const bench, scale = "fft_2", 0.004
	want := standaloneHash(t, bench, scale)

	addrs := startWorkers(t, 2)
	resp, err := http.Post(addrs[0]+PathDrain, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	coord := NewCoordinator(CoordinatorConfig{Peers: addrs, DownTTL: time.Hour})
	coord.CheckPeers(context.Background())

	d := clusterTestDesign(t, bench, scale)
	if _, err := coord.DispatchWindows(context.Background(), d, clusterOptions()); err != nil {
		t.Fatal(err)
	}
	if got := regress.PositionHash(d); got != want {
		t.Fatalf("placement %s != standalone %s", got, want)
	}
	if coord.Metrics().refusedDrain.get() != 0 {
		t.Fatal("coordinator still dispatched to the draining worker")
	}
	routed := coord.Metrics().RoutedByWorker()
	if routed[addrs[0]] != 0 {
		t.Fatalf("draining worker served %d windows, want 0", routed[addrs[0]])
	}
	if routed[addrs[1]] == 0 {
		t.Fatal("surviving worker served nothing")
	}
}

// ecoMoveDeltas builds a move batch over the first n movable cells, pushing
// each sites sites to the right of its original position.
func ecoMoveDeltas(d *design.Design, n int, sites float64) []eco.Delta {
	var out []eco.Delta
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		out = append(out, eco.Delta{
			Op: eco.OpMove, Cell: c.ID,
			X: c.X + sites*d.SiteW, Y: c.Y,
		})
		if len(out) == n {
			break
		}
	}
	return out
}

// TestECOSessionMigratesOnDrain is the session-migration contract end to
// end: create a session through the coordinator, apply deltas, drain its
// hosting worker — the session is rebuilt on the other worker by verified
// replay and keeps serving applies with a consistent hash chain.
func TestECOSessionMigratesOnDrain(t *testing.T) {
	addrs := startWorkers(t, 2)
	coord := NewCoordinator(CoordinatorConfig{Peers: addrs, DownTTL: time.Hour})
	ctx := context.Background()

	base := clusterTestDesign(t, "fft_2", 0.004)
	const id = "mig-1"
	if _, err := coord.ECOCreate(ctx, id, base, 0, 0, core.Options{Workers: 1}); err != nil {
		t.Fatalf("ECOCreate: %v", err)
	}
	origin, ok := coord.SessionHosts()[id]
	if !ok {
		t.Fatal("session host not recorded")
	}

	seq, hashBefore, err := coord.ECOApply(ctx, id, ecoMoveDeltas(base, 3, 2))
	if err != nil {
		t.Fatalf("ECOApply: %v", err)
	}
	if seq != 1 || hashBefore == "" {
		t.Fatalf("apply: seq=%d hash=%q", seq, hashBefore)
	}

	migrated, err := coord.DrainWorker(ctx, origin)
	if err != nil {
		t.Fatalf("DrainWorker: %v", err)
	}
	if len(migrated) != 1 || migrated[0] != id {
		t.Fatalf("migrated %v, want [%s]", migrated, id)
	}
	target := coord.SessionHosts()[id]
	if target == origin || target == "" {
		t.Fatalf("session still on %q after drain of %q", target, origin)
	}
	if got := coord.Metrics().MigratedSessions(); got != 1 {
		t.Fatalf("migrated-sessions metric = %d, want 1", got)
	}

	// The migrated session keeps working, continuing the same history (a
	// different target position, so the committed hash must advance).
	seq2, hashAfter, err := coord.ECOApply(ctx, id, ecoMoveDeltas(base, 1, 6))
	if err != nil {
		t.Fatalf("ECOApply after migration: %v", err)
	}
	if seq2 != 2 {
		t.Fatalf("post-migration seq = %d, want 2", seq2)
	}
	if hashAfter == "" || hashAfter == hashBefore {
		t.Fatalf("post-migration hash %q did not advance from %q", hashAfter, hashBefore)
	}
	if err := coord.ECOClose(ctx, id); err != nil {
		t.Fatalf("ECOClose: %v", err)
	}
}

// TestCoordinatorRejectsCorruptShardResponse: a worker answering with cells
// outside the window's owned set is caught at the coordinator, not stitched.
func TestCoordinatorRejectsCorruptShardResponse(t *testing.T) {
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathSolve {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, solveResponse{Cells: []window.CellPos{{ID: 999999, X: 0, Y: 0}}})
	}))
	defer lying.Close()

	d := clusterTestDesign(t, "fft_2", 0.004)
	opts := clusterOptions()
	opts.MaxRetries = 0
	coord := NewCoordinator(CoordinatorConfig{Peers: []string{lying.URL}})
	p, err := window.Partition(d, opts.WindowRows, opts.ContextRows)
	if err != nil {
		t.Fatal(err)
	}
	base := core.New(opts.Cascade.Base).Opts
	sig := window.Sig(d, opts.WindowRows, opts.ContextRows, base)
	_, err = coord.solveOne(context.Background(), d, p, 0, 0, sig, EncodeOptions(opts.Cascade), opts.Cascade)
	if err == nil || !strings.Contains(err.Error(), "outside its owned set") && !strings.Contains(err.Error(), "owns") {
		t.Fatalf("corrupt response accepted: %v", err)
	}
}

// TestMetricsExposition smoke-checks the Prometheus rendering.
func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.routedTo("http://w1:9", 0.01)
	m.cacheRemoteHits.inc()
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`mclgd_cluster_routed_total{worker="http://w1:9"} 1`,
		`mclgd_cluster_cache_hits_total{location="remote"} 1`,
		"mclgd_cluster_shard_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
