package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mclg/internal/mclgerr"
)

func TestParseTenantLimits(t *testing.T) {
	limits, err := ParseTenantLimits("acme=5/10, *=1/2 ,big=0.5/4")
	if err != nil {
		t.Fatal(err)
	}
	if limits["acme"] != (TenantLimit{Rate: 5, Burst: 10}) ||
		limits["*"] != (TenantLimit{Rate: 1, Burst: 2}) ||
		limits["big"] != (TenantLimit{Rate: 0.5, Burst: 4}) {
		t.Fatalf("parsed %v", limits)
	}
	if got := FormatTenantLimits(limits); got != "*=1/2,acme=5/10,big=0.5/4" {
		t.Fatalf("FormatTenantLimits = %q", got)
	}
	if empty, err := ParseTenantLimits("  "); err != nil || len(empty) != 0 {
		t.Fatalf("empty spec: %v %v", empty, err)
	}
	for _, bad := range []string{
		"acme", "acme=5", "acme=x/2", "acme=5/x", "acme=-1/2",
		"acme=5/0.5", "=5/2", "acme=5/2,acme=1/1",
	} {
		if _, err := ParseTenantLimits(bad); !errors.Is(err, mclgerr.ErrInvalidInput) {
			t.Errorf("ParseTenantLimits(%q) = %v, want invalid-input", bad, err)
		}
	}
}

// gateAt builds a gate with a controllable clock.
func gateAt(limits map[string]TenantLimit) (*TenantGate, *time.Time) {
	g := NewTenantGate(limits)
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	return g, &now
}

func TestTenantGateInteractiveDrainsBucket(t *testing.T) {
	g, now := gateAt(map[string]TenantLimit{"acme": {Rate: 1, Burst: 4}})
	for i := 0; i < 4; i++ {
		if ok, _ := g.Admit("acme", PriorityInteractive); !ok {
			t.Fatalf("admission %d refused with tokens left", i)
		}
	}
	ok, wait := g.Admit("acme", PriorityInteractive)
	if ok || wait <= 0 {
		t.Fatalf("over-burst admission: ok=%v wait=%v", ok, wait)
	}
	// Refill at 1 token/s: after the advertised wait the same admission
	// must succeed.
	*now = now.Add(wait)
	if ok, _ := g.Admit("acme", PriorityInteractive); !ok {
		t.Fatal("admission refused after waiting the advertised Retry-After")
	}
	admitted, throttled := g.Counts()
	if admitted != 5 || throttled != 1 {
		t.Fatalf("counts = %d admitted %d throttled", admitted, throttled)
	}
}

// TestTenantGateBatchLeavesInteractiveReserve pins the priority contract:
// batch work cannot take the bucket below the interactive reserve, so a batch
// flood never locks out the tenant's own interactive traffic.
func TestTenantGateBatchLeavesInteractiveReserve(t *testing.T) {
	g, _ := gateAt(map[string]TenantLimit{"acme": {Rate: 1, Burst: 8}})
	batch := 0
	for {
		ok, _ := g.Admit("acme", PriorityBatch)
		if !ok {
			break
		}
		batch++
		if batch > 8 {
			t.Fatal("batch admissions exceeded burst")
		}
	}
	if batch == 0 {
		t.Fatal("no batch admission at full bucket")
	}
	// The reserve (25% of burst = 2 tokens) must still admit interactive.
	inter := 0
	for {
		ok, _ := g.Admit("acme", PriorityInteractive)
		if !ok {
			break
		}
		inter++
		if inter > 8 {
			t.Fatal("interactive admissions exceeded burst")
		}
	}
	if inter == 0 {
		t.Fatal("batch flood starved interactive traffic out of its reserve")
	}
}

func TestTenantGateDefaultAndUnlimited(t *testing.T) {
	g, _ := gateAt(map[string]TenantLimit{"*": {Rate: 1, Burst: 1}})
	if ok, _ := g.Admit("anyone", PriorityInteractive); !ok {
		t.Fatal("first admission under the default limit refused")
	}
	if ok, _ := g.Admit("anyone", PriorityInteractive); ok {
		t.Fatal("default limit not applied to unlisted tenant")
	}
	// Separate tenants get separate buckets under the default.
	if ok, _ := g.Admit("other", PriorityInteractive); !ok {
		t.Fatal("default-limit buckets must be per-tenant")
	}

	open := NewTenantGate(nil)
	for i := 0; i < 100; i++ {
		if ok, _ := open.Admit("anyone", PriorityBatch); !ok {
			t.Fatal("gate without limits must admit everything")
		}
	}
}

func TestTenantGateWritePrometheus(t *testing.T) {
	g, _ := gateAt(map[string]TenantLimit{"acme": {Rate: 1, Burst: 1}})
	g.Admit("acme", PriorityInteractive)
	g.Admit("acme", PriorityInteractive)
	var sb strings.Builder
	g.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`mclgd_cluster_admissions_total{decision="admitted"} 1`,
		`mclgd_cluster_admissions_total{decision="throttled"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
