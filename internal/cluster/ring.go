package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the per-worker virtual-node count. Rendezvous hashing is
// already minimally disruptive (removing a worker remaps only that worker's
// share); virtual nodes smooth the per-worker load split when the worker
// count is small, at the cost of vnodes extra hashes per score.
const DefaultVNodes = 32

// Ring routes window keys to workers with rendezvous (highest-random-weight)
// hashing over virtual nodes: a worker's score for a key is the maximum
// FNV-64a hash over its vnode labels joined with the key, and the owner
// preference list is all workers sorted by descending score. The properties
// the cluster leans on:
//
//   - Deterministic: every coordinator with the same member list computes the
//     same preference list for a key, with no shared state.
//   - Minimally disruptive: adding or removing a worker changes the top
//     owner only for keys that worker wins — the expected ~1/N share — so a
//     membership change never reshuffles the cache or in-flight routing for
//     everyone else.
//   - Natural failover: the preference list is a ready-made retry order; a
//     failed attempt just advances to the next-ranked worker.
type Ring struct {
	mu     sync.RWMutex
	nodes  []string
	vnodes int
}

// NewRing builds a ring over the given workers; vnodes <= 0 takes
// DefaultVNodes. Node order is irrelevant (scores are, not positions).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	r.SetNodes(nodes)
	return r
}

// SetNodes replaces the membership. Duplicates are dropped.
func (r *Ring) SetNodes(nodes []string) {
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r.mu.Lock()
	r.nodes = uniq
	r.mu.Unlock()
}

// Add inserts a worker (no-op if present).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n == node {
			return
		}
	}
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
}

// Remove deletes a worker (no-op if absent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.nodes {
		if n == node {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			return
		}
	}
}

// Nodes returns the current membership, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.nodes...)
}

// mix64 is a finalizing avalanche pass (the murmur3/splitmix constants). FNV
// alone is unusable here: a trailing-byte difference perturbs the sum by at
// most ~2^48, far less than the typical gap between two workers' max-of-vnode
// scores, so keys sharing a long prefix — exactly the shape of WindowKey —
// would all route to the same worker.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// score is one worker's rendezvous weight for a key: the max finalized hash
// over its virtual nodes. FNV-64a over "node#vnode|key" then mix64 — stable
// across processes and Go versions, which rendezvous routing requires
// (unlike maphash).
func (r *Ring) score(node, key string) uint64 {
	var best uint64
	for v := 0; v < r.vnodes; v++ {
		h := fnv.New64a()
		h.Write([]byte(node))
		h.Write([]byte{'#'})
		h.Write([]byte(strconv.Itoa(v)))
		h.Write([]byte{'|'})
		h.Write([]byte(key))
		if s := mix64(h.Sum64()); s > best {
			best = s
		}
	}
	return best
}

// Owners returns every worker ranked by descending rendezvous score for the
// key (score ties break on the node name, so the order is total). Index 0 is
// the primary owner; the rest is the failover/hedge order.
func (r *Ring) Owners(key string) []string {
	r.mu.RLock()
	nodes := append([]string(nil), r.nodes...)
	vnodes := r.vnodes
	r.mu.RUnlock()
	if len(nodes) == 0 {
		return nil
	}
	rr := &Ring{vnodes: vnodes}
	type scored struct {
		node  string
		score uint64
	}
	ss := make([]scored, len(nodes))
	for i, n := range nodes {
		ss[i] = scored{node: n, score: rr.score(n, key)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].node < ss[j].node
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.node
	}
	return out
}

// Owner returns the primary owner for a key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}
