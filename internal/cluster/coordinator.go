package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/eco"
	"mclg/internal/mclgerr"
	"mclg/internal/window"
)

// CoordinatorConfig parameterizes a coordinator.
type CoordinatorConfig struct {
	// Peers are the worker base URLs (e.g. "http://10.0.0.2:9090"). The
	// peer string is both the ring identity and the dial target.
	Peers []string
	// VNodes is the per-worker virtual-node count; 0 means DefaultVNodes.
	VNodes int
	// CacheCap bounds the coordinator's shared window-result cache; 0 means
	// 1024, negative disables it.
	CacheCap int
	// DownTTL is how long a worker observed unreachable stays out of the
	// routing tables before it is retried; 0 means 10s. Workers that
	// answered /readyz with 503 (draining) also wait out this TTL, but a
	// drain started through DrainWorker is permanent until ReinstateWorker.
	DownTTL time.Duration
	// Client performs shard requests; nil uses a fresh http.Client (no
	// global timeout — each request carries the attempt context).
	Client *http.Client
	// Metrics receives the coordinator's observability series; nil
	// allocates a private registry.
	Metrics *Metrics
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.CacheCap == 0 {
		c.CacheCap = 1024
	}
	if c.DownTTL <= 0 {
		c.DownTTL = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Coordinator shards window jobs across worker daemons. DispatchWindows is
// a drop-in replacement for the local windowed solve: it runs the same
// supervised window.Legalize, but every solve attempt ships the window's
// sub-design to a rendezvous-routed worker — consulting the shared
// content-addressed result cache first — and every failure path (worker
// crash, drain refusal, timeout) re-routes along the owner preference list,
// degrading to a coordinator-local solve when no worker is usable. The
// stitched placement is bit-identical to a single-node solve for any worker
// count, failure, or hedge history, because a window's result is a pure
// function of its content key no matter where it is computed.
type Coordinator struct {
	cfg   CoordinatorConfig
	ring  *Ring
	cache *windowCache
	m     *Metrics
	log   *slog.Logger

	mu      sync.Mutex
	down    map[string]time.Time // worker -> unusable until (reactive marking)
	drained map[string]bool      // worker -> drained via DrainWorker (sticky)
	now     func() time.Time     // injectable for tests

	sessMu   sync.Mutex
	sessions map[string]string // ECO session id -> hosting worker
}

// NewCoordinator builds a coordinator over the given peers. An empty peer
// list is legal: every window then solves coordinator-locally, which is
// exactly the standalone path.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.Peers, cfg.VNodes),
		cache:    newWindowCache(cfg.CacheCap),
		m:        cfg.Metrics,
		log:      cfg.Logger,
		down:     make(map[string]time.Time),
		drained:  make(map[string]bool),
		now:      time.Now,
		sessions: make(map[string]string),
	}
}

// Metrics exposes the coordinator's registry (for the daemon's /metrics).
func (c *Coordinator) Metrics() *Metrics { return c.m }

// Workers returns the ring membership.
func (c *Coordinator) Workers() []string { return c.ring.Nodes() }

// AddWorker inserts a worker into the ring (rendezvous hashing remaps only
// the ~1/N of window keys the new worker now wins).
func (c *Coordinator) AddWorker(addr string) { c.ring.Add(addr) }

// RemoveWorker deletes a worker from the ring. In-flight attempts against
// it fail and re-route via the supervised retry path.
func (c *Coordinator) RemoveWorker(addr string) {
	c.ring.Remove(addr)
	c.mu.Lock()
	delete(c.down, addr)
	delete(c.drained, addr)
	c.mu.Unlock()
}

// ReinstateWorker clears a worker's drained/down marks (e.g. after it
// restarted) so routing resumes.
func (c *Coordinator) ReinstateWorker(addr string) {
	c.mu.Lock()
	delete(c.down, addr)
	delete(c.drained, addr)
	c.mu.Unlock()
}

// markDown takes a worker out of routing for DownTTL after an observed
// refusal or transport failure.
func (c *Coordinator) markDown(addr string) {
	c.mu.Lock()
	c.down[addr] = c.now().Add(c.cfg.DownTTL)
	c.mu.Unlock()
	c.log.Warn("worker marked down", "worker", addr, "ttl", c.cfg.DownTTL.String())
}

// usable filters an owner preference list down to workers not currently
// marked down or drained, preserving order.
func (c *Coordinator) usable(owners []string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := owners[:0:0]
	for _, o := range owners {
		if c.drained[o] {
			continue
		}
		if until, bad := c.down[o]; bad {
			if now.Before(until) {
				continue
			}
			delete(c.down, o) // TTL expired: give it another chance
		}
		out = append(out, o)
	}
	return out
}

// CheckPeers probes every ring member's /readyz and updates the routing
// tables: non-ready workers are marked down, recovered workers are cleared.
// Reactive marking during dispatch makes this optional, but a periodic probe
// notices drains before the next job trips over them.
func (c *Coordinator) CheckPeers(ctx context.Context) {
	for _, addr := range c.ring.Nodes() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil)
		if err != nil {
			continue
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			c.markDown(addr)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			c.markDown(addr)
			continue
		}
		c.mu.Lock()
		if !c.drained[addr] {
			delete(c.down, addr)
		}
		c.mu.Unlock()
	}
}

// DispatchWindows is the cluster-path windowed solve, signature-compatible
// with the daemon's dispatcher hook. It normalizes the solver options (so
// coordinator, workers, and cache keys all see the same resolved problem),
// installs the remote solve hook, and hands control to the supervised
// window.Legalize — retries, backoff, hedging, degradation, deterministic
// stitch, and the whole-design legality gate all run unchanged.
func (c *Coordinator) DispatchWindows(ctx context.Context, d *design.Design, opts window.Options) (*window.Stats, error) {
	opts.Cascade.Base = core.New(opts.Cascade.Base).Opts
	wr := opts.WindowRows
	if wr == 0 {
		wr = window.DefaultWindowRows
	}
	cr := opts.ContextRows
	if cr == 0 {
		cr = window.DefaultContextRows
	}
	sig := window.Sig(d, wr, cr, opts.Cascade.Base)
	wopts := EncodeOptions(opts.Cascade)
	cascade := opts.Cascade
	opts.SolveWindow = func(ctx context.Context, d *design.Design, p *window.Plan, w, attempt int) (*window.Result, error) {
		return c.solveOne(ctx, d, p, w, attempt, sig, wopts, cascade)
	}
	return window.Legalize(ctx, d, opts)
}

// solveOne resolves one window-solve attempt: shared cache, then the
// rendezvous owner for this attempt index, then coordinator-local solve as
// the no-worker fallback. Retries rotate through the owner preference list
// (attempt a → owner a mod N) and the hedge attempt pins the second-ranked
// owner, so a straggling primary and its hedge race on different machines.
func (c *Coordinator) solveOne(ctx context.Context, d *design.Design, p *window.Plan, wi, attempt int, sig uint64, wopts WireOptions, cascade core.ResilientOptions) (*window.Result, error) {
	key := WindowKey(sig, wi)
	if cells, ok := c.cache.get(key); ok {
		c.m.cacheLocalHits.inc()
		return &window.Result{Window: wi, Cells: cells}, nil
	}

	owners := c.usable(c.ring.Owners(key))
	if len(owners) == 0 {
		c.m.localFallbacks.inc()
		return c.solveLocal(ctx, d, p, wi, key, cascade)
	}
	pick := attempt
	switch {
	case attempt == window.HedgeAttempt:
		pick = 1 // race the hedge on a different machine than the primary
		c.m.hedgedRemote.inc()
	case attempt > 0:
		c.m.failovers.inc()
	}
	addr := owners[pick%len(owners)]

	b := &p.Bands[wi]
	sub, idx := window.BuildSub(d, p, b)
	req := solveRequest{Key: key, Window: wi, Sub: EncodeDesign(sub), Idx: idx, Opts: wopts}
	t0 := time.Now()
	var resp solveResponse
	if err := c.post(ctx, addr, PathSolve, req, &resp); err != nil {
		// A canceled attempt (hedge lost the race, job aborted) says nothing
		// about the worker's health — only an unprompted transport failure or
		// a draining refusal takes it out of routing.
		if ctx.Err() == nil && routeAway(err) {
			c.markDown(addr)
		}
		return nil, err
	}
	c.m.routedTo(addr, time.Since(t0).Seconds())
	if resp.Cached {
		c.m.cacheRemoteHits.inc()
	}
	if err := checkOwned(b, resp.Cells); err != nil {
		return nil, err
	}
	c.cache.put(key, resp.Cells)
	return &window.Result{Window: wi, Cells: resp.Cells}, nil
}

// solveLocal solves a window on the coordinator itself — the graceful
// degradation to standalone behavior when no worker is usable. The result
// is bit-identical to a worker's (same sub-design, same cascade), so a
// cluster limping on local solves still reproduces the standalone hash.
func (c *Coordinator) solveLocal(ctx context.Context, d *design.Design, p *window.Plan, wi int, key string, cascade core.ResilientOptions) (*window.Result, error) {
	b := &p.Bands[wi]
	sub, idx := window.BuildSub(d, p, b)
	res, err := window.SolveSubDesign(ctx, sub, idx, wi, cascade)
	if err != nil {
		return nil, err
	}
	c.cache.put(key, res.Cells)
	return res, nil
}

// checkOwned rejects a shard response whose cell IDs are not exactly the
// window's owned set — a corrupt or confused worker must not be able to
// write outside its window. (The whole-design legality checker still gates
// the final commit; this catches the corruption at its source.)
func checkOwned(b *window.Band, cells []window.CellPos) error {
	if len(cells) != len(b.Owned) {
		return mclgerr.Invalidf("cluster: window %d shard returned %d cells, owns %d", b.Index, len(cells), len(b.Owned))
	}
	owned := make(map[int]bool, len(b.Owned))
	for _, id := range b.Owned {
		owned[id] = true
	}
	for _, cp := range cells {
		if !owned[cp.ID] {
			return mclgerr.Invalidf("cluster: window %d shard returned cell %d outside its owned set", b.Index, cp.ID)
		}
	}
	return nil
}

// shardError is a non-2xx shard response, preserving the worker's typed
// class so the coordinator can distinguish a draining refusal from a solver
// failure.
type shardError struct {
	Status int
	Class  string
	Msg    string
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard: %s (%d %s)", e.Msg, e.Status, e.Class)
}

// routeAway reports whether an error means the worker should leave the
// routing tables: transport failures (crashed/unreachable) and draining
// refusals. Solver-level failures keep the worker routable — the window
// retries elsewhere, other windows continue.
func routeAway(err error) bool {
	var se *shardError
	if errors.As(err, &se) {
		return se.Status == http.StatusServiceUnavailable
	}
	return true // transport-level: connection refused, reset, EOF, ...
}

// post sends one shard request and decodes the response into out.
func (c *Coordinator) post(ctx context.Context, addr, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var er errorReply
		_ = json.NewDecoder(resp.Body).Decode(&er)
		if er.Error == "" {
			er.Error = resp.Status
		}
		return &shardError{Status: resp.StatusCode, Class: er.Class, Msg: er.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ---- ECO session routing ----

// ecoKey is the routing key for a session id (namespaced apart from window
// keys so session placement is independent of window traffic).
func ecoKey(id string) string { return "eco|" + id }

// ecoOwner picks the hosting worker for a session, skipping excluded
// addresses (e.g. a draining origin during migration).
func (c *Coordinator) ecoOwner(id string, exclude string) (string, error) {
	owners := c.usable(c.ring.Owners(ecoKey(id)))
	for _, o := range owners {
		if o != exclude {
			return o, nil
		}
	}
	return "", mclgerr.Invalidf("cluster: no usable worker to host session %q", id)
}

// ECOCreate opens a session on its rendezvous-routed worker.
func (c *Coordinator) ECOCreate(ctx context.Context, id string, base *design.Design, windowRows, marginRows int, opts core.Options) (string, error) {
	addr, err := c.ecoOwner(id, "")
	if err != nil {
		return "", err
	}
	req := ecoShardRequest{
		Action: "create", Session: id, Base: EncodeDesign(base),
		WindowRows: windowRows, MarginRows: marginRows,
	}
	wo := EncodeOptions(core.ResilientOptions{Base: core.New(opts).Opts})
	req.Opts = &wo
	var resp ecoShardResponse
	if err := c.post(ctx, addr, PathECO, req, &resp); err != nil {
		if routeAway(err) {
			c.markDown(addr)
		}
		return "", err
	}
	c.sessMu.Lock()
	c.sessions[id] = addr
	c.sessMu.Unlock()
	return resp.PosHash, nil
}

// ECOApply routes a delta batch to the session's hosting worker.
func (c *Coordinator) ECOApply(ctx context.Context, id string, deltas []eco.Delta) (seq int, posHash string, err error) {
	addr, ok := c.sessionHost(id)
	if !ok {
		return 0, "", mclgerr.Invalidf("cluster: unknown session %q", id)
	}
	var resp ecoShardResponse
	if err := c.post(ctx, addr, PathECO, ecoShardRequest{Action: "apply", Session: id, Deltas: deltas}, &resp); err != nil {
		return 0, "", err
	}
	return resp.Seq, resp.PosHash, nil
}

// ECOClose closes a session on its hosting worker.
func (c *Coordinator) ECOClose(ctx context.Context, id string) error {
	addr, ok := c.sessionHost(id)
	if !ok {
		return mclgerr.Invalidf("cluster: unknown session %q", id)
	}
	c.sessMu.Lock()
	delete(c.sessions, id)
	c.sessMu.Unlock()
	var resp ecoShardResponse
	return c.post(ctx, addr, PathECO, ecoShardRequest{Action: "close", Session: id}, &resp)
}

// sessionHost looks up where a session lives.
func (c *Coordinator) sessionHost(id string) (string, bool) {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	addr, ok := c.sessions[id]
	return addr, ok
}

// SessionHosts snapshots the session routing table (test/ops helper).
func (c *Coordinator) SessionHosts() map[string]string {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	out := make(map[string]string, len(c.sessions))
	for id, addr := range c.sessions {
		out[id] = addr
	}
	return out
}

// DrainWorker takes a worker out of rotation gracefully: it tells the
// worker to start draining (new solves refused, /readyz flips 503), marks it
// unroutable on this coordinator, and migrates every ECO session it hosts to
// the next owner via exported delta logs — each migration is replayed from
// the session's base design and verified bit-identical (eco.Migrate) before
// the origin copy is closed. Returns the migrated session IDs.
func (c *Coordinator) DrainWorker(ctx context.Context, addr string) ([]string, error) {
	// Best-effort: a crashed worker can't acknowledge, but its sessions may
	// still need re-homing (durable logs allow recovery elsewhere even when
	// export fails; that path is the operator's, not ours).
	_ = c.postNoDecode(ctx, addr, PathDrain)
	c.mu.Lock()
	c.drained[addr] = true
	c.mu.Unlock()

	c.sessMu.Lock()
	var hosted []string
	for id, host := range c.sessions {
		if host == addr {
			hosted = append(hosted, id)
		}
	}
	c.sessMu.Unlock()
	sort.Strings(hosted)

	var migrated []string
	var firstErr error
	for _, id := range hosted {
		if err := c.migrateSession(ctx, id, addr); err != nil {
			c.m.migrationErrors.inc()
			c.log.Warn("session migration failed", "session", id, "from", addr, "err", err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.m.migratedSessions.inc()
		migrated = append(migrated, id)
	}
	return migrated, firstErr
}

// migrateSession moves one session off a draining worker: export the base
// design + delta log, rebuild by verified replay on the next owner, then
// close the origin copy.
func (c *Coordinator) migrateSession(ctx context.Context, id, from string) error {
	var exp ecoShardResponse
	if err := c.post(ctx, from, PathECO, ecoShardRequest{Action: "export", Session: id}, &exp); err != nil {
		return mclgerr.Stage("migrate-export", err)
	}
	if exp.Base == nil {
		return mclgerr.Invalidf("cluster: export of session %q carried no base design", id)
	}
	to, err := c.ecoOwner(id, from)
	if err != nil {
		return err
	}
	var created ecoShardResponse
	err = c.post(ctx, to, PathECO, ecoShardRequest{
		Action: "create", Session: id, Base: exp.Base,
		Batches: exp.Batches, WantPosHash: exp.PosHash,
	}, &created)
	if err != nil {
		return mclgerr.Stage("migrate-create", err)
	}
	c.sessMu.Lock()
	c.sessions[id] = to
	c.sessMu.Unlock()
	// The origin's copy is now redundant; close it so its durable log is
	// retired and a restart cannot resurrect a stale twin.
	var closed ecoShardResponse
	_ = c.post(ctx, from, PathECO, ecoShardRequest{Action: "close", Session: id}, &closed)
	c.log.Info("session migrated", "session", id, "from", from, "to", to, "pos_hash", created.PosHash)
	return nil
}

// postNoDecode sends a body-less shard POST and drains the response.
func (c *Coordinator) postNoDecode(ctx context.Context, addr, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}
