package cluster

import (
	"fmt"
	"testing"
)

// testKeys generates a deterministic spread of window-style keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = WindowKey(uint64(i)*0x9e3779b97f4a7c15+7, i%40)
	}
	return keys
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	nodes := []string{"http://w1:9", "http://w2:9", "http://w3:9"}
	a := NewRing(nodes, 0)
	b := NewRing([]string{"http://w3:9", "http://w1:9", "http://w2:9"}, 0) // order must not matter
	for _, key := range testKeys(200) {
		ao, bo := a.Owners(key), b.Owners(key)
		if len(ao) != len(nodes) {
			t.Fatalf("Owners(%s) returned %d entries, want %d", key, len(ao), len(nodes))
		}
		seen := map[string]bool{}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("key %s: rings disagree: %v vs %v", key, ao, bo)
			}
			seen[ao[i]] = true
		}
		if len(seen) != len(nodes) {
			t.Fatalf("key %s: preference list %v is not a permutation of the membership", key, ao)
		}
	}
}

// TestRingRemoveMovesOnlyOwnedShare pins the minimal-disruption property the
// cluster leans on: deleting a worker remaps exactly the keys it owned —
// every other key keeps its primary, so caches and in-flight routing for the
// surviving workers are untouched.
func TestRingRemoveMovesOnlyOwnedShare(t *testing.T) {
	nodes := []string{"http://w1:9", "http://w2:9", "http://w3:9", "http://w4:9"}
	r := NewRing(nodes, 0)
	keys := testKeys(2000)

	before := make(map[string]string, len(keys))
	ownedByVictim := 0
	victim := nodes[1]
	for _, k := range keys {
		before[k] = r.Owner(k)
		if before[k] == victim {
			ownedByVictim++
		}
	}
	// Rendezvous hashing should split load roughly evenly: the victim's
	// share of 2000 keys over 4 workers must be in the 1/N ballpark.
	if lo, hi := len(keys)/8, len(keys)/2; ownedByVictim < lo || ownedByVictim > hi {
		t.Fatalf("victim owns %d of %d keys; want a roughly fair 1/4 share", ownedByVictim, len(keys))
	}

	r.Remove(victim)
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == victim {
			if after == victim {
				t.Fatalf("key %s still routed to removed worker", k)
			}
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s moved from %s to %s although its owner survived", k, before[k], after)
		}
	}
	if moved != ownedByVictim {
		t.Fatalf("%d keys moved, want exactly the victim's %d", moved, ownedByVictim)
	}
}

// TestRingAddMovesOnlyNewShare is the mirror property: a new worker takes
// over only the keys it now wins (~1/(N+1)), and every moved key lands on it.
func TestRingAddMovesOnlyNewShare(t *testing.T) {
	nodes := []string{"http://w1:9", "http://w2:9", "http://w3:9", "http://w4:9"}
	r := NewRing(nodes, 0)
	keys := testKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	newcomer := "http://w5:9"
	r.Add(newcomer)
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after != before[k] {
			if after != newcomer {
				t.Fatalf("key %s moved to %s, not the new worker", k, after)
			}
			moved++
		}
	}
	// Expect ~1/5 of the keys; allow a generous band around it.
	if lo, hi := len(keys)/10, len(keys)*2/5; moved < lo || moved > hi {
		t.Fatalf("adding a 5th worker moved %d of %d keys; want roughly 1/5", moved, len(keys))
	}
}

// TestRingSpreadsCommonPrefixKeys pins the avalanche fix in score(): the
// windows of one job share a 17-char key prefix (same sig, differing only in
// the window index), and raw FNV's weak trailing-byte diffusion routed whole
// jobs to a single worker. With the finalizer, sibling windows must spread.
func TestRingSpreadsCommonPrefixKeys(t *testing.T) {
	r := NewRing([]string{"http://w1:9", "http://w2:9"}, 0)
	byOwner := map[string]int{}
	const windows = 64
	for wi := 0; wi < windows; wi++ {
		byOwner[r.Owner(WindowKey(0xe932ca71ecfb5326, wi))]++
	}
	for owner, n := range byOwner {
		if n < windows/8 || n > windows*7/8 {
			t.Fatalf("owner %s got %d of %d sibling windows; want a rough half-split (%v)",
				owner, n, windows, byOwner)
		}
	}
	if len(byOwner) != 2 {
		t.Fatalf("sibling windows all routed to %v", byOwner)
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 4)
	r.Add("b")
	r.Add("c")
	r.Add("c")
	if got := r.Nodes(); len(got) != 3 {
		t.Fatalf("Nodes() = %v, want 3 unique members", got)
	}
	r.Remove("zzz") // absent: no-op
	r.Remove("b")
	r.Remove("b")
	if got := r.Nodes(); fmt.Sprint(got) != "[a c]" {
		t.Fatalf("Nodes() = %v, want [a c]", got)
	}
	if NewRing(nil, 0).Owner("key") != "" {
		t.Fatal("empty ring must own nothing")
	}
}
