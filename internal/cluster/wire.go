// Package cluster turns mclgd into a horizontally scalable service: a
// coordinator that accepts jobs on the existing /v1 API, partitions them via
// window.Partition, and routes individual window solves to worker daemons
// over an HTTP/JSON shard protocol. Routing is rendezvous-hashed (virtual
// nodes) on the window's content signature, a shared content-addressed
// result cache is consulted before dispatch, and straggler hedging,
// retry/backoff, and degradation reuse the supervised-solve machinery from
// internal/window unchanged.
//
// The determinism contract carries through: a window's sub-design is a pure
// function of the input design and the partition plan, and its solve is
// bit-deterministic, so the stitched placement is identical to a single-node
// solve regardless of shard count, worker failures, cache hits, or hedge
// outcomes. The coordinator commits only past the whole-design legality
// checker, exactly like the local path.
package cluster

import (
	"fmt"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/eco"
	"mclg/internal/mclgerr"
	"mclg/internal/window"
)

// Shard-protocol paths served by a worker daemon.
const (
	// PathSolve accepts one window-solve job (solveRequest → solveResponse).
	PathSolve = "/v1/shard/solve"
	// PathECO hosts ECO sessions on the worker (ecoShardRequest →
	// ecoShardResponse) so interactive sessions can live next to their
	// solver state and migrate between workers via their delta logs.
	PathECO = "/v1/shard/eco"
	// PathDrain flips the worker into draining mode: /readyz turns 503 and
	// new shard solves are refused so coordinators stop routing to it.
	PathDrain = "/v1/shard/drain"
)

// WindowKey is the content address of one window job: the design+options
// signature (window.Sig, which excludes result-neutral knobs like Workers)
// plus the window index. It keys the shared result cache and the rendezvous
// routing, so identical windows — across jobs, retries, and coordinators —
// hash to the same worker and hit the same cache line.
func WindowKey(sig uint64, w int) string {
	return fmt.Sprintf("%016x.w%03d", sig, w)
}

// WireRow is the shard-protocol form of one placement row.
type WireRow struct {
	Y        float64 `json:"y"`
	H        float64 `json:"h"`
	OriginX  float64 `json:"ox"`
	SiteW    float64 `json:"sw"`
	NumSites int     `json:"ns"`
	Rail     int     `json:"r"`
}

// WireCell is the shard-protocol form of one cell. The cell's ID is its
// position in the enclosing list (buildSub re-IDs sub-design cells densely,
// so the index round-trips exactly).
type WireCell struct {
	Name    string  `json:"n,omitempty"`
	W       float64 `json:"w"`
	H       float64 `json:"h"`
	Span    int     `json:"s"`
	Rail    int     `json:"r"`
	GX      float64 `json:"gx"`
	GY      float64 `json:"gy"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Fixed   bool    `json:"fx,omitempty"`
	Flipped bool    `json:"fl,omitempty"`
}

// WireDesign is the shard-protocol form of a window sub-design. Nets are
// deliberately absent: window solves are displacement-driven and buildSub
// never materializes them. Go's JSON float encoding is shortest-round-trip,
// so Decode(Encode(d)) reproduces every coordinate bit-for-bit — the
// property the cross-machine determinism contract rests on.
type WireDesign struct {
	Name      string     `json:"name"`
	LoX       float64    `json:"lo_x"`
	LoY       float64    `json:"lo_y"`
	HiX       float64    `json:"hi_x"`
	HiY       float64    `json:"hi_y"`
	RowHeight float64    `json:"row_h"`
	SiteW     float64    `json:"site_w"`
	Rows      []WireRow  `json:"rows"`
	Cells     []WireCell `json:"cells"`
}

// EncodeDesign converts a design (typically a window sub-design from
// window.BuildSub) to its wire form.
func EncodeDesign(d *design.Design) *WireDesign {
	wd := &WireDesign{
		Name:      d.Name,
		LoX:       d.Core.Lo.X,
		LoY:       d.Core.Lo.Y,
		HiX:       d.Core.Hi.X,
		HiY:       d.Core.Hi.Y,
		RowHeight: d.RowHeight,
		SiteW:     d.SiteW,
		Rows:      make([]WireRow, len(d.Rows)),
		Cells:     make([]WireCell, len(d.Cells)),
	}
	for i, r := range d.Rows {
		wd.Rows[i] = WireRow{
			Y: r.Y, H: r.Height, OriginX: r.OriginX,
			SiteW: r.SiteW, NumSites: r.NumSites, Rail: int(r.Rail),
		}
	}
	for i, c := range d.Cells {
		wd.Cells[i] = WireCell{
			Name: c.Name, W: c.W, H: c.H, Span: c.RowSpan, Rail: int(c.BottomRail),
			GX: c.GX, GY: c.GY, X: c.X, Y: c.Y, Fixed: c.Fixed, Flipped: c.Flipped,
		}
	}
	return wd
}

// Decode rebuilds the design from its wire form. Structural nonsense is
// rejected with a typed invalid-input error; full geometric validation
// happens in the solver's own Validate gate.
func (wd *WireDesign) Decode() (*design.Design, error) {
	if wd.RowHeight <= 0 || wd.SiteW <= 0 {
		return nil, mclgerr.Invalidf("cluster: wire design %q has row_h=%g site_w=%g", wd.Name, wd.RowHeight, wd.SiteW)
	}
	if len(wd.Rows) == 0 {
		return nil, mclgerr.Invalidf("cluster: wire design %q has no rows", wd.Name)
	}
	d := &design.Design{
		Name:      wd.Name,
		RowHeight: wd.RowHeight,
		SiteW:     wd.SiteW,
	}
	d.Core.Lo.X, d.Core.Lo.Y = wd.LoX, wd.LoY
	d.Core.Hi.X, d.Core.Hi.Y = wd.HiX, wd.HiY
	d.Rows = make([]design.Row, len(wd.Rows))
	for i, r := range wd.Rows {
		if r.Rail != int(design.VSS) && r.Rail != int(design.VDD) {
			return nil, mclgerr.Invalidf("cluster: wire design %q row %d has rail %d", wd.Name, i, r.Rail)
		}
		d.Rows[i] = design.Row{
			Index: i, Y: r.Y, Height: r.H, OriginX: r.OriginX,
			SiteW: r.SiteW, NumSites: r.NumSites, Rail: design.RailType(r.Rail),
		}
	}
	d.Cells = make([]*design.Cell, len(wd.Cells))
	for i, c := range wd.Cells {
		if c.Rail != int(design.VSS) && c.Rail != int(design.VDD) {
			return nil, mclgerr.Invalidf("cluster: wire design %q cell %d has rail %d", wd.Name, i, c.Rail)
		}
		d.Cells[i] = &design.Cell{
			ID: i, Name: c.Name, W: c.W, H: c.H, RowSpan: c.Span,
			BottomRail: design.RailType(c.Rail),
			GX:         c.GX, GY: c.GY, X: c.X, Y: c.Y,
			Fixed: c.Fixed, Flipped: c.Flipped,
		}
	}
	return d, nil
}

// WireOptions is the shard-protocol form of the resolved solver
// configuration: every result-affecting numeric is shipped literally so the
// worker solves the exact problem the coordinator would have. Warm state,
// S0, and OnIter are process-local and never cross the wire (window
// sub-solves run cold in the local path too).
type WireOptions struct {
	Lambda       float64 `json:"lambda"`
	Beta         float64 `json:"beta"`
	Theta        float64 `json:"theta"`
	Gamma        float64 `json:"gamma"`
	Eps          float64 `json:"eps"`
	MaxIter      int     `json:"max_iter"`
	ResidualTol  float64 `json:"residual_tol"`
	AutoTheta    bool    `json:"autotheta,omitempty"`
	PaperOmega   bool    `json:"paper_omega,omitempty"`
	OmegaR       float64 `json:"omega_r,omitempty"`
	ScaledOmegaX bool    `json:"scaled_omega_x,omitempty"`
	BoundRight   bool    `json:"boundright,omitempty"`
	Workers      int     `json:"workers,omitempty"`

	MaxRetunes    int  `json:"max_retunes,omitempty"`
	DisablePGS    bool `json:"disable_pgs,omitempty"`
	DisableGreedy bool `json:"disable_greedy,omitempty"`
	PGSMaxIter    int  `json:"pgs_max_iter,omitempty"`
}

// EncodeOptions converts a resilient-cascade configuration to its wire form.
func EncodeOptions(o core.ResilientOptions) WireOptions {
	b := o.Base
	return WireOptions{
		Lambda: b.Lambda, Beta: b.Beta, Theta: b.Theta, Gamma: b.Gamma,
		Eps: b.Eps, MaxIter: b.MaxIter, ResidualTol: b.ResidualTol,
		AutoTheta: b.AutoTheta, PaperOmega: b.PaperOmega, OmegaR: b.OmegaR,
		ScaledOmegaX: b.ScaledOmegaX, BoundRight: b.BoundRight,
		Workers:    b.Workers,
		MaxRetunes: o.MaxRetunes, DisablePGS: o.DisablePGS,
		DisableGreedy: o.DisableGreedy, PGSMaxIter: o.PGSMaxIter,
	}
}

// Decode rebuilds the resilient-cascade configuration.
func (wo WireOptions) Decode() core.ResilientOptions {
	return core.ResilientOptions{
		Base: core.Options{
			Lambda: wo.Lambda, Beta: wo.Beta, Theta: wo.Theta, Gamma: wo.Gamma,
			Eps: wo.Eps, MaxIter: wo.MaxIter, ResidualTol: wo.ResidualTol,
			AutoTheta: wo.AutoTheta, PaperOmega: wo.PaperOmega, OmegaR: wo.OmegaR,
			ScaledOmegaX: wo.ScaledOmegaX, BoundRight: wo.BoundRight,
			Workers: wo.Workers,
		},
		MaxRetunes: wo.MaxRetunes, DisablePGS: wo.DisablePGS,
		DisableGreedy: wo.DisableGreedy, PGSMaxIter: wo.PGSMaxIter,
	}
}

// solveRequest is one window-solve job shipped to a worker.
type solveRequest struct {
	// Key is the window's content address (WindowKey); it keys the worker's
	// local result cache.
	Key string `json:"key"`
	// Window is the window index within the job's partition plan.
	Window int `json:"window"`
	// Sub is the window sub-design; Idx maps sub cell index to full-design
	// cell ID (-1 for frozen context cells).
	Sub *WireDesign `json:"sub"`
	Idx []int       `json:"idx"`
	// Opts is the resolved solver configuration.
	Opts WireOptions `json:"opts"`
}

// solveResponse carries a verified window result back.
type solveResponse struct {
	Cells  []window.CellPos `json:"cells"`
	Cached bool             `json:"cached,omitempty"`
	Worker string           `json:"worker,omitempty"`
}

// ecoShardRequest drives a worker-hosted ECO session.
type ecoShardRequest struct {
	// Action is create | apply | export | close. create with a non-empty
	// Batches list is a migration: the session is rebuilt by replaying the
	// batches and verified against WantPosHash before it goes live.
	Action  string `json:"action"`
	Session string `json:"session"`

	// Base is the session's base design (create only).
	Base *WireDesign `json:"base,omitempty"`
	// WindowRows / MarginRows parameterize the dirty-window partition
	// (create only; 0 takes the eco defaults).
	WindowRows int `json:"window_rows,omitempty"`
	MarginRows int `json:"margin_rows,omitempty"`
	// Opts carries the solver knobs (create only; the resilient-rung fields
	// are ignored — eco drives its own cascade).
	Opts *WireOptions `json:"opts,omitempty"`

	// Batches is the delta log to replay on a migrating create.
	Batches []eco.Batch `json:"batches,omitempty"`
	// WantPosHash, when non-empty on a migrating create, must match the
	// replayed session's committed placement hash or the migration fails.
	WantPosHash string `json:"want_pos_hash,omitempty"`

	// Deltas is the batch to apply (apply only).
	Deltas []eco.Delta `json:"deltas,omitempty"`
}

// ecoShardResponse reports a worker-hosted ECO session operation.
type ecoShardResponse struct {
	Session  string `json:"session"`
	Seq      int    `json:"seq"`
	PosHash  string `json:"pos_hash,omitempty"`
	BaseHash string `json:"base_hash,omitempty"`
	Worker   string `json:"worker,omitempty"`

	// Export payload: the base design and the accepted delta log, enough to
	// rebuild the session anywhere via replay.
	Base    *WireDesign `json:"base,omitempty"`
	Batches []eco.Batch `json:"batches,omitempty"`
}

// errorReply is the shard-protocol failure payload, mirroring the /v1 API.
type errorReply struct {
	Error string `json:"error"`
	Class string `json:"class"`
}
