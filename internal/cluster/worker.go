package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/eco"
	"mclg/internal/mclgerr"
	"mclg/internal/par"
	"mclg/internal/window"
)

// WorkerConfig parameterizes a worker daemon.
type WorkerConfig struct {
	// ID is the worker's advertised identity — normally its listen address,
	// the same string coordinators put in their ring.
	ID string
	// Solves bounds concurrent shard solves; 0 means GOMAXPROCS.
	Solves int
	// CacheCap bounds the worker's window-result cache; 0 means 512,
	// negative disables it.
	CacheCap int
	// SessionCap bounds concurrently hosted ECO sessions; 0 means 32.
	SessionCap int
	// WarmCap bounds the worker's warm-state pool — one core.WarmState per
	// window topology, so re-solves of the same window shape (retries,
	// hedges, streaming re-legalizations of a perturbed design) skip LCP
	// assembly and splitting factorization and seed from the previous
	// solution. 0 means 16, negative disables warm starting. Warm reuse
	// changes iteration counts only, never the returned positions.
	WarmCap int
	// ECODir, when non-empty, makes hosted ECO sessions durable: each
	// session's delta log lives at ECODir/<id>.ecolog, exactly like the
	// standalone daemon's -eco-dir.
	ECODir string
	// Metrics receives the worker's observability series; nil allocates a
	// private registry.
	Metrics *Metrics
	// MaxBodyBytes bounds a shard request body; 0 means 64 MiB.
	MaxBodyBytes int64
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	c.Solves = par.Resolve(c.Solves)
	if c.CacheCap == 0 {
		c.CacheCap = 512
	}
	if c.SessionCap <= 0 {
		c.SessionCap = 32
	}
	if c.WarmCap == 0 {
		c.WarmCap = 16
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics()
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Worker is a shard-solving daemon: it answers window-solve jobs on
// PathSolve (serving repeats from its content-addressed cache without
// solving), hosts ECO sessions on PathECO, and signals readiness on /readyz
// — 503 the moment a drain starts, so coordinators stop routing to it while
// in-flight solves finish.
type Worker struct {
	cfg   WorkerConfig
	cache *windowCache
	warm  *core.WarmPool // nil when WarmCap < 0
	m     *Metrics
	log   *slog.Logger

	sem chan struct{}

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	sessMu   sync.Mutex
	sessions map[string]*eco.Session
}

// NewWorker builds a worker; its Handler is live immediately.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	wk := &Worker{
		cfg:      cfg,
		cache:    newWindowCache(cfg.CacheCap),
		m:        cfg.Metrics,
		log:      cfg.Logger,
		sem:      make(chan struct{}, cfg.Solves),
		sessions: make(map[string]*eco.Session),
	}
	if cfg.WarmCap > 0 {
		wk.warm = core.NewWarmPool(cfg.WarmCap)
	}
	return wk
}

// Handler returns the worker's HTTP surface.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSolve, wk.handleSolve)
	mux.HandleFunc("POST "+PathECO, wk.handleECO)
	mux.HandleFunc("POST "+PathDrain, wk.handleDrain)
	mux.HandleFunc("GET /healthz", wk.handleHealthz)
	mux.HandleFunc("GET /readyz", wk.handleReadyz)
	mux.HandleFunc("GET /metrics", wk.handleMetrics)
	return mux
}

// Drain flips the worker into draining mode — /readyz turns 503 and new
// shard solves/applies are refused immediately — then waits for in-flight
// solves to finish, or for ctx to expire. Hosted ECO sessions stay readable
// (export/close) so a coordinator can migrate them off.
func (wk *Worker) Drain(ctx context.Context) error {
	wk.mu.Lock()
	wk.draining = true
	wk.mu.Unlock()
	done := make(chan struct{})
	go func() {
		wk.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether a drain has started.
func (wk *Worker) Draining() bool {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.draining
}

// Sessions returns the IDs of the ECO sessions this worker hosts, sorted
// lexically by map-range then used unordered by callers.
func (wk *Worker) Sessions() []string {
	wk.sessMu.Lock()
	defer wk.sessMu.Unlock()
	out := make([]string, 0, len(wk.sessions))
	for id := range wk.sessions {
		out = append(out, id)
	}
	return out
}

func (wk *Worker) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (wk *Worker) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if wk.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (wk *Worker) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	wk.m.WritePrometheus(w)
}

// handleDrain starts a drain remotely (fire-and-forget; the caller polls
// /readyz for the flip). The in-flight wait stays with the process owner.
func (wk *Worker) handleDrain(w http.ResponseWriter, _ *http.Request) {
	wk.mu.Lock()
	wk.draining = true
	wk.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "draining")
}

func (wk *Worker) handleSolve(w http.ResponseWriter, r *http.Request) {
	if wk.Draining() {
		wk.m.refusedDrain.inc()
		writeShardErr(w, http.StatusServiceUnavailable, "draining", "worker is draining; route elsewhere")
		return
	}
	var req solveRequest
	body := http.MaxBytesReader(w, r.Body, wk.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", "malformed shard request: "+err.Error())
		return
	}
	if req.Key == "" || req.Sub == nil {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", "shard request needs key and sub")
		return
	}

	if cells, ok := wk.cache.get(req.Key); ok {
		wk.m.served.inc()
		writeJSON(w, solveResponse{Cells: cells, Cached: true, Worker: wk.cfg.ID})
		return
	}

	wk.inflight.Add(1)
	defer wk.inflight.Done()
	select {
	case wk.sem <- struct{}{}:
		defer func() { <-wk.sem }()
	case <-r.Context().Done():
		writeShardErr(w, http.StatusGatewayTimeout, "canceled", "caller went away waiting for a solve slot")
		return
	}

	sub, err := req.Sub.Decode()
	if err != nil {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", err.Error())
		return
	}
	if len(req.Idx) != len(sub.Cells) {
		writeShardErr(w, http.StatusBadRequest, "invalid_input",
			fmt.Sprintf("idx length %d does not match %d cells", len(req.Idx), len(sub.Cells)))
		return
	}
	opts := req.Opts.Decode()
	if wk.warm != nil {
		// Thread the pooled warm state for this window topology through the
		// cascade's base rung (fallback rungs always run cold). A topology
		// mismatch inside the state re-primes it — the key only routes
		// likely matches, it never gates correctness.
		opts.Base.Warm = wk.warm.Get(shardWarmKey(sub, req.Window, &opts.Base))
	}
	t0 := time.Now()
	res, err := window.SolveSubDesign(r.Context(), sub, req.Idx, req.Window, opts)
	if err != nil {
		wk.m.solveErrors.inc()
		writeSolverErr(w, err)
		return
	}
	if wk.warm != nil {
		if res.WarmReused {
			wk.m.warmHits.inc()
		} else {
			wk.m.warmMisses.inc()
		}
	}
	wk.cache.put(req.Key, res.Cells)
	wk.m.served.inc()
	wk.log.Info("shard solve", "key", req.Key, "window", req.Window,
		"cells", len(res.Cells), "warm", res.WarmReused,
		"ms", float64(time.Since(t0))/float64(time.Millisecond))
	writeJSON(w, solveResponse{Cells: res.Cells, Worker: wk.cfg.ID})
}

// shardWarmKey fingerprints a window's problem topology — everything that
// shapes the assembled QP's structure except cell positions — mirroring the
// standalone daemon's warm-store topoKey. Re-solves of the same window shape
// with moved cells land on the same pooled WarmState; whether that state's
// cached factorizations actually apply is decided by the state's own
// structure-signature check, so a colliding or stale key costs iterations,
// never correctness.
func shardWarmKey(sub *design.Design, windowIndex int, o *core.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "w=%d|lambda=%g|beta=%g|theta=%g|autotheta=%v|autotune=%v|omegar=%g|scaledx=%v|paper=%v|boundright=%v|",
		windowIndex, o.Lambda, o.Beta, o.Theta, o.AutoTheta, o.AutoTune,
		o.OmegaR, o.ScaledOmegaX, o.PaperOmega, o.BoundRight)
	fmt.Fprintf(h, "core=%v|rh=%g|sw=%g|", sub.Core, sub.RowHeight, sub.SiteW)
	for i := range sub.Rows {
		r := &sub.Rows[i]
		fmt.Fprintf(h, "r=%g,%g,%g,%g,%d,%d|", r.Y, r.Height, r.OriginX, r.SiteW, r.NumSites, r.Rail)
	}
	for _, c := range sub.Cells {
		fmt.Fprintf(h, "c=%d,%g,%g,%d,%d,%v|", c.ID, c.W, c.H, c.RowSpan, c.BottomRail, c.Fixed)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (wk *Worker) handleECO(w http.ResponseWriter, r *http.Request) {
	var req ecoShardRequest
	body := http.MaxBytesReader(w, r.Body, wk.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", "malformed shard request: "+err.Error())
		return
	}
	if req.Session == "" {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", "shard eco request needs a session id")
		return
	}
	switch req.Action {
	case "create":
		wk.ecoCreate(w, r, &req)
	case "apply":
		wk.ecoApply(w, r, &req)
	case "export":
		wk.ecoExport(w, &req)
	case "close":
		wk.ecoClose(w, &req)
	default:
		writeShardErr(w, http.StatusBadRequest, "invalid_input", fmt.Sprintf("unknown shard eco action %q", req.Action))
	}
}

// ecoOptions builds the session options for a hosted session.
func (wk *Worker) ecoOptions(req *ecoShardRequest) eco.Options {
	opts := eco.Options{WindowRows: req.WindowRows, MarginRows: req.MarginRows}
	if req.Opts != nil {
		opts.Core = req.Opts.Decode().Base
	}
	if wk.cfg.ECODir != "" {
		opts.LogPath = filepath.Join(wk.cfg.ECODir, req.Session+".ecolog")
	}
	return opts
}

func (wk *Worker) ecoCreate(w http.ResponseWriter, r *http.Request, req *ecoShardRequest) {
	if wk.Draining() {
		wk.m.refusedDrain.inc()
		writeShardErr(w, http.StatusServiceUnavailable, "draining", "worker is draining; route elsewhere")
		return
	}
	if req.Base == nil {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", "shard eco create needs a base design")
		return
	}
	base, err := req.Base.Decode()
	if err != nil {
		writeShardErr(w, http.StatusBadRequest, "invalid_input", err.Error())
		return
	}
	wk.sessMu.Lock()
	if _, dup := wk.sessions[req.Session]; dup {
		wk.sessMu.Unlock()
		writeShardErr(w, http.StatusConflict, "invalid_input", fmt.Sprintf("session %q already hosted", req.Session))
		return
	}
	if len(wk.sessions) >= wk.cfg.SessionCap {
		wk.sessMu.Unlock()
		writeShardErr(w, http.StatusTooManyRequests, "queue_full", "worker session capacity reached")
		return
	}
	// Reserve the slot before the (slow) create so a concurrent duplicate
	// is refused instead of racing.
	wk.sessions[req.Session] = nil
	wk.sessMu.Unlock()
	release := func() {
		wk.sessMu.Lock()
		delete(wk.sessions, req.Session)
		wk.sessMu.Unlock()
	}

	opts := wk.ecoOptions(req)
	var sess *eco.Session
	if len(req.Batches) > 0 {
		// Migration: rebuild by replay and verify against the origin's hash.
		sess, err = eco.Migrate(r.Context(), eco.Snapshot{
			ID: req.Session, Base: base, Log: req.Batches, PosHash: req.WantPosHash,
		}, opts)
		if err != nil {
			wk.m.migrationErrors.inc()
		}
	} else {
		sess, err = eco.Create(r.Context(), req.Session, base, opts)
	}
	if err != nil {
		release()
		writeSolverErr(w, err)
		return
	}
	wk.sessMu.Lock()
	wk.sessions[req.Session] = sess
	wk.sessMu.Unlock()
	writeJSON(w, ecoShardResponse{
		Session: req.Session, Seq: sess.Seq(),
		PosHash: sess.PosHash(), BaseHash: sess.BaseHash(), Worker: wk.cfg.ID,
	})
}

// session looks up a live hosted session.
func (wk *Worker) session(id string) (*eco.Session, bool) {
	wk.sessMu.Lock()
	defer wk.sessMu.Unlock()
	s, ok := wk.sessions[id]
	return s, ok && s != nil
}

func (wk *Worker) ecoApply(w http.ResponseWriter, r *http.Request, req *ecoShardRequest) {
	if wk.Draining() {
		wk.m.refusedDrain.inc()
		writeShardErr(w, http.StatusServiceUnavailable, "draining", "worker is draining; route elsewhere")
		return
	}
	sess, ok := wk.session(req.Session)
	if !ok {
		writeShardErr(w, http.StatusNotFound, "invalid_input", fmt.Sprintf("session %q not hosted here", req.Session))
		return
	}
	wk.inflight.Add(1)
	defer wk.inflight.Done()
	res, err := sess.Apply(r.Context(), req.Deltas)
	if err != nil {
		writeSolverErr(w, err)
		return
	}
	writeJSON(w, ecoShardResponse{
		Session: req.Session, Seq: res.Seq, PosHash: res.PosHash, Worker: wk.cfg.ID,
	})
}

func (wk *Worker) ecoExport(w http.ResponseWriter, req *ecoShardRequest) {
	sess, ok := wk.session(req.Session)
	if !ok {
		writeShardErr(w, http.StatusNotFound, "invalid_input", fmt.Sprintf("session %q not hosted here", req.Session))
		return
	}
	snap := sess.Snapshot()
	writeJSON(w, ecoShardResponse{
		Session: req.Session, Seq: len(snap.Log),
		PosHash: snap.PosHash, BaseHash: snap.BaseHash,
		Base: EncodeDesign(snap.Base), Batches: snap.Log, Worker: wk.cfg.ID,
	})
}

func (wk *Worker) ecoClose(w http.ResponseWriter, req *ecoShardRequest) {
	wk.sessMu.Lock()
	sess := wk.sessions[req.Session]
	delete(wk.sessions, req.Session)
	wk.sessMu.Unlock()
	if sess == nil {
		writeShardErr(w, http.StatusNotFound, "invalid_input", fmt.Sprintf("session %q not hosted here", req.Session))
		return
	}
	if err := sess.Close(); err != nil {
		writeSolverErr(w, err)
		return
	}
	writeJSON(w, ecoShardResponse{Session: req.Session, Worker: wk.cfg.ID})
}

// writeJSON writes a 200 JSON payload.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeShardErr writes a typed shard-protocol refusal.
func writeShardErr(w http.ResponseWriter, status int, class, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorReply{Error: msg, Class: class})
}

// writeSolverErr maps a solver error onto the shard protocol via its
// mclgerr class, mirroring the /v1 API's mapping.
func writeSolverErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, mclgerr.ErrInvalidInput):
		writeShardErr(w, http.StatusBadRequest, mclgerr.Class(err), err.Error())
	case errors.Is(err, mclgerr.ErrCanceled):
		writeShardErr(w, http.StatusGatewayTimeout, mclgerr.Class(err), err.Error())
	default:
		writeShardErr(w, http.StatusUnprocessableEntity, mclgerr.Class(err), err.Error())
	}
}
