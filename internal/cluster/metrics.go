package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// counter is a monotonically increasing uint64.
type counter struct{ v atomic.Uint64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n uint64) { c.v.Add(n) }
func (c *counter) get() uint64  { return c.v.Load() }

// shardBuckets are the upper bounds (seconds) of the per-shard round-trip
// latency histograms: 1 ms to 60 s, matching the daemon's stage buckets so
// dashboards can overlay shard time onto solve time.
var shardBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram in Prometheus semantics.
type histogram struct {
	mu     sync.Mutex
	counts []uint64
	inf    uint64
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(shardBuckets))}
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range shardBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.inf++
	h.sum += seconds
	h.total++
}

// Metrics is the cluster observability registry, shared by the coordinator
// (routing, cache, failover, migration series) and the worker (served-solve
// series). WritePrometheus appends its series to a daemon's /metrics
// exposition via the serve.Config.ExtraMetrics hook.
type Metrics struct {
	routed       sync.Map // worker -> *counter: window jobs dispatched
	shardLatency sync.Map // worker -> *histogram: round-trip seconds

	hedgedRemote   counter // hedge attempts routed to a different worker
	failovers      counter // attempts re-routed after a worker refusal/failure
	localFallbacks counter // windows solved on the coordinator (no worker usable)

	cacheLocalHits  counter // coordinator cache hits (no dispatch at all)
	cacheRemoteHits counter // worker-side cache hits (dispatched, not solved)

	served       counter // worker: shard solves answered (cache hits included)
	solveErrors  counter // worker: shard solves that failed
	refusedDrain counter // worker: shard solves refused while draining

	warmHits   counter // worker: shard solves that reused pooled warm state
	warmMisses counter // worker: shard solves that ran cold through the pool

	migratedSessions counter // ECO sessions migrated between workers
	migrationErrors  counter // ECO migrations that failed verification
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) routedTo(worker string, seconds float64) {
	c, _ := m.routed.LoadOrStore(worker, &counter{})
	c.(*counter).inc()
	h, _ := m.shardLatency.LoadOrStore(worker, newHistogram())
	h.(*histogram).observe(seconds)
}

// Routed returns the dispatch count for one worker (test/smoke helper).
func (m *Metrics) Routed(worker string) uint64 {
	c, ok := m.routed.Load(worker)
	if !ok {
		return 0
	}
	return c.(*counter).get()
}

// RoutedTotal returns the dispatch count summed over all workers.
func (m *Metrics) RoutedTotal() uint64 {
	var total uint64
	m.routed.Range(func(_, c any) bool {
		total += c.(*counter).get()
		return true
	})
	return total
}

// RoutedByWorker snapshots the per-worker dispatch counts.
func (m *Metrics) RoutedByWorker() map[string]uint64 {
	out := make(map[string]uint64)
	m.routed.Range(func(k, c any) bool {
		out[k.(string)] = c.(*counter).get()
		return true
	})
	return out
}

// RemoteCacheHits returns the worker-side cache-hit count observed by the
// coordinator (test/smoke helper).
func (m *Metrics) RemoteCacheHits() uint64 { return m.cacheRemoteHits.get() }

// WarmHits and WarmMisses return the worker warm-pool outcome counts
// (test/smoke helpers).
func (m *Metrics) WarmHits() uint64   { return m.warmHits.get() }
func (m *Metrics) WarmMisses() uint64 { return m.warmMisses.get() }

// MigratedSessions returns the completed ECO migration count.
func (m *Metrics) MigratedSessions() uint64 { return m.migratedSessions.get() }

// WritePrometheus renders every cluster series in the Prometheus text
// exposition format, sorted for scrape stability.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP mclgd_cluster_routed_total Window jobs dispatched to each worker.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_routed_total counter\n")
	for _, worker := range sortedMapKeys(&m.routed) {
		c, _ := m.routed.Load(worker)
		fmt.Fprintf(w, "mclgd_cluster_routed_total{worker=%q} %d\n", worker, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_cluster_hedged_total Hedge attempts routed to a secondary worker.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_hedged_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_hedged_total %d\n", m.hedgedRemote.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_failovers_total Attempts re-routed to the next owner after a worker refusal or failure.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_failovers_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_failovers_total %d\n", m.failovers.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_local_fallbacks_total Windows solved on the coordinator because no worker was usable.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_local_fallbacks_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_local_fallbacks_total %d\n", m.localFallbacks.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_cache_hits_total Window-result cache hits by location (local = coordinator, remote = worker).\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_cache_hits_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_cache_hits_total{location=\"local\"} %d\n", m.cacheLocalHits.get())
	fmt.Fprintf(w, "mclgd_cluster_cache_hits_total{location=\"remote\"} %d\n", m.cacheRemoteHits.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_served_total Shard solves answered by this worker (cache hits included).\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_served_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_served_total %d\n", m.served.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_solve_errors_total Shard solves that failed on this worker.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_solve_errors_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_solve_errors_total %d\n", m.solveErrors.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_refused_draining_total Shard solves refused because the worker was draining.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_refused_draining_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_refused_draining_total %d\n", m.refusedDrain.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_warm_total Shard solves through the worker's warm-state pool, by outcome (hit = cached factorizations reused).\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_warm_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_warm_total{result=\"hit\"} %d\n", m.warmHits.get())
	fmt.Fprintf(w, "mclgd_cluster_warm_total{result=\"miss\"} %d\n", m.warmMisses.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_migrated_sessions_total ECO sessions migrated between workers via delta-log replay.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_migrated_sessions_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_migrated_sessions_total %d\n", m.migratedSessions.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_migration_errors_total ECO migrations that failed replay verification.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_migration_errors_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_migration_errors_total %d\n", m.migrationErrors.get())

	fmt.Fprintf(w, "# HELP mclgd_cluster_shard_seconds Per-worker shard round-trip latency.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_shard_seconds histogram\n")
	for _, worker := range sortedMapKeys(&m.shardLatency) {
		v, _ := m.shardLatency.Load(worker)
		h := v.(*histogram)
		h.mu.Lock()
		for i, ub := range shardBuckets {
			fmt.Fprintf(w, "mclgd_cluster_shard_seconds_bucket{worker=%q,le=\"%g\"} %d\n", worker, ub, h.counts[i])
		}
		fmt.Fprintf(w, "mclgd_cluster_shard_seconds_bucket{worker=%q,le=\"+Inf\"} %d\n", worker, h.inf)
		fmt.Fprintf(w, "mclgd_cluster_shard_seconds_sum{worker=%q} %g\n", worker, h.sum)
		fmt.Fprintf(w, "mclgd_cluster_shard_seconds_count{worker=%q} %d\n", worker, h.total)
		h.mu.Unlock()
	}
}

func sortedMapKeys(m *sync.Map) []string {
	var keys []string
	m.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}
