package cluster

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/mclgerr"
	"mclg/internal/window"
)

func clusterTestDesign(t testing.TB, bench string, scale float64) *design.Design {
	t.Helper()
	e, err := gen.FindEntry(bench)
	if err != nil {
		t.Fatalf("FindEntry(%s): %v", bench, err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		t.Fatalf("Generate(%s@%g): %v", bench, scale, err)
	}
	return d
}

// TestWireDesignRoundTripBitExact sends a real window sub-design through the
// full wire path — encode, JSON marshal, unmarshal, decode — and requires
// every coordinate to survive bit-for-bit. This is the property the
// cross-machine determinism contract rests on.
func TestWireDesignRoundTripBitExact(t *testing.T) {
	d := clusterTestDesign(t, "fft_2", 0.004)
	p, err := window.Partition(d, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for wi := range p.Bands {
		sub, _ := window.BuildSub(d, p, &p.Bands[wi])
		raw, err := json.Marshal(EncodeDesign(sub))
		if err != nil {
			t.Fatal(err)
		}
		var wd WireDesign
		if err := json.Unmarshal(raw, &wd); err != nil {
			t.Fatal(err)
		}
		got, err := wd.Decode()
		if err != nil {
			t.Fatalf("window %d: Decode: %v", wi, err)
		}
		if got.Name != sub.Name || got.Core != sub.Core ||
			got.RowHeight != sub.RowHeight || got.SiteW != sub.SiteW {
			t.Fatalf("window %d: header mismatch", wi)
		}
		if len(got.Rows) != len(sub.Rows) || len(got.Cells) != len(sub.Cells) {
			t.Fatalf("window %d: size mismatch", wi)
		}
		for i := range sub.Rows {
			if got.Rows[i] != sub.Rows[i] {
				t.Fatalf("window %d row %d: %+v != %+v", wi, i, got.Rows[i], sub.Rows[i])
			}
		}
		for i := range sub.Cells {
			if *got.Cells[i] != *sub.Cells[i] {
				t.Fatalf("window %d cell %d: %+v != %+v", wi, i, got.Cells[i], sub.Cells[i])
			}
		}
	}
}

func TestWireDesignDecodeRejectsNonsense(t *testing.T) {
	good := EncodeDesign(clusterTestDesign(t, "fft_2", 0.004))
	cases := map[string]func(wd *WireDesign){
		"zero row height": func(wd *WireDesign) { wd.RowHeight = 0 },
		"zero site width": func(wd *WireDesign) { wd.SiteW = 0 },
		"no rows":         func(wd *WireDesign) { wd.Rows = nil },
		"bad row rail":    func(wd *WireDesign) { wd.Rows[0].Rail = 7 },
		"bad cell rail":   func(wd *WireDesign) { wd.Cells[0].Rail = -1 },
	}
	for name, mutate := range cases {
		wd := *good
		wd.Rows = append([]WireRow(nil), good.Rows...)
		wd.Cells = append([]WireCell(nil), good.Cells...)
		mutate(&wd)
		if _, err := wd.Decode(); !errors.Is(err, mclgerr.ErrInvalidInput) {
			t.Errorf("%s: Decode = %v, want invalid-input", name, err)
		}
	}
}

func TestWireOptionsRoundTrip(t *testing.T) {
	in := core.ResilientOptions{
		Base:       core.New(core.Options{Lambda: 250, Eps: 1e-6, BoundRight: true, Workers: 3}).Opts,
		MaxRetunes: 2, DisablePGS: true, PGSMaxIter: 77,
	}
	raw, err := json.Marshal(EncodeOptions(in))
	if err != nil {
		t.Fatal(err)
	}
	var wo WireOptions
	if err := json.Unmarshal(raw, &wo); err != nil {
		t.Fatal(err)
	}
	got := wo.Decode()
	// Warm/S0/OnIter never cross the wire; everything else must.
	if !reflect.DeepEqual(got.Base, in.Base) {
		t.Fatalf("base options: %+v != %+v", got.Base, in.Base)
	}
	if got.MaxRetunes != in.MaxRetunes || got.DisablePGS != in.DisablePGS ||
		got.DisableGreedy != in.DisableGreedy || got.PGSMaxIter != in.PGSMaxIter {
		t.Fatalf("cascade knobs: %+v != %+v", got, in)
	}
}

func TestWindowCacheLRU(t *testing.T) {
	c := newWindowCache(2)
	put := func(k string, id int) { c.put(k, []window.CellPos{{ID: id}}) }
	put("a", 1)
	put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	put("c", 3) // b is now LRU and must fall out
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if got, ok := c.get("a"); !ok || got[0].ID != 1 {
		t.Fatal("a lost or corrupted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if newWindowCache(-1).len() != 0 {
		t.Fatal("disabled cache must hold nothing")
	}
	disabled := newWindowCache(-1)
	disabled.put("x", nil)
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled cache must not store")
	}
}
