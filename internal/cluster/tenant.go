package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mclg/internal/mclgerr"
)

// Priority tiers at the coordinator admission queue. Interactive work (ECO
// sessions, explicitly tagged requests) may drain a tenant's bucket to
// empty; batch work must leave headroom so a burst of batch jobs can never
// starve the tenant's own interactive traffic.
const (
	PriorityBatch       = "batch"
	PriorityInteractive = "interactive"
)

// batchReserve is the fraction of a tenant's burst capacity reserved for
// interactive work: a batch admission must leave at least this share of the
// bucket behind.
const batchReserve = 0.25

// TenantLimit is one tenant's token-bucket parameters: Rate tokens/second
// refill up to Burst capacity; every admitted job costs one token.
type TenantLimit struct {
	Rate  float64
	Burst float64
}

// ParseTenantLimits parses the -tenant-limits flag syntax:
//
//	tenant=rate/burst[,tenant=rate/burst...]
//
// e.g. "acme=5/10,*=1/2". The "*" tenant is the default applied to tenants
// not listed; with no "*" entry, unlisted tenants are unlimited.
func ParseTenantLimits(s string) (map[string]TenantLimit, error) {
	out := make(map[string]TenantLimit)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, mclgerr.Invalidf("cluster: tenant limit %q is not tenant=rate/burst", part)
		}
		rateS, burstS, ok := strings.Cut(spec, "/")
		if !ok {
			return nil, mclgerr.Invalidf("cluster: tenant limit %q is not tenant=rate/burst", part)
		}
		rate, err := strconv.ParseFloat(rateS, 64)
		if err != nil || rate <= 0 || math.IsInf(rate, 0) {
			return nil, mclgerr.Invalidf("cluster: tenant %q rate %q must be a positive number", name, rateS)
		}
		burst, err := strconv.ParseFloat(burstS, 64)
		if err != nil || burst < 1 || math.IsInf(burst, 0) {
			return nil, mclgerr.Invalidf("cluster: tenant %q burst %q must be a number >= 1", name, burstS)
		}
		if _, dup := out[name]; dup {
			return nil, mclgerr.Invalidf("cluster: tenant %q listed twice", name)
		}
		out[name] = TenantLimit{Rate: rate, Burst: burst}
	}
	return out, nil
}

// FormatTenantLimits renders limits back into the flag syntax, sorted, for
// logs and tests.
func FormatTenantLimits(limits map[string]TenantLimit) string {
	names := make([]string, 0, len(limits))
	for n := range limits {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		l := limits[n]
		parts = append(parts, fmt.Sprintf("%s=%g/%g", n, l.Rate, l.Burst))
	}
	return strings.Join(parts, ",")
}

// TenantGate enforces per-tenant token-bucket rate limits with priority
// tiers at the admission queue. Buckets refill continuously; a refused
// admission returns the wait until the refusing tier could next admit, which
// the daemon surfaces as Retry-After.
type TenantGate struct {
	mu      sync.Mutex
	limits  map[string]TenantLimit
	buckets map[string]*bucket
	now     func() time.Time // injectable for deterministic tests

	admitted  counter
	throttled counter
}

type bucket struct {
	tokens float64
	last   time.Time
	limit  TenantLimit
}

// NewTenantGate builds a gate from parsed limits. A nil or empty map admits
// everything (the gate still counts admissions).
func NewTenantGate(limits map[string]TenantLimit) *TenantGate {
	return &TenantGate{limits: limits, buckets: make(map[string]*bucket), now: time.Now}
}

// limitFor resolves a tenant's limit: exact entry, then the "*" default,
// then unlimited.
func (g *TenantGate) limitFor(tenant string) (TenantLimit, bool) {
	if l, ok := g.limits[tenant]; ok {
		return l, true
	}
	if l, ok := g.limits["*"]; ok {
		return l, true
	}
	return TenantLimit{}, false
}

// Admit charges one token to the tenant's bucket at the given priority. It
// returns ok=true when admitted; otherwise retryAfter is how long until the
// same admission could succeed. The empty tenant shares one "" bucket, so an
// anonymous flood is throttled collectively under a "*" default.
func (g *TenantGate) Admit(tenant, priority string) (ok bool, retryAfter time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()

	limit, limited := g.limitFor(tenant)
	if !limited {
		g.admitted.inc()
		return true, 0
	}
	now := g.now()
	b := g.buckets[tenant]
	if b == nil || b.limit != limit {
		b = &bucket{tokens: limit.Burst, last: now, limit: limit}
		g.buckets[tenant] = b
	}
	// Continuous refill since the last charge, capped at burst.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(limit.Burst, b.tokens+dt*limit.Rate)
	}
	b.last = now

	// Interactive may take the bucket to zero; batch must leave the
	// reserved headroom so interactive traffic always has tokens standing.
	need := 1.0
	if priority != PriorityInteractive {
		need = 1.0 + batchReserve*limit.Burst
	}
	if b.tokens >= need {
		b.tokens--
		g.admitted.inc()
		return true, 0
	}
	g.throttled.inc()
	wait := (need - b.tokens) / limit.Rate
	return false, time.Duration(math.Ceil(wait * float64(time.Second)))
}

// Counts reports lifetime admissions and throttles (metrics/test helper).
func (g *TenantGate) Counts() (admitted, throttled uint64) {
	return g.admitted.get(), g.throttled.get()
}

// WritePrometheus appends the gate's series to a /metrics exposition.
func (g *TenantGate) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP mclgd_cluster_admissions_total Tenant-gate decisions at the admission queue.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cluster_admissions_total counter\n")
	fmt.Fprintf(w, "mclgd_cluster_admissions_total{decision=\"admitted\"} %d\n", g.admitted.get())
	fmt.Fprintf(w, "mclgd_cluster_admissions_total{decision=\"throttled\"} %d\n", g.throttled.get())
}
