// Package metrics computes the quality numbers the paper's evaluation
// reports: total/maximum cell displacement (measured in placement-site
// widths, as in Table 2), half-perimeter wirelength (HPWL), and the HPWL
// increase over the global placement (ΔHPWL).
package metrics

import (
	"math"

	"mclg/internal/design"
)

// Displacement summarizes cell movement between the global placement and
// the current positions.
type Displacement struct {
	TotalSites float64 // Σ (|Δx| + |Δy|) / siteWidth — the paper's "Total Disp. (sites)"
	MaxSites   float64 // max over cells of (|Δx| + |Δy|) / siteWidth
	TotalEucl  float64 // Σ √(Δx² + Δy²) in database units
	SumSq      float64 // Σ (Δx² + Δy²), the QP objective
	Moved      int     // cells with nonzero displacement
}

// MeasureDisplacement compares each movable cell's current position with
// its global-placement position.
func MeasureDisplacement(d *design.Design) Displacement {
	var out Displacement
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		dx := math.Abs(c.X - c.GX)
		dy := math.Abs(c.Y - c.GY)
		if dx == 0 && dy == 0 {
			continue
		}
		out.Moved++
		manh := (dx + dy) / d.SiteW
		out.TotalSites += manh
		if manh > out.MaxSites {
			out.MaxSites = manh
		}
		out.TotalEucl += math.Hypot(dx, dy)
		out.SumSq += dx*dx + dy*dy
	}
	return out
}

// HPWL returns the total half-perimeter wirelength of the design at the
// cells' current positions. Pin offsets are measured from the cell's
// bottom-left corner; vertically flipped cells mirror the pin's y offset.
// Nets with fewer than two pins contribute zero.
func HPWL(d *design.Design) float64 {
	return hpwl(d, false)
}

// HPWLGlobal returns the HPWL at the global-placement positions (flips
// ignored, matching the pre-legalization netlist state).
func HPWLGlobal(d *design.Design) float64 {
	return hpwl(d, true)
}

func hpwl(d *design.Design, global bool) float64 {
	total := 0.0
	for i := range d.Nets {
		n := &d.Nets[i]
		if len(n.Pins) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, p := range n.Pins {
			var x, y float64
			if p.CellID < 0 {
				x, y = p.DX, p.DY
			} else {
				c := d.Cells[p.CellID]
				dy := p.DY
				if !global && c.Flipped {
					dy = c.H - p.DY
				}
				if global {
					x, y = c.GX+p.DX, c.GY+dy
				} else {
					x, y = c.X+p.DX, c.Y+dy
				}
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		w := n.Weight
		if w == 0 {
			w = 1
		}
		total += w * ((maxX - minX) + (maxY - minY))
	}
	return total
}

// DeltaHPWL returns the relative HPWL increase of the current placement
// over the global placement: (HPWL − HPWL_gp) / HPWL_gp. Returns 0 when the
// design has no nets or zero global wirelength.
func DeltaHPWL(d *design.Design) float64 {
	gp := HPWLGlobal(d)
	if gp == 0 {
		return 0
	}
	return (HPWL(d) - gp) / gp
}
