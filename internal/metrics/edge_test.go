package metrics

// Edge-case coverage for the quality metrics: degenerate netlists and
// cell populations must yield finite numbers, never NaN/Inf or a panic.

import (
	"math"
	"testing"

	"mclg/internal/design"
)

// checkFinite asserts every metric of d is a finite number.
func checkFinite(t *testing.T, d *design.Design) {
	t.Helper()
	for name, v := range map[string]float64{
		"HPWL":       HPWL(d),
		"HPWLGlobal": HPWLGlobal(d),
		"DeltaHPWL":  DeltaHPWL(d),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %g, want finite", name, v)
		}
	}
	disp := MeasureDisplacement(d)
	for name, v := range map[string]float64{
		"TotalSites": disp.TotalSites, "MaxSites": disp.MaxSites,
		"TotalEucl": disp.TotalEucl, "SumSq": disp.SumSq,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Displacement.%s = %g, want finite", name, v)
		}
	}
}

func TestSinglePinNetContributesZero(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.GX, a.GY, a.X, a.Y = 10, 0, 10, 0
	d.Nets = append(d.Nets, design.Net{Name: "solo", Pins: []design.Pin{
		{CellID: a.ID, DX: 1, DY: 1},
	}})
	if got := HPWL(d); got != 0 {
		t.Errorf("HPWL with only a single-pin net = %g, want 0", got)
	}
	if got := DeltaHPWL(d); got != 0 {
		t.Errorf("DeltaHPWL with only a single-pin net = %g, want 0", got)
	}
	checkFinite(t, d)
}

func TestZeroPinNet(t *testing.T) {
	d := mkDesign()
	d.Nets = append(d.Nets, design.Net{Name: "empty"})
	if got := HPWL(d); got != 0 {
		t.Errorf("HPWL with a zero-pin net = %g, want 0", got)
	}
	checkFinite(t, d)
}

func TestFixedOnlyNet(t *testing.T) {
	d := mkDesign()
	f1 := d.AddCell("f1", 4, 10, design.VSS)
	f1.Fixed = true
	f1.GX, f1.GY, f1.X, f1.Y = 0, 0, 0, 0
	f2 := d.AddCell("f2", 4, 10, design.VSS)
	f2.Fixed = true
	f2.GX, f2.GY, f2.X, f2.Y = 20, 10, 20, 10
	d.Nets = append(d.Nets, design.Net{Name: "fixed", Pins: []design.Pin{
		{CellID: f1.ID, DX: 2, DY: 5},
		{CellID: f2.ID, DX: 2, DY: 5},
	}})
	// Both endpoints are fixed and unmoved, so current == global HPWL and
	// the ratio must be exactly zero (not 0/0).
	if got := HPWL(d); got != 20+10 {
		t.Errorf("HPWL = %g, want 30", got)
	}
	if got := DeltaHPWL(d); got != 0 {
		t.Errorf("DeltaHPWL = %g, want 0", got)
	}
	disp := MeasureDisplacement(d)
	if disp.Moved != 0 || disp.TotalSites != 0 {
		t.Errorf("fixed-only design reported movement: %+v", disp)
	}
	checkFinite(t, d)
}

func TestPadOnlyNet(t *testing.T) {
	// Pins with CellID < 0 are fixed pads at absolute coordinates.
	d := mkDesign()
	d.Nets = append(d.Nets, design.Net{Name: "pads", Pins: []design.Pin{
		{CellID: -1, DX: 0, DY: 0},
		{CellID: -1, DX: 7, DY: 3},
	}})
	if got := HPWL(d); got != 10 {
		t.Errorf("pad-only HPWL = %g, want 10", got)
	}
	checkFinite(t, d)
}

func TestZeroMovableCellsDesign(t *testing.T) {
	d := mkDesign()
	for i := 0; i < 3; i++ {
		f := d.AddCell("f", 4, 10, design.VSS)
		f.Fixed = true
		f.GX, f.GY = float64(10*i), 0
		f.X, f.Y = f.GX, f.GY
	}
	disp := MeasureDisplacement(d)
	if disp.Moved != 0 || disp.TotalSites != 0 || disp.MaxSites != 0 {
		t.Errorf("zero-movable design reported displacement: %+v", disp)
	}
	checkFinite(t, d)
}

func TestEmptyDesign(t *testing.T) {
	d := mkDesign()
	if got := HPWL(d); got != 0 {
		t.Errorf("empty-design HPWL = %g, want 0", got)
	}
	if got := DeltaHPWL(d); got != 0 {
		t.Errorf("empty-design DeltaHPWL = %g, want 0", got)
	}
	disp := MeasureDisplacement(d)
	if disp.TotalSites != 0 || disp.Moved != 0 {
		t.Errorf("empty design reported displacement: %+v", disp)
	}
	checkFinite(t, d)
}

// TestZeroGlobalWirelength pins the DeltaHPWL guard: when the global
// placement has zero wirelength (all pins coincide) but legalization moved
// a cell, the ratio is defined to be 0, not +Inf.
func TestZeroGlobalWirelength(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.GX, a.GY = 10, 0
	a.X, a.Y = 14, 10 // moved by legalization
	b := d.AddCell("b", 4, 10, design.VSS)
	b.GX, b.GY = 10, 0
	b.X, b.Y = 10, 0
	d.Nets = append(d.Nets, design.Net{Name: "coincident", Pins: []design.Pin{
		{CellID: a.ID, DX: 0, DY: 0},
		{CellID: b.ID, DX: 0, DY: 0},
	}})
	if got := HPWLGlobal(d); got != 0 {
		t.Fatalf("global HPWL = %g, want 0", got)
	}
	if got := DeltaHPWL(d); got != 0 {
		t.Errorf("DeltaHPWL with zero global wirelength = %g, want 0 (guarded)", got)
	}
	checkFinite(t, d)
}
