package metrics

import (
	"math"
	"testing"

	"mclg/internal/design"
)

func mkDesign() *design.Design {
	return design.NewDesign(design.Config{NumRows: 4, NumSites: 100, RowHeight: 10, SiteW: 2})
}

func TestMeasureDisplacement(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.GX, a.GY = 10, 0
	a.X, a.Y = 14, 10 // Δ = (4, 10) -> manhattan 14, /siteW=2 -> 7 sites
	b := d.AddCell("b", 4, 10, design.VSS)
	b.GX, b.GY = 20, 20
	b.X, b.Y = 20, 20 // unmoved
	got := MeasureDisplacement(d)
	if got.TotalSites != 7 {
		t.Errorf("TotalSites = %g, want 7", got.TotalSites)
	}
	if got.MaxSites != 7 {
		t.Errorf("MaxSites = %g, want 7", got.MaxSites)
	}
	if got.Moved != 1 {
		t.Errorf("Moved = %d, want 1", got.Moved)
	}
	if math.Abs(got.TotalEucl-math.Hypot(4, 10)) > 1e-12 {
		t.Errorf("TotalEucl = %g", got.TotalEucl)
	}
	if got.SumSq != 16+100 {
		t.Errorf("SumSq = %g, want 116", got.SumSq)
	}
}

func TestDisplacementIgnoresFixed(t *testing.T) {
	d := mkDesign()
	f := d.AddCell("f", 4, 10, design.VSS)
	f.Fixed = true
	f.GX, f.X = 0, 50
	got := MeasureDisplacement(d)
	if got.TotalSites != 0 || got.Moved != 0 {
		t.Errorf("fixed cell counted: %+v", got)
	}
}

func TestHPWLTwoPinNet(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	a.X, a.Y = 0, 0
	b.X, b.Y = 10, 20
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0, DX: 1, DY: 2},
		{CellID: 1, DX: 3, DY: 4},
	}})
	// Pins at (1,2) and (13,24): HPWL = 12 + 22 = 34.
	if got := HPWL(d); got != 34 {
		t.Errorf("HPWL = %g, want 34", got)
	}
}

func TestHPWLFlippedPin(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X, a.Y = 0, 0
	a.Flipped = true
	b := d.AddCell("b", 4, 10, design.VSS)
	b.X, b.Y = 10, 0
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0, DX: 0, DY: 2}, // flipped: y = 10 - 2 = 8
		{CellID: 1, DX: 0, DY: 0},
	}})
	// Pins (0,8) and (10,0): HPWL = 10 + 8 = 18.
	if got := HPWL(d); got != 18 {
		t.Errorf("HPWL with flip = %g, want 18", got)
	}
}

func TestHPWLFixedPin(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X, a.Y = 5, 0
	d.Nets = append(d.Nets, design.Net{Name: "io", Pins: []design.Pin{
		{CellID: -1, DX: 0, DY: 0}, // pad at origin
		{CellID: 0, DX: 0, DY: 0},
	}})
	if got := HPWL(d); got != 5 {
		t.Errorf("HPWL = %g, want 5", got)
	}
}

func TestHPWLSkipsDegenerateNets(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X = 42
	d.Nets = append(d.Nets,
		design.Net{Name: "empty"},
		design.Net{Name: "single", Pins: []design.Pin{{CellID: 0}}},
	)
	if got := HPWL(d); got != 0 {
		t.Errorf("HPWL = %g, want 0", got)
	}
}

func TestDeltaHPWL(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	a.GX, a.GY, b.GX, b.GY = 0, 0, 10, 0
	a.X, a.Y, b.X, b.Y = 0, 0, 20, 0 // legalized b moved right
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0}, {CellID: 1},
	}})
	// GP HPWL = 10, legal = 20 -> ΔHPWL = 1.0.
	if got := DeltaHPWL(d); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("DeltaHPWL = %g, want 1", got)
	}
}

func TestDeltaHPWLNoNets(t *testing.T) {
	d := mkDesign()
	if got := DeltaHPWL(d); got != 0 {
		t.Errorf("DeltaHPWL = %g, want 0", got)
	}
}

// Flipped-cell pin mirroring: a vertically flipped cell places a pin with
// offset DY at y = Y + (H − DY) in the legal placement, while the global
// placement ignores flips (the netlist state before legalization). All
// numbers below are hand-computed.
func TestHPWLFlippedDoubleRowCell(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 20, design.VSS) // double-row, will be flipped
	a.GX, a.GY = 8, 0
	a.X, a.Y = 10, 10
	a.Flipped = true
	b := d.AddCell("b", 4, 10, design.VSS) // single-row, upright
	b.GX, b.GY = 30, 0
	b.X, b.Y = 30, 0
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: a.ID, DX: 1, DY: 3},
		{CellID: b.ID, DX: 2, DY: 5},
	}})
	// Legal: a's pin mirrors to (10+1, 10+(20−3)) = (11, 27); b's is (32, 5).
	// HPWL = (32−11) + (27−5) = 43.
	if got := HPWL(d); math.Abs(got-43) > 1e-12 {
		t.Errorf("HPWL = %g, want 43", got)
	}
	// Global ignores the flip: a's pin at (8+1, 0+3) = (9, 3); b's (32, 5).
	// HPWL = (32−9) + (5−3) = 25.
	if got := HPWLGlobal(d); math.Abs(got-25) > 1e-12 {
		t.Errorf("HPWLGlobal = %g, want 25", got)
	}
	// Unflipping a moves its pin to (11, 13): HPWL = 21 + 8 = 29.
	a.Flipped = false
	if got := HPWL(d); math.Abs(got-29) > 1e-12 {
		t.Errorf("HPWL unflipped = %g, want 29", got)
	}
}

// A net mixing fixed pins (CellID < 0, absolute coordinates) with a flipped
// cell: the fixed pin never moves or mirrors, the flipped pin does.
func TestHPWLFixedPinWithFlippedCell(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 20, design.VSS)
	a.GX, a.GY = 8, 0
	a.X, a.Y = 10, 10
	a.Flipped = true
	d.Nets = append(d.Nets, design.Net{Name: "io", Weight: 2, Pins: []design.Pin{
		{CellID: -1, DX: 0, DY: 40}, // fixed pad at absolute (0, 40)
		{CellID: a.ID, DX: 1, DY: 3},
	}})
	// Legal: a's pin at (11, 27); bbox (0..11, 27..40) → 11 + 13 = 24, ×2 = 48.
	if got := HPWL(d); math.Abs(got-48) > 1e-12 {
		t.Errorf("HPWL = %g, want 48", got)
	}
	// Global: a's pin at (9, 3); bbox (0..9, 3..40) → 9 + 37 = 46, ×2 = 92.
	if got := HPWLGlobal(d); math.Abs(got-92) > 1e-12 {
		t.Errorf("HPWLGlobal = %g, want 92", got)
	}
}
