package metrics

import (
	"math"
	"testing"

	"mclg/internal/design"
)

func mkDesign() *design.Design {
	return design.NewDesign(design.Config{NumRows: 4, NumSites: 100, RowHeight: 10, SiteW: 2})
}

func TestMeasureDisplacement(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.GX, a.GY = 10, 0
	a.X, a.Y = 14, 10 // Δ = (4, 10) -> manhattan 14, /siteW=2 -> 7 sites
	b := d.AddCell("b", 4, 10, design.VSS)
	b.GX, b.GY = 20, 20
	b.X, b.Y = 20, 20 // unmoved
	got := MeasureDisplacement(d)
	if got.TotalSites != 7 {
		t.Errorf("TotalSites = %g, want 7", got.TotalSites)
	}
	if got.MaxSites != 7 {
		t.Errorf("MaxSites = %g, want 7", got.MaxSites)
	}
	if got.Moved != 1 {
		t.Errorf("Moved = %d, want 1", got.Moved)
	}
	if math.Abs(got.TotalEucl-math.Hypot(4, 10)) > 1e-12 {
		t.Errorf("TotalEucl = %g", got.TotalEucl)
	}
	if got.SumSq != 16+100 {
		t.Errorf("SumSq = %g, want 116", got.SumSq)
	}
}

func TestDisplacementIgnoresFixed(t *testing.T) {
	d := mkDesign()
	f := d.AddCell("f", 4, 10, design.VSS)
	f.Fixed = true
	f.GX, f.X = 0, 50
	got := MeasureDisplacement(d)
	if got.TotalSites != 0 || got.Moved != 0 {
		t.Errorf("fixed cell counted: %+v", got)
	}
}

func TestHPWLTwoPinNet(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	a.X, a.Y = 0, 0
	b.X, b.Y = 10, 20
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0, DX: 1, DY: 2},
		{CellID: 1, DX: 3, DY: 4},
	}})
	// Pins at (1,2) and (13,24): HPWL = 12 + 22 = 34.
	if got := HPWL(d); got != 34 {
		t.Errorf("HPWL = %g, want 34", got)
	}
}

func TestHPWLFlippedPin(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X, a.Y = 0, 0
	a.Flipped = true
	b := d.AddCell("b", 4, 10, design.VSS)
	b.X, b.Y = 10, 0
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0, DX: 0, DY: 2}, // flipped: y = 10 - 2 = 8
		{CellID: 1, DX: 0, DY: 0},
	}})
	// Pins (0,8) and (10,0): HPWL = 10 + 8 = 18.
	if got := HPWL(d); got != 18 {
		t.Errorf("HPWL with flip = %g, want 18", got)
	}
}

func TestHPWLFixedPin(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X, a.Y = 5, 0
	d.Nets = append(d.Nets, design.Net{Name: "io", Pins: []design.Pin{
		{CellID: -1, DX: 0, DY: 0}, // pad at origin
		{CellID: 0, DX: 0, DY: 0},
	}})
	if got := HPWL(d); got != 5 {
		t.Errorf("HPWL = %g, want 5", got)
	}
}

func TestHPWLSkipsDegenerateNets(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X = 42
	d.Nets = append(d.Nets,
		design.Net{Name: "empty"},
		design.Net{Name: "single", Pins: []design.Pin{{CellID: 0}}},
	)
	if got := HPWL(d); got != 0 {
		t.Errorf("HPWL = %g, want 0", got)
	}
}

func TestDeltaHPWL(t *testing.T) {
	d := mkDesign()
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	a.GX, a.GY, b.GX, b.GY = 0, 0, 10, 0
	a.X, a.Y, b.X, b.Y = 0, 0, 20, 0 // legalized b moved right
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0}, {CellID: 1},
	}})
	// GP HPWL = 10, legal = 20 -> ΔHPWL = 1.0.
	if got := DeltaHPWL(d); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("DeltaHPWL = %g, want 1", got)
	}
}

func TestDeltaHPWLNoNets(t *testing.T) {
	d := mkDesign()
	if got := DeltaHPWL(d); got != 0 {
		t.Errorf("DeltaHPWL = %g, want 0", got)
	}
}
