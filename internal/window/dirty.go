package window

import "mclg/internal/design"

// BuildRun materializes a merged run of bands — typically the contiguous
// dirty bands of an incremental (ECO) re-solve — as one independent
// sub-design, exactly as buildSub does for a single band: the union of the
// bands' sub rows at their absolute coordinates, every cell owned by any of
// the bands movable (re-IDed, global positions preserved), and every other
// cell whose snapshot rectangle intersects the run frozen as fixed context.
// The returned idx maps sub cell index to full-design ID for owned cells
// (-1 for context).
//
// bands must be non-empty indices into p.Bands in ascending order. Callers
// merge bands whose sub ranges overlap into one run before building, so
// distinct runs own disjoint row ranges and can be solved independently.
func (p *Plan) BuildRun(d *design.Design, bands []int) (*design.Design, []int) {
	merged := Band{
		Index: p.Bands[bands[0]].Index,
		RowLo: p.Bands[bands[0]].RowLo,
		RowHi: p.Bands[bands[0]].RowHi,
		SubLo: p.Bands[bands[0]].SubLo,
		SubHi: p.Bands[bands[0]].SubHi,
	}
	for _, bi := range bands {
		b := p.Bands[bi]
		if b.RowLo < merged.RowLo {
			merged.RowLo = b.RowLo
		}
		if b.RowHi > merged.RowHi {
			merged.RowHi = b.RowHi
		}
		if b.SubLo < merged.SubLo {
			merged.SubLo = b.SubLo
		}
		if b.SubHi > merged.SubHi {
			merged.SubHi = b.SubHi
		}
		merged.Owned = append(merged.Owned, b.Owned...)
	}
	return buildSub(d, p, &merged)
}

// DirtyBands returns the indices (into p.Bands) of every band that must be
// re-solved when the given design rows are dirty — the selection primitive
// behind incremental (ECO) re-legalization, where a delta touches a handful
// of rows and only the affected windows pay a solve.
//
// A band is dirty when any dirty row falls inside its sub-design range
// [SubLo, SubHi): the owned rows, the frozen-context margin (a change there
// invalidates the context snapshot the band solved against), and the
// overhang of tall owned cells (Partition already pushes SubHi past the top
// of the tallest owned cell). On top of the range test, every owned cell's
// occupied span [AssignedRow, AssignedRow+RowSpan) is checked directly, so
// a cell whose overhang crosses a band boundary pulls its *owner* band in
// even when the dirty row itself lies in a neighboring band's territory —
// the owner is the only band allowed to move that cell.
//
// The returned indices are in ascending band order.
func (p *Plan) DirtyBands(d *design.Design, dirty map[int]bool) []int {
	if len(dirty) == 0 {
		return nil
	}
	mark := make([]bool, len(p.Bands))
	for i, b := range p.Bands {
		for r := b.SubLo; r < b.SubHi; r++ {
			if dirty[r] {
				mark[i] = true
				break
			}
		}
	}
	// Overhang safety net: Partition extends SubHi past every owned cell's
	// top row, so the range test above should already cover owned spans —
	// but walk them directly anyway so a future Partition change can never
	// silently turn a missed overhang into a stale window.
	for id, owner := range p.Owner {
		if owner < 0 || mark[owner] {
			continue
		}
		lo := p.AssignedRow[id]
		for r := lo; r < lo+d.Cells[id].RowSpan; r++ {
			if dirty[r] {
				mark[owner] = true
				break
			}
		}
	}
	var out []int
	for i, m := range mark {
		if m {
			out = append(out, i)
		}
	}
	return out
}
