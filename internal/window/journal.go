package window

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sync"

	"mclg/internal/mclgerr"
)

// Journal persists verified window results so a crashed or killed job can
// resume by replaying completed windows instead of re-solving them. Every
// recorded result is checker-verified within its window; degraded results
// are never journaled.
type Journal interface {
	// Lookup returns the recorded owned-cell positions for a window.
	Lookup(window int) ([]CellPos, bool)
	// Record durably persists a window's verified result.
	Record(window int, cells []CellPos) error
}

// journalHeader is the first line of a journal file. Sig content-addresses
// the plan (design geometry + global positions + window/solver parameters):
// records are replayed only under an identical signature, so a changed
// input or configuration silently invalidates the journal instead of
// resurrecting stale placements. Tag carries an optional caller scope — an
// ECO session stores its delta-log digest and batch sequence here, so a
// journal written while applying one delta batch never resumes into the
// re-solve of a different batch even when the design geometry (and hence
// Sig) happens to match.
type journalHeader struct {
	V       int    `json:"v"`
	Sig     string `json:"sig"`
	Tag     string `json:"tag,omitempty"`
	Windows int    `json:"windows"`
}

// journalRecord is one appended window result. Sum is a FNV-1a checksum of
// the record's content; a record whose checksum does not match (a torn
// write from a crash mid-append) and everything after it is discarded on
// replay.
type journalRecord struct {
	W     int       `json:"w"`
	Cells []CellPos `json:"cells"`
	Sum   string    `json:"sum"`
}

func recordSum(w int, cells []CellPos) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(w))
	for _, c := range cells {
		put(uint64(c.ID))
		put(math.Float64bits(c.X))
		put(math.Float64bits(c.Y))
		if c.Flipped {
			put(1)
		} else {
			put(0)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FileJournal is the append-only, fsync'd write-ahead implementation of
// Journal. The file is one JSON object per line: a header, then one record
// per completed window. Appends are flushed and fsync'd before Record
// returns, so every acknowledged window survives a process kill; a torn
// final line from a crash mid-write is detected by checksum and ignored.
type FileJournal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	completed map[int][]CellPos
	resumed   int
}

// OpenFileJournal opens (or creates) the journal at path for a plan with
// the given signature and window count. An existing file with a matching
// header has its intact records loaded for replay; a missing, unreadable,
// torn, or mismatching file is reset to a fresh header — resuming is an
// optimization, never a correctness risk.
func OpenFileJournal(path string, sig uint64, windows int) (*FileJournal, error) {
	return OpenFileJournalTagged(path, sig, "", windows)
}

// OpenFileJournalTagged is OpenFileJournal with a caller-scoped header tag:
// records resume only when the on-disk tag matches tag exactly, on top of
// the signature and window-count checks. ECO sessions use the tag to bind a
// dirty-window journal to one delta batch of one session log (see
// journalHeader).
func OpenFileJournalTagged(path string, sig uint64, tag string, windows int) (*FileJournal, error) {
	j := &FileJournal{path: path, completed: map[int][]CellPos{}}
	wantSig := fmt.Sprintf("%016x", sig)

	if data, err := os.ReadFile(path); err == nil {
		j.load(data, wantSig, tag, windows)
	}
	j.resumed = len(j.completed)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, mclgerr.Stage("journal", err)
	}
	if j.resumed == 0 {
		// Fresh or invalidated journal: truncate and write a new header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, mclgerr.Stage("journal", err)
		}
		hdr, _ := json.Marshal(journalHeader{V: 1, Sig: wantSig, Tag: tag, Windows: windows})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, mclgerr.Stage("journal", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, mclgerr.Stage("journal", err)
		}
	} else {
		// Valid journal: append after the last intact record. Re-derive
		// the intact length rather than seeking to EOF so a torn tail is
		// overwritten, not extended.
		data, _ := os.ReadFile(path)
		n := intactLen(data, wantSig, tag, windows)
		if err := f.Truncate(int64(n)); err != nil {
			f.Close()
			return nil, mclgerr.Stage("journal", err)
		}
		if _, err := f.Seek(int64(n), 0); err != nil {
			f.Close()
			return nil, mclgerr.Stage("journal", err)
		}
	}
	j.f = f
	return j, nil
}

// load parses the journal bytes, keeping records up to the first torn or
// invalid line. A header mismatch discards everything.
func (j *FileJournal) load(data []byte, wantSig, wantTag string, windows int) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.V != 1 || hdr.Sig != wantSig || hdr.Tag != wantTag || hdr.Windows != windows {
		return
	}
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return // torn tail
		}
		if rec.Sum != recordSum(rec.W, rec.Cells) || rec.W < 0 || rec.W >= windows {
			return
		}
		j.completed[rec.W] = rec.Cells
	}
}

// intactLen returns the byte length of the header plus every intact record,
// i.e. the offset appends must resume from.
func intactLen(data []byte, wantSig, wantTag string, windows int) int {
	n := 0
	line := 0
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i == len(data) && start == i {
				break
			}
			chunk := data[start:i]
			ok := false
			if line == 0 {
				var hdr journalHeader
				ok = json.Unmarshal(chunk, &hdr) == nil &&
					hdr.V == 1 && hdr.Sig == wantSig && hdr.Tag == wantTag && hdr.Windows == windows
			} else {
				var rec journalRecord
				ok = json.Unmarshal(chunk, &rec) == nil &&
					rec.Sum == recordSum(rec.W, rec.Cells) &&
					rec.W >= 0 && rec.W < windows
			}
			if !ok || i == len(data) {
				if ok {
					n = i // intact but unterminated final line: keep it
				}
				break
			}
			n = i + 1
			line++
			start = i + 1
		}
	}
	return n
}

// Lookup implements Journal.
func (j *FileJournal) Lookup(window int) ([]CellPos, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cells, ok := j.completed[window]
	return cells, ok
}

// Record implements Journal: append one record line, flush, fsync.
func (j *FileJournal) Record(window int, cells []CellPos) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return mclgerr.Invalidf("journal: closed")
	}
	if _, ok := j.completed[window]; ok {
		return nil
	}
	line, err := json.Marshal(journalRecord{W: window, Cells: cells, Sum: recordSum(window, cells)})
	if err != nil {
		return mclgerr.Stage("journal", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return mclgerr.Stage("journal", err)
	}
	if err := j.f.Sync(); err != nil {
		return mclgerr.Stage("journal", err)
	}
	j.completed[window] = cells
	return nil
}

// Resumed reports how many windows were loaded from a pre-existing journal.
func (j *FileJournal) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed
}

// Close closes the underlying file. Further Records fail.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Remove closes and deletes the journal file — called when the job it
// backs has committed, so a completed job never resumes.
func (j *FileJournal) Remove() error {
	j.Close()
	return os.Remove(j.path)
}
