package window

import (
	"testing"
)

// TestDirtyBandsSelectByRange pins the basic selection contract: a dirty row
// pulls in exactly the bands whose sub range covers it, in ascending order,
// and an empty dirty set selects nothing.
func TestDirtyBandsSelectByRange(t *testing.T) {
	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if got := p.DirtyBands(d, nil); got != nil {
		t.Fatalf("DirtyBands(nil) = %v, want nil", got)
	}
	for i, b := range p.Bands {
		got := p.DirtyBands(d, map[int]bool{b.RowLo: true})
		found := false
		for _, bi := range got {
			if bi == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("dirty row %d (band %d's RowLo) did not select band %d: %v", b.RowLo, i, i, got)
		}
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				t.Fatalf("DirtyBands not ascending: %v", got)
			}
		}
	}
}

// TestDirtyBandsOverhangCrossing is the regression test for tall-cell
// overhangs: a multi-row cell assigned near the top of its band occupies
// rows inside the next band's territory, and dirtying only one of those
// overhang rows must still pull in the *owner* band — it is the only band
// allowed to move the cell. The second half clamps the owner's SubHi down
// to its owned range, simulating a Partition that no longer extends sub
// ranges past tall cells, and asserts the owned-span safety net alone still
// catches the crossing.
func TestDirtyBandsOverhangCrossing(t *testing.T) {
	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 2, 1)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	// Find a cell whose occupied span crosses its band's owned upper bound.
	cross, owner := -1, -1
	for id, o := range p.Owner {
		if o < 0 {
			continue
		}
		if top := p.AssignedRow[id] + d.Cells[id].RowSpan; top > p.Bands[o].RowHi {
			cross, owner = id, o
			break
		}
	}
	if cross < 0 {
		t.Skip("no overhang-crossing cell at this partition; benchmark geometry changed")
	}
	overhangRow := p.Bands[owner].RowHi // first row past the owned range
	dirty := map[int]bool{overhangRow: true}

	sel := p.DirtyBands(d, dirty)
	if !containsBand(sel, owner) {
		t.Fatalf("dirty overhang row %d did not select owner band %d: %v", overhangRow, owner, sel)
	}

	// Clamp the owner's sub range to its owned rows so the range test alone
	// can no longer see the overhang; the owned-span walk must still fire.
	clamped := *p
	clamped.Bands = append([]Band(nil), p.Bands...)
	if clamped.Bands[owner].SubHi > clamped.Bands[owner].RowHi {
		clamped.Bands[owner].SubHi = clamped.Bands[owner].RowHi
	}
	sel = clamped.DirtyBands(d, dirty)
	if !containsBand(sel, owner) {
		t.Fatalf("owned-span safety net missed: dirty row %d, owner band %d not in %v", overhangRow, owner, sel)
	}
}

func containsBand(sel []int, want int) bool {
	for _, bi := range sel {
		if bi == want {
			return true
		}
	}
	return false
}

// TestBuildRunMergesBands checks that a run built from two adjacent bands
// owns exactly the union of their owned cells, movable, with global
// positions preserved — and that cells outside the run appear only as fixed
// context or not at all.
func TestBuildRunMergesBands(t *testing.T) {
	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if len(p.Bands) < 2 {
		t.Fatalf("need at least 2 bands, got %d", len(p.Bands))
	}
	sub, idx := p.BuildRun(d, []int{0, 1})

	want := make(map[int]bool)
	for _, bi := range []int{0, 1} {
		for _, id := range p.Bands[bi].Owned {
			want[id] = true
		}
	}
	got := make(map[int]bool)
	for i, c := range sub.Cells {
		if idx[i] < 0 {
			if !c.Fixed {
				t.Fatalf("context cell %d (%s) not fixed", i, c.Name)
			}
			continue
		}
		id := idx[i]
		if !want[id] {
			t.Fatalf("run owns cell %d, not owned by bands 0-1", id)
		}
		if c.Fixed {
			t.Fatalf("owned cell %d fixed in run sub-design", id)
		}
		if c.GX != d.Cells[id].GX || c.GY != d.Cells[id].GY {
			t.Fatalf("cell %d global position (%g,%g) != (%g,%g)", id, c.GX, c.GY, d.Cells[id].GX, d.Cells[id].GY)
		}
		got[id] = true
	}
	if len(got) != len(want) {
		t.Fatalf("run owns %d cells, want %d", len(got), len(want))
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("run sub-design invalid: %v", err)
	}
}
