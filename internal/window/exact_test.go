package window

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/metrics"
	"mclg/internal/regress"
)

func exactOptions(workers int) Options {
	opts := baseOptions(workers)
	opts.ExactWindows = 3
	opts.ExactNodeBudget = 3000
	return opts
}

// TestExactRefineTrioDeterministicAcrossWorkers pins the acceptance
// criteria on the regression trio: with the exact post-pass enabled the
// placement stays bit-identical across worker counts, every measured gap is
// a valid certificate (nonnegative, zero exactly for the proven-optimal
// windows counted in Proven), and the refinement never worsens the
// placement a Tetris-only run commits.
func TestExactRefineTrioDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range trioCases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			t.Parallel()

			base := genDesign(t, tc.bench, tc.scale)
			if _, err := Legalize(context.Background(), base, baseOptions(1)); err != nil {
				t.Fatalf("tetris-only run: %v", err)
			}
			baseDisp := metrics.MeasureDisplacement(base)

			var wantHash string
			for _, workers := range []int{1, 2, 8} {
				d := genDesign(t, tc.bench, tc.scale)
				st, err := Legalize(context.Background(), d, exactOptions(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if st.Exact == nil {
					t.Fatalf("workers=%d: Stats.Exact is nil with ExactWindows set", workers)
				}
				if st.Exact.Selected == 0 {
					t.Fatalf("workers=%d: no windows selected for refinement", workers)
				}
				proven, maxGap := 0, 0.0
				for _, wg := range st.Exact.Gaps {
					if wg.Gap < 0 || wg.Gap > 1 {
						t.Fatalf("workers=%d: window %d gap %g outside [0,1]", workers, wg.Window, wg.Gap)
					}
					if wg.Proven && wg.Gap == 0 {
						proven++
					} else if wg.Gap == 0 {
						t.Fatalf("workers=%d: window %d reports Gap == 0 without proof", workers, wg.Window)
					}
					if wg.Gap > maxGap {
						maxGap = wg.Gap
					}
					if wg.MaxDispAfter > wg.MaxDispBefore {
						t.Fatalf("workers=%d: window %d max displacement rose %g -> %g",
							workers, wg.Window, wg.MaxDispBefore, wg.MaxDispAfter)
					}
				}
				if proven != st.Exact.Proven {
					t.Fatalf("workers=%d: Proven = %d, want %d", workers, st.Exact.Proven, proven)
				}
				if maxGap != st.Exact.MaxGap {
					t.Fatalf("workers=%d: MaxGap = %g, want %g", workers, st.Exact.MaxGap, maxGap)
				}
				if rep := design.CheckLegal(d); !rep.Legal() {
					t.Fatalf("workers=%d: refined placement illegal: %s", workers, rep.String())
				}
				if disp := metrics.MeasureDisplacement(d); disp.MaxSites > baseDisp.MaxSites {
					t.Fatalf("workers=%d: refinement worsened max displacement %g -> %g",
						workers, baseDisp.MaxSites, disp.MaxSites)
				}
				h := regress.PositionHash(d)
				if wantHash == "" {
					wantHash = h
				} else if h != wantHash {
					t.Fatalf("workers=%d: hash %s != workers=1 hash %s", workers, h, wantHash)
				}
			}
		})
	}
}

// TestExactRefineImprovesDegradedWindow is the seeded strict-improvement
// case: a persistently faulted window degrades to the greedy fallback,
// whose cell-by-cell placement is measurably worse than the joint optimum;
// the exact pass must then strictly reduce the whole-design max
// displacement versus the Tetris-only (no-exact) run.
func TestExactRefineImprovesDegradedWindow(t *testing.T) {
	check := leakCheck(t)
	p, err := Partition(genDesign(t, "des_perf_1", 0.004), 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	template := chaosSpec{PanicFrac: 0.2, MaxAttempt: hedgeAttempt * 2}
	seed := chaosSeed(t, template, len(p.Bands), 1)

	run := func(exactWindows int) (*Stats, *design.Design) {
		d := genDesign(t, "des_perf_1", 0.004)
		opts := baseOptions(2)
		opts.Chaos = template.with(seed)
		opts.RetryBackoff = time.Millisecond
		opts.ExactWindows = exactWindows
		opts.ExactNodeBudget = 3000
		st, err := Legalize(context.Background(), d, opts)
		if err != nil {
			t.Fatalf("Legalize(exact=%d): %v", exactWindows, err)
		}
		if st.Degraded == 0 {
			t.Fatalf("expected a degraded window, stats %+v", st)
		}
		return st, d
	}

	_, tetrisOnly := run(0)
	st, refined := run(3)
	if st.Exact == nil || st.Exact.Improved == 0 {
		t.Fatalf("exact pass improved no window, stats %+v", st.Exact)
	}
	before := metrics.MeasureDisplacement(tetrisOnly).MaxSites
	after := metrics.MeasureDisplacement(refined).MaxSites
	if !(after < before) {
		t.Fatalf("max displacement not strictly reduced: %g -> %g", before, after)
	}
	if rep := design.CheckLegal(refined); !rep.Legal() {
		t.Fatalf("refined placement illegal: %s", rep.String())
	}
	check()
}

// TestStitchCancellationNoPartialCommit cancels the context while the
// stitch allocation runs: stitch must fail with a canceled-class error and
// leave the design byte-for-byte untouched — stitch works on a clone and
// commits atomically only after the legality check.
func TestStitchCancellationNoPartialCommit(t *testing.T) {
	check := leakCheck(t)
	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	// Snapshot-quality results: what a degraded run would hand to stitch.
	results := make([]*Result, len(p.Bands))
	for i := range p.Bands {
		b := &p.Bands[i]
		res := &Result{Window: b.Index}
		for _, id := range b.Owned {
			c := d.Cells[id]
			res.Cells = append(res.Cells, CellPos{ID: id, X: c.GX, Y: d.RowY(p.AssignedRow[id])})
		}
		results[i] = res
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	wantHash := regress.PositionHash(d)
	err = stitch(ctx, d, results, 2)
	if err == nil {
		t.Fatal("stitch under a canceled context succeeded")
	}
	if !errors.Is(err, mclgerr.ErrCanceled) {
		t.Fatalf("err = %v, want mclgerr.ErrCanceled", err)
	}
	if h := regress.PositionHash(d); h != wantHash {
		t.Fatalf("design mutated by a canceled stitch: %s != %s", h, wantHash)
	}
	check()
}

// cancelingJournal wraps a Journal and fires cancel once `after` windows
// have been recorded — simulating a job killed between the last window
// solve and the stitch commit.
type cancelingJournal struct {
	Journal
	mu     sync.Mutex
	after  int
	n      int
	cancel context.CancelFunc
}

func (c *cancelingJournal) Record(w int, cells []CellPos) error {
	err := c.Journal.Record(w, cells)
	c.mu.Lock()
	c.n++
	fire := c.n >= c.after
	c.mu.Unlock()
	if fire {
		c.cancel()
	}
	return err
}

// TestCancelBeforeStitchLeavesJournalResumable cancels the job the moment
// the last window result is journaled: the run must fail canceled with no
// partial commit, and a fresh run over the same journal must replay every
// window (zero re-solves) and land on the uninterrupted placement.
func TestCancelBeforeStitchLeavesJournalResumable(t *testing.T) {
	check := leakCheck(t)
	d := genDesign(t, "fft_2", 0.004)
	opts := baseOptions(2)
	sig := Sig(d, opts.WindowRows, opts.ContextRows, opts.Cascade.Base)
	p, err := Partition(d, opts.WindowRows, opts.ContextRows)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	windows := len(p.Bands)

	// Reference: the uninterrupted hash.
	ref := genDesign(t, "fft_2", 0.004)
	if _, err := Legalize(context.Background(), ref, baseOptions(2)); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantHash := regress.PositionHash(ref)

	path := filepath.Join(t.TempDir(), "cancel.wal")
	j, err := OpenFileJournal(path, sig, windows)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Journal = &cancelingJournal{Journal: j, after: windows, cancel: cancel}

	preHash := regress.PositionHash(d)
	_, err = Legalize(ctx, d, opts)
	j.Close()
	if err == nil {
		t.Fatal("Legalize succeeded despite cancellation before stitch")
	}
	if !errors.Is(err, mclgerr.ErrCanceled) {
		t.Fatalf("err = %v, want mclgerr.ErrCanceled", err)
	}
	if h := regress.PositionHash(d); h != preHash {
		t.Fatalf("canceled run partially committed: %s != %s", h, preHash)
	}
	check()

	// Resume: every window replays from the journal, nothing re-solves.
	d2 := genDesign(t, "fft_2", 0.004)
	j2, err := OpenFileJournal(path, sig, windows)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	if j2.Resumed() != windows {
		t.Fatalf("journal resumed %d windows, want %d", j2.Resumed(), windows)
	}
	opts2 := baseOptions(2)
	opts2.Journal = j2
	st, err := Legalize(context.Background(), d2, opts2)
	if err != nil {
		t.Fatalf("resumed Legalize: %v", err)
	}
	if st.Resumed != windows || st.Solved != 0 {
		t.Fatalf("resumed run stats %+v, want all %d windows replayed", st, windows)
	}
	if h := regress.PositionHash(d2); h != wantHash {
		t.Fatalf("resumed hash %s != uninterrupted hash %s", h, wantHash)
	}
}
