package window

import (
	"context"
	"runtime"
	"testing"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/faults"
	"mclg/internal/gen"
	"mclg/internal/regress"
)

// trioCases mirrors the regress golden trio.
var trioCases = []struct {
	bench string
	scale float64
}{
	{"des_perf_1", 0.004},
	{"fft_2", 0.004},
	{"superblue19", 0.002},
}

func genDesign(t *testing.T, bench string, scale float64) *design.Design {
	t.Helper()
	e, err := gen.FindEntry(bench)
	if err != nil {
		t.Fatalf("FindEntry(%s): %v", bench, err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		t.Fatalf("Generate(%s): %v", bench, err)
	}
	return d
}

func baseOptions(workers int) Options {
	return Options{
		Cascade: core.ResilientOptions{
			Base: core.Options{Workers: workers},
		},
		WindowRows:    4,
		ContextRows:   2,
		WindowTimeout: 2 * time.Minute,
	}
}

// leakCheck fails the test if goroutines spawned during the checked section
// have not exited.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestPartitionCoversEveryMovableCellOnce(t *testing.T) {
	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	seen := make(map[int]int)
	for _, b := range p.Bands {
		if b.SubLo > b.RowLo || b.SubHi < b.RowHi {
			t.Fatalf("band %d: sub range [%d,%d) does not cover owned [%d,%d)",
				b.Index, b.SubLo, b.SubHi, b.RowLo, b.RowHi)
		}
		for _, id := range b.Owned {
			seen[id]++
			if p.Owner[id] != b.Index {
				t.Fatalf("cell %d: owner %d != band %d", id, p.Owner[id], b.Index)
			}
			r := p.AssignedRow[id]
			if r < b.RowLo || r >= b.RowHi {
				t.Fatalf("cell %d: assigned row %d outside band [%d,%d)", id, r, b.RowLo, b.RowHi)
			}
			if top := r + d.Cells[id].RowSpan; top > b.SubHi {
				t.Fatalf("cell %d: span top %d exceeds sub range %d", id, top, b.SubHi)
			}
		}
	}
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		if seen[c.ID] != 1 {
			t.Fatalf("cell %d owned by %d bands, want exactly 1", c.ID, seen[c.ID])
		}
	}
	if len(p.Bands) < 2 {
		t.Fatalf("expected multiple bands, got %d", len(p.Bands))
	}
}

// TestWindowedLegalAndDeterministic pins the windowed determinism contract
// on the regress trio: every worker count produces a checker-legal placement
// with one bit-identical position hash.
func TestWindowedLegalAndDeterministic(t *testing.T) {
	for _, tc := range trioCases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			t.Parallel()
			var wantHash string
			for _, workers := range []int{1, 2, 8} {
				d := genDesign(t, tc.bench, tc.scale)
				st, err := Legalize(context.Background(), d, baseOptions(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep := design.CheckLegal(d); !rep.Legal() {
					t.Fatalf("workers=%d: illegal placement: %s", workers, rep.String())
				}
				if st.Solved+st.Resumed != st.Windows {
					t.Fatalf("workers=%d: solved %d + resumed %d != windows %d",
						workers, st.Solved, st.Resumed, st.Windows)
				}
				h := regress.PositionHash(d)
				if wantHash == "" {
					wantHash = h
				} else if h != wantHash {
					t.Fatalf("workers=%d: hash %s != workers=1 hash %s", workers, h, wantHash)
				}
			}
		})
	}
}

// chaosSpec is a copyable WindowChaos template (WindowChaos itself carries
// an atomic counter and must not be copied once in use).
type chaosSpec struct {
	PanicFrac, StallFrac, NaNFrac float64
	MaxAttempt                    int
}

func (cs chaosSpec) with(seed uint64) *faults.WindowChaos {
	return &faults.WindowChaos{
		Seed:      seed,
		PanicFrac: cs.PanicFrac, StallFrac: cs.StallFrac, NaNFrac: cs.NaNFrac,
		MaxAttempt: cs.MaxAttempt,
	}
}

// chaosSeed finds a deterministic seed whose faulted window count lies in
// [1, maxFaulted] for the given window count and chaos template.
func chaosSeed(t *testing.T, spec chaosSpec, windows, maxFaulted int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10000; seed++ {
		c := spec.with(seed)
		n := 0
		for w := 0; w < windows; w++ {
			if c.Fault(w, 0) != faults.FaultNone {
				n++
			}
		}
		if n >= 1 && n <= maxFaulted {
			return seed
		}
	}
	t.Fatalf("no chaos seed yields 1..%d faulted of %d windows", maxFaulted, windows)
	return 0
}

// TestChaosContainment is the acceptance-criteria test: panics, stalls, and
// NaN poisoning injected into ≤20% of windows must be fully contained — the
// placement is still checker-legal and bit-identical to the fault-free
// windowed run at every worker count, and no goroutine leaks.
func TestChaosContainment(t *testing.T) {
	for _, tc := range trioCases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			t.Parallel()
			clean := genDesign(t, tc.bench, tc.scale)
			if _, err := Legalize(context.Background(), clean, baseOptions(1)); err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			wantHash := regress.PositionHash(clean)

			p, err := Partition(genDesign(t, tc.bench, tc.scale), 4, 2)
			if err != nil {
				t.Fatalf("Partition: %v", err)
			}
			windows := len(p.Bands)
			maxFaulted := windows / 5
			if maxFaulted < 1 {
				maxFaulted = 1
			}
			template := chaosSpec{PanicFrac: 0.07, StallFrac: 0.07, NaNFrac: 0.07}
			seed := chaosSeed(t, template, windows, maxFaulted)

			for _, workers := range []int{1, 2, 8} {
				check := leakCheck(t)
				chaos := template.with(seed)
				d := genDesign(t, tc.bench, tc.scale)
				opts := baseOptions(workers)
				opts.Chaos = chaos
				opts.WindowTimeout = 2 * time.Second // bound injected stalls
				opts.RetryBackoff = time.Millisecond
				st, err := Legalize(context.Background(), d, opts)
				if err != nil {
					t.Fatalf("workers=%d: chaotic run failed: %v", workers, err)
				}
				if chaos.Injected.Load() == 0 {
					t.Fatalf("workers=%d: chaos harness injected nothing", workers)
				}
				if st.Retries == 0 {
					t.Fatalf("workers=%d: expected supervised retries, got none (stats %+v)", workers, st)
				}
				if st.Degraded != 0 {
					t.Fatalf("workers=%d: transient faults must not degrade windows (stats %+v)", workers, st)
				}
				if rep := design.CheckLegal(d); !rep.Legal() {
					t.Fatalf("workers=%d: illegal placement under chaos: %s", workers, rep.String())
				}
				if h := regress.PositionHash(d); h != wantHash {
					t.Fatalf("workers=%d: chaotic hash %s != fault-free hash %s", workers, h, wantHash)
				}
				check()
			}
		})
	}
}

// TestPersistentFaultDegradesWindow drives one window into permanent panic:
// every attempt fails, the supervisor degrades that window to the greedy
// fallback, and the job still commits a checker-legal placement.
func TestPersistentFaultDegradesWindow(t *testing.T) {
	check := leakCheck(t)
	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	template := chaosSpec{PanicFrac: 0.2, MaxAttempt: hedgeAttempt * 2}
	seed := chaosSeed(t, template, len(p.Bands), 1)

	opts := baseOptions(2)
	opts.Chaos = template.with(seed)
	opts.RetryBackoff = time.Millisecond
	st, err := Legalize(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("Legalize: %v", err)
	}
	if st.Degraded == 0 {
		t.Fatalf("expected a degraded window, stats %+v", st)
	}
	if st.Panics == 0 {
		t.Fatalf("expected recovered panics, stats %+v", st)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("degraded run produced illegal placement: %s", rep.String())
	}
	check()
}

// TestHedgeWinsOverStalledPrimary stalls a window's primary attempts
// persistently; the straggler hedge (which the chaos harness never faults)
// must win, commit the clean result, and promptly cancel the stalled
// primary — with the same hash as a fault-free run and no leaked goroutines.
func TestHedgeWinsOverStalledPrimary(t *testing.T) {
	check := leakCheck(t)
	clean := genDesign(t, "fft_2", 0.004)
	if _, err := Legalize(context.Background(), clean, baseOptions(2)); err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	wantHash := regress.PositionHash(clean)

	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	// Persistent stall on primary attempts only (MaxAttempt ≪ hedgeAttempt).
	template := chaosSpec{StallFrac: 0.2, MaxAttempt: 64}
	seed := chaosSeed(t, template, len(p.Bands), 1)

	opts := baseOptions(4)
	opts.Chaos = template.with(seed)
	opts.WindowTimeout = 30 * time.Second
	opts.MaxRetries = -1 // stalled primaries burn the whole deadline; rely on the hedge
	opts.HedgeQuantile = 0.5
	t0 := time.Now()
	st, err := Legalize(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("Legalize: %v", err)
	}
	if st.HedgesIssued == 0 || st.HedgesWon == 0 {
		t.Fatalf("expected winning hedges, stats %+v", st)
	}
	if elapsed := time.Since(t0); elapsed > 25*time.Second {
		t.Fatalf("hedge did not preempt the stalled primary (took %v)", elapsed)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("hedged run produced illegal placement: %s", rep.String())
	}
	if h := regress.PositionHash(d); h != wantHash {
		t.Fatalf("hedged hash %s != fault-free hash %s", h, wantHash)
	}
	check()
}

// TestHedgeCancelsStalledLoser pins loser cancellation: when the hedge wins,
// the commit path must cancel the stalled primary attempt immediately — not
// leave it burning its per-attempt deadline. The window timeout here is far
// beyond what the test tolerates, so the run can only finish on time if the
// commit-side cancel (not the deadline) unblocks the stalled loser; the leak
// check then proves the loser's goroutine fully exited.
func TestHedgeCancelsStalledLoser(t *testing.T) {
	check := leakCheck(t)
	clean := genDesign(t, "fft_2", 0.004)
	if _, err := Legalize(context.Background(), clean, baseOptions(2)); err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	wantHash := regress.PositionHash(clean)

	d := genDesign(t, "fft_2", 0.004)
	p, err := Partition(d, 4, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	template := chaosSpec{StallFrac: 0.2, MaxAttempt: 64}
	seed := chaosSeed(t, template, len(p.Bands), 1)

	opts := baseOptions(4)
	opts.Chaos = template.with(seed)
	opts.WindowTimeout = 10 * time.Minute // the deadline must never be the unblocker
	opts.MaxRetries = -1
	opts.HedgeQuantile = 0.5
	t0 := time.Now()
	st, err := Legalize(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("Legalize: %v", err)
	}
	elapsed := time.Since(t0)
	if st.HedgesWon == 0 {
		t.Fatalf("expected a winning hedge, stats %+v", st)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("stalled loser not canceled at commit: run took %v with a %v window timeout",
			elapsed, opts.WindowTimeout)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("placement illegal: %s", rep.String())
	}
	if h := regress.PositionHash(d); h != wantHash {
		t.Fatalf("hash %s != fault-free hash %s", h, wantHash)
	}
	check()
}
