// Package window decomposes a legalization job into per-row-band windows
// that are solved independently and stitched deterministically, turning the
// window into the unit of fault containment: a panicking, stalling, or
// diverging window is retried, hedged, or degraded without discarding the
// healthy windows, and completed windows can be journaled so a crashed job
// resumes instead of restarting.
//
// The determinism contract matches the rest of the repository: the stitched
// placement is a pure function of the input design and the options — never
// of the worker count, of which attempt of a window happened to win, or of
// how many retries and hedges a chaotic run needed. Every successful attempt
// of a window computes the same placement (attempts differ only in injected
// or environmental failures), and the stitch pass is the deterministic
// Tetris allocator, so the final position hash is bit-identical across
// worker counts and retry histories.
package window

import (
	"hash/fnv"
	"math"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// Band is one horizontal window: a contiguous run of owned rows plus a
// frozen-context margin above and below.
type Band struct {
	// Index is the band's position in Plan.Bands (and its journal key).
	Index int
	// RowLo/RowHi bound the owned rows [RowLo, RowHi): cells assigned to
	// these rows are movable in this window and in no other.
	RowLo, RowHi int
	// SubLo/SubHi bound the sub-design rows [SubLo, SubHi): the owned rows
	// plus the context margin and any overhang of tall owned cells.
	SubLo, SubHi int
	// Owned lists the full-design IDs of the cells this window moves, in
	// ascending ID order.
	Owned []int
}

// Plan is the deterministic decomposition of a design into bands. It also
// pins the pre-solve snapshot every window builds its frozen context from:
// each movable cell at (GX, RowY(assigned row)). Building context from the
// snapshot — never from other windows' results — is what makes each window's
// output independent of solve order, retries, and resume history.
type Plan struct {
	// AssignedRow maps full-design cell ID to its nearest rail-compatible
	// row (-1 for fixed cells).
	AssignedRow []int
	// Owner maps full-design cell ID to the owning band index (-1 for
	// fixed cells).
	Owner []int
	// Bands lists the non-empty windows in ascending row order.
	Bands []Band

	WindowRows  int
	ContextRows int
}

// Partition decomposes the design into bands of windowRows owned rows with
// contextRows of frozen margin. Every movable cell is assigned to exactly
// one band via its nearest rail-compatible row (the same rule AssignRows
// uses); a cell with no compatible row is an ErrInfeasibleRow. Bands that
// own no cells are dropped.
func Partition(d *design.Design, windowRows, contextRows int) (*Plan, error) {
	if windowRows < 1 {
		return nil, mclgerr.Invalidf("window: windowRows %d must be at least 1", windowRows)
	}
	if contextRows < 0 {
		return nil, mclgerr.Invalidf("window: contextRows %d must be non-negative", contextRows)
	}
	p := &Plan{
		AssignedRow: make([]int, len(d.Cells)),
		Owner:       make([]int, len(d.Cells)),
		WindowRows:  windowRows,
		ContextRows: contextRows,
	}
	numBands := (len(d.Rows) + windowRows - 1) / windowRows
	owned := make([][]int, numBands)
	for _, c := range d.Cells {
		if c.Fixed {
			p.AssignedRow[c.ID] = -1
			p.Owner[c.ID] = -1
			continue
		}
		row := d.NearestCorrectRow(c, c.GY)
		if row < 0 {
			return nil, &mclgerr.StageError{
				Stage: "partition",
				Err:   mclgerr.ErrInfeasibleRow,
				Cells: []int{c.ID},
			}
		}
		p.AssignedRow[c.ID] = row
		b := row / windowRows
		p.Owner[c.ID] = b
		owned[b] = append(owned[b], c.ID)
	}
	for b := 0; b < numBands; b++ {
		if len(owned[b]) == 0 {
			continue
		}
		band := Band{
			Index: len(p.Bands),
			RowLo: b * windowRows,
			RowHi: min(len(d.Rows), (b+1)*windowRows),
			Owned: owned[b],
		}
		// The sub-design must cover every owned cell's full span plus the
		// context margin; tall cells near the band top push SubHi up.
		top := band.RowHi
		for _, id := range owned[b] {
			if t := p.AssignedRow[id] + d.Cells[id].RowSpan; t > top {
				top = t
			}
		}
		band.SubLo = max(0, band.RowLo-contextRows)
		band.SubHi = min(len(d.Rows), top+contextRows)
		p.Bands = append(p.Bands, band)
	}
	// Re-map owners from raw band slots to compacted Plan.Bands indices.
	slot2idx := make(map[int]int, len(p.Bands))
	for i, b := range p.Bands {
		slot2idx[b.RowLo/windowRows] = i
	}
	for id, b := range p.Owner {
		if b >= 0 {
			p.Owner[id] = slot2idx[b]
		}
	}
	return p, nil
}

// Sig content-addresses the plan: a FNV-1a hash of everything a window
// result depends on — core geometry, row structure, every cell's shape and
// global position, fixed placements, the window parameters, and the solver
// constants. Two jobs with equal Sig produce bit-identical window results,
// which is what licenses replaying journaled windows across a daemon
// restart.
func Sig(d *design.Design, windowRows, contextRows int, base core.Options) uint64 {
	h := fnv.New64a()
	f := func(v float64) {
		bits := math.Float64bits(v)
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	i := func(v int) { f(float64(v)) }
	i(windowRows)
	i(contextRows)
	f(base.Lambda)
	f(base.Beta)
	f(base.Theta)
	f(base.Gamma)
	f(base.Eps)
	i(base.MaxIter)
	f(d.RowHeight)
	f(d.SiteW)
	f(d.Core.Lo.X)
	f(d.Core.Lo.Y)
	f(d.Core.Hi.X)
	f(d.Core.Hi.Y)
	i(len(d.Rows))
	for _, r := range d.Rows {
		f(r.Y)
		f(r.OriginX)
		f(r.SiteW)
		i(r.NumSites)
		i(int(r.Rail))
	}
	i(len(d.Cells))
	for _, c := range d.Cells {
		f(c.W)
		f(c.H)
		i(c.RowSpan)
		i(int(c.BottomRail))
		f(c.GX)
		f(c.GY)
		if c.Fixed {
			i(1)
			f(c.X)
			f(c.Y)
		} else {
			i(0)
		}
	}
	return h.Sum64()
}
