package window

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"mclg/internal/design"
	"mclg/internal/exact"
	"mclg/internal/mclgerr"
)

// WindowGap is one refined window's measured optimality outcome.
type WindowGap struct {
	Window int     `json:"window"`
	Cells  int     `json:"cells"`
	Gap    float64 `json:"gap"` // normalized (cost − bound)/cost, 0 = proven optimal
	// Proven reports the branch-and-bound exhausted the window's search
	// space within its node budget, so the gap is exact, not truncated.
	Proven   bool `json:"proven"`
	Improved bool `json:"improved"` // the refinement strictly beat the committed placement
	// MaxDispBefore/After are the window's worst cell displacement in sites
	// (Manhattan), before and after refinement.
	MaxDispBefore float64 `json:"max_disp_before"`
	MaxDispAfter  float64 `json:"max_disp_after"`
}

// ExactStats reports the exact refinement post-pass.
type ExactStats struct {
	Selected int         `json:"selected"` // windows re-solved exactly
	Improved int         `json:"improved"` // windows whose placement strictly improved
	Proven   int         `json:"proven"`   // windows proven optimal (Gap == 0 and exhausted)
	Skipped  int         `json:"skipped"`  // selected windows the solver could not finish
	MaxGap   float64     `json:"max_gap"`
	Gaps     []WindowGap `json:"gaps,omitempty"`
}

// buildSubCommitted materializes band b for post-stitch refinement: unlike
// buildSub, which freezes foreign cells at the plan snapshot, every cell is
// taken at its committed position — the stitched placement is what the
// refinement must coexist with. Cells in movable stay movable (current
// position as the incumbent seed, GX/GY as the targets); everything else
// overlapping the band is frozen.
func buildSubCommitted(d *design.Design, b *Band, movable map[int]bool) (*design.Design, []int) {
	sub := &design.Design{
		Name:      fmt.Sprintf("%s.x%d", d.Name, b.Index),
		Core:      d.Core,
		RowHeight: d.RowHeight,
		SiteW:     d.SiteW,
	}
	sub.Core.Lo.Y = d.RowY(b.SubLo)
	sub.Core.Hi.Y = d.RowY(b.SubHi)
	sub.Rows = make([]design.Row, 0, b.SubHi-b.SubLo)
	for r := b.SubLo; r < b.SubHi; r++ {
		row := d.Rows[r]
		row.Index = r - b.SubLo
		sub.Rows = append(sub.Rows, row)
	}

	yLo, yHi := sub.Core.Lo.Y, sub.Core.Hi.Y
	var idx []int
	for _, c := range d.Cells {
		if movable[c.ID] {
			cc := *c
			cc.ID = len(sub.Cells)
			cc.Fixed = false
			sub.Cells = append(sub.Cells, &cc)
			idx = append(idx, c.ID)
			continue
		}
		if c.Y >= yHi || c.Y+c.H <= yLo {
			continue
		}
		cc := *c
		cc.ID = len(sub.Cells)
		cc.GX, cc.GY = cc.X, cc.Y
		cc.Fixed = true
		sub.Cells = append(sub.Cells, &cc)
		idx = append(idx, -1)
	}
	return sub, idx
}

// maxDispSites returns the worst Manhattan displacement, in sites, over the
// given cells of d.
func maxDispSites(d *design.Design, ids []int) float64 {
	worst := 0.0
	for _, id := range ids {
		c := d.Cells[id]
		if disp := (math.Abs(c.X-c.GX) + math.Abs(c.Y-c.GY)) / d.SiteW; disp > worst {
			worst = disp
		}
	}
	return worst
}

// refineExact is the post-stitch exact pass: rank windows by their worst
// committed displacement, re-solve the worst K with the branch-and-bound
// legalizer, and commit a window's solution only when it strictly improves
// the window cost and the whole design still passes the legality checker.
//
// The pass is serial in a deterministic window order, the solver is bounded
// by a node budget rather than wall-clock time, and nothing here depends on
// the worker count — the refined placement is bit-identical for any number
// of workers, preserving the repository's determinism invariant.
func refineExact(ctx context.Context, d *design.Design, plan *Plan, opts Options) (*ExactStats, error) {
	st := &ExactStats{}
	type ranked struct {
		band *Band
		disp float64
	}
	var cands []ranked
	for i := range plan.Bands {
		b := &plan.Bands[i]
		if len(b.Owned) == 0 {
			continue
		}
		cands = append(cands, ranked{b, maxDispSites(d, b.Owned)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].disp != cands[j].disp {
			return cands[i].disp > cands[j].disp
		}
		return cands[i].band.Index < cands[j].band.Index
	})
	if len(cands) > opts.ExactWindows {
		cands = cands[:opts.ExactWindows]
	}

	for _, cand := range cands {
		if err := mclgerr.FromContext(ctx); err != nil {
			return nil, err
		}
		b := cand.band
		// Windows can own more cells than the solver scales to: re-solve the
		// worst-displaced ExactMaxCells cells jointly and freeze the rest —
		// the displacement spikes are exactly the cells worth moving.
		sel := append([]int(nil), b.Owned...)
		sort.Slice(sel, func(i, j int) bool {
			a, b := d.Cells[sel[i]], d.Cells[sel[j]]
			if da, db := a.DisplacementSq(), b.DisplacementSq(); da != db {
				return da > db
			}
			return a.ID < b.ID
		})
		if len(sel) > opts.ExactMaxCells {
			sel = sel[:opts.ExactMaxCells]
		}
		movable := make(map[int]bool, len(sel))
		before := 0.0
		for _, id := range sel {
			movable[id] = true
			before += d.Cells[id].DisplacementSq()
		}
		sub, idx := buildSubCommitted(d, b, movable)
		sol, err := exact.Solve(ctx, sub, exact.Options{
			MaxCells:   opts.ExactMaxCells,
			NodeBudget: opts.ExactNodeBudget,
		})
		if err != nil {
			if errors.Is(err, mclgerr.ErrCanceled) {
				return nil, err
			}
			st.Selected++
			st.Skipped++
			continue
		}
		st.Selected++

		wg := WindowGap{
			Window:        b.Index,
			Cells:         len(sel),
			Gap:           sol.Gap,
			Proven:        sol.Proven,
			MaxDispBefore: cand.disp,
			MaxDispAfter:  cand.disp,
		}
		if sol.Cost < before-1e-9 {
			// Candidate improvement: re-check on the whole design before
			// committing — the solver verified the window, not the chip.
			work := d.Clone()
			for i, fullID := range idx {
				if fullID < 0 {
					continue
				}
				c := work.Cells[fullID]
				c.X, c.Y, c.Flipped = sol.X[i], sol.Y[i], sol.Flipped[i]
			}
			if design.CheckLegal(work).Legal() {
				for i, c := range work.Cells {
					dc := d.Cells[i]
					dc.X, dc.Y, dc.Flipped = c.X, c.Y, c.Flipped
				}
				wg.Improved = true
				wg.MaxDispAfter = maxDispSites(d, b.Owned)
				st.Improved++
			}
		}
		if wg.Proven && wg.Gap == 0 {
			st.Proven++
		}
		if wg.Gap > st.MaxGap {
			st.MaxGap = wg.Gap
		}
		st.Gaps = append(st.Gaps, wg)
	}
	return st, nil
}
