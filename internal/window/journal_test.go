package window

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"mclg/internal/design"
	"mclg/internal/regress"
)

// journaledRun solves the benchmark with a FileJournal at path and returns
// the run stats and final hash.
func journaledRun(t *testing.T, d *design.Design, path string, sig uint64, windows int) (*Stats, string) {
	t.Helper()
	j, err := OpenFileJournal(path, sig, windows)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	defer j.Close()
	opts := baseOptions(2)
	opts.Journal = j
	st, err := Legalize(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("Legalize: %v", err)
	}
	return st, regress.PositionHash(d)
}

// TestJournalResume simulates a crash mid-job: a journal holding only the
// first half of the windows must be replayed — the resumed run re-solves
// only the incomplete windows (verified by the solve counters) and lands on
// the same placement hash as the uninterrupted run.
func TestJournalResume(t *testing.T) {
	d := genDesign(t, "fft_2", 0.004)
	opts := baseOptions(2)
	sig := Sig(d, opts.WindowRows, opts.ContextRows, opts.Cascade.Base)
	p, err := Partition(d, opts.WindowRows, opts.ContextRows)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	windows := len(p.Bands)
	if windows < 2 {
		t.Fatalf("need multiple windows, got %d", windows)
	}

	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	st1, hash1 := journaledRun(t, d, full, sig, windows)
	if st1.Resumed != 0 || st1.Solved != windows {
		t.Fatalf("fresh run stats %+v, want all solved", st1)
	}

	// Truncate the completed journal to header + half the records — the
	// state a SIGKILL halfway through the job would have left behind.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	keep := 1 + windows/2 // header + half the windows
	partial := filepath.Join(dir, "partial.wal")
	if err := os.WriteFile(partial, bytes.Join(lines[:keep], nil), 0o644); err != nil {
		t.Fatalf("write partial journal: %v", err)
	}

	d2 := genDesign(t, "fft_2", 0.004)
	j, err := OpenFileJournal(partial, sig, windows)
	if err != nil {
		t.Fatalf("reopen partial journal: %v", err)
	}
	if j.Resumed() != windows/2 {
		t.Fatalf("Resumed() = %d, want %d", j.Resumed(), windows/2)
	}
	opts2 := baseOptions(2)
	opts2.Journal = j
	st2, err := Legalize(context.Background(), d2, opts2)
	if err != nil {
		t.Fatalf("resumed Legalize: %v", err)
	}
	j.Close()
	if st2.Resumed != windows/2 {
		t.Fatalf("resumed run replayed %d windows, want %d (stats %+v)", st2.Resumed, windows/2, st2)
	}
	if st2.Solved != windows-windows/2 {
		t.Fatalf("resumed run solved %d windows, want %d (stats %+v)", st2.Solved, windows-windows/2, st2)
	}
	if h := regress.PositionHash(d2); h != hash1 {
		t.Fatalf("resumed hash %s != uninterrupted hash %s", h, hash1)
	}
	if rep := design.CheckLegal(d2); !rep.Legal() {
		t.Fatalf("resumed placement illegal: %s", rep.String())
	}
}

// TestJournalTornTail verifies a crash mid-append is harmless: the torn
// final line is detected by checksum, dropped on replay, and overwritten by
// the next Record.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	j, err := OpenFileJournal(path, 42, 3)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	cells0 := []CellPos{{ID: 1, X: 2, Y: 3}, {ID: 4, X: 5, Y: 6, Flipped: true}}
	if err := j.Record(0, cells0); err != nil {
		t.Fatalf("Record: %v", err)
	}
	j.Close()

	// Simulate a torn append: half a record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteString(`{"w":1,"cells":[{"id":9,`)
	f.Close()

	j2, err := OpenFileJournal(path, 42, 3)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if j2.Resumed() != 1 {
		t.Fatalf("Resumed() = %d, want 1 (torn record must be dropped)", j2.Resumed())
	}
	got, ok := j2.Lookup(0)
	if !ok || len(got) != 2 || got[0] != cells0[0] || got[1] != cells0[1] {
		t.Fatalf("Lookup(0) = %v, %v; want %v", got, ok, cells0)
	}
	if _, ok := j2.Lookup(1); ok {
		t.Fatalf("torn record for window 1 must not replay")
	}
	// The tail was truncated, so a fresh record lands on a clean line.
	cells1 := []CellPos{{ID: 7, X: 8, Y: 9}}
	if err := j2.Record(1, cells1); err != nil {
		t.Fatalf("Record after torn tail: %v", err)
	}
	j3, err := OpenFileJournal(path, 42, 3)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer j3.Close()
	if j3.Resumed() != 2 {
		t.Fatalf("Resumed() = %d after repair, want 2", j3.Resumed())
	}
}

// TestJournalSigMismatch verifies a journal written under a different plan
// signature (changed input or options) is invalidated, not replayed.
func TestJournalSigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sig.wal")
	j, err := OpenFileJournal(path, 1, 2)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	if err := j.Record(0, []CellPos{{ID: 0, X: 1, Y: 2}}); err != nil {
		t.Fatalf("Record: %v", err)
	}
	j.Close()

	j2, err := OpenFileJournal(path, 2, 2)
	if err != nil {
		t.Fatalf("reopen with new sig: %v", err)
	}
	defer j2.Close()
	if j2.Resumed() != 0 {
		t.Fatalf("Resumed() = %d under a different signature, want 0", j2.Resumed())
	}
}

// TestJournalTaggedResume pins the header-tag contract OpenFileJournalTagged
// adds for delta-log-scoped journals (the ECO path tags each re-solve with
// the delta batch it serves): a journal resumes only under the exact tag it
// was written with — a different tag, or the untagged open, resets it.
func TestJournalTaggedResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tagged.wal")
	j, err := OpenFileJournalTagged(path, 7, "eco:3f9a.b4", 2)
	if err != nil {
		t.Fatalf("OpenFileJournalTagged: %v", err)
	}
	cells := []CellPos{{ID: 2, X: 10, Y: 20}}
	if err := j.Record(0, cells); err != nil {
		t.Fatalf("Record: %v", err)
	}
	j.Close()

	// Same tag: the record replays.
	j2, err := OpenFileJournalTagged(path, 7, "eco:3f9a.b4", 2)
	if err != nil {
		t.Fatalf("reopen same tag: %v", err)
	}
	if j2.Resumed() != 1 {
		t.Fatalf("Resumed() = %d under matching tag, want 1", j2.Resumed())
	}
	if got, ok := j2.Lookup(0); !ok || len(got) != 1 || got[0] != cells[0] {
		t.Fatalf("Lookup(0) = %v, %v; want %v", got, ok, cells)
	}
	j2.Close()

	// A different tag — e.g. the journal belongs to another delta batch —
	// invalidates the file even though sig and window count match.
	j3, err := OpenFileJournalTagged(path, 7, "eco:3f9a.b5", 2)
	if err != nil {
		t.Fatalf("reopen new tag: %v", err)
	}
	if j3.Resumed() != 0 {
		t.Fatalf("Resumed() = %d under a different tag, want 0", j3.Resumed())
	}
	if err := j3.Record(1, cells); err != nil {
		t.Fatalf("Record under new tag: %v", err)
	}
	j3.Close()

	// The untagged open must not resurrect a tagged journal either.
	j4, err := OpenFileJournal(path, 7, 2)
	if err != nil {
		t.Fatalf("untagged reopen: %v", err)
	}
	defer j4.Close()
	if j4.Resumed() != 0 {
		t.Fatalf("Resumed() = %d from untagged open of tagged journal, want 0", j4.Resumed())
	}
}

// TestSigSensitivity pins what the content address covers: geometry, global
// positions, and the window/solver parameters.
func TestSigSensitivity(t *testing.T) {
	d := genDesign(t, "fft_2", 0.004)
	opts := baseOptions(1)
	base := Sig(d, opts.WindowRows, opts.ContextRows, opts.Cascade.Base)
	if got := Sig(d, opts.WindowRows, opts.ContextRows, opts.Cascade.Base); got != base {
		t.Fatalf("Sig not deterministic: %x vs %x", got, base)
	}
	if got := Sig(d, opts.WindowRows+1, opts.ContextRows, opts.Cascade.Base); got == base {
		t.Fatalf("Sig ignores windowRows")
	}
	d2 := genDesign(t, "fft_2", 0.004)
	d2.Cells[0].GX += 1
	if got := Sig(d2, opts.WindowRows, opts.ContextRows, opts.Cascade.Base); got == base {
		t.Fatalf("Sig ignores global positions")
	}
	// Workers must NOT change the signature: the placement is
	// worker-count-independent, so a journal from a 1-worker run replays
	// under 8 workers.
	o8 := opts.Cascade.Base
	o8.Workers = 8
	if got := Sig(d, opts.WindowRows, opts.ContextRows, o8); got != base {
		t.Fatalf("Sig must be worker-count-independent")
	}
}
