package window

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/faults"
	"mclg/internal/mclgerr"
	"mclg/internal/par"
)

// hedgeAttempt is the attempt index hedge solves run under. It is far past
// any retry budget so the chaos harness (which gates on attempt < MaxAttempt)
// never sabotages a hedge: the hedge is the clean second opinion.
const hedgeAttempt = 1 << 20

// Default partition parameters, exported so callers that need the resolved
// values up front (e.g. to compute Sig for a journal before Legalize runs)
// agree with Options.withDefaults.
const (
	DefaultWindowRows  = 16
	DefaultContextRows = 2
)

// Options configures windowed legalization.
type Options struct {
	// Cascade configures the per-window resilient cascade (its Base carries
	// the solver options and the Workers knob, which also bounds how many
	// windows solve concurrently).
	Cascade core.ResilientOptions

	// WindowRows is the number of owned rows per band; 0 means 16.
	WindowRows int
	// ContextRows is the frozen-context margin in rows; 0 means 2.
	ContextRows int

	// WindowTimeout is the per-attempt deadline; 0 means 2 minutes,
	// negative disables the deadline.
	WindowTimeout time.Duration
	// MaxRetries is how many supervised retries follow a failed first
	// attempt; 0 means 2, negative disables retries.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between attempts
	// (base, 2×base, 4×base, …); 0 means 5ms.
	RetryBackoff time.Duration

	// HedgeQuantile, in (0,1], enables straggler hedging: once that
	// fraction of windows has completed, every still-running window is
	// re-issued once on a spare worker and the first verified-legal result
	// wins. 0 disables hedging. Hedged and primary solves compute the same
	// deterministic result, so who wins never changes the placement.
	HedgeQuantile float64

	// Chaos, when non-nil, injects deterministic window-granular faults
	// (panics, stalls, NaN poisoning) into solve attempts. Test-only.
	Chaos *faults.WindowChaos

	// SolveWindow, when non-nil, replaces the local per-window solve: a
	// cluster coordinator sets it to ship window w's sub-design to a remote
	// worker. The supervisor's retry, backoff, hedging, and degradation
	// machinery apply unchanged — attempt is the retry index (HedgeAttempt
	// for hedge re-issues, so the hook can route hedges to a different
	// worker), and when every attempt fails the window still degrades to the
	// local greedy fallback. The hook MUST be result-deterministic: every
	// successful call for the same (d, plan, w) returns the same cells,
	// which is what keeps the stitched placement independent of routing,
	// retries, and hedge outcomes. Chaos injection is bypassed for hooked
	// solves (chaos sabotages local attempts only).
	SolveWindow func(ctx context.Context, d *design.Design, p *Plan, w, attempt int) (*Result, error)

	// Journal, when non-nil, records every verified window result and
	// replays previously recorded windows instead of re-solving them.
	Journal Journal

	// ExactWindows, when positive, enables the exact refinement post-pass:
	// after stitch, the ExactWindows windows with the worst committed max
	// displacement are re-solved with the branch-and-bound legalizer
	// (internal/exact) and each window's measured optimality gap is recorded
	// in Stats.Exact. Only checker-verified strict improvements commit. The
	// pass is serial and node-budgeted, so the final placement stays
	// bit-identical for any worker count.
	ExactWindows int
	// ExactMaxCells caps how many cells are re-solved jointly per selected
	// window; in windows owning more, the worst-displaced ExactMaxCells
	// cells move and the rest freeze. 0 means 40.
	ExactMaxCells int
	// ExactNodeBudget bounds the branch-and-bound nodes per window — the
	// deterministic analogue of a deadline. 0 means 4000.
	ExactNodeBudget int
}

func (o Options) withDefaults() Options {
	if o.WindowRows == 0 {
		o.WindowRows = DefaultWindowRows
	}
	if o.ContextRows == 0 {
		o.ContextRows = DefaultContextRows
	}
	if o.WindowTimeout == 0 {
		o.WindowTimeout = 2 * time.Minute
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.ExactMaxCells == 0 {
		o.ExactMaxCells = 40
	}
	if o.ExactNodeBudget == 0 {
		o.ExactNodeBudget = 4000
	}
	return o
}

// Stats reports one windowed run. Solved + Resumed == Windows on success;
// Resumed counts journal replays, Solved counts windows solved this run.
type Stats struct {
	Windows      int
	Solved       int
	Resumed      int
	Retries      int
	Panics       int
	HedgesIssued int
	HedgesWon    int
	Degraded     int
	// Exact reports the exact refinement post-pass; nil unless
	// Options.ExactWindows enabled it.
	Exact *ExactStats
}

// supervisor drives one windowed run.
type supervisor struct {
	d    *design.Design
	plan *Plan
	opts Options
	ctx  context.Context // the job context; hedges are bounded by it

	mu        sync.Mutex
	stats     Stats
	completed int
	hedging   bool // threshold crossed; new commits no longer re-check

	hedgeWG sync.WaitGroup
	states  []*windowState
}

type windowState struct {
	mu        sync.Mutex
	committed *Result
	started   bool
	hedged    bool
	hedgeDone chan struct{} // closed when the hedge attempt finishes
	cancels   []context.CancelFunc
}

// Legalize partitions d into windows, solves every window under supervision
// (retry with exponential backoff, straggler hedging, degradation to the
// greedy rung), stitches the results with the deterministic Tetris pass, and
// commits the placement to d only after the whole-design legality checker
// passes. The stitched placement is bit-identical for any worker count and
// any retry/hedge/resume history.
func Legalize(ctx context.Context, d *design.Design, opts Options) (*Stats, error) {
	opts = opts.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, mclgerr.Stage("validate", err)
	}
	plan, err := Partition(d, opts.WindowRows, opts.ContextRows)
	if err != nil {
		return nil, err
	}
	s := &supervisor{d: d, plan: plan, opts: opts, ctx: ctx}
	s.stats.Windows = len(plan.Bands)
	s.states = make([]*windowState, len(plan.Bands))
	for i := range s.states {
		s.states[i] = &windowState{hedgeDone: make(chan struct{})}
	}

	// Replay journaled windows before solving anything: a resumed window is
	// a commit without a solve.
	if opts.Journal != nil {
		for i := range plan.Bands {
			if cells, ok := opts.Journal.Lookup(i); ok {
				s.states[i].committed = &Result{Window: i, Cells: cells}
				s.mu.Lock()
				s.completed++
				s.stats.Resumed++
				s.mu.Unlock()
			}
		}
	}

	workers := par.Resolve(opts.Cascade.Base.Workers)
	var pending []int
	for i := range plan.Bands {
		if s.states[i].committed == nil {
			pending = append(pending, i)
		}
	}
	if len(pending) > 0 {
		var wg sync.WaitGroup
		var next int
		var nmu sync.Mutex
		n := workers
		if n > len(pending) {
			n = len(pending)
		}
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					nmu.Lock()
					k := next
					next++
					nmu.Unlock()
					if k >= len(pending) {
						return
					}
					s.runPrimary(ctx, pending[k])
				}
			}()
		}
		wg.Wait()
	}
	// Losing hedges are canceled at commit time, but their goroutines must
	// fully exit before the run returns: no goroutine outlives Legalize.
	s.hedgeWG.Wait()

	if err := mclgerr.FromContext(ctx); err != nil {
		return nil, err
	}
	results := make([]*Result, len(plan.Bands))
	for i, st := range s.states {
		if st.committed == nil {
			return nil, mclgerr.Stage("window", mclgerr.ErrUnplacedCells)
		}
		results[i] = st.committed
	}
	if err := stitch(ctx, d, results, opts.Cascade.Base.Workers); err != nil {
		return nil, err
	}
	if opts.ExactWindows > 0 {
		ex, err := refineExact(ctx, d, plan, opts)
		if err != nil {
			return nil, err
		}
		s.stats.Exact = ex
	}
	st := s.stats
	return &st, nil
}

// attempt runs one solve attempt of window wi with panic containment, the
// per-attempt deadline, and chaos injection.
func (s *supervisor) attempt(ctx context.Context, wi, attemptIdx int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, mclgerr.Stage("window", mclgerr.Panicked(r))
		}
	}()
	actx := ctx
	if s.opts.WindowTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, s.opts.WindowTimeout)
		defer cancel()
	}
	s.states[wi].addCancelContext(&actx)
	if s.opts.SolveWindow != nil {
		return s.opts.SolveWindow(actx, s.d, s.plan, wi, attemptIdx)
	}
	b := &s.plan.Bands[wi]
	sub, idx := buildSub(s.d, s.plan, b)
	if s.opts.Chaos != nil {
		if err := s.opts.Chaos.Inject(actx, wi, attemptIdx, func() { poisonSub(sub) }); err != nil {
			return nil, mclgerr.Canceled(err)
		}
	}
	return solveSub(actx, sub, idx, b, s.opts.Cascade)
}

// addCancelContext wraps *pctx with a cancel the commit path can fire, so a
// window's losing attempts (primary vs hedge) stop promptly once a result is
// committed.
func (st *windowState) addCancelContext(pctx *context.Context) {
	c, cancel := context.WithCancel(*pctx)
	*pctx = c
	st.mu.Lock()
	if st.committed != nil {
		cancel()
	} else {
		st.cancels = append(st.cancels, cancel)
	}
	st.mu.Unlock()
}

// runPrimary is the supervised solve of one window: bounded retries with
// exponential backoff, then (if a hedge is in flight) deferring to the
// hedge, then degradation. Degradation is reached only when every attempt —
// primary and hedge — has failed, so whether a run degrades is deterministic
// even though attempt scheduling is not.
func (s *supervisor) runPrimary(ctx context.Context, wi int) {
	st := s.states[wi]
	st.mu.Lock()
	st.started = true
	launchHedge := s.hedgingActive() && !st.hedged && st.committed == nil
	if launchHedge {
		st.hedged = true
	}
	st.mu.Unlock()
	if launchHedge {
		// The hedge window opened before this straggler even started
		// (possible when the queue is long); run the hedge alongside.
		s.hedgeWG.Add(1)
		go s.runHedge(ctx, wi)
	} else {
		defer st.closeHedgeIfUnlaunched()
	}

	attempts := 1 + s.opts.MaxRetries
	for a := 0; a < attempts; a++ {
		if st.isCommitted() || ctx.Err() != nil {
			return
		}
		if a > 0 {
			s.addRetry()
			backoff := time.Duration(float64(s.opts.RetryBackoff) * math.Pow(2, float64(a-1)))
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
		}
		res, err := s.attempt(ctx, wi, a)
		if err == nil {
			s.commit(wi, res, false)
			return
		}
		if errors.Is(err, mclgerr.ErrPanic) {
			s.addPanic()
		}
		if ctx.Err() != nil {
			return
		}
	}

	// Retries exhausted. If a hedge is racing, its clean result is still
	// the preferred outcome — wait for it before degrading.
	if st.hedgeLaunched() {
		select {
		case <-st.hedgeDone:
		case <-ctx.Done():
			return
		}
		if st.isCommitted() {
			return
		}
	}
	if ctx.Err() != nil {
		return
	}
	s.commit(wi, degradeSub(ctx, s.d, s.plan, &s.plan.Bands[wi]), false)
}

// runHedge runs the clean re-issue of a straggling window. First verified
// result (hedge or primary) wins; both compute identical placements.
func (s *supervisor) runHedge(ctx context.Context, wi int) {
	st := s.states[wi]
	defer s.hedgeWG.Done()
	defer close(st.hedgeDone)
	s.addHedgeIssued()
	if st.isCommitted() || ctx.Err() != nil {
		return
	}
	res, err := s.attempt(ctx, wi, hedgeAttempt)
	if err != nil {
		return
	}
	s.commit(wi, res, true)
}

// commit records the first verified result for a window, cancels the
// window's other in-flight attempts, journals the result, and — when the
// completion count crosses the hedge threshold — launches hedges for every
// straggler still in flight.
func (s *supervisor) commit(wi int, res *Result, fromHedge bool) {
	st := s.states[wi]
	st.mu.Lock()
	if st.committed != nil {
		st.mu.Unlock()
		return
	}
	st.committed = res
	cancels := st.cancels
	st.cancels = nil
	st.mu.Unlock()
	for _, c := range cancels {
		c()
	}

	if s.opts.Journal != nil && !res.Degraded {
		// Journal errors are non-fatal: the journal is an optimization for
		// restart, never a correctness dependency.
		_ = s.opts.Journal.Record(wi, res.Cells)
	}

	s.mu.Lock()
	s.completed++
	s.stats.Solved++
	if res.Degraded {
		s.stats.Degraded++
	}
	if fromHedge {
		s.stats.HedgesWon++
	}
	crossed := !s.hedging && s.opts.HedgeQuantile > 0 &&
		float64(s.completed) >= s.opts.HedgeQuantile*float64(s.stats.Windows)
	if crossed {
		s.hedging = true
	}
	s.mu.Unlock()

	if crossed {
		for i, other := range s.states {
			other.mu.Lock()
			launch := other.started && other.committed == nil && !other.hedged
			if launch {
				other.hedged = true
			}
			other.mu.Unlock()
			if launch {
				s.hedgeWG.Add(1)
				go s.runHedge(s.ctx, i)
			}
		}
	}
}

func (s *supervisor) hedgingActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hedging
}

func (s *supervisor) addRetry()       { s.mu.Lock(); s.stats.Retries++; s.mu.Unlock() }
func (s *supervisor) addPanic()       { s.mu.Lock(); s.stats.Panics++; s.mu.Unlock() }
func (s *supervisor) addHedgeIssued() { s.mu.Lock(); s.stats.HedgesIssued++; s.mu.Unlock() }

func (st *windowState) isCommitted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.committed != nil
}

func (st *windowState) hedgeLaunched() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hedged
}

// closeHedgeIfUnlaunched closes hedgeDone for windows that never hedged, so
// nothing can block on it after the primary returns.
func (st *windowState) closeHedgeIfUnlaunched() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.hedged {
		st.hedged = true // prevents a late hedge from double-closing
		select {
		case <-st.hedgeDone:
		default:
			close(st.hedgeDone)
		}
	}
}
