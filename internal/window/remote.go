package window

import (
	"context"

	"mclg/internal/core"
	"mclg/internal/design"
)

// This file is the remote-solve surface: the exported handles a cluster
// coordinator needs to ship individual windows to worker daemons while
// reusing the supervised-solve machinery (retry, backoff, hedging,
// degradation, deterministic stitch) unchanged. The determinism contract is
// preserved because a window's sub-design is a pure function of the input
// design and the plan — wherever it is solved, the result is bit-identical.

// HedgeAttempt is the attempt index Options.SolveWindow receives for hedge
// re-issues, so a remote dispatcher can tell hedges from retries and route
// them to a different worker.
const HedgeAttempt = hedgeAttempt

// BuildSub materializes band b of plan p as an independent sub-design. The
// returned idx maps sub cell index to full-design cell ID for owned
// (movable) cells and is -1 for frozen context cells. The sub-design carries
// no nets; window solves are displacement-driven.
func BuildSub(d *design.Design, p *Plan, b *Band) (*design.Design, []int) {
	return buildSub(d, p, b)
}

// SolveSubDesign runs one clean solve of a sub-design built by BuildSub
// (locally or on a remote worker after decoding it from the wire) through
// the resilient cascade and returns the owned-cell positions as the result
// for window windowIndex. The cascade verifies window-level legality before
// committing.
func SolveSubDesign(ctx context.Context, sub *design.Design, idx []int, windowIndex int, cascade core.ResilientOptions) (*Result, error) {
	b := &Band{Index: windowIndex}
	return solveSub(ctx, sub, idx, b, cascade)
}

// Stitch applies every window's owned-cell positions to a working clone of
// d, runs the deterministic Tetris boundary-reconciliation pass, verifies
// whole-design legality, and only then commits the positions to d. results
// must carry one non-nil entry per window.
func Stitch(ctx context.Context, d *design.Design, results []*Result, workers int) error {
	return stitch(ctx, d, results, workers)
}
