package window

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"mclg/internal/baselines/chow"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/tetris"
)

// CellPos is one cell's solved position, keyed by the full-design cell ID.
type CellPos struct {
	ID      int     `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Flipped bool    `json:"f,omitempty"`
}

// Result is one window's committed outcome: the positions of its owned
// cells, plus whether the window had to degrade to the snapshot/greedy
// fallback instead of a verified window-level solve.
type Result struct {
	Window   int
	Cells    []CellPos
	Degraded bool
	// WarmReused reports that the solve reused cached factorizations from a
	// core.WarmState threaded through the cascade's base options (cluster
	// workers pool warm states per window topology). Warm reuse changes
	// iteration counts only, never the returned positions.
	WarmReused bool
}

// buildSub materializes band b as an independent sub-design: the sub rows
// [SubLo, SubHi) at their absolute coordinates, the owned cells movable
// (re-IDed 0..n-1, global positions preserved), and every other cell whose
// snapshot rectangle intersects the band frozen as fixed context. The
// returned idx maps sub cell index to full-design ID for owned cells.
//
// Frozen context always comes from the plan's snapshot (GX, assigned-row Y)
// — never from another window's result — so the sub-design, and therefore
// the window's solution, is identical for every attempt, worker count, and
// resume history.
func buildSub(d *design.Design, p *Plan, b *Band) (*design.Design, []int) {
	sub := &design.Design{
		Name:      fmt.Sprintf("%s.w%d", d.Name, b.Index),
		Core:      d.Core,
		RowHeight: d.RowHeight,
		SiteW:     d.SiteW,
	}
	sub.Core.Lo.Y = d.RowY(b.SubLo)
	sub.Core.Hi.Y = d.RowY(b.SubHi)
	sub.Rows = make([]design.Row, 0, b.SubHi-b.SubLo)
	for r := b.SubLo; r < b.SubHi; r++ {
		row := d.Rows[r]
		row.Index = r - b.SubLo
		sub.Rows = append(sub.Rows, row)
	}

	yLo, yHi := sub.Core.Lo.Y, sub.Core.Hi.Y
	isOwned := make(map[int]bool, len(b.Owned))
	for _, id := range b.Owned {
		isOwned[id] = true
	}
	var idx []int
	for _, c := range d.Cells {
		switch {
		case isOwned[c.ID]:
			cc := *c
			cc.ID = len(sub.Cells)
			cc.X, cc.Y = cc.GX, cc.GY
			cc.Flipped = false
			sub.Cells = append(sub.Cells, &cc)
			idx = append(idx, c.ID)
		default:
			// Snapshot position: fixed cells as placed, foreign movable
			// cells at (GX, assigned-row Y). Freeze it as context if it
			// vertically overlaps the band.
			x, y := c.X, c.Y
			if !c.Fixed {
				x, y = c.GX, d.RowY(p.AssignedRow[c.ID])
			}
			if y >= yHi || y+c.H <= yLo {
				continue
			}
			cc := *c
			cc.ID = len(sub.Cells)
			cc.X, cc.Y = x, y
			cc.GX, cc.GY = x, y
			cc.Fixed = true
			sub.Cells = append(sub.Cells, &cc)
			idx = append(idx, -1)
		}
	}
	return sub, idx
}

// poisonSub corrupts a sub-design clone with a NaN global position — the
// chaos harness's numerical fault. It touches only the attempt's private
// clone, so a retry rebuilds a clean sub-design.
func poisonSub(sub *design.Design) {
	for _, c := range sub.Cells {
		if !c.Fixed {
			c.GX = math.NaN()
			c.X = c.GX
			return
		}
	}
}

// solveSub runs one clean solve of band b through the resilient cascade and
// returns the owned-cell positions. The cascade verifies window-level
// legality before committing, so a returned Result is checker-verified
// within the window.
func solveSub(ctx context.Context, sub *design.Design, idx []int, b *Band, cascade core.ResilientOptions) (*Result, error) {
	rl := core.NewResilient(cascade)
	rs, err := rl.LegalizeContext(ctx, sub)
	if err != nil {
		return nil, err
	}
	res := extract(sub, idx, b, false)
	res.WarmReused = rs.WarmReused
	return res, nil
}

// extract collects the owned cells' positions from a solved sub-design.
func extract(sub *design.Design, idx []int, b *Band, degraded bool) *Result {
	res := &Result{Window: b.Index, Degraded: degraded}
	for i, fullID := range idx {
		if fullID < 0 {
			continue
		}
		c := sub.Cells[i]
		res.Cells = append(res.Cells, CellPos{ID: fullID, X: c.X, Y: c.Y, Flipped: c.Flipped})
	}
	return res
}

// degradeSub is the terminal per-window fallback: the greedy cell-by-cell
// legalizer on a fresh sub-design, and if even that fails, the plan's
// snapshot positions. Either way the window yields a deterministic Degraded
// result instead of failing the job; the stitch pass repairs what it can and
// the final whole-design legality check still gates the commit.
func degradeSub(ctx context.Context, d *design.Design, p *Plan, b *Band) *Result {
	sub, idx := buildSub(d, p, b)
	if err := sub.Validate(); err == nil {
		work := sub.Clone()
		work.ResetToGlobal()
		if err := chow.LegalizeContext(ctx, work); err == nil {
			if rep := design.CheckLegal(work); rep.Legal() {
				return extract(work, idx, b, true)
			}
		}
	}
	res := &Result{Window: b.Index, Degraded: true}
	for _, id := range b.Owned {
		c := d.Cells[id]
		res.Cells = append(res.Cells, CellPos{ID: id, X: c.GX, Y: d.RowY(p.AssignedRow[id])})
	}
	return res
}

// stitch applies every window's owned-cell positions to a working clone,
// runs the deterministic Tetris allocator as the boundary-reconciliation
// pass (repairing any cross-band overlap in the context margins), verifies
// whole-design legality, and only then commits the positions to d.
func stitch(ctx context.Context, d *design.Design, results []*Result, workers int) (err error) {
	// The mclg_stage label separates stitch time from the per-window solves
	// (labeled mmsim-fused/mmsim-residual by the lcp package) in CPU
	// profiles; labels propagate to the allocator's worker goroutines.
	pprof.Do(ctx, pprof.Labels("mclg_stage", "window-stitch"), func(ctx context.Context) {
		err = stitchLabeled(ctx, d, results, workers)
	})
	return err
}

func stitchLabeled(ctx context.Context, d *design.Design, results []*Result, workers int) error {
	work := d.Clone()
	for _, res := range results {
		if res == nil {
			return mclgerr.Invalidf("window: missing result during stitch")
		}
		for _, cp := range res.Cells {
			c := work.Cells[cp.ID]
			c.X, c.Y, c.Flipped = cp.X, cp.Y, cp.Flipped
		}
	}
	tres, err := tetris.AllocateContextP(ctx, work, workers)
	if err != nil {
		return mclgerr.Stage("stitch", err)
	}
	if tres.Unplaced > 0 {
		return &mclgerr.StageError{
			Stage:  "stitch",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: fmt.Sprintf("%d cells left unplaced after boundary reconciliation", tres.Unplaced),
		}
	}
	if rep := design.CheckLegal(work); !rep.Legal() {
		return &mclgerr.StageError{
			Stage:  "stitch",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: "stitched placement failed the legality checker: " + rep.String(),
		}
	}
	for i, c := range work.Cells {
		dc := d.Cells[i]
		dc.X, dc.Y, dc.Flipped = c.X, c.Y, c.Flipped
	}
	return nil
}
