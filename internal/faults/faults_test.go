package faults

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mclg/internal/bookshelf"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/mclgerr"
)

func healthy(t *testing.T, seed int64) *design.Design {
	t.Helper()
	d, err := gen.Generate(gen.Spec{
		Name:        "faults-bench",
		SingleCells: 90,
		DoubleCells: 12,
		Density:     0.7,
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return d
}

// legalize runs the full resilient pipeline under a hard deadline with a
// panic guard, and checks the core invariant: a nil error means a placement
// the legality checker accepts; a non-nil error matches the taxonomy.
func legalize(t *testing.T, d *design.Design) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("pipeline panicked: %v", p)
		}
	}()
	_, err := core.NewResilient(core.ResilientOptions{}).LegalizeContext(ctx, d)
	if err == nil {
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("pipeline reported success but the placement is illegal: %v", rep)
		}
		return nil
	}
	if !mclgerr.IsTaxonomy(err) {
		t.Fatalf("error %v does not match the mclgerr taxonomy", err)
	}
	return err
}

// TestInjectedFaultsNeverPanic is the harness's core table: every in-memory
// corruptor, three seeds each, asserting legal-or-typed-error.
func TestInjectedFaultsNeverPanic(t *testing.T) {
	for _, c := range Corruptors() {
		for seed := int64(1); seed <= 3; seed++ {
			c, seed := c, seed
			t.Run(c.Name, func(t *testing.T) {
				d := healthy(t, seed)
				c.Apply(rand.New(rand.NewSource(seed)), d)
				err := legalize(t, d)
				switch c.Expectation {
				case "reject":
					if err == nil {
						t.Fatalf("corruption %q was accepted without error", c.Name)
					}
					if !errors.Is(err, mclgerr.ErrInvalidInput) {
						t.Fatalf("corruption %q: error %v, want ErrInvalidInput", c.Name, err)
					}
				case "recover":
					if err != nil {
						t.Fatalf("pipeline failed to recover from %q: %v", c.Name, err)
					}
				case "either":
					// legalize already asserted the invariant.
				default:
					t.Fatalf("corruptor %q has unknown expectation %q", c.Name, c.Expectation)
				}
			})
		}
	}
}

// TestCorruptedBookshelfFilesNeverPanic round-trips a healthy design through
// the Bookshelf writer, corrupts the bytes, and feeds them back: the reader
// must reject or the pipeline must uphold legal-or-typed-error.
func TestCorruptedBookshelfFilesNeverPanic(t *testing.T) {
	for _, fc := range FileCorruptors() {
		for seed := int64(1); seed <= 3; seed++ {
			fc, seed := fc, seed
			t.Run(fc.Name, func(t *testing.T) {
				d := healthy(t, seed)
				dir := t.TempDir()
				aux := filepath.Join(dir, "bench.aux")
				if err := bookshelf.Write(d, aux); err != nil {
					t.Fatalf("write: %v", err)
				}
				files := map[string][]byte{}
				for _, ext := range []string{"nodes", "pl", "scl", "nets"} {
					b, err := os.ReadFile(filepath.Join(dir, "bench."+ext))
					if err != nil {
						t.Fatal(err)
					}
					files[ext] = b
				}
				fc.Apply(rand.New(rand.NewSource(seed)), files)
				for ext, b := range files {
					if err := os.WriteFile(filepath.Join(dir, "bench."+ext), b, 0o644); err != nil {
						t.Fatal(err)
					}
				}

				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("reader panicked: %v", p)
					}
				}()
				rd, err := bookshelf.Read(aux)
				if err != nil {
					// Parse errors must be typed; I/O never happens here.
					if !mclgerr.IsTaxonomy(err) {
						t.Fatalf("reader error %v does not match the taxonomy", err)
					}
					return
				}
				legalize(t, rd)
			})
		}
	}
}

// TestCancellationAbortsMidSolve cancels a context while the MMSIM is in its
// hot loop and requires the typed cancellation error to surface promptly —
// the pipeline must not run to completion or hang.
func TestCancellationAbortsMidSolve(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name:        "cancel-bench",
		SingleCells: 4000,
		DoubleCells: 500,
		Density:     0.8,
		Seed:        21,
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, lerr := core.New(core.Options{Eps: 1e-12, MaxIter: 2000000}).LegalizeContext(ctx, d)
	elapsed := time.Since(start)
	if lerr == nil {
		t.Skip("solve finished before the deadline; machine too fast for this budget")
	}
	if !errors.Is(lerr, mclgerr.ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", lerr)
	}
	if !errors.Is(lerr, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in the chain", lerr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to surface, want well under 5s", elapsed)
	}
}

// TestCorruptorsAreDeterministic guards the "seedable" contract: the same
// seed must produce the same corruption.
func TestCorruptorsAreDeterministic(t *testing.T) {
	for _, c := range Corruptors() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			d1, d2 := healthy(t, 5), healthy(t, 5)
			c.Apply(rand.New(rand.NewSource(9)), d1)
			c.Apply(rand.New(rand.NewSource(9)), d2)
			if len(d1.Cells) != len(d2.Cells) {
				t.Fatalf("cell counts diverged: %d vs %d", len(d1.Cells), len(d2.Cells))
			}
			for i := range d1.Cells {
				a, b := d1.Cells[i], d2.Cells[i]
				if a.W != b.W || a.H != b.H ||
					(a.GX != b.GX && !(a.GX != a.GX && b.GX != b.GX)) ||
					(a.GY != b.GY && !(a.GY != a.GY && b.GY != b.GY)) {
					t.Fatalf("cell %d diverged between runs", i)
				}
			}
		})
	}
}
