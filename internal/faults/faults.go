// Package faults provides deterministic, seedable corruptors for the
// legalization pipeline's resilience suite. Each corruptor mutates either a
// healthy in-memory design or a serialized Bookshelf file set into one
// specific failure mode (non-finite positions, degenerate geometry,
// oversubscribed capacity, truncated files, …).
//
// The invariant the accompanying test suite asserts for every corruptor:
// the pipeline fed the corrupted input yields either a fully legal
// placement or an error matching the mclgerr taxonomy — never a panic, a
// hang, or a silently illegal result.
package faults

import (
	"math"
	"math/rand"

	"mclg/internal/design"
)

// Corruptor mutates an in-memory design into one failure mode. Apply must
// be deterministic given the rand.Rand.
type Corruptor struct {
	Name string
	// Expectation documents what a resilient pipeline should do with the
	// corruption: "reject" (typed validation error), "recover" (still
	// produce a legal placement), or "either" (legal or typed error, both
	// acceptable).
	Expectation string
	Apply       func(r *rand.Rand, d *design.Design)
}

func movable(r *rand.Rand, d *design.Design) *design.Cell {
	var cands []*design.Cell
	for _, c := range d.Cells {
		if !c.Fixed {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[r.Intn(len(cands))]
}

// Corruptors returns the in-memory fault models.
func Corruptors() []Corruptor {
	return []Corruptor{
		{
			Name:        "nan-gp-position",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				if c := movable(r, d); c != nil {
					c.GX = math.NaN()
					c.X = c.GX
				}
			},
		},
		{
			Name:        "inf-gp-position",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				if c := movable(r, d); c != nil {
					c.GY = math.Inf(1)
					c.Y = c.GY
				}
			},
		},
		{
			Name:        "zero-width-cell",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				if c := movable(r, d); c != nil {
					c.W = 0
				}
			},
		},
		{
			Name:        "negative-width-cell",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				if c := movable(r, d); c != nil {
					c.W = -c.W
				}
			},
		},
		{
			Name:        "cell-taller-than-core",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				if c := movable(r, d); c != nil {
					c.RowSpan = len(d.Rows) + 2
					c.H = float64(c.RowSpan) * d.RowHeight
				}
			},
		},
		{
			Name:        "duplicate-cell-entry",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				if c := movable(r, d); c != nil {
					dup := *c
					d.Cells = append(d.Cells, &dup)
				}
			},
		},
		{
			Name:        "degenerate-site-width",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				d.SiteW = 0
				for i := range d.Rows {
					d.Rows[i].SiteW = 0
				}
			},
		},
		{
			Name:        "nan-row-coordinate",
			Expectation: "reject",
			Apply: func(r *rand.Rand, d *design.Design) {
				d.Rows[r.Intn(len(d.Rows))].Y = math.NaN()
			},
		},
		{
			// Widths inflated past the total row capacity: the input is
			// structurally valid, so validation passes and the solver chain
			// must fail cleanly (no placement exists).
			Name:        "oversubscribed-rows",
			Expectation: "either",
			Apply: func(r *rand.Rand, d *design.Design) {
				coreW := d.Core.Hi.X - d.Core.Lo.X
				for _, c := range d.Cells {
					if c.Fixed {
						continue
					}
					c.W = math.Min(c.W*4, coreW)
				}
			},
		},
		{
			// Every global position collapsed to one point: extreme but
			// valid input the cascade should still legalize.
			Name:        "collapsed-gp-positions",
			Expectation: "recover",
			Apply: func(r *rand.Rand, d *design.Design) {
				cx := (d.Core.Lo.X + d.Core.Hi.X) / 2
				cy := (d.Core.Lo.Y + d.Core.Hi.Y) / 2
				for _, c := range d.Cells {
					if !c.Fixed {
						c.GX, c.GY = cx, cy
						c.X, c.Y = cx, cy
					}
				}
			},
		},
		{
			// Positions far outside the core: valid geometry, hostile start.
			Name:        "gp-outside-core",
			Expectation: "recover",
			Apply: func(r *rand.Rand, d *design.Design) {
				w := d.Core.Hi.X - d.Core.Lo.X
				for _, c := range d.Cells {
					if !c.Fixed && r.Intn(2) == 0 {
						c.GX = d.Core.Hi.X + w*(1+r.Float64())
						c.X = c.GX
					}
				}
			},
		},
	}
}

// FileCorruptor mutates serialized Bookshelf files, keyed by extension
// ("nodes", "pl", "scl", "nets").
type FileCorruptor struct {
	Name  string
	Apply func(r *rand.Rand, files map[string][]byte)
}

func truncate(r *rand.Rand, b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	return b[:r.Intn(len(b))]
}

// FileCorruptors returns the byte-level fault models.
func FileCorruptors() []FileCorruptor {
	return []FileCorruptor{
		{
			Name: "truncated-pl",
			Apply: func(r *rand.Rand, files map[string][]byte) {
				files["pl"] = truncate(r, files["pl"])
			},
		},
		{
			Name: "truncated-scl",
			Apply: func(r *rand.Rand, files map[string][]byte) {
				files["scl"] = truncate(r, files["scl"])
			},
		},
		{
			Name: "truncated-nodes",
			Apply: func(r *rand.Rand, files map[string][]byte) {
				files["nodes"] = truncate(r, files["nodes"])
			},
		},
		{
			Name: "nan-injected-pl",
			Apply: func(r *rand.Rand, files map[string][]byte) {
				b := files["pl"]
				// Replace the first digit run of a random line with NaN.
				lines := 0
				for i := 0; i < len(b); i++ {
					if b[i] == '\n' {
						lines++
					}
				}
				if lines == 0 {
					return
				}
				target := r.Intn(lines)
				line := 0
				for i := 0; i < len(b) && line <= target; i++ {
					if b[i] == '\n' {
						line++
						continue
					}
					if line == target && b[i] >= '0' && b[i] <= '9' {
						out := append([]byte{}, b[:i]...)
						out = append(out, []byte("NaN")...)
						for ; i < len(b) && (b[i] >= '0' && b[i] <= '9' || b[i] == '.' || b[i] == '-'); i++ {
						}
						files["pl"] = append(out, b[i:]...)
						return
					}
				}
			},
		},
		{
			Name: "flipped-bytes",
			Apply: func(r *rand.Rand, files map[string][]byte) {
				keys := []string{"nodes", "pl", "scl", "nets"}
				k := keys[r.Intn(len(keys))]
				b := files[k]
				for i := 0; i < 8 && len(b) > 0; i++ {
					b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
				}
				files[k] = b
			},
		},
	}
}
