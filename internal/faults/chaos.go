package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"
)

// WindowFault enumerates the fault a chaos harness injects into one window
// solve attempt.
type WindowFault int

const (
	// FaultNone leaves the attempt untouched.
	FaultNone WindowFault = iota
	// FaultPanic makes the window solver panic mid-solve, exercising the
	// supervision layer's recover→mclgerr path.
	FaultPanic
	// FaultStall blocks the attempt until its context is canceled,
	// exercising the per-window deadline and straggler hedging.
	FaultStall
	// FaultNaN poisons the window's global positions with NaN before the
	// solve, exercising typed validation rejection and retry.
	FaultNaN
)

func (f WindowFault) String() string {
	switch f {
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	case FaultNaN:
		return "nan"
	default:
		return "none"
	}
}

// WindowChaos is a deterministic window-granular fault injector. Whether a
// given (window, attempt) pair is faulted — and with which fault — is a pure
// function of (Seed, window, attempt), so a chaos run is exactly
// reproducible regardless of scheduling, worker count, or wall-clock.
//
// Faults are transient by default (MaxAttempt 0 means 1): only attempt 0 of
// a window is sabotaged, so the supervised retry re-solves the window
// cleanly and the final placement is bit-identical to the fault-free run —
// which is precisely the containment property the chaos suite asserts.
// Raising MaxAttempt makes faults persistent across that many attempts,
// driving windows into the degradation rung.
type WindowChaos struct {
	// Seed selects which windows are faulted.
	Seed uint64
	// PanicFrac, StallFrac, NaNFrac are the fractions of windows receiving
	// each fault, in [0,1]; they partition the unit interval, so their sum
	// is the total faulted fraction and must be ≤ 1.
	PanicFrac float64
	StallFrac float64
	NaNFrac   float64
	// MaxAttempt bounds the attempts that see the fault: attempts with
	// index < MaxAttempt are sabotaged, later retries run clean. 0 means 1
	// (fault only the first attempt).
	MaxAttempt int

	// Injected counts faults actually fired, for test assertions that the
	// harness was live.
	Injected atomic.Uint64
}

// Fault reports the fault to inject into the given attempt of the given
// window. Deterministic in (Seed, window, attempt); safe for concurrent use.
func (c *WindowChaos) Fault(window, attempt int) WindowFault {
	if c == nil {
		return FaultNone
	}
	maxAttempt := c.MaxAttempt
	if maxAttempt <= 0 {
		maxAttempt = 1
	}
	if attempt >= maxAttempt {
		return FaultNone
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(c.Seed >> (8 * i))
		buf[8+i] = byte(uint64(window) >> (8 * i))
	}
	h.Write(buf[:])
	u := float64(h.Sum64()>>11) / float64(1<<53) // uniform in [0,1)
	switch {
	case u < c.PanicFrac:
		return FaultPanic
	case u < c.PanicFrac+c.StallFrac:
		return FaultStall
	case u < c.PanicFrac+c.StallFrac+c.NaNFrac:
		return FaultNaN
	default:
		return FaultNone
	}
}

// Inject fires the selected fault inside a window solve attempt. poison is
// called for FaultNaN and must corrupt the attempt's working state (never
// shared state). FaultPanic panics; FaultStall blocks until ctx is done and
// returns its cancellation error; FaultNone and FaultNaN return nil.
func (c *WindowChaos) Inject(ctx context.Context, window, attempt int, poison func()) error {
	switch c.Fault(window, attempt) {
	case FaultPanic:
		c.Injected.Add(1)
		panic(fmt.Sprintf("chaos: injected panic in window %d attempt %d", window, attempt))
	case FaultStall:
		c.Injected.Add(1)
		<-ctx.Done()
		return ctx.Err()
	case FaultNaN:
		c.Injected.Add(1)
		if poison != nil {
			poison()
		}
		return nil
	default:
		return nil
	}
}

// NaN returns the poison value used by FaultNaN injections.
func NaN() float64 { return math.NaN() }
