package faults

import (
	"context"
	"errors"
	"testing"
)

// TestWindowChaosDeterministic pins that fault selection is a pure function
// of (Seed, window, attempt) — the property that makes a chaos run exactly
// reproducible.
func TestWindowChaosDeterministic(t *testing.T) {
	a := &WindowChaos{Seed: 7, PanicFrac: 0.2, StallFrac: 0.2, NaNFrac: 0.2}
	b := &WindowChaos{Seed: 7, PanicFrac: 0.2, StallFrac: 0.2, NaNFrac: 0.2}
	for w := 0; w < 200; w++ {
		if a.Fault(w, 0) != b.Fault(w, 0) {
			t.Fatalf("window %d: fault differs across identical injectors", w)
		}
	}
	other := &WindowChaos{Seed: 8, PanicFrac: 0.2, StallFrac: 0.2, NaNFrac: 0.2}
	same := 0
	for w := 0; w < 200; w++ {
		if a.Fault(w, 0) == other.Fault(w, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatalf("seed does not influence fault selection")
	}
}

// TestWindowChaosTransient pins the default transience: only attempt 0 is
// faulted, so retries and hedges run clean and converge to the fault-free
// placement.
func TestWindowChaosTransient(t *testing.T) {
	c := &WindowChaos{Seed: 3, PanicFrac: 1}
	if c.Fault(5, 0) != FaultPanic {
		t.Fatalf("attempt 0 of a fully-faulted injector must panic")
	}
	for _, attempt := range []int{1, 2, 1 << 20} {
		if f := c.Fault(5, attempt); f != FaultNone {
			t.Fatalf("attempt %d: fault %v, want none (transient default)", attempt, f)
		}
	}
	persistent := &WindowChaos{Seed: 3, PanicFrac: 1, MaxAttempt: 3}
	for attempt, want := range map[int]WindowFault{0: FaultPanic, 2: FaultPanic, 3: FaultNone} {
		if f := persistent.Fault(5, attempt); f != want {
			t.Fatalf("persistent attempt %d: fault %v, want %v", attempt, f, want)
		}
	}
}

// TestWindowChaosFractions checks the unit-interval partition: with
// fractions summing to f, roughly f of many windows are faulted, and the
// three fault kinds all occur.
func TestWindowChaosFractions(t *testing.T) {
	c := &WindowChaos{Seed: 11, PanicFrac: 0.1, StallFrac: 0.1, NaNFrac: 0.1}
	counts := map[WindowFault]int{}
	n := 10000
	for w := 0; w < n; w++ {
		counts[c.Fault(w, 0)]++
	}
	faulted := n - counts[FaultNone]
	if faulted < n/5 || faulted > n*2/5 {
		t.Fatalf("faulted %d of %d windows, want ≈30%%", faulted, n)
	}
	for _, f := range []WindowFault{FaultPanic, FaultStall, FaultNaN} {
		if counts[f] == 0 {
			t.Fatalf("fault kind %v never selected", f)
		}
	}
}

// TestWindowChaosInjectStallCancelable verifies an injected stall is not a
// hang: it unblocks as soon as the attempt's context is canceled.
func TestWindowChaosInjectStallCancelable(t *testing.T) {
	c := &WindowChaos{Seed: 1, StallFrac: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Inject(ctx, 0, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("stall returned %v, want context.Canceled", err)
	}
	if c.Injected.Load() == 0 {
		t.Fatalf("injection counter not incremented")
	}
}
