package design

import (
	"fmt"
	"math"
)

// Occupancy is a per-row site-occupancy grid. Entry (row, site) holds the
// ID+1 of the occupying cell, or 0 when free, so overlaps are detected on
// insertion and the grid doubles as a reverse index for debugging.
type Occupancy struct {
	d     *Design
	grid  [][]int32 // grid[row][site]
	sites int
}

// NewOccupancy allocates an empty grid for the design.
func NewOccupancy(d *Design) *Occupancy {
	o := &Occupancy{d: d, sites: 0}
	o.grid = make([][]int32, len(d.Rows))
	for i, r := range d.Rows {
		o.grid[i] = make([]int32, r.NumSites)
		if r.NumSites > o.sites {
			o.sites = r.NumSites
		}
	}
	return o
}

// cellSpan converts a cell position to (rowStart, rowEnd, siteStart, siteEnd)
// half-open index ranges. Returns an error if the position is off-grid or
// outside the core.
func (o *Occupancy) cellSpan(c *Cell, x, y float64) (r0, r1, s0, s1 int, err error) {
	d := o.d
	fr := (y - d.Core.Lo.Y) / d.RowHeight
	r0 = int(math.Round(fr))
	if math.Abs(fr-float64(r0)) > 1e-6 {
		return 0, 0, 0, 0, fmt.Errorf("cell %d: y=%g not on a row boundary", c.ID, y)
	}
	fs := (x - d.Core.Lo.X) / d.SiteW
	s0 = int(math.Round(fs))
	if math.Abs(fs-float64(s0)) > 1e-6 {
		return 0, 0, 0, 0, fmt.Errorf("cell %d: x=%g not on a site boundary", c.ID, x)
	}
	r1 = r0 + c.RowSpan
	nw := int(math.Ceil(c.W/d.SiteW - 1e-9))
	s1 = s0 + nw
	if r0 < 0 || r1 > len(d.Rows) {
		return 0, 0, 0, 0, fmt.Errorf("cell %d: rows [%d,%d) outside core", c.ID, r0, r1)
	}
	if s0 < 0 || s1 > d.Rows[r0].NumSites {
		return 0, 0, 0, 0, fmt.Errorf("cell %d: sites [%d,%d) outside row", c.ID, s0, s1)
	}
	return r0, r1, s0, s1, nil
}

// Place marks the sites covered by cell c at position (x, y) as occupied.
// It fails without modifying the grid if any covered site is already
// occupied or the position is off-grid.
func (o *Occupancy) Place(c *Cell, x, y float64) error {
	r0, r1, s0, s1, err := o.cellSpan(c, x, y)
	if err != nil {
		return err
	}
	for r := r0; r < r1; r++ {
		for s := s0; s < s1; s++ {
			if o.grid[r][s] != 0 {
				return fmt.Errorf("cell %d: site (row %d, site %d) already occupied by cell %d",
					c.ID, r, s, o.grid[r][s]-1)
			}
		}
	}
	id := int32(c.ID + 1)
	for r := r0; r < r1; r++ {
		for s := s0; s < s1; s++ {
			o.grid[r][s] = id
		}
	}
	return nil
}

// Remove clears the sites covered by cell c at position (x, y). Sites not
// owned by c are left untouched.
func (o *Occupancy) Remove(c *Cell, x, y float64) {
	r0, r1, s0, s1, err := o.cellSpan(c, x, y)
	if err != nil {
		return
	}
	id := int32(c.ID + 1)
	for r := r0; r < r1; r++ {
		for s := s0; s < s1; s++ {
			if o.grid[r][s] == id {
				o.grid[r][s] = 0
			}
		}
	}
}

// Fits reports whether cell c can be placed at (x, y): on-grid, inside the
// core, and with every covered site free.
func (o *Occupancy) Fits(c *Cell, x, y float64) bool {
	r0, r1, s0, s1, err := o.cellSpan(c, x, y)
	if err != nil {
		return false
	}
	for r := r0; r < r1; r++ {
		for s := s0; s < s1; s++ {
			if o.grid[r][s] != 0 {
				return false
			}
		}
	}
	return true
}

// FreeRun reports whether sites [s0, s1) are free in all rows [r0, r1).
func (o *Occupancy) FreeRun(r0, r1, s0, s1 int) bool {
	if r0 < 0 || r1 > len(o.grid) {
		return false
	}
	for r := r0; r < r1; r++ {
		if s0 < 0 || s1 > len(o.grid[r]) {
			return false
		}
		for s := s0; s < s1; s++ {
			if o.grid[r][s] != 0 {
				return false
			}
		}
	}
	return true
}

// OwnerAt returns the cell ID occupying (row, site), or -1 if free.
func (o *Occupancy) OwnerAt(row, site int) int {
	if row < 0 || row >= len(o.grid) || site < 0 || site >= len(o.grid[row]) {
		return -1
	}
	if v := o.grid[row][site]; v != 0 {
		return int(v - 1)
	}
	return -1
}

// BlockArea marks every site the rectangle [x, x+w) x [y, y+h) touches as
// occupied by the given cell ID, regardless of grid alignment. It is used
// for fixed cells and blockages, which need not be site-aligned. Already
// occupied sites are left as they are.
func (o *Occupancy) BlockArea(cellID int, x, y, w, h float64) {
	d := o.d
	r0 := int(math.Floor((y - d.Core.Lo.Y) / d.RowHeight))
	r1 := int(math.Ceil((y+h-d.Core.Lo.Y)/d.RowHeight - 1e-9))
	s0 := int(math.Floor((x - d.Core.Lo.X) / d.SiteW))
	s1 := int(math.Ceil((x+w-d.Core.Lo.X)/d.SiteW - 1e-9))
	id := int32(cellID + 1)
	for r := maxInt(0, r0); r < minInt(len(o.grid), r1); r++ {
		for s := maxInt(0, s0); s < minInt(len(o.grid[r]), s1); s++ {
			if o.grid[r][s] == 0 {
				o.grid[r][s] = id
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// UsedSites returns the total number of occupied sites.
func (o *Occupancy) UsedSites() int {
	n := 0
	for _, row := range o.grid {
		for _, v := range row {
			if v != 0 {
				n++
			}
		}
	}
	return n
}
