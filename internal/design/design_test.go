package design

import (
	"math"
	"testing"
)

func smallDesign() *Design {
	return NewDesign(Config{
		Name:      "t",
		NumRows:   8,
		NumSites:  100,
		RowHeight: 10,
		SiteW:     1,
	})
}

func TestNewDesignStructure(t *testing.T) {
	d := smallDesign()
	if len(d.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(d.Rows))
	}
	if d.Core.W() != 100 || d.Core.H() != 80 {
		t.Errorf("core = %v, want 100x80", d.Core)
	}
	for i, r := range d.Rows {
		if r.Y != float64(i)*10 {
			t.Errorf("row %d y = %g, want %g", i, r.Y, float64(i)*10)
		}
		wantRail := VSS
		if i%2 == 1 {
			wantRail = VDD
		}
		if r.Rail != wantRail {
			t.Errorf("row %d rail = %v, want %v (alternating)", i, r.Rail, wantRail)
		}
	}
}

func TestRailAlternation(t *testing.T) {
	d := NewDesign(Config{NumRows: 4, NumSites: 10, RowHeight: 1, SiteW: 1, BottomRail: VDD})
	want := []RailType{VDD, VSS, VDD, VSS}
	for i, r := range d.Rows {
		if r.Rail != want[i] {
			t.Errorf("row %d rail = %v, want %v", i, r.Rail, want[i])
		}
	}
}

func TestAddCellSpans(t *testing.T) {
	d := smallDesign()
	s := d.AddCell("s", 4, 10, VSS)
	m := d.AddCell("m", 4, 20, VSS)
	tr := d.AddCell("t", 4, 30, VSS)
	if s.RowSpan != 1 || m.RowSpan != 2 || tr.RowSpan != 3 {
		t.Errorf("spans = %d/%d/%d, want 1/2/3", s.RowSpan, m.RowSpan, tr.RowSpan)
	}
	if !m.EvenSpan() || s.EvenSpan() || tr.EvenSpan() {
		t.Error("EvenSpan misclassified")
	}
	if s.ID != 0 || m.ID != 1 || tr.ID != 2 {
		t.Error("IDs not sequential")
	}
}

func TestAddCellRejectsBadHeight(t *testing.T) {
	d := smallDesign()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-multiple height")
		}
	}()
	d.AddCell("bad", 4, 15, VSS)
}

func TestRailCompatible(t *testing.T) {
	d := smallDesign() // rows 0..7, rails VSS,VDD,VSS,...
	odd := d.AddCell("odd", 4, 10, VSS)
	evenVSS := d.AddCell("evss", 4, 20, VSS)
	evenVDD := d.AddCell("evdd", 4, 20, VDD)
	for r := 0; r < 8; r++ {
		if !d.RailCompatible(odd, r) {
			t.Errorf("odd cell should fit row %d", r)
		}
	}
	// Even-span VSS-bottom cells only on even rows (VSS rails).
	for r := 0; r < 7; r++ {
		wantVSS := r%2 == 0
		if got := d.RailCompatible(evenVSS, r); got != wantVSS {
			t.Errorf("evenVSS row %d = %v, want %v", r, got, wantVSS)
		}
		if got := d.RailCompatible(evenVDD, r); got != !wantVSS {
			t.Errorf("evenVDD row %d = %v, want %v", r, got, !wantVSS)
		}
	}
	// Vertical fit: double-height cell cannot start on the last row.
	if d.RailCompatible(evenVSS, 7) {
		t.Error("double-height cell must not start on the top row")
	}
	if d.RailCompatible(odd, -1) || d.RailCompatible(odd, 8) {
		t.Error("out-of-range rows must be incompatible")
	}
}

func TestNearestCorrectRow(t *testing.T) {
	d := smallDesign()
	odd := d.AddCell("odd", 4, 10, VSS)
	even := d.AddCell("even", 4, 20, VSS) // needs VSS rail: rows 0,2,4,6

	if got := d.NearestCorrectRow(odd, 33); got != 3 {
		t.Errorf("odd at y=33 -> row %d, want 3", got)
	}
	// y=30 is row 3 (VDD); nearest VSS row is 2 or 4 — prefer searching down first.
	if got := d.NearestCorrectRow(even, 30); got != 2 {
		t.Errorf("even at y=30 -> row %d, want 2", got)
	}
	if got := d.NearestCorrectRow(even, 40); got != 4 {
		t.Errorf("even at y=40 -> row %d, want 4", got)
	}
	// Below the core: clamps to row 0.
	if got := d.NearestCorrectRow(even, -100); got != 0 {
		t.Errorf("even at y=-100 -> row %d, want 0", got)
	}
	// Above the core: clamps so the cell still fits (last start row for span-2 is 6).
	if got := d.NearestCorrectRow(even, 1000); got != 6 {
		t.Errorf("even at y=1000 -> row %d, want 6", got)
	}
	// A cell taller than the core has no row.
	tall := d.AddCell("tall", 4, 90, VSS)
	if got := d.NearestCorrectRow(tall, 0); got != -1 {
		t.Errorf("oversized cell -> row %d, want -1", got)
	}
}

func TestNearestCorrectRowEvenVDD(t *testing.T) {
	d := smallDesign()
	even := d.AddCell("e", 4, 20, VDD) // needs VDD rail: rows 1,3,5
	if got := d.NearestCorrectRow(even, 0); got != 1 {
		t.Errorf("VDD even at y=0 -> row %d, want 1", got)
	}
	if got := d.NearestCorrectRow(even, 70); got != 5 {
		t.Errorf("VDD even at y=70 -> row %d, want 5 (row 6 is VSS, row 7 too high)", got)
	}
}

func TestSnapXAndRowAt(t *testing.T) {
	d := smallDesign()
	if got := d.SnapX(3.4); got != 3 {
		t.Errorf("SnapX(3.4) = %g, want 3", got)
	}
	if got := d.SnapX(3.6); got != 4 {
		t.Errorf("SnapX(3.6) = %g, want 4", got)
	}
	if got := d.SnapX(-5); got != 0 {
		t.Errorf("SnapX(-5) = %g, want 0 (clamped)", got)
	}
	if got := d.RowAt(25); got != 2 {
		t.Errorf("RowAt(25) = %d, want 2", got)
	}
	if got := d.RowAt(-1); got != -1 {
		t.Errorf("RowAt(-1) = %d, want -1", got)
	}
	if got := d.RowY(3); got != 30 {
		t.Errorf("RowY(3) = %g, want 30", got)
	}
}

func TestCellDisplacement(t *testing.T) {
	d := smallDesign()
	c := d.AddCell("c", 4, 10, VSS)
	c.GX, c.GY = 10, 20
	c.X, c.Y = 13, 24
	if got := c.Displacement(); got != 5 {
		t.Errorf("Displacement = %g, want 5", got)
	}
	if got := c.DisplacementSq(); got != 25 {
		t.Errorf("DisplacementSq = %g, want 25", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := smallDesign()
	c := d.AddCell("c", 4, 10, VSS)
	c.X = 5
	d.Nets = append(d.Nets, Net{Name: "n", Pins: []Pin{{CellID: 0, DX: 1, DY: 1}}})
	cl := d.Clone()
	cl.Cells[0].X = 99
	cl.Nets[0].Pins[0].DX = 42
	if c.X != 5 {
		t.Error("clone shares cell storage")
	}
	if d.Nets[0].Pins[0].DX != 1 {
		t.Error("clone shares net storage")
	}
	if cl.Name != d.Name || cl.Core != d.Core {
		t.Error("clone lost scalar fields")
	}
}

func TestResetToGlobal(t *testing.T) {
	d := smallDesign()
	c := d.AddCell("c", 4, 10, VSS)
	c.GX, c.GY = 7, 20
	c.X, c.Y = 50, 60
	c.Flipped = true
	f := d.AddCell("f", 4, 10, VSS)
	f.Fixed = true
	f.GX, f.X = 1, 2
	d.ResetToGlobal()
	if c.X != 7 || c.Y != 20 || c.Flipped {
		t.Error("movable cell not reset")
	}
	if f.X != 2 {
		t.Error("fixed cell must not be reset")
	}
}

func TestDensity(t *testing.T) {
	d := smallDesign() // core 100x80 = 8000
	d.AddCell("a", 40, 10, VSS)
	d.AddCell("b", 40, 10, VSS)
	if got := d.Density(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Density = %g, want 0.1", got)
	}
}
