package design

import "testing"

func TestNearestFreePrefersCloserRun(t *testing.T) {
	d := NewDesign(Config{NumRows: 1, NumSites: 100, RowHeight: 10, SiteW: 1})
	blocker := d.AddCell("a", 10, 10, VSS)
	occ := NewOccupancy(d)
	if err := occ.Place(blocker, 10, 0); err != nil {
		t.Fatal(err)
	}
	// Target site 12 (inside the blocker). A width-5 run fits at [5,10)
	// (left edge distance 7) or [20,25) (distance 8): left wins.
	c := d.AddCell("b", 5, 10, VSS)
	x, y, ok := NearestFree(d, occ, c, 12, 0)
	if !ok {
		t.Fatal("no position found")
	}
	if x != 5 || y != 0 {
		t.Errorf("got (%g, %g), want (5, 0)", x, y)
	}
}

func TestNearestFreeRailCompatibleRowsOnly(t *testing.T) {
	d := NewDesign(Config{NumRows: 6, NumSites: 30, RowHeight: 10, SiteW: 1})
	occ := NewOccupancy(d)
	// Double-height VDD-bottom cell: legal start rows are 1, 3 (VDD).
	c := d.AddCell("dc", 4, 20, VDD)
	x, y, ok := NearestFree(d, occ, c, 0, 0)
	if !ok {
		t.Fatal("no position found")
	}
	row := d.RowAt(y + 1)
	if d.Rows[row].Rail != VDD {
		t.Errorf("placed on %v rail row %d", d.Rows[row].Rail, row)
	}
	if x != 0 {
		t.Errorf("x = %g, want 0", x)
	}
}

func TestNearestFreeFullGrid(t *testing.T) {
	d := NewDesign(Config{NumRows: 1, NumSites: 10, RowHeight: 10, SiteW: 1})
	blocker := d.AddCell("a", 10, 10, VSS)
	occ := NewOccupancy(d)
	if err := occ.Place(blocker, 0, 0); err != nil {
		t.Fatal(err)
	}
	c := d.AddCell("b", 2, 10, VSS)
	if _, _, ok := NearestFree(d, occ, c, 0, 0); ok {
		t.Error("found a position on a full grid")
	}
}

func TestNearestFreeOversizedCell(t *testing.T) {
	d := NewDesign(Config{NumRows: 2, NumSites: 10, RowHeight: 10, SiteW: 1})
	occ := NewOccupancy(d)
	c := d.AddCell("tall", 4, 10, VSS)
	c.RowSpan = 5 // taller than the core
	if _, _, ok := NearestFree(d, occ, c, 0, 0); ok {
		t.Error("found a position for an oversized cell")
	}
	wide := d.AddCell("wide", 20, 10, VSS)
	if _, _, ok := NearestFree(d, occ, wide, 0, 0); ok {
		t.Error("found a position for an over-wide cell")
	}
}

func TestNearestFreeTargetOutsideCore(t *testing.T) {
	d := NewDesign(Config{NumRows: 4, NumSites: 20, RowHeight: 10, SiteW: 1})
	occ := NewOccupancy(d)
	c := d.AddCell("c", 4, 10, VSS)
	// Target far below and left of the core: clamps to row 0, site 0.
	x, y, ok := NearestFree(d, occ, c, -100, -100)
	if !ok {
		t.Fatal("no position found")
	}
	if x != 0 || y != 0 {
		t.Errorf("got (%g, %g), want (0, 0)", x, y)
	}
	// Above the core: clamps to the top row.
	_, y, ok = NearestFree(d, occ, c, 0, 1000)
	if !ok {
		t.Fatal("no position found")
	}
	if y != 30 {
		t.Errorf("y = %g, want 30", y)
	}
}
