package design

import (
	"math/rand"
	"testing"
)

func place(c *Cell, x, y float64) {
	c.X, c.Y = x, y
}

func TestCheckLegalCleanPlacement(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	b := d.AddCell("b", 4, 20, VSS)
	place(a, 0, 0)
	place(b, 4, 0) // abuts a, starts on VSS row 0
	rep := CheckLegal(d)
	if !rep.Legal() {
		t.Fatalf("expected legal, got %v", rep)
	}
}

func TestCheckLegalOutsideCore(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 98, 0) // extends to x=102 > 100
	rep := CheckLegal(d)
	if rep.Count(VOutsideCore) != 1 {
		t.Errorf("outside-core = %d, want 1: %v", rep.Count(VOutsideCore), rep)
	}
}

func TestCheckLegalOffSiteOffRow(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 3.5, 0)
	if rep := CheckLegal(d); rep.Count(VOffSite) != 1 {
		t.Errorf("off-site: %v", rep)
	}
	place(a, 3, 5)
	if rep := CheckLegal(d); rep.Count(VOffRow) != 1 {
		t.Errorf("off-row: %v", rep)
	}
}

func TestCheckLegalRailMismatch(t *testing.T) {
	d := smallDesign()
	e := d.AddCell("e", 4, 20, VSS)
	place(e, 0, 10) // row 1 is VDD but cell bottom is VSS
	rep := CheckLegal(d)
	if rep.Count(VRailMismatch) != 1 {
		t.Errorf("rail mismatch = %d, want 1: %v", rep.Count(VRailMismatch), rep)
	}
	// An odd cell on any row is fine.
	o := d.AddCell("o", 4, 10, VSS)
	place(o, 10, 10)
	rep = CheckLegal(d)
	if rep.Count(VRailMismatch) != 1 {
		t.Errorf("odd cell must not trigger rail violation: %v", rep)
	}
}

func TestCheckLegalOverlap(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 6, 10, VSS)
	b := d.AddCell("b", 6, 10, VSS)
	place(a, 0, 0)
	place(b, 4, 0)
	rep := CheckLegal(d)
	if rep.Count(VOverlap) != 1 {
		t.Fatalf("overlap = %d, want 1: %v", rep.Count(VOverlap), rep)
	}
	// Multi-row overlap: double-height cell vs single in its upper row.
	c := d.AddCell("c", 6, 20, VSS)
	e := d.AddCell("e", 6, 10, VSS)
	place(c, 20, 0)
	place(e, 22, 10) // overlaps c's upper half
	rep = CheckLegal(d)
	if rep.Count(VOverlap) != 2 {
		t.Errorf("overlap = %d, want 2: %v", rep.Count(VOverlap), rep)
	}
}

func TestCheckLegalAbuttingNotOverlap(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 5, 10, VSS)
	b := d.AddCell("b", 5, 10, VSS)
	place(a, 0, 0)
	place(b, 5, 0)
	if rep := CheckLegal(d); !rep.Legal() {
		t.Errorf("abutting cells flagged: %v", rep)
	}
}

func TestCheckLegalFixedCellsExemptButCollide(t *testing.T) {
	d := smallDesign()
	f := d.AddCell("f", 4, 10, VSS)
	f.Fixed = true
	place(f, 0.5, 3) // off grid — but fixed, so no off-site/off-row violation
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 0, 0) // overlaps the fixed cell
	rep := CheckLegal(d)
	if rep.Count(VOffSite) != 0 || rep.Count(VOffRow) != 0 {
		t.Errorf("fixed cell should be exempt from alignment: %v", rep)
	}
	if rep.Count(VOverlap) != 1 {
		t.Errorf("fixed cell must still participate in overlap: %v", rep)
	}
}

// Regression: two overlapping fixed cells (pre-existing blockage overlap in
// the input) must not mark an otherwise-legal placement illegal — no
// legalizer can repair what it is not allowed to move.
func TestCheckLegalFixedFixedOverlapExempt(t *testing.T) {
	d := smallDesign()
	f1 := d.AddCell("f1", 8, 10, VSS)
	f1.Fixed = true
	place(f1, 10, 0)
	f2 := d.AddCell("f2", 8, 10, VSS)
	f2.Fixed = true
	place(f2, 14, 0) // overlaps f1 — both fixed
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 30, 0)
	rep := CheckLegal(d)
	if !rep.Legal() {
		t.Errorf("fixed-fixed overlap flagged the placement illegal: %v", rep)
	}
	// A movable cell overlapping a fixed cell is still a violation.
	place(a, 12, 0)
	if rep := CheckLegal(d); rep.Count(VOverlap) == 0 {
		t.Errorf("fixed-movable overlap must still be reported: %v", rep)
	}
}

// Regression: a core far from the coordinate origin accumulates round-off in
// (c.X − Core.Lo.X) / SiteW past the old absolute 1e-6 tolerance, flagging
// perfectly site-aligned cells off-site. The tolerance must scale with the
// coordinate magnitude.
func TestCheckLegalFarOriginCore(t *testing.T) {
	const origin = 1e12 + 0.1 // ulp ≈ 1.2e-4 at this magnitude
	d := NewDesign(Config{
		Name: "far", NumRows: 4, NumSites: 100, RowHeight: 10, SiteW: 1,
		OriginX: origin, OriginY: origin,
	})
	a := d.AddCell("a", 4, 10, VSS)
	// Simulate what a solver computes: position derived through arithmetic
	// that rounds at the core's magnitude.
	x := d.SnapX(origin + 37.4999)
	place(a, x, d.RowY(2))
	rep := CheckLegal(d)
	if rep.Count(VOffSite) != 0 || rep.Count(VOffRow) != 0 {
		t.Errorf("far-origin aligned cell flagged: %v", rep)
	}
	// A genuinely misaligned cell must still be caught: half a site off.
	place(a, x+0.5, d.RowY(2))
	if rep := CheckLegal(d); rep.Count(VOffSite) != 1 {
		t.Errorf("misaligned far-origin cell not flagged: %v", rep)
	}
	// And half a row off.
	place(a, x, d.RowY(2)+5)
	if rep := CheckLegal(d); rep.Count(VOffRow) != 1 {
		t.Errorf("off-row far-origin cell not flagged: %v", rep)
	}
}

// Regression: violation output must be deterministic run to run, including
// cells with identical x positions — audit certificates hash the violation
// list and need a stable ordering.
func TestFindOverlapsDeterministicOrder(t *testing.T) {
	build := func() []Violation {
		d := smallDesign()
		// Many cells at identical x positions across rows, all overlapping a
		// wide cell in their row — x ties everywhere, so only the ID
		// tie-break keeps the sweep order stable.
		for row := 0; row < 4; row++ {
			w := d.AddCell("w", 20, 10, VSS)
			place(w, 0, d.RowY(row))
			for k := 0; k < 5; k++ {
				c := d.AddCell("c", 4, 10, VSS)
				place(c, float64(4*k), d.RowY(row))
			}
		}
		return CheckLegal(d).Violations
	}
	a := build()
	for run := 0; run < 5; run++ {
		b := build()
		if len(a) != len(b) {
			t.Fatalf("violation count changed between runs: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Kind != b[i].Kind || a[i].Msg != b[i].Msg ||
				a[i].Cells[0] != b[i].Cells[0] || a[i].Cells[1] != b[i].Cells[1] {
				t.Fatalf("run %d: violation %d differs: %v vs %v", run, i, a[i], b[i])
			}
		}
	}
	// Pin the ordering contract itself: pair IDs ascending within a
	// violation, and the list sorted by the sweep's (x, id) order.
	for _, v := range a {
		if len(v.Cells) == 2 && v.Cells[0] > v.Cells[1] {
			t.Errorf("violation pair not ID-ordered: %v", v)
		}
	}
}

func TestOccupancyPlaceRemoveFits(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 20, VSS)
	o := NewOccupancy(d)
	if !o.Fits(a, 10, 0) {
		t.Fatal("empty grid should fit")
	}
	if err := o.Place(a, 10, 0); err != nil {
		t.Fatal(err)
	}
	if o.OwnerAt(0, 10) != a.ID || o.OwnerAt(1, 13) != a.ID {
		t.Error("occupancy not recorded across both rows")
	}
	if o.OwnerAt(0, 14) != -1 {
		t.Error("site past cell end should be free")
	}
	b := d.AddCell("b", 4, 10, VSS)
	if o.Fits(b, 12, 10) {
		t.Error("upper-row conflict not detected")
	}
	if err := o.Place(b, 12, 10); err == nil {
		t.Error("Place must fail on conflict")
	}
	if o.UsedSites() != 8 {
		t.Errorf("UsedSites = %d, want 8", o.UsedSites())
	}
	o.Remove(a, 10, 0)
	if o.UsedSites() != 0 {
		t.Error("Remove left occupied sites")
	}
	if !o.Fits(b, 12, 10) {
		t.Error("grid should be free after removal")
	}
}

func TestOccupancyOffGridRejected(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	o := NewOccupancy(d)
	if o.Fits(a, 0.5, 0) {
		t.Error("off-site position must not fit")
	}
	if o.Fits(a, 0, 5) {
		t.Error("off-row position must not fit")
	}
	if o.Fits(a, 98, 0) {
		t.Error("position crossing right boundary must not fit")
	}
	if err := o.Place(a, 0.5, 0); err == nil {
		t.Error("Place must reject off-grid position")
	}
}

func TestOccupancyFreeRun(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	o := NewOccupancy(d)
	if err := o.Place(a, 10, 0); err != nil {
		t.Fatal(err)
	}
	if !o.FreeRun(0, 1, 0, 10) {
		t.Error("sites left of the cell should be free")
	}
	if o.FreeRun(0, 1, 8, 12) {
		t.Error("run crossing the cell should not be free")
	}
	if o.FreeRun(-1, 1, 0, 1) || o.FreeRun(0, 1, 95, 105) {
		t.Error("out-of-range runs must be rejected")
	}
}

// Property-style randomized test: place random non-overlapping cells via the
// occupancy grid, then CheckLegal must agree the placement is legal.
func TestOccupancyAndCheckerAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		d := smallDesign()
		o := NewOccupancy(d)
		for i := 0; i < 60; i++ {
			span := 1 + rng.Intn(2)
			c := d.AddCell("c", float64(1+rng.Intn(6)), float64(span)*d.RowHeight, VSS)
			placed := false
			for try := 0; try < 30 && !placed; try++ {
				row := rng.Intn(len(d.Rows) - span + 1)
				if c.EvenSpan() && !d.RailCompatible(c, row) {
					continue
				}
				x := float64(rng.Intn(d.Rows[0].NumSites - int(c.W)))
				y := d.RowY(row)
				if o.Fits(c, x, y) {
					if err := o.Place(c, x, y); err != nil {
						t.Fatal(err)
					}
					place(c, x, y)
					placed = true
				}
			}
			if !placed {
				// Park it legally at a guaranteed-free spot or drop it.
				d.Cells = d.Cells[:len(d.Cells)-1]
			}
		}
		rep := CheckLegal(d)
		if !rep.Legal() {
			t.Fatalf("trial %d: occupancy-based placement flagged illegal: %v", trial, rep)
		}
	}
}
