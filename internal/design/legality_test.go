package design

import (
	"math/rand"
	"testing"
)

func place(c *Cell, x, y float64) {
	c.X, c.Y = x, y
}

func TestCheckLegalCleanPlacement(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	b := d.AddCell("b", 4, 20, VSS)
	place(a, 0, 0)
	place(b, 4, 0) // abuts a, starts on VSS row 0
	rep := CheckLegal(d)
	if !rep.Legal() {
		t.Fatalf("expected legal, got %v", rep)
	}
}

func TestCheckLegalOutsideCore(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 98, 0) // extends to x=102 > 100
	rep := CheckLegal(d)
	if rep.Count(VOutsideCore) != 1 {
		t.Errorf("outside-core = %d, want 1: %v", rep.Count(VOutsideCore), rep)
	}
}

func TestCheckLegalOffSiteOffRow(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 3.5, 0)
	if rep := CheckLegal(d); rep.Count(VOffSite) != 1 {
		t.Errorf("off-site: %v", rep)
	}
	place(a, 3, 5)
	if rep := CheckLegal(d); rep.Count(VOffRow) != 1 {
		t.Errorf("off-row: %v", rep)
	}
}

func TestCheckLegalRailMismatch(t *testing.T) {
	d := smallDesign()
	e := d.AddCell("e", 4, 20, VSS)
	place(e, 0, 10) // row 1 is VDD but cell bottom is VSS
	rep := CheckLegal(d)
	if rep.Count(VRailMismatch) != 1 {
		t.Errorf("rail mismatch = %d, want 1: %v", rep.Count(VRailMismatch), rep)
	}
	// An odd cell on any row is fine.
	o := d.AddCell("o", 4, 10, VSS)
	place(o, 10, 10)
	rep = CheckLegal(d)
	if rep.Count(VRailMismatch) != 1 {
		t.Errorf("odd cell must not trigger rail violation: %v", rep)
	}
}

func TestCheckLegalOverlap(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 6, 10, VSS)
	b := d.AddCell("b", 6, 10, VSS)
	place(a, 0, 0)
	place(b, 4, 0)
	rep := CheckLegal(d)
	if rep.Count(VOverlap) != 1 {
		t.Fatalf("overlap = %d, want 1: %v", rep.Count(VOverlap), rep)
	}
	// Multi-row overlap: double-height cell vs single in its upper row.
	c := d.AddCell("c", 6, 20, VSS)
	e := d.AddCell("e", 6, 10, VSS)
	place(c, 20, 0)
	place(e, 22, 10) // overlaps c's upper half
	rep = CheckLegal(d)
	if rep.Count(VOverlap) != 2 {
		t.Errorf("overlap = %d, want 2: %v", rep.Count(VOverlap), rep)
	}
}

func TestCheckLegalAbuttingNotOverlap(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 5, 10, VSS)
	b := d.AddCell("b", 5, 10, VSS)
	place(a, 0, 0)
	place(b, 5, 0)
	if rep := CheckLegal(d); !rep.Legal() {
		t.Errorf("abutting cells flagged: %v", rep)
	}
}

func TestCheckLegalFixedCellsExemptButCollide(t *testing.T) {
	d := smallDesign()
	f := d.AddCell("f", 4, 10, VSS)
	f.Fixed = true
	place(f, 0.5, 3) // off grid — but fixed, so no off-site/off-row violation
	a := d.AddCell("a", 4, 10, VSS)
	place(a, 0, 0) // overlaps the fixed cell
	rep := CheckLegal(d)
	if rep.Count(VOffSite) != 0 || rep.Count(VOffRow) != 0 {
		t.Errorf("fixed cell should be exempt from alignment: %v", rep)
	}
	if rep.Count(VOverlap) != 1 {
		t.Errorf("fixed cell must still participate in overlap: %v", rep)
	}
}

func TestOccupancyPlaceRemoveFits(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 20, VSS)
	o := NewOccupancy(d)
	if !o.Fits(a, 10, 0) {
		t.Fatal("empty grid should fit")
	}
	if err := o.Place(a, 10, 0); err != nil {
		t.Fatal(err)
	}
	if o.OwnerAt(0, 10) != a.ID || o.OwnerAt(1, 13) != a.ID {
		t.Error("occupancy not recorded across both rows")
	}
	if o.OwnerAt(0, 14) != -1 {
		t.Error("site past cell end should be free")
	}
	b := d.AddCell("b", 4, 10, VSS)
	if o.Fits(b, 12, 10) {
		t.Error("upper-row conflict not detected")
	}
	if err := o.Place(b, 12, 10); err == nil {
		t.Error("Place must fail on conflict")
	}
	if o.UsedSites() != 8 {
		t.Errorf("UsedSites = %d, want 8", o.UsedSites())
	}
	o.Remove(a, 10, 0)
	if o.UsedSites() != 0 {
		t.Error("Remove left occupied sites")
	}
	if !o.Fits(b, 12, 10) {
		t.Error("grid should be free after removal")
	}
}

func TestOccupancyOffGridRejected(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	o := NewOccupancy(d)
	if o.Fits(a, 0.5, 0) {
		t.Error("off-site position must not fit")
	}
	if o.Fits(a, 0, 5) {
		t.Error("off-row position must not fit")
	}
	if o.Fits(a, 98, 0) {
		t.Error("position crossing right boundary must not fit")
	}
	if err := o.Place(a, 0.5, 0); err == nil {
		t.Error("Place must reject off-grid position")
	}
}

func TestOccupancyFreeRun(t *testing.T) {
	d := smallDesign()
	a := d.AddCell("a", 4, 10, VSS)
	o := NewOccupancy(d)
	if err := o.Place(a, 10, 0); err != nil {
		t.Fatal(err)
	}
	if !o.FreeRun(0, 1, 0, 10) {
		t.Error("sites left of the cell should be free")
	}
	if o.FreeRun(0, 1, 8, 12) {
		t.Error("run crossing the cell should not be free")
	}
	if o.FreeRun(-1, 1, 0, 1) || o.FreeRun(0, 1, 95, 105) {
		t.Error("out-of-range runs must be rejected")
	}
}

// Property-style randomized test: place random non-overlapping cells via the
// occupancy grid, then CheckLegal must agree the placement is legal.
func TestOccupancyAndCheckerAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		d := smallDesign()
		o := NewOccupancy(d)
		for i := 0; i < 60; i++ {
			span := 1 + rng.Intn(2)
			c := d.AddCell("c", float64(1+rng.Intn(6)), float64(span)*d.RowHeight, VSS)
			placed := false
			for try := 0; try < 30 && !placed; try++ {
				row := rng.Intn(len(d.Rows) - span + 1)
				if c.EvenSpan() && !d.RailCompatible(c, row) {
					continue
				}
				x := float64(rng.Intn(d.Rows[0].NumSites - int(c.W)))
				y := d.RowY(row)
				if o.Fits(c, x, y) {
					if err := o.Place(c, x, y); err != nil {
						t.Fatal(err)
					}
					place(c, x, y)
					placed = true
				}
			}
			if !placed {
				// Park it legally at a guaranteed-free spot or drop it.
				d.Cells = d.Cells[:len(d.Cells)-1]
			}
		}
		rep := CheckLegal(d)
		if !rep.Legal() {
			t.Fatalf("trial %d: occupancy-based placement flagged illegal: %v", trial, rep)
		}
	}
}
