package design

import (
	"math/rand"
	"testing"
)

// TestOccupancyPlaceRemoveInverse: any sequence of successful Places
// followed by Removes in any order returns the grid to empty.
func TestOccupancyPlaceRemoveInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	for trial := 0; trial < 30; trial++ {
		d := NewDesign(Config{NumRows: 6, NumSites: 40, RowHeight: 10, SiteW: 1})
		o := NewOccupancy(d)
		type placement struct {
			c    *Cell
			x, y float64
		}
		var placed []placement
		for i := 0; i < 25; i++ {
			span := 1 + rng.Intn(3)
			c := d.AddCell("c", float64(1+rng.Intn(5)), float64(span)*10, VSS)
			x := float64(rng.Intn(36))
			row := rng.Intn(len(d.Rows) - span + 1)
			y := d.RowY(row)
			if o.Fits(c, x, y) {
				if err := o.Place(c, x, y); err != nil {
					t.Fatalf("Fits true but Place failed: %v", err)
				}
				placed = append(placed, placement{c, x, y})
			}
		}
		// Remove in random order.
		rng.Shuffle(len(placed), func(i, j int) { placed[i], placed[j] = placed[j], placed[i] })
		for _, p := range placed {
			o.Remove(p.c, p.x, p.y)
		}
		if used := o.UsedSites(); used != 0 {
			t.Fatalf("trial %d: %d sites still used after removing everything", trial, used)
		}
	}
}

// TestOccupancyUsedSitesMatchesArea: after successful placements, the used
// site count equals the total placed cell area in sites.
func TestOccupancyUsedSitesMatchesArea(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	d := NewDesign(Config{NumRows: 4, NumSites: 50, RowHeight: 10, SiteW: 1})
	o := NewOccupancy(d)
	wantSites := 0
	for i := 0; i < 40; i++ {
		span := 1 + rng.Intn(2)
		w := 1 + rng.Intn(6)
		c := d.AddCell("c", float64(w), float64(span)*10, VSS)
		x := float64(rng.Intn(50 - w))
		row := rng.Intn(len(d.Rows) - span + 1)
		if o.Fits(c, x, d.RowY(row)) {
			if err := o.Place(c, x, d.RowY(row)); err != nil {
				t.Fatal(err)
			}
			wantSites += w * span
		}
	}
	if got := o.UsedSites(); got != wantSites {
		t.Fatalf("UsedSites = %d, want %d", got, wantSites)
	}
}

// TestOccupancyFitsConsistentWithPlace: Fits must predict Place success
// exactly.
func TestOccupancyFitsConsistentWithPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(257))
	d := NewDesign(Config{NumRows: 3, NumSites: 30, RowHeight: 10, SiteW: 1})
	o := NewOccupancy(d)
	for i := 0; i < 120; i++ {
		c := d.AddCell("c", float64(1+rng.Intn(8)), 10, VSS)
		x := float64(rng.Intn(40)) - 4 // sometimes out of range
		y := d.RowY(rng.Intn(3))
		fits := o.Fits(c, x, y)
		err := o.Place(c, x, y)
		if fits != (err == nil) {
			t.Fatalf("Fits=%v but Place err=%v at (%g, %g)", fits, err, x, y)
		}
	}
}
