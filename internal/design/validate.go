package design

import (
	"math"

	"mclg/internal/mclgerr"
)

// NewDesignChecked is NewDesign returning a typed error instead of panicking
// on a malformed configuration. User-input-reachable paths (Bookshelf
// loading, CLI flags) must use this variant; NewDesign remains for
// programmatic construction with known-good configs.
func NewDesignChecked(cfg Config) (*Design, error) {
	switch {
	case !isFinite(cfg.RowHeight) || cfg.RowHeight <= 0:
		return nil, mclgerr.Invalidf("design %q: row height %g must be positive and finite", cfg.Name, cfg.RowHeight)
	case !isFinite(cfg.SiteW) || cfg.SiteW <= 0:
		return nil, mclgerr.Invalidf("design %q: site width %g must be positive and finite", cfg.Name, cfg.SiteW)
	case cfg.NumRows <= 0:
		return nil, mclgerr.Invalidf("design %q: NumRows %d must be positive", cfg.Name, cfg.NumRows)
	case cfg.NumSites <= 0:
		return nil, mclgerr.Invalidf("design %q: NumSites %d must be positive", cfg.Name, cfg.NumSites)
	case !isFinite(cfg.OriginX) || !isFinite(cfg.OriginY):
		return nil, mclgerr.Invalidf("design %q: origin (%g, %g) must be finite", cfg.Name, cfg.OriginX, cfg.OriginY)
	}
	return newDesign(cfg), nil
}

// AddCellChecked is AddCell returning a typed error instead of panicking
// when the cell geometry is malformed: non-finite or non-positive
// dimensions, or a height that is not a whole multiple of the row height.
func (d *Design) AddCellChecked(name string, w, h float64, bottomRail RailType) (*Cell, error) {
	if !isFinite(w) || w <= 0 {
		return nil, mclgerr.Invalidf("cell %q: width %g must be positive and finite", name, w)
	}
	if !isFinite(h) || h <= 0 {
		return nil, mclgerr.Invalidf("cell %q: height %g must be positive and finite", name, h)
	}
	span := int(math.Round(h / d.RowHeight))
	if span < 1 || math.Abs(float64(span)*d.RowHeight-h) > 1e-9*d.RowHeight {
		return nil, mclgerr.Invalidf("cell %q: height %g is not a multiple of row height %g", name, h, d.RowHeight)
	}
	return d.addCell(name, w, h, span, bottomRail), nil
}

// AddTerminalChecked adds a fixed cell (terminal/macro) with validated
// geometry. Terminals only block sites, so unlike AddCellChecked their
// height need not be a whole multiple of the row height — real Bookshelf
// benchmarks contain macros of arbitrary height.
func (d *Design) AddTerminalChecked(name string, w, h float64) (*Cell, error) {
	if !isFinite(w) || w <= 0 {
		return nil, mclgerr.Invalidf("terminal %q: width %g must be positive and finite", name, w)
	}
	if !isFinite(h) || h <= 0 {
		return nil, mclgerr.Invalidf("terminal %q: height %g must be positive and finite", name, h)
	}
	span := int(math.Round(h / d.RowHeight))
	if span < 1 {
		span = 1
	}
	c := d.addCell(name, w, h, span, VSS)
	c.Fixed = true
	return c, nil
}

// Validate checks that the design is structurally sound before any solver
// touches it: finite positive geometry, rows that tile the core without
// overlapping, cells with finite coordinates and feasible dimensions, and
// pins that reference existing cells. It returns an ErrInvalidInput-matching
// error naming the first offending entity, or nil.
//
// Validate deliberately does not check placement legality (overlaps,
// off-site positions) — that is CheckLegal's job on the *output*; Validate
// gates the *input*.
func (d *Design) Validate() error {
	if d == nil {
		return mclgerr.Invalidf("nil design")
	}
	if !isFinite(d.RowHeight) || d.RowHeight <= 0 {
		return mclgerr.Invalidf("design %q: row height %g must be positive and finite", d.Name, d.RowHeight)
	}
	if !isFinite(d.SiteW) || d.SiteW <= 0 {
		return mclgerr.Invalidf("design %q: site width %g must be positive and finite", d.Name, d.SiteW)
	}
	if len(d.Rows) == 0 {
		return mclgerr.Invalidf("design %q: no rows", d.Name)
	}
	if !isFinite(d.Core.Lo.X) || !isFinite(d.Core.Lo.Y) || !isFinite(d.Core.Hi.X) || !isFinite(d.Core.Hi.Y) {
		return mclgerr.Invalidf("design %q: non-finite core %v", d.Name, d.Core)
	}
	for i, r := range d.Rows {
		if !isFinite(r.Y) || !isFinite(r.OriginX) {
			return mclgerr.Invalidf("design %q: row %d has non-finite geometry", d.Name, i)
		}
		if r.Height <= 0 || !isFinite(r.Height) {
			return mclgerr.Invalidf("design %q: row %d height %g must be positive", d.Name, i, r.Height)
		}
		if r.SiteW <= 0 || !isFinite(r.SiteW) {
			return mclgerr.Invalidf("design %q: row %d site width %g must be positive", d.Name, i, r.SiteW)
		}
		if r.NumSites <= 0 {
			return mclgerr.Invalidf("design %q: row %d has %d sites", d.Name, i, r.NumSites)
		}
		// Rows must stack contiguously without overlapping: the whole model
		// (RowAt, RowY, the occupancy grid) indexes rows arithmetically.
		wantY := d.Core.Lo.Y + float64(i)*d.RowHeight
		if math.Abs(r.Y-wantY) > 1e-6*d.RowHeight {
			return mclgerr.Invalidf("design %q: row %d at y=%g overlaps or gaps (want y=%g)", d.Name, i, r.Y, wantY)
		}
	}
	coreW := d.Core.Hi.X - d.Core.Lo.X
	for i, c := range d.Cells {
		if c == nil {
			return mclgerr.Invalidf("design %q: nil cell entry", d.Name)
		}
		// Every index (CellVars, the occupancy grid, net pins) addresses
		// cells by ID; a duplicated or shifted entry corrupts them all.
		if c.ID != i {
			return mclgerr.Invalidf("design %q: cell at index %d has ID %d (duplicated or reordered entry)",
				d.Name, i, c.ID)
		}
		if !isFinite(c.W) || c.W <= 0 {
			return mclgerr.Invalidf("cell %d (%q): width %g must be positive and finite", c.ID, c.Name, c.W)
		}
		if !isFinite(c.H) || c.H <= 0 {
			return mclgerr.Invalidf("cell %d (%q): height %g must be positive and finite", c.ID, c.Name, c.H)
		}
		if !isFinite(c.GX) || !isFinite(c.GY) || !isFinite(c.X) || !isFinite(c.Y) {
			return mclgerr.Invalidf("cell %d (%q): non-finite position (gx=%g gy=%g x=%g y=%g)",
				c.ID, c.Name, c.GX, c.GY, c.X, c.Y)
		}
		if c.Fixed {
			continue // fixed geometry is taken as-is; it only blocks sites
		}
		if c.RowSpan < 1 {
			return mclgerr.Invalidf("cell %d (%q): row span %d must be at least 1", c.ID, c.Name, c.RowSpan)
		}
		if math.Abs(float64(c.RowSpan)*d.RowHeight-c.H) > 1e-6*d.RowHeight {
			return mclgerr.Invalidf("cell %d (%q): height %g is not %d rows of height %g",
				c.ID, c.Name, c.H, c.RowSpan, d.RowHeight)
		}
		if c.RowSpan > len(d.Rows) {
			return mclgerr.Invalidf("cell %d (%q): spans %d rows but the core has %d",
				c.ID, c.Name, c.RowSpan, len(d.Rows))
		}
		if c.W > coreW+1e-9 {
			return mclgerr.Invalidf("cell %d (%q): width %g exceeds core width %g", c.ID, c.Name, c.W, coreW)
		}
	}
	for ni := range d.Nets {
		n := &d.Nets[ni]
		if !isFinite(n.Weight) || n.Weight < 0 {
			return mclgerr.Invalidf("net %d (%q): weight %g must be finite and non-negative", ni, n.Name, n.Weight)
		}
		for pi, p := range n.Pins {
			if p.CellID >= len(d.Cells) {
				return mclgerr.Invalidf("net %d (%q) pin %d: references cell %d of %d",
					ni, n.Name, pi, p.CellID, len(d.Cells))
			}
			if !isFinite(p.DX) || !isFinite(p.DY) {
				return mclgerr.Invalidf("net %d (%q) pin %d: non-finite offset (%g, %g)", ni, n.Name, pi, p.DX, p.DY)
			}
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
