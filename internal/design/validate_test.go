package design

import (
	"errors"
	"math"
	"testing"

	"mclg/internal/mclgerr"
)

func validDesign() *Design {
	d := NewDesign(Config{Name: "v", NumRows: 4, NumSites: 50, RowHeight: 10, SiteW: 1})
	c := d.AddCell("a", 4, 10, VSS)
	c.GX, c.GY, c.X, c.Y = 3, 0, 3, 0
	return d
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := validDesign().Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(d *Design)
	}{
		{"nan-gx", func(d *Design) { d.Cells[0].GX = math.NaN() }},
		{"inf-gy", func(d *Design) { d.Cells[0].GY = math.Inf(1) }},
		{"nan-x", func(d *Design) { d.Cells[0].X = math.NaN() }},
		{"zero-width", func(d *Design) { d.Cells[0].W = 0 }},
		{"negative-width", func(d *Design) { d.Cells[0].W = -3 }},
		{"nan-width", func(d *Design) { d.Cells[0].W = math.NaN() }},
		{"zero-height", func(d *Design) { d.Cells[0].H = 0 }},
		{"height-span-mismatch", func(d *Design) { d.Cells[0].H = 15 }},
		{"zero-span", func(d *Design) { d.Cells[0].RowSpan = 0 }},
		{"span-taller-than-core", func(d *Design) { d.Cells[0].RowSpan = 9; d.Cells[0].H = 90 }},
		{"wider-than-core", func(d *Design) { d.Cells[0].W = 1000 }},
		{"overlapping-rows", func(d *Design) { d.Rows[2].Y = d.Rows[1].Y }},
		{"row-zero-sites", func(d *Design) { d.Rows[1].NumSites = 0 }},
		{"row-bad-sitew", func(d *Design) { d.Rows[1].SiteW = -1 }},
		{"row-bad-height", func(d *Design) { d.Rows[3].Height = 0 }},
		{"design-bad-rowheight", func(d *Design) { d.RowHeight = math.Inf(1) }},
		{"design-bad-sitew", func(d *Design) { d.SiteW = 0 }},
		{"no-rows", func(d *Design) { d.Rows = nil }},
		{"pin-out-of-range", func(d *Design) {
			d.Nets = append(d.Nets, Net{Name: "n", Pins: []Pin{{CellID: 99}}})
		}},
		{"pin-nan-offset", func(d *Design) {
			d.Nets = append(d.Nets, Net{Name: "n", Pins: []Pin{{CellID: 0, DX: math.NaN()}}})
		}},
		{"net-negative-weight", func(d *Design) {
			d.Nets = append(d.Nets, Net{Name: "n", Weight: -2})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validDesign()
			tc.corrupt(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("corrupted design accepted")
			}
			if !errors.Is(err, mclgerr.ErrInvalidInput) {
				t.Fatalf("error %v does not match ErrInvalidInput", err)
			}
		})
	}
}

func TestValidateNilDesign(t *testing.T) {
	var d *Design
	if err := d.Validate(); !errors.Is(err, mclgerr.ErrInvalidInput) {
		t.Fatalf("nil design: got %v", err)
	}
}

func TestValidateIgnoresFixedOddGeometry(t *testing.T) {
	d := validDesign()
	// A fixed macro with a height that is not a row multiple is fine: it
	// only blocks sites.
	d.Cells = append(d.Cells, &Cell{ID: 1, Name: "macro", W: 7, H: 17, Fixed: true})
	if err := d.Validate(); err != nil {
		t.Fatalf("fixed macro rejected: %v", err)
	}
}

func TestNewDesignChecked(t *testing.T) {
	bad := []Config{
		{NumRows: 0, NumSites: 10, RowHeight: 10, SiteW: 1},
		{NumRows: 2, NumSites: 0, RowHeight: 10, SiteW: 1},
		{NumRows: 2, NumSites: 10, RowHeight: 0, SiteW: 1},
		{NumRows: 2, NumSites: 10, RowHeight: 10, SiteW: -1},
		{NumRows: 2, NumSites: 10, RowHeight: math.NaN(), SiteW: 1},
		{NumRows: 2, NumSites: 10, RowHeight: 10, SiteW: 1, OriginX: math.Inf(-1)},
	}
	for i, cfg := range bad {
		if _, err := NewDesignChecked(cfg); !errors.Is(err, mclgerr.ErrInvalidInput) {
			t.Errorf("config %d: got %v, want ErrInvalidInput", i, err)
		}
	}
	if _, err := NewDesignChecked(Config{NumRows: 2, NumSites: 10, RowHeight: 10, SiteW: 1}); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestAddCellChecked(t *testing.T) {
	d := NewDesign(Config{NumRows: 4, NumSites: 50, RowHeight: 10, SiteW: 1})
	bad := []struct {
		name string
		w, h float64
	}{
		{"zero-w", 0, 10},
		{"neg-w", -1, 10},
		{"nan-w", math.NaN(), 10},
		{"zero-h", 4, 0},
		{"neg-h", 4, -10},
		{"inf-h", 4, math.Inf(1)},
		{"off-multiple", 4, 15},
	}
	for _, tc := range bad {
		if _, err := d.AddCellChecked(tc.name, tc.w, tc.h, VSS); !errors.Is(err, mclgerr.ErrInvalidInput) {
			t.Errorf("%s: got %v, want ErrInvalidInput", tc.name, err)
		}
	}
	if len(d.Cells) != 0 {
		t.Fatalf("rejected cells were appended: %d", len(d.Cells))
	}
	c, err := d.AddCellChecked("ok", 4, 20, VDD)
	if err != nil || c.RowSpan != 2 {
		t.Fatalf("good cell rejected: %v (span %d)", err, c.RowSpan)
	}
}
