package design

import (
	"fmt"
	"math"

	"mclg/internal/geom"
)

// Row is a placement row. All rows in a design share the same height and
// site width; rows are stacked contiguously from the bottom of the core.
type Row struct {
	Index    int
	Y        float64  // bottom edge
	Height   float64  // row height
	OriginX  float64  // x of the first site
	SiteW    float64  // placement site width
	NumSites int      // number of sites in the row
	Rail     RailType // rail type along the row's bottom boundary
}

// XMax returns the x coordinate just past the last site.
func (r *Row) XMax() float64 { return r.OriginX + float64(r.NumSites)*r.SiteW }

// Span returns the row's horizontal extent.
func (r *Row) Span() geom.Interval { return geom.Interval{Lo: r.OriginX, Hi: r.XMax()} }

// Design is a complete placement instance.
type Design struct {
	Name  string
	Core  geom.Rect
	Rows  []Row
	Cells []*Cell
	Nets  []Net

	RowHeight float64
	SiteW     float64
}

// Config parameterizes NewDesign.
type Config struct {
	Name      string
	NumRows   int
	NumSites  int
	RowHeight float64
	SiteW     float64
	// BottomRail is the rail type at the bottom boundary of row 0.
	// Rails alternate from there: VSS, VDD, VSS, ... by default.
	BottomRail RailType
	OriginX    float64
	OriginY    float64
}

// NewDesign builds an empty design with the given row/site structure. It
// panics on malformed configs and is intended for programmatic construction;
// paths fed by user input (file loaders, CLI flags) must use
// NewDesignChecked, which returns a typed error instead.
func NewDesign(cfg Config) *Design {
	d, err := NewDesignChecked(cfg)
	if err != nil {
		panic(fmt.Sprintf("design: invalid config %+v: %v", cfg, err))
	}
	return d
}

// newDesign builds the design from an already-validated config.
func newDesign(cfg Config) *Design {
	d := &Design{
		Name:      cfg.Name,
		RowHeight: cfg.RowHeight,
		SiteW:     cfg.SiteW,
		Core: geom.NewRect(cfg.OriginX, cfg.OriginY,
			float64(cfg.NumSites)*cfg.SiteW, float64(cfg.NumRows)*cfg.RowHeight),
	}
	rail := cfg.BottomRail
	for i := 0; i < cfg.NumRows; i++ {
		d.Rows = append(d.Rows, Row{
			Index:    i,
			Y:        cfg.OriginY + float64(i)*cfg.RowHeight,
			Height:   cfg.RowHeight,
			OriginX:  cfg.OriginX,
			SiteW:    cfg.SiteW,
			NumSites: cfg.NumSites,
			Rail:     rail,
		})
		rail = rail.Opposite()
	}
	return d
}

// AddCell appends a cell, assigning its ID and row span, and returns it.
// The position fields are left to the caller. It panics on malformed
// geometry; user-input-reachable paths must use AddCellChecked instead.
func (d *Design) AddCell(name string, w, h float64, bottomRail RailType) *Cell {
	c, err := d.AddCellChecked(name, w, h, bottomRail)
	if err != nil {
		panic(fmt.Sprintf("design: %v", err))
	}
	return c
}

// addCell appends a cell with an already-validated span.
func (d *Design) addCell(name string, w, h float64, span int, bottomRail RailType) *Cell {
	c := &Cell{
		ID:         len(d.Cells),
		Name:       name,
		W:          w,
		H:          h,
		RowSpan:    span,
		BottomRail: bottomRail,
	}
	d.Cells = append(d.Cells, c)
	return c
}

// NumMovable returns the number of non-fixed cells.
func (d *Design) NumMovable() int {
	n := 0
	for _, c := range d.Cells {
		if !c.Fixed {
			n++
		}
	}
	return n
}

// Density returns total movable+fixed cell area over core area.
func (d *Design) Density() float64 {
	area := 0.0
	for _, c := range d.Cells {
		area += c.Area()
	}
	ca := d.Core.Area()
	if ca == 0 {
		return 0
	}
	return area / ca
}

// RowAt returns the index of the row whose vertical span contains y, or -1.
func (d *Design) RowAt(y float64) int {
	i := int(math.Floor((y - d.Core.Lo.Y) / d.RowHeight))
	if i < 0 || i >= len(d.Rows) {
		return -1
	}
	return i
}

// RowY returns the bottom y coordinate of row index i.
func (d *Design) RowY(i int) float64 { return d.Core.Lo.Y + float64(i)*d.RowHeight }

// SnapX returns x snapped to the nearest site boundary, clamped to the row.
func (d *Design) SnapX(x float64) float64 {
	s := math.Round((x-d.Core.Lo.X)/d.SiteW)*d.SiteW + d.Core.Lo.X
	return geom.Interval{Lo: d.Core.Lo.X, Hi: d.Core.Hi.X}.Clamp(s)
}

// SiteIndex returns the site index for coordinate x (floor), which may be
// out of range; callers clamp as needed.
func (d *Design) SiteIndex(x float64) int {
	return int(math.Round((x - d.Core.Lo.X) / d.SiteW))
}

// RailCompatible reports whether cell c may be placed with its bottom edge
// on row rowIdx. Odd-row-span cells fit any row (flipping fixes a rail
// mismatch); even-row-span cells need the row's bottom rail to match the
// cell's designed bottom rail. The cell must also fit vertically.
func (d *Design) RailCompatible(c *Cell, rowIdx int) bool {
	if rowIdx < 0 || rowIdx+c.RowSpan > len(d.Rows) {
		return false
	}
	if !c.EvenSpan() {
		return true
	}
	return d.Rows[rowIdx].Rail == c.BottomRail
}

// NearestCorrectRow returns the index of the row nearest to y (in geometric
// distance, per the paper's "nearest row which matches the power rail from
// its global y-position") at which cell c may legally start, or -1 if no
// row qualifies. Exact distance ties prefer the lower row.
func (d *Design) NearestCorrectRow(c *Cell, y float64) int {
	base := int(math.Round((y - d.Core.Lo.Y) / d.RowHeight))
	maxStart := len(d.Rows) - c.RowSpan
	if maxStart < 0 {
		return -1
	}
	if base < 0 {
		base = 0
	}
	if base > maxStart {
		base = maxStart
	}
	// Search outward from the nearest geometric row; candidates at the same
	// index delta are compared by |y − rowY|.
	for delta := 0; delta <= len(d.Rows); delta++ {
		best := -1
		bestDist := math.Inf(1)
		for _, r := range [2]int{base - delta, base + delta} {
			if r < 0 || r > maxStart || !d.RailCompatible(c, r) {
				continue
			}
			if dist := math.Abs(y - d.RowY(r)); dist < bestDist {
				best, bestDist = r, dist
			}
			if delta == 0 {
				break // base-delta == base+delta
			}
		}
		if best >= 0 {
			// A row one index further out could still be geometrically
			// closer than the winner on the far side; check it before
			// committing.
			for _, r := range [2]int{base - delta - 1, base + delta + 1} {
				if r < 0 || r > maxStart || !d.RailCompatible(c, r) {
					continue
				}
				if dist := math.Abs(y - d.RowY(r)); dist < bestDist {
					best, bestDist = r, dist
				}
			}
			return best
		}
	}
	return -1
}

// Clone returns a deep copy of the design (cells and nets included) so a
// legalizer can be run without mutating the input.
func (d *Design) Clone() *Design {
	out := &Design{
		Name:      d.Name,
		Core:      d.Core,
		RowHeight: d.RowHeight,
		SiteW:     d.SiteW,
		Rows:      append([]Row(nil), d.Rows...),
		Cells:     make([]*Cell, len(d.Cells)),
		Nets:      make([]Net, len(d.Nets)),
	}
	for i, c := range d.Cells {
		cc := *c
		out.Cells[i] = &cc
	}
	for i, n := range d.Nets {
		out.Nets[i] = Net{Name: n.Name, Weight: n.Weight, Pins: append([]Pin(nil), n.Pins...)}
	}
	return out
}

// ResetToGlobal restores every movable cell to its global-placement position.
func (d *Design) ResetToGlobal() {
	for _, c := range d.Cells {
		if !c.Fixed {
			c.X, c.Y = c.GX, c.GY
			c.Flipped = false
		}
	}
}
