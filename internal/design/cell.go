// Package design models a mixed-cell-height standard-cell placement: the
// chip core, placement rows with alternating VDD/VSS power rails, standard
// cells of one or more row heights, and the netlist connecting them. It also
// provides the site-occupancy grid and the full legality checker that every
// legalizer in this repository is validated against.
package design

import (
	"fmt"

	"mclg/internal/geom"
)

// RailType identifies a power rail.
type RailType int8

const (
	// VSS is the ground rail.
	VSS RailType = iota
	// VDD is the power rail.
	VDD
)

// Opposite returns the other rail type.
func (r RailType) Opposite() RailType {
	if r == VSS {
		return VDD
	}
	return VSS
}

func (r RailType) String() string {
	if r == VSS {
		return "VSS"
	}
	return "VDD"
}

// Cell is a standard cell instance. GX/GY hold the global-placement
// position that legalization tries to honor; X/Y hold the current (possibly
// legalized) position. Both refer to the bottom-left corner.
type Cell struct {
	ID   int
	Name string

	W, H float64 // width and height in database units

	RowSpan int // number of rows the cell occupies (H / row height)

	// BottomRail is the rail type the cell's bottom boundary is designed
	// for. For odd-row-span cells a mismatch is repaired by vertical
	// flipping; for even-row-span cells the bottom boundary must land on a
	// matching rail (Figure 1 of the paper).
	BottomRail RailType

	GX, GY float64 // global placement position
	X, Y   float64 // current position

	Fixed   bool // fixed cells (macros, IO) may not move
	Flipped bool // vertically flipped to match the bottom rail
}

// Bounds returns the cell's current rectangle.
func (c *Cell) Bounds() geom.Rect { return geom.NewRect(c.X, c.Y, c.W, c.H) }

// GlobalBounds returns the cell's global-placement rectangle.
func (c *Cell) GlobalBounds() geom.Rect { return geom.NewRect(c.GX, c.GY, c.W, c.H) }

// Area returns W*H.
func (c *Cell) Area() float64 { return c.W * c.H }

// Displacement returns the Euclidean distance between the current and
// global-placement positions.
func (c *Cell) Displacement() float64 {
	return geom.Point{X: c.X, Y: c.Y}.Dist(geom.Point{X: c.GX, Y: c.GY})
}

// DisplacementSq returns the squared displacement, the quantity the paper's
// objective (1) sums over all cells.
func (c *Cell) DisplacementSq() float64 {
	return geom.Point{X: c.X, Y: c.Y}.DistSq(geom.Point{X: c.GX, Y: c.GY})
}

// EvenSpan reports whether the cell occupies an even number of rows, which
// triggers the power-rail alignment constraint.
func (c *Cell) EvenSpan() bool { return c.RowSpan%2 == 0 }

func (c *Cell) String() string {
	return fmt.Sprintf("%s#%d[%gx%g span %d @ (%g,%g)]", c.Name, c.ID, c.W, c.H, c.RowSpan, c.X, c.Y)
}

// Pin is a netlist pin: an offset from the owning cell's bottom-left corner,
// or an absolute position when CellID < 0 (a fixed pin such as an IO pad).
type Pin struct {
	CellID int // index into Design.Cells, or -1 for a fixed pin
	DX, DY float64
}

// Net is a collection of electrically connected pins. Weight scales the
// net's contribution to weighted wirelength metrics; 0 is treated as 1.
type Net struct {
	Name   string
	Weight float64
	Pins   []Pin
}
