package design

import (
	"fmt"
	"math"
	"sort"
)

// Violation describes a single legality failure.
type Violation struct {
	Kind  string
	Cells []int // IDs of the cells involved
	Msg   string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Kind, v.Msg) }

// Violation kinds reported by CheckLegal.
const (
	VOutsideCore  = "outside-core"
	VOffSite      = "off-site"
	VOffRow       = "off-row"
	VRailMismatch = "rail-mismatch"
	VOverlap      = "overlap"
)

// LegalityReport aggregates all violations of a placement.
type LegalityReport struct {
	Violations []Violation
}

// Legal reports whether the placement had no violations.
func (r *LegalityReport) Legal() bool { return len(r.Violations) == 0 }

// Count returns the number of violations of the given kind.
func (r *LegalityReport) Count(kind string) int {
	n := 0
	for _, v := range r.Violations {
		if v.Kind == kind {
			n++
		}
	}
	return n
}

func (r *LegalityReport) String() string {
	if r.Legal() {
		return "legal"
	}
	return fmt.Sprintf("%d violations (%d outside-core, %d off-site, %d off-row, %d rail, %d overlap)",
		len(r.Violations), r.Count(VOutsideCore), r.Count(VOffSite), r.Count(VOffRow),
		r.Count(VRailMismatch), r.Count(VOverlap))
}

// alignTol returns the scale-aware tolerance for site/row alignment checks.
// The quotient (coord − origin) / unit carries round-off proportional to the
// magnitude of the operands, so for cores far from the coordinate origin a
// fixed absolute tolerance produces false off-site/off-row violations. The
// tolerance scales with the number of representable units of round-off at
// the operands' magnitude, and is capped at a tenth of a unit so it can
// never absorb a genuinely misaligned position.
func alignTol(coord, origin, unit float64) float64 {
	const eps = 1e-6
	scale := math.Max(math.Abs(coord), math.Abs(origin)) / unit
	tol := eps * math.Max(1, scale*1e-6)
	return math.Min(tol, 0.1)
}

// CheckLegal validates the full set of legalization constraints from the
// paper's problem statement (Section 2.1):
//
//  1. cells inside the chip core,
//  2. cells at placement sites on rows,
//  3. no two cells overlapping,
//  4. even-row-span cells aligned to a matching power rail.
//
// Fixed cells are exempt from the alignment constraints, and overlaps
// between two fixed cells are not reported either: pre-existing blockage
// overlaps are a property of the input, not of the legalization result, and
// no legalizer can repair them. A fixed cell overlapping a movable cell is
// still a violation.
func CheckLegal(d *Design) *LegalityReport {
	rep := &LegalityReport{}
	const eps = 1e-6
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		b := c.Bounds()
		if b.Lo.X < d.Core.Lo.X-eps || b.Hi.X > d.Core.Hi.X+eps ||
			b.Lo.Y < d.Core.Lo.Y-eps || b.Hi.Y > d.Core.Hi.Y+eps {
			rep.Violations = append(rep.Violations, Violation{
				Kind: VOutsideCore, Cells: []int{c.ID},
				Msg: fmt.Sprintf("cell %d at %v outside core %v", c.ID, b, d.Core),
			})
		}
		// Site alignment, tolerance scaled for far-from-origin cores.
		fs := (c.X - d.Core.Lo.X) / d.SiteW
		if math.Abs(fs-math.Round(fs)) > alignTol(c.X, d.Core.Lo.X, d.SiteW) {
			rep.Violations = append(rep.Violations, Violation{
				Kind: VOffSite, Cells: []int{c.ID},
				Msg: fmt.Sprintf("cell %d x=%g not on site grid (site width %g)", c.ID, c.X, d.SiteW),
			})
		}
		// Row alignment.
		fr := (c.Y - d.Core.Lo.Y) / d.RowHeight
		row := int(math.Round(fr))
		if math.Abs(fr-float64(row)) > alignTol(c.Y, d.Core.Lo.Y, d.RowHeight) || row < 0 || row+c.RowSpan > len(d.Rows) {
			rep.Violations = append(rep.Violations, Violation{
				Kind: VOffRow, Cells: []int{c.ID},
				Msg: fmt.Sprintf("cell %d y=%g not on a row boundary", c.ID, c.Y),
			})
			continue // rail check meaningless without a row
		}
		if c.EvenSpan() && d.Rows[row].Rail != c.BottomRail {
			rep.Violations = append(rep.Violations, Violation{
				Kind: VRailMismatch, Cells: []int{c.ID},
				Msg: fmt.Sprintf("cell %d (span %d, bottom %v) on row %d with rail %v",
					c.ID, c.RowSpan, c.BottomRail, row, d.Rows[row].Rail),
			})
		}
	}
	rep.Violations = append(rep.Violations, findOverlaps(d)...)
	return rep
}

// findOverlaps detects pairwise overlaps with a sweep over x-sorted cells,
// O(n log n + k) for k overlaps in typical row-structured placements.
// Overlaps between two fixed cells are skipped (see CheckLegal). The sweep
// order breaks x ties by cell ID, so the violation list is identical from
// run to run — audit certificates hash it and must get a stable ordering.
func findOverlaps(d *Design) []Violation {
	idx := make([]int, len(d.Cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := d.Cells[idx[a]], d.Cells[idx[b]]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return ca.ID < cb.ID
	})
	var out []Violation
	// Active window: cells whose x-span may still intersect the sweep line.
	var active []int
	for _, i := range idx {
		ci := d.Cells[i]
		bi := ci.Bounds()
		keep := active[:0]
		for _, j := range active {
			cj := d.Cells[j]
			if cj.X+cj.W > bi.Lo.X {
				keep = append(keep, j)
				if ci.Fixed && cj.Fixed {
					continue // input blockage overlap, not a legalization failure
				}
				if bi.Overlaps(cj.Bounds()) {
					a, b := ci.ID, cj.ID
					if a > b {
						a, b = b, a
					}
					out = append(out, Violation{
						Kind: VOverlap, Cells: []int{a, b},
						Msg: fmt.Sprintf("cells %d and %d overlap (area %g)", a, b, bi.Intersect(cj.Bounds()).Area()),
					})
				}
			}
		}
		active = append(keep, i)
	}
	return out
}
