package design

import "math"

// NearestFree searches for the free on-grid position nearest to (tx, ty)
// in squared-Euclidean distance where cell c fits: rail-compatible start
// rows are scanned outward by |Δy|, and within each row sites are scanned
// outward from the snapped target, pruned once the row's vertical distance
// alone exceeds the best cost found. Returns ok == false when no free run
// of the required width exists anywhere.
func NearestFree(d *Design, occ *Occupancy, c *Cell, tx, ty float64) (x, y float64, ok bool) {
	bestCost := math.Inf(1)
	var bestX, bestY float64
	found := false

	baseRow := d.RowAt(ty + d.RowHeight/2)
	maxStart := len(d.Rows) - c.RowSpan
	if maxStart < 0 {
		return 0, 0, false
	}
	if baseRow < 0 {
		if ty < d.Core.Lo.Y {
			baseRow = 0
		} else {
			baseRow = maxStart
		}
	}
	if baseRow > maxStart {
		baseRow = maxStart
	}
	widthSites := int(math.Ceil(c.W/d.SiteW - 1e-9))

	for delta := 0; delta <= len(d.Rows); delta++ {
		progressed := false
		for _, row := range [2]int{baseRow - delta, baseRow + delta} {
			if row < 0 || row > maxStart {
				continue
			}
			progressed = true
			if !d.RailCompatible(c, row) {
				continue
			}
			y := d.RowY(row)
			dy := y - ty
			if dy*dy >= bestCost {
				continue
			}
			if x, ok := scanRowForRun(d, occ, c, row, tx, bestCost-dy*dy, widthSites); ok {
				dx := x - tx
				if cost := dx*dx + dy*dy; cost < bestCost {
					bestCost, bestX, bestY, found = cost, x, y, true
				}
			}
			if delta == 0 {
				break
			}
		}
		if !progressed && delta > 0 {
			break
		}
		if found {
			dy := float64(delta) * d.RowHeight
			if dy*dy > bestCost {
				break
			}
		}
	}
	return bestX, bestY, found
}

// scanRowForRun finds the free run of widthSites sites starting at row
// whose left edge is nearest to tx, with squared horizontal distance below
// maxCostSq. The run must be free in all of the cell's spanned rows.
func scanRowForRun(d *Design, occ *Occupancy, c *Cell, row int, tx float64, maxCostSq float64, widthSites int) (float64, bool) {
	r := &d.Rows[row]
	target := int(math.Round((tx - r.OriginX) / r.SiteW))
	maxStartSite := r.NumSites - widthSites
	if maxStartSite < 0 {
		return 0, false
	}
	if target < 0 {
		target = 0
	}
	if target > maxStartSite {
		target = maxStartSite
	}
	r0, r1 := row, row+c.RowSpan
	check := func(s int) bool {
		return occ.FreeRun(r0, r1, s, s+widthSites)
	}
	for delta := 0; ; delta++ {
		dx := float64(delta) * r.SiteW
		if dx*dx >= maxCostSq {
			return 0, false
		}
		if s := target - delta; s >= 0 && check(s) {
			return r.OriginX + float64(s)*r.SiteW, true
		}
		if delta > 0 {
			if s := target + delta; s <= maxStartSite && check(s) {
				return r.OriginX + float64(s)*r.SiteW, true
			}
		}
		if target-delta < 0 && target+delta > maxStartSite {
			return 0, false
		}
	}
}
