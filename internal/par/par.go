// Package par provides the deterministic parallel-for primitives the
// legalizer hot paths share: fixed-grain chunked loops, ordered reductions,
// and a priority race for the resilient cascade.
//
// The contract every helper obeys is that the result is a pure function of
// the input and the chunking — never of the worker count or of scheduling
// order. Chunk boundaries depend only on (n, grain); each chunk writes a
// disjoint region or produces a partial that is combined in chunk order.
// Running with 1 worker, 8 workers, or GOMAXPROCS workers therefore yields
// bit-identical floating-point results, which is what lets the regression
// suite pin one set of golden metrics for every worker count.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob to a concrete worker count: n <= 0 selects
// GOMAXPROCS (use every core), any positive n is taken literally (1 = run
// serial on the calling goroutine).
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Default grain sizes for the legalizer kernels. Vector ops are memory-bound
// streams, so chunks are large; sparse rows and solver blocks do more work
// per element, so chunks are smaller. Grains are fixed constants — never
// derived from the worker count — to keep chunk boundaries, and therefore
// all floating-point partials, independent of parallelism.
const (
	// GrainVec is the chunk size for elementwise vector kernels.
	GrainVec = 4096
	// GrainRows is the chunk size for per-row sparse kernels (SpMV rows,
	// tridiagonal segments, placement rows).
	GrainRows = 256
	// GrainCells is the chunk size for per-cell loops (block solves, row
	// assignment, snapping).
	GrainCells = 512
)

// For runs fn over the index range [0, n) partitioned into fixed contiguous
// chunks of size grain, using at most `workers` goroutines (0 = GOMAXPROCS).
// fn(lo, hi) must only write state owned by its chunk. When the work fits in
// one chunk or workers resolves to 1, fn runs on the calling goroutine with
// the same chunk boundaries. Panics in fn propagate to the caller.
func For(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Resolve(workers)
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += grain {
			fn(lo, minInt(lo+grain, n))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicVal any
	havePanic := false
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !havePanic {
						havePanic, panicVal = true, r
					}
					panicMu.Unlock()
				}
			}()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				fn(lo, minInt(lo+grain, n))
			}
		}()
	}
	wg.Wait()
	if haveP := func() bool { panicMu.Lock(); defer panicMu.Unlock(); return havePanic }(); haveP {
		panic(panicVal)
	}
}

// ForContext is For with cooperative cancellation: workers stop picking up
// new chunks once ctx is done and the context error is returned. Chunks
// already started always complete, so partially written outputs cover a
// prefix-closed set of chunks; callers treat a non-nil return as "abort the
// whole computation", matching the legalizer's cancellation semantics.
func ForContext(ctx context.Context, workers, n, grain int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if grain < 1 {
		grain = 1
	}
	var canceled atomic.Bool
	For(workers, n, grain, func(lo, hi int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		fn(lo, hi)
	})
	if canceled.Load() || ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// ReduceMax computes the maximum of per-chunk partials over [0, n). Each
// chunk's partial is produced by fn(lo, hi); partials are combined in chunk
// order. Because max is insensitive to combination order this is identical
// to a serial scan for any worker count; the ordered combine additionally
// keeps NaN handling (max keeps the first operand on NaN comparisons
// returning false) reproducible. Returns 0 for n <= 0 — callers whose
// partials can be negative must encode that in fn.
func ReduceMax(workers, n, grain int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	partials := make([]float64, chunks)
	For(workers, n, grain, func(lo, hi int) {
		partials[lo/grain] = fn(lo, hi)
	})
	m := partials[0]
	for _, p := range partials[1:] {
		if p > m {
			m = p
		}
	}
	return m
}

// ReduceMaxOK is ReduceMax for kernels that fuse a validity scan into the
// same loop body: each chunk produces a max partial plus a boolean (typically
// "every value this chunk wrote is finite"). Partials combine in chunk order
// with max, flags combine with AND — both order-insensitive — so the result
// is bit-identical to a serial scan at any worker count. Returns (0, true)
// for n <= 0.
func ReduceMaxOK(workers, n, grain int, fn func(lo, hi int) (float64, bool)) (float64, bool) {
	if n <= 0 {
		return 0, true
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	partials := make([]float64, chunks)
	oks := make([]bool, chunks)
	For(workers, n, grain, func(lo, hi int) {
		partials[lo/grain], oks[lo/grain] = fn(lo, hi)
	})
	m, ok := partials[0], oks[0]
	for c := 1; c < chunks; c++ {
		if partials[c] > m {
			m = partials[c]
		}
		ok = ok && oks[c]
	}
	return m, ok
}

// ReduceErr runs fn over fixed chunks and returns the error produced by the
// lowest-indexed chunk (the same error a serial left-to-right scan would
// surface first), or nil. fn should stop at its first error so the reported
// error is the lowest-indexed failure within the chunk too.
func ReduceErr(workers, n, grain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	errs := make([]error, chunks)
	For(workers, n, grain, func(lo, hi int) {
		errs[lo/grain] = fn(lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
