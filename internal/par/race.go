package par

import (
	"context"
	"sync"

	"mclg/internal/mclgerr"
)

// RaceResult carries one task's outcome from Race.
type RaceResult[T any] struct {
	Value T
	Err   error
	// Ran reports whether the task actually executed; tasks canceled before
	// starting (because a higher-priority task already won) have Ran false.
	Ran bool
}

// Race runs tasks concurrently (bounded by workers, 0 = GOMAXPROCS) and
// returns the index of the winning task: the LOWEST-indexed task that
// returns a nil error. Priority, not completion time, selects the winner, so
// the outcome is deterministic whenever each task is individually
// deterministic — a slow high-priority success always beats a fast
// low-priority one, exactly as if the tasks had run sequentially and the
// sequence had stopped at the first success.
//
// Once a winner is known, the contexts of all lower-priority tasks are
// canceled; tasks that never started are marked Ran == false. The full
// result slice is returned for attempt tracing. If no task succeeds the
// returned index is -1. A canceled parent ctx cancels everything and is
// reported through each task's error.
//
// Race is panic-safe: a task that panics is recovered into an
// mclgerr.ErrPanic-matching error on its result slot, its completion is
// still signalled, and every spawned worker goroutine exits before Race
// returns — a panicking rung can never deadlock the race or leak workers.
func Race[T any](ctx context.Context, workers int, tasks []func(ctx context.Context) (T, error)) (int, []RaceResult[T]) {
	n := len(tasks)
	results := make([]RaceResult[T], n)
	if n == 0 {
		return -1, results
	}

	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := range tasks {
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	w := Resolve(workers)
	if w > n {
		w = n
	}
	var nextIdx int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := nextIdx
				nextIdx++
				mu.Unlock()
				if i >= n {
					return
				}
				runRaceTask(ctxs[i], tasks[i], &results[i], done[i])
			}
		}()
	}

	// Await results in priority order; first success cancels the rest.
	winner := -1
	for i := 0; i < n; i++ {
		<-done[i]
		if results[i].Err == nil && results[i].Ran {
			winner = i
			for j := i + 1; j < n; j++ {
				cancels[j]()
			}
			break
		}
	}
	wg.Wait()
	return winner, results
}

// runRaceTask executes one race task with panic containment. The done
// channel is closed on every path — normal return, skip, or panic — so the
// priority loop in Race can never block on a slot whose task blew up.
func runRaceTask[T any](ctx context.Context, task func(ctx context.Context) (T, error), res *RaceResult[T], done chan struct{}) {
	defer close(done)
	defer func() {
		if r := recover(); r != nil {
			res.Err = mclgerr.Panicked(r)
			res.Ran = true
		}
	}()
	if ctx.Err() != nil {
		res.Err = ctx.Err()
		return
	}
	v, err := task(ctx)
	res.Value, res.Err, res.Ran = v, err, true
}
