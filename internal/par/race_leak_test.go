package par

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mclg/internal/mclgerr"
)

// leakCheck returns a function that fails the test if the goroutine count
// has not returned to (near) its starting value. It polls with a deadline
// because runtime bookkeeping for exiting goroutines is asynchronous.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.Gosched()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestRacePanickingTaskRecovered pins the panic containment contract: a
// panicking task yields an ErrPanic-matching result, the race still selects
// the healthy winner, and no worker goroutine leaks or deadlocks.
func TestRacePanickingTaskRecovered(t *testing.T) {
	check := leakCheck(t)
	tasks := []func(ctx context.Context) (int, error){
		func(ctx context.Context) (int, error) { panic("rung blew up") },
		func(ctx context.Context) (int, error) { return 42, nil },
	}
	winner, results := Race(context.Background(), 4, tasks)
	if winner != 1 {
		t.Fatalf("winner = %d, want 1", winner)
	}
	if !errors.Is(results[0].Err, mclgerr.ErrPanic) {
		t.Fatalf("results[0].Err = %v, want ErrPanic", results[0].Err)
	}
	if !results[0].Ran {
		t.Fatalf("panicking task must be marked Ran")
	}
	if results[1].Value != 42 || results[1].Err != nil {
		t.Fatalf("results[1] = %+v, want value 42", results[1])
	}
	check()
}

// TestRaceAllPanic verifies a race where every task panics terminates with
// no winner and typed errors on every slot.
func TestRaceAllPanic(t *testing.T) {
	check := leakCheck(t)
	n := 8
	tasks := make([]func(ctx context.Context) (int, error), n)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (int, error) { panic(i) }
	}
	winner, results := Race(context.Background(), 3, tasks)
	if winner != -1 {
		t.Fatalf("winner = %d, want -1", winner)
	}
	for i, r := range results {
		if !errors.Is(r.Err, mclgerr.ErrPanic) {
			t.Fatalf("results[%d].Err = %v, want ErrPanic", i, r.Err)
		}
	}
	check()
}

// TestRaceLosersObserveCancellationPromptly pins the leak-freedom half of
// the satellite: when a high-priority task wins, slower losing tasks that
// block on their context unblock promptly and every goroutine exits before
// Race returns.
func TestRaceLosersObserveCancellationPromptly(t *testing.T) {
	check := leakCheck(t)
	started := make(chan struct{}, 1)
	tasks := []func(ctx context.Context) (int, error){
		func(ctx context.Context) (int, error) {
			// Don't win until the straggler below is actually blocked, so
			// the test exercises cancellation of a running loser.
			select {
			case <-started:
			case <-time.After(2 * time.Second):
			}
			return 1, nil
		},
		func(ctx context.Context) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			// Blocks forever unless canceled.
			<-ctx.Done()
			return 0, ctx.Err()
		},
	}
	t0 := time.Now()
	winner, results := Race(context.Background(), 2, tasks)
	if winner != 0 {
		t.Fatalf("winner = %d, want 0", winner)
	}
	if results[1].Err == nil {
		t.Fatalf("losing straggler should report its cancellation")
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("race took %v; losing task did not observe cancellation promptly", elapsed)
	}
	check()
}
