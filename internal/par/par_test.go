package par

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if Resolve(1) != 1 || Resolve(7) != 7 {
		t.Fatal("positive workers must pass through")
	}
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Fatal("non-positive workers must resolve to at least 1")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			for _, grain := range []int{1, 3, 64, 5000} {
				hits := make([]int32, n)
				For(workers, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times",
							workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestForDeterministicFloats is the core contract: a floating-point
// computation with per-chunk outputs is bit-identical at every worker count.
func TestForDeterministicFloats(t *testing.T) {
	const n = 10000
	src := make([]float64, n)
	rng := rand.New(rand.NewSource(42))
	for i := range src {
		src[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5))
	}
	run := func(workers int) []float64 {
		dst := make([]float64, n)
		For(workers, n, GrainVec, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = math.Sqrt(math.Abs(src[i])) * 1.000000001
			}
		})
		return dst
	}
	ref := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: index %d differs: %x vs %x", w, i,
					math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	For(4, 100, 1, func(lo, hi int) {
		if lo == 50 {
			panic("boom")
		}
	})
}

func TestForContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForContext(ctx, 4, 1000, 10, func(lo, hi int) {
		atomic.AddInt32(&ran, 1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if atomic.LoadInt32(&ran) == 100 {
		t.Error("expected cancellation to skip at least the final chunks")
	}
	if err := ForContext(context.Background(), 2, 100, 10, func(lo, hi int) {}); err != nil {
		t.Fatalf("uncanceled run returned %v", err)
	}
}

func TestReduceMaxMatchesSerial(t *testing.T) {
	const n = 5000
	v := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	want := math.Inf(-1)
	for _, x := range v {
		if x > want {
			want = x
		}
	}
	for _, w := range []int{1, 2, 8} {
		got := ReduceMax(w, n, 128, func(lo, hi int) float64 {
			m := math.Inf(-1)
			for i := lo; i < hi; i++ {
				if v[i] > m {
					m = v[i]
				}
			}
			return m
		})
		if got != want {
			t.Fatalf("workers=%d: got %g want %g", w, got, want)
		}
	}
}

func TestReduceErrReturnsLowestChunkError(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		err := ReduceErr(w, 1000, 10, func(lo, hi int) error {
			if lo >= 500 {
				return fmt.Errorf("chunk at %d", lo)
			}
			return nil
		})
		if err == nil || err.Error() != "chunk at 500" {
			t.Fatalf("workers=%d: want lowest-chunk error, got %v", w, err)
		}
		if err := ReduceErr(w, 100, 10, func(lo, hi int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: clean run returned %v", w, err)
		}
	}
}

func TestRacePicksLowestIndexedSuccess(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		// Task 0 fails slowly, task 1 succeeds slowly, task 2 succeeds fast:
		// priority order must still pick task 1 at every worker count.
		tasks := []func(ctx context.Context) (int, error){
			func(ctx context.Context) (int, error) {
				time.Sleep(5 * time.Millisecond)
				return 0, errors.New("task 0 fails")
			},
			func(ctx context.Context) (int, error) {
				time.Sleep(10 * time.Millisecond)
				return 100, nil
			},
			func(ctx context.Context) (int, error) { return 200, nil },
		}
		winner, results := Race(context.Background(), w, tasks)
		if winner != 1 {
			t.Fatalf("workers=%d: winner %d, want 1", w, winner)
		}
		if results[1].Value != 100 {
			t.Fatalf("workers=%d: winner value %d", w, results[1].Value)
		}
		if results[0].Err == nil {
			t.Errorf("workers=%d: task 0 should have failed", w)
		}
	}
}

func TestRaceAllFail(t *testing.T) {
	tasks := []func(ctx context.Context) (int, error){
		func(ctx context.Context) (int, error) { return 0, errors.New("a") },
		func(ctx context.Context) (int, error) { return 0, errors.New("b") },
	}
	winner, results := Race(context.Background(), 4, tasks)
	if winner != -1 {
		t.Fatalf("winner %d, want -1", winner)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("task %d: expected error", i)
		}
	}
}

func TestRaceCancelsLowerPriorityAfterWin(t *testing.T) {
	sawCancel := make(chan struct{}, 1)
	tasks := []func(ctx context.Context) (int, error){
		func(ctx context.Context) (int, error) { return 1, nil },
		func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				sawCancel <- struct{}{}
				return 0, ctx.Err()
			case <-time.After(2 * time.Second):
				return 2, nil
			}
		},
	}
	winner, _ := Race(context.Background(), 2, tasks)
	if winner != 0 {
		t.Fatalf("winner %d, want 0", winner)
	}
	select {
	case <-sawCancel:
	default:
		// Task 1 may not have started at all on a single-proc scheduler —
		// that is also a valid "canceled before start" outcome.
	}
}

func TestRaceParentContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	winner, results := Race(ctx, 2, []func(ctx context.Context) (int, error){
		func(ctx context.Context) (int, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return 7, nil
		},
	})
	if winner != -1 {
		t.Fatalf("winner %d, want -1 under canceled parent", winner)
	}
	if results[0].Err == nil {
		t.Fatal("expected the task to observe cancellation")
	}
}
