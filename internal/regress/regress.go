// Package regress runs the full legalization pipeline on fixed suite
// benchmarks and reduces the outcome to a small set of metrics pinned by
// committed golden values. The fixture serves two purposes: it freezes the
// quality of results (displacement, ΔHPWL, illegal-cell count, MMSIM
// iteration count) so an accidental algorithmic change fails loudly, and it
// proves the determinism contract of the parallel hot path — every worker
// count must reproduce the golden metrics and the exact placement hash.
package regress

import (
	"fmt"
	"hash/fnv"
	"math"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

// Metrics is the golden-pinned summary of one pipeline run. All fields are
// compared exactly: the pipeline is deterministic, so any drift is a real
// behavior change, not noise.
type Metrics struct {
	Cells        int     `json:"cells"`
	Displacement float64 `json:"displacement_sites"`
	DeltaHPWL    float64 `json:"delta_hpwl"`
	Illegal      int     `json:"illegal"`
	Unplaced     int     `json:"unplaced"`
	Iterations   int     `json:"mmsim_iterations"`
	Converged    bool    `json:"converged"`
	Legal        bool    `json:"legal"`
	// PosHash is an FNV-1a digest of every cell's final (x, y, flipped)
	// state, hex-encoded so JSON round-trips it exactly. Matching hashes
	// mean bit-identical placements.
	PosHash string `json:"pos_hash"`
}

// Run generates the named suite benchmark at the given scale, legalizes it
// with the paper-default options and the given worker count, and returns the
// pinned metrics.
func Run(bench string, scale float64, workers int) (*Metrics, error) {
	e, err := gen.FindEntry(bench)
	if err != nil {
		return nil, err
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Workers = workers
	stats, err := core.New(opts).Legalize(d)
	if err != nil {
		return nil, fmt.Errorf("regress: legalizing %s: %w", bench, err)
	}
	disp := metrics.MeasureDisplacement(d)
	return &Metrics{
		Cells:        len(d.Cells),
		Displacement: disp.TotalSites,
		DeltaHPWL:    metrics.DeltaHPWL(d),
		Illegal:      stats.Illegal,
		Unplaced:     stats.Unplaced,
		Iterations:   stats.Iterations,
		Converged:    stats.Converged,
		Legal:        design.CheckLegal(d).Legal(),
		PosHash:      PositionHash(d),
	}, nil
}

// PositionHash digests the placement into a hex FNV-1a 64 string. Negative
// zero is normalized (x + 0 == +0 for x == −0) so the hash compares
// placements by value, not by the sign of exact zeros — the one bit pattern
// the segmented tridiagonal solve is allowed to differ in.
func PositionHash(d *design.Design) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v + 0)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, c := range d.Cells {
		put(c.X)
		put(c.Y)
		if c.Flipped {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
