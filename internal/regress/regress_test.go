package regress

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from the current pipeline output")

// cases are the pinned pipeline runs. Scales are small enough that the whole
// suite stays in test-friendly time while still exercising multi-row cells,
// both MMSIM phases, and the Tetris repair path.
var cases = []struct {
	Bench string  `json:"bench"`
	Scale float64 `json:"scale"`
}{
	{"des_perf_1", 0.004},
	{"fft_2", 0.004},
	{"superblue19", 0.002},
}

// parallelWorkers are the worker counts that must reproduce the serial run
// bit-for-bit.
var parallelWorkers = []int{2, 8}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

func loadGolden(t *testing.T) map[string]*Metrics {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("reading goldens (run with -update to generate): %v", err)
	}
	out := map[string]*Metrics{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("parsing goldens: %v", err)
	}
	return out
}

// TestGoldenMetrics pins the serial pipeline to the committed goldens and
// requires every parallel worker count to reproduce them exactly, placement
// hash included.
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs; skipped in -short mode")
	}
	got := map[string]*Metrics{}
	for _, c := range cases {
		m, err := Run(c.Bench, c.Scale, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.Bench, err)
		}
		if !m.Legal {
			t.Errorf("%s: pipeline produced an illegal placement", c.Bench)
		}
		got[c.Bench] = m
	}

	if *update {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath(t))
		return
	}

	golden := loadGolden(t)
	for _, c := range cases {
		want, ok := golden[c.Bench]
		if !ok {
			t.Errorf("%s: no golden entry (run with -update)", c.Bench)
			continue
		}
		if !reflect.DeepEqual(got[c.Bench], want) {
			t.Errorf("%s: metrics drifted from golden\n got: %+v\nwant: %+v", c.Bench, got[c.Bench], want)
		}
	}

	for _, c := range cases {
		for _, w := range parallelWorkers {
			m, err := Run(c.Bench, c.Scale, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.Bench, w, err)
			}
			if !reflect.DeepEqual(m, got[c.Bench]) {
				t.Errorf("%s: workers=%d diverged from serial\n got: %+v\nwant: %+v", c.Bench, w, m, got[c.Bench])
			}
		}
	}
}

// TestPipelineIsDeterministic pins the randomness audit: the generator seeds
// every rand.Rand from the benchmark name and the pipeline itself uses no
// unseeded randomness, so two fresh runs must produce identical placements.
func TestPipelineIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs; skipped in -short mode")
	}
	a, err := Run("fft_2", 0.004, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fft_2", 0.004, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n first: %+v\nsecond: %+v", a, b)
	}
}
