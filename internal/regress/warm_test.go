package regress

import (
	"math/rand"
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
)

// perturbGX jitters every movable cell's global-placement x by at most amp,
// deterministically. The amplitude is kept under 1% of a site so no per-row
// target ordering flips: the perturbed instance shares the structure
// signature of the original and is exactly the near-match sweep workload the
// warm-start path is built for.
func perturbGX(d *design.Design, seed int64, amp float64) {
	rng := rand.New(rand.NewSource(seed))
	for _, c := range d.Cells {
		if !c.Fixed {
			c.GX += (rng.Float64()*2 - 1) * amp
		}
	}
}

// TestWarmResolveMatchesCold is the warm-start property test on the pinned
// regress trio: a warm re-solve of a slightly perturbed instance must
// produce the bit-identical post-Tetris placement of a cold solve of the
// same instance while spending at most half the MMSIM iterations — at every
// worker count the determinism contract covers. MMSIM converges from any
// seed, so warm starting may only change the iteration count, never the
// fixed point; this test pins both halves of that claim.
func TestWarmResolveMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs; skipped in -short mode")
	}
	for _, c := range cases {
		t.Run(c.Bench, func(t *testing.T) {
			e, err := gen.FindEntry(c.Bench)
			if err != nil {
				t.Fatal(err)
			}
			base, err := gen.Generate(gen.SuiteSpec(e, c.Scale))
			if err != nil {
				t.Fatal(err)
			}
			pert := base.Clone()
			perturbGX(pert, 1729, 0.005*base.SiteW)

			for _, w := range append([]int{1}, parallelWorkers...) {
				// Cold reference on the perturbed instance.
				opts := core.DefaultOptions()
				opts.Workers = w
				cold := pert.Clone()
				coldStats, err := core.New(opts).Legalize(cold)
				if err != nil {
					t.Fatalf("workers=%d cold: %v", w, err)
				}
				coldHash := PositionHash(cold)

				// Warm: prime the state with a solve of the unperturbed
				// instance, then re-solve the perturbation.
				opts.Warm = core.NewWarmState()
				lg := core.New(opts)
				if _, err := lg.Legalize(base.Clone()); err != nil {
					t.Fatalf("workers=%d prime: %v", w, err)
				}
				warm := pert.Clone()
				warmStats, err := lg.Legalize(warm)
				if err != nil {
					t.Fatalf("workers=%d warm: %v", w, err)
				}
				if !warmStats.WarmReused || !warmStats.WarmSeeded {
					t.Fatalf("workers=%d: WarmReused=%v WarmSeeded=%v, want both — perturbation broke the structure signature",
						w, warmStats.WarmReused, warmStats.WarmSeeded)
				}
				if got := PositionHash(warm); got != coldHash {
					t.Errorf("workers=%d: warm placement hash %s != cold %s — warm seed changed the fixed point",
						w, got, coldHash)
				}
				if 2*warmStats.Iterations > coldStats.Iterations {
					t.Errorf("workers=%d: warm solve took %d MMSIM iterations, want <= 50%% of cold's %d",
						w, warmStats.Iterations, coldStats.Iterations)
				}
			}
		})
	}
}
