package mclgerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestStageErrorPreservesSentinel(t *testing.T) {
	err := Stage("mmsim", fmt.Errorf("after retune: %w", ErrDiverged))
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("errors.Is(err, ErrDiverged) = false for %v", err)
	}
	if errors.Is(err, ErrIterBudget) {
		t.Fatalf("unexpected match on ErrIterBudget for %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "mmsim" {
		t.Fatalf("errors.As StageError failed: %+v", se)
	}
}

func TestStageNil(t *testing.T) {
	if Stage("x", nil) != nil {
		t.Fatal("Stage(nil) should be nil")
	}
	if Invalid(nil) != nil {
		t.Fatal("Invalid(nil) should be nil")
	}
	if Canceled(nil) != nil {
		t.Fatal("Canceled(nil) should be nil")
	}
}

func TestInvalidfMatches(t *testing.T) {
	err := Invalidf("beta %g out of (0, 2)", 3.0)
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("Invalidf does not match ErrInvalidInput: %v", err)
	}
	if !strings.Contains(err.Error(), "beta 3") {
		t.Fatalf("formatted detail missing: %v", err)
	}
}

func TestInvalidNoDoubleWrap(t *testing.T) {
	base := Invalidf("bad")
	if Invalid(base) != base {
		t.Fatal("Invalid should not re-wrap an ErrInvalidInput chain")
	}
	wrapped := Invalid(errors.New("parse failure"))
	if !errors.Is(wrapped, ErrInvalidInput) {
		t.Fatalf("Invalid did not attach sentinel: %v", wrapped)
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context produced %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context does not match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context does not match context.Canceled: %v", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	derr := FromContext(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline error does not match both sentinels: %v", derr)
	}
}

func TestIsTaxonomy(t *testing.T) {
	for _, s := range sentinels {
		if !IsTaxonomy(Stage("s", fmt.Errorf("deep: %w", s))) {
			t.Errorf("IsTaxonomy false for %v", s)
		}
	}
	if IsTaxonomy(errors.New("random")) {
		t.Error("IsTaxonomy true for unrelated error")
	}
	if IsTaxonomy(nil) {
		t.Error("IsTaxonomy true for nil")
	}
}

func TestStageErrorMessage(t *testing.T) {
	err := &StageError{
		Stage: "tetris", Err: ErrUnplacedCells,
		Iterations: 12, Residual: 0.25, Cells: []int{3, 7}, Detail: "rebuild exhausted",
	}
	msg := err.Error()
	for _, want := range []string{"tetris", "unplaced", "rebuild exhausted", "iterations=12", "[cells=[3 7]]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}
