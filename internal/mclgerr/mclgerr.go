// Package mclgerr defines the typed error taxonomy shared by every stage of
// the legalization pipeline. Each failure a caller can react to is one of a
// small set of sentinel errors, matchable with errors.Is; richer context
// (which stage failed, iteration counts, residuals, offending cells) travels
// in a StageError wrapper that preserves the sentinel through errors.Is /
// errors.As.
//
// The contract every exported pipeline entry point honors:
//
//   - malformed input (NaN/Inf coordinates, non-positive widths, parameters
//     outside their domain, unparsable Bookshelf files) → ErrInvalidInput;
//   - the MMSIM iterate became non-finite → ErrDiverged;
//   - the iteration budget ran out before convergence → ErrIterBudget;
//   - a cell has no rail-compatible row or a row's capacity cannot hold its
//     cells under boundary constraints → ErrInfeasibleRow;
//   - the final placement left cells unplaced or failed the legality
//     checker → ErrUnplacedCells;
//   - the caller's context was canceled or its deadline expired →
//     ErrCanceled (which also matches context.Canceled /
//     context.DeadlineExceeded via errors.Is).
//
// A function either returns a placement that passes the design legality
// checker or an error matching one of these sentinels — never a panic on
// user-reachable input, and never a silently illegal result.
package mclgerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the taxonomy. Match with errors.Is.
var (
	// ErrInvalidInput marks malformed designs, files, or options.
	ErrInvalidInput = errors.New("mclg: invalid input")
	// ErrDiverged marks a solver iterate that became non-finite.
	ErrDiverged = errors.New("mclg: solver diverged")
	// ErrIterBudget marks an iteration budget exhausted before convergence.
	ErrIterBudget = errors.New("mclg: iteration budget exhausted")
	// ErrInfeasibleRow marks a row assignment or row capacity infeasibility.
	ErrInfeasibleRow = errors.New("mclg: infeasible row assignment")
	// ErrUnplacedCells marks a result with unplaced or illegal cells.
	ErrUnplacedCells = errors.New("mclg: unplaced or illegal cells")
	// ErrCanceled marks a run aborted by context cancellation or deadline.
	ErrCanceled = errors.New("mclg: canceled")
	// ErrPanic marks a solver goroutine that panicked and was recovered by a
	// supervision layer. The panic value and stack travel in the wrapping
	// error's message; the sentinel lets callers route the failure into the
	// retry/degrade policy instead of crashing the process.
	ErrPanic = errors.New("mclg: recovered panic")
)

// sentinels lists the full taxonomy for IsTaxonomy.
var sentinels = []error{
	ErrInvalidInput, ErrDiverged, ErrIterBudget,
	ErrInfeasibleRow, ErrUnplacedCells, ErrCanceled, ErrPanic,
}

// IsTaxonomy reports whether err matches any sentinel of the taxonomy.
func IsTaxonomy(err error) bool {
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// Class reduces an error to a stable machine-readable label, one per
// taxonomy sentinel. Serving layers key metrics and logs on it: a nil error
// is "ok", a non-taxonomy error is "other". The labels are part of the
// monitoring contract — do not rename them casually.
func Class(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrInvalidInput):
		return "invalid_input"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrDiverged):
		return "diverged"
	case errors.Is(err, ErrIterBudget):
		return "iter_budget"
	case errors.Is(err, ErrInfeasibleRow):
		return "infeasible_row"
	case errors.Is(err, ErrUnplacedCells):
		return "unplaced_cells"
	case errors.Is(err, ErrPanic):
		return "panic"
	default:
		return "other"
	}
}

// Classes lists every label Class can return, in a stable order, so serving
// layers can pre-register metric series.
func Classes() []string {
	return []string{"ok", "invalid_input", "canceled", "diverged",
		"iter_budget", "infeasible_row", "unplaced_cells", "panic", "other"}
}

// StageError wraps a taxonomy sentinel (or a chain ending in one) with the
// pipeline stage that failed and machine-readable diagnostics.
type StageError struct {
	Stage string // e.g. "validate", "assign-rows", "mmsim", "tetris", "pgs"
	Err   error  // the underlying error; its chain carries the sentinel

	// Optional diagnostics; zero values mean "not applicable".
	Iterations int     // solver iterations performed
	Residual   float64 // last LCP residual or step norm
	Cells      []int   // offending cell IDs (truncated by callers if long)
	Detail     string  // free-form human-readable context
}

func (e *StageError) Error() string {
	msg := fmt.Sprintf("%s: %v", e.Stage, e.Err)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	if e.Iterations > 0 {
		msg += fmt.Sprintf(" [iterations=%d residual=%g]", e.Iterations, e.Residual)
	}
	if len(e.Cells) > 0 {
		msg += fmt.Sprintf(" [cells=%v]", e.Cells)
	}
	return msg
}

// Unwrap exposes the wrapped error chain to errors.Is / errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// Stage wraps err with the stage name, preserving nil.
func Stage(stage string, err error) error {
	if err == nil {
		return nil
	}
	return &StageError{Stage: stage, Err: err}
}

// Invalidf builds an ErrInvalidInput-matching error with a formatted reason.
func Invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidInput, fmt.Sprintf(format, args...))
}

// Invalid wraps an existing error so it matches ErrInvalidInput, preserving
// nil and avoiding double wrapping.
func Invalid(err error) error {
	if err == nil || errors.Is(err, ErrInvalidInput) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrInvalidInput, err)
}

// cancelError matches both ErrCanceled and the context error it wraps, so
// callers can test errors.Is(err, mclgerr.ErrCanceled) or
// errors.Is(err, context.DeadlineExceeded) interchangeably.
type cancelError struct{ cause error }

func (e *cancelError) Error() string { return ErrCanceled.Error() + ": " + e.cause.Error() }

func (e *cancelError) Is(target error) bool { return target == ErrCanceled }

func (e *cancelError) Unwrap() error { return e.cause }

// FromContext converts a context's error into the taxonomy: nil while the
// context is live, an ErrCanceled-matching error once it is done.
func FromContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &cancelError{cause: err}
	}
	return nil
}

// Panicked converts a recovered panic value (as returned by recover()) into
// an ErrPanic-matching error. Supervision layers call it inside a deferred
// recover so a panicking solver rung surfaces as a typed, retryable failure.
func Panicked(v any) error {
	if v == nil {
		return nil
	}
	if err, ok := v.(error); ok {
		return fmt.Errorf("%w: %w", ErrPanic, err)
	}
	return fmt.Errorf("%w: %v", ErrPanic, v)
}

// Canceled wraps an arbitrary cause as an ErrCanceled-matching error.
func Canceled(cause error) error {
	if cause == nil {
		return nil
	}
	if errors.Is(cause, ErrCanceled) {
		return cause
	}
	return &cancelError{cause: cause}
}
