package mclgerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassCoversTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{ErrInvalidInput, "invalid_input"},
		{ErrDiverged, "diverged"},
		{ErrIterBudget, "iter_budget"},
		{ErrInfeasibleRow, "infeasible_row"},
		{ErrUnplacedCells, "unplaced_cells"},
		{ErrCanceled, "canceled"},
		{ErrPanic, "panic"},
		{errors.New("mystery"), "other"},
		// Wrapped forms must classify through the chain.
		{Stage("mmsim", ErrDiverged), "diverged"},
		{fmt.Errorf("outer: %w", Stage("tetris", ErrUnplacedCells)), "unplaced_cells"},
		{Invalidf("bad λ"), "invalid_input"},
		{Canceled(context.DeadlineExceeded), "canceled"},
		{Panicked("index out of range"), "panic"},
		{Panicked(errors.New("boom")), "panic"},
		{Stage("window", Panicked("boom")), "panic"},
	}
	for _, tc := range cases {
		if got := Class(tc.err); got != tc.want {
			t.Errorf("Class(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestClassesListsEveryLabel keeps the pre-registration list in sync with
// what Class can actually return.
func TestClassesListsEveryLabel(t *testing.T) {
	listed := map[string]bool{}
	for _, c := range Classes() {
		listed[c] = true
	}
	probes := []error{nil, ErrInvalidInput, ErrDiverged, ErrIterBudget,
		ErrInfeasibleRow, ErrUnplacedCells, ErrCanceled, ErrPanic, errors.New("x")}
	for _, err := range probes {
		if !listed[Class(err)] {
			t.Errorf("Class(%v) = %q missing from Classes()", err, Class(err))
		}
	}
	if len(listed) != len(probes) {
		t.Errorf("Classes() has %d labels, probes produce %d", len(listed), len(probes))
	}
}
