package eco

import (
	"context"

	"mclg/internal/audit"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// Replay reconstructs a session state from first principles: a fresh
// session over the base design (fresh warm pool, no durable log), with the
// journaled batches re-applied in order. Because every pipeline stage is
// deterministic and warm seeding never changes placements, the replayed
// session's committed placement is bit-identical to the live session that
// produced the log — the property Certify turns into a sealed certificate.
func Replay(ctx context.Context, base *design.Design, log []Batch, opts Options) (*Session, error) {
	opts.LogPath = ""
	opts.LogMeta = nil
	s, err := Create(ctx, "replay", base, opts)
	if err != nil {
		return nil, err
	}
	for _, b := range log {
		res, err := s.Apply(ctx, b.Deltas)
		if err != nil {
			return nil, mclgerr.Stage("eco-replay", err)
		}
		if b.Seq != 0 && res.Seq != b.Seq {
			return nil, mclgerr.Invalidf("eco-replay: batch replayed to seq %d, journal says %d", res.Seq, b.Seq)
		}
	}
	return s, nil
}

// Certify independently replays the session's full delta log from its base
// design and seals the outcome as an audit.ReplayCertificate: Pass means
// the replay reproduced the committed placement hash exactly and the
// replayed placement passes the whole-design legality checker. The live
// session is not mutated; the replay runs on clones.
func (s *Session) Certify(ctx context.Context) (*audit.ReplayCertificate, error) {
	s.mu.Lock()
	base := s.base.Clone()
	log := make([]Batch, len(s.log))
	copy(log, s.log)
	opts := s.opts
	posHash := s.posHash
	name := s.cur.Name
	cells := len(s.cur.Cells)
	s.mu.Unlock()

	deltas := 0
	for _, b := range log {
		deltas += len(b.Deltas)
	}
	logSum, err := audit.LogDigest(log)
	if err != nil {
		return nil, err
	}
	cert := &audit.ReplayCertificate{
		Design:  name,
		Cells:   cells,
		Batches: len(log),
		Deltas:  deltas,
		LogSum:  logSum,
		PosHash: posHash,
	}

	rs, err := Replay(ctx, base, log, opts)
	if err != nil {
		// A replay that cannot even run is a failed certificate, not an
		// API error — unless the caller canceled.
		if cerr := mclgerr.FromContext(ctx); cerr != nil {
			return nil, cerr
		}
		cert.ReplayHash = "error: " + err.Error()
		if sErr := cert.Seal(); sErr != nil {
			return nil, sErr
		}
		return cert, nil
	}
	replayed := rs.Design()
	cert.BaseHash = rs.BaseHash()
	cert.ReplayHash = rs.PosHash()
	cert.Match = cert.ReplayHash == posHash
	cert.Legal = design.CheckLegal(replayed).Legal()
	cert.Pass = cert.Match && cert.Legal
	if err := cert.Seal(); err != nil {
		return nil, err
	}
	return cert, nil
}
