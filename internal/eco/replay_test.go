package eco

import (
	"context"
	"path/filepath"
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/metrics"
)

// sampleBatches builds three batches over d exercising every op: a move
// wave, an insert + resize, and a delete. Deterministic in d.
func sampleBatches(d *design.Design) [][]Delta {
	ids := pickMovable(d, 4)
	var moves []Delta
	for _, id := range ids[:3] {
		c := d.Cells[id]
		moves = append(moves, Delta{
			Op: OpMove, Cell: id,
			X: min(c.X+3*d.SiteW, d.Core.Hi.X-c.W),
			Y: min(c.Y+d.RowHeight, d.Core.Hi.Y-c.H),
		})
	}
	cx := d.Core.Lo.X + (d.Core.Hi.X-d.Core.Lo.X)/2
	cy := d.Core.Lo.Y + d.RowHeight
	return [][]Delta{
		moves,
		{
			{Op: OpInsert, Name: "u_rt1", W: 3 * d.SiteW, H: d.RowHeight, X: cx, Y: cy},
			{Op: OpResize, Cell: ids[3], W: d.Cells[ids[3]].W, H: 2 * d.RowHeight},
		},
		{{Op: OpDelete, Cell: ids[0]}},
	}
}

// TestReplayBitIdenticalAcrossWorkers is the determinism property test: the
// committed state is a pure function of (base design, delta log), so
// replaying the log with any worker count — warm pool cold, scheduling
// different — must land on the exact committed placement hash.
func TestReplayBitIdenticalAcrossWorkers(t *testing.T) {
	base := testDesign(t, "fft_2", 0.01)
	opts := Options{Core: core.Options{Workers: 1}}
	s, err := Create(context.Background(), "live", base.Clone(), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i, batch := range sampleBatches(s.Design()) {
		if _, err := s.Apply(context.Background(), batch); err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
	}
	want := s.PosHash()

	for _, workers := range []int{1, 2, 8} {
		ropts := Options{Core: core.Options{Workers: workers}}
		rs, err := Replay(context.Background(), base.Clone(), s.Log(), ropts)
		if err != nil {
			t.Fatalf("Replay workers=%d: %v", workers, err)
		}
		if h := rs.PosHash(); h != want {
			t.Fatalf("workers=%d: replay hash %s != live hash %s", workers, h, want)
		}
		if rep := design.CheckLegal(rs.Design()); !rep.Legal() {
			t.Fatalf("workers=%d: replayed placement illegal: %s", workers, rep.String())
		}
	}

	cert, err := s.Certify(context.Background())
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !cert.Pass || !cert.Match || !cert.Legal {
		t.Fatalf("certificate failed: %s", cert.Summary())
	}
	if !cert.Verify() {
		t.Fatalf("sealed certificate does not verify: %s", cert.Summary())
	}
}

// TestResumeAcrossRestart simulates a process crash mid-session: the durable
// log is reopened by a second Create, which must replay the accepted batches
// to the exact committed state, and the resumed session must continue
// identically to one that never crashed.
func TestResumeAcrossRestart(t *testing.T) {
	base := testDesign(t, "fft_2", 0.004)
	path := filepath.Join(t.TempDir(), "s1.ecolog")
	batches := sampleBatches(base)
	ctx := context.Background()

	// The uninterrupted control: all three batches in one in-memory session.
	ctrl, err := Create(ctx, "ctrl", base.Clone(), Options{})
	if err != nil {
		t.Fatalf("Create control: %v", err)
	}
	for i, b := range batches {
		if _, err := ctrl.Apply(ctx, b); err != nil {
			t.Fatalf("control batch %d: %v", i+1, err)
		}
	}

	// The crashing run: two batches accepted, then the process dies.
	s1, err := Create(ctx, "s1", base.Clone(), Options{LogPath: path})
	if err != nil {
		t.Fatalf("Create durable: %v", err)
	}
	for i, b := range batches[:2] {
		if _, err := s1.Apply(ctx, b); err != nil {
			t.Fatalf("durable batch %d: %v", i+1, err)
		}
	}
	crashHash, crashSeq := s1.PosHash(), s1.Seq()
	s1.flog.Close() // simulate SIGKILL: file handle gone, log file stays

	// Restart: same path, same base, same options.
	s2, err := Create(ctx, "s1", base.Clone(), Options{LogPath: path})
	if err != nil {
		t.Fatalf("resume Create: %v", err)
	}
	defer s2.Close()
	if s2.Resumed() != 2 {
		t.Fatalf("Resumed() = %d, want 2", s2.Resumed())
	}
	if s2.Seq() != crashSeq || s2.PosHash() != crashHash {
		t.Fatalf("resumed state seq=%d hash=%s, want seq=%d hash=%s",
			s2.Seq(), s2.PosHash(), crashSeq, crashHash)
	}

	// The resumed session continues exactly like the uninterrupted one.
	if _, err := s2.Apply(ctx, batches[2]); err != nil {
		t.Fatalf("post-resume batch: %v", err)
	}
	if s2.PosHash() != ctrl.PosHash() {
		t.Fatalf("post-resume hash %s != uninterrupted hash %s", s2.PosHash(), ctrl.PosHash())
	}
	cert, err := s2.Certify(ctx)
	if err != nil {
		t.Fatalf("Certify resumed session: %v", err)
	}
	if !cert.Pass {
		t.Fatalf("resumed session certificate failed: %s", cert.Summary())
	}
}

// TestStaleLogRejectedOnResume pins the resume safety contract: a log
// written over a different base design must not replay — the signature in
// the header invalidates it and the session starts fresh.
func TestStaleLogRejectedOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.ecolog")
	ctx := context.Background()

	d1 := testDesign(t, "fft_2", 0.004)
	s1, err := Create(ctx, "s", d1, Options{LogPath: path})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s1.Apply(ctx, sampleBatches(s1.Design())[0]); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s1.flog.Close()

	// A different design under the same session id and path: the header
	// signature mismatches, the log resets, nothing replays.
	d2 := testDesign(t, "fft_2", 0.01)
	s2, err := Create(ctx, "s", d2, Options{LogPath: path})
	if err != nil {
		t.Fatalf("Create over stale log: %v", err)
	}
	defer s2.Close()
	if s2.Resumed() != 0 {
		t.Fatalf("Resumed() = %d from a stale log, want 0", s2.Resumed())
	}
}

// TestECODisplacementBoundedVsColdSolve is the quality property test: the
// incremental dirty-window solve must stay legal and land within a bounded
// displacement factor of a cold full re-legalization given the same targets.
// The observed gap is logged so quality drift shows up in test output.
func TestECODisplacementBoundedVsColdSolve(t *testing.T) {
	base := testDesign(t, "fft_2", 0.01)
	ctx := context.Background()
	s, err := Create(ctx, "disp", base.Clone(), Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	d := s.Design()
	ids := pickMovable(d, 5)
	var deltas []Delta
	for i, id := range ids {
		c := d.Cells[id]
		deltas = append(deltas, Delta{
			Op: OpMove, Cell: id,
			X: min(c.X+float64(2+i)*d.SiteW, d.Core.Hi.X-c.W),
			Y: min(c.Y+d.RowHeight, d.Core.Hi.Y-c.H),
		})
	}
	if _, err := s.Apply(ctx, deltas); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got := s.Design()
	if rep := design.CheckLegal(got); !rep.Legal() {
		t.Fatalf("ECO placement illegal: %s", rep.String())
	}
	ecoDisp := metrics.MeasureDisplacement(got).TotalSites

	// Cold reference: the same netlist and targets, legalized from scratch.
	cold := base.Clone()
	for i, id := range ids {
		cold.Cells[id].GX, cold.Cells[id].GY = deltas[i].X, deltas[i].Y
	}
	if _, err := core.NewResilient(core.ResilientOptions{}).LegalizeContext(ctx, cold); err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if rep := design.CheckLegal(cold); !rep.Legal() {
		t.Fatalf("cold placement illegal: %s", rep.String())
	}
	coldDisp := metrics.MeasureDisplacement(cold).TotalSites

	// The ECO solve optimizes only the dirty windows against frozen context,
	// so it can never beat the cold solve by much — but it must not be
	// unboundedly worse either. Factor 3 (plus a small absolute slack for
	// near-zero baselines) is far above the observed gap and far below
	// anything a stale-window bug would produce.
	const factor, slack = 3.0, 16.0
	t.Logf("displacement: eco %.1f sites vs cold %.1f sites (ratio %.2f)",
		ecoDisp, coldDisp, ecoDisp/coldDisp)
	if ecoDisp > factor*coldDisp+slack {
		t.Fatalf("ECO displacement %.1f sites exceeds %.0fx cold solve (%.1f sites)",
			ecoDisp, factor, coldDisp)
	}
}
