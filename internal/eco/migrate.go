package eco

import (
	"context"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// Snapshot is a session's migratable state: the pristine base design plus
// the accepted delta log, which together determine the committed placement
// exactly (every pipeline stage is deterministic). BaseHash and PosHash pin
// the state-zero and current placements so the receiving host can verify the
// rebuilt session bit-for-bit before taking traffic.
type Snapshot struct {
	ID       string
	Base     *design.Design
	Log      []Batch
	BaseHash string
	PosHash  string
}

// Snapshot captures the session's migratable state atomically. The base
// design is cloned, so the snapshot stays valid while the live session keeps
// applying batches (those later batches are simply not part of it).
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := make([]Batch, len(s.log))
	copy(log, s.log)
	return Snapshot{
		ID:       s.id,
		Base:     s.base.Clone(),
		Log:      log,
		BaseHash: s.baseHash,
		PosHash:  s.posHash,
	}
}

// Migrate rebuilds a session from a snapshot on a new host: it creates a
// fresh session over the snapshot's base design (durable under opts.LogPath
// if set), replays the delta log batch by batch, and verifies that both the
// state-zero hash and the final committed placement hash reproduce the
// snapshot's exactly. Any mismatch fails the migration with a typed error
// and closes the half-built session — a migrated session is either
// bit-identical to the original or it does not exist.
func Migrate(ctx context.Context, snap Snapshot, opts Options) (*Session, error) {
	if snap.Base == nil {
		return nil, mclgerr.Invalidf("eco-migrate: snapshot has no base design")
	}
	s, err := Create(ctx, snap.ID, snap.Base, opts)
	if err != nil {
		return nil, mclgerr.Stage("eco-migrate", err)
	}
	fail := func(err error) (*Session, error) {
		_ = s.Close()
		return nil, err
	}
	if snap.BaseHash != "" && s.BaseHash() != snap.BaseHash {
		return fail(mclgerr.Invalidf("eco-migrate: state-zero hash %s does not reproduce snapshot %s", s.BaseHash(), snap.BaseHash))
	}
	// A durable Create may have resumed an existing log at opts.LogPath; a
	// migration must start from scratch, so any resumed batches are a
	// conflict, not a head start.
	if s.Seq() != 0 {
		return fail(mclgerr.Invalidf("eco-migrate: target log %s already holds %d batches", opts.LogPath, s.Seq()))
	}
	for _, b := range snap.Log {
		res, aerr := s.Apply(ctx, b.Deltas)
		if aerr != nil {
			return fail(mclgerr.Stage("eco-migrate", aerr))
		}
		if b.Seq != 0 && res.Seq != b.Seq {
			return fail(mclgerr.Invalidf("eco-migrate: batch replayed to seq %d, snapshot says %d", res.Seq, b.Seq))
		}
	}
	if snap.PosHash != "" && s.PosHash() != snap.PosHash {
		return fail(mclgerr.Invalidf("eco-migrate: replayed placement %s does not reproduce snapshot %s", s.PosHash(), snap.PosHash))
	}
	return s, nil
}
