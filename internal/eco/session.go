package eco

import (
	"context"
	"fmt"
	"sync"

	"mclg/internal/baselines/chow"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/regress"
	"mclg/internal/window"
)

// Session is a live ECO legalization session: a committed legal placement,
// the occupancy grid mirroring it, and the append-only delta journal that
// reproduces it from the base design. All methods are safe for concurrent
// use; applies serialize.
type Session struct {
	mu   sync.Mutex
	id   string
	opts Options

	base *design.Design // pristine input clone — the replay seed
	cur  *design.Design // committed: X/Y legal, GX/GY current targets
	occ  *design.Occupancy

	seq      int
	log      []Batch
	posHash  string
	baseHash string // state-zero hash (legalized base, before any batch)

	warm *core.WarmPool // one WarmState per dirty-run row range

	flog    *fileLog
	resumed int

	closed bool
	stats  Stats
}

// Stats summarizes a session's lifetime activity.
type Stats struct {
	Seq      int    `json:"seq"`
	Cells    int    `json:"cells"`
	Applies  uint64 `json:"applies"`
	Rejected uint64 `json:"rejected"`
	Deltas   uint64 `json:"deltas"`
	Runs     uint64 `json:"runs"`
	Repaired uint64 `json:"repaired"` // runs that fell back to chow local repair
	Resumed  int    `json:"resumed"`  // batches replayed from the durable log
	PosHash  string `json:"pos_hash"`
}

// ApplyResult reports one accepted batch.
type ApplyResult struct {
	Seq       int    `json:"seq"`
	Deltas    int    `json:"deltas"`
	DirtyRows int    `json:"dirty_rows"`
	Bands     int    `json:"bands"` // dirty bands re-solved
	Runs      int    `json:"runs"`  // merged contiguous runs
	Repaired  int    `json:"repaired"`
	Cells     int    `json:"cells"`
	PosHash   string `json:"pos_hash"`
}

// Create opens a session over design d. The input is cloned twice — once as
// the pristine replay base, once as the working state — and if the input
// placement is not already legal it is cold-legalized deterministically
// through the resilient cascade, so state 0 is always checker-verified.
//
// With Options.LogPath set, the session is durable: an existing compatible
// log at that path is resumed by replaying its batches (a mid-session
// process restart lands exactly where it left off), and every subsequently
// accepted batch is appended write-ahead before it commits.
func Create(ctx context.Context, id string, d *design.Design, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, mclgerr.Stage("eco-create", err)
	}
	s := &Session{
		id:   id,
		opts: opts,
		base: d.Clone(),
		cur:  d.Clone(),
		warm: core.NewWarmPool(opts.WarmCap),
	}
	if !design.CheckLegal(s.cur).Legal() {
		rl := core.NewResilient(core.ResilientOptions{Base: opts.Core})
		if _, err := rl.LegalizeContext(ctx, s.cur); err != nil {
			return nil, err
		}
	}
	if err := s.rebuildOcc(); err != nil {
		return nil, err
	}
	s.posHash = regress.PositionHash(s.cur)
	s.baseHash = s.posHash
	s.stats.Cells = len(s.cur.Cells)
	s.stats.PosHash = s.posHash

	if opts.LogPath != "" {
		fl, records, err := openFileLog(opts.LogPath, id, s.logSig(), s.posHash, opts.LogMeta)
		if err != nil {
			return nil, err
		}
		s.flog = fl
		for _, rec := range records {
			res, err := s.applyLocked(ctx, rec.Deltas, false)
			if err != nil {
				fl.Close()
				return nil, mclgerr.Stage("eco-resume",
					fmt.Errorf("replaying logged batch %d: %w", rec.Seq, err))
			}
			if res.Seq != rec.Seq || res.PosHash != rec.PosHash {
				fl.Close()
				return nil, mclgerr.Invalidf(
					"eco-resume: logged batch %d replays to seq %d hash %s (logged %s) — log does not belong to this base/configuration",
					rec.Seq, res.Seq, res.PosHash, rec.PosHash)
			}
		}
		s.resumed = len(records)
		s.stats.Resumed = s.resumed
	}
	return s, nil
}

// logSig content-addresses everything a logged batch's outcome depends on:
// the pristine base design plus the window and solver parameters
// (window.Sig), and the ECO margin. A durable log resumes only under an
// identical signature.
func (s *Session) logSig() string {
	return fmt.Sprintf("%016x.m%d", window.Sig(s.base, s.opts.WindowRows, s.opts.ContextRows, s.opts.Core), s.opts.MarginRows)
}

// rebuildOcc reconstructs the occupancy grid from the committed placement:
// fixed cells block their (possibly off-grid) area, movable cells occupy
// their legal sites.
func (s *Session) rebuildOcc() error {
	occ := design.NewOccupancy(s.cur)
	for _, c := range s.cur.Cells {
		if c.Fixed {
			occ.BlockArea(c.ID, c.X, c.Y, c.W, c.H)
			continue
		}
		if err := occ.Place(c, c.X, c.Y); err != nil {
			return mclgerr.Stage("eco-occupancy", err)
		}
	}
	s.occ = occ
	return nil
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Seq returns the committed batch count.
func (s *Session) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// PosHash returns the committed placement hash.
func (s *Session) PosHash() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.posHash
}

// Resumed reports how many batches Create replayed from a durable log.
func (s *Session) Resumed() int { return s.resumed }

// BaseHash returns the state-zero placement hash (the legalized base,
// before any batch).
func (s *Session) BaseHash() string { return s.baseHash }

// Design returns a clone of the committed placement.
func (s *Session) Design() *design.Design {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.Clone()
}

// Log returns a copy of the accepted delta journal.
func (s *Session) Log() []Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Batch, len(s.log))
	copy(out, s.log)
	return out
}

// Statistics returns a snapshot of the session counters.
func (s *Session) Statistics() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Seq = s.seq
	st.Cells = len(s.cur.Cells)
	st.PosHash = s.posHash
	return st
}

// Occupied reports the number of occupied sites in the live grid.
func (s *Session) Occupied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.occ.UsedSites()
}

// Close ends the session. A durable session's log file is removed — a
// closed session must never be resumed by a restart. Further applies fail
// with ErrInvalidInput.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.flog != nil {
		return s.flog.Remove()
	}
	return nil
}

// Apply validates and applies one delta batch atomically: either every
// delta is valid, every dirty run re-legalizes (or locally repairs), the
// whole-design checker passes, and the batch is journaled and committed —
// or the session is left exactly as it was and a typed error explains why.
func (s *Session) Apply(ctx context.Context, deltas []Delta) (*ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(ctx, deltas, true)
}

func (s *Session) applyLocked(ctx context.Context, deltas []Delta, persist bool) (*ApplyResult, error) {
	if s.closed {
		return nil, mclgerr.Invalidf("eco: session %s is closed", s.id)
	}
	if len(deltas) == 0 {
		return nil, mclgerr.Invalidf("eco: empty delta batch")
	}
	res, work, err := s.solveBatch(ctx, deltas)
	if err != nil {
		s.stats.Rejected++
		return nil, err
	}

	// Write-ahead: the batch is durable before it is visible. A crash after
	// the append replays the batch on resume; a crash before it loses the
	// batch entirely — never a half-state.
	if persist && s.flog != nil {
		if err := s.flog.Append(logRecord{Seq: res.Seq, Deltas: deltas, PosHash: res.PosHash}); err != nil {
			s.stats.Rejected++
			return nil, err
		}
	}

	s.cur = work
	if err := s.rebuildOcc(); err != nil {
		// The placement passed the whole-design checker, so the grid must
		// accept it; failing here is a programming error, not a user input.
		return nil, err
	}
	s.seq = res.Seq
	s.posHash = res.PosHash
	s.log = append(s.log, Batch{Seq: res.Seq, Deltas: append([]Delta(nil), deltas...)})
	s.stats.Applies++
	s.stats.Deltas += uint64(len(deltas))
	s.stats.Runs += uint64(res.Runs)
	s.stats.Repaired += uint64(res.Repaired)
	return res, nil
}

// solveBatch runs the full dirty-window pipeline on a working clone and
// returns the verified result without touching session state.
func (s *Session) solveBatch(ctx context.Context, deltas []Delta) (*ApplyResult, *design.Design, error) {
	// 1. Validate and apply the deltas to a working clone, accumulating
	// dirty rows and touched cells. Any invalid delta rejects the batch.
	work := s.cur.Clone()
	mut := newMutator(work, s.opts.MarginRows)
	for i, dl := range deltas {
		if err := mut.apply(i, dl); err != nil {
			return nil, nil, err
		}
	}
	if err := work.Validate(); err != nil {
		return nil, nil, err
	}

	// 2. Build the assignment view: touched cells keep their new targets,
	// untouched movable cells are pinned to their committed positions (GX/GY
	// := X/Y), so Partition assigns untouched cells to their committed rows
	// and the re-solve treats "stay where you are" as their objective.
	av := work.Clone()
	for _, c := range av.Cells {
		if !c.Fixed && !mut.touched[c.ID] {
			c.GX, c.GY = c.X, c.Y
		}
	}
	plan, err := window.Partition(av, s.opts.WindowRows, s.opts.ContextRows)
	if err != nil {
		return nil, nil, err
	}
	dirty := plan.DirtyBands(av, mut.dirty)

	// 3. Merge dirty bands whose sub-design row ranges overlap into
	// contiguous runs; distinct runs own disjoint rows and solve
	// independently.
	runs := mergeRuns(plan, dirty)

	// 4. Re-legalize each run through the resilient cascade with per-run
	// warm-state reuse; fall back to chow-style one-cell-at-a-time local
	// repair when the cascade fails. Either path yields checker-verified
	// positions or rejects the batch.
	repaired := 0
	for _, r := range runs {
		cells, rep, err := s.solveRun(ctx, av, plan, r, mut.touched)
		if err != nil {
			return nil, nil, err
		}
		if rep {
			repaired++
		}
		for _, cp := range cells {
			c := work.Cells[cp.ID]
			c.X, c.Y, c.Flipped = cp.X, cp.Y, cp.Flipped
		}
	}

	// 5. The whole-design checker gates the commit: only fully verified
	// placements become session state, whatever the per-run solvers claimed.
	if rep := design.CheckLegal(work); !rep.Legal() {
		return nil, nil, &mclgerr.StageError{
			Stage:  "eco-verify",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: "re-legalized placement failed the legality checker: " + rep.String(),
		}
	}

	res := &ApplyResult{
		Seq:       s.seq + 1,
		Deltas:    len(deltas),
		DirtyRows: len(mut.dirty),
		Bands:     len(dirty),
		Runs:      len(runs),
		Repaired:  repaired,
		Cells:     len(work.Cells),
		PosHash:   regress.PositionHash(work),
	}
	return res, work, nil
}

// run is a contiguous range of dirty bands: rows [lo, hi) of the sub-design
// union, solved as one window.
type run struct {
	lo, hi int
	bands  []int // indices into plan.Bands, ascending
}

// mergeRuns folds ascending dirty band indices into runs, merging bands
// whose [SubLo, SubHi) ranges overlap so no two runs share a row.
func mergeRuns(p *window.Plan, dirty []int) []run {
	var runs []run
	for _, bi := range dirty {
		b := p.Bands[bi]
		if n := len(runs); n > 0 && b.SubLo < runs[n-1].hi {
			r := &runs[n-1]
			if b.SubHi > r.hi {
				r.hi = b.SubHi
			}
			r.bands = append(r.bands, bi)
			continue
		}
		runs = append(runs, run{lo: b.SubLo, hi: b.SubHi, bands: []int{bi}})
	}
	return runs
}

// solveRun re-legalizes one dirty run. The primary path is the resilient
// cascade on the run's sub-design, warm-seeded by the pooled state for this
// row range (the structure signature inside the state decides whether the
// seed is actually consulted — a drifted run solves cold and re-primes).
// When the cascade cannot produce a verified placement, the fallback
// rebuilds the run with only the *touched* cells movable and places them
// one at a time with the chow greedy against the committed surroundings.
// Both paths return window-verified positions; the caller still runs the
// whole-design checker before committing.
func (s *Session) solveRun(ctx context.Context, av *design.Design, p *window.Plan, r run, touched map[int]bool) ([]window.CellPos, bool, error) {
	sub, idx := p.BuildRun(av, r.bands)
	cascade := core.ResilientOptions{Base: s.opts.Core}
	cascade.Base.Warm = s.warm.Get(fmt.Sprintf("rows[%d,%d)", r.lo, r.hi))

	var solveErr error
	if solveErr = sub.Validate(); solveErr == nil {
		workSub := sub.Clone()
		rl := core.NewResilient(cascade)
		if _, solveErr = rl.LegalizeContext(ctx, workSub); solveErr == nil {
			return extractOwned(workSub, idx), false, nil
		}
	}
	if err := mclgerr.FromContext(ctx); err != nil {
		return nil, false, err
	}

	cells, err := s.repairRun(ctx, av, p, r, touched)
	if err != nil {
		return nil, false, mclgerr.Stage("eco-repair",
			fmt.Errorf("run rows [%d,%d): cascade failed (%v); local repair failed: %w", r.lo, r.hi, solveErr, err))
	}
	return cells, true, nil
}

// repairRun is the chow-style local repair: every cell the batch did not
// touch is frozen at its committed position, and only the touched cells are
// placed — one at a time, nearest free run first — into the gaps.
func (s *Session) repairRun(ctx context.Context, av *design.Design, p *window.Plan, r run, touched map[int]bool) ([]window.CellPos, error) {
	sub, idx := p.BuildRun(av, r.bands)
	for i, fullID := range idx {
		if fullID < 0 || touched[fullID] {
			continue
		}
		// Committed position: untouched cells in the assignment view carry
		// X/Y = the committed placement.
		c := sub.Cells[i]
		c.X, c.Y = av.Cells[fullID].X, av.Cells[fullID].Y
		c.GX, c.GY = c.X, c.Y
		c.Flipped = av.Cells[fullID].Flipped
		c.Fixed = true
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	if err := chow.LegalizeContext(ctx, sub); err != nil {
		return nil, err
	}
	if rep := design.CheckLegal(sub); !rep.Legal() {
		return nil, &mclgerr.StageError{
			Stage:  "eco-repair",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: "local repair left the run illegal: " + rep.String(),
		}
	}
	out := make([]window.CellPos, 0, len(idx))
	for i, fullID := range idx {
		if fullID < 0 {
			continue
		}
		c := sub.Cells[i]
		out = append(out, window.CellPos{ID: fullID, X: c.X, Y: c.Y, Flipped: c.Flipped})
	}
	return out, nil
}

// extractOwned collects owned-cell positions from a solved run sub-design.
func extractOwned(sub *design.Design, idx []int) []window.CellPos {
	out := make([]window.CellPos, 0, len(idx))
	for i, fullID := range idx {
		if fullID < 0 {
			continue
		}
		c := sub.Cells[i]
		out = append(out, window.CellPos{ID: fullID, X: c.X, Y: c.Y, Flipped: c.Flipped})
	}
	return out
}
