// Package eco implements streaming engineering-change-order (ECO)
// legalization: a session holds a committed legal placement plus a live
// occupancy grid, accepts small batches of deltas (move / insert / delete /
// resize of a handful of cells), and re-legalizes only the dirty row bands
// those deltas touch instead of re-solving the whole chip.
//
// The session is event-sourced. Every accepted batch is appended to an
// append-only delta journal (in memory, and write-ahead to a durable file
// log when configured), and the committed state is always a pure function
// of (base design, delta log): replaying the log from the base reproduces
// the committed placement bit-identically, at any worker count and across a
// process restart. That holds because every stage is deterministic — the
// dirty-band selection, the run merge, the resilient cascade each run is
// solved with, and the chow local-repair fallback — and because warm-state
// reuse (per-run, via core.WarmPool) only changes iteration counts, never
// placements. The replay property is what audit.ReplayCertificate certifies.
//
// A batch is atomic: it either commits a whole-design checker-verified
// placement, or it is rejected with a typed mclgerr error and the session
// state (placement, occupancy, journal) is untouched.
package eco

import (
	"math"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// Op identifies one delta kind.
type Op string

const (
	// OpMove retargets an existing movable cell to a new position.
	OpMove Op = "move"
	// OpInsert adds a new movable cell with a target position.
	OpInsert Op = "insert"
	// OpDelete removes an existing movable cell.
	OpDelete Op = "delete"
	// OpResize changes an existing movable cell's dimensions.
	OpResize Op = "resize"
)

// Delta is one edit. Cell addresses the full-design cell ID for move,
// delete, and resize; insert ignores it and appends with the next ID
// (deletes renumber the survivors densely, so IDs in later deltas address
// the post-delete numbering — the same numbering a replay sees).
type Delta struct {
	Op   Op     `json:"op"`
	Cell int    `json:"cell,omitempty"` // move/delete/resize target
	Name string `json:"name,omitempty"` // insert: instance name (optional)

	// X/Y is the target bottom-left for move and insert. Targets may be
	// off-grid — legalization snaps them — but must be finite and keep the
	// cell rectangle inside the core.
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`

	// W/H are the dimensions for insert and resize. H must be a whole
	// multiple of the row height and fit the core vertically.
	W float64 `json:"w,omitempty"`
	H float64 `json:"h,omitempty"`

	// Rail is the designed bottom rail for insert: "VSS" (default) or "VDD".
	Rail string `json:"rail,omitempty"`
}

// Batch is one accepted delta batch, as journaled. Seq is 1-based; state 0
// is the legalized base design.
type Batch struct {
	Seq    int     `json:"seq"`
	Deltas []Delta `json:"deltas"`
}

// Options configures a session.
type Options struct {
	// Core is the solver configuration for the dirty-run cascades and for
	// the initial cold legalization of a base design that is not already
	// legal. Zero fields take the paper defaults.
	Core core.Options

	// WindowRows / ContextRows parameterize the dirty-band partition
	// (window.Partition). The ECO default window is deliberately small —
	// DefaultWindowRows owned rows — so a handful of deltas dirties a small
	// fraction of the chip; ContextRows defaults to
	// window.DefaultContextRows. MarginRows widens the dirty-row set around
	// every delta's old and new rectangles (default 1), so neighbors that
	// must shift to make room are inside the re-solved region.
	WindowRows  int
	ContextRows int
	MarginRows  int

	// WarmCap bounds the per-run warm-state pool (core.WarmPool) — one
	// state per dirty-run row range, reused when the run's structure
	// signature still matches. 0 means 16; negative disables warm starts.
	WarmCap int

	// LogPath, when non-empty, makes the session durable: accepted batches
	// are appended write-ahead to a checksummed file log at this path, and
	// Create resumes an existing compatible log by replaying it. LogMeta is
	// an opaque caller payload stored in the log header (a daemon stores the
	// session-create request there so a restart can rebuild the base design).
	LogPath string
	LogMeta []byte
}

// DefaultWindowRows is the ECO dirty-window height.
const DefaultWindowRows = 4

// DefaultMarginRows is the dirty-row margin around each delta.
const DefaultMarginRows = 1

// DefaultWarmCap bounds the per-run warm pool.
const DefaultWarmCap = 16

func (o Options) withDefaults() Options {
	if o.WindowRows == 0 {
		o.WindowRows = DefaultWindowRows
	}
	if o.ContextRows == 0 {
		o.ContextRows = 2
	}
	if o.MarginRows == 0 {
		o.MarginRows = DefaultMarginRows
	}
	if o.WarmCap == 0 {
		o.WarmCap = DefaultWarmCap
	}
	return o
}

// parseRail maps the delta rail field to a RailType.
func parseRail(s string) (design.RailType, error) {
	switch s {
	case "", "VSS", "vss":
		return design.VSS, nil
	case "VDD", "vdd":
		return design.VDD, nil
	}
	return design.VSS, mclgerr.Invalidf("eco: unknown rail %q (want VSS or VDD)", s)
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// inCore reports whether the rectangle (x, y, w, h) lies inside the core,
// with a small tolerance for floating-point targets on the boundary.
func inCore(d *design.Design, x, y, w, h float64) bool {
	const eps = 1e-9
	return x >= d.Core.Lo.X-eps && x+w <= d.Core.Hi.X+eps &&
		y >= d.Core.Lo.Y-eps && y+h <= d.Core.Hi.Y+eps
}

// movableTarget validates that delta i addresses an existing movable cell
// and returns it.
func movableTarget(d *design.Design, i int, dl Delta) (*design.Cell, error) {
	if dl.Cell < 0 || dl.Cell >= len(d.Cells) {
		return nil, mclgerr.Invalidf("eco: delta %d (%s): cell %d out of range [0,%d)",
			i, dl.Op, dl.Cell, len(d.Cells))
	}
	c := d.Cells[dl.Cell]
	if c.Fixed {
		return nil, mclgerr.Invalidf("eco: delta %d (%s): cell %d (%q) is fixed",
			i, dl.Op, dl.Cell, c.Name)
	}
	return c, nil
}

// mutator applies validated deltas to a working design, accumulating dirty
// rows and touched cell IDs. Deltas are validated and applied sequentially
// against the evolving design, so each delta sees the IDs and geometry left
// by its predecessors — the exact view a replay sees.
type mutator struct {
	d       *design.Design
	margin  int
	dirty   map[int]bool // dirty design rows
	touched map[int]bool // current-IDs of cells a delta created or altered
}

func newMutator(d *design.Design, margin int) *mutator {
	return &mutator{d: d, margin: margin, dirty: map[int]bool{}, touched: map[int]bool{}}
}

// markRect dirties every row the rectangle overlaps, plus the margin.
func (m *mutator) markRect(y, h float64) {
	d := m.d
	r0 := int(math.Floor((y-d.Core.Lo.Y)/d.RowHeight)) - m.margin
	r1 := int(math.Ceil((y+h-d.Core.Lo.Y)/d.RowHeight-1e-9)) + m.margin
	if r0 < 0 {
		r0 = 0
	}
	if r1 > len(d.Rows) {
		r1 = len(d.Rows)
	}
	for r := r0; r < r1; r++ {
		m.dirty[r] = true
	}
}

// apply validates and applies one delta. On error the working design may
// have earlier deltas applied but the caller discards it wholesale — batch
// application is all-or-nothing at the session level.
func (m *mutator) apply(i int, dl Delta) error {
	d := m.d
	switch dl.Op {
	case OpMove:
		c, err := movableTarget(d, i, dl)
		if err != nil {
			return err
		}
		if !finite(dl.X, dl.Y) {
			return mclgerr.Invalidf("eco: delta %d (move): non-finite target (%g, %g)", i, dl.X, dl.Y)
		}
		if !inCore(d, dl.X, dl.Y, c.W, c.H) {
			return mclgerr.Invalidf("eco: delta %d (move): cell %d target (%g, %g) puts %gx%g outside the core",
				i, dl.Cell, dl.X, dl.Y, c.W, c.H)
		}
		m.markRect(c.Y, c.H) // vacated position
		m.markRect(dl.Y, c.H)
		c.GX, c.GY = dl.X, dl.Y
		c.X, c.Y = dl.X, dl.Y
		m.touched[c.ID] = true

	case OpInsert:
		if !finite(dl.X, dl.Y, dl.W, dl.H) {
			return mclgerr.Invalidf("eco: delta %d (insert): non-finite geometry", i)
		}
		rail, err := parseRail(dl.Rail)
		if err != nil {
			return err
		}
		if !inCore(d, dl.X, dl.Y, dl.W, dl.H) {
			return mclgerr.Invalidf("eco: delta %d (insert): target (%g, %g) puts %gx%g outside the core",
				i, dl.X, dl.Y, dl.W, dl.H)
		}
		name := dl.Name
		if name == "" {
			name = "eco"
		}
		c, err := d.AddCellChecked(name, dl.W, dl.H, rail)
		if err != nil {
			return mclgerr.Invalidf("eco: delta %d (insert): %v", i, err)
		}
		if c.RowSpan > len(d.Rows) {
			// Roll back the append so the working design stays structurally
			// valid even though the whole batch is being rejected.
			d.Cells = d.Cells[:len(d.Cells)-1]
			return mclgerr.Invalidf("eco: delta %d (insert): height %g spans %d rows but the core has %d",
				i, dl.H, c.RowSpan, len(d.Rows))
		}
		c.GX, c.GY = dl.X, dl.Y
		c.X, c.Y = dl.X, dl.Y
		m.markRect(dl.Y, dl.H)
		m.touched[c.ID] = true

	case OpDelete:
		c, err := movableTarget(d, i, dl)
		if err != nil {
			return err
		}
		m.markRect(c.Y, c.H)
		m.removeCell(c.ID)

	case OpResize:
		c, err := movableTarget(d, i, dl)
		if err != nil {
			return err
		}
		if !finite(dl.W, dl.H) || dl.W <= 0 || dl.H <= 0 {
			return mclgerr.Invalidf("eco: delta %d (resize): dimensions %gx%g must be positive and finite",
				i, dl.W, dl.H)
		}
		span := int(math.Round(dl.H / d.RowHeight))
		if span < 1 || math.Abs(float64(span)*d.RowHeight-dl.H) > 1e-9*d.RowHeight {
			return mclgerr.Invalidf("eco: delta %d (resize): height %g is not a multiple of row height %g",
				i, dl.H, d.RowHeight)
		}
		if span > len(d.Rows) {
			return mclgerr.Invalidf("eco: delta %d (resize): height %g spans %d rows but the core has %d",
				i, dl.H, span, len(d.Rows))
		}
		if dl.W > d.Core.Hi.X-d.Core.Lo.X+1e-9 {
			return mclgerr.Invalidf("eco: delta %d (resize): width %g exceeds core width %g",
				i, dl.W, d.Core.Hi.X-d.Core.Lo.X)
		}
		m.markRect(c.Y, c.H) // old footprint
		c.W, c.H, c.RowSpan = dl.W, dl.H, span
		m.markRect(c.Y, c.H) // new footprint
		m.touched[c.ID] = true

	default:
		return mclgerr.Invalidf("eco: delta %d: unknown op %q", i, dl.Op)
	}
	return nil
}

// removeCell deletes cell id, renumbers the survivors densely (Validate
// requires cell.ID == slice index), and rewrites the netlist: the deleted
// cell's pins are dropped and higher CellIDs shift down. Touched IDs shift
// with them. Fixed pins (CellID < 0) are untouched.
func (m *mutator) removeCell(id int) {
	d := m.d
	d.Cells = append(d.Cells[:id], d.Cells[id+1:]...)
	for i := id; i < len(d.Cells); i++ {
		d.Cells[i].ID = i
	}
	for ni := range d.Nets {
		n := &d.Nets[ni]
		pins := n.Pins[:0]
		for _, p := range n.Pins {
			if p.CellID == id {
				continue
			}
			if p.CellID > id {
				p.CellID--
			}
			pins = append(pins, p)
		}
		n.Pins = pins
	}
	touched := make(map[int]bool, len(m.touched))
	for t := range m.touched {
		switch {
		case t == id:
		case t > id:
			touched[t-1] = true
		default:
			touched[t] = true
		}
	}
	m.touched = touched
}
