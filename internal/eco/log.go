package eco

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"mclg/internal/mclgerr"
)

// fileLog is the durable half of the session journal: an append-only,
// fsync'd, checksummed JSON-lines file, structured like window.FileJournal
// — one header line binding the log to a (base design, options) signature,
// then one record per accepted batch. Appends are write-ahead with respect
// to the in-memory commit; a torn final line from a crash mid-append is
// detected by checksum and truncated on resume.
type fileLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// logHeader is the first line of a session log. Sig content-addresses the
// base design and the session options (Session.logSig), so a log never
// resumes against a different base or configuration; BaseHash pins the
// legalized state-zero placement; Meta is an opaque caller payload (a
// daemon stores the session-create request so a restart can rebuild the
// base design before replaying).
type logHeader struct {
	V        int             `json:"v"`
	ID       string          `json:"id"`
	Sig      string          `json:"sig"`
	BaseHash string          `json:"base_hash"`
	Meta     json.RawMessage `json:"meta,omitempty"`
}

// logRecord is one accepted batch. PosHash is the committed placement hash
// after the batch, verified on resume; Sum is a FNV-1a checksum over the
// record's canonical JSON with Sum blanked.
type logRecord struct {
	Seq     int     `json:"seq"`
	Deltas  []Delta `json:"deltas"`
	PosHash string  `json:"pos_hash"`
	Sum     string  `json:"sum,omitempty"`
}

func (r logRecord) sum() string {
	r.Sum = ""
	b, _ := json.Marshal(r)
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ReadLogMeta reads just the header of a session log: the session ID and
// the caller's Meta payload. A daemon restart scans its log directory with
// this to learn which sessions to rebuild before it can replay them.
func ReadLogMeta(path string) (id string, meta json.RawMessage, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, mclgerr.Stage("eco-log", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return "", nil, mclgerr.Invalidf("eco-log %s: empty file", path)
	}
	var hdr logHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.V != 1 {
		return "", nil, mclgerr.Invalidf("eco-log %s: unreadable header", path)
	}
	return hdr.ID, hdr.Meta, nil
}

// openFileLog opens (or creates) the session log at path. An existing file
// whose header matches (id, sig, baseHash) has its intact records returned
// for replay and is truncated past the last intact line; anything else —
// missing, torn header, mismatching signature — is reset to a fresh header.
func openFileLog(path, id, sig, baseHash string, meta []byte) (*fileLog, []logRecord, error) {
	var records []logRecord
	if data, err := os.ReadFile(path); err == nil {
		records = loadLog(data, id, sig, baseHash)
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, mclgerr.Stage("eco-log", err)
	}
	fail := func(err error) (*fileLog, []logRecord, error) {
		f.Close()
		return nil, nil, mclgerr.Stage("eco-log", err)
	}
	if len(records) == 0 {
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
		hdr, err := json.Marshal(logHeader{V: 1, ID: id, Sig: sig, BaseHash: baseHash, Meta: meta})
		if err != nil {
			return fail(err)
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	} else {
		// Resume after the last intact record; a torn tail is overwritten,
		// not extended.
		data, _ := os.ReadFile(path)
		n := intactLogLen(data, id, sig, baseHash)
		if err := f.Truncate(int64(n)); err != nil {
			return fail(err)
		}
		if _, err := f.Seek(int64(n), 0); err != nil {
			return fail(err)
		}
	}
	return &fileLog{f: f, path: path}, records, nil
}

// loadLog parses the log bytes, returning records up to the first torn or
// out-of-order line. A header mismatch discards everything.
func loadLog(data []byte, id, sig, baseHash string) []logRecord {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil
	}
	var hdr logHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.V != 1 || hdr.ID != id || hdr.Sig != sig || hdr.BaseHash != baseHash {
		return nil
	}
	var out []logRecord
	for sc.Scan() {
		var rec logRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return out // torn tail
		}
		if rec.Sum != rec.sum() || rec.Seq != len(out)+1 {
			return out
		}
		out = append(out, rec)
	}
	return out
}

// intactLogLen returns the byte length of the header plus every intact
// record — the offset appends resume from.
func intactLogLen(data []byte, id, sig, baseHash string) int {
	n := 0
	line := 0
	start := 0
	seq := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i == len(data) && start == i {
				break
			}
			chunk := data[start:i]
			ok := false
			if line == 0 {
				var hdr logHeader
				ok = json.Unmarshal(chunk, &hdr) == nil &&
					hdr.V == 1 && hdr.ID == id && hdr.Sig == sig && hdr.BaseHash == baseHash
			} else {
				var rec logRecord
				ok = json.Unmarshal(chunk, &rec) == nil &&
					rec.Sum == rec.sum() && rec.Seq == seq+1
				if ok {
					seq++
				}
			}
			if !ok || i == len(data) {
				if ok {
					n = i // intact but unterminated final line: keep it
				}
				break
			}
			n = i + 1
			line++
			start = i + 1
		}
	}
	return n
}

// Append durably persists one batch record: marshal with checksum, write
// one line, flush, fsync. The caller commits in memory only after Append
// returns nil.
func (l *fileLog) Append(rec logRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return mclgerr.Invalidf("eco-log: closed")
	}
	rec.Sum = rec.sum()
	line, err := json.Marshal(rec)
	if err != nil {
		return mclgerr.Stage("eco-log", err)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return mclgerr.Stage("eco-log", err)
	}
	if err := l.f.Sync(); err != nil {
		return mclgerr.Stage("eco-log", err)
	}
	return nil
}

// Close closes the underlying file; further Appends fail.
func (l *fileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Remove closes and deletes the log — called when the session is closed,
// so a finished session never resumes.
func (l *fileLog) Remove() error {
	l.Close()
	if err := os.Remove(l.path); err != nil && !os.IsNotExist(err) {
		return mclgerr.Stage("eco-log", err)
	}
	return nil
}
