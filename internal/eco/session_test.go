package eco

import (
	"context"
	"errors"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/mclgerr"
)

// testDesign generates a deterministic suite benchmark at a small scale.
func testDesign(t testing.TB, bench string, scale float64) *design.Design {
	t.Helper()
	e, err := gen.FindEntry(bench)
	if err != nil {
		t.Fatalf("FindEntry(%s): %v", bench, err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		t.Fatalf("Generate(%s@%g): %v", bench, scale, err)
	}
	return d
}

// testSession creates a session over a small benchmark.
func testSession(t testing.TB, bench string, scale float64, opts Options) *Session {
	t.Helper()
	s, err := Create(context.Background(), "test", testDesign(t, bench, scale), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s
}

// pickMovable returns the IDs of the first n movable cells.
func pickMovable(d *design.Design, n int) []int {
	var out []int
	for _, c := range d.Cells {
		if !c.Fixed {
			out = append(out, c.ID)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func TestApplyMoveCommitsLegalState(t *testing.T) {
	s := testSession(t, "fft_2", 0.004, Options{})
	d := s.Design()
	ids := pickMovable(d, 3)

	var deltas []Delta
	for _, id := range ids {
		c := d.Cells[id]
		// Push each cell a couple of rows up and a few sites right.
		deltas = append(deltas, Delta{
			Op: OpMove, Cell: id,
			X: min(c.X+4*d.SiteW, d.Core.Hi.X-c.W),
			Y: min(c.Y+2*d.RowHeight, d.Core.Hi.Y-c.H),
		})
	}
	res, err := s.Apply(context.Background(), deltas)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Seq != 1 {
		t.Errorf("Seq = %d, want 1", res.Seq)
	}
	if res.Runs == 0 || res.Bands == 0 {
		t.Errorf("expected dirty bands/runs, got %+v", res)
	}
	got := s.Design()
	if rep := design.CheckLegal(got); !rep.Legal() {
		t.Fatalf("committed state illegal: %s", rep.String())
	}
	if s.PosHash() != res.PosHash {
		t.Errorf("session hash %s != result hash %s", s.PosHash(), res.PosHash)
	}
	// The moved cells' targets must have been retargeted.
	for i, id := range ids {
		c := got.Cells[id]
		if c.GX != deltas[i].X || c.GY != deltas[i].Y {
			t.Errorf("cell %d target = (%g,%g), want (%g,%g)", id, c.GX, c.GY, deltas[i].X, deltas[i].Y)
		}
	}
}

func TestApplyInsertDeleteResize(t *testing.T) {
	s := testSession(t, "fft_2", 0.004, Options{})
	d := s.Design()
	ids := pickMovable(d, 2)
	ctx := context.Background()

	// Insert a new single-height cell near the core center.
	cx := (d.Core.Lo.X + d.Core.Hi.X) / 2
	cy := (d.Core.Lo.Y + d.Core.Hi.Y) / 2
	if _, err := s.Apply(ctx, []Delta{{Op: OpInsert, Name: "u_eco1", W: 4 * d.SiteW, H: d.RowHeight, X: cx, Y: cy}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	got := s.Design()
	if len(got.Cells) != len(d.Cells)+1 {
		t.Fatalf("cells = %d, want %d", len(got.Cells), len(d.Cells)+1)
	}
	newID := len(got.Cells) - 1
	if got.Cells[newID].Name != "u_eco1" {
		t.Errorf("inserted cell name = %q", got.Cells[newID].Name)
	}

	// Resize an existing cell to double height.
	if _, err := s.Apply(ctx, []Delta{{Op: OpResize, Cell: ids[0], W: got.Cells[ids[0]].W, H: 2 * d.RowHeight}}); err != nil {
		t.Fatalf("resize: %v", err)
	}
	got = s.Design()
	if got.Cells[ids[0]].RowSpan != 2 {
		t.Errorf("resized cell span = %d, want 2", got.Cells[ids[0]].RowSpan)
	}

	// Delete a cell: survivors renumber densely and stay legal.
	if _, err := s.Apply(ctx, []Delta{{Op: OpDelete, Cell: ids[1]}}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	got = s.Design()
	if len(got.Cells) != len(d.Cells) {
		t.Fatalf("cells after delete = %d, want %d", len(got.Cells), len(d.Cells))
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("post-delete design invalid: %v", err)
	}
	if rep := design.CheckLegal(got); !rep.Legal() {
		t.Fatalf("post-delete state illegal: %s", rep.String())
	}
	if s.Seq() != 3 {
		t.Errorf("seq = %d, want 3", s.Seq())
	}
}

func TestApplyRejectsInvalidDeltas(t *testing.T) {
	s := testSession(t, "fft_2", 0.004, Options{})
	d := s.Design()
	id := pickMovable(d, 1)[0]
	var fixedID int = -1
	for _, c := range d.Cells {
		if c.Fixed {
			fixedID = c.ID
			break
		}
	}
	hash := s.PosHash()
	ctx := context.Background()

	cases := []struct {
		name   string
		deltas []Delta
	}{
		{"empty batch", nil},
		{"unknown op", []Delta{{Op: "swap", Cell: id}}},
		{"out of range id", []Delta{{Op: OpMove, Cell: len(d.Cells) + 7, X: d.Core.Lo.X, Y: d.Core.Lo.Y}}},
		{"negative id", []Delta{{Op: OpDelete, Cell: -1}}},
		{"out-of-core move", []Delta{{Op: OpMove, Cell: id, X: d.Core.Hi.X + 100, Y: d.Core.Lo.Y}}},
		{"non-finite move", []Delta{{Op: OpMove, Cell: id, X: nan(), Y: d.Core.Lo.Y}}},
		{"resize off-row-height", []Delta{{Op: OpResize, Cell: id, W: d.SiteW, H: 1.5 * d.RowHeight}}},
		{"resize beyond rows", []Delta{{Op: OpResize, Cell: id, W: d.SiteW, H: float64(len(d.Rows)+1) * d.RowHeight}}},
		{"resize beyond core width", []Delta{{Op: OpResize, Cell: id, W: d.Core.Hi.X - d.Core.Lo.X + d.SiteW, H: d.RowHeight}}},
		{"insert outside core", []Delta{{Op: OpInsert, W: d.SiteW, H: d.RowHeight, X: d.Core.Lo.X - 50, Y: d.Core.Lo.Y}}},
		{"insert bad rail", []Delta{{Op: OpInsert, W: d.SiteW, H: d.RowHeight, X: d.Core.Lo.X, Y: d.Core.Lo.Y, Rail: "VXX"}}},
		{"valid then invalid is atomic", []Delta{
			{Op: OpMove, Cell: id, X: d.Core.Lo.X, Y: d.Core.Lo.Y},
			{Op: OpDelete, Cell: -5},
		}},
	}
	if fixedID >= 0 {
		cases = append(cases,
			struct {
				name   string
				deltas []Delta
			}{"move fixed cell", []Delta{{Op: OpMove, Cell: fixedID, X: d.Core.Lo.X, Y: d.Core.Lo.Y}}},
			struct {
				name   string
				deltas []Delta
			}{"delete fixed cell", []Delta{{Op: OpDelete, Cell: fixedID}}},
		)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Apply(ctx, tc.deltas); !errors.Is(err, mclgerr.ErrInvalidInput) {
				t.Fatalf("Apply = %v, want ErrInvalidInput", err)
			}
		})
	}
	if s.PosHash() != hash || s.Seq() != 0 {
		t.Fatalf("rejected batches mutated the session: seq=%d hash=%s (want 0, %s)", s.Seq(), s.PosHash(), hash)
	}
}

func TestClosedSessionRejectsApplies(t *testing.T) {
	s := testSession(t, "fft_2", 0.004, Options{})
	id := pickMovable(s.Design(), 1)[0]
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err := s.Apply(context.Background(), []Delta{{Op: OpDelete, Cell: id}})
	if !errors.Is(err, mclgerr.ErrInvalidInput) {
		t.Fatalf("Apply after close = %v, want ErrInvalidInput", err)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
