package eco

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/regress"
)

// fuzzBase caches one legalized fft_2@0.004 design: Create over it skips the
// cold solve, so each fuzz iteration pays only the delta pipeline.
var fuzzBase struct {
	once sync.Once
	d    *design.Design
}

func legalFuzzBase(tb testing.TB) *design.Design {
	fuzzBase.once.Do(func() {
		s, err := Create(context.Background(), "seed", testDesign(tb, "fft_2", 0.004), Options{})
		if err != nil {
			tb.Fatalf("legalizing fuzz base: %v", err)
		}
		fuzzBase.d = s.Design()
	})
	return fuzzBase.d
}

// fuzzDeltas decodes an arbitrary byte stream into delta batches. The
// decoder is intentionally sloppy: coordinates land inside, outside, and far
// outside the core, IDs run past the cell array, sizes break row-height
// alignment, ops are sometimes garbage, and a NaN byte poisons a coordinate
// — the fuzzer explores both the accept and every reject path.
func fuzzDeltas(d *design.Design, data []byte) [][]Delta {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	coord := func(lo, hi float64) float64 {
		b := next()
		switch b % 16 {
		case 0:
			return lo - 3*(hi-lo) // far out
		case 1:
			return math.NaN()
		case 2:
			return hi + float64(next())
		default:
			return lo + (hi-lo)*float64(b)/255
		}
	}
	ops := []Op{OpMove, OpInsert, OpDelete, OpResize, Op("bogus")}
	var batches [][]Delta
	for len(data) > 0 && len(batches) < 3 {
		n := int(next()%4) + 1
		var batch []Delta
		for i := 0; i < n && len(data) > 0; i++ {
			op := ops[next()%byte(len(ops))]
			dl := Delta{Op: op, Cell: int(next()) - 8} // negative and overflow IDs included
			switch op {
			case OpMove, OpInsert:
				dl.X = coord(d.Core.Lo.X, d.Core.Hi.X)
				dl.Y = coord(d.Core.Lo.Y, d.Core.Hi.Y)
				if op == OpInsert {
					dl.Name = "u_fz"
					dl.W = float64(next()%8+1) * d.SiteW
					dl.H = float64(next()%4) * d.RowHeight / 2 // half-heights are invalid
					if next()%4 == 0 {
						dl.Rail = "VXX"
					}
				}
			case OpResize:
				dl.W = float64(next()) * d.SiteW / 4
				dl.H = float64(next()%5) * d.RowHeight
			}
			batch = append(batch, dl)
		}
		batches = append(batches, batch)
	}
	return batches
}

// FuzzECODeltas feeds random valid/invalid delta streams into a live
// session and asserts the three session invariants no input may break:
// applies never panic, rejected batches leave the session bit-identical
// and carry a typed mclgerr error, and every committed state passes the
// whole-design legality checker with a self-consistent hash.
func FuzzECODeltas(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 200, 100, 50, 25})
	f.Add([]byte{3, 60, 120, 180, 240, 17, 34, 51, 68, 85, 102, 119, 136, 153})
	base := legalFuzzBase(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Create(context.Background(), "fuzz", base.Clone(), Options{})
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for _, batch := range fuzzDeltas(base, data) {
			seq, hash := s.Seq(), s.PosHash()
			res, err := s.Apply(context.Background(), batch)
			if err != nil {
				if !errors.Is(err, mclgerr.ErrInvalidInput) && mclgerr.Class(err) == "other" {
					t.Fatalf("untyped rejection: %v", err)
				}
				if s.Seq() != seq || s.PosHash() != hash {
					t.Fatalf("rejected batch mutated the session: seq %d->%d hash %s->%s",
						seq, s.Seq(), hash, s.PosHash())
				}
				continue
			}
			got := s.Design()
			if rep := design.CheckLegal(got); !rep.Legal() {
				t.Fatalf("committed illegal placement: %s", rep.String())
			}
			if res.Seq != seq+1 || res.PosHash != s.PosHash() || res.PosHash != regress.PositionHash(got) {
				t.Fatalf("inconsistent commit: res=%+v session seq=%d hash=%s", res, s.Seq(), s.PosHash())
			}
		}
	})
}
