package refine

import (
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

func legalized(t *testing.T, seed int64) *design.Design {
	t.Helper()
	d, err := gen.Generate(gen.Spec{
		Name: "r", SingleCells: 250, DoubleCells: 25, Density: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.New(core.Options{}).Legalize(d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRefineRejectsIllegalInput(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 20, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 4, 10, design.VSS)
	a.X, a.Y = 0.5, 0 // off-site
	if _, err := Refine(d, Options{}); err == nil {
		t.Error("expected error for illegal input")
	}
}

func TestRefineDisplacementNeverWorse(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		d := legalized(t, seed)
		before := metrics.MeasureDisplacement(d).TotalSites
		res, err := Refine(d, Options{Objective: Displacement})
		if err != nil {
			t.Fatal(err)
		}
		after := metrics.MeasureDisplacement(d).TotalSites
		if after > before+1e-9 {
			t.Errorf("seed %d: displacement grew %g -> %g", seed, before, after)
		}
		if res.Initial != before || res.Final != after {
			t.Errorf("seed %d: result bookkeeping off: %+v", seed, res)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("seed %d: refinement broke legality: %v", seed, rep)
		}
	}
}

func TestRefineHPWLNeverWorse(t *testing.T) {
	d := legalized(t, 7)
	before := metrics.HPWL(d)
	res, err := Refine(d, Options{Objective: HPWL, MaxPasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := metrics.HPWL(d)
	if after > before+1e-6 {
		t.Errorf("HPWL grew %g -> %g", before, after)
	}
	if res.Final > res.Initial+1e-6 {
		t.Errorf("objective grew: %+v", res)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("refinement broke legality: %v", rep)
	}
}

func TestRefineSwapImprovesCrossedPair(t *testing.T) {
	// Two same-size cells placed at each other's targets: a swap fixes it.
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 40, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	a.GX, a.GY = 20, 0
	b.GX, b.GY = 0, 0
	a.X, a.Y = 0, 0 // a sits where b wants to be
	b.X, b.Y = 20, 0
	res, err := Refine(d, Options{Objective: Displacement})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 0 {
		t.Errorf("final displacement = %g, want 0 (res %+v)", res.Final, res)
	}
	if a.X != 20 || b.X != 0 {
		t.Errorf("cells not swapped: a.X=%g b.X=%g", a.X, b.X)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("swap broke legality: %v", rep)
	}
}

func TestRefineSlideMovesTowardTarget(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 40, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 4, 10, design.VSS)
	a.GX, a.GY = 30, 0
	a.X, a.Y = 0, 0 // legal but far from its target; space at 30 is free
	res, err := Refine(d, Options{Objective: Displacement})
	if err != nil {
		t.Fatal(err)
	}
	if a.X != 30 || a.Y != 0 {
		t.Errorf("cell not slid home: (%g, %g)", a.X, a.Y)
	}
	if res.Slides == 0 {
		t.Error("no slide recorded")
	}
}

func TestRefineRespectsRailsOnSwap(t *testing.T) {
	// Two double-height cells with different bottom rails must never swap
	// (they are in different buckets).
	d := design.NewDesign(design.Config{NumRows: 6, NumSites: 30, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 4, 20, design.VSS) // rows 0, 2, 4
	b := d.AddCell("b", 4, 20, design.VDD) // rows 1, 3
	a.GX, a.GY = 20, 10
	b.GX, b.GY = 0, 0
	a.X, a.Y = 0, 0
	b.X, b.Y = 20, 10
	if _, err := Refine(d, Options{Objective: Displacement}); err != nil {
		t.Fatal(err)
	}
	rep := design.CheckLegal(d)
	if !rep.Legal() {
		t.Fatalf("refinement broke rails: %v", rep)
	}
}

func TestRefineFixedPointTerminates(t *testing.T) {
	d := legalized(t, 11)
	res1, err := Refine(d, Options{Objective: Displacement, MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A second run from the fixed point must do nothing.
	res2, err := Refine(d, Options{Objective: Displacement, MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Slides != 0 || res2.Swaps != 0 {
		t.Errorf("second run still moved cells: %+v (first %+v)", res2, res1)
	}
}
