// Package refine implements a post-legalization detailed-placement pass in
// the spirit of the follow-on work the paper cites (MrDP, Lin et al.
// ICCAD 2016): starting from a legal mixed-cell-height placement, cells are
// locally re-seated and swapped to reduce either total displacement or
// wirelength, while every move preserves full legality (rows, sites, power
// rails, no overlap).
//
// Two local operators run in alternating passes until a fixed point:
//
//   - slide: remove one cell and re-place it at the free position nearest
//     its objective target (its global position, or the optimal region
//     median of its connected nets for the HPWL objective);
//   - swap: exchange two cells of identical footprint when that lowers the
//     objective.
package refine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/metrics"
)

// Objective selects what the refiner minimizes.
type Objective int

const (
	// Displacement minimizes Σ(|Δx| + |Δy|) from the global placement.
	Displacement Objective = iota
	// HPWL minimizes total half-perimeter wirelength.
	HPWL
)

// Options configures Refine.
type Options struct {
	Objective Objective
	// MaxPasses bounds the slide/swap rounds; 0 means 5.
	MaxPasses int
	// SwapWindow is the max distance (in site widths) between swap
	// candidates; 0 means 30.
	SwapWindow float64
}

// Result summarizes a refinement run.
type Result struct {
	Slides, Swaps  int
	Passes         int
	Initial, Final float64 // objective values
}

// Refine improves the placement in place. The input must be legal; the
// output is guaranteed legal.
func Refine(d *design.Design, opts Options) (*Result, error) {
	return RefineContext(context.Background(), d, opts)
}

// RefineContext is Refine with cooperative cancellation between passes.
func RefineContext(ctx context.Context, d *design.Design, opts Options) (*Result, error) {
	if rep := design.CheckLegal(d); !rep.Legal() {
		return nil, fmt.Errorf("refine: input placement is illegal: %v: %w",
			rep, mclgerr.ErrInvalidInput)
	}
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 5
	}
	if opts.SwapWindow == 0 {
		opts.SwapWindow = 30
	}

	occ := design.NewOccupancy(d)
	for _, c := range d.Cells {
		if c.Fixed {
			occ.BlockArea(c.ID, c.X, c.Y, c.W, c.H)
		} else if err := occ.Place(c, c.X, c.Y); err != nil {
			return nil, fmt.Errorf("refine: building occupancy: %w", err)
		}
	}

	r := &refiner{d: d, occ: occ, opts: opts}
	if opts.Objective == HPWL {
		r.buildNetIndex()
	}
	res := &Result{Initial: r.objective()}
	for pass := 0; pass < opts.MaxPasses; pass++ {
		if err := mclgerr.FromContext(ctx); err != nil {
			return nil, err
		}
		res.Passes = pass + 1
		moved, err := r.slidePass()
		if err != nil {
			return nil, err
		}
		swapped, err := r.swapPass()
		if err != nil {
			return nil, err
		}
		res.Slides += moved
		res.Swaps += swapped
		if moved+swapped == 0 {
			break
		}
	}
	res.Final = r.objective()
	return res, nil
}

type refiner struct {
	d        *design.Design
	occ      *design.Occupancy
	opts     Options
	cellNets [][]int // per cell: indices of nets touching it (HPWL objective)
}

func (r *refiner) buildNetIndex() {
	r.cellNets = make([][]int, len(r.d.Cells))
	for ni := range r.d.Nets {
		for _, p := range r.d.Nets[ni].Pins {
			if p.CellID >= 0 {
				r.cellNets[p.CellID] = append(r.cellNets[p.CellID], ni)
			}
		}
	}
}

func (r *refiner) objective() float64 {
	if r.opts.Objective == HPWL {
		return metrics.HPWL(r.d)
	}
	return metrics.MeasureDisplacement(r.d).TotalSites
}

// cellCost evaluates the objective contribution of one cell at a position.
func (r *refiner) cellCost(c *design.Cell, x, y float64) float64 {
	if r.opts.Objective == HPWL {
		return r.netsHPWL(c, x, y)
	}
	return math.Abs(x-c.GX) + math.Abs(y-c.GY)
}

// netsHPWL computes the HPWL of all nets touching c with c virtually at
// (x, y).
func (r *refiner) netsHPWL(c *design.Cell, x, y float64) float64 {
	total := 0.0
	for _, ni := range r.cellNets[c.ID] {
		n := &r.d.Nets[ni]
		if len(n.Pins) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, p := range n.Pins {
			var px, py float64
			switch {
			case p.CellID < 0:
				px, py = p.DX, p.DY
			case p.CellID == c.ID:
				px, py = x+p.DX, y+pinDY(c, p)
			default:
				oc := r.d.Cells[p.CellID]
				px, py = oc.X+p.DX, oc.Y+pinDY(oc, p)
			}
			minX, maxX = math.Min(minX, px), math.Max(maxX, px)
			minY, maxY = math.Min(minY, py), math.Max(maxY, py)
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

func pinDY(c *design.Cell, p design.Pin) float64 {
	if c.Flipped {
		return c.H - p.DY
	}
	return p.DY
}

// target returns the position this cell would ideally occupy.
func (r *refiner) target(c *design.Cell) (float64, float64) {
	if r.opts.Objective != HPWL || len(r.cellNets[c.ID]) == 0 {
		return c.GX, c.GY
	}
	// Optimal region: median of the other pins of connected nets.
	var xs, ys []float64
	for _, ni := range r.cellNets[c.ID] {
		for _, p := range r.d.Nets[ni].Pins {
			if p.CellID == c.ID {
				continue
			}
			if p.CellID < 0 {
				xs = append(xs, p.DX)
				ys = append(ys, p.DY)
			} else {
				oc := r.d.Cells[p.CellID]
				xs = append(xs, oc.X+p.DX)
				ys = append(ys, oc.Y+pinDY(oc, p))
			}
		}
	}
	if len(xs) == 0 {
		return c.GX, c.GY
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return xs[len(xs)/2] - c.W/2, ys[len(ys)/2] - c.H/2
}

// slidePass re-seats each movable cell at the free position nearest its
// target, keeping the move only when the objective strictly improves.
func (r *refiner) slidePass() (int, error) {
	cells := movableByGain(r.d)
	moved := 0
	for _, c := range cells {
		tx, ty := r.target(c)
		cur := r.cellCost(c, c.X, c.Y)
		r.occ.Remove(c, c.X, c.Y)
		x, y, ok := design.NearestFree(r.d, r.occ, c, tx, ty)
		if ok && r.cellCost(c, x, y) < cur-1e-9 {
			if err := r.occ.Place(c, x, y); err == nil {
				r.moveCell(c, x, y)
				moved++
				continue
			}
		}
		// The spot was just freed; failure means the occupancy grid no
		// longer matches the cell positions.
		if err := r.occ.Place(c, c.X, c.Y); err != nil {
			return moved, fmt.Errorf("refine: lost position of cell %d: %v: %w",
				c.ID, err, mclgerr.ErrUnplacedCells)
		}
	}
	return moved, nil
}

// swapPass exchanges same-footprint cell pairs when beneficial.
func (r *refiner) swapPass() (int, error) {
	d := r.d
	// Bucket cells by (width, span, evenSpan ? bottomRail : -).
	type key struct {
		w    float64
		span int
		rail design.RailType
	}
	buckets := map[key][]*design.Cell{}
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		k := key{w: c.W, span: c.RowSpan}
		if c.EvenSpan() {
			k.rail = c.BottomRail
		}
		buckets[k] = append(buckets[k], c)
	}
	swapped := 0
	for _, cells := range buckets {
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].X != cells[j].X {
				return cells[i].X < cells[j].X
			}
			return cells[i].ID < cells[j].ID
		})
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				a, b := cells[i], cells[j]
				if b.X-a.X > r.opts.SwapWindow*d.SiteW {
					break
				}
				before := r.cellCost(a, a.X, a.Y) + r.cellCost(b, b.X, b.Y)
				after := r.cellCost(a, b.X, b.Y) + r.cellCost(b, a.X, a.Y)
				if after < before-1e-9 {
					ax, ay := a.X, a.Y
					r.moveCell(a, b.X, b.Y)
					r.moveCell(b, ax, ay)
					// Footprints are identical; re-register both cells.
					if err := r.refreshOccupancy(a, b); err != nil {
						return swapped, err
					}
					swapped++
				}
			}
		}
	}
	return swapped, nil
}

// refreshOccupancy re-registers two swapped cells. Their footprints are
// identical, so clearing both then placing both is always consistent; a
// failure means the occupancy grid is corrupt and is surfaced as a typed
// error.
func (r *refiner) refreshOccupancy(a, b *design.Cell) error {
	// Clear any sites either owns (positions already swapped in the cells).
	r.occ.Remove(a, b.X, b.Y)
	r.occ.Remove(b, a.X, a.Y)
	r.occ.Remove(a, a.X, a.Y)
	r.occ.Remove(b, b.X, b.Y)
	if err := r.occ.Place(a, a.X, a.Y); err != nil {
		return fmt.Errorf("refine: swap broke occupancy: %v: %w", err, mclgerr.ErrUnplacedCells)
	}
	if err := r.occ.Place(b, b.X, b.Y); err != nil {
		return fmt.Errorf("refine: swap broke occupancy: %v: %w", err, mclgerr.ErrUnplacedCells)
	}
	return nil
}

func (r *refiner) moveCell(c *design.Cell, x, y float64) {
	c.X, c.Y = x, y
	row := r.d.RowAt(y + r.d.RowHeight/2)
	if !c.EvenSpan() && row >= 0 {
		c.Flipped = r.d.Rows[row].Rail != c.BottomRail
	}
}

// movableByGain orders cells by descending displacement so the worst
// offenders move first.
func movableByGain(d *design.Design) []*design.Cell {
	out := make([]*design.Cell, 0, len(d.Cells))
	for _, c := range d.Cells {
		if !c.Fixed {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].DisplacementSq(), out[j].DisplacementSq()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
