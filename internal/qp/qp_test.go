package qp

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/dense"
)

func identity(n int) *dense.Matrix {
	m := dense.New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func TestUnconstrainedMinimum(t *testing.T) {
	// min ½||x - c||²: optimum x = c.
	c := []float64{3, -2, 7}
	p := &Problem{H: identity(3), P: []float64{-3, 2, -7}}
	x, err := Solve(p, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if math.Abs(x[i]-c[i]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], c[i])
		}
	}
}

func TestSingleActiveConstraint(t *testing.T) {
	// min ½(x-3)² s.t. x <= 1, i.e. -x >= -1. Optimum x = 1.
	p := &Problem{
		H:  identity(1),
		P:  []float64{-3},
		G:  dense.FromRows([][]float64{{-1}}),
		Hv: []float64{-1},
	}
	x, err := Solve(p, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-8 {
		t.Errorf("x = %g, want 1", x[0])
	}
}

func TestInactiveConstraintIgnored(t *testing.T) {
	// min ½(x-3)² s.t. x >= -5. Optimum x = 3 (constraint slack).
	p := &Problem{
		H:  identity(1),
		P:  []float64{-3},
		G:  dense.FromRows([][]float64{{1}}),
		Hv: []float64{-5},
	}
	x, err := Solve(p, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-8 {
		t.Errorf("x = %g, want 3", x[0])
	}
}

func TestTwoCellLegalization(t *testing.T) {
	// Two unit-width cells that both want position 5 in the same row:
	// min ½(x1-5)² + ½(x2-5)² s.t. x2 - x1 >= 1.
	// Optimum: x1 = 4.5, x2 = 5.5.
	p := &Problem{
		H:  identity(2),
		P:  []float64{-5, -5},
		G:  dense.FromRows([][]float64{{-1, 1}}),
		Hv: []float64{1},
	}
	x, err := Solve(p, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4.5) > 1e-8 || math.Abs(x[1]-5.5) > 1e-8 {
		t.Errorf("x = %v, want [4.5 5.5]", x)
	}
}

func TestStartingPointMustBeFeasible(t *testing.T) {
	p := &Problem{
		H:  identity(1),
		P:  []float64{0},
		G:  dense.FromRows([][]float64{{1}}),
		Hv: []float64{5},
	}
	if _, err := Solve(p, []float64{0}); err != ErrInfeasibleStart {
		t.Errorf("err = %v, want ErrInfeasibleStart", err)
	}
}

func TestValidateCatchesMismatches(t *testing.T) {
	p := &Problem{H: identity(2), P: []float64{1}}
	if err := p.Validate(); err == nil {
		t.Error("expected dimension error")
	}
	p2 := &Problem{H: identity(1), P: []float64{1}, G: dense.New(2, 1), Hv: []float64{1}}
	if err := p2.Validate(); err == nil {
		t.Error("expected h length error")
	}
}

func TestObjectiveAndFeasible(t *testing.T) {
	p := &Problem{
		H:  identity(2),
		P:  []float64{-1, 0},
		G:  dense.FromRows([][]float64{{1, 0}}),
		Hv: []float64{0},
	}
	x := []float64{2, 3}
	want := 0.5*(4+9) - 2.0
	if got := p.Objective(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("Objective = %g, want %g", got, want)
	}
	if !p.Feasible(x, 0) {
		t.Error("x should be feasible")
	}
	if p.Feasible([]float64{-1, 0}, 1e-9) {
		t.Error("x should be infeasible")
	}
}

// Random chained-cell problems: minimize displacement subject to ordering
// constraints — the exact shape of the legalization QP. Verified against a
// brute-force projected gradient method.
func TestRandomChainProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		targets := make([]float64, n)
		for i := range targets {
			targets[i] = rng.Float64() * 10
		}
		widths := make([]float64, n)
		for i := range widths {
			widths[i] = 0.5 + rng.Float64()*2
		}
		// Constraints: x[i+1] - x[i] >= widths[i], plus x[0] >= 0.
		g := dense.New(n, n)
		h := make([]float64, n)
		for i := 0; i+1 < n; i++ {
			g.Set(i, i, -1)
			g.Set(i, i+1, 1)
			h[i] = widths[i]
		}
		g.Set(n-1, 0, 1)
		h[n-1] = 0
		p := &Problem{H: identity(n), P: neg(targets), G: g, Hv: h}
		// Feasible start: spread the cells out.
		x0 := make([]float64, n)
		for i := 1; i < n; i++ {
			x0[i] = x0[i-1] + widths[i-1] + 1
		}
		x, err := Solve(p, x0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !p.Feasible(x, 1e-7) {
			t.Fatalf("trial %d: solution infeasible", trial)
		}
		ref := chainExact(targets, widths)
		if math.Abs(p.Objective(x)-p.Objective(ref)) > 1e-6 {
			t.Errorf("trial %d: objective %g vs exact PAVA %g",
				trial, p.Objective(x), p.Objective(ref))
		}
	}
}

// Degenerate active sets — duplicate or linearly dependent constraint rows —
// arise whenever a variable bound coincides with a constraint-graph row (the
// exact window relaxations build both). The KKT system is then singular; the
// solver must drop only the dependent rows, never an independent one, and
// must keep the multiplier vector aligned with the working set. Before the
// fix, eqStep recursively dropped the *last* working-set row and returned a
// short multiplier vector, which either panicked the multiplier scan or let
// the step cross a still-active independent constraint.
func TestDuplicateActiveRows(t *testing.T) {
	// min ½(x−3)² s.t. x ≥ 0 stated twice, x ≤ 1. Start at x = 0: both
	// duplicates are active, so the first KKT solve is singular.
	p := &Problem{
		H:  identity(1),
		P:  []float64{-3},
		G:  dense.FromRows([][]float64{{1}, {1}, {-1}}),
		Hv: []float64{0, 0, -1},
	}
	x, err := Solve(p, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-8 {
		t.Errorf("x = %g, want 1", x[0])
	}
}

func TestDependentRowsDoNotEvictIndependentConstraint(t *testing.T) {
	// min ½‖x − (3,3)‖² with working set [x0 ≥ 0, x0 ≥ 0 (dup), x1 ≤ 1] all
	// active at the start (0, 1). Dropping the last row — the only
	// constraint on x1 — lets the step march x1 past its bound while the
	// blocking loop skips it as "active". The optimum is (3, 1).
	p := &Problem{
		H:  identity(2),
		P:  []float64{-3, -3},
		G:  dense.FromRows([][]float64{{1, 0}, {1, 0}, {0, -1}}),
		Hv: []float64{0, 0, -1},
	}
	x, err := Solve(p, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(x, 1e-7) {
		t.Fatalf("solution %v violates constraints", x)
	}
	if math.Abs(x[0]-3) > 1e-8 || math.Abs(x[1]-1) > 1e-8 {
		t.Errorf("x = %v, want [3 1]", x)
	}
}

func TestIndependentRows(t *testing.T) {
	g := dense.FromRows([][]float64{
		{1, 0},  // kept
		{1, 0},  // duplicate of row 0
		{0, 1},  // kept
		{1, 1},  // dependent on rows 0 and 2
		{2, 0},  // scaled duplicate of row 0
		{1, -1}, // dependent on rows 0 and 2
	})
	keep := independentRows(g, []int{0, 1, 2, 3, 4, 5})
	want := []int{0, 2}
	if len(keep) != len(want) || keep[0] != want[0] || keep[1] != want[1] {
		t.Errorf("independentRows = %v, want %v", keep, want)
	}
	if got := independentRows(g, nil); got != nil {
		t.Errorf("independentRows(empty) = %v, want nil", got)
	}
}

func TestEqStepMultipliersAlignedWithWorkingSet(t *testing.T) {
	// With dependent rows in the working set, the returned multiplier slice
	// must still have one entry per working-set row (zeros for the dropped
	// duplicates): the caller indexes it by working-set position.
	p := &Problem{
		H:  identity(1),
		P:  []float64{-3},
		G:  dense.FromRows([][]float64{{1}, {1}}),
		Hv: []float64{0, 0},
	}
	grad := []float64{-3} // at x = 0
	d, lambda, err := eqStep(p, grad, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if normInf(d) > 1e-10 {
		t.Errorf("d = %v, want 0 (x0 pinned by the working set)", d)
	}
	if len(lambda) != 2 {
		t.Fatalf("lambda has length %d, want 2", len(lambda))
	}
	if math.Abs(lambda[0]+3) > 1e-8 || lambda[1] != 0 {
		t.Errorf("lambda = %v, want [-3 0]", lambda)
	}
}

func neg(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = -v[i]
	}
	return out
}

// chainExact solves min Σ(x_i − t_i)² s.t. x_{i+1} − x_i ≥ w_i, x_0 ≥ 0
// exactly by reduction to isotonic regression: with prefix widths P_i,
// y_i = x_i − P_i must be nondecreasing and nonnegative, and the objective
// becomes Σ(y_i − (t_i − P_i))². PAVA solves the monotone problem; clipping
// at zero then yields the bounded solution.
func chainExact(targets, widths []float64) []float64 {
	n := len(targets)
	prefix := make([]float64, n)
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1] + widths[i-1]
	}
	// PAVA with unit weights.
	type block struct {
		sum   float64
		count int
	}
	var blocks []block
	for i := 0; i < n; i++ {
		blocks = append(blocks, block{targets[i] - prefix[i], 1})
		for len(blocks) >= 2 {
			a, b := blocks[len(blocks)-2], blocks[len(blocks)-1]
			if a.sum/float64(a.count) <= b.sum/float64(b.count) {
				break
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, block{a.sum + b.sum, a.count + b.count})
		}
	}
	x := make([]float64, 0, n)
	for _, bl := range blocks {
		v := bl.sum / float64(bl.count)
		if v < 0 {
			v = 0
		}
		for k := 0; k < bl.count; k++ {
			x = append(x, v+prefix[len(x)])
		}
	}
	return x
}
