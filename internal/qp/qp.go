// Package qp implements a dense primal active-set method for convex
// quadratic programs
//
//	min ½ xᵀHx + pᵀx   s.t.   Gx ≥ h,
//
// following Nocedal & Wright, Numerical Optimization, §16.5. It is the
// exact reference the MMSIM legalizer is validated against on small
// instances; the production path never calls it.
package qp

import (
	"errors"
	"fmt"
	"math"

	"mclg/internal/dense"
)

// Problem is a convex QP with inequality constraints Gx >= h.
// H must be symmetric positive definite.
type Problem struct {
	H  *dense.Matrix
	P  []float64
	G  *dense.Matrix
	Hv []float64 // right-hand side h of Gx >= h
}

// Validate checks dimensions.
func (p *Problem) Validate() error {
	n := len(p.P)
	if p.H.R != n || p.H.C != n {
		return fmt.Errorf("qp: H is %dx%d, want %dx%d", p.H.R, p.H.C, n, n)
	}
	if p.G != nil {
		if p.G.C != n {
			return fmt.Errorf("qp: G has %d columns, want %d", p.G.C, n)
		}
		if len(p.Hv) != p.G.R {
			return fmt.Errorf("qp: h has length %d, want %d", len(p.Hv), p.G.R)
		}
	} else if len(p.Hv) != 0 {
		return errors.New("qp: h given without G")
	}
	return nil
}

// Objective evaluates ½ xᵀHx + pᵀx.
func (p *Problem) Objective(x []float64) float64 {
	tmp := make([]float64, len(x))
	p.H.MulVec(tmp, x)
	s := 0.0
	for i := range x {
		s += 0.5*x[i]*tmp[i] + p.P[i]*x[i]
	}
	return s
}

// Feasible reports whether Gx >= h - tol holds componentwise.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if p.G == nil {
		return true
	}
	gx := make([]float64, p.G.R)
	p.G.MulVec(gx, x)
	for i := range gx {
		if gx[i] < p.Hv[i]-tol {
			return false
		}
	}
	return true
}

// ErrMaxIter is returned when the active-set loop fails to terminate.
var ErrMaxIter = errors.New("qp: active-set iteration limit exceeded")

// ErrInfeasibleStart is returned when x0 violates the constraints.
var ErrInfeasibleStart = errors.New("qp: starting point is infeasible")

// Solve runs the primal active-set method from the feasible starting point
// x0 and returns the optimizer. For strictly convex problems the result is
// the unique global minimum.
func Solve(p *Problem, x0 []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	const tol = 1e-9
	n := len(p.P)
	if len(x0) != n {
		return nil, fmt.Errorf("qp: x0 has length %d, want %d", len(x0), n)
	}
	if !p.Feasible(x0, 1e-7) {
		return nil, ErrInfeasibleStart
	}
	x := append([]float64(nil), x0...)
	m := 0
	if p.G != nil {
		m = p.G.R
	}
	// Working set: indices of constraints treated as equalities.
	active := make([]bool, m)
	gx := make([]float64, m)
	if p.G != nil {
		p.G.MulVec(gx, x)
		for i := 0; i < m; i++ {
			active[i] = gx[i] <= p.Hv[i]+tol
		}
	}

	maxIter := 100 * (n + m + 10)
	grad := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		// Gradient at x.
		p.H.MulVec(grad, x)
		for i := range grad {
			grad[i] += p.P[i]
		}
		// Assemble the working set.
		var ws []int
		for i := 0; i < m; i++ {
			if active[i] {
				ws = append(ws, i)
			}
		}
		d, lambda, err := eqStep(p, grad, ws)
		if err != nil {
			return nil, err
		}
		if normInf(d) <= tol {
			// Stationary on the working set: check multipliers.
			drop, min := -1, -tol
			for k, i := range ws {
				if lambda[k] < min {
					min, drop = lambda[k], i
				}
			}
			if drop < 0 {
				return x, nil // KKT satisfied
			}
			active[drop] = false
			continue
		}
		// Step length: largest alpha in (0,1] keeping inactive constraints.
		alpha, block := 1.0, -1
		if p.G != nil {
			gd := make([]float64, m)
			p.G.MulVec(gd, d)
			p.G.MulVec(gx, x)
			for i := 0; i < m; i++ {
				if active[i] || gd[i] >= -tol {
					continue
				}
				a := (p.Hv[i] - gx[i]) / gd[i]
				if a < alpha {
					alpha, block = a, i
				}
			}
		}
		if alpha < 0 {
			alpha = 0
		}
		for i := range x {
			x[i] += alpha * d[i]
		}
		if block >= 0 {
			active[block] = true
		}
	}
	return nil, ErrMaxIter
}

// eqStep solves the equality-constrained subproblem
//
//	min ½(x+d)ᵀH(x+d) + pᵀ(x+d)   s.t.   G_W d = 0
//
// via its KKT system and returns the step d and the multipliers for the
// working set.
func eqStep(p *Problem, grad []float64, ws []int) (d, lambda []float64, err error) {
	n := len(p.P)
	// Degenerate working sets are routine, not exceptional: stacked bounds
	// and constraint-graph rows on the same variables produce duplicate or
	// linearly dependent G_W rows, which make the KKT matrix singular. Keep
	// only a maximal independent subset; the dropped rows' multipliers are
	// zero (their constraints are implied by the kept ones), so the caller's
	// working set and multiplier vector stay aligned.
	keep := independentRows(p.G, ws)
	k := len(keep)
	kkt := dense.New(n+k, n+k)
	rhs := make([]float64, n+k)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, p.H.At(i, j))
		}
		rhs[i] = -grad[i]
	}
	// KKT system [[H, −G_Wᵀ], [G_W, 0]] [d; λ] = [−grad; 0] so that at d = 0
	// the multipliers satisfy ∇f = G_Wᵀ λ with λ ≥ 0 at an optimum.
	for a, wi := range keep {
		ci := ws[wi]
		for j := 0; j < n; j++ {
			g := p.G.At(ci, j)
			kkt.Set(i(n, a), j, g)
			kkt.Set(j, i(n, a), -g)
		}
	}
	sol, err := dense.Solve(kkt, rhs)
	if err != nil {
		return nil, nil, err
	}
	lambda = make([]float64, len(ws))
	for a, wi := range keep {
		lambda[wi] = sol[n+a]
	}
	return sol[:n], lambda, nil
}

// independentRows selects a maximal linearly independent subset of the
// working-set rows of G by modified Gram-Schmidt, returning indices into ws.
// Earlier rows win ties, so which duplicates are dropped is deterministic.
func independentRows(g *dense.Matrix, ws []int) []int {
	if len(ws) == 0 {
		return nil
	}
	n := g.C
	var keep []int
	var basis [][]float64 // orthonormal rows spanning the kept set
	v := make([]float64, n)
	for wi, ci := range ws {
		norm0 := 0.0
		for j := 0; j < n; j++ {
			v[j] = g.At(ci, j)
			norm0 += v[j] * v[j]
		}
		norm0 = math.Sqrt(norm0)
		for _, b := range basis {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += v[j] * b[j]
			}
			for j := 0; j < n; j++ {
				v[j] -= dot * b[j]
			}
		}
		norm := 0.0
		for j := 0; j < n; j++ {
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		if norm <= 1e-10*(1+norm0) {
			continue // dependent on the rows already kept
		}
		b := make([]float64, n)
		for j := 0; j < n; j++ {
			b[j] = v[j] / norm
		}
		basis = append(basis, b)
		keep = append(keep, wi)
	}
	return keep
}

func i(n, a int) int { return n + a }

func normInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
