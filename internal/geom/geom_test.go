package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v, want (4,1)", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v, want (-2,3)", got)
	}
}

func TestPointDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := p.DistL1(q); got != 7 {
		t.Errorf("DistL1 = %g, want 7", got)
	}
	if got := p.DistSq(q); got != 25 {
		t.Errorf("DistSq = %g, want 25", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 {
		t.Errorf("Len = %g, want 3", iv.Len())
	}
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if !iv.Contains(2) {
		t.Error("Lo endpoint should be contained (half-open)")
	}
	if iv.Contains(5) {
		t.Error("Hi endpoint should not be contained (half-open)")
	}
	empty := Interval{5, 5}
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("degenerate interval should be empty with zero length")
	}
	inverted := Interval{7, 3}
	if !inverted.Empty() || inverted.Len() != 0 {
		t.Error("inverted interval should be empty with zero length")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 2}, Interval{1, 3}, true},
		{Interval{0, 2}, Interval{2, 4}, false}, // touching is not overlap
		{Interval{0, 2}, Interval{3, 4}, false},
		{Interval{0, 4}, Interval{1, 2}, true}, // containment
		{Interval{0, 0}, Interval{0, 1}, false},
		{Interval{0, 1}, Interval{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestIntervalIntersectUnion(t *testing.T) {
	a := Interval{0, 3}
	b := Interval{2, 5}
	if got := a.Intersect(b); got != (Interval{2, 3}) {
		t.Errorf("Intersect = %v, want [2,3)", got)
	}
	if got := a.Union(b); got != (Interval{0, 5}) {
		t.Errorf("Union = %v, want [0,5)", got)
	}
	if got := a.Union(Interval{9, 1}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Interval{9, 1}).Union(a); got != a {
		t.Errorf("empty.Union(a) = %v, want %v", got, a)
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	a := Interval{0, 10}
	if !a.ContainsInterval(Interval{2, 5}) {
		t.Error("should contain inner interval")
	}
	if !a.ContainsInterval(Interval{0, 10}) {
		t.Error("should contain itself")
	}
	if a.ContainsInterval(Interval{-1, 5}) {
		t.Error("should not contain interval extending left")
	}
	if !a.ContainsInterval(Interval{5, 5}) {
		t.Error("empty interval should be contained everywhere")
	}
}

func TestIntervalClamp(t *testing.T) {
	iv := Interval{2, 5}
	for _, c := range []struct{ in, want float64 }{{1, 2}, {3, 3}, {7, 5}, {2, 2}, {5, 5}} {
		if got := iv.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	if r.W() != 3 || r.H() != 4 {
		t.Errorf("size = %gx%g, want 3x4", r.W(), r.H())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %g, want 12", r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if got := r.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v, want (2.5,4)", got)
	}
	if !r.Contains(Point{1, 2}) {
		t.Error("bottom-left corner should be contained")
	}
	if r.Contains(Point{4, 6}) {
		t.Error("top-right corner should not be contained")
	}
}

func TestRectOverlapAndIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 4, 4)
	if !a.Overlaps(b) {
		t.Error("expected overlap")
	}
	inter := a.Intersect(b)
	if inter.W() != 2 || inter.H() != 2 {
		t.Errorf("intersection = %v, want 2x2", inter)
	}
	if got := OverlapArea(a, b); got != 4 {
		t.Errorf("OverlapArea = %g, want 4", got)
	}
	// Abutting rectangles must not overlap.
	c := NewRect(4, 0, 2, 4)
	if a.Overlaps(c) {
		t.Error("abutting rectangles must not overlap")
	}
	if got := OverlapArea(a, c); got != 0 {
		t.Errorf("OverlapArea of abutting = %g, want 0", got)
	}
}

func TestRectUnionTranslateMoveTo(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 5, 1, 1)
	u := a.Union(b)
	if u != (Rect{Point{0, 0}, Point{6, 6}}) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("union with empty = %v, want %v", got, a)
	}
	tr := a.Translate(3, -1)
	if tr != (Rect{Point{3, -1}, Point{5, 1}}) {
		t.Errorf("Translate = %v", tr)
	}
	mv := a.MoveTo(10, 20)
	if mv.Lo != (Point{10, 20}) || mv.W() != 2 || mv.H() != 2 {
		t.Errorf("MoveTo = %v", mv)
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.ContainsRect(NewRect(1, 1, 2, 2)) {
		t.Error("inner rect should be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if outer.ContainsRect(NewRect(9, 9, 2, 2)) {
		t.Error("rect extending beyond should not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Error("empty rect should be contained")
	}
}

// Property: interval intersection is contained in both operands, and union
// contains both.
func TestIntervalIntersectUnionProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := Interval{math.Min(a0, a1), math.Max(a0, a1)}
		b := Interval{math.Min(b0, b1), math.Max(b0, b1)}
		inter := a.Intersect(b)
		uni := a.Union(b)
		if !inter.Empty() && (!a.ContainsInterval(inter) || !b.ContainsInterval(inter)) {
			return false
		}
		return uni.ContainsInterval(a) && uni.ContainsInterval(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is equivalent to a positive-length intersection.
func TestOverlapMatchesIntersection(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := Interval{math.Min(a0, a1), math.Max(a0, a1)}
		b := Interval{math.Min(b0, b1), math.Max(b0, b1)}
		return a.Overlaps(b) == (a.Intersect(b).Len() > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: rectangle overlap area is symmetric and bounded by both areas.
func TestOverlapAreaProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64, aw, ah, bw, bh uint8) bool {
		a := NewRect(ax, ay, float64(aw%32), float64(ah%32))
		b := NewRect(bx, by, float64(bw%32), float64(bh%32))
		oa := OverlapArea(a, b)
		ob := OverlapArea(b, a)
		if oa != ob {
			return false
		}
		return oa >= 0 && oa <= a.Area()+1e-9 && oa <= b.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
