// Package geom provides the small amount of planar geometry the legalizer
// needs: points, closed-open intervals, and axis-aligned rectangles.
//
// All coordinates are float64 in database units. Rectangles and intervals
// are half-open: [Lo, Hi) on each axis, so two shapes that merely touch do
// not overlap. This matches the placement convention where a cell occupying
// sites [10, 20) and a neighbor at [20, 30) abut legally.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistL1 returns the Manhattan distance between p and q.
func (p Point) DistL1(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Interval is a half-open interval [Lo, Hi).
type Interval struct {
	Lo, Hi float64
}

// Len returns the length of the interval, or 0 if it is empty or inverted.
func (iv Interval) Len() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x < iv.Hi }

// ContainsInterval reports whether o lies entirely within iv.
// An empty o is contained in everything.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.Empty() {
		return true
	}
	return o.Lo >= iv.Lo && o.Hi <= iv.Hi
}

// Overlaps reports whether the two half-open intervals share any points.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi && !iv.Empty() && !o.Empty()
}

// Intersect returns the common part of the two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// Union returns the smallest interval covering both (the hull).
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

// Clamp returns x restricted to [Lo, Hi].
func (iv Interval) Clamp(x float64) float64 {
	if x < iv.Lo {
		return iv.Lo
	}
	if x > iv.Hi {
		return iv.Hi
	}
	return x
}

func (iv Interval) String() string { return fmt.Sprintf("[%g, %g)", iv.Lo, iv.Hi) }

// Rect is an axis-aligned rectangle, half-open on both axes:
// [Lo.X, Hi.X) x [Lo.Y, Hi.Y).
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from a bottom-left corner and a size.
func NewRect(x, y, w, h float64) Rect {
	return Rect{Point{x, y}, Point{x + w, y + h}}
}

// W returns the width of the rectangle (0 if inverted).
func (r Rect) W() float64 {
	if r.Hi.X <= r.Lo.X {
		return 0
	}
	return r.Hi.X - r.Lo.X
}

// H returns the height of the rectangle (0 if inverted).
func (r Rect) H() float64 {
	if r.Hi.Y <= r.Lo.Y {
		return 0
	}
	return r.Hi.Y - r.Lo.Y
}

// Area returns W*H.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle encloses no area.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// XSpan returns the horizontal extent as an interval.
func (r Rect) XSpan() Interval { return Interval{r.Lo.X, r.Hi.X} }

// YSpan returns the vertical extent as an interval.
func (r Rect) YSpan() Interval { return Interval{r.Lo.Y, r.Hi.Y} }

// Contains reports whether the point lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return r.XSpan().Contains(p.X) && r.YSpan().Contains(p.Y)
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	if o.Empty() {
		return true
	}
	return r.XSpan().ContainsInterval(o.XSpan()) && r.YSpan().ContainsInterval(o.YSpan())
}

// Overlaps reports whether the two rectangles share interior area.
func (r Rect) Overlaps(o Rect) bool {
	return r.XSpan().Overlaps(o.XSpan()) && r.YSpan().Overlaps(o.YSpan())
}

// Intersect returns the common area of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		Point{math.Max(r.Lo.X, o.Lo.X), math.Max(r.Lo.Y, o.Lo.Y)},
		Point{math.Min(r.Hi.X, o.Hi.X), math.Min(r.Hi.Y, o.Hi.Y)},
	}
}

// Union returns the bounding box of the two rectangles.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		Point{math.Min(r.Lo.X, o.Lo.X), math.Min(r.Lo.Y, o.Lo.Y)},
		Point{math.Max(r.Hi.X, o.Hi.X), math.Max(r.Hi.Y, o.Hi.Y)},
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{Point{r.Lo.X + dx, r.Lo.Y + dy}, Point{r.Hi.X + dx, r.Hi.Y + dy}}
}

// MoveTo returns r with its bottom-left corner at (x, y), preserving size.
func (r Rect) MoveTo(x, y float64) Rect {
	return NewRect(x, y, r.W(), r.H())
}

// Center returns the centroid.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g %gx%g]", r.Lo.X, r.Lo.Y, r.W(), r.H())
}

// OverlapArea returns the interior area shared by two rectangles.
func OverlapArea(a, b Rect) float64 {
	inter := a.Intersect(b)
	if inter.Empty() {
		return 0
	}
	return inter.Area()
}
