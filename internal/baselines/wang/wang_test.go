package wang

import (
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/tetris"
)

func TestLegalizePlusSnapIsLegal(t *testing.T) {
	for _, density := range []float64{0.3, 0.6, 0.8} {
		d, err := gen.Generate(gen.Spec{
			Name: "t", SingleCells: 300, DoubleCells: 30, Density: density, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := Legalize(d, Options{}); err != nil {
			t.Fatalf("density %g: %v", density, err)
		}
		// Positions are real-valued; snap with the tetris allocator.
		if _, err := tetris.Allocate(d); err != nil {
			t.Fatal(err)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("density %g: %v", density, rep)
		}
	}
}

func TestMultiRowCellsPlacedFirstAndCompatible(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "t", SingleCells: 100, DoubleCells: 40, Density: 0.5, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Legalize(d, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		if c.RowSpan < 2 {
			continue
		}
		row := d.RowAt(c.Y + 1)
		if row < 0 {
			t.Fatalf("multi-row cell %d off rows", c.ID)
		}
		if !d.RailCompatible(c, row) {
			t.Errorf("multi-row cell %d on incompatible row %d", c.ID, row)
		}
	}
}

func TestSegmentsRespectObstacles(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 60, RowHeight: 10, SiteW: 1})
	f := d.AddCell("f", 10, 10, design.VSS)
	f.Fixed = true
	f.X, f.Y, f.GX, f.GY = 25, 0, 25, 0
	for i := 0; i < 6; i++ {
		c := d.AddCell("c", 5, 10, design.VSS)
		c.GX, c.GY = float64(20+i*2), 0
		c.X, c.Y = c.GX, c.GY
	}
	if err := Legalize(d, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		if c.Bounds().Overlaps(f.Bounds()) {
			t.Errorf("cell %d overlaps the obstacle (x=%g)", c.ID, c.X)
		}
	}
}

func TestOrderingPreservedWithinSegments(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "t", SingleCells: 200, DoubleCells: 10, Density: 0.5, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Legalize(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// Single-height cells in the same row must keep their GX order unless
	// separated by an obstacle; a coarse check: no pair in the same row with
	// strictly inverted order and overlapping GX ranking.
	byRow := map[int][]*design.Cell{}
	for _, c := range d.Cells {
		if c.RowSpan == 1 {
			byRow[d.RowAt(c.Y+1)] = append(byRow[d.RowAt(c.Y+1)], c)
		}
	}
	inversions, pairs := 0, 0
	for _, cells := range byRow {
		for i := range cells {
			for j := i + 1; j < len(cells); j++ {
				a, b := cells[i], cells[j]
				pairs++
				if (a.GX < b.GX && a.X > b.X+1e-9) || (b.GX < a.GX && b.X > a.X+1e-9) {
					inversions++
				}
			}
		}
	}
	if pairs > 0 && float64(inversions)/float64(pairs) > 0.05 {
		t.Errorf("ordering inverted for %d/%d same-row pairs", inversions, pairs)
	}
}
