// Package wang reimplements the ASP-DAC'17 legalization strategy of Wang,
// Wu, Chen, Chang, Kuo, Zhu and Fan ("An effective legalization algorithm
// for mixed-cell-height standard cells") from its published description: an
// Abacus-derived flow that preserves the global-placement cell ordering and
// extends Abacus's row optimization to multi-row cells.
//
// Cells are processed in a single sweep in global-x order, exactly like
// Abacus:
//
//   - single-row cells are inserted into the row segment (between
//     obstacles) that minimizes the incremental PlaceRow cost, which
//     optimally re-shifts the segment's cells while preserving ordering;
//   - multi-row cells are inserted near their target into a feasible
//     window across all spanned rows and become obstacles, splitting the
//     segments they land on and redistributing the cells already there.
//
// Because each decision is made one cell at a time with only a row-local
// view, early commitments in dense regions cascade — the weakness the
// paper's simultaneous MMSIM optimization removes.
package wang

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mclg/internal/abacus"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// Options tunes the baseline.
type Options struct {
	// RowSearchRange bounds how many rows above/below the nearest row are
	// evaluated per cell; 0 means 6.
	RowSearchRange int
}

// segment is a maximal obstacle-free interval of a row holding ordered
// single-height cells.
type segment struct {
	lo, hi float64
	cells  []*design.Cell
	used   float64
}

func (s *segment) entries() []abacus.Entry {
	out := make([]abacus.Entry, len(s.cells))
	for i, c := range s.cells {
		out[i] = abacus.Entry{Target: c.GX, Width: c.W, Weight: 1}
	}
	return out
}

func (s *segment) slack() float64 { return (s.hi - s.lo) - s.used }

type state struct {
	d    *design.Design
	opts Options
	segs [][]*segment
}

// park leaves a cell at its global x on the nearest correct row; the
// caller's Tetris pass repairs any resulting overlap.
func (st *state) park(c *design.Cell) {
	row := st.d.NearestCorrectRow(c, c.GY)
	if row < 0 {
		row = 0
	}
	c.X = c.GX
	c.Y = st.d.RowY(row)
	if !c.EvenSpan() {
		c.Flipped = st.d.Rows[row].Rail != c.BottomRail
	}
}

// Legalize runs the baseline, mutating cell positions. Positions are left
// real-valued within segments; callers snap via the tetris allocator.
func Legalize(d *design.Design, opts Options) error {
	return LegalizeContext(context.Background(), d, opts)
}

// cancelCheckEvery is how many per-cell sweep steps pass between context
// polls.
const cancelCheckEvery = 256

// LegalizeContext is Legalize with cooperative cancellation in the per-cell
// Abacus sweep.
func LegalizeContext(ctx context.Context, d *design.Design, opts Options) error {
	if opts.RowSearchRange == 0 {
		opts.RowSearchRange = 6
	}
	st := &state{d: d, opts: opts}

	// Row segments start as full rows minus fixed obstacles.
	occ := design.NewOccupancy(d)
	for _, c := range d.Cells {
		if c.Fixed {
			occ.BlockArea(c.ID, c.X, c.Y, c.W, c.H)
		}
	}
	st.segs = buildSegments(d, occ)

	cells := make([]*design.Cell, 0, len(d.Cells))
	for _, c := range d.Cells {
		if !c.Fixed {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].GX != cells[j].GX {
			return cells[i].GX < cells[j].GX
		}
		return cells[i].ID < cells[j].ID
	})

	// Single Abacus-style sweep over all cells.
	var queue []*design.Cell // singles displaced by obstacle splits
	for i, c := range cells {
		if i%cancelCheckEvery == 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return err
			}
		}
		if c.RowSpan == 1 {
			if err := st.insertSingle(c); err != nil {
				return err
			}
		} else {
			displaced, err := st.insertMulti(c)
			if err != nil {
				return err
			}
			queue = append(queue, displaced...)
			for len(queue) > 0 {
				sc := queue[0]
				queue = queue[1:]
				if err := st.insertSingle(sc); err != nil {
					return err
				}
			}
		}
	}

	// Final PlaceRow per segment writes the single-height x positions.
	for row := range st.segs {
		for _, sg := range st.segs[row] {
			if len(sg.cells) == 0 {
				continue
			}
			x := abacus.PlaceRow(sg.entries(), sg.lo, sg.hi)
			for i, c := range sg.cells {
				c.X = x[i]
			}
		}
	}
	return nil
}

// insertSingle places a single-height cell into the best segment by
// incremental PlaceRow cost.
func (st *state) insertSingle(c *design.Cell) error {
	d := st.d
	nearest := d.RowAt(clampF(c.GY, d.Core.Lo.Y, d.Core.Hi.Y-d.RowHeight) + d.RowHeight/2)
	bestSeg, bestCost := (*segment)(nil), math.Inf(1)
	var bestRow int
	scan := func(row int, dyBound bool) {
		if row < 0 || row >= len(d.Rows) {
			return
		}
		dy := d.RowY(row) - c.GY
		if dyBound && dy*dy >= bestCost {
			return
		}
		for _, sg := range st.segs[row] {
			if sg.used+c.W > sg.hi-sg.lo {
				continue
			}
			dx := 0.0
			if c.GX < sg.lo {
				dx = sg.lo - c.GX
			} else if c.GX+c.W > sg.hi {
				dx = c.GX + c.W - sg.hi
			}
			if dy*dy+dx*dx >= bestCost {
				continue
			}
			cost := insertionCost(sg, c) + dy*dy
			if cost < bestCost {
				bestCost, bestSeg, bestRow = cost, sg, row
			}
		}
	}
	for delta := 0; delta <= st.opts.RowSearchRange; delta++ {
		scan(nearest-delta, true)
		if delta > 0 {
			scan(nearest+delta, true)
		}
	}
	if bestSeg == nil {
		for row := 0; row < len(d.Rows); row++ {
			scan(row, false)
		}
	}
	if bestSeg == nil {
		// Total fragmentation: park the cell at its target row and let the
		// caller's Tetris allocation repair it (the published algorithm
		// falls back to local legalization in the same situation).
		st.park(c)
		return nil
	}
	insert(bestSeg, c)
	c.Y = d.RowY(bestRow)
	c.Flipped = d.Rows[bestRow].Rail != c.BottomRail
	return nil
}

// insertMulti places a multi-row cell as an obstacle: it picks the
// rail-compatible window nearest its target whose spanned segments all have
// enough slack, commits the cell there, splits the segments, and returns
// any single-height cells that no longer fit and must be re-inserted.
func (st *state) insertMulti(c *design.Cell) ([]*design.Cell, error) {
	d := st.d
	maxStart := len(d.Rows) - c.RowSpan
	if maxStart < 0 {
		return nil, fmt.Errorf("wang: cell %d taller than the core", c.ID)
	}
	nearest := d.RowAt(clampF(c.GY, d.Core.Lo.Y, d.Core.Hi.Y-float64(c.RowSpan)*d.RowHeight) + d.RowHeight/2)
	if nearest > maxStart {
		nearest = maxStart
	}
	bestCost := math.Inf(1)
	bestRow, bestX := -1, 0.0
	try := func(row int) {
		if row < 0 || row > maxStart || !d.RailCompatible(c, row) {
			return
		}
		dy := d.RowY(row) - c.GY
		if dy*dy >= bestCost {
			return
		}
		if x, ok := st.windowInRow(c, row); ok {
			dx := x - c.GX
			if cost := dx*dx + dy*dy; cost < bestCost {
				bestCost, bestRow, bestX = cost, row, x
			}
		}
	}
	for delta := 0; delta <= len(d.Rows); delta++ {
		try(nearest - delta)
		if delta > 0 {
			try(nearest + delta)
		}
		if bestRow >= 0 && float64(delta)*d.RowHeight > math.Sqrt(bestCost) {
			break
		}
	}
	if bestRow < 0 {
		st.park(c)
		return nil, nil
	}
	c.X = bestX
	c.Y = d.RowY(bestRow)
	if !c.EvenSpan() {
		c.Flipped = d.Rows[bestRow].Rail != c.BottomRail
	}
	var displaced []*design.Cell
	for r := bestRow; r < bestRow+c.RowSpan; r++ {
		displaced = append(displaced, st.splitSegments(r, bestX, bestX+c.W)...)
	}
	return displaced, nil
}

// windowInRow finds the x nearest c.GX such that in every spanned row the
// interval [x, x+w) lies inside a segment with at least w of slack.
func (st *state) windowInRow(c *design.Cell, row int) (float64, bool) {
	bestX, bestD := 0.0, math.Inf(1)
	// Candidate positions: clamp of GX into each segment of the start row,
	// checked against the other spanned rows.
	for _, sg := range st.segs[row] {
		if sg.slack() < c.W {
			continue
		}
		x := clampF(c.GX, sg.lo, sg.hi-c.W)
		if x < sg.lo {
			continue // segment shorter than the cell
		}
		ok := true
		for r := row + 1; r < row+c.RowSpan; r++ {
			if !st.windowFits(r, x, x+c.W) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if dd := math.Abs(x - c.GX); dd < bestD {
			bestD, bestX = dd, x
		}
	}
	return bestX, !math.IsInf(bestD, 1)
}

// windowFits reports whether [lo, hi) lies inside one segment of the row
// with enough slack for the window width.
func (st *state) windowFits(row int, lo, hi float64) bool {
	for _, sg := range st.segs[row] {
		if lo >= sg.lo && hi <= sg.hi {
			return sg.slack() >= hi-lo
		}
	}
	return false
}

// splitSegments carves [lo, hi) out of the segment containing it in the
// given row, redistributing the segment's cells to the two remainders by
// their targets subject to capacity. Cells that fit neither side are
// returned for re-insertion.
func (st *state) splitSegments(row int, lo, hi float64) []*design.Cell {
	segs := st.segs[row]
	for i, sg := range segs {
		if lo < sg.lo || hi > sg.hi {
			continue
		}
		left := &segment{lo: sg.lo, hi: lo}
		right := &segment{lo: hi, hi: sg.hi}
		var overflow []*design.Cell
		// Cells are kept in GX order; fill left while both the natural
		// side says left and capacity allows, then right, overflowing the
		// rest.
		for _, c := range sg.cells {
			natLeft := c.GX+c.W/2 < (lo+hi)/2
			switch {
			case natLeft && left.used+c.W <= left.hi-left.lo:
				insert(left, c)
			case right.used+c.W <= right.hi-right.lo:
				insert(right, c)
			case left.used+c.W <= left.hi-left.lo:
				insert(left, c)
			default:
				overflow = append(overflow, c)
			}
		}
		// Replace sg with the two remainders (dropping empties of zero
		// length keeps the scan cheap).
		repl := make([]*segment, 0, len(segs)+1)
		repl = append(repl, segs[:i]...)
		if left.hi > left.lo {
			repl = append(repl, left)
		}
		if right.hi > right.lo {
			repl = append(repl, right)
		}
		repl = append(repl, segs[i+1:]...)
		st.segs[row] = repl
		return overflow
	}
	return nil
}

// insertionCost computes the optimal segment cost after inserting c in
// GX-order, minus the cost before — the Abacus trial-placement delta.
func insertionCost(sg *segment, c *design.Cell) float64 {
	before := 0.0
	if len(sg.cells) > 0 {
		before = abacus.RowCost(sg.entries(), sg.lo, sg.hi)
	}
	trial := trialEntries(sg, c)
	after := abacus.RowCost(trial, sg.lo, sg.hi)
	return after - before
}

func trialEntries(sg *segment, c *design.Cell) []abacus.Entry {
	out := make([]abacus.Entry, 0, len(sg.cells)+1)
	placed := false
	for _, sc := range sg.cells {
		if !placed && (c.GX < sc.GX || (c.GX == sc.GX && c.ID < sc.ID)) {
			out = append(out, abacus.Entry{Target: c.GX, Width: c.W, Weight: 1})
			placed = true
		}
		out = append(out, abacus.Entry{Target: sc.GX, Width: sc.W, Weight: 1})
	}
	if !placed {
		out = append(out, abacus.Entry{Target: c.GX, Width: c.W, Weight: 1})
	}
	return out
}

func insert(sg *segment, c *design.Cell) {
	pos := len(sg.cells)
	for i, sc := range sg.cells {
		if c.GX < sc.GX || (c.GX == sc.GX && c.ID < sc.ID) {
			pos = i
			break
		}
	}
	sg.cells = append(sg.cells, nil)
	copy(sg.cells[pos+1:], sg.cells[pos:])
	sg.cells[pos] = c
	sg.used += c.W
}

// buildSegments scans each row's occupancy for maximal free intervals.
func buildSegments(d *design.Design, occ *design.Occupancy) [][]*segment {
	segs := make([][]*segment, len(d.Rows))
	for row := range d.Rows {
		r := &d.Rows[row]
		start := -1
		for s := 0; s <= r.NumSites; s++ {
			free := s < r.NumSites && occ.OwnerAt(row, s) < 0
			if free && start < 0 {
				start = s
			}
			if !free && start >= 0 {
				segs[row] = append(segs[row], &segment{
					lo: r.OriginX + float64(start)*r.SiteW,
					hi: r.OriginX + float64(s)*r.SiteW,
				})
				start = -1
			}
		}
	}
	return segs
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
