// Package chow reimplements the DAC'16 legalization strategy of Chow, Pui
// and Young ("Legalization algorithm for multiple-row height standard cell
// design") from its published description: each cell is first tried at the
// nearest site-aligned, power-rail-matched position to its global placement;
// if that position is occupied, a local region around it is searched and the
// cell is placed at the nearest free run. Cells are processed one at a time,
// so the method has a local view — the property the paper under
// reproduction contrasts with its simultaneous MMSIM optimization.
//
// Two variants are provided, matching the two comparison columns of
// Table 2:
//
//   - Legalize (DAC'16): the one-pass greedy.
//   - LegalizeImproved (DAC'16-Imp): the same pass followed by iterative
//     local refinement, modeling the authors' improved post-conference
//     binary.
package chow

import (
	"context"
	"fmt"
	"sort"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/tetris"
)

// Options tunes the baseline.
type Options struct {
	// RefinePasses is the number of refinement sweeps for
	// LegalizeImproved; 0 means 3.
	RefinePasses int
}

// Legalize runs the one-pass greedy legalizer (the "DAC'16" column).
// Cells are processed in global x order; each is placed at the free
// position nearest to its global-placement location.
func Legalize(d *design.Design) error {
	return LegalizeContext(context.Background(), d)
}

// LegalizeContext is Legalize with cooperative cancellation.
func LegalizeContext(ctx context.Context, d *design.Design) error {
	_, err := run(ctx, d, Options{RefinePasses: -1})
	return err
}

// LegalizeImproved runs the greedy pass plus local refinement (the
// "DAC'16-Imp" column).
func LegalizeImproved(d *design.Design, opts Options) error {
	return LegalizeImprovedContext(context.Background(), d, opts)
}

// LegalizeImprovedContext is LegalizeImproved with cooperative cancellation.
func LegalizeImprovedContext(ctx context.Context, d *design.Design, opts Options) error {
	if opts.RefinePasses == 0 {
		opts.RefinePasses = 3
	}
	_, err := run(ctx, d, opts)
	return err
}

// cancelCheckEvery is how many per-cell placement steps pass between
// context polls.
const cancelCheckEvery = 256

func run(ctx context.Context, d *design.Design, opts Options) (*design.Occupancy, error) {
	occ := design.NewOccupancy(d)
	for _, c := range d.Cells {
		if c.Fixed {
			occ.BlockArea(c.ID, c.X, c.Y, c.W, c.H)
		}
	}
	cells := movable(d)
	// Process multi-row cells before singles at equal x: they are the hard
	// ones to place, and the published algorithm prioritizes them locally.
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.GX != b.GX {
			return a.GX < b.GX
		}
		if a.RowSpan != b.RowSpan {
			return a.RowSpan > b.RowSpan
		}
		return a.ID < b.ID
	})
	var failed []*design.Cell
	for i, c := range cells {
		if i%cancelCheckEvery == 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, err
			}
		}
		row := d.NearestCorrectRow(c, c.GY)
		if row < 0 {
			return nil, fmt.Errorf("chow: cell %d has no compatible row: %w",
				c.ID, mclgerr.ErrInfeasibleRow)
		}
		placeNearest(d, occ, c, c.GX, c.GY, 3, &failed)
	}
	if len(failed) > 0 {
		// Terminal fallback for heavy fragmentation: park the stuck cells
		// at their nearest correct rows and let the Tetris allocator repair
		// the placement globally (it preserves the already-legal cells).
		for _, c := range failed {
			if row := d.NearestCorrectRow(c, c.GY); row >= 0 {
				c.X, c.Y = c.GX, d.RowY(row)
			}
		}
		if _, err := tetris.AllocateContext(ctx, d); err != nil {
			return nil, fmt.Errorf("chow: fallback allocation: %w", err)
		}
		// The occupancy grid is stale after the global repair; rebuild it
		// for the refinement passes.
		occ = design.NewOccupancy(d)
		for _, c := range d.Cells {
			if c.Fixed {
				occ.BlockArea(c.ID, c.X, c.Y, c.W, c.H)
			} else if err := occ.Place(c, c.X, c.Y); err != nil {
				return nil, fmt.Errorf("chow: rebuilding occupancy: %w", err)
			}
		}
	}

	for pass := 0; pass < opts.RefinePasses; pass++ {
		if err := mclgerr.FromContext(ctx); err != nil {
			return nil, err
		}
		moved, err := refinePass(d, occ)
		if err != nil {
			return nil, err
		}
		if moved == 0 {
			break
		}
	}
	return occ, nil
}

// refinePass re-seats every cell at the free position nearest its global
// location, keeping the move only when it strictly reduces squared
// displacement. Returns the number of cells moved.
func refinePass(d *design.Design, occ *design.Occupancy) (int, error) {
	moved := 0
	cells := movable(d)
	// Worst-displaced first: they have the most to gain from the space
	// freed by earlier moves.
	sort.Slice(cells, func(i, j int) bool {
		di := cells[i].DisplacementSq()
		dj := cells[j].DisplacementSq()
		if di != dj {
			return di > dj
		}
		return cells[i].ID < cells[j].ID
	})
	for _, c := range cells {
		occ.Remove(c, c.X, c.Y)
		x, y, ok := design.NearestFree(d, occ, c, c.GX, c.GY)
		cur := c.DisplacementSq()
		nw := (x-c.GX)*(x-c.GX) + (y-c.GY)*(y-c.GY)
		if ok && nw < cur-1e-12 {
			if err := occ.Place(c, x, y); err == nil {
				setPos(d, c, x, y)
				moved++
				continue
			}
		}
		// Put it back. The spot was just freed, so failure here means the
		// occupancy grid no longer matches the cell positions — corrupt
		// state we surface as a typed error rather than a panic.
		if err := occ.Place(c, c.X, c.Y); err != nil {
			return moved, fmt.Errorf("chow: lost position of cell %d: %v: %w",
				c.ID, err, mclgerr.ErrUnplacedCells)
		}
	}
	return moved, nil
}

// placeNearest places c at the free position nearest (tx, ty). When
// fragmentation leaves no free run — the published algorithm handles this
// with its local-region legalization step — the cells blocking the window
// at the target are evicted, c is placed, and the evicted cells are
// re-placed recursively up to depth. Cells that end up without a position
// are appended to failed.
func placeNearest(d *design.Design, occ *design.Occupancy, c *design.Cell, tx, ty float64, depth int, failed *[]*design.Cell) {
	if x, y, ok := design.NearestFree(d, occ, c, tx, ty); ok {
		if err := occ.Place(c, x, y); err != nil {
			*failed = append(*failed, c)
			return
		}
		setPos(d, c, x, y)
		return
	}
	if depth == 0 {
		*failed = append(*failed, c)
		return
	}
	row := d.NearestCorrectRow(c, ty)
	if row < 0 {
		*failed = append(*failed, c)
		return
	}
	widthSites := int((c.W + d.SiteW - 1e-9) / d.SiteW)
	s0 := d.SiteIndex(tx)
	if s0+widthSites > d.Rows[row].NumSites {
		s0 = d.Rows[row].NumSites - widthSites
	}
	if s0 < 0 {
		*failed = append(*failed, c)
		return
	}
	evictIDs := map[int]bool{}
	for r := row; r < row+c.RowSpan; r++ {
		for s := s0; s < s0+widthSites; s++ {
			if id := occ.OwnerAt(r, s); id >= 0 {
				if d.Cells[id].Fixed {
					*failed = append(*failed, c)
					return
				}
				evictIDs[id] = true
			}
		}
	}
	var evicted []*design.Cell
	for id := range evictIDs {
		ec := d.Cells[id]
		occ.Remove(ec, ec.X, ec.Y)
		evicted = append(evicted, ec)
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].ID < evicted[j].ID })
	x := d.Rows[row].OriginX + float64(s0)*d.SiteW
	y := d.RowY(row)
	if err := occ.Place(c, x, y); err != nil {
		for _, ec := range evicted {
			_ = occ.Place(ec, ec.X, ec.Y)
		}
		*failed = append(*failed, c)
		return
	}
	setPos(d, c, x, y)
	for _, ec := range evicted {
		placeNearest(d, occ, ec, ec.X, ec.Y, depth-1, failed)
	}
}

func movable(d *design.Design) []*design.Cell {
	out := make([]*design.Cell, 0, len(d.Cells))
	for _, c := range d.Cells {
		if !c.Fixed {
			out = append(out, c)
		}
	}
	return out
}

func setPos(d *design.Design, c *design.Cell, x, y float64) {
	c.X, c.Y = x, y
	row := d.RowAt(y + d.RowHeight/2)
	if !c.EvenSpan() && row >= 0 {
		c.Flipped = d.Rows[row].Rail != c.BottomRail
	}
}
