package chow

import (
	"math/rand"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

func genSmall(t *testing.T, seed int64, density float64) *design.Design {
	t.Helper()
	d, err := gen.Generate(gen.Spec{
		Name: "t", SingleCells: 300, DoubleCells: 30, Density: density, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLegalizeProducesLegalPlacement(t *testing.T) {
	for _, density := range []float64{0.3, 0.6, 0.85} {
		d := genSmall(t, 21, density)
		if err := Legalize(d); err != nil {
			t.Fatalf("density %g: %v", density, err)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("density %g: %v", density, rep)
		}
	}
}

func TestLegalizeImprovedNotWorse(t *testing.T) {
	d1 := genSmall(t, 23, 0.7)
	d2 := d1.Clone()
	if err := Legalize(d1); err != nil {
		t.Fatal(err)
	}
	if err := LegalizeImproved(d2, Options{}); err != nil {
		t.Fatal(err)
	}
	if rep := design.CheckLegal(d2); !rep.Legal() {
		t.Fatalf("improved result illegal: %v", rep)
	}
	base := metrics.MeasureDisplacement(d1).TotalSites
	imp := metrics.MeasureDisplacement(d2).TotalSites
	if imp > base+1e-9 {
		t.Errorf("improved displacement %g worse than base %g", imp, base)
	}
}

func TestLegalizeKeepsFixedCells(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 60, RowHeight: 10, SiteW: 1})
	f := d.AddCell("f", 10, 10, design.VSS)
	f.Fixed = true
	f.X, f.Y, f.GX, f.GY = 20, 0, 20, 0
	c := d.AddCell("c", 6, 10, design.VSS)
	c.GX, c.GY = 22, 0 // wants to sit inside the fixed cell
	c.X, c.Y = c.GX, c.GY
	if err := Legalize(d); err != nil {
		t.Fatal(err)
	}
	if f.X != 20 || f.Y != 0 {
		t.Error("fixed cell moved")
	}
	if c.Bounds().Overlaps(f.Bounds()) {
		t.Error("cell placed over fixed cell")
	}
}

func TestLegalizeEvenCellsOnMatchingRails(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := design.NewDesign(design.Config{NumRows: 8, NumSites: 100, RowHeight: 10, SiteW: 1})
	for i := 0; i < 30; i++ {
		rail := design.VSS
		if rng.Intn(2) == 0 {
			rail = design.VDD
		}
		c := d.AddCell("dc", 4, 20, rail)
		c.GX = rng.Float64() * 90
		c.GY = rng.Float64() * 60
		c.X, c.Y = c.GX, c.GY
	}
	if err := Legalize(d); err != nil {
		t.Fatal(err)
	}
	rep := design.CheckLegal(d)
	if n := rep.Count(design.VRailMismatch); n != 0 {
		t.Errorf("%d rail mismatches: %v", n, rep)
	}
}
