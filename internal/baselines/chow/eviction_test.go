package chow

import (
	"testing"

	"mclg/internal/design"
)

// TestLegalizeEvictionPath forces the local-region eviction branch: the
// grid is fragmented into single-site gaps so a wide late-arriving cell has
// no free run and must displace blockers near its target.
func TestLegalizeEvictionPath(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 31, RowHeight: 10, SiteW: 1})
	// Blockers with GX on the left so they are processed first (x order).
	for r := 0; r < 2; r++ {
		for i := 0; i < 10; i++ {
			c := d.AddCell("blk", 2, 10, design.VSS)
			c.GX, c.GY = float64(3*i), float64(10*r)
			c.X, c.Y = c.GX, c.GY
		}
	}
	// The wide cell arrives last (largest GX ties resolved by ID).
	w := d.AddCell("wide", 4, 10, design.VSS)
	w.GX, w.GY = 27.5, 0
	w.X, w.Y = w.GX, w.GY
	if err := Legalize(d); err != nil {
		t.Fatal(err)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
	if w.X+w.W > d.Core.Hi.X {
		t.Errorf("wide cell out of core: x=%g", w.X)
	}
}

// TestLegalizeTerminalFallback drives the tetris fallback: so much
// fragmentation that even eviction chains fail, leaving cells for the
// global repair.
func TestLegalizeTerminalFallback(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 24, RowHeight: 10, SiteW: 1})
	// Exact fill with awkward widths: 7+7+6 per row, all targets stacked.
	for r := 0; r < 2; r++ {
		for _, w := range []float64{7, 7, 6, 4} {
			c := d.AddCell("c", w, 10, design.VSS)
			c.GX, c.GY = 3, float64(10*r)
			c.X, c.Y = c.GX, c.GY
		}
	}
	if err := Legalize(d); err != nil {
		t.Fatal(err)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}

// TestLegalizeImprovedAfterFallback checks refinement still runs after the
// occupancy rebuild.
func TestLegalizeImprovedAfterFallback(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 24, RowHeight: 10, SiteW: 1})
	for r := 0; r < 2; r++ {
		for _, w := range []float64{7, 7, 6, 4} {
			c := d.AddCell("c", w, 10, design.VSS)
			c.GX, c.GY = 5, float64(10*r)
			c.X, c.Y = c.GX, c.GY
		}
	}
	if err := LegalizeImproved(d, Options{RefinePasses: 2}); err != nil {
		t.Fatal(err)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}
