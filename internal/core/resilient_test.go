package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/mclgerr"
)

func genBench(t *testing.T, singles, doubles int, density float64, seed int64) *design.Design {
	t.Helper()
	d, err := gen.Generate(gen.Spec{
		Name:        "resilient-bench",
		SingleCells: singles,
		DoubleCells: doubles,
		Density:     density,
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return d
}

// The dual-LCP PGS and the primal MMSIM solve the same strictly convex QP,
// so away from the x = 0 boundary their subcell solutions must coincide.
func TestSolvePGSMatchesMMSIM(t *testing.T) {
	d := genBench(t, 40, 6, 0.5, 7)
	if err := AssignRows(d); err != nil {
		t.Fatalf("AssignRows: %v", err)
	}
	p, err := BuildProblemBounded(d, 1000, false)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	opts := New(Options{Eps: 1e-9}).Opts
	xm, st, err := SolveMMSIM(p, opts)
	if err != nil {
		t.Fatalf("MMSIM: %v", err)
	}
	if !st.Converged {
		t.Fatalf("MMSIM did not converge in %d iterations", st.Iterations)
	}

	xp, sweeps, err := SolvePGS(context.Background(), p, 1e-10, 200000)
	if err != nil {
		t.Fatalf("PGS: %v (after %d sweeps)", err, sweeps)
	}

	maxDiff := 0.0
	for i := range xm {
		if diff := math.Abs(xm[i] - xp[i]); diff > maxDiff {
			maxDiff = diff
		}
	}
	if maxDiff > 0.05 {
		t.Fatalf("PGS and MMSIM solutions differ by %g sites (want < 0.05)", maxDiff)
	}
}

func TestResilientFirstRungSucceeds(t *testing.T) {
	d := genBench(t, 150, 20, 0.7, 11)
	rs, err := NewResilient(ResilientOptions{}).Legalize(d)
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	if rs.Rung != RungMMSIM {
		t.Fatalf("rung = %q, want %q", rs.Rung, RungMMSIM)
	}
	if len(rs.Attempts) != 1 || rs.Attempts[0].Err != nil {
		t.Fatalf("attempts = %+v, want one clean attempt", rs.Attempts)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("placement illegal: %v", rep)
	}
}

// A starved iteration budget fails the MMSIM rung with ErrIterBudget and the
// cascade degrades to the PGS rung, which must still deliver a legal result.
func TestResilientDegradesToPGS(t *testing.T) {
	d := genBench(t, 120, 15, 0.7, 3)
	rs, err := NewResilient(ResilientOptions{
		Base:       Options{MaxIter: 1, Eps: 1e-12},
		MaxRetunes: -1,
	}).Legalize(d)
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	if rs.Rung != RungPGS {
		t.Fatalf("rung = %q, want %q", rs.Rung, RungPGS)
	}
	if len(rs.Attempts) != 2 {
		t.Fatalf("got %d attempts, want 2", len(rs.Attempts))
	}
	if !errors.Is(rs.Attempts[0].Err, mclgerr.ErrIterBudget) {
		t.Fatalf("first attempt error = %v, want ErrIterBudget", rs.Attempts[0].Err)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("placement illegal: %v", rep)
	}
}

func TestResilientDegradesToGreedy(t *testing.T) {
	d := genBench(t, 120, 15, 0.7, 5)
	rs, err := NewResilient(ResilientOptions{
		Base:       Options{MaxIter: 1, Eps: 1e-12},
		MaxRetunes: -1,
		DisablePGS: true,
	}).Legalize(d)
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	if rs.Rung != RungGreedy {
		t.Fatalf("rung = %q, want %q", rs.Rung, RungGreedy)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("placement illegal: %v", rep)
	}
}

// The retuned rung must recover from a hostile base configuration (tiny
// budget) once the backoff raises the budget and re-clamps the constants.
func TestResilientRetuneRecovers(t *testing.T) {
	d := genBench(t, 100, 12, 0.6, 9)
	rs, err := NewResilient(ResilientOptions{
		Base:          Options{MaxIter: 2, Eps: 1e-6, Beta: 1.9, Theta: 1.9},
		MaxRetunes:    3,
		DisablePGS:    true,
		DisableGreedy: true,
	}).Legalize(d)
	if err != nil {
		t.Fatalf("resilient: %v", err)
	}
	if rs.Rung != RungMMSIMRetuned {
		t.Fatalf("rung = %q, want %q", rs.Rung, RungMMSIMRetuned)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("placement illegal: %v", rep)
	}
}

// When every rung fails, the input placement must be untouched and the
// joined error must still match the taxonomy.
func TestResilientTotalFailureLeavesDesignUnchanged(t *testing.T) {
	d := genBench(t, 80, 10, 0.7, 13)
	type pos struct{ x, y float64 }
	before := make([]pos, len(d.Cells))
	for i, c := range d.Cells {
		before[i] = pos{c.X, c.Y}
	}

	rs, err := NewResilient(ResilientOptions{
		Base:          Options{MaxIter: 1, Eps: 1e-12},
		MaxRetunes:    -1,
		DisablePGS:    true,
		DisableGreedy: true,
	}).Legalize(d)
	if err == nil {
		t.Fatal("want an error when every rung fails")
	}
	if !errors.Is(err, mclgerr.ErrIterBudget) {
		t.Fatalf("error = %v, want ErrIterBudget in the chain", err)
	}
	if !mclgerr.IsTaxonomy(err) {
		t.Fatalf("error %v does not match the taxonomy", err)
	}
	if rs == nil || rs.Rung != "" {
		t.Fatalf("stats = %+v, want attempt trace with no successful rung", rs)
	}
	for i, c := range d.Cells {
		if c.X != before[i].x || c.Y != before[i].y {
			t.Fatalf("cell %d moved from (%g,%g) to (%g,%g) despite total failure",
				i, before[i].x, before[i].y, c.X, c.Y)
		}
	}
}

func TestResilientCanceledContextShortCircuits(t *testing.T) {
	d := genBench(t, 80, 10, 0.7, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewResilient(ResilientOptions{}).LegalizeContext(ctx, d)
	if !errors.Is(err, mclgerr.ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", err)
	}
}

func TestResilientRejectsInvalidOptions(t *testing.T) {
	d := genBench(t, 20, 2, 0.5, 19)
	_, err := NewResilient(ResilientOptions{Base: Options{Beta: 2.5}}).Legalize(d)
	if !errors.Is(err, mclgerr.ErrInvalidInput) {
		t.Fatalf("error = %v, want ErrInvalidInput", err)
	}
}
