// Package core implements the paper's mixed-cell-height legalization
// algorithm:
//
//  1. assign every movable cell to its nearest correct row (power-rail
//     matched for even-row-span cells) and fix the per-row left-to-right
//     ordering from global placement,
//  2. split multi-row cells into single-row subcells tied by equality
//     constraints Ex = 0, folded into the objective with penalty λ,
//  3. form the KKT conditions of the relaxed convex QP as the linear
//     complementarity problem LCP(q, A) with
//     A = [[Q+λEᵀE, −Bᵀ], [B, 0]]   (Eq. 15),
//  4. solve it with the modulus-based matrix splitting iteration (MMSIM)
//     using the structured block lower-triangular splitting of Eq. 16, whose
//     per-iteration cost is O(n),
//  5. restore multi-row cells and run the Tetris-like allocation to snap to
//     sites and repair any overlapping or out-of-right-boundary cells.
package core

import (
	"fmt"
	"sort"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/par"
	"mclg/internal/sparse"
)

// Subcell is one single-row-height slice of a cell. A single-row cell has
// exactly one subcell; a k-row cell has k, ordered bottom to top.
type Subcell struct {
	Cell   int // owning cell ID
	Slice  int // 0-based slice index within the cell (0 = bottom)
	Row    int // assigned placement row
	Var    int // variable index in the QP/LCP
	Width  float64
	Target float64 // global x position relative to the core's left edge
}

// Constraint is one non-overlap constraint x_j − x_l ≥ w_l between
// horizontally adjacent subcells in a row. Right == -1 encodes a
// right-boundary constraint −x_l ≥ Gap (BuildProblemBounded).
type Constraint struct {
	Row         int
	Left, Right int // variable indices; Right == -1 for boundary rows
	Gap         float64
}

// Problem is the assembled relaxed legalization QP in LCP-ready form.
type Problem struct {
	D *design.Design

	Subcells []Subcell
	CellVars [][]int // per cell ID: its variable indices (nil for fixed cells)

	Cons []Constraint // ordered row-major, left to right

	NumVars int
	NumCons int

	B  *sparse.CSR // NumCons x NumVars ordering-constraint matrix
	E  *sparse.CSR // equality-constraint matrix tying subcells (may have 0 rows)
	P  []float64   // linear objective term: P[v] = −target_v
	Bv []float64   // constraint right-hand sides (gaps)

	Lambda float64

	// blocks[cellID] is the span of the cell's variable block (0 for fixed
	// cells); variable blocks are contiguous and ordered by cell ID.
	blockOfVar []int // owning cell ID per variable
}

// ErrNoRow is returned when a cell cannot be assigned to any rail-compatible
// row (e.g. taller than the core). It matches mclgerr.ErrInfeasibleRow via
// errors.Is.
type ErrNoRow struct{ CellID int }

func (e ErrNoRow) Error() string {
	return fmt.Sprintf("core: cell %d has no rail-compatible row", e.CellID)
}

// Unwrap maps the error into the taxonomy.
func (e ErrNoRow) Unwrap() error { return mclgerr.ErrInfeasibleRow }

// AssignRows sets every movable cell's Y to its nearest correct row
// (Section 3 of the paper): the nearest row for odd-row-span cells, with
// vertical flipping recorded when the rail type mismatches, and the nearest
// power-rail-matched row for even-row-span cells. The x coordinate is left
// at the global position.
func AssignRows(d *design.Design) error {
	return AssignRowsP(d, 0)
}

// AssignRowsP is AssignRows sharded across workers (0 = GOMAXPROCS, 1 =
// serial). Every cell's assignment depends only on that cell and the fixed
// row geometry, so the result is identical at any worker count; on failure
// the reported error is the one a serial scan would surface first (the
// lowest-chunk ErrNoRow), though cells after the failing one may already be
// assigned — callers treat any error as fatal for the whole stage.
func AssignRowsP(d *design.Design, workers int) error {
	return par.ReduceErr(workers, len(d.Cells), par.GrainCells, func(lo, hi int) error {
		for _, c := range d.Cells[lo:hi] {
			if c.Fixed {
				continue
			}
			row := d.NearestCorrectRow(c, c.GY)
			if row < 0 {
				return ErrNoRow{CellID: c.ID}
			}
			c.X = c.GX
			c.Y = d.RowY(row)
			c.Flipped = !c.EvenSpan() && d.Rows[row].Rail != c.BottomRail
		}
		return nil
	})
}

// BuildProblem assembles the relaxed QP (13) for a design whose cells have
// already been assigned to rows (c.Y on a row boundary for every movable
// cell). Cells in each row are ordered by their global x position, honoring
// the global-placement ordering; ties break by cell ID for determinism.
//
// Fixed cells are not variables and, matching the paper's benchmarks
// (which strip fence regions and blockages), do not constrain the QP;
// overlaps with fixed cells are repaired by the Tetris allocation stage.
func BuildProblem(d *design.Design, lambda float64) (*Problem, error) {
	return BuildProblemBounded(d, lambda, false)
}

// BuildProblemBounded is BuildProblem with an optional exact right-boundary
// mode (an extension beyond the paper, which relaxes the right boundary and
// repairs violators in the Tetris stage): when boundRight is true, the
// rightmost subcell of every row gets an extra constraint
// −x ≥ −(X_max − w), i.e. x + w ≤ X_max. These single-entry rows keep B of
// full row rank (they only touch the last variable of each row chain), so
// the MMSIM convergence argument is unchanged, and the solution is the true
// optimum of the boundary-constrained problem — no out-of-boundary cells
// remain for the allocation stage to fix.
func BuildProblemBounded(d *design.Design, lambda float64, boundRight bool) (*Problem, error) {
	p := &Problem{D: d, Lambda: lambda, CellVars: make([][]int, len(d.Cells))}

	// Create subcells and variables, cells in ID order so blocks are
	// contiguous.
	perRow := make([][]int, len(d.Rows)) // subcell indices per row
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		row := d.RowAt(c.Y + d.RowHeight/2)
		if row < 0 || row+c.RowSpan > len(d.Rows) {
			return nil, fmt.Errorf("core: cell %d not assigned to a valid row (y=%g)", c.ID, c.Y)
		}
		vars := make([]int, c.RowSpan)
		for k := 0; k < c.RowSpan; k++ {
			v := len(p.Subcells)
			vars[k] = v
			p.Subcells = append(p.Subcells, Subcell{
				Cell:   c.ID,
				Slice:  k,
				Row:    row + k,
				Var:    v,
				Width:  c.W,
				Target: c.GX - d.Core.Lo.X,
			})
			p.blockOfVar = append(p.blockOfVar, c.ID)
			perRow[row+k] = append(perRow[row+k], v)
		}
		p.CellVars[c.ID] = vars
	}
	p.NumVars = len(p.Subcells)

	// Order each row by global x and emit adjacency constraints row-major.
	// With boundRight, each row additionally gets a right-boundary row
	// −x ≥ −(X_max − w) on its rightmost subcell (Right == -1 encodes the
	// missing right variable), placed directly after the row's chain so the
	// tridiagonal Schur approximation D captures its coupling with the
	// neighboring chain constraint.
	for r := range perRow {
		vars := perRow[r]
		sort.Slice(vars, func(a, b int) bool {
			sa, sb := &p.Subcells[vars[a]], &p.Subcells[vars[b]]
			if sa.Target != sb.Target {
				return sa.Target < sb.Target
			}
			return sa.Cell < sb.Cell
		})
		for i := 0; i+1 < len(vars); i++ {
			l, rv := vars[i], vars[i+1]
			p.Cons = append(p.Cons, Constraint{
				Row:  r,
				Left: l, Right: rv,
				Gap: p.Subcells[l].Width,
			})
		}
		if boundRight && len(vars) > 0 {
			last := vars[len(vars)-1]
			limit := d.Rows[r].XMax() - d.Core.Lo.X - p.Subcells[last].Width
			p.Cons = append(p.Cons, Constraint{
				Row:  r,
				Left: last, Right: -1,
				Gap: -limit,
			})
		}
	}
	p.NumCons = len(p.Cons)

	// Constraint matrix B: row per constraint with −1 at Left, +1 at Right
	// (boundary rows have only the −1 entry). Every row has at most two
	// entries with known columns, so B is filled directly in CSR form
	// (column-sorted per row, no duplicates) instead of through the
	// triplet-sorting Builder — problem assembly dominates warm re-solves.
	p.Bv = make([]float64, p.NumCons)
	nnzB := 0
	for _, c := range p.Cons {
		nnzB++
		if c.Right >= 0 {
			nnzB++
		}
	}
	bRowPtr := make([]int, p.NumCons+1)
	bCol := make([]int, nnzB)
	bVal := make([]float64, nnzB)
	k := 0
	for i, c := range p.Cons {
		bRowPtr[i] = k
		switch {
		case c.Right < 0:
			bCol[k], bVal[k] = c.Left, -1
			k++
		case c.Left < c.Right:
			bCol[k], bVal[k] = c.Left, -1
			bCol[k+1], bVal[k+1] = c.Right, 1
			k += 2
		default:
			// Variable indices follow cell-ID order, not x order, so the
			// right neighbor's column may be the smaller one.
			bCol[k], bVal[k] = c.Right, 1
			bCol[k+1], bVal[k+1] = c.Left, -1
			k += 2
		}
		p.Bv[i] = c.Gap
	}
	bRowPtr[p.NumCons] = k
	p.B = &sparse.CSR{Rows: p.NumCons, Cols: p.NumVars, RowPtr: bRowPtr, ColIdx: bCol, Val: bVal}

	// Equality matrix E: chain consecutive subcells of each multi-row cell.
	// A cell's variables are consecutive and increasing, so each row's two
	// entries are already column-sorted — direct CSR fill again.
	numEq := 0
	for _, vars := range p.CellVars {
		if len(vars) > 1 {
			numEq += len(vars) - 1
		}
	}
	eRowPtr := make([]int, numEq+1)
	eCol := make([]int, 2*numEq)
	eVal := make([]float64, 2*numEq)
	k = 0
	for _, vars := range p.CellVars {
		for j := 0; j+1 < len(vars); j++ {
			eRowPtr[k/2] = k
			eCol[k], eVal[k] = vars[j], -1
			eCol[k+1], eVal[k+1] = vars[j+1], 1
			k += 2
		}
	}
	eRowPtr[numEq] = k
	p.E = &sparse.CSR{Rows: numEq, Cols: p.NumVars, RowPtr: eRowPtr, ColIdx: eCol, Val: eVal}

	// Linear objective p = −x'.
	p.P = make([]float64, p.NumVars)
	for i, s := range p.Subcells {
		p.P[i] = -s.Target
	}
	return p, nil
}

// ApplyH computes dst = H src with H = I + λEᵀE. The E-coupling is block
// tridiagonal per multi-row cell (path-graph Laplacian), applied directly
// without materializing H.
func (p *Problem) ApplyH(dst, src []float64) {
	copy(dst, src)
	p.addLambdaLaplacian(dst, src, p.Lambda)
}

// ApplyHP is ApplyH sharded per cell block. H is block diagonal per cell
// (single-row cells are 1x1 identity blocks), so each block's output slots
// are disjoint and the per-slot arithmetic is unchanged — the result is
// bit-identical to ApplyH at any worker count.
func (p *Problem) ApplyHP(workers int, dst, src []float64) {
	if par.Resolve(workers) <= 1 {
		p.ApplyH(dst, src)
		return
	}
	par.For(workers, len(src), par.GrainVec, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
	lambda := p.Lambda
	par.For(workers, len(p.CellVars), par.GrainCells, func(lo, hi int) {
		for _, vars := range p.CellVars[lo:hi] {
			for k := 0; k+1 < len(vars); k++ {
				a, b := vars[k], vars[k+1]
				diff := src[b] - src[a]
				dst[a] -= lambda * diff
				dst[b] += lambda * diff
			}
		}
	})
}

// addLambdaLaplacian computes dst += coef * (EᵀE) src using the per-cell
// path-Laplacian structure.
func (p *Problem) addLambdaLaplacian(dst, src []float64, coef float64) {
	for _, vars := range p.CellVars {
		for k := 0; k+1 < len(vars); k++ {
			lo, hi := vars[k], vars[k+1]
			diff := src[hi] - src[lo]
			dst[lo] -= coef * diff
			dst[hi] += coef * diff
		}
	}
}

// SolveHShifted solves (c1·I + c2·λ'·L) dst = rhs blockwise, where L is the
// per-cell path Laplacian (so c1 = 1, c2·λ' = λ gives H, and
// c1 = 1/β*+1, c2·λ' = λ/β* gives the (1/β*)H + I system of the MMSIM).
// lamCoef is the coefficient multiplying L. dst and rhs may alias.
func (p *Problem) SolveHShifted(c1, lamCoef float64, dst, rhs []float64) {
	p.SolveHShiftedP(1, c1, lamCoef, dst, rhs)
}

// SolveHShiftedP is SolveHShifted sharded per cell block: every variable
// belongs to exactly one cell block and each block solve reads only its own
// rhs entries and writes only its own dst entries, so any worker count
// yields bit-identical results. dst and rhs may alias.
func (p *Problem) SolveHShiftedP(workers int, c1, lamCoef float64, dst, rhs []float64) {
	if par.Resolve(workers) <= 1 {
		p.solveHShiftedBlocks(c1, lamCoef, p.CellVars, dst, rhs)
		return
	}
	par.For(workers, len(p.CellVars), par.GrainCells, func(lo, hi int) {
		p.solveHShiftedBlocks(c1, lamCoef, p.CellVars[lo:hi], dst, rhs)
	})
}

// solveHShiftedBlocks solves the shifted system on one run of cell blocks;
// both the serial path and every par.For shard of SolveHShiftedP funnel
// through it, so the per-block arithmetic is one piece of code.
func (p *Problem) solveHShiftedBlocks(c1, lamCoef float64, blocks [][]int, dst, rhs []float64) {
	for _, vars := range blocks {
		d := len(vars)
		switch {
		case d == 0:
			continue
		case d == 1:
			dst[vars[0]] = rhs[vars[0]] / c1
		case d == 2:
			// Block [[c1+λ', −λ'], [−λ', c1+λ']] with λ' = lamCoef: the
			// closed form the paper derives via Sherman–Morrison.
			a := c1 + lamCoef
			det := a*a - lamCoef*lamCoef
			r0, r1 := rhs[vars[0]], rhs[vars[1]]
			dst[vars[0]] = (a*r0 + lamCoef*r1) / det
			dst[vars[1]] = (lamCoef*r0 + a*r1) / det
		default:
			// General k-row cells: Thomas algorithm on the small
			// tridiagonal block c1·I + λ'·L where L = path Laplacian
			// (diag 1,2,...,2,1; off-diagonals −1).
			p.solvePathBlock(c1, lamCoef, vars, dst, rhs)
		}
	}
}

// solvePathBlock runs the Thomas algorithm on one cell block. Stack-local
// scratch keeps this allocation-free for realistic spans.
func (p *Problem) solvePathBlock(c1, lam float64, vars []int, dst, rhs []float64) {
	d := len(vars)
	const maxSpan = 16
	var diagA, rhsA [maxSpan]float64
	diag := diagA[:d]
	r := rhsA[:d]
	if d > maxSpan {
		diag = make([]float64, d)
		r = make([]float64, d)
	}
	for k := 0; k < d; k++ {
		deg := 2.0
		if k == 0 || k == d-1 {
			deg = 1
		}
		diag[k] = c1 + lam*deg
		r[k] = rhs[vars[k]]
	}
	// Forward elimination with constant off-diagonal −lam.
	for k := 1; k < d; k++ {
		m := -lam / diag[k-1]
		diag[k] -= m * -lam
		r[k] -= m * r[k-1]
	}
	r[d-1] /= diag[d-1]
	for k := d - 2; k >= 0; k-- {
		r[k] = (r[k] + lam*r[k+1]) / diag[k]
	}
	for k := 0; k < d; k++ {
		dst[vars[k]] = r[k]
	}
}

// HDiag returns diag(H) = 1 + λ·deg(v), where deg is the variable's degree
// in its cell's subcell chain (0 for single-height cells).
func (p *Problem) HDiag() []float64 {
	out := make([]float64, p.NumVars)
	for i := range out {
		out[i] = 1
	}
	for _, vars := range p.CellVars {
		for k := 0; k+1 < len(vars); k++ {
			out[vars[k]] += p.Lambda
			out[vars[k+1]] += p.Lambda
		}
	}
	return out
}

// SolveHOmegaDiag solves ((1/β)H + diag(H)) dst = rhs blockwise. The block
// matrix is (1/β + 1)·diag(H) on the diagonal and −λ/β on the subcell
// chain off-diagonals — tridiagonal per cell, solved by the Thomas
// algorithm. dst and rhs may alias.
func (p *Problem) SolveHOmegaDiag(beta float64, dst, rhs []float64) {
	p.SolveHOmegaDiagP(1, beta, dst, rhs)
}

// SolveHOmegaDiagP is SolveHOmegaDiag sharded per cell block (same
// disjointness argument as SolveHShiftedP). dst and rhs may alias.
func (p *Problem) SolveHOmegaDiagP(workers int, beta float64, dst, rhs []float64) {
	c1 := 1/beta + 1
	lam := p.Lambda
	off := lam / beta
	if par.Resolve(workers) <= 1 {
		p.solveHOmegaDiagBlocks(c1, lam, off, p.CellVars, dst, rhs)
		return
	}
	par.For(workers, len(p.CellVars), par.GrainCells, func(lo, hi int) {
		p.solveHOmegaDiagBlocks(c1, lam, off, p.CellVars[lo:hi], dst, rhs)
	})
}

// solveHOmegaDiagBlocks solves the Ω = diag(H) system on one run of cell
// blocks; the serial path and every par.For shard of SolveHOmegaDiagP share
// it. The stack scratch keeps realistic spans allocation-free.
func (p *Problem) solveHOmegaDiagBlocks(c1, lam, off float64, blocks [][]int, dst, rhs []float64) {
	const maxSpan = 16
	var diagA, rhsA [maxSpan]float64
	for _, vars := range blocks {
		d := len(vars)
		switch {
		case d == 0:
			continue
		case d == 1:
			dst[vars[0]] = rhs[vars[0]] / c1
		default:
			diag := diagA[:d]
			r := rhsA[:d]
			if d > maxSpan {
				diag = make([]float64, d)
				r = make([]float64, d)
			}
			for k := 0; k < d; k++ {
				deg := 2.0
				if k == 0 || k == d-1 {
					deg = 1
				}
				diag[k] = c1 * (1 + lam*deg)
				r[k] = rhs[vars[k]]
			}
			for k := 1; k < d; k++ {
				m := -off / diag[k-1]
				diag[k] -= m * -off
				r[k] -= m * r[k-1]
			}
			r[d-1] /= diag[d-1]
			for k := d - 2; k >= 0; k-- {
				r[k] = (r[k] + off*r[k+1]) / diag[k]
			}
			for k := 0; k < d; k++ {
				dst[vars[k]] = r[k]
			}
		}
	}
}

// ApplyHInvSparse applies H⁻¹ to a sparse vector given as (idx, val) pairs
// and emits the nonzero results. Because H is block diagonal per cell, only
// the blocks containing input indices are touched, so the cost is
// O(Σ span(cell)) over the distinct cells referenced.
func (p *Problem) ApplyHInvSparse(idx []int, val []float64, emit func(int, float64)) {
	// Group by owning cell; input vectors here are rows of B with ≤ 2
	// entries, so a simple scan is fine.
	const maxSpan = 16
	var rhsA [maxSpan]float64
	done := make(map[int]bool, 2)
	for n, j := range idx {
		cell := p.blockOfVar[j]
		if done[cell] {
			continue
		}
		done[cell] = true
		vars := p.CellVars[cell]
		d := len(vars)
		rhs := rhsA[:d]
		if d > maxSpan {
			rhs = make([]float64, d)
		}
		for k := range rhs {
			rhs[k] = 0
		}
		// Gather every input entry that falls in this block.
		for m := n; m < len(idx); m++ {
			if p.blockOfVar[idx[m]] == cell {
				rhs[idx[m]-vars[0]] += val[m]
			}
		}
		sol := make([]float64, d)
		p.solveBlockDense(1, p.Lambda, vars, sol, rhs)
		for k, v := range sol {
			if v != 0 {
				emit(vars[k], v)
			}
		}
	}
}

// solveBlockDense solves one (c1·I + lam·L) block with local index slices
// (rhs indexed 0..d-1, result written to sol).
func (p *Problem) solveBlockDense(c1, lam float64, vars []int, sol, rhs []float64) {
	d := len(vars)
	if d == 1 {
		sol[0] = rhs[0] / c1
		return
	}
	diag := make([]float64, d)
	r := append([]float64(nil), rhs...)
	for k := 0; k < d; k++ {
		deg := 2.0
		if k == 0 || k == d-1 {
			deg = 1
		}
		diag[k] = c1 + lam*deg
	}
	for k := 1; k < d; k++ {
		m := -lam / diag[k-1]
		diag[k] -= m * -lam
		r[k] -= m * r[k-1]
	}
	r[d-1] /= diag[d-1]
	for k := d - 2; k >= 0; k-- {
		r[k] = (r[k] + lam*r[k+1]) / diag[k]
	}
	copy(sol, r)
}

// SchurTridiag computes D = tridiag(B H⁻¹ Bᵀ), the tridiagonal
// approximation of the Schur complement used by the splitting (Eq. 16).
// For designs with only single- and double-row cells this equals the
// paper's Sherman–Morrison closed form; for taller cells it generalizes via
// exact per-block solves.
func (p *Problem) SchurTridiag() *sparse.Tridiag {
	return sparse.GramTridiagApply(p.B, p.ApplyHInvSparse)
}

// AssembleLCPMatrix builds the full saddle-point matrix
// A = [[H, −Bᵀ], [B, 0]] in CSR form for the MMSIM rhs products.
func (p *Problem) AssembleLCPMatrix() *sparse.CSR {
	n, m := p.NumVars, p.NumCons
	b := sparse.NewBuilder(n+m, n+m)
	// H = I + λ EᵀE.
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	for _, vars := range p.CellVars {
		for k := 0; k+1 < len(vars); k++ {
			lo, hi := vars[k], vars[k+1]
			b.Add(lo, lo, p.Lambda)
			b.Add(hi, hi, p.Lambda)
			b.Add(lo, hi, -p.Lambda)
			b.Add(hi, lo, -p.Lambda)
		}
	}
	// −Bᵀ (top right) and B (bottom left).
	for i, c := range p.Cons {
		b.Add(c.Left, n+i, -(-1.0)) // −(Bᵀ)[left][i] = −(−1) = +1
		b.Add(n+i, c.Left, -1)
		if c.Right >= 0 {
			b.Add(c.Right, n+i, -1.0) // −(Bᵀ)[right][i] = −(+1) = −1
			b.Add(n+i, c.Right, 1)
		}
	}
	return b.Build()
}

// LCPVector builds q = [p; −b].
func (p *Problem) LCPVector() []float64 {
	q := make([]float64, p.NumVars+p.NumCons)
	copy(q, p.P)
	for i, bv := range p.Bv {
		q[p.NumVars+i] = -bv
	}
	return q
}
