package core

import (
	"sync"

	"mclg/internal/lcp"
	"mclg/internal/sparse"
)

// Structure-keyed splitting-parameter auto-tuning (Options.AutoTune).
//
// Tuning runs once per problem structure: a budgeted power iteration
// estimates the Theorem-2 bound on θ*, and a fixed candidate grid of θ*
// values inside that bound is ranked by a short real-iteration probe
// (lcp.ProbeContraction: a few MMSIM iterations against a synthetic
// structure-derived right-hand side — the final ‖Δz‖∞ exposes stalling or
// divergent candidates that a budgeted ρ(T) power-iteration estimate can
// rank incorrectly). The winner is cached under the same signature that
// licenses warm reuse. Every step is a deterministic function of the
// structure signature — the probe's q and start are fixed Weyl sequences
// and ties break toward the smaller θ* — so a cache hit and a fresh tune
// produce the same parameters, and with them bit-identical placements.

const (
	// autoTuneBoundIters/Tol budget the Theorem-2 bound estimate. The
	// certification-grade ThetaBound budget (200, 1e-8) is overkill for
	// ranking: a few dozen loose iterations locate μmax to well under the
	// safety margin below.
	autoTuneBoundIters = 32
	autoTuneBoundTol   = 1e-3

	// autoTuneProbeIters budgets the per-candidate real-iteration probe.
	// Long enough to leave the transient and expose stalling (the probe's
	// final ‖Δz‖∞ separates contracting from non-contracting candidates
	// by orders of magnitude), short enough that tuning all candidates
	// costs less than a typical cold solve; the cache amortizes it to
	// once per structure.
	autoTuneProbeIters = 40

	// autoTuneSafety keeps the tuned θ* strictly inside the Theorem-2
	// region despite the budgeted (under-converged, hence bound-
	// overestimating) μmax estimate.
	autoTuneSafety = 0.9

	// tunerCacheCap bounds the shared cache; entries are evicted FIFO. A
	// long-running server cycling through more than this many distinct
	// topologies re-tunes on wraparound — correctness is unaffected because
	// tuning is deterministic per structure.
	tunerCacheCap = 512
)

type tunerEntry struct {
	theta float64 // tuned θ*
	bound float64 // budgeted Theorem-2 bound estimate
	score float64 // probe ‖Δz‖∞ of the winning candidate (smaller = faster)
}

// tunerCache memoizes tuned parameters by structure+options signature.
type tunerCache struct {
	mu    sync.Mutex
	m     map[uint64]tunerEntry
	order []uint64 // insertion order for FIFO eviction
	cap   int
}

var sharedTuner = &tunerCache{m: make(map[uint64]tunerEntry), cap: tunerCacheCap}

func (c *tunerCache) lookup(key uint64) (tunerEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	return e, ok
}

func (c *tunerCache) store(key uint64, e tunerEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		for len(c.order) >= c.cap {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.m[key] = e
}

// ResetTunerCache drops all memoized tuning results. Tuning is deterministic
// per structure, so this never changes solver output — it only restores the
// one-time tuning cost, which the determinism tests rely on.
func ResetTunerCache() {
	sharedTuner.mu.Lock()
	defer sharedTuner.mu.Unlock()
	sharedTuner.m = make(map[uint64]tunerEntry)
	sharedTuner.order = nil
}

// tuneTheta ranks a fixed grid of θ* candidates — multiples of the
// configured value, clamped under the safety-factored Theorem-2 bound — by
// a short real-iteration probe on the assembled LCP matrix, and returns the
// winner with its already-built splitting. sp0 is the splitting built for
// the configured θ* and is reused when that candidate wins. Ties (within
// 1e-12) break toward the smaller θ*, keeping the choice deterministic.
func tuneTheta(p *Problem, opts *Options, aMat *sparse.CSR, sp0 *StructuredSplitting,
	build func(theta float64) (*StructuredSplitting, error),
) (tunerEntry, *StructuredSplitting, error) {
	bound, err := sp0.ThetaBoundBudget(autoTuneBoundIters, autoTuneBoundTol)
	if err != nil {
		return tunerEntry{}, nil, err
	}
	limit := 0.0
	if bound > 0 {
		limit = autoTuneSafety * bound
	}
	mults := [...]float64{0.5, 1, 2, 4}
	cands := make([]float64, 0, len(mults))
	for _, m := range mults {
		c := opts.Theta * m
		if limit > 0 && c > limit {
			c = limit
		}
		dup := false
		for _, e := range cands {
			if e == c {
				dup = true
				break
			}
		}
		if !dup {
			cands = append(cands, c)
		}
	}
	var best tunerEntry
	var bestSp *StructuredSplitting
	for i, cand := range cands {
		spc := sp0
		if cand != opts.Theta {
			spc, err = build(cand)
			if err != nil {
				return tunerEntry{}, nil, err
			}
		}
		r := lcp.ProbeContraction(aMat, spc, autoTuneProbeIters)
		if i == 0 || r < best.score-1e-12 {
			best = tunerEntry{theta: cand, bound: bound, score: r}
			bestSp = spc
		}
	}
	return best, bestSp, nil
}
