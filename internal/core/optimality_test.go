package core

import (
	"math"
	"testing"

	"mclg/internal/abacus"
	"mclg/internal/design"
	"mclg/internal/gen"
)

// TestMMSIMEqualsPlaceRowSingleHeight reproduces the Section 5.3
// experiment: on single-row-height designs with cells assigned to rows and
// the right boundary relaxed, both the MMSIM and Abacus's PlaceRow are
// optimal for the fixed ordering, so their total displacements must agree.
func TestMMSIMEqualsPlaceRowSingleHeight(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		d, err := gen.Generate(gen.Spec{
			Name: "t", SingleCells: 250, DoubleCells: 0, Density: 0.6, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Shared row assignment.
		if err := AssignRows(d); err != nil {
			t.Fatal(err)
		}
		mmsim := d.Clone()
		placerow := d.Clone()

		// MMSIM path.
		p, err := BuildProblem(mmsim, 1000)
		if err != nil {
			t.Fatal(err)
		}
		x, st, err := SolveMMSIM(p, Options{
			Lambda: 1000, Beta: 0.5, Theta: 0.5, Gamma: 1,
			Eps: 1e-9, MaxIter: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("seed %d: MMSIM did not converge", seed)
		}
		Restore(p, x)

		// PlaceRow path (same ordering, relaxed right boundary).
		if err := abacus.PlaceRowsAssigned(placerow, true); err != nil {
			t.Fatal(err)
		}

		// Optimal objectives must agree; positions may differ only where the
		// optimum is non-unique, so compare the objective value.
		var objM, objP float64
		for i := range mmsim.Cells {
			dm := mmsim.Cells[i].X - mmsim.Cells[i].GX
			dp := placerow.Cells[i].X - placerow.Cells[i].GX
			objM += dm * dm
			objP += dp * dp
		}
		if math.Abs(objM-objP) > 1e-3*math.Max(1, objP) {
			t.Errorf("seed %d: MMSIM objective %.6f vs PlaceRow %.6f", seed, objM, objP)
		}
		// With a strictly convex objective the optimum is unique: positions
		// must match too.
		for i := range mmsim.Cells {
			if math.Abs(mmsim.Cells[i].X-placerow.Cells[i].X) > 1e-2 {
				t.Errorf("seed %d: cell %d x MMSIM %.4f vs PlaceRow %.4f",
					seed, i, mmsim.Cells[i].X, placerow.Cells[i].X)
			}
		}
	}
}

// TestMMSIMNoBoundaryViolationLowDensity checks Table 1's qualitative
// claim: at low density the MMSIM output needs few or no Tetris repairs.
func TestMMSIMNoBoundaryViolationLowDensity(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "t", SingleCells: 400, DoubleCells: 40, Density: 0.25, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	leg := New(Options{})
	stats, err := leg.Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(stats.Illegal) / float64(len(d.Cells))
	if frac > 0.02 {
		t.Errorf("illegal fraction %.4f at density 0.25, expected < 2%%", frac)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("result illegal: %v", rep)
	}
}

// TestSubcellMismatchShrinksWithLambda checks the λ mechanism: larger
// penalties must tie multi-row subcells tighter together (the E7 ablation).
func TestSubcellMismatchShrinksWithLambda(t *testing.T) {
	base, err := gen.Generate(gen.Spec{
		Name: "t", SingleCells: 150, DoubleCells: 40, Density: 0.7, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, lambda := range []float64{1, 100, 10000} {
		d := base.Clone()
		if err := AssignRows(d); err != nil {
			t.Fatal(err)
		}
		p, err := BuildProblem(d, lambda)
		if err != nil {
			t.Fatal(err)
		}
		x, _, err := SolveMMSIM(p, Options{
			Lambda: lambda, Beta: 0.5, Theta: 0.5, Gamma: 1, Eps: 1e-8, MaxIter: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		mismatch := Restore(p, x)
		if mismatch > prev*1.5+1e-9 {
			t.Errorf("mismatch grew with λ=%g: %g (prev %g)", lambda, mismatch, prev)
		}
		prev = mismatch
	}
	// The penalty method leaves O(1/λ) mismatch; at λ = 10⁴ it must be well
	// under a site width (1 DBU here) so Tetris snapping absorbs it.
	if prev > 0.5 {
		t.Errorf("mismatch at λ=10000 still %g", prev)
	}
}
