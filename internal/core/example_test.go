package core_test

import (
	"fmt"

	"mclg/internal/core"
	"mclg/internal/design"
)

// ExampleLegalizer_Legalize shows the minimal end-to-end use of the
// legalizer: two overlapping cells are separated with minimal movement.
func ExampleLegalizer_Legalize() {
	d := design.NewDesign(design.Config{
		NumRows: 2, NumSites: 20, RowHeight: 10, SiteW: 1,
	})
	for _, gx := range []float64{5, 6} { // both want x≈5 in row 0
		c := d.AddCell("c", 4, 10, design.VSS)
		c.GX, c.GY = gx, 0
		c.X, c.Y = gx, 0
	}
	stats, err := core.New(core.Options{}).Legalize(d)
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", stats.Converged)
	fmt.Printf("cell 0 at x=%.0f, cell 1 at x=%.0f\n", d.Cells[0].X, d.Cells[1].X)
	fmt.Println("legal:", design.CheckLegal(d).Legal())
	// Output:
	// converged: true
	// cell 0 at x=3, cell 1 at x=7
	// legal: true
}

// ExampleAssignRows demonstrates the power-rail-aware row assignment:
// a double-height VSS-bottom cell near a VDD row must move to a VSS row.
func ExampleAssignRows() {
	d := design.NewDesign(design.Config{
		NumRows: 4, NumSites: 20, RowHeight: 10, SiteW: 1,
	})
	c := d.AddCell("dff", 4, 20, design.VSS)
	c.GX, c.GY = 0, 12 // nearest row is 1 (VDD) — incompatible
	if err := core.AssignRows(d); err != nil {
		panic(err)
	}
	fmt.Printf("assigned to row %d (y=%.0f)\n", d.RowAt(c.Y+1), c.Y)
	// Output:
	// assigned to row 2 (y=20)
}
