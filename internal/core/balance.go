package core

import (
	"fmt"
	"sort"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// BalanceRows repairs row over-subscription after AssignRows: when the
// total cell width assigned to a row exceeds its capacity, the
// boundary-constrained QP of BuildProblemBounded is infeasible, so cells
// are moved to nearby rows with slack until every row fits. Cells are
// chosen cheapest-first (smallest width), destinations nearest-first and
// rail-compatible; multi-row cells require slack in every spanned row.
//
// The relaxed (paper) flow does not need this — the right boundary is
// relaxed precisely so that nearest-row assignment is always feasible.
func BalanceRows(d *design.Design) error {
	load := make([]float64, len(d.Rows))
	capacity := make([]float64, len(d.Rows))
	for r := range d.Rows {
		capacity[r] = d.Rows[r].Span().Len()
	}
	rowOf := func(c *design.Cell) int { return d.RowAt(c.Y + d.RowHeight/2) }
	byRow := make([][]*design.Cell, len(d.Rows))
	for _, c := range d.Cells {
		if c.Fixed {
			// Fixed cells consume capacity in every row they touch.
			r0 := d.RowAt(c.Y + 1e-9)
			r1 := d.RowAt(c.Y + c.H - 1e-9)
			for r := max(0, r0); r <= min(len(d.Rows)-1, r1); r++ {
				load[r] += c.W
			}
			continue
		}
		r := rowOf(c)
		if r < 0 {
			return fmt.Errorf("core: cell %d not on a row", c.ID)
		}
		for k := 0; k < c.RowSpan; k++ {
			load[r+k] += c.W
			byRow[r+k] = append(byRow[r+k], c)
		}
	}

	slackAt := func(r int) float64 { return capacity[r] - load[r] }
	canHost := func(c *design.Cell, r int) bool {
		if !d.RailCompatible(c, r) {
			return false
		}
		for k := 0; k < c.RowSpan; k++ {
			if slackAt(r+k) < c.W {
				return false
			}
		}
		return true
	}
	move := func(c *design.Cell, from, to int) {
		for k := 0; k < c.RowSpan; k++ {
			load[from+k] -= c.W
			load[to+k] += c.W
			byRow[from+k] = removeCell(byRow[from+k], c)
			byRow[to+k] = append(byRow[to+k], c)
		}
		c.Y = d.RowY(to)
		if !c.EvenSpan() {
			c.Flipped = d.Rows[to].Rail != c.BottomRail
		}
	}

	maxMoves := 4 * len(d.Cells)
	for moves := 0; ; moves++ {
		over := -1
		for r := range d.Rows {
			if load[r] > capacity[r]+1e-9 {
				over = r
				break
			}
		}
		if over < 0 {
			return nil
		}
		if moves >= maxMoves {
			return fmt.Errorf("core: BalanceRows did not converge (row %d overloaded by %.1f): %w",
				over, load[over]-capacity[over], mclgerr.ErrInfeasibleRow)
		}
		// Candidates: cells whose bottom row is `over` or that span it.
		cands := append([]*design.Cell(nil), byRow[over]...)
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].W != cands[j].W {
				return cands[i].W < cands[j].W
			}
			return cands[i].ID < cands[j].ID
		})
		moved := false
		for delta := 1; delta < len(d.Rows) && !moved; delta++ {
			for _, c := range cands {
				from := rowOf(c)
				for _, to := range [2]int{from - delta, from + delta} {
					if to < 0 || to+c.RowSpan > len(d.Rows) || to == from {
						continue
					}
					if canHost(c, to) {
						move(c, from, to)
						moved = true
						break
					}
				}
				if moved {
					break
				}
			}
		}
		if !moved {
			return fmt.Errorf("core: BalanceRows stuck: no destination for any cell of row %d: %w",
				over, mclgerr.ErrInfeasibleRow)
		}
	}
}

func removeCell(s []*design.Cell, c *design.Cell) []*design.Cell {
	for i, x := range s {
		if x == c {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
