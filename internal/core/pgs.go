package core

import (
	"context"

	"mclg/internal/lcp"
	"mclg/internal/sparse"
)

// SolvePGS solves the relaxed legalization QP with projected Gauss–Seidel
// on the *dual* Schur-complement LCP instead of the primal saddle-point
// system the MMSIM iterates on:
//
//	S = B H⁻¹ Bᵀ,  q̃ = −(B H⁻¹ p + (−b)) = B H⁻¹ (−p) − b
//	find μ ≥ 0 with S μ + q̃ ≥ 0, μᵀ(S μ + q̃) = 0
//	x = H⁻¹ (Bᵀ μ − p)
//
// S is symmetric positive semi-definite with strictly positive diagonal
// (every row of B is nonzero and H is positive definite), so PGS is a
// convergent coordinate descent with no splitting constants to tune — the
// property that makes this the fallback when the structured MMSIM diverges
// under a bad (β*, θ*) choice. The trade-off is speed: information moves one
// constraint per sweep along each row chain, so sweeps scale with chain
// length, where the MMSIM's block solve moves it globally per iteration.
//
// Unlike the primal LCP, the dual drops the implicit x ≥ 0 left-boundary
// complementarity; leftmost cells of an overfull row may come back slightly
// negative. The Tetris allocation stage clamps and repairs those the same
// way it repairs the relaxed right boundary, and the legality checker has
// the final word, so the relaxation is sound for a recovery path.
//
// Returns the subcell x solution (length p.NumVars), the number of PGS
// sweeps, and an error matching the mclgerr taxonomy on divergence, budget
// exhaustion, or cancellation. On ErrIterBudget the returned iterate is
// still the best available and callers may attempt to legalize it anyway.
func SolvePGS(ctx context.Context, p *Problem, eps float64, maxIter int) ([]float64, int, error) {
	n, m := p.NumVars, p.NumCons
	if n == 0 {
		return nil, 0, nil
	}
	// h = H⁻¹ p (p.P holds the linear term −target).
	h := make([]float64, n)
	p.SolveHShifted(1, p.Lambda, h, p.P)
	if m == 0 {
		// Unconstrained optimum x = −H⁻¹ p.
		x := make([]float64, n)
		for i := range x {
			x[i] = -h[i]
		}
		return x, 0, nil
	}

	// touch[v] lists the constraints whose B row has a nonzero at variable v,
	// with the entry's sign: B[i][Left_i] = −1, B[i][Right_i] = +1.
	type bEntry struct {
		con  int
		sign float64
	}
	touch := make([][]bEntry, n)
	for i, c := range p.Cons {
		touch[c.Left] = append(touch[c.Left], bEntry{i, -1})
		if c.Right >= 0 {
			touch[c.Right] = append(touch[c.Right], bEntry{i, 1})
		}
	}

	// Assemble S column by column: column i is B · (H⁻¹ Bᵀ e_i), and
	// H⁻¹ Bᵀ e_i only touches the subcell blocks of the one or two cells
	// constraint i references, so assembly is O(Σ span) per column.
	sb := sparse.NewBuilder(m, m)
	idx := make([]int, 0, 2)
	val := make([]float64, 0, 2)
	for i, c := range p.Cons {
		idx, val = idx[:0], val[:0]
		idx = append(idx, c.Left)
		val = append(val, -1)
		if c.Right >= 0 {
			idx = append(idx, c.Right)
			val = append(val, 1)
		}
		p.ApplyHInvSparse(idx, val, func(v int, hv float64) {
			for _, e := range touch[v] {
				sb.Add(e.con, i, e.sign*hv)
			}
		})
	}
	s := sb.Build()

	// q̃_i = −(B h)_i − b_i with b_i = p.Bv[i] and (B h)_i = −h[L] + h[R].
	qd := make([]float64, m)
	for i, c := range p.Cons {
		bh := -h[c.Left]
		if c.Right >= 0 {
			bh += h[c.Right]
		}
		qd[i] = -bh - p.Bv[i]
	}

	mu, sweeps, err := lcp.PGSSparse(ctx, s, qd, nil, eps, maxIter)
	if mu == nil {
		return nil, sweeps, err
	}

	// x = H⁻¹ (Bᵀ μ − p).
	rhs := make([]float64, n)
	for i, c := range p.Cons {
		rhs[c.Left] -= mu[i]
		if c.Right >= 0 {
			rhs[c.Right] += mu[i]
		}
	}
	for i := range rhs {
		rhs[i] -= p.P[i]
	}
	x := make([]float64, n)
	p.SolveHShifted(1, p.Lambda, x, rhs)
	return x, sweeps, err
}
