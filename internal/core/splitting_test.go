package core

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/sparse"
)

// buildMixedProblem assembles a random mixed-height problem for splitting
// tests.
func buildMixedProblem(t *testing.T, seed int64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := randomDesign(rng, 6, 80, 25, 0.3)
	if err := AssignRows(d); err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCons == 0 {
		t.Skip("degenerate instance without constraints")
	}
	return p
}

// explicitM builds the dense M matrix of Eq. 16 for verification.
func explicitM(p *Problem, beta, theta float64, dTri *sparse.Tridiag) [][]float64 {
	n, m := p.NumVars, p.NumCons
	size := n + m
	out := make([][]float64, size)
	for i := range out {
		out[i] = make([]float64, size)
	}
	// (1/β)H top-left.
	h := denseH(p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i][j] = h[i][j] / beta
		}
	}
	// B bottom-left.
	bD := p.B.Dense()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out[n+i][j] = bD[i][j]
		}
	}
	// (1/θ)D bottom-right.
	for i := 0; i < m; i++ {
		out[n+i][n+i] = dTri.Diag[i] / theta
		if i > 0 {
			out[n+i][n+i-1] = dTri.Sub[i] / theta
		}
		if i < m-1 {
			out[n+i][n+i+1] = dTri.Sup[i] / theta
		}
	}
	return out
}

func denseH(p *Problem) [][]float64 {
	n := p.NumVars
	h := make([][]float64, n)
	for i := range h {
		h[i] = make([]float64, n)
		h[i][i] = 1
	}
	for _, vars := range p.CellVars {
		for k := 0; k+1 < len(vars); k++ {
			lo, hi := vars[k], vars[k+1]
			h[lo][lo] += p.Lambda
			h[hi][hi] += p.Lambda
			h[lo][hi] -= p.Lambda
			h[hi][lo] -= p.Lambda
		}
	}
	return h
}

func TestSolveMOmegaMatchesExplicitSystem(t *testing.T) {
	p := buildMixedProblem(t, 61)
	beta, theta := 0.5, 0.5
	sp, err := NewStructuredSplitting(p, beta, theta)
	if err != nil {
		t.Fatal(err)
	}
	size := p.NumVars + p.NumCons
	mDense := explicitM(p, beta, theta, sp.D())
	for i := 0; i < size; i++ {
		mDense[i][i] += 1 // Ω = I
	}
	rng := rand.New(rand.NewSource(62))
	rhs := make([]float64, size)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	got := make([]float64, size)
	sp.SolveMOmega(got, rhs)
	// Verify (M+Ω)·got == rhs.
	for i := 0; i < size; i++ {
		s := 0.0
		for j := 0; j < size; j++ {
			s += mDense[i][j] * got[j]
		}
		if math.Abs(s-rhs[i]) > 1e-8*math.Max(1, math.Abs(rhs[i])) {
			t.Fatalf("(M+I)·x mismatch at row %d: %g vs %g", i, s, rhs[i])
		}
	}
}

func TestApplyNMatchesExplicitMatrix(t *testing.T) {
	p := buildMixedProblem(t, 63)
	beta, theta := 0.5, 0.5
	sp, err := NewStructuredSplitting(p, beta, theta)
	if err != nil {
		t.Fatal(err)
	}
	size := p.NumVars + p.NumCons
	// N = M − A.
	mDense := explicitM(p, beta, theta, sp.D())
	aDense := p.AssembleLCPMatrix().Dense()
	rng := rand.New(rand.NewSource(64))
	src := make([]float64, size)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	got := make([]float64, size)
	sp.ApplyN(got, src)
	for i := 0; i < size; i++ {
		want := 0.0
		for j := 0; j < size; j++ {
			want += (mDense[i][j] - aDense[i][j]) * src[j]
		}
		if math.Abs(got[i]-want) > 1e-8*math.Max(1, math.Abs(want)) {
			t.Fatalf("N·x mismatch at row %d: %g vs %g", i, got[i], want)
		}
	}
}

// TestOmegaVariantsSameSolution verifies that all Ω choices converge to the
// same LCP fixed point (they must: Ω only reparametrizes the iteration).
func TestOmegaVariantsSameSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := randomDesign(rng, 5, 70, 18, 0.3)
	if err := AssignRows(d); err != nil {
		t.Fatal(err)
	}
	lambda := 100.0
	var ref []float64
	for i, opts := range []Options{
		{Lambda: lambda, PaperOmega: true},
		{Lambda: lambda, OmegaR: 0.1},
		{Lambda: lambda, ScaledOmegaX: true},
	} {
		p, err := BuildProblem(d, lambda)
		if err != nil {
			t.Fatal(err)
		}
		full := New(opts).Opts
		full.Eps = 1e-10
		full.MaxIter = 300000
		full.ResidualTol = 1e-6
		x, st, err := SolveMMSIM(p, full)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if !st.Converged {
			t.Fatalf("variant %d did not converge", i)
		}
		if ref == nil {
			ref = x
			continue
		}
		for j := range ref {
			if math.Abs(x[j]-ref[j]) > 1e-4 {
				t.Errorf("variant %d: x[%d] = %.8f, reference %.8f", i, j, x[j], ref[j])
			}
		}
	}
}

func TestSplittingParameterValidation(t *testing.T) {
	p := buildMixedProblem(t, 71)
	if _, err := NewStructuredSplitting(p, 0, 0.5); err == nil {
		t.Error("beta = 0 accepted")
	}
	if _, err := NewStructuredSplitting(p, 2, 0.5); err == nil {
		t.Error("beta = 2 accepted")
	}
	if _, err := NewStructuredSplitting(p, 0.5, 0); err == nil {
		t.Error("theta = 0 accepted")
	}
	if _, err := NewStructuredSplittingOmegaR(p, 0.5, 0.5, -1); err == nil {
		t.Error("negative omegaR accepted")
	}
}

func TestHDiag(t *testing.T) {
	d, _ := figure3Design()
	p, err := BuildProblem(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := p.HDiag()
	// c1: two subcells (degree 1 each), c2: single (degree 0), c3: two.
	want := []float64{8, 8, 1, 8, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("HDiag[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSolveHOmegaDiagInverts(t *testing.T) {
	p := buildMixedProblem(t, 73)
	beta := 0.5
	rng := rand.New(rand.NewSource(74))
	rhs := make([]float64, p.NumVars)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, p.NumVars)
	p.SolveHOmegaDiag(beta, x, rhs)
	// Verify ((1/β)H + diag(H)) x == rhs.
	hx := make([]float64, p.NumVars)
	p.ApplyH(hx, x)
	hd := p.HDiag()
	for i := range rhs {
		got := hx[i]/beta + hd[i]*x[i]
		if math.Abs(got-rhs[i]) > 1e-8*math.Max(1, math.Abs(rhs[i])) {
			t.Fatalf("row %d: %g vs %g", i, got, rhs[i])
		}
	}
}
