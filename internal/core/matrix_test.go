package core

import (
	"math"
	"testing"

	"mclg/internal/design"
)

// figure2Design reproduces the placement of Figure 2: five single-row-height
// cells, c2 and c4 aligned to row 0, c1, c3, c5 to row 1, ordered by global
// x within each row.
func figure2Design() (*design.Design, []*design.Cell) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 100, RowHeight: 10, SiteW: 1})
	widths := []float64{8, 6, 7, 5, 9}
	rows := []int{1, 0, 1, 0, 1}
	gx := []float64{5, 10, 30, 40, 60}
	var cells []*design.Cell
	for i := 0; i < 5; i++ {
		c := d.AddCell("c", widths[i], 10, design.VSS)
		c.GX = gx[i]
		c.GY = d.RowY(rows[i])
		c.X, c.Y = c.GX, c.GY
		cells = append(cells, c)
	}
	return d, cells
}

func TestFigure2ConstraintMatrix(t *testing.T) {
	d, cells := figure2Design()
	p, err := BuildProblem(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 5 {
		t.Fatalf("NumVars = %d, want 5", p.NumVars)
	}
	if p.NumCons != 3 {
		t.Fatalf("NumCons = %d, want 3", p.NumCons)
	}
	// Constraints are emitted row-major: row 0 first (c2 -> c4), then row 1
	// (c1 -> c3, c3 -> c5). This is the B of Figure 2 up to the paper's
	// row ordering.
	bDense := p.B.Dense()
	want := [][]float64{
		{0, -1, 0, 1, 0}, // x4 - x2 >= w2
		{-1, 0, 1, 0, 0}, // x3 - x1 >= w1
		{0, 0, -1, 0, 1}, // x5 - x3 >= w3
	}
	for i := range want {
		for j := range want[i] {
			if bDense[i][j] != want[i][j] {
				t.Errorf("B[%d][%d] = %g, want %g", i, j, bDense[i][j], want[i][j])
			}
		}
	}
	wantB := []float64{cells[1].W, cells[0].W, cells[2].W}
	for i := range wantB {
		if p.Bv[i] != wantB[i] {
			t.Errorf("b[%d] = %g, want %g", i, p.Bv[i], wantB[i])
		}
	}
	// p = -x'.
	for i, c := range cells {
		if p.P[i] != -c.GX {
			t.Errorf("p[%d] = %g, want %g", i, p.P[i], -c.GX)
		}
	}
	if p.E.Rows != 0 {
		t.Errorf("E should have no rows for single-height cells, got %d", p.E.Rows)
	}
}

// figure3Design reproduces Figure 3: c1 (double-height, rows 0-1), c2
// (single, row 0, between c1 and c3), c3 (double-height, rows 0-1).
func figure3Design() (*design.Design, []*design.Cell) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 100, RowHeight: 10, SiteW: 1})
	c1 := d.AddCell("c1", 8, 20, design.VSS)
	c2 := d.AddCell("c2", 6, 10, design.VSS)
	c3 := d.AddCell("c3", 7, 20, design.VSS)
	for i, c := range []*design.Cell{c1, c2, c3} {
		c.GX = float64(10 + 20*i)
		c.GY = 0
		c.X, c.Y = c.GX, c.GY
	}
	return d, []*design.Cell{c1, c2, c3}
}

func TestFigure3Matrices(t *testing.T) {
	d, cells := figure3Design()
	p, err := BuildProblem(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Variables: c1 -> 0 (bottom), 1 (top); c2 -> 2; c3 -> 3 (bottom), 4 (top).
	if p.NumVars != 5 {
		t.Fatalf("NumVars = %d, want 5", p.NumVars)
	}
	if got := len(p.CellVars[0]); got != 2 {
		t.Fatalf("c1 has %d vars, want 2", got)
	}
	if got := len(p.CellVars[1]); got != 1 {
		t.Fatalf("c2 has %d vars, want 1", got)
	}
	// Constraints: row 0: c1->c2, c2->c3; row 1: c1->c3. Three rows, full
	// row rank (the paper's point: splitting fixes the rank deficiency of
	// the unsplit formulation).
	if p.NumCons != 3 {
		t.Fatalf("NumCons = %d, want 3", p.NumCons)
	}
	bDense := p.B.Dense()
	wantB := [][]float64{
		{-1, 0, 1, 0, 0}, // x_c2 - x_c1(bottom) >= w1
		{0, 0, -1, 1, 0}, // x_c3(bottom) - x_c2 >= w2
		{0, -1, 0, 0, 1}, // x_c3(top) - x_c1(top) >= w1
	}
	for i := range wantB {
		for j := range wantB[i] {
			if bDense[i][j] != wantB[i][j] {
				t.Errorf("B[%d][%d] = %g, want %g", i, j, bDense[i][j], wantB[i][j])
			}
		}
	}
	if p.Bv[0] != cells[0].W || p.Bv[1] != cells[1].W || p.Bv[2] != cells[0].W {
		t.Errorf("b = %v, want [%g %g %g]", p.Bv, cells[0].W, cells[1].W, cells[0].W)
	}
	// E ties the two subcells of c1 and of c3.
	if p.E.Rows != 2 {
		t.Fatalf("E has %d rows, want 2", p.E.Rows)
	}
	eDense := p.E.Dense()
	wantE := [][]float64{
		{-1, 1, 0, 0, 0},
		{0, 0, 0, -1, 1},
	}
	for i := range wantE {
		for j := range wantE[i] {
			if eDense[i][j] != wantE[i][j] {
				t.Errorf("E[%d][%d] = %g, want %g", i, j, eDense[i][j], wantE[i][j])
			}
		}
	}
	// p duplicates targets for subcells: [-x1', -x1', -x2', -x3', -x3'].
	wantP := []float64{-10, -10, -30, -50, -50}
	for i := range wantP {
		if p.P[i] != wantP[i] {
			t.Errorf("p[%d] = %g, want %g", i, p.P[i], wantP[i])
		}
	}
}

func TestBFullRowRank(t *testing.T) {
	// Proposition 2: B has full row rank. Verify on the Figure 3 example by
	// Gaussian elimination over the dense expansion.
	d, _ := figure3Design()
	p, err := BuildProblem(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rank := matRank(p.B.Dense()); rank != p.NumCons {
		t.Errorf("rank(B) = %d, want %d", rank, p.NumCons)
	}
}

// matRank computes the rank of a small dense matrix by row elimination.
func matRank(a [][]float64) int {
	if len(a) == 0 {
		return 0
	}
	rows, cols := len(a), len(a[0])
	m := make([][]float64, rows)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	rank := 0
	for c := 0; c < cols && rank < rows; c++ {
		// Find pivot.
		p := -1
		best := 1e-9
		for r := rank; r < rows; r++ {
			if v := math.Abs(m[r][c]); v > best {
				best, p = v, r
			}
		}
		if p < 0 {
			continue
		}
		m[rank], m[p] = m[p], m[rank]
		for r := 0; r < rows; r++ {
			if r == rank || m[r][c] == 0 {
				continue
			}
			f := m[r][c] / m[rank][c]
			for j := c; j < cols; j++ {
				m[r][j] -= f * m[rank][j]
			}
		}
		rank++
	}
	return rank
}

func TestApplyHMatchesAssembled(t *testing.T) {
	d, _ := figure3Design()
	p, err := BuildProblem(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := p.AssembleLCPMatrix()
	src := []float64{1, -2, 3, 0.5, 4}
	dst := make([]float64, 5)
	p.ApplyH(dst, src)
	// The top-left n x n block of A is H.
	full := make([]float64, 5+p.NumCons)
	copy(full, src)
	out := make([]float64, 5+p.NumCons)
	a.MulVec(out, full)
	// out[:5] = H src − Bᵀ·0 = H src.
	for i := 0; i < 5; i++ {
		if math.Abs(dst[i]-out[i]) > 1e-12 {
			t.Errorf("ApplyH[%d] = %g, assembled %g", i, dst[i], out[i])
		}
	}
}

func TestSolveHShiftedInvertsApply(t *testing.T) {
	d, _ := figure3Design()
	lambda := 13.0
	p, err := BuildProblem(d, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{2, -1, 0.5, 3, -2}
	x := make([]float64, 5)
	// Solve H x = rhs, then verify H x == rhs via ApplyH.
	p.SolveHShifted(1, lambda, x, rhs)
	chk := make([]float64, 5)
	p.ApplyH(chk, x)
	for i := range rhs {
		if math.Abs(chk[i]-rhs[i]) > 1e-9 {
			t.Errorf("H·(H⁻¹rhs)[%d] = %g, want %g", i, chk[i], rhs[i])
		}
	}
}

func TestSolveHShiftedTripleHeight(t *testing.T) {
	// A triple-row cell exercises the general Thomas path (d = 3).
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 50, RowHeight: 10, SiteW: 1})
	c := d.AddCell("t", 5, 30, design.VSS)
	c.GX, c.GY = 10, 0
	c.X, c.Y = 10, 0
	lambda := 9.0
	p, err := BuildProblem(d, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 3 {
		t.Fatalf("NumVars = %d, want 3", p.NumVars)
	}
	rhs := []float64{1, 2, 3}
	x := make([]float64, 3)
	p.SolveHShifted(1, lambda, x, rhs)
	chk := make([]float64, 3)
	p.ApplyH(chk, x)
	for i := range rhs {
		if math.Abs(chk[i]-rhs[i]) > 1e-9 {
			t.Errorf("triple-height solve: H·x[%d] = %g, want %g", i, chk[i], rhs[i])
		}
	}
}

func TestApplyHInvSparseMatchesDenseSolve(t *testing.T) {
	d, _ := figure3Design()
	lambda := 1000.0
	p, err := BuildProblem(d, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse input: a row of B, entries at vars 1 and 4.
	idx := []int{1, 4}
	val := []float64{-1, 1}
	got := make([]float64, 5)
	p.ApplyHInvSparse(idx, val, func(j int, v float64) { got[j] += v })
	// Dense reference.
	rhs := make([]float64, 5)
	rhs[1], rhs[4] = -1, 1
	want := make([]float64, 5)
	p.SolveHShifted(1, lambda, want, rhs)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("HInvSparse[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSchurTridiagClosedFormDoubleHeight(t *testing.T) {
	// For designs with only 1- and 2-row cells the paper's Sherman–Morrison
	// closed form applies: H⁻¹ = I − λ/(2λ+1)·EᵀE, so
	// D = tridiag(BBᵀ − λ/(2λ+1)·(BEᵀ)(BEᵀ)ᵀ). Check our general-purpose
	// computation against that formula on Figure 3.
	d, _ := figure3Design()
	lambda := 1000.0
	p, err := BuildProblem(d, lambda)
	if err != nil {
		t.Fatal(err)
	}
	got := p.SchurTridiag()
	// Closed form via dense arithmetic.
	bD := p.B.Dense()
	eD := p.E.Dense()
	n := p.NumVars
	hinv := make([][]float64, n)
	for i := range hinv {
		hinv[i] = make([]float64, n)
		hinv[i][i] = 1
	}
	coef := lambda / (2*lambda + 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ete := 0.0
			for k := range eD {
				ete += eD[k][i] * eD[k][j]
			}
			hinv[i][j] -= coef * ete
		}
	}
	gram := func(i, j int) float64 {
		s := 0.0
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				s += bD[i][a] * hinv[a][b] * bD[j][b]
			}
		}
		return s
	}
	for i := 0; i < p.NumCons; i++ {
		if math.Abs(got.Diag[i]-gram(i, i)) > 1e-9 {
			t.Errorf("D diag[%d] = %g, closed form %g", i, got.Diag[i], gram(i, i))
		}
		if i > 0 && math.Abs(got.Sub[i]-gram(i, i-1)) > 1e-9 {
			t.Errorf("D sub[%d] = %g, closed form %g", i, got.Sub[i], gram(i, i-1))
		}
	}
}
