package core

import (
	"fmt"

	"mclg/internal/sparse"
)

// StructuredSplitting is the paper's block lower-triangular MMSIM splitting
// (Eq. 16):
//
//	M = [[(1/β*)H,     0      ],      N = [[(1/β*−1)H,  Bᵀ     ],
//	     [   B,     (1/θ*)D   ]]           [    0,    (1/θ*)D  ]]
//
// with H = Q + λEᵀE and D = tridiag(B H⁻¹ Bᵀ). With Ω = I, the system
// (M + Ω) s = rhs is block lower triangular: the x-block solve is a
// per-cell block solve and the r-block solve is one tridiagonal system, so
// each MMSIM iteration costs O(n + m).
type StructuredSplitting struct {
	p        *Problem
	beta     float64
	theta    float64
	d        *sparse.Tridiag       // D
	mSolver  *sparse.TridiagSolver // factor of (1/θ*)D + Ω_r
	scratchX []float64
	dScaled  *sparse.Tridiag // (1/θ*)D, reused by ApplyN
	omega    []float64       // nil for Ω = I
	scaledX  bool            // Ω_x = diag(H) instead of I
	bT       *sparse.CSR     // Bᵀ, precomputed so ApplyN can shard by row
	workers  int             // 0 = GOMAXPROCS, 1 = serial (see SetWorkers)
}

// SetWorkers shards the splitting's operator applications across the given
// worker count (0 = GOMAXPROCS, 1 = serial). Every worker count produces
// bit-identical results: the per-cell block solves and per-row products
// write disjoint slots, and the tridiagonal solve shards only across the
// independent per-placement-row blocks of D. MMSIM calls this through the
// lcp.WorkerSettable interface.
func (s *StructuredSplitting) SetWorkers(workers int) { s.workers = workers }

// NewStructuredSplitting builds the splitting for an assembled problem with
// Ω = I, exactly as in the paper's Algorithm 1. beta and theta are the β*
// and θ* constants; the paper uses 0.5 for both.
func NewStructuredSplitting(p *Problem, beta, theta float64) (*StructuredSplitting, error) {
	return newStructured(p, beta, theta, false, 1)
}

// NewStructuredSplittingScaledOmega builds the splitting with
// Ω_x = diag(H) and Ω_r = 1 instead of the paper's Ω = I. For large λ this
// removes the near-unit contraction of the subcell-coupling modes — with
// Ω = I those modes contract like 1 − O(1/λ), which stalls high-density
// mixed designs — while leaving the solution unchanged (any positive
// diagonal Ω yields the same LCP fixed point). This is the documented
// deviation the Ω-ablation bench quantifies.
func NewStructuredSplittingScaledOmega(p *Problem, beta, theta float64) (*StructuredSplitting, error) {
	return newStructured(p, beta, theta, true, 1)
}

// NewStructuredSplittingOmegaR builds the paper's splitting but with
// Ω_r = omegaR instead of 1 on the multiplier block. D's low-frequency
// modes (long constraint chains in dense rows) have eigenvalues O(1/m²);
// with Ω_r = 1 they barely move per iteration and the multipliers ramp for
// tens of thousands of iterations on dense designs. A small Ω_r lets the
// (1/θ*)D term dominate and removes the stall while keeping Ω positive
// diagonal, the only requirement of the MMSIM theory.
func NewStructuredSplittingOmegaR(p *Problem, beta, theta, omegaR float64) (*StructuredSplitting, error) {
	return newStructured(p, beta, theta, false, omegaR)
}

func newStructured(p *Problem, beta, theta float64, scaledOmega bool, omegaR float64) (*StructuredSplitting, error) {
	if beta <= 0 || beta >= 2 {
		return nil, fmt.Errorf("core: beta must be in (0, 2), got %g", beta)
	}
	if theta <= 0 {
		return nil, fmt.Errorf("core: theta must be positive, got %g", theta)
	}
	if omegaR <= 0 {
		return nil, fmt.Errorf("core: omegaR must be positive, got %g", omegaR)
	}
	s := &StructuredSplitting{
		p:        p,
		beta:     beta,
		theta:    theta,
		d:        p.SchurTridiag(),
		scratchX: make([]float64, p.NumVars),
		scaledX:  scaledOmega,
	}
	if scaledOmega || omegaR != 1 {
		n, m := p.NumVars, p.NumCons
		s.omega = make([]float64, n+m)
		if scaledOmega {
			copy(s.omega[:n], p.HDiag())
		} else {
			for i := 0; i < n; i++ {
				s.omega[i] = 1
			}
		}
		for i := n; i < n+m; i++ {
			s.omega[i] = omegaR
		}
	}
	s.dScaled = s.d.Scaled(1 / theta)
	solver, err := s.dScaled.Shifted(omegaR).Factor()
	if err != nil {
		return nil, fmt.Errorf("core: factoring (1/θ*)D + Ω_r: %w", err)
	}
	s.mSolver = solver
	s.bT = p.B.Transpose()
	s.workers = 1
	return s, nil
}

// D returns the tridiagonal Schur approximation (for diagnostics and the
// θ* bound computation).
func (s *StructuredSplitting) D() *sparse.Tridiag { return s.d }

// SolveMOmega solves (M + Ω) dst = rhs exploiting the block
// lower-triangular structure:
//
//	((1/β*)H + Ω_x) s_x            = rhs_x
//	((1/θ*)D + Ω_r) s_r            = rhs_r − B s_x
func (s *StructuredSplitting) SolveMOmega(dst, rhs []float64) {
	n, m := s.p.NumVars, s.p.NumCons
	if s.scaledX {
		// Ω_x = diag(H): (1/β*)H + diag(H) = (1/β*+1)diag(H) − (λ/β*)Adj,
		// still tridiagonal per cell block.
		s.p.SolveHOmegaDiagP(s.workers, s.beta, dst[:n], rhs[:n])
	} else {
		// Ω_x = I: per-cell solve of (1/β*)(I + λL) + I = (1/β*+1)I + (λ/β*)L.
		s.p.SolveHShiftedP(s.workers, 1/s.beta+1, s.p.Lambda/s.beta, dst[:n], rhs[:n])
	}
	// Bottom block: ((1/θ*)D + Ω_r). The copy of rhs_r is fused into the
	// B·s_x row pass (rhsR[i] = rhs[n+i] + (−1)·(B s_x)_i, same per-element
	// arithmetic as copy-then-AddMulVec).
	rhsR := dst[n : n+m]
	s.p.B.ScaleAddMulVecP(s.workers, rhsR, rhs[n:n+m], 1, dst[:n], -1)
	s.mSolver.SolveP(s.workers, rhsR, rhsR)
}

// ApplyN computes dst = N src:
//
//	dst_x = (1/β*−1) H src_x + Bᵀ src_r
//	dst_r = (1/θ*) D src_r
func (s *StructuredSplitting) ApplyN(dst, src []float64) {
	n, m := s.p.NumVars, s.p.NumCons
	s.p.ApplyHP(s.workers, s.scratchX, src[:n])
	coef := 1/s.beta - 1
	// Bᵀ src_r via the precomputed transpose: the row-sharded product keeps
	// the scatter that AddMulVecT would do off the parallel path. The
	// (1/β*−1)·H src_x scaling is fused into the same row pass
	// (dst[i] = coef·scratchX[i] + 1·(Bᵀ src_r)_i — identical per-element
	// arithmetic, one less full-length store/load).
	s.bT.ScaleAddMulVecP(s.workers, dst[:n], s.scratchX, coef, src[n:n+m], 1)
	s.dScaled.MulVecP(s.workers, dst[n:n+m], src[n:n+m])
}

// Omega returns the positive diagonal Ω: nil for the paper's Ω = I, or the
// explicit diagonal for the scaled variants.
func (s *StructuredSplitting) Omega() []float64 { return s.omega }

// ThetaBound returns the convergence bound 2(2−β*)/(β*·μmax) from
// Theorem 2, where μmax is the dominant eigenvalue of
// Γ = D⁻¹ B H⁻¹ Bᵀ, estimated by power iteration. θ* must lie strictly
// below the returned value for the convergence guarantee to hold.
func (s *StructuredSplitting) ThetaBound() (float64, error) {
	return s.ThetaBoundBudget(200, 1e-8)
}

// ThetaBoundBudget is ThetaBound with an explicit power-iteration budget.
// The estimate is a deterministic function of the splitting structure and
// (maxIter, tol) — PowerIteration starts from a fixed quasi-random vector —
// so callers that cache it (the parameter auto-tuner) reproduce the same
// value on every run. A small budget (a few dozen iterations at a loose
// tolerance) ranks candidate parameters reliably at a fraction of the
// certification-grade cost.
func (s *StructuredSplitting) ThetaBoundBudget(maxIter int, tol float64) (float64, error) {
	m := s.p.NumCons
	if m == 0 {
		return 0, nil
	}
	dSolver, err := s.d.Factor()
	if err != nil {
		return 0, fmt.Errorf("core: factoring D: %w", err)
	}
	xTmp := make([]float64, s.p.NumVars)
	xTmp2 := make([]float64, s.p.NumVars)
	mTmp := make([]float64, m)
	mu := sparse.PowerIteration(m, func(dst, src []float64) {
		s.p.B.MulVecT(xTmp, src)                      // Bᵀ v
		s.p.SolveHShifted(1, s.p.Lambda, xTmp2, xTmp) // H⁻¹ Bᵀ v
		s.p.B.MulVec(mTmp, xTmp2)                     // B H⁻¹ Bᵀ v
		dSolver.Solve(dst, mTmp)                      // D⁻¹ ...
	}, maxIter, tol)
	if mu <= 0 {
		return 0, fmt.Errorf("core: nonpositive μmax estimate %g", mu)
	}
	return 2 * (2 - s.beta) / (s.beta * mu), nil
}
