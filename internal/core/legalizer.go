package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"mclg/internal/design"
	"mclg/internal/lcp"
	"mclg/internal/mclgerr"
	"mclg/internal/sparse"
	"mclg/internal/tetris"
)

// Options configures the legalizer. The zero value plus DefaultOptions()
// reproduces the paper's experimental setup (Section 5: λ = 1000,
// β* = θ* = 0.5).
type Options struct {
	Lambda  float64 // subcell-equality penalty λ
	Beta    float64 // β* splitting constant
	Theta   float64 // θ* splitting constant
	Gamma   float64 // MMSIM γ constant
	Eps     float64 // MMSIM convergence tolerance on ||Δz||∞
	MaxIter int

	// ResidualTol is the LCP residual bound that must additionally hold at
	// termination (guards against spurious ||Δz|| convergence). 0 means
	// 0.5 — half a site width of constraint violation, absorbed by the
	// Tetris snapping. Negative disables the check.
	ResidualTol float64

	// AutoTheta clamps θ* below the Theorem-2 bound 2(2−β*)/(β*·μmax)
	// when the configured value would violate it.
	AutoTheta bool

	// AutoTune selects θ* automatically: a budgeted power iteration
	// estimates the Theorem-2 bound, a fixed candidate grid inside the
	// bound is ranked by the estimated spectral radius of the MMSIM
	// iteration operator, and the winner is memoized per structure
	// signature (warm re-solves and repeated cold solves of the same
	// topology skip tuning entirely). The tuned θ* is a deterministic
	// function of the problem structure, so placements stay bit-identical
	// across runs and cache states. AutoTune supersedes AutoTheta.
	AutoTune bool

	// PaperOmega forces the paper's Ω = I in Algorithm 1, overriding
	// OmegaR and ScaledOmegaX. Used by fidelity experiments and the Ω
	// ablation bench.
	PaperOmega bool

	// OmegaR sets the Ω diagonal on the multiplier block (0 means 1, the
	// paper's choice). Any positive value yields the same LCP fixed
	// point; the Ω ablation bench explores the convergence-speed
	// trade-off.
	OmegaR float64

	// ScaledOmegaX uses Ω_x = diag(H) instead of I (ablation only; it is
	// slower in practice).
	ScaledOmegaX bool

	// BoundRight adds exact right-boundary constraints to the LCP instead
	// of relaxing them (extension beyond the paper; see
	// BuildProblemBounded). The MMSIM optimum then has no
	// out-of-boundary cells at all.
	BoundRight bool

	// SkipTetris stops after multi-row restoration, leaving real-valued
	// positions (used by experiments that inspect the raw MMSIM optimum).
	SkipTetris bool

	// S0 supplies a custom MMSIM starting vector (length NumVars+NumCons).
	// Nil selects the default warm start from the global-placement
	// positions, which converges much faster than the zero vector because
	// most of the relaxed optimum coincides with the GP.
	S0 []float64

	// ColdStart disables the warm start (s⁽⁰⁾ = 0), matching a literal
	// reading of Algorithm 1; used by the warm-start ablation bench.
	ColdStart bool

	// OnIter forwards MMSIM per-iteration progress.
	OnIter func(k int, dz float64)

	// Workers shards the hot stages (row assignment, the MMSIM per-iteration
	// kernels and block solves, and the Tetris allocation's per-row scans)
	// across goroutines: 0 means GOMAXPROCS, 1 means serial. Any worker
	// count produces bit-identical placements — see internal/par and
	// DESIGN.md's "Parallel decomposition & determinism".
	Workers int

	// Warm, when non-nil, carries cached solver state across repeated
	// solves: when the problem's structure signature matches the cached
	// one, the solve reuses the assembled LCP matrix and splitting
	// factorizations and seeds the MMSIM from the previous solution (see
	// WarmState). The fallback rungs of the resilient cascade always run
	// cold — retuned parameters invalidate the cached splitting, and a
	// rescue solve must not inherit state from the configuration that just
	// failed.
	Warm *WarmState
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Lambda:  1000,
		Beta:    0.5,
		Theta:   0.5,
		Gamma:   1,
		Eps:     1e-4,
		MaxIter: 20000,
	}
}

// Validate rejects parameter values outside the domains the convergence
// theory (Theorems 1–2) and the pipeline assume. It is called on the
// *post-default* options (New zero-fills before validating), so zero values
// never reach it; explicit nonsense does. Returned errors match
// mclgerr.ErrInvalidInput.
func (o Options) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Lambda", o.Lambda}, {"Beta", o.Beta}, {"Theta", o.Theta},
		{"Gamma", o.Gamma}, {"Eps", o.Eps}, {"ResidualTol", o.ResidualTol},
		{"OmegaR", o.OmegaR},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return mclgerr.Invalidf("options: %s = %g must be finite", f.name, f.v)
		}
	}
	if o.Lambda < 0 {
		return mclgerr.Invalidf("options: Lambda = %g must be non-negative", o.Lambda)
	}
	if o.Beta != 0 && (o.Beta <= 0 || o.Beta >= 2) {
		return mclgerr.Invalidf("options: Beta = %g must lie in (0, 2)", o.Beta)
	}
	if o.Theta < 0 {
		return mclgerr.Invalidf("options: Theta = %g must be non-negative", o.Theta)
	}
	if o.Gamma < 0 {
		return mclgerr.Invalidf("options: Gamma = %g must be non-negative", o.Gamma)
	}
	if o.Eps < 0 {
		return mclgerr.Invalidf("options: Eps = %g must be non-negative", o.Eps)
	}
	if o.MaxIter < 0 {
		return mclgerr.Invalidf("options: MaxIter = %d must be non-negative", o.MaxIter)
	}
	if o.OmegaR < 0 {
		return mclgerr.Invalidf("options: OmegaR = %g must be non-negative", o.OmegaR)
	}
	if o.Workers < 0 {
		return mclgerr.Invalidf("options: Workers = %d must be non-negative", o.Workers)
	}
	for i, v := range o.S0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return mclgerr.Invalidf("options: S0[%d] = %g must be finite", i, v)
		}
	}
	return nil
}

// Stats reports what a legalization run did.
type Stats struct {
	NumVars, NumCons int
	Iterations       int
	Converged        bool
	ThetaUsed        float64
	ThetaBound       float64 // 0 when not computed
	AutoTuned        bool    // θ* came from the structure-keyed auto-tuner

	// MaxSubcellMismatch is the largest spread (max − min) of the subcell
	// x solutions of any multi-row cell before restoration, in database
	// units; large values indicate λ is too small.
	MaxSubcellMismatch float64

	Illegal  int // illegal cells repaired by the Tetris stage
	Unplaced int // cells the Tetris stage could not place (should be 0)

	// WarmReused reports that the solve reused cached factorizations from
	// Options.Warm (structure signature match); WarmSeeded additionally
	// reports that the MMSIM started from the previous solution's
	// modulus-transform seed.
	WarmReused bool
	WarmSeeded bool

	BuildTime  time.Duration
	SolveTime  time.Duration
	TetrisTime time.Duration
}

// Legalizer runs the full flow of Figure 4 on a design.
type Legalizer struct {
	Opts Options
}

// New returns a legalizer with the given options (zero fields filled with
// defaults).
func New(opts Options) *Legalizer {
	def := DefaultOptions()
	if opts.Lambda == 0 {
		opts.Lambda = def.Lambda
	}
	if opts.Beta == 0 {
		opts.Beta = def.Beta
	}
	if opts.Theta == 0 {
		opts.Theta = def.Theta
	}
	if opts.Gamma == 0 {
		opts.Gamma = def.Gamma
	}
	if opts.Eps == 0 {
		opts.Eps = def.Eps
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = def.MaxIter
	}
	return &Legalizer{Opts: opts}
}

// Legalize runs row assignment, the MMSIM solve, multi-row restoration, and
// the Tetris-like allocation, mutating the design's cell positions.
func (l *Legalizer) Legalize(d *design.Design) (*Stats, error) {
	return l.LegalizeContext(context.Background(), d)
}

// LegalizeContext is Legalize with input validation at entry and cooperative
// cancellation: the options and design are gated before any stage runs, and
// a canceled ctx aborts the MMSIM hot loop and the allocation stage with an
// mclgerr.ErrCanceled-matching error.
func (l *Legalizer) LegalizeContext(ctx context.Context, d *design.Design) (*Stats, error) {
	if err := l.Opts.Validate(); err != nil {
		return nil, mclgerr.Stage("validate", err)
	}
	if err := d.Validate(); err != nil {
		return nil, mclgerr.Stage("validate", err)
	}
	if err := mclgerr.FromContext(ctx); err != nil {
		return nil, err
	}
	stats := &Stats{}
	t0 := time.Now()

	if err := AssignRowsP(d, l.Opts.Workers); err != nil {
		return nil, mclgerr.Stage("assign-rows", err)
	}
	if l.Opts.BoundRight {
		// Boundary constraints require per-row capacity feasibility.
		if err := BalanceRows(d); err != nil {
			return nil, mclgerr.Stage("balance-rows", err)
		}
	}
	p, err := BuildProblemBounded(d, l.Opts.Lambda, l.Opts.BoundRight)
	if err != nil {
		return nil, mclgerr.Stage("build", err)
	}
	stats.NumVars, stats.NumCons = p.NumVars, p.NumCons
	stats.BuildTime = time.Since(t0)

	t1 := time.Now()
	x, solveStats, err := SolveMMSIMContext(ctx, p, l.Opts)
	if err != nil {
		return nil, mclgerr.Stage("mmsim", err)
	}
	stats.Iterations = solveStats.Iterations
	stats.Converged = solveStats.Converged
	stats.ThetaUsed = solveStats.ThetaUsed
	stats.ThetaBound = solveStats.ThetaBound
	stats.AutoTuned = solveStats.AutoTuned
	stats.WarmReused = solveStats.WarmReused
	stats.WarmSeeded = solveStats.WarmSeeded
	stats.SolveTime = time.Since(t1)

	stats.MaxSubcellMismatch = Restore(p, x)

	if !l.Opts.SkipTetris {
		t2 := time.Now()
		tres, err := tetris.AllocateContextP(ctx, d, l.Opts.Workers)
		if err != nil {
			return nil, mclgerr.Stage("tetris", err)
		}
		stats.Illegal = tres.Illegal
		stats.Unplaced = tres.Unplaced
		stats.TetrisTime = time.Since(t2)
	}
	return stats, nil
}

// SolveStats reports the MMSIM solve outcome.
type SolveStats struct {
	Iterations int
	Converged  bool
	ThetaUsed  float64
	ThetaBound float64
	AutoTuned  bool // θ* came from the structure-keyed auto-tuner

	// WarmReused: the cached LCP matrix and splitting from Options.Warm
	// were reused (structure signature match). WarmSeeded: the iteration
	// additionally started from the previous solution's modulus-transform
	// seed rather than the GP warm start.
	WarmReused bool
	WarmSeeded bool
}

// SolveMMSIM assembles the LCP for an already-built problem and runs the
// structured MMSIM. It returns the subcell x solution (length p.NumVars,
// relative to the core's left edge).
func SolveMMSIM(p *Problem, opts Options) ([]float64, *SolveStats, error) {
	return SolveMMSIMContext(context.Background(), p, opts)
}

// SolveMMSIMContext is SolveMMSIM with cooperative cancellation in the
// MMSIM hot loop. With opts.Warm set, consecutive solves of
// structure-identical problems reuse the cached LCP matrix, splitting
// factorizations, and resolved θ*, and seed the iteration from the
// previous solution (see WarmState); the warm path changes only the
// starting iterate, never the fixed point the iteration converges to.
func SolveMMSIMContext(ctx context.Context, p *Problem, opts Options) ([]float64, *SolveStats, error) {
	z, st, err := SolveMMSIMFull(ctx, p, opts)
	if err != nil || z == nil {
		return nil, st, err
	}
	return z[:p.NumVars], st, nil
}

// SolveMMSIMFull is SolveMMSIMContext returning the complete LCP solution
// z = [x; μ] (length NumVars+NumCons) instead of just the position head: the
// multiplier tail is what the audit layer needs to recompute KKT/LCP
// residuals independently of the solver's own convergence flag. The caller
// owns the returned slice.
func SolveMMSIMFull(ctx context.Context, p *Problem, opts Options) ([]float64, *SolveStats, error) {
	st := &SolveStats{ThetaUsed: opts.Theta}
	if p.NumVars == 0 {
		st.Converged = true
		return nil, st, nil
	}
	n := p.NumVars + p.NumCons
	s0 := opts.S0
	if s0 != nil && len(s0) != n {
		return nil, nil, mclgerr.Invalidf("core: S0 has length %d, want NumVars+NumCons = %d",
			len(s0), n)
	}

	warm := opts.Warm
	if warm != nil {
		warm.mu.Lock()
		defer warm.mu.Unlock()
	}

	var sp *StructuredSplitting
	var aMat *sparse.CSR
	var q []float64
	if warm != nil && warm.valid && warm.sig == warmSig(p, &opts) {
		// Structure match: the cached matrix, splitting, and resolved θ*
		// are all position-independent; only the linear term −target in
		// q's head changes between solves.
		sp, aMat, q = warm.sp, warm.a, warm.q
		copy(q[:p.NumVars], p.P)
		st.ThetaUsed = warm.thetaUsed
		st.ThetaBound = warm.thetaBound
		st.AutoTuned = warm.autoTuned
		st.WarmReused = true
	} else {
		theta := opts.Theta
		omegaR := opts.OmegaR
		if omegaR == 0 {
			omegaR = 1
		}
		build := func(p *Problem, beta, theta float64) (*StructuredSplitting, error) {
			switch {
			case opts.PaperOmega:
				return NewStructuredSplitting(p, beta, theta)
			case opts.ScaledOmegaX:
				return NewStructuredSplittingScaledOmega(p, beta, theta)
			default:
				return NewStructuredSplittingOmegaR(p, beta, theta, omegaR)
			}
		}
		var err error
		sp, err = build(p, opts.Beta, theta)
		if err != nil {
			return nil, nil, err
		}
		if opts.AutoTune {
			// Structure-keyed tuning: a cache hit replays the tuned θ*
			// without re-running the probes; a miss tunes and memoizes.
			// Both paths yield the same θ* (tuning is deterministic per
			// structure), hence the same placement. A (position-
			// independent) is assembled early so the tuner's probe can
			// run real iterations; the solve below reuses it.
			aMat = p.AssembleLCPMatrix()
			key := warmSig(p, &opts)
			if e, ok := sharedTuner.lookup(key); ok {
				st.ThetaBound = e.bound
				if e.theta != theta {
					theta = e.theta
					sp, err = build(p, opts.Beta, theta)
					if err != nil {
						return nil, nil, err
					}
				}
			} else {
				e, tunedSp, terr := tuneTheta(p, &opts, aMat, sp, func(t float64) (*StructuredSplitting, error) {
					return build(p, opts.Beta, t)
				})
				if terr != nil {
					return nil, nil, terr
				}
				sharedTuner.store(key, e)
				theta, sp = e.theta, tunedSp
				st.ThetaBound = e.bound
			}
			st.ThetaUsed = theta
			st.AutoTuned = true
		} else if opts.AutoTheta {
			bound, err := sp.ThetaBound()
			if err != nil {
				return nil, nil, err
			}
			st.ThetaBound = bound
			if bound > 0 && theta >= bound {
				theta = 0.95 * bound
				sp, err = build(p, opts.Beta, theta)
				if err != nil {
					return nil, nil, err
				}
			}
			st.ThetaUsed = theta
		}
		if aMat == nil {
			aMat = p.AssembleLCPMatrix()
		}
		q = p.LCPVector()
		if warm != nil {
			// Prime (or re-prime after a mismatch) the structure caches;
			// the previous solution, if any, belonged to a different
			// structure and must not seed this solve.
			warm.sig = warmSig(p, &opts)
			warm.valid = true
			warm.sp, warm.a, warm.q = sp, aMat, q
			warm.thetaUsed, warm.thetaBound = st.ThetaUsed, st.ThetaBound
			warm.autoTuned = st.AutoTuned
			warm.haveZ = false
		}
	}

	gamma := opts.Gamma
	if gamma == 0 {
		gamma = 1
	}
	if s0 == nil && !opts.ColdStart && st.WarmReused && warm.haveZ {
		// Seed from the previous solution via the modulus transform
		// s = γ/2·(z − Ω⁻¹w) with w = A·z + q evaluated against the NEW
		// q, so components whose constraints tightened start from their
		// updated complementary value. MMSIM converges from any seed, so
		// a stale or imperfect seed costs iterations, never correctness.
		warm.wbuf = grow(warm.wbuf, n)
		warm.seed = grow(warm.seed, n)
		aMat.MulVec(warm.wbuf, warm.prevZ)
		sparse.Axpy(warm.wbuf, 1, q)
		lcp.WarmSeed(warm.seed, warm.prevZ, warm.wbuf, gamma, sp.Omega())
		s0 = warm.seed
		st.WarmSeeded = true
	}
	if s0 == nil && !opts.ColdStart {
		// Warm start at the global-placement positions with zero
		// multipliers: for z > 0 the modulus substitution gives
		// s = γ·z/2, and most of the relaxed optimum stays near the GP.
		s0 = make([]float64, n)
		for i, sc := range p.Subcells {
			s0[i] = gamma * sc.Target / 2
		}
	}
	resTol := opts.ResidualTol
	if resTol == 0 {
		resTol = 0.5
	}
	prob := &lcp.Problem{A: aMat, Q: q}
	lo := lcp.Options{
		Gamma:       opts.Gamma,
		Eps:         opts.Eps,
		MaxIter:     opts.MaxIter,
		S0:          s0,
		ResidualTol: resTol,
		OnIter:      opts.OnIter,
		Workers:     opts.Workers,
	}
	if warm != nil {
		if warm.ws == nil {
			warm.ws = lcp.NewWorkspace(n)
		}
		lo.Workspace = warm.ws
	}
	res, err := lcp.MMSIMContext(ctx, prob, sp, lo)
	if err != nil {
		return nil, nil, fmt.Errorf("core: MMSIM: %w", err)
	}
	st.Iterations = res.Iterations
	st.Converged = res.Converged
	z := res.Z
	if warm != nil {
		// Retain the solution for the next seed, then detach z from the
		// shared workspace before the mutex is released (still one
		// allocation, matching the warm path's alloc budget).
		warm.prevZ = append(warm.prevZ[:0], res.Z...)
		warm.haveZ = true
		if !st.WarmSeeded {
			warm.coldIters = res.Iterations
		}
		z = append([]float64(nil), res.Z...)
	}
	return z, st, nil
}

// Restore writes the solved subcell positions back to the design's cells:
// each cell's x is the mean of its subcells' solutions (which coincide up
// to solver precision when λ is large). Returns the maximum subcell spread
// observed.
func Restore(p *Problem, x []float64) float64 {
	maxSpread := 0.0
	for cellID, vars := range p.CellVars {
		if len(vars) == 0 {
			continue
		}
		lo, hi, sum := x[vars[0]], x[vars[0]], 0.0
		for _, v := range vars {
			xv := x[v]
			sum += xv
			if xv < lo {
				lo = xv
			}
			if xv > hi {
				hi = xv
			}
		}
		if s := hi - lo; s > maxSpread {
			maxSpread = s
		}
		p.D.Cells[cellID].X = p.D.Core.Lo.X + sum/float64(len(vars))
	}
	return maxSpread
}
