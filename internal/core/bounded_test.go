package core

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/dense"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/qp"
)

// TestBoundedRightNoViolations: with BoundRight the MMSIM optimum itself
// respects the right boundary, so no boundary repairs remain.
func TestBoundedRightNoViolations(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "b", SingleCells: 400, DoubleCells: 40, Density: 0.88, Seed: 33,
		NoiseX: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignRows(d); err != nil {
		t.Fatal(err)
	}
	relaxed := d.Clone()
	bounded := d.Clone()

	pr, err := BuildProblem(relaxed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	xr, _, err := SolveMMSIM(pr, New(Options{Eps: 1e-6}).Opts)
	if err != nil {
		t.Fatal(err)
	}
	Restore(pr, xr)

	if err := BalanceRows(bounded); err != nil {
		t.Fatal(err)
	}
	pb, err := BuildProblemBounded(bounded, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	xb, st, err := SolveMMSIM(pb, New(Options{Eps: 1e-6}).Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("bounded MMSIM did not converge")
	}
	Restore(pb, xb)

	overRelaxed, overBounded := 0, 0
	for i := range d.Cells {
		if c := relaxed.Cells[i]; c.X+c.W > relaxed.Core.Hi.X+1e-6 {
			overRelaxed++
		}
		if c := bounded.Cells[i]; c.X+c.W > bounded.Core.Hi.X+0.51 {
			// Allow half a site of penalty-softness; snapping absorbs it.
			overBounded++
		}
	}
	if overBounded > 0 {
		t.Errorf("bounded solve left %d cells over the boundary", overBounded)
	}
	if overRelaxed == 0 {
		t.Skip("instance did not stress the boundary; relaxed had no violators")
	}
	// The bounded optimum can only be as good or worse in objective.
	objR, objB := 0.0, 0.0
	for i := range d.Cells {
		dr := relaxed.Cells[i].X - relaxed.Cells[i].GX
		db := bounded.Cells[i].X - bounded.Cells[i].GX
		objR += dr * dr
		objB += db * db
	}
	if objB+1e-6 < objR {
		t.Errorf("bounded objective %g below relaxed optimum %g", objB, objR)
	}
}

// TestBoundedMatchesQPReference validates the bounded formulation against
// the active-set solver with explicit boundary rows.
func TestBoundedMatchesQPReference(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 10; trial++ {
		d := randomDesign(rng, 3, 30, 8+rng.Intn(6), 0.25)
		if err := AssignRows(d); err != nil {
			t.Fatal(err)
		}
		if err := BalanceRows(d); err != nil {
			t.Fatal(err)
		}
		lambda := 100.0
		p, err := BuildProblemBounded(d, lambda, true)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumCons == 0 {
			continue
		}
		x, st, err := SolveMMSIM(p, Options{
			Lambda: lambda, Beta: 0.5, Theta: 0.5, Gamma: 1,
			Eps: 1e-10, MaxIter: 400000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("trial %d: no convergence", trial)
		}
		// Dense reference with the same constraints.
		n := p.NumVars
		h := dense.New(n, n)
		for i := 0; i < n; i++ {
			h.Set(i, i, 1)
		}
		for _, row := range p.E.Dense() {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					h.Set(i, j, h.At(i, j)+lambda*row[i]*row[j])
				}
			}
		}
		m := p.NumCons
		g := dense.New(m+n, n)
		hv := make([]float64, m+n)
		for i, row := range p.B.Dense() {
			for j := 0; j < n; j++ {
				g.Set(i, j, row[j])
			}
			hv[i] = p.Bv[i]
		}
		for j := 0; j < n; j++ {
			g.Set(m+j, j, 1)
		}
		prob := &qp.Problem{H: h, P: append([]float64(nil), p.P...), G: g, Hv: hv}
		x0 := boundedFeasibleStart(p, d)
		if x0 == nil {
			continue // row capacity too tight to build a trivially feasible start
		}
		ref, err := qp.Solve(prob, x0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(x[i]-ref[i]) > 2e-3 {
				t.Errorf("trial %d: x[%d] MMSIM %.6f vs QP %.6f", trial, i, x[i], ref[i])
			}
		}
	}
}

// boundedFeasibleStart packs each row's subcells left, all subcells of a
// cell at their maximum position so Ex=0 holds approximately... instead we
// simply pack every cell to a distinct slot inside the row and verify
// feasibility against the built constraints.
func boundedFeasibleStart(p *Problem, d *design.Design) []float64 {
	x := make([]float64, p.NumVars)
	// Per row, place subcells left-packed in constraint order.
	cursor := map[int]float64{}
	// Walk constraints? Simpler: group subcells by row in target order.
	perRow := map[int][]int{}
	for _, s := range p.Subcells {
		perRow[s.Row] = append(perRow[s.Row], s.Var)
	}
	pos := map[int]float64{} // per cell: committed position
	for row, vars := range perRow {
		_ = row
		for _, v := range vars {
			cell := p.Subcells[v].Cell
			cur := cursor[p.Subcells[v].Row]
			if pv, ok := pos[cell]; ok {
				if pv < cur {
					return nil // multi-row cell collides with packing
				}
				cur = pv
			}
			x[v] = cur
			pos[cell] = cur
			cursor[p.Subcells[v].Row] = cur + p.Subcells[v].Width
		}
	}
	// Verify all constraints hold.
	for i, c := range p.Cons {
		lhs := -x[c.Left]
		if c.Right >= 0 {
			lhs += x[c.Right]
		}
		if lhs < p.Bv[i]-1e-9 {
			return nil
		}
		_ = i
	}
	return x
}

// TestBalanceRowsFixesOverload builds a deliberately overloaded row and
// checks the balancer distributes it.
func TestBalanceRowsFixesOverload(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 30, RowHeight: 10, SiteW: 1})
	// 5 cells of width 8 all assigned to row 0 (total 40 > 30).
	for i := 0; i < 5; i++ {
		c := d.AddCell("c", 8, 10, design.VSS)
		c.GX, c.GY = float64(i*2), 0
		c.X, c.Y = c.GX, 0
	}
	if err := BalanceRows(d); err != nil {
		t.Fatal(err)
	}
	load := map[int]float64{}
	for _, c := range d.Cells {
		load[d.RowAt(c.Y+1)] += c.W
	}
	for r, l := range load {
		if l > 30 {
			t.Errorf("row %d still overloaded: %g", r, l)
		}
	}
}

// TestBalanceRowsRespectsRails: even-height cells may only move to matching
// rails.
func TestBalanceRowsRespectsRails(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 6, NumSites: 20, RowHeight: 10, SiteW: 1})
	for i := 0; i < 4; i++ {
		c := d.AddCell("dc", 8, 20, design.VSS) // rows 0, 2, 4
		c.GX, c.GY = 0, 0
		c.X, c.Y = 0, 0
	}
	if err := BalanceRows(d); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		r := d.RowAt(c.Y + 1)
		if !d.RailCompatible(c, r) {
			t.Errorf("cell %d on incompatible row %d", c.ID, r)
		}
	}
}

// TestBalanceRowsImpossible reports an error instead of looping when the
// design simply does not fit.
func TestBalanceRowsImpossible(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 10, RowHeight: 10, SiteW: 1})
	for i := 0; i < 4; i++ {
		c := d.AddCell("c", 9, 10, design.VSS)
		c.Y = 0
	}
	if err := BalanceRows(d); err == nil {
		t.Error("expected error for infeasible design")
	}
}

// TestLegalizeBoundRightEndToEnd: the full flow with exact boundary
// constraints produces a legal placement with zero boundary repairs.
func TestLegalizeBoundRightEndToEnd(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "br", SingleCells: 300, DoubleCells: 30, Density: 0.85, Seed: 77, NoiseX: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := New(Options{BoundRight: true}).Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unplaced != 0 {
		t.Fatalf("%d unplaced", stats.Unplaced)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}
