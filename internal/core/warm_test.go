package core

import (
	"math/rand"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
)

// perturbGX nudges every movable cell's global-placement x by a tiny
// deterministic jitter — small enough that no per-row ordering flips, so the
// rebuilt problem has the same structure signature as the original.
func perturbGX(d *design.Design, seed int64, amp float64) {
	rng := rand.New(rand.NewSource(seed))
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		c.GX += (rng.Float64()*2 - 1) * amp
		c.X = c.GX
	}
}

// buildFor assigns rows and builds the LCP problem, failing the test on error.
func buildFor(t *testing.T, d *design.Design, lambda float64) *Problem {
	t.Helper()
	if err := AssignRows(d); err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(d, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStructureSigPositionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	d := randomDesign(rng, 6, 120, 40, 0.3)
	p1 := buildFor(t, d.Clone(), 1000)

	d2 := d.Clone()
	perturbGX(d2, 402, 1e-3)
	p2 := buildFor(t, d2, 1000)

	if p1.StructureSig() != p2.StructureSig() {
		t.Fatal("structure signature changed under a position-only perturbation")
	}

	// A width change is structural and must change the signature.
	d3 := d.Clone()
	d3.Cells[0].W += 1
	p3 := buildFor(t, d3, 1000)
	if p1.StructureSig() == p3.StructureSig() {
		t.Fatal("structure signature did not change when a cell width changed")
	}
}

// TestWarmSolveMatchesCold is the core correctness contract: a warm-started
// solve of a perturbed instance returns the same x (to solver tolerance
// exactly — the iteration converges to the unique LCP solution) as a cold
// solve, with WarmReused/WarmSeeded set and fewer iterations.
func TestWarmSolveMatchesCold(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "warm-core", Seed: 407,
		SingleCells: 60, DoubleCells: 20, Density: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	p0 := buildFor(t, d.Clone(), opts.Lambda)

	warm := NewWarmState()
	opts.Warm = warm
	x0, st0, err := SolveMMSIMContext(t.Context(), p0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st0.WarmReused || st0.WarmSeeded {
		t.Fatalf("first solve through a fresh WarmState: WarmReused=%v WarmSeeded=%v, want cold",
			st0.WarmReused, st0.WarmSeeded)
	}
	if got := warm.ColdIterations(); got != st0.Iterations {
		t.Fatalf("ColdIterations = %d, want %d", got, st0.Iterations)
	}

	d2 := d.Clone()
	perturbGX(d2, 408, 1e-3)
	pw := buildFor(t, d2.Clone(), opts.Lambda)
	xw, stw, err := SolveMMSIMContext(t.Context(), pw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stw.WarmReused || !stw.WarmSeeded {
		t.Fatalf("perturbed re-solve: WarmReused=%v WarmSeeded=%v, want both", stw.WarmReused, stw.WarmSeeded)
	}
	if stw.Iterations >= st0.Iterations {
		t.Errorf("warm solve took %d iterations, cold took %d — no speedup", stw.Iterations, st0.Iterations)
	}

	// Cold reference on the identical perturbed problem.
	pc := buildFor(t, d2.Clone(), opts.Lambda)
	cold := opts
	cold.Warm = nil
	xc, stc, err := SolveMMSIMContext(t.Context(), pc, cold)
	if err != nil {
		t.Fatal(err)
	}
	if !stc.Converged || !stw.Converged {
		t.Fatalf("converged: warm=%v cold=%v", stw.Converged, stc.Converged)
	}
	if len(xw) != len(xc) {
		t.Fatalf("len(xw) = %d, len(xc) = %d", len(xw), len(xc))
	}
	// Both solves converge to the unique LCP solution; with the same ε they
	// land within solver tolerance of each other. (Bit-identity of the final
	// placement is pinned post-tetris by the regress warm tests.)
	for i := range xw {
		if diff := xw[i] - xc[i]; diff > 2e-3 || diff < -2e-3 {
			t.Fatalf("x[%d]: warm %.9f vs cold %.9f", i, xw[i], xc[i])
		}
	}
	_ = x0
}

// TestWarmStateInvalidatedByStructureChange: a structural edit between solves
// must force a cold re-prime, never a stale-seeded solve.
func TestWarmStateInvalidatedByStructureChange(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	d := randomDesign(rng, 6, 120, 40, 0.3)
	opts := DefaultOptions()
	warm := NewWarmState()
	opts.Warm = warm

	p1 := buildFor(t, d.Clone(), opts.Lambda)
	if _, _, err := SolveMMSIMContext(t.Context(), p1, opts); err != nil {
		t.Fatal(err)
	}

	d2 := d.Clone()
	d2.Cells[3].W += 2 // structural change
	p2 := buildFor(t, d2, opts.Lambda)
	_, st, err := SolveMMSIMContext(t.Context(), p2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.WarmReused || st.WarmSeeded {
		t.Fatalf("structure change: WarmReused=%v WarmSeeded=%v, want cold re-prime",
			st.WarmReused, st.WarmSeeded)
	}

	warm.Reset()
	p3 := buildFor(t, d2.Clone(), opts.Lambda)
	_, st3, err := SolveMMSIMContext(t.Context(), p3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st3.WarmReused {
		t.Fatal("solve after Reset reported WarmReused")
	}
}

// TestLegalizeWarmBitIdentical runs the FULL pipeline (rows + MMSIM + tetris)
// warm and cold on the same perturbed design and requires bit-identical final
// placements: the warm path may only change the starting iterate, never the
// fixed point or the downstream snapping.
func TestLegalizeWarmBitIdentical(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "warm-e2e", Seed: 419,
		SingleCells: 60, DoubleCells: 20, Density: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}

	warm := NewWarmState()
	warmOpts := Options{Warm: warm}
	if _, err := New(warmOpts).Legalize(d.Clone()); err != nil {
		t.Fatal(err)
	}

	perturbed := d.Clone()
	perturbGX(perturbed, 420, 1e-3)

	dw := perturbed.Clone()
	stw, err := New(warmOpts).Legalize(dw)
	if err != nil {
		t.Fatal(err)
	}
	if !stw.WarmReused || !stw.WarmSeeded {
		t.Fatalf("warm legalize: WarmReused=%v WarmSeeded=%v", stw.WarmReused, stw.WarmSeeded)
	}

	dc := perturbed.Clone()
	stc, err := New(Options{}).Legalize(dc)
	if err != nil {
		t.Fatal(err)
	}
	if stw.Iterations >= stc.Iterations {
		t.Errorf("warm legalize took %d MMSIM iterations, cold took %d", stw.Iterations, stc.Iterations)
	}
	for i := range dw.Cells {
		cw, cc := dw.Cells[i], dc.Cells[i]
		if cw.X != cc.X || cw.Y != cc.Y || cw.Flipped != cc.Flipped {
			t.Fatalf("cell %d: warm (%.17g, %.17g, %v) vs cold (%.17g, %.17g, %v)",
				i, cw.X, cw.Y, cw.Flipped, cc.X, cc.Y, cc.Flipped)
		}
	}
}
