package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"mclg/internal/baselines/chow"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/par"
	"mclg/internal/tetris"
)

// Rung identifies one level of the fallback cascade.
type Rung string

const (
	// RungMMSIM is the paper's structured MMSIM with the configured options.
	RungMMSIM Rung = "mmsim"
	// RungMMSIMRetuned is the MMSIM with backoff-retuned splitting constants
	// (shrunk β*/θ*, AutoTheta, cold start, larger iteration budget).
	RungMMSIMRetuned Rung = "mmsim-retuned"
	// RungPGS is projected Gauss–Seidel on the dual Schur-complement LCP —
	// slower than the MMSIM but with no splitting constants to misconfigure.
	RungPGS Rung = "pgs"
	// RungGreedy is the terminal rung: greedy legalization from the global
	// placement, bypassing the LCP machinery entirely.
	RungGreedy Rung = "greedy"
)

// Attempt records one rung of a resilient run.
type Attempt struct {
	Rung    Rung
	Err     error // nil for the successful rung
	Elapsed time.Duration
}

// ResilientStats extends Stats with the cascade trace: which rung produced
// the accepted placement and every attempt that preceded it.
type ResilientStats struct {
	Stats
	Rung     Rung
	Attempts []Attempt
}

// ResilientOptions configures the fallback cascade.
type ResilientOptions struct {
	// Base is the first-rung legalizer configuration (zero fields filled
	// with the paper defaults, as in New).
	Base Options

	// MaxRetunes is how many retuned-MMSIM attempts run after the base
	// attempt fails; 0 means 2, negative disables the retune rung.
	MaxRetunes int

	// DisablePGS / DisableGreedy skip the corresponding rungs.
	DisablePGS    bool
	DisableGreedy bool

	// PGSMaxIter bounds the PGS sweeps; 0 means 30000.
	PGSMaxIter int
}

// ResilientLegalizer runs the legalization flow through a cascade of
// progressively more conservative solvers until one produces a placement
// that passes the design legality checker:
//
//	mmsim → mmsim-retuned (×MaxRetunes) → pgs → greedy
//
// Every rung runs on a clone of the design; the input is mutated only when
// a rung's output is verified fully legal with zero unplaced cells, so a
// failed cascade leaves the caller's placement untouched. A silently
// illegal result is converted to an ErrUnplacedCells-matching error —
// success always means "verified legal", never "the solver said so".
//
// Context cancellation short-circuits the cascade: a canceled rung
// surfaces ErrCanceled immediately instead of degrading further.
type ResilientLegalizer struct {
	Opts ResilientOptions
}

// NewResilient returns a resilient legalizer whose first rung uses the
// given base options (zero fields filled with the paper defaults).
func NewResilient(opts ResilientOptions) *ResilientLegalizer {
	opts.Base = New(opts.Base).Opts
	if opts.MaxRetunes == 0 {
		opts.MaxRetunes = 2
	}
	if opts.PGSMaxIter == 0 {
		opts.PGSMaxIter = 30000
	}
	return &ResilientLegalizer{Opts: opts}
}

// Legalize runs the cascade without cancellation.
func (r *ResilientLegalizer) Legalize(d *design.Design) (*ResilientStats, error) {
	return r.LegalizeContext(context.Background(), d)
}

// LegalizeContext runs the cascade. On success the returned stats carry the
// successful rung and the full attempt trace; on total failure the design is
// unchanged and the error joins every rung's failure (still matching the
// taxonomy via errors.Is).
func (r *ResilientLegalizer) LegalizeContext(ctx context.Context, d *design.Design) (*ResilientStats, error) {
	if err := r.Opts.Base.Validate(); err != nil {
		return nil, mclgerr.Stage("validate", err)
	}
	if err := d.Validate(); err != nil {
		return nil, mclgerr.Stage("validate", err)
	}

	rs := &ResilientStats{}

	// try runs one rung on a clone, verifies legality, and commits the
	// positions on success. It returns (done, err): done on success, err
	// only for cancellation (which must not cascade).
	try := func(rung Rung, run func(work *design.Design) (*Stats, error)) (bool, error) {
		if err := mclgerr.FromContext(ctx); err != nil {
			return false, err
		}
		t0 := time.Now()
		work := d.Clone()
		st, err := runRecovered(run, work)
		if err == nil {
			if rep := design.CheckLegal(work); !rep.Legal() {
				err = &mclgerr.StageError{
					Stage:  string(rung),
					Err:    mclgerr.ErrUnplacedCells,
					Detail: "rung reported success but the placement is illegal: " + rep.String(),
				}
			}
		}
		rs.Attempts = append(rs.Attempts, Attempt{Rung: rung, Err: err, Elapsed: time.Since(t0)})
		if err != nil {
			if errors.Is(err, mclgerr.ErrCanceled) {
				return false, err
			}
			return false, nil
		}
		commitPlacement(d, work)
		if st != nil {
			rs.Stats = *st
		}
		rs.Rung = rung
		return true, nil
	}

	// Rung 1: the MMSIM as configured.
	if done, err := try(RungMMSIM, func(w *design.Design) (*Stats, error) {
		return runMMSIMRung(ctx, w, r.Opts.Base)
	}); err != nil {
		return nil, err
	} else if done {
		return rs, nil
	}

	// Rungs 2–3: retuned MMSIM (shrinking β* widens the Theorem-1
	// convergence region; AutoTheta re-clamps θ* under the Theorem-2 bound
	// for the new β*; the cold start discards a warm start that may have
	// seeded the divergence; the budget grows since smaller constants
	// converge slower) followed by PGS on the dual LCP. With Workers > 1 the
	// rungs race concurrently on independent clones; the committed rung is
	// always the lowest-priority-index success, so the accepted placement,
	// rung, and attempt trace match the sequential cascade exactly.
	type fallbackRung struct {
		rung Rung
		run  func(ctx context.Context, w *design.Design) (*Stats, error)
	}
	var fallbacks []fallbackRung
	for k := 1; k <= r.Opts.MaxRetunes; k++ {
		opts := retune(r.Opts.Base, k)
		fallbacks = append(fallbacks, fallbackRung{RungMMSIMRetuned, func(c context.Context, w *design.Design) (*Stats, error) {
			return runMMSIMRung(c, w, opts)
		}})
	}
	if !r.Opts.DisablePGS {
		fallbacks = append(fallbacks, fallbackRung{RungPGS, func(c context.Context, w *design.Design) (*Stats, error) {
			return r.runPGSRung(c, w)
		}})
	}

	if par.Resolve(r.Opts.Base.Workers) > 1 && len(fallbacks) > 1 {
		type rungOut struct {
			work    *design.Design
			st      *Stats
			elapsed time.Duration
		}
		tasks := make([]func(context.Context) (rungOut, error), len(fallbacks))
		for i, fb := range fallbacks {
			fb := fb
			tasks[i] = func(tctx context.Context) (rungOut, error) {
				t0 := time.Now()
				work := d.Clone()
				st, err := fb.run(tctx, work)
				if err == nil {
					if rep := design.CheckLegal(work); !rep.Legal() {
						err = &mclgerr.StageError{
							Stage:  string(fb.rung),
							Err:    mclgerr.ErrUnplacedCells,
							Detail: "rung reported success but the placement is illegal: " + rep.String(),
						}
					}
				}
				return rungOut{work, st, time.Since(t0)}, err
			}
		}
		winner, results := par.Race(ctx, r.Opts.Base.Workers, tasks)
		// The trace covers the same prefix a sequential cascade would have
		// run: every rung up to and including the winner (all of them on
		// total failure). Rungs canceled because a higher-priority rung won
		// never appear, exactly as if the cascade had stopped there.
		last := winner
		if last < 0 {
			last = len(fallbacks) - 1
		}
		for i := 0; i <= last; i++ {
			rs.Attempts = append(rs.Attempts, Attempt{
				Rung: fallbacks[i].rung, Err: results[i].Err, Elapsed: results[i].Value.elapsed,
			})
		}
		if winner >= 0 {
			commitPlacement(d, results[winner].Value.work)
			if st := results[winner].Value.st; st != nil {
				rs.Stats = *st
			}
			rs.Rung = fallbacks[winner].rung
			return rs, nil
		}
		if err := mclgerr.FromContext(ctx); err != nil {
			return nil, err
		}
	} else {
		for _, fb := range fallbacks {
			fb := fb
			if done, err := try(fb.rung, func(w *design.Design) (*Stats, error) {
				return fb.run(ctx, w)
			}); err != nil {
				return nil, err
			} else if done {
				return rs, nil
			}
		}
	}

	// Rung 4: greedy from the global placement.
	if !r.Opts.DisableGreedy {
		if done, err := try(RungGreedy, func(w *design.Design) (*Stats, error) {
			w.ResetToGlobal()
			if err := chow.LegalizeContext(ctx, w); err != nil {
				return nil, err
			}
			return &Stats{}, nil
		}); err != nil {
			return nil, err
		} else if done {
			return rs, nil
		}
	}

	errs := make([]error, 0, len(rs.Attempts))
	for _, a := range rs.Attempts {
		if a.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", a.Rung, a.Err))
		}
	}
	if len(errs) == 0 {
		// Every rung was disabled.
		return rs, mclgerr.Invalidf("core: resilient legalizer has no enabled rungs")
	}
	return rs, fmt.Errorf("core: every fallback rung failed: %w", errors.Join(errs...))
}

// runMMSIMRung runs the standard flow and converts soft failures the plain
// legalizer tolerates (non-convergence, unplaced cells) into typed errors so
// the cascade degrades instead of accepting a low-quality result.
func runMMSIMRung(ctx context.Context, d *design.Design, opts Options) (*Stats, error) {
	st, err := New(opts).LegalizeContext(ctx, d)
	if err != nil {
		return nil, err
	}
	if !st.Converged {
		return st, &mclgerr.StageError{
			Stage:      "mmsim",
			Err:        mclgerr.ErrIterBudget,
			Iterations: st.Iterations,
			Detail:     fmt.Sprintf("no convergence within %d iterations", opts.MaxIter),
		}
	}
	if st.Unplaced > 0 {
		return st, &mclgerr.StageError{
			Stage:  "tetris",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: fmt.Sprintf("%d cells left unplaced", st.Unplaced),
		}
	}
	return st, nil
}

// retune derives the k-th backoff parameter set from the base options.
func retune(base Options, k int) Options {
	o := base
	scale := math.Pow(0.5, float64(k))
	o.Beta = math.Max(base.Beta*scale, 0.05)
	o.Theta = math.Max(base.Theta*scale, 0.05)
	o.AutoTheta = true
	// The rescue rung must explore the shrunk constants, not have the tuner
	// snap θ* back to the configuration that just failed.
	o.AutoTune = false
	o.ColdStart = true
	o.S0 = nil
	// Fallback rungs always run cold: the retuned constants invalidate the
	// cached splitting, and a rescue attempt must not inherit state from
	// the configuration that just failed.
	o.Warm = nil
	// Recover from a starved base budget as well as from divergence: back
	// off from at least the default budget, growing with each attempt since
	// smaller splitting constants converge more slowly.
	budget := base.MaxIter
	if def := DefaultOptions().MaxIter; budget < def {
		budget = def
	}
	o.MaxIter = budget * (k + 1)
	return o
}

// runPGSRung solves the relaxed QP with the dual-LCP projected Gauss–Seidel
// and finishes with the usual restoration + allocation. An exhausted sweep
// budget is tolerated — the PGS iterate improves monotonically, so the
// partial solution is still worth legalizing — while divergence and
// cancellation abort the rung.
func (r *ResilientLegalizer) runPGSRung(ctx context.Context, d *design.Design) (*Stats, error) {
	base := r.Opts.Base
	stats := &Stats{}
	t0 := time.Now()
	if err := AssignRows(d); err != nil {
		return nil, mclgerr.Stage("assign-rows", err)
	}
	p, err := BuildProblemBounded(d, base.Lambda, false)
	if err != nil {
		return nil, mclgerr.Stage("build", err)
	}
	stats.NumVars, stats.NumCons = p.NumVars, p.NumCons
	stats.BuildTime = time.Since(t0)

	t1 := time.Now()
	eps := base.Eps
	if eps < 1e-7 {
		eps = 1e-7
	}
	x, sweeps, err := SolvePGS(ctx, p, eps, r.Opts.PGSMaxIter)
	stats.Iterations = sweeps
	stats.SolveTime = time.Since(t1)
	if err != nil && !errors.Is(err, mclgerr.ErrIterBudget) {
		return stats, mclgerr.Stage("pgs", err)
	}
	stats.Converged = err == nil
	if x != nil {
		stats.MaxSubcellMismatch = Restore(p, x)
	}

	t2 := time.Now()
	tres, err := tetris.AllocateContext(ctx, d)
	if err != nil {
		return stats, mclgerr.Stage("tetris", err)
	}
	stats.Illegal = tres.Illegal
	stats.Unplaced = tres.Unplaced
	stats.TetrisTime = time.Since(t2)
	if tres.Unplaced > 0 {
		return stats, &mclgerr.StageError{
			Stage:  "tetris",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: fmt.Sprintf("%d cells left unplaced", tres.Unplaced),
		}
	}
	return stats, nil
}

// runRecovered executes one rung body with panic containment: a panicking
// rung becomes an ErrPanic-matching error and the cascade degrades to the
// next rung instead of crashing the caller. The racing path gets the same
// guarantee from par.Race's own recovery.
func runRecovered(run func(*design.Design) (*Stats, error), work *design.Design) (st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, mclgerr.Panicked(r)
		}
	}()
	return run(work)
}

// commitPlacement copies the solved positions from a rung's working clone
// back into the caller's design.
func commitPlacement(dst, src *design.Design) {
	for i, c := range src.Cells {
		dc := dst.Cells[i]
		dc.X, dc.Y, dc.Flipped = c.X, c.Y, c.Flipped
	}
}
