package core

import (
	"math/rand"
	"testing"
)

// TestMMSIMOutputSatisfiesConstraints is a randomized property test: for
// any instance, the converged MMSIM solution must satisfy every ordering
// constraint and the nonnegativity bound up to the residual tolerance, and
// subcells of one cell must agree up to the penalty softness.
func TestMMSIMOutputSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 25; trial++ {
		d := randomDesign(rng, 3+rng.Intn(5), 40+rng.Intn(80), 10+rng.Intn(40), 0.3)
		if err := AssignRows(d); err != nil {
			t.Fatal(err)
		}
		p, err := BuildProblem(d, 1000)
		if err != nil {
			t.Fatal(err)
		}
		opts := New(Options{Eps: 1e-7}).Opts
		opts.MaxIter = 300000 // uniform-random GPs converge slowly at high density
		x, st, err := SolveMMSIM(p, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !st.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		const tol = 0.51 // the default ResidualTol plus slack
		for i, c := range p.Cons {
			lhs := -x[c.Left]
			if c.Right >= 0 {
				lhs += x[c.Right]
			}
			if lhs < p.Bv[i]-tol {
				t.Errorf("trial %d: constraint %d violated by %g", trial, i, p.Bv[i]-lhs)
			}
		}
		for _, xi := range x {
			if xi < -tol {
				t.Errorf("trial %d: nonnegativity violated: %g", trial, xi)
			}
		}
		// Subcell mismatch is the penalty softness O(force/λ); on these
		// adversarial uniform-random GPs the constraint forces reach a few
		// thousand, so allow a few DBU (Restore averages it away and the
		// Tetris stage repairs any residual overlap).
		for cell, vars := range p.CellVars {
			for k := 0; k+1 < len(vars); k++ {
				if diff := x[vars[k+1]] - x[vars[k]]; diff > 5 || diff < -5 {
					t.Errorf("trial %d: cell %d subcell mismatch %g", trial, cell, diff)
				}
			}
		}
	}
}

// TestLegalizeDeterministic: two runs on clones must produce bit-identical
// placements — the whole pipeline is deterministic by construction.
func TestLegalizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	base := randomDesign(rng, 6, 100, 50, 0.25)
	a := base.Clone()
	b := base.Clone()
	if _, err := New(Options{}).Legalize(a); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{}).Legalize(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.X != cb.X || ca.Y != cb.Y || ca.Flipped != cb.Flipped {
			t.Fatalf("cell %d differs between runs: (%g,%g,%v) vs (%g,%g,%v)",
				i, ca.X, ca.Y, ca.Flipped, cb.X, cb.Y, cb.Flipped)
		}
	}
}
