package core

import (
	"math"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
)

// autoTuneDesign is a design with enough double-height coupling that the
// tuner has a meaningful bound to work against.
func autoTuneDesign(t *testing.T, seed int64) *design.Design {
	t.Helper()
	d, err := gen.Generate(gen.Spec{
		Name: "autotune", Seed: seed,
		SingleCells: 50, DoubleCells: 25, Density: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func positionsOf(d *design.Design) []float64 {
	out := make([]float64, 0, 2*len(d.Cells))
	for _, c := range d.Cells {
		out = append(out, c.X, c.Y)
	}
	return out
}

// TestAutoTuneDeterministic is the cache-transparency contract: a tuner-cache
// miss, a cache hit, and a miss after an explicit cache reset must all select
// the same θ* and produce bit-identical placements. The cache can only skip
// recomputation, never change the answer.
func TestAutoTuneDeterministic(t *testing.T) {
	d := autoTuneDesign(t, 431)
	opts := Options{AutoTune: true}

	ResetTunerCache()
	d1 := d.Clone()
	st1, err := New(opts).Legalize(d1) // cold cache: full tuning pass
	if err != nil {
		t.Fatal(err)
	}
	if !st1.AutoTuned {
		t.Fatal("AutoTune solve did not report Stats.AutoTuned")
	}
	if st1.ThetaBound <= 0 || st1.ThetaUsed <= 0 {
		t.Fatalf("tuned solve: ThetaUsed=%g ThetaBound=%g, want both positive", st1.ThetaUsed, st1.ThetaBound)
	}
	if st1.ThetaUsed >= st1.ThetaBound {
		t.Fatalf("tuned θ* %g not below the Theorem 2 bound %g", st1.ThetaUsed, st1.ThetaBound)
	}

	d2 := d.Clone()
	st2, err := New(opts).Legalize(d2) // warm cache: same structure key
	if err != nil {
		t.Fatal(err)
	}

	ResetTunerCache()
	d3 := d.Clone()
	st3, err := New(opts).Legalize(d3) // cold again: tuning re-runs from scratch
	if err != nil {
		t.Fatal(err)
	}

	for _, st := range []*Stats{st2, st3} {
		if !st.AutoTuned {
			t.Fatal("re-solve did not report Stats.AutoTuned")
		}
		if math.Float64bits(st.ThetaUsed) != math.Float64bits(st1.ThetaUsed) {
			t.Fatalf("θ* drifted across cache states: %v vs %v", st.ThetaUsed, st1.ThetaUsed)
		}
	}
	p1, p2, p3 := positionsOf(d1), positionsOf(d2), positionsOf(d3)
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p2[i]) || math.Float64bits(p1[i]) != math.Float64bits(p3[i]) {
			t.Fatalf("placement differs across tuner-cache states at coord %d: %v / %v / %v",
				i, p1[i], p2[i], p3[i])
		}
	}

	if rep := design.CheckLegal(d1); !rep.Legal() {
		t.Fatalf("auto-tuned placement not legal: %s", rep.String())
	}
}

// TestAutoTuneRespectsBound: every candidate the tuner can pick stays under
// the safety-scaled Theorem 2 limit, across a variety of structures.
func TestAutoTuneRespectsBound(t *testing.T) {
	for _, seed := range []int64{433, 439, 443} {
		d := autoTuneDesign(t, seed)
		ResetTunerCache()
		st, err := New(Options{AutoTune: true}).Legalize(d)
		if err != nil {
			t.Fatal(err)
		}
		if !st.AutoTuned {
			t.Fatalf("seed %d: solve did not report AutoTuned", seed)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("seed %d: auto-tuned placement not legal: %s", seed, rep.String())
		}
		if st.ThetaUsed >= autoTuneSafety*st.ThetaBound+1e-12 {
			t.Fatalf("seed %d: θ* %g exceeds %g×bound (%g)", seed, st.ThetaUsed, autoTuneSafety, st.ThetaBound)
		}
	}
}

// TestAutoTuneWarmReuse: a warm re-solve of a tuned problem reports
// AutoTuned from the cached state and matches the tuned θ*.
func TestAutoTuneWarmReuse(t *testing.T) {
	d := autoTuneDesign(t, 449)
	ResetTunerCache()
	warm := NewWarmState()
	opts := Options{AutoTune: true, Warm: warm}

	st1, err := New(opts).Legalize(d.Clone())
	if err != nil {
		t.Fatal(err)
	}
	perturbed := d.Clone()
	perturbGX(perturbed, 450, 1e-3)
	st2, err := New(opts).Legalize(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.WarmReused {
		t.Fatal("perturbed re-solve did not reuse warm state")
	}
	if !st2.AutoTuned {
		t.Fatal("warm re-solve lost the AutoTuned flag")
	}
	if math.Float64bits(st2.ThetaUsed) != math.Float64bits(st1.ThetaUsed) {
		t.Fatalf("warm re-solve θ* %v differs from tuned %v", st2.ThetaUsed, st1.ThetaUsed)
	}
}
