package core

import (
	"math"
	"sync"

	"mclg/internal/lcp"
	"mclg/internal/sparse"
)

// StructureSig fingerprints everything about the assembled problem except
// the cell position targets: dimensions, λ, the subcell decomposition
// (owning cell, slice, row, width), and the ordering constraints (row,
// variable pair, gap). Two builds of the same design whose cells moved but
// whose per-row orderings — and hence B, E, H = Q+λEᵀE, and the Schur
// tridiagonal D — are unchanged produce equal signatures, which is the
// license for warm reuse: only the linear term P = −target differs between
// such problems. The hash mixes whole 64-bit words over the canonical field
// order, so it is stable across runs and platforms; it lives only in process
// memory and is never persisted, so the mixing function is free to change
// between versions.
func (p *Problem) StructureSig() uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, p.NumVars)
	h = fnvInt(h, p.NumCons)
	h = fnvFloat(h, p.Lambda)
	for i := range p.Subcells {
		s := &p.Subcells[i]
		h = fnvInt(h, s.Cell)
		h = fnvInt(h, s.Slice)
		h = fnvInt(h, s.Row)
		h = fnvFloat(h, s.Width)
	}
	for i := range p.Cons {
		c := &p.Cons[i]
		h = fnvInt(h, c.Row)
		h = fnvInt(h, c.Left)
		h = fnvInt(h, c.Right)
		h = fnvFloat(h, c.Gap)
	}
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvInt folds one 64-bit word into the hash: the word is first dispersed
// with a fixed-point avalanche (the finalizer constants popularized by
// MurmurHash3) and then FNV-combined, which keeps the byte-at-a-time FNV's
// distribution quality at one multiply per word instead of eight. Structure
// signatures hash every subcell and constraint, so this is a measurable
// slice of a warm re-solve.
func fnvInt(h uint64, v int) uint64 {
	u := uint64(v)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	return (h ^ u) * fnvPrime64
}

func fnvFloat(h uint64, v float64) uint64 {
	u := math.Float64bits(v)
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	return (h ^ u) * fnvPrime64
}

// warmSig extends StructureSig with every option that shapes the cached
// splitting and LCP matrix — the Ω variant, β*, θ*, and whether AutoTheta
// may have re-derived θ*. Options that only steer the iteration (γ, ε,
// MaxIter, Workers, seeds) are deliberately excluded: they can change
// between solves without invalidating the cached factorizations.
func warmSig(p *Problem, opts *Options) uint64 {
	h := p.StructureSig()
	h = fnvFloat(h, opts.Beta)
	h = fnvFloat(h, opts.Theta)
	h = fnvFloat(h, opts.OmegaR)
	flags := 0
	if opts.AutoTheta {
		flags |= 1
	}
	if opts.PaperOmega {
		flags |= 2
	}
	if opts.ScaledOmegaX {
		flags |= 4
	}
	if opts.AutoTune {
		flags |= 8
	}
	return fnvInt(h, flags)
}

// WarmState carries solver state across repeated legalizations of the same
// topology. When consecutive solves agree on the structure signature, the
// second solve skips LCP matrix assembly, splitting construction (the
// Schur tridiagonal, its factorization, and Bᵀ), and any AutoTheta power
// iteration, refreshes only the position-dependent head of q, and seeds
// the MMSIM from the previous solution via the modulus transform. On a
// signature mismatch the solve runs cold and the state is re-primed, so a
// WarmState is always safe to pass — it accelerates matching re-solves and
// costs one hash otherwise.
//
// A WarmState serializes the solves that share it: the embedded mutex is
// held for the full solve, because the cached splitting scratch and the
// LCP workspace admit one running solve at a time. Callers wanting
// parallel solves of different topologies use one WarmState per topology
// (the serve layer keys its warm store this way).
type WarmState struct {
	mu sync.Mutex

	sig   uint64
	valid bool

	sp *StructuredSplitting
	a  *sparse.CSR
	q  []float64

	thetaUsed  float64
	thetaBound float64
	autoTuned  bool // thetaUsed came from the structure-keyed auto-tuner

	ws    *lcp.Workspace
	prevZ []float64 // last solution, length NumVars+NumCons
	haveZ bool

	seed, wbuf []float64 // modulus-transform seed scratch

	coldIters int // iterations of the last unseeded solve on this structure
}

// NewWarmState returns an empty warm state; the first solve through it runs
// cold and primes the caches.
func NewWarmState() *WarmState { return &WarmState{} }

// ColdIterations reports the iteration count of the most recent unseeded
// solve on the cached structure — the baseline against which warm-start
// savings are measured. 0 until a cold solve has completed.
func (w *WarmState) ColdIterations() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.coldIters
}

// Reset drops all cached state, forcing the next solve cold.
func (w *WarmState) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.valid = false
	w.haveZ = false
	w.sp = nil
	w.a = nil
	w.q = nil
	w.coldIters = 0
}

// grow returns buf re-sliced (and if needed re-allocated) to length n.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
