package core

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/dense"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/qp"
)

// randomDesign builds a small random mixed-height design with the given
// approximate density and double-height fraction, cells at noisy
// global-placement positions.
func randomDesign(rng *rand.Rand, numRows, numSites, numCells int, doubleFrac float64) *design.Design {
	d := design.NewDesign(design.Config{
		NumRows: numRows, NumSites: numSites, RowHeight: 10, SiteW: 1,
	})
	for i := 0; i < numCells; i++ {
		w := float64(2 + rng.Intn(6))
		h := d.RowHeight
		rail := design.VSS
		if rng.Float64() < doubleFrac {
			h = 2 * d.RowHeight
			if rng.Intn(2) == 0 {
				rail = design.VDD
			}
		}
		c := d.AddCell("c", w, h, rail)
		c.GX = rng.Float64() * (float64(numSites) - w)
		c.GY = rng.Float64() * (float64(numRows)*d.RowHeight - h)
		c.X, c.Y = c.GX, c.GY
	}
	return d
}

func TestAssignRowsPowerRail(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	d := randomDesign(rng, 10, 200, 60, 0.3)
	if err := AssignRows(d); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		row := d.RowAt(c.Y + 1)
		if row < 0 || row+c.RowSpan > len(d.Rows) {
			t.Fatalf("cell %d assigned outside core", c.ID)
		}
		if c.EvenSpan() && d.Rows[row].Rail != c.BottomRail {
			t.Errorf("cell %d: even span on mismatched rail", c.ID)
		}
		if !c.EvenSpan() {
			wantFlip := d.Rows[row].Rail != c.BottomRail
			if c.Flipped != wantFlip {
				t.Errorf("cell %d: flip = %v, want %v", c.ID, c.Flipped, wantFlip)
			}
		}
	}
}

func TestAssignRowsNoRowError(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 1, NumSites: 50, RowHeight: 10, SiteW: 1})
	c := d.AddCell("too-tall", 5, 10, design.VSS)
	c.H = 30 // bypass AddCell validation to force the error path
	c.RowSpan = 3
	if err := AssignRows(d); err == nil {
		t.Error("expected ErrNoRow")
	} else if _, ok := err.(ErrNoRow); !ok {
		t.Errorf("err = %T, want ErrNoRow", err)
	}
}

// TestMMSIMMatchesActiveSetQP is the central optimality validation: on
// random small instances, the structured MMSIM solution of LCP (15) must
// match the active-set solution of QP (13) — Theorem 1 + Theorem 2.
func TestMMSIMMatchesActiveSetQP(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 20; trial++ {
		d := randomDesign(rng, 4, 60, 10+rng.Intn(10), 0.3)
		if err := AssignRows(d); err != nil {
			t.Fatal(err)
		}
		lambda := 100.0 // keep the QP reference well conditioned
		p, err := BuildProblem(d, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumCons == 0 {
			continue
		}
		x, st, err := SolveMMSIM(p, Options{
			Lambda: lambda, Beta: 0.5, Theta: 0.5, Gamma: 1,
			Eps: 1e-10, MaxIter: 200000, AutoTheta: true,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !st.Converged {
			t.Fatalf("trial %d: MMSIM did not converge (θ=%g bound=%g)", trial, st.ThetaUsed, st.ThetaBound)
		}

		// Reference: active-set on QP (13) with H = I + λEᵀE,
		// constraints Bx >= b and x >= 0.
		n := p.NumVars
		h := dense.New(n, n)
		for i := 0; i < n; i++ {
			h.Set(i, i, 1)
		}
		eD := p.E.Dense()
		for _, row := range eD {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					h.Set(i, j, h.At(i, j)+lambda*row[i]*row[j])
				}
			}
		}
		m := p.NumCons
		g := dense.New(m+n, n)
		hv := make([]float64, m+n)
		bD := p.B.Dense()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, bD[i][j])
			}
			hv[i] = p.Bv[i]
		}
		for j := 0; j < n; j++ {
			g.Set(m+j, j, 1)
		}
		prob := &qp.Problem{H: h, P: append([]float64(nil), p.P...), G: g, Hv: hv}
		x0 := feasibleStart(p)
		ref, err := qp.Solve(prob, x0)
		if err != nil {
			t.Fatalf("trial %d: QP reference: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(x[i]-ref[i]) > 1e-3 {
				t.Errorf("trial %d: x[%d] MMSIM %.6f vs QP %.6f", trial, i, x[i], ref[i])
			}
		}
	}
}

// feasibleStart spreads subcells in each row far enough apart to satisfy
// every ordering constraint (and equals across subcells of a cell by
// construction of a common offset).
func feasibleStart(p *Problem) []float64 {
	x := make([]float64, p.NumVars)
	// Assign each *cell* a slot index by global target; all subcells of a
	// cell share the slot so Ex = 0 holds exactly and Bx >= b holds because
	// slots are spaced by the maximum width.
	maxW := 0.0
	for _, s := range p.Subcells {
		if s.Width > maxW {
			maxW = s.Width
		}
	}
	type ct struct {
		cell   int
		target float64
	}
	var cells []ct
	for id, vars := range p.CellVars {
		if len(vars) > 0 {
			cells = append(cells, ct{id, p.Subcells[vars[0]].Target})
		}
	}
	// Order by target then ID — consistent with constraint generation.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if a.target > b.target || (a.target == b.target && a.cell > b.cell) {
				cells[j-1], cells[j] = b, a
			} else {
				break
			}
		}
	}
	for slot, c := range cells {
		pos := float64(slot) * (maxW + 1)
		for _, v := range p.CellVars[c.cell] {
			x[v] = pos
		}
	}
	return x
}

func TestRestoreAveragesSubcells(t *testing.T) {
	d, cells := figure3Design()
	p, err := BuildProblem(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 12, 30, 50, 50}
	spread := Restore(p, x)
	if spread != 2 {
		t.Errorf("spread = %g, want 2", spread)
	}
	if cells[0].X != 11 {
		t.Errorf("c1.X = %g, want 11 (mean of 10, 12)", cells[0].X)
	}
	if cells[1].X != 30 || cells[2].X != 50 {
		t.Errorf("c2/c3 position wrong: %g/%g", cells[1].X, cells[2].X)
	}
}

func TestLegalizeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 8; trial++ {
		d := randomDesign(rng, 8, 120, 40, 0.2)
		leg := New(Options{Eps: 1e-6})
		stats, err := leg.Legalize(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.Unplaced != 0 {
			t.Fatalf("trial %d: %d unplaced cells", trial, stats.Unplaced)
		}
		rep := design.CheckLegal(d)
		if !rep.Legal() {
			t.Fatalf("trial %d: illegal result: %v", trial, rep)
		}
	}
}

func TestLegalizePreservesRowOrdering(t *testing.T) {
	// The ordering of cells within a row (by global x) must survive the
	// whole flow when no Tetris repair reshuffles rows — the property the
	// paper credits for its quality (Figure 5(b)).
	rng := rand.New(rand.NewSource(313))
	d := randomDesign(rng, 8, 300, 40, 0.2) // low density: no repairs expected
	leg := New(Options{Eps: 1e-8})
	stats, err := leg.Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Illegal > 0 {
		t.Skipf("repair kicked in (%d illegal); ordering not guaranteed", stats.Illegal)
	}
	// Per row: sort by global X, check legal X is nondecreasing.
	byRow := map[int][]*design.Cell{}
	for _, c := range d.Cells {
		row := d.RowAt(c.Y + 1)
		for k := 0; k < c.RowSpan; k++ {
			byRow[row+k] = append(byRow[row+k], c)
		}
	}
	for row, cells := range byRow {
		for i := range cells {
			for j := i + 1; j < len(cells); j++ {
				a, b := cells[i], cells[j]
				if a.GX < b.GX && a.X > b.X+1e-9 {
					t.Errorf("row %d: cells %d and %d swapped order (GX %g<%g but X %g>%g)",
						row, a.ID, b.ID, a.GX, b.GX, a.X, b.X)
				}
			}
		}
	}
}

func TestLegalizeHighDensityStillLegal(t *testing.T) {
	// Dense instance: Tetris repair must still produce a fully legal result.
	rng := rand.New(rand.NewSource(317))
	d := design.NewDesign(design.Config{NumRows: 6, NumSites: 80, RowHeight: 10, SiteW: 1})
	// Fill ~85% of the area.
	area := 0.0
	target := 0.85 * d.Core.Area()
	for area < target {
		w := float64(2 + rng.Intn(5))
		h := d.RowHeight
		rail := design.VSS
		if rng.Float64() < 0.15 {
			h *= 2
			if rng.Intn(2) == 0 {
				rail = design.VDD
			}
		}
		c := d.AddCell("c", w, h, rail)
		c.GX = rng.Float64() * (80 - w)
		c.GY = rng.Float64() * (60 - h)
		c.X, c.Y = c.GX, c.GY
		area += c.Area()
	}
	leg := New(Options{})
	stats, err := leg.Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unplaced != 0 {
		t.Fatalf("%d unplaced cells at 85%% density", stats.Unplaced)
	}
	rep := design.CheckLegal(d)
	if !rep.Legal() {
		t.Fatalf("illegal result: %v", rep)
	}
}

func TestThetaBoundPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	d := randomDesign(rng, 6, 100, 30, 0.2)
	if err := AssignRows(d); err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewStructuredSplitting(p, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := sp.ThetaBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Errorf("theta bound = %g, want > 0", bound)
	}
	// The paper's θ* = 0.5 should satisfy the bound on typical instances.
	if bound < 0.5 {
		t.Logf("note: bound %g below paper default 0.5 on this instance", bound)
	}
}

func TestNewFillsDefaults(t *testing.T) {
	l := New(Options{})
	def := DefaultOptions()
	if l.Opts.Lambda != def.Lambda || l.Opts.Beta != def.Beta ||
		l.Opts.Theta != def.Theta || l.Opts.Eps != def.Eps {
		t.Errorf("defaults not applied: %+v", l.Opts)
	}
	l2 := New(Options{Lambda: 5})
	if l2.Opts.Lambda != 5 {
		t.Error("explicit option overwritten")
	}
}

func TestLegalizeEmptyDesign(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 10, RowHeight: 10, SiteW: 1})
	stats, err := New(Options{}).Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumVars != 0 || stats.Illegal != 0 {
		t.Errorf("empty design stats: %+v", stats)
	}
}

// TestLegalizeWithFixedMacros: the flow must produce a legal placement
// around immovable blockages (the QP ignores them; Tetris repairs).
func TestLegalizeWithFixedMacros(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "m", SingleCells: 250, DoubleCells: 25, FixedMacros: 5,
		Density: 0.55, Seed: 67,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := New(Options{}).Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unplaced != 0 {
		t.Fatalf("%d unplaced", stats.Unplaced)
	}
	rep := design.CheckLegal(d)
	if !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
	// No movable cell may overlap a macro.
	for _, m := range d.Cells {
		if !m.Fixed {
			continue
		}
		for _, c := range d.Cells {
			if !c.Fixed && c.Bounds().Overlaps(m.Bounds()) {
				t.Errorf("cell %d overlaps macro %d", c.ID, m.ID)
			}
		}
	}
	// The macros themselves must not have moved.
	for _, m := range d.Cells {
		if m.Fixed && (m.X != m.GX || m.Y != m.GY) {
			t.Errorf("macro %d moved", m.ID)
		}
	}
}
