package core

import (
	"errors"
	"math"
	"testing"

	"mclg/internal/mclgerr"
)

func TestOptionsValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"negative-lambda", Options{Lambda: -1}},
		{"nan-lambda", Options{Lambda: math.NaN()}},
		{"beta-at-2", Options{Beta: 2}},
		{"beta-above-2", Options{Beta: 3.5}},
		{"negative-beta", Options{Beta: -0.5}},
		{"inf-theta", Options{Theta: math.Inf(1)}},
		{"negative-theta", Options{Theta: -1}},
		{"negative-gamma", Options{Gamma: -2}},
		{"negative-eps", Options{Eps: -1e-6}},
		{"nan-eps", Options{Eps: math.NaN()}},
		{"negative-maxiter", Options{MaxIter: -1}},
		{"negative-omegar", Options{OmegaR: -1}},
		{"nan-residualtol", Options{ResidualTol: math.NaN()}},
		{"nan-s0-entry", Options{S0: []float64{0, math.NaN()}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("options %+v accepted", tc.opts)
			}
			if !errors.Is(err, mclgerr.ErrInvalidInput) {
				t.Fatalf("error %v does not match ErrInvalidInput", err)
			}
		})
	}
}

func TestOptionsValidateAcceptsDefaults(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	// The zero value is what New fills with defaults; Validate runs on the
	// post-default options, but the zero value itself must also pass so the
	// ResilientLegalizer can validate user-supplied partial options.
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if err := New(Options{Beta: 1.99}).Opts.Validate(); err != nil {
		t.Fatalf("in-range Beta rejected: %v", err)
	}
}

// New must surface nonsense through LegalizeContext before any stage runs.
func TestNewRejectsNonsenseAtLegalize(t *testing.T) {
	for _, opts := range []Options{
		{Lambda: -5},
		{Eps: -1},
		{Beta: 2},
	} {
		_, err := New(opts).Legalize(nil)
		if !errors.Is(err, mclgerr.ErrInvalidInput) {
			t.Fatalf("options %+v: error %v, want ErrInvalidInput", opts, err)
		}
	}
}
