package core

import (
	"container/list"
	"sync"
)

// WarmPool holds WarmStates under caller-chosen keys with LRU eviction. It
// extends the warm-start machinery from "one whole-design topology" to
// sub-design solves: an ECO session keys a state per dirty-window row range,
// a serving layer keys one per request topology, and each state then
// licenses its own reuse through the structure signature (see WarmState) —
// the pool only decides *which* state a solve consults, never *whether*
// reuse is sound. Passing a pooled state to a sub-design whose structure
// drifted is therefore always safe: the signature mismatch makes that solve
// run cold and re-prime the state.
//
// A WarmPool is safe for concurrent use. The states it returns serialize
// the solves that share them (WarmState holds its mutex for a full solve),
// so concurrent solves under one key queue while solves under different
// keys proceed in parallel.
type WarmPool struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *warmPoolEntry
	entries map[string]*list.Element

	evictions uint64
}

type warmPoolEntry struct {
	key   string
	state *WarmState
}

// NewWarmPool builds a pool holding up to cap warm states; cap <= 0
// disables warm starting entirely (Get returns nil, which every solver
// accepts as "run cold").
func NewWarmPool(cap int) *WarmPool {
	return &WarmPool{
		cap:     cap,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the warm state under key, creating (and LRU-bumping) it as
// needed. A nil return means warm starting is disabled.
func (p *WarmPool) Get(key string) *WarmState {
	if p == nil || p.cap <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		p.ll.MoveToFront(el)
		return el.Value.(*warmPoolEntry).state
	}
	st := NewWarmState()
	p.entries[key] = p.ll.PushFront(&warmPoolEntry{key: key, state: st})
	for p.ll.Len() > p.cap {
		last := p.ll.Back()
		p.ll.Remove(last)
		delete(p.entries, last.Value.(*warmPoolEntry).key)
		p.evictions++
	}
	return st
}

// Len reports the number of resident states.
func (p *WarmPool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}

// Evictions reports the lifetime eviction count.
func (p *WarmPool) Evictions() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}
