package core

import (
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
)

// TestLegalizeTripleHeightEndToEnd runs the full flow on a design with
// single-, double-, and triple-row-height cells. Triples exercise the
// general per-cell Thomas block solve (the paper's Sherman–Morrison
// shortcut only covers doubles) and the odd-span flipping rule.
func TestLegalizeTripleHeightEndToEnd(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		d, err := gen.Generate(gen.Spec{
			Name: "triple", SingleCells: 200, DoubleCells: 25, TripleCells: 20,
			Density: 0.55, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := New(Options{}).Legalize(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.Unplaced != 0 {
			t.Fatalf("seed %d: %d unplaced", seed, stats.Unplaced)
		}
		if !stats.Converged {
			t.Errorf("seed %d: MMSIM did not converge (%d iters)", seed, stats.Iterations)
		}
		rep := design.CheckLegal(d)
		if !rep.Legal() {
			t.Fatalf("seed %d: %v", seed, rep)
		}
		// Triples must sit on rows with correctly derived flips.
		for _, c := range d.Cells {
			if c.RowSpan != 3 {
				continue
			}
			row := d.RowAt(c.Y + 1)
			wantFlip := d.Rows[row].Rail != c.BottomRail
			if c.Flipped != wantFlip {
				t.Errorf("seed %d: triple %d flip = %v, want %v", seed, c.ID, c.Flipped, wantFlip)
			}
		}
	}
}

// TestTripleSubcellChain checks the E-matrix chaining for a span-3 cell:
// two equality rows linking consecutive subcells.
func TestTripleSubcellChain(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 40, RowHeight: 10, SiteW: 1})
	c := d.AddCell("t", 5, 30, design.VSS)
	c.GX, c.GY = 10, 0
	c.X, c.Y = 10, 0
	p, err := BuildProblem(d, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 3 {
		t.Fatalf("vars = %d, want 3", p.NumVars)
	}
	if p.E.Rows != 2 {
		t.Fatalf("E rows = %d, want 2", p.E.Rows)
	}
	eD := p.E.Dense()
	want := [][]float64{{-1, 1, 0}, {0, -1, 1}}
	for i := range want {
		for j := range want[i] {
			if eD[i][j] != want[i][j] {
				t.Errorf("E[%d][%d] = %g, want %g", i, j, eD[i][j], want[i][j])
			}
		}
	}
	// Solve: a lone cell stays at its target.
	x, st, err := SolveMMSIM(p, New(Options{Eps: 1e-10}).Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("did not converge")
	}
	for i := range x {
		if diff := x[i] - 10; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("x[%d] = %g, want 10", i, x[i])
		}
	}
}
