package exact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

func mkDesign(rows, sites int) *design.Design {
	return design.NewDesign(design.Config{
		NumRows: rows, NumSites: sites, RowHeight: 10, SiteW: 1,
	})
}

// apply writes a solution's positions onto a clone and returns it.
func apply(d *design.Design, sol *Solution) *design.Design {
	clone := d.Clone()
	for i, c := range clone.Cells {
		c.X, c.Y, c.Flipped = sol.X[i], sol.Y[i], sol.Flipped[i]
	}
	return clone
}

func solve(t *testing.T, d *design.Design, opts Options) *Solution {
	t.Helper()
	sol, err := Solve(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSingleCellOnGridIsOptimal(t *testing.T) {
	d := mkDesign(2, 20)
	c := d.AddCell("c", 4, 10, design.VSS)
	c.GX, c.GY = 7, 0
	c.X, c.Y = 0, 0 // illegal-looking seed is fine: GX/GY are the targets

	sol := solve(t, d, Options{})
	if sol.X[0] != 7 || sol.Y[0] != 0 {
		t.Errorf("placed at (%g, %g), want (7, 0)", sol.X[0], sol.Y[0])
	}
	if sol.Cost != 0 || sol.Gap != 0 || !sol.Proven {
		t.Errorf("Cost=%g Gap=%g Proven=%v, want 0/0/true", sol.Cost, sol.Gap, sol.Proven)
	}
	if !design.CheckLegal(apply(d, sol)).Legal() {
		t.Error("solution is illegal")
	}
}

func TestOffGridTargetYieldsMeasuredGap(t *testing.T) {
	// A lone cell targeting x = 7.5 has QP relaxation value 0, but any site
	// placement costs 0.25: the measured gap is real snapping loss, and the
	// search still proves it cannot do better than report it.
	d := mkDesign(1, 20)
	c := d.AddCell("c", 4, 10, design.VSS)
	c.GX, c.GY = 7.5, 0

	sol := solve(t, d, Options{})
	if math.Abs(sol.Cost-0.25) > 1e-9 {
		t.Errorf("Cost = %g, want 0.25", sol.Cost)
	}
	if sol.LowerBound > 1e-9 {
		t.Errorf("LowerBound = %g, want 0", sol.LowerBound)
	}
	if sol.Gap <= 0 {
		t.Errorf("Gap = %g, want > 0 (snapping loss)", sol.Gap)
	}
	if !sol.Proven {
		t.Error("search should exhaust on one cell")
	}
}

func TestOverlappingTargetsPackOptimally(t *testing.T) {
	// Three width-2 cells all targeting x = 4 in one row. Any legal layout
	// is {2, 4, 6} in some order; equal widths make the target order
	// optimal: cost = 4 + 0 + 4 = 8.
	d := mkDesign(1, 10)
	for i := 0; i < 3; i++ {
		c := d.AddCell("c", 2, 10, design.VSS)
		c.GX, c.GY = 4, 0
	}
	sol := solve(t, d, Options{})
	if math.Abs(sol.Cost-8) > 1e-9 {
		t.Errorf("Cost = %g, want 8", sol.Cost)
	}
	if !design.CheckLegal(apply(d, sol)).Legal() {
		t.Error("solution is illegal")
	}
	if !sol.Proven {
		t.Error("tiny instance should be proven")
	}
}

func TestFixedObstacleRespected(t *testing.T) {
	d := mkDesign(2, 20)
	f := d.AddCell("blk", 6, 10, design.VSS)
	f.Fixed = true
	f.X, f.Y = 6, 0
	f.GX, f.GY = 6, 0
	c := d.AddCell("c", 4, 10, design.VSS)
	c.GX, c.GY = 7, 0 // target inside the obstacle

	sol := solve(t, d, Options{})
	clone := apply(d, sol)
	if !design.CheckLegal(clone).Legal() {
		t.Fatal("solution is illegal")
	}
	if sol.X[0] != 6 || sol.Y[0] != 0 {
		t.Error("fixed cell moved")
	}
	// Nearest legal spots: x=2 (cost 25), x=12 (cost 25) in row 0, or row 1
	// is not rail-compatible... (VSS cell, row 1 is VDD-bottom) — width-1
	// spans flip, so row 1 at x=7 costs 100. Best is 25.
	if math.Abs(sol.Cost-25) > 1e-9 {
		t.Errorf("Cost = %g, want 25", sol.Cost)
	}
}

func TestSeededIncumbentOnlyImprovedWhenBeaten(t *testing.T) {
	d := mkDesign(1, 20)
	c := d.AddCell("c", 4, 10, design.VSS)
	c.GX, c.GY = 7, 0
	c.X, c.Y = 7, 0 // legal seed already at the optimum

	sol := solve(t, d, Options{})
	if sol.Improved {
		t.Error("Improved = true for a seed already optimal")
	}
	if sol.Cost != 0 {
		t.Errorf("Cost = %g, want 0", sol.Cost)
	}

	// Same instance, seed displaced: the solver must beat it.
	c.X = 15
	sol = solve(t, d, Options{})
	if !sol.Improved {
		t.Error("Improved = false for a beatable seed")
	}
	if sol.X[0] != 7 {
		t.Errorf("X = %g, want 7", sol.X[0])
	}
}

func TestTooManyCellsRefused(t *testing.T) {
	d := mkDesign(4, 100)
	for i := 0; i < 5; i++ {
		c := d.AddCell("c", 2, 10, design.VSS)
		c.GX = float64(4 * i)
	}
	_, err := Solve(context.Background(), d, Options{MaxCells: 4})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestCancellation(t *testing.T) {
	d := mkDesign(4, 40)
	for i := 0; i < 10; i++ {
		c := d.AddCell("c", 3, 10, design.VSS)
		c.GX, c.GY = float64(4*i), 10
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(ctx, d, Options{})
	if err == nil {
		// A solve that finishes before the first poll is acceptable; ensure
		// at least the poll path exists by retrying with a bigger tree.
		t.Skip("solve completed before the cancellation poll")
	}
	if !errors.Is(err, mclgerr.ErrCanceled) {
		t.Errorf("err = %v, want mclgerr.ErrCanceled", err)
	}
}

func TestNodeBudgetKeepsBoundValid(t *testing.T) {
	d := mkDesign(4, 30)
	for i := 0; i < 8; i++ {
		c := d.AddCell("c", 3, 10, design.VSS)
		c.GX, c.GY = float64(3*i)+0.4, 15
	}
	sol := solve(t, d, Options{NodeBudget: 16})
	if sol.Proven {
		t.Error("Proven = true with a 16-node budget on an 8-cell tree")
	}
	if sol.Cost < sol.LowerBound-1e-9 {
		t.Errorf("Cost %g below LowerBound %g", sol.Cost, sol.LowerBound)
	}
	if !design.CheckLegal(apply(d, sol)).Legal() {
		t.Error("budgeted solution is illegal")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	d := randomDesign(rand.New(rand.NewSource(42)))
	a, err := Solve(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.LowerBound != b.LowerBound || a.Nodes != b.Nodes {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Flipped[i] != b.Flipped[i] {
			t.Fatalf("cell %d position differs across runs", i)
		}
	}
}

// TestBruteForceEquivalence cross-checks the branch-and-bound against an
// exhaustive enumeration of every site/row placement. Equal widths keep the
// target order provably optimal, so both searches cover the same space.
func TestBruteForceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		d := mkDesign(2, 8)
		n := 2 + rng.Intn(2)
		for i := 0; i < n; i++ {
			c := d.AddCell("c", 2, 10, design.VSS)
			c.GX = rng.Float64() * 6
			c.GY = float64(rng.Intn(2)) * 10
		}
		sol, err := Solve(context.Background(), d, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(d)
		if sol.Cost > want+1e-9 {
			t.Errorf("trial %d: Cost = %g, brute force found %g", trial, sol.Cost, want)
		}
		if sol.LowerBound > want+1e-9 {
			t.Errorf("trial %d: LowerBound = %g above true optimum %g", trial, sol.LowerBound, want)
		}
		if !sol.Proven {
			t.Errorf("trial %d: not proven on a tiny instance", trial)
		}
	}
}

// bruteForce enumerates every (site, row) tuple for the movable cells and
// returns the cheapest legal cost.
func bruteForce(d *design.Design) float64 {
	var mov []*design.Cell
	for _, c := range d.Cells {
		if !c.Fixed {
			mov = append(mov, c)
		}
	}
	clone := d.Clone()
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == len(mov) {
			if design.CheckLegal(clone).Legal() {
				cost := 0.0
				for _, c := range clone.Cells {
					if !c.Fixed {
						cost += c.DisplacementSq()
					}
				}
				if cost < best {
					best = cost
				}
			}
			return
		}
		c := clone.Cells[mov[k].ID]
		for r := 0; r+c.RowSpan <= len(d.Rows); r++ {
			if !d.RailCompatible(c, r) {
				continue
			}
			for s := 0; s <= d.Rows[r].NumSites-int(c.W/d.SiteW); s++ {
				c.X = d.Rows[r].OriginX + float64(s)*d.SiteW
				c.Y = d.RowY(r)
				if !c.EvenSpan() {
					c.Flipped = d.Rows[r].Rail != c.BottomRail
				}
				rec(k + 1)
			}
		}
	}
	rec(0)
	return best
}

// randomDesign builds a small feasible window with mixed-height cells and
// an occasional fixed blocker.
func randomDesign(rng *rand.Rand) *design.Design {
	rows := 2 + rng.Intn(3)
	sites := 8 + rng.Intn(9)
	d := mkDesign(rows, sites)
	if rng.Intn(3) == 0 {
		f := d.AddCell("blk", float64(1+rng.Intn(3)), 10, design.VSS)
		f.Fixed = true
		f.X = float64(rng.Intn(sites - 3))
		f.Y = d.RowY(rng.Intn(rows))
		f.GX, f.GY = f.X, f.Y
	}
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		h := 10.0
		if rows >= 2 && rng.Intn(4) == 0 {
			h = 20
		}
		c := d.AddCell("c", float64(1+rng.Intn(4)), h, design.VSS)
		c.GX = rng.Float64() * float64(sites-4)
		c.GY = float64(rng.Intn(rows)) * 10
	}
	return d
}

// FuzzExactVsQP is the differential fuzz the CI exact-smoke job runs: on
// random windows the exact incumbent must never be illegal, never beat its
// own QP-derived lower bound, and never lose to a legal seeded incumbent.
func FuzzExactVsQP(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		d := randomDesign(rng)
		sol, err := Solve(context.Background(), d, Options{NodeBudget: 4000})
		if err != nil {
			if errors.Is(err, mclgerr.ErrUnplacedCells) ||
				errors.Is(err, mclgerr.ErrInfeasibleRow) {
				t.Skip("infeasible window")
			}
			t.Fatal(err)
		}
		clone := apply(d, sol)
		if rep := design.CheckLegal(clone); !rep.Legal() {
			t.Fatalf("illegal solution: %v", rep)
		}
		// The incumbent can never beat the relaxation it is bounded by.
		if sol.Cost < sol.LowerBound-1e-6 {
			t.Fatalf("Cost %g below LowerBound %g", sol.Cost, sol.LowerBound)
		}
		if sol.Gap < 0 || sol.Gap > 1 {
			t.Fatalf("Gap %g outside [0, 1]", sol.Gap)
		}
		if sol.Proven && sol.Gap == 0 && math.Abs(sol.Cost-sol.LowerBound) > 1e-6 {
			t.Fatalf("Gap 0 but Cost %g != LowerBound %g", sol.Cost, sol.LowerBound)
		}
		// Re-solving the returned placement (now the seed) can never improve:
		// the incumbent is already optimal-or-best-known for this budget.
		reseeded, err := Solve(context.Background(), clone, Options{NodeBudget: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if reseeded.Cost > sol.Cost+1e-9 {
			t.Fatalf("re-seeded solve regressed: %g > %g", reseeded.Cost, sol.Cost)
		}
	})
}
