// Package exact implements a branch-and-bound legalizer for small windows
// (tens of cells) that certifies how far a committed placement sits from
// optimal, in the spirit of ILP-with-constraint-graph exact legalization.
//
// The search branches on per-cell row assignments (every rail-compatible row
// of the window) and, at the leaves, on near-tie horizontal orderings of the
// row constraint chains. Each complete assignment is relaxed to the
// continuous convex QP
//
//	min Σ (x_i − gx_i)²   s.t.  x_j − x_i ≥ w_i along each row chain,
//	                            lo_i ≤ x_i ≤ hi_i − w_i,
//
// solved with the dense active-set method from internal/qp — the same
// relaxation family as the paper's relaxed LCP, restricted to the window.
// The QP value plus the assignment's vertical cost is the class lower
// bound; snapping the QP optimum to the site grid (and verifying it with
// the full legality checker) yields incumbents. The minimum over all class
// bounds — explored or pruned — is a true lower bound on any placement in
// the order-preserving class the paper's Theorem 2 certifies, so
//
//	Gap = (incumbent − lower bound) / incumbent
//
// is a measured, not assumed, optimality gap: 0 when the incumbent provably
// attains the bound, strictly positive when site snapping or pruning leaves
// distance unaccounted for.
//
// The search is bounded by a deterministic node budget, never wall-clock
// time, so a given (design, options) pair always explores the same tree and
// returns the same solution — the repository's bit-determinism contract.
package exact

import (
	"context"
	"math"
	"sort"

	"mclg/internal/dense"
	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/qp"
)

// Options configures one exact solve.
type Options struct {
	// MaxCells refuses designs with more movable cells (default 40): the
	// dense node relaxations are O(n³) and the tree is exponential, so the
	// solver is for windows, not whole designs.
	MaxCells int
	// NodeBudget bounds the number of branch-and-bound nodes expanded
	// (default 20000). The budget is deterministic: unlike a wall-clock
	// deadline, exhausting it yields the same partial tree — and therefore
	// the same incumbent and bound — on every run.
	NodeBudget int
	// OrderVariants bounds how many near-tie ordering variants are explored
	// per complete row assignment (default 8, minimum 1: the target order
	// itself).
	OrderVariants int
	// TieTolSites is the target-distance threshold, in site widths, under
	// which two same-row neighbors' order is branched both ways (default 1).
	TieTolSites float64
}

func (o Options) withDefaults() Options {
	if o.MaxCells == 0 {
		o.MaxCells = 40
	}
	if o.NodeBudget == 0 {
		o.NodeBudget = 20000
	}
	if o.OrderVariants == 0 {
		o.OrderVariants = 8
	}
	if o.TieTolSites == 0 {
		o.TieTolSites = 1
	}
	return o
}

// Solution is the outcome of one exact solve. Positions are indexed by the
// design's cell IDs; fixed cells keep their input positions.
type Solution struct {
	X       []float64
	Y       []float64
	Flipped []bool

	// Cost is the incumbent objective Σ (Δx² + Δy²) over movable cells, in
	// squared database units, measured against the global positions.
	Cost float64
	// LowerBound is the best proven lower bound on the objective over the
	// explored class space (all row assignments × explored orderings).
	LowerBound float64
	// Gap is the normalized measured optimality gap
	// (Cost − LowerBound) / max(Cost, ε), clamped to [0, 1]. Zero means the
	// incumbent provably attains the bound.
	Gap float64
	// Proven reports that the search exhausted the tree within the node
	// budget, so LowerBound covers every class, not just the visited ones.
	Proven bool
	// Improved reports that the incumbent strictly beats the seeded
	// placement (the input X/Y positions), when those were legal.
	Improved bool

	Nodes  int // branch-and-bound nodes expanded
	Leaves int // complete assignments relaxed with the QP
}

// ErrTooLarge is returned for designs beyond Options.MaxCells.
var ErrTooLarge = mclgerr.Invalidf("exact: window exceeds the movable-cell limit")

// gapEps absorbs floating-point noise when classifying a gap as zero.
const gapEps = 1e-9

// item is one entry of a row chain: a movable cell (mov >= 0, its index in
// the solver's movable slice) or a frozen obstacle (mov < 0) with fixed
// horizontal extent [x, x+w).
type item struct {
	mov  int
	x, w float64 // obstacles only
	key  float64 // ordering key: target for movable, x for obstacles
	id   int     // tie-break
}

type solver struct {
	d    *design.Design
	opts Options

	movable []*design.Cell
	cand    [][]int     // candidate start rows per movable cell, best first
	vcost   [][]float64 // vertical cost aligned with cand
	minVert []float64
	sufMin  []float64 // suffix sums of minVert in branch order

	rowCap  []float64 // free horizontal capacity per row (minus obstacles)
	rowUsed []float64

	assign []int // current row per movable cell (-1 unassigned)

	incumbent    []float64 // per movable: x (DBU); nil until a leaf verifies
	incumbentRow []int
	incCost      float64

	bound  float64 // min over leaf relaxations and pruned-node bounds
	nodes  int
	leaves int

	ctxErr error
	ctx    context.Context
}

// Solve runs the branch-and-bound search on d. The input X/Y positions of
// movable cells, when legal, seed the incumbent (and its cost prunes the
// tree); the input design is not mutated.
func Solve(ctx context.Context, d *design.Design, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	s := &solver{d: d, opts: opts, ctx: ctx, incCost: math.Inf(1), bound: math.Inf(1)}
	for _, c := range d.Cells {
		if !c.Fixed {
			s.movable = append(s.movable, c)
		}
	}
	if len(s.movable) > opts.MaxCells {
		return nil, ErrTooLarge
	}
	if len(s.movable) == 0 {
		return emptySolution(d), nil
	}

	// Hardest cells first: wide/tall cells have the fewest feasible slots,
	// so assigning them early maximizes pruning.
	sort.Slice(s.movable, func(i, j int) bool {
		a, b := s.movable[i], s.movable[j]
		if aw, bw := a.W*float64(a.RowSpan), b.W*float64(b.RowSpan); aw != bw {
			return aw > bw
		}
		return a.ID < b.ID
	})

	if err := s.prepare(); err != nil {
		return nil, err
	}
	s.seedIncumbent()
	seedCost := s.incCost

	s.dfs(0, 0)
	if s.ctxErr != nil {
		return nil, s.ctxErr
	}
	if s.incumbent == nil {
		return nil, &mclgerr.StageError{
			Stage:  "exact",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: "no legal placement found within the node budget",
		}
	}

	sol := s.buildSolution()
	sol.Proven = s.nodes < s.opts.NodeBudget
	sol.Improved = !math.IsInf(seedCost, 1) && sol.Cost < seedCost-gapEps
	return sol, nil
}

func emptySolution(d *design.Design) *Solution {
	sol := &Solution{
		X:       make([]float64, len(d.Cells)),
		Y:       make([]float64, len(d.Cells)),
		Flipped: make([]bool, len(d.Cells)),
		Proven:  true,
	}
	for i, c := range d.Cells {
		sol.X[i], sol.Y[i], sol.Flipped[i] = c.X, c.Y, c.Flipped
	}
	return sol
}

// prepare computes candidate rows, vertical costs, and row capacities.
func (s *solver) prepare() error {
	d := s.d
	n := len(s.movable)
	s.cand = make([][]int, n)
	s.vcost = make([][]float64, n)
	s.minVert = make([]float64, n)
	s.assign = make([]int, n)
	for i := range s.assign {
		s.assign[i] = -1
	}

	for i, c := range s.movable {
		type rc struct {
			row int
			v   float64
		}
		var rcs []rc
		for r := 0; r+c.RowSpan <= len(d.Rows); r++ {
			if !d.RailCompatible(c, r) {
				continue
			}
			dy := d.RowY(r) - c.GY
			rcs = append(rcs, rc{r, dy * dy})
		}
		if len(rcs) == 0 {
			return &mclgerr.StageError{
				Stage: "exact",
				Err:   mclgerr.ErrInfeasibleRow,
				Cells: []int{c.ID},
			}
		}
		sort.Slice(rcs, func(a, b int) bool {
			if rcs[a].v != rcs[b].v {
				return rcs[a].v < rcs[b].v
			}
			return rcs[a].row < rcs[b].row
		})
		s.minVert[i] = rcs[0].v
		for _, e := range rcs {
			s.cand[i] = append(s.cand[i], e.row)
			s.vcost[i] = append(s.vcost[i], e.v)
		}
	}

	s.sufMin = make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		s.sufMin[i] = s.sufMin[i+1] + s.minVert[i]
	}

	// Row capacity: total row width minus the extent of frozen obstacles
	// overlapping the row. An assignment whose per-row width demand exceeds
	// capacity cannot be packed and is pruned without a QP.
	s.rowCap = make([]float64, len(d.Rows))
	s.rowUsed = make([]float64, len(d.Rows))
	for r := range d.Rows {
		s.rowCap[r] = d.Rows[r].XMax() - d.Rows[r].OriginX
	}
	for _, c := range d.Cells {
		if !c.Fixed {
			continue
		}
		r0 := d.RowAt(c.Y + 1e-9)
		if r0 < 0 {
			r0 = 0
		}
		for r := r0; r < len(d.Rows); r++ {
			if d.RowY(r) >= c.Y+c.H-1e-9 {
				break
			}
			lo := math.Max(c.X, d.Rows[r].OriginX)
			hi := math.Min(c.X+c.W, d.Rows[r].XMax())
			if hi > lo {
				s.rowCap[r] -= hi - lo
			}
		}
	}
	return nil
}

// seedIncumbent adopts the input placement as the starting incumbent when
// the legality checker accepts it.
func (s *solver) seedIncumbent() {
	if !design.CheckLegal(s.d).Legal() {
		return
	}
	cost := 0.0
	xs := make([]float64, len(s.movable))
	rows := make([]int, len(s.movable))
	for i, c := range s.movable {
		r := s.d.RowAt(c.Y + s.d.RowHeight/2)
		if r < 0 {
			return
		}
		xs[i], rows[i] = c.X, r
		cost += c.DisplacementSq()
	}
	s.incumbent, s.incumbentRow, s.incCost = xs, rows, cost
}

// dfs expands the assignment tree. depth is the next movable cell to
// assign; vert is the vertical cost of the assignments so far.
func (s *solver) dfs(depth int, vert float64) {
	if s.ctxErr != nil {
		return
	}
	if s.nodes >= s.opts.NodeBudget {
		// Unexplored subtrees may hold better placements: anchor the global
		// bound at the weakest valid value covering them.
		s.noteBound(s.sufMin[0])
		return
	}
	s.nodes++
	if s.nodes%64 == 0 {
		if err := mclgerr.FromContext(s.ctx); err != nil {
			s.ctxErr = err
			return
		}
	}
	if depth == len(s.movable) {
		s.evalLeaf(vert)
		return
	}
	c := s.movable[depth]
	for k, r := range s.cand[depth] {
		nv := vert + s.vcost[depth][k]
		if nv+s.sufMin[depth+1] >= s.incCost-gapEps {
			// Candidates are sorted by vertical cost: every later row in
			// this node is pruned by the same bound.
			s.noteBound(nv + s.sufMin[depth+1])
			break
		}
		if !s.fitsRows(c, r) {
			continue // capacity-infeasible: no bound contribution
		}
		s.occupyRows(c, r, c.W)
		s.assign[depth] = r
		s.dfs(depth+1, nv)
		s.assign[depth] = -1
		s.occupyRows(c, r, -c.W)
		if s.ctxErr != nil {
			return
		}
	}
}

func (s *solver) fitsRows(c *design.Cell, r int) bool {
	for k := 0; k < c.RowSpan; k++ {
		if s.rowUsed[r+k]+c.W > s.rowCap[r+k]+1e-9 {
			return false
		}
	}
	return true
}

func (s *solver) occupyRows(c *design.Cell, r int, w float64) {
	for k := 0; k < c.RowSpan; k++ {
		s.rowUsed[r+k] += w
	}
}

// noteBound folds a subtree lower bound into the global bound.
func (s *solver) noteBound(b float64) {
	if b < s.bound {
		s.bound = b
	}
}

// evalLeaf relaxes one complete row assignment: it builds the horizontal
// constraint chains, enumerates near-tie ordering variants, solves each
// variant's QP, and snaps the best relaxations to the site grid as
// incumbent candidates.
func (s *solver) evalLeaf(vert float64) {
	chains := s.buildChains()
	variants := s.orderVariants(chains)
	for _, ch := range variants {
		s.leaves++
		relax, xs, ok := s.solveChainQP(ch)
		if !ok {
			continue
		}
		s.noteBound(vert + relax)
		if vert+relax >= s.incCost-gapEps {
			continue // snapping cannot beat the incumbent
		}
		s.trySnap(ch, xs, vert)
	}
}

// buildChains assembles the per-row horizontal chains for the current
// assignment: movable cells keyed by target x, frozen obstacles by their
// actual extent.
func (s *solver) buildChains() [][]item {
	d := s.d
	chains := make([][]item, len(d.Rows))
	for i, c := range s.movable {
		r := s.assign[i]
		for k := 0; k < c.RowSpan; k++ {
			chains[r+k] = append(chains[r+k], item{mov: i, key: c.GX, id: c.ID})
		}
	}
	for _, c := range d.Cells {
		if !c.Fixed {
			continue
		}
		for r := range d.Rows {
			ry := d.RowY(r)
			if c.Y >= ry+d.RowHeight-1e-9 || c.Y+c.H <= ry+1e-9 {
				continue
			}
			chains[r] = append(chains[r], item{mov: -1, x: c.X, w: c.W, key: c.X, id: -1 - c.ID})
		}
	}
	for r := range chains {
		sort.Slice(chains[r], func(a, b int) bool {
			if chains[r][a].key != chains[r][b].key {
				return chains[r][a].key < chains[r][b].key
			}
			return chains[r][a].id < chains[r][b].id
		})
	}
	return chains
}

// orderVariants enumerates the target ordering plus up to
// Options.OrderVariants−1 near-tie adjacent transpositions: for each pair of
// movable chain neighbors whose targets sit within TieTolSites, the swapped
// order is its own branch. Variants are deterministic and deduplicated.
func (s *solver) orderVariants(chains [][]item) [][][]item {
	out := [][][]item{chains}
	if s.opts.OrderVariants <= 1 {
		return out
	}
	tie := s.opts.TieTolSites * s.d.SiteW
	type swap struct{ row, pos int }
	var swaps []swap
	for r := range chains {
		for i := 0; i+1 < len(chains[r]); i++ {
			a, b := chains[r][i], chains[r][i+1]
			if a.mov >= 0 && b.mov >= 0 && math.Abs(a.key-b.key) <= tie+1e-12 {
				swaps = append(swaps, swap{r, i})
			}
		}
	}
	for _, sw := range swaps {
		if len(out) >= s.opts.OrderVariants {
			break
		}
		v := make([][]item, len(chains))
		for r := range chains {
			v[r] = append([]item(nil), chains[r]...)
		}
		v[sw.row][sw.pos], v[sw.row][sw.pos+1] = v[sw.row][sw.pos+1], v[sw.row][sw.pos]
		out = append(out, v)
	}
	return out
}

// cellBounds returns the horizontal interval [lo, hi] available to movable
// cell i under its current row assignment (hi is the max left-edge x).
func (s *solver) cellBounds(i int) (lo, hi float64) {
	c := s.movable[i]
	r := s.assign[i]
	lo, hi = math.Inf(-1), math.Inf(1)
	for k := 0; k < c.RowSpan; k++ {
		row := &s.d.Rows[r+k]
		lo = math.Max(lo, row.OriginX)
		hi = math.Min(hi, row.XMax()-c.W)
	}
	return lo, hi
}

// solveChainQP solves the continuous relaxation of one ordering with the
// dense active-set method and returns the horizontal objective
// Σ (x_i − gx_i)² and the optimizer. ok is false when the ordering is
// infeasible (overfull chain) or the QP fails.
func (s *solver) solveChainQP(chains [][]item) (obj float64, xs []float64, ok bool) {
	n := len(s.movable)
	type ineq struct {
		a, b int // x_b − x_a ≥ c (a or b == -1 for single-variable rows)
		c    float64
	}
	var rows []ineq
	for i := range s.movable {
		lo, hi := s.cellBounds(i)
		rows = append(rows, ineq{a: -1, b: i, c: lo})  // x_i ≥ lo
		rows = append(rows, ineq{a: i, b: -1, c: -hi}) // −x_i ≥ −hi
	}
	for _, ch := range chains {
		for i := 0; i+1 < len(ch); i++ {
			a, b := ch[i], ch[i+1]
			switch {
			case a.mov >= 0 && b.mov >= 0:
				rows = append(rows, ineq{a: a.mov, b: b.mov, c: s.movable[a.mov].W})
			case a.mov < 0 && b.mov >= 0:
				rows = append(rows, ineq{a: -1, b: b.mov, c: a.x + a.w})
			case a.mov >= 0 && b.mov < 0:
				rows = append(rows, ineq{a: a.mov, b: -1, c: -(b.x - s.movable[a.mov].W)})
			}
		}
	}

	h := dense.New(n, n)
	p := make([]float64, n)
	for i, c := range s.movable {
		h.Set(i, i, 2)
		p[i] = -2 * c.GX
	}
	g := dense.New(len(rows), n)
	hv := make([]float64, len(rows))
	for r, iq := range rows {
		if iq.a >= 0 {
			g.Set(r, iq.a, -1)
		}
		if iq.b >= 0 {
			g.Set(r, iq.b, 1)
		}
		hv[r] = iq.c
	}

	x0, feasible := s.packStart(chains)
	if !feasible {
		return 0, nil, false
	}
	x, err := qp.Solve(&qp.Problem{H: h, P: p, G: g, Hv: hv}, x0)
	if err != nil {
		return 0, nil, false
	}
	for i, c := range s.movable {
		d := x[i] - c.GX
		obj += d * d
	}
	return obj, x, true
}

// packStart builds a feasible starting point by packing every chain left.
// Multi-row cells couple chains, so the pass iterates to a fixed point.
func (s *solver) packStart(chains [][]item) ([]float64, bool) {
	x := make([]float64, len(s.movable))
	his := make([]float64, len(s.movable))
	for i := range s.movable {
		lo, hi := s.cellBounds(i)
		x[i], his[i] = lo, hi
	}
	for pass := 0; pass <= len(s.movable)+1; pass++ {
		changed := false
		for _, ch := range chains {
			limit := math.Inf(-1)
			for _, it := range ch {
				if it.mov < 0 {
					if it.x+it.w > limit {
						limit = it.x + it.w
					}
					continue
				}
				if x[it.mov] < limit-1e-12 {
					x[it.mov] = limit
					changed = true
				}
				limit = x[it.mov] + s.movable[it.mov].W
			}
		}
		if !changed {
			break
		}
		if pass == len(s.movable)+1 {
			return nil, false // should have converged: treat as infeasible
		}
	}
	for i := range x {
		if x[i] > his[i]+1e-9 {
			return nil, false
		}
	}
	return x, true
}

// trySnap rounds a QP optimizer to the site grid, restores chain feasibility
// with a forward/backward pass, verifies the result with the full legality
// checker, and adopts it as the incumbent when it improves the cost.
func (s *solver) trySnap(chains [][]item, xs []float64, vert float64) {
	d := s.d
	snapped := make([]float64, len(xs))
	for i := range xs {
		snapped[i] = math.Round((xs[i]-d.Core.Lo.X)/d.SiteW)*d.SiteW + d.Core.Lo.X
	}
	// Forward: push right to clear left neighbors; backward: pull left to
	// respect right bounds. Widths are rounded up to whole sites so cleared
	// constraints stay cleared on the grid.
	wsites := func(i int) float64 {
		return math.Ceil(s.movable[i].W/d.SiteW-1e-9) * d.SiteW
	}
	for pass := 0; pass <= len(xs)+1; pass++ {
		changed := false
		for _, ch := range chains {
			limit := math.Inf(-1)
			for _, it := range ch {
				if it.mov < 0 {
					limit = math.Max(limit, math.Ceil((it.x+it.w-d.Core.Lo.X)/d.SiteW-1e-9)*d.SiteW+d.Core.Lo.X)
					continue
				}
				if snapped[it.mov] < limit-1e-9 {
					snapped[it.mov] = limit
					changed = true
				}
				limit = snapped[it.mov] + wsites(it.mov)
			}
		}
		if !changed {
			break
		}
	}
	for pass := 0; pass <= len(xs)+1; pass++ {
		changed := false
		for _, ch := range chains {
			limit := math.Inf(1)
			for i := len(ch) - 1; i >= 0; i-- {
				it := ch[i]
				if it.mov < 0 {
					limit = math.Min(limit, math.Floor((it.x-d.Core.Lo.X)/d.SiteW+1e-9)*d.SiteW+d.Core.Lo.X)
					continue
				}
				cap := limit - wsites(it.mov)
				_, hi := s.cellBounds(it.mov)
				cap = math.Min(cap, math.Floor((hi-d.Core.Lo.X)/d.SiteW+1e-9)*d.SiteW+d.Core.Lo.X)
				if snapped[it.mov] > cap+1e-9 {
					snapped[it.mov] = cap
					changed = true
				}
				limit = snapped[it.mov]
			}
		}
		if !changed {
			break
		}
	}
	// The backward pass may have undone a forward clearance: re-verify.
	for _, ch := range chains {
		limit := math.Inf(-1)
		for _, it := range ch {
			if it.mov < 0 {
				limit = math.Max(limit, it.x+it.w)
				continue
			}
			lo, _ := s.cellBounds(it.mov)
			if snapped[it.mov] < limit-1e-9 || snapped[it.mov] < lo-1e-9 {
				return // grid-infeasible under this ordering
			}
			limit = snapped[it.mov] + wsites(it.mov)
		}
	}

	cost := vert
	for i, c := range s.movable {
		dx := snapped[i] - c.GX
		cost += dx * dx
	}
	if cost >= s.incCost-gapEps {
		return
	}

	// Authoritative check: apply to a clone and run the legality checker.
	clone := d.Clone()
	for i, c := range s.movable {
		cc := clone.Cells[c.ID]
		cc.X = snapped[i]
		cc.Y = d.RowY(s.assign[i])
		if !cc.EvenSpan() {
			cc.Flipped = d.Rows[s.assign[i]].Rail != cc.BottomRail
		}
	}
	if !design.CheckLegal(clone).Legal() {
		return
	}
	s.incumbent = append([]float64(nil), snapped...)
	s.incumbentRow = append([]int(nil), s.assign...)
	s.incCost = cost
}

func (s *solver) buildSolution() *Solution {
	d := s.d
	sol := &Solution{
		X:       make([]float64, len(d.Cells)),
		Y:       make([]float64, len(d.Cells)),
		Flipped: make([]bool, len(d.Cells)),
		Cost:    s.incCost,
		Nodes:   s.nodes,
		Leaves:  s.leaves,
	}
	for i, c := range d.Cells {
		sol.X[i], sol.Y[i], sol.Flipped[i] = c.X, c.Y, c.Flipped
	}
	for i, c := range s.movable {
		sol.X[c.ID] = s.incumbent[i]
		sol.Y[c.ID] = d.RowY(s.incumbentRow[i])
		if !c.EvenSpan() {
			sol.Flipped[c.ID] = d.Rows[s.incumbentRow[i]].Rail != c.BottomRail
		} else {
			sol.Flipped[c.ID] = false
		}
	}
	// The incumbent itself bounds the optimum from above, so the reported
	// lower bound never exceeds it.
	sol.LowerBound = math.Min(s.bound, s.incCost)
	if gap := sol.Cost - sol.LowerBound; gap > gapEps && sol.Cost > 0 {
		sol.Gap = gap / sol.Cost
	}
	return sol
}
