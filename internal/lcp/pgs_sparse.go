package lcp

import (
	"context"
	"fmt"
	"math"

	"mclg/internal/mclgerr"
	"mclg/internal/sparse"
)

// PGSSparse runs projected Gauss–Seidel on LCP(q, A) with A in CSR form:
//
//	z_i ← max(0, z_i − (q_i + (A z)_i) / A_ii)
//
// swept in index order until the largest component update falls below eps or
// maxIter sweeps elapse. For symmetric positive definite A the sweep is a
// coordinate descent on the bound-constrained quadratic and converges
// monotonically, which makes it the robust fallback when the structured
// MMSIM diverges: slower, but with no tunable splitting constants to get
// wrong.
//
// A must have strictly positive diagonal entries (the legalizer guarantees
// this by running PGS on the dual Schur-complement LCP rather than the
// saddle-point system, whose multiplier block has a zero diagonal).
//
// z0, when non-nil, seeds the iteration (negative entries are clamped).
// Returns the iterate, the number of sweeps, and an error on a non-positive
// diagonal, a non-finite iterate, an exhausted sweep budget, or a canceled
// context — each matching its mclgerr sentinel.
func PGSSparse(ctx context.Context, a *sparse.CSR, q []float64, z0 []float64, eps float64, maxIter int) ([]float64, int, error) {
	n := len(q)
	if a.Rows != n || a.Cols != n {
		return nil, 0, mclgerr.Invalidf("lcp: PGS matrix is %dx%d but q has length %d", a.Rows, a.Cols, n)
	}
	if eps <= 0 {
		eps = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		d := a.At(i, i)
		if d <= 0 || math.IsNaN(d) {
			return nil, 0, mclgerr.Invalidf("lcp: PGS requires positive diagonal, A[%d][%d] = %g", i, i, d)
		}
		diag[i] = d
	}
	z := make([]float64, n)
	if z0 != nil {
		for i := range z {
			if i < len(z0) && z0[i] > 0 {
				z[i] = z0[i]
			}
		}
	}
	for sweep := 1; sweep <= maxIter; sweep++ {
		if sweep%cancelCheckEvery == 1 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, sweep, fmt.Errorf("lcp: PGS aborted at sweep %d: %w", sweep, err)
			}
		}
		maxStep := 0.0
		for i := 0; i < n; i++ {
			// row residual r = q_i + Σ_j A_ij z_j (including the diagonal).
			r := q[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				r += a.Val[k] * z[a.ColIdx[k]]
			}
			zi := z[i] - r/diag[i]
			if zi < 0 {
				zi = 0
			}
			if step := math.Abs(zi - z[i]); step > maxStep {
				maxStep = step
			}
			z[i] = zi
		}
		if math.IsNaN(maxStep) || math.IsInf(maxStep, 0) {
			return nil, sweep, fmt.Errorf("lcp: PGS produced a non-finite iterate at sweep %d: %w", sweep, mclgerr.ErrDiverged)
		}
		if maxStep < eps {
			return z, sweep, nil
		}
	}
	return z, maxIter, fmt.Errorf("lcp: PGS did not converge in %d sweeps: %w", maxIter, mclgerr.ErrIterBudget)
}
