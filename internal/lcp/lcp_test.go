package lcp

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/dense"
	"mclg/internal/sparse"
)

// spdProblem builds an LCP with a random symmetric positive definite A,
// which is guaranteed to have a unique solution.
func spdProblem(rng *rand.Rand, n int) (*Problem, *dense.Matrix) {
	g := dense.New(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	a := g.T().Mul(g)
	// Make the matrix strictly diagonally dominant (still symmetric positive
	// definite): both Lemke and the diagonal MMSIM splitting are then
	// guaranteed to converge, keeping the cross-checks deterministic.
	for i := 0; i < n; i++ {
		rowSum := 1.0
		for j := 0; j < n; j++ {
			if j != i {
				rowSum += math.Abs(a.At(i, j))
			}
		}
		a.Set(i, i, math.Abs(a.At(i, i))+rowSum)
	}
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64() * 2
	}
	return &Problem{A: b.Build(), Q: q}, a
}

func denseOf(p *Problem) *dense.Matrix {
	n := p.N()
	a := dense.New(n, n)
	d := p.A.Dense()
	for i := 0; i < n; i++ {
		copy(a.Data[i*n:(i+1)*n], d[i])
	}
	return a
}

func TestProblemResidualAtSolution(t *testing.T) {
	// Hand-built LCP: A = I, q = (-1, 2). Solution z = (1, 0), w = (0, 2).
	p := &Problem{A: sparse.Identity(2), Q: []float64{-1, 2}}
	z := []float64{1, 0}
	if r := p.Residual(z); r > 1e-14 {
		t.Errorf("residual at exact solution = %g", r)
	}
	if g := p.ComplementarityGap(z); g > 1e-14 {
		t.Errorf("gap at exact solution = %g", g)
	}
	// Wrong z has positive residual.
	if r := p.Residual([]float64{1, 1}); r < 1 {
		t.Errorf("residual at wrong point = %g, want >= 1", r)
	}
}

func TestLemkeTrivial(t *testing.T) {
	a := dense.FromRows([][]float64{{2, 0}, {0, 2}})
	z, err := Lemke(a, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("q >= 0 should give z = 0, got %v", z)
	}
}

func TestLemkeKnownSolution(t *testing.T) {
	// A = I, q = (-3, -5): z = (3, 5), w = 0.
	a := dense.FromRows([][]float64{{1, 0}, {0, 1}})
	z, err := Lemke(a, []float64{-3, -5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z[0]-3) > 1e-10 || math.Abs(z[1]-5) > 1e-10 {
		t.Errorf("z = %v, want [3 5]", z)
	}
}

func TestLemkeRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		p, ad := spdProblem(rng, n)
		z, err := Lemke(ad, p.Q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := p.Residual(z); r > 1e-7 {
			t.Errorf("trial %d: Lemke residual = %g", trial, r)
		}
	}
}

func TestPGSMatchesLemke(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		p, ad := spdProblem(rng, n)
		zl, err := Lemke(ad, p.Q)
		if err != nil {
			t.Fatal(err)
		}
		zp, _, err := PGS(ad, p.Q, 1e-12, 50000)
		if err != nil {
			t.Fatal(err)
		}
		for i := range zl {
			if math.Abs(zl[i]-zp[i]) > 1e-6 {
				t.Errorf("trial %d: z[%d] Lemke %g vs PGS %g", trial, i, zl[i], zp[i])
			}
		}
	}
}

func TestPGSRejectsNonPositiveDiagonal(t *testing.T) {
	a := dense.FromRows([][]float64{{0, 1}, {1, 1}})
	if _, _, err := PGS(a, []float64{1, 1}, 1e-8, 10); err == nil {
		t.Error("expected error for zero diagonal")
	}
}

func TestMMSIMDiagSplittingSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		p, ad := spdProblem(rng, n)
		sp, err := NewDiagSplitting(p.A, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MMSIM(p, sp, Options{Eps: 1e-12, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: MMSIM did not converge in %d iters (step %g)",
				trial, res.Iterations, res.FinalStep)
		}
		if r := p.Residual(res.Z); r > 1e-6 {
			t.Errorf("trial %d: MMSIM residual = %g", trial, r)
		}
		// Cross-check against Lemke.
		zl, err := Lemke(ad, p.Q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range zl {
			if math.Abs(zl[i]-res.Z[i]) > 1e-5 {
				t.Errorf("trial %d: z[%d] MMSIM %g vs Lemke %g", trial, i, res.Z[i], zl[i])
			}
		}
	}
}

func TestMMSIMGammaInvariance(t *testing.T) {
	// The solution z must not depend on γ (only the s-iterates do).
	rng := rand.New(rand.NewSource(109))
	p, _ := spdProblem(rng, 6)
	var zs [][]float64
	for _, gamma := range []float64{0.5, 1, 2} {
		sp, err := NewDiagSplitting(p.A, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MMSIM(p, sp, Options{Gamma: gamma, Eps: 1e-12, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		zs = append(zs, res.Z)
	}
	for k := 1; k < len(zs); k++ {
		for i := range zs[0] {
			if math.Abs(zs[0][i]-zs[k][i]) > 1e-6 {
				t.Errorf("z depends on gamma: %g vs %g at %d", zs[0][i], zs[k][i], i)
			}
		}
	}
}

func TestMMSIMOnIterCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	p, _ := spdProblem(rng, 5)
	sp, _ := NewDiagSplitting(p.A, 0.9)
	calls := 0
	res, err := MMSIM(p, sp, Options{Eps: 1e-10, OnIter: func(k int, dz float64) {
		if k != calls {
			t.Errorf("OnIter k = %d, want %d", k, calls)
		}
		calls++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("OnIter called %d times, iterations %d", calls, res.Iterations)
	}
}

func TestMMSIMDimensionMismatch(t *testing.T) {
	p := &Problem{A: sparse.Identity(3), Q: []float64{1, 2}}
	sp, _ := NewDiagSplitting(p.A, 1)
	if _, err := MMSIM(p, sp, Options{}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestDiagSplittingRejectsBadInput(t *testing.T) {
	if _, err := NewDiagSplitting(sparse.Identity(2), -1); err == nil {
		t.Error("expected error for non-positive alpha")
	}
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	if _, err := NewDiagSplitting(b.Build(), 1); err == nil {
		t.Error("expected error for zero diagonal")
	}
}

func TestLemkeZeroDimension(t *testing.T) {
	z, err := Lemke(dense.New(0, 0), nil)
	if err != nil || len(z) != 0 {
		t.Errorf("0-dim Lemke = %v, %v", z, err)
	}
}
