package lcp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

var workerCounts = []int{1, 2, 8}

// TestFusedStepBitIdentical pins the fused Step to the pre-fusion iteration
// body kept as stepUnfused: on random SPD LCPs, two solvers driven from the
// same seed must produce the same z history bit for bit and stop after the
// same number of iterations, at every worker count.
func TestFusedStepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(12)
		p, _ := spdProblem(rng, n)
		s0 := make([]float64, n)
		for i := range s0 {
			s0[i] = rng.NormFloat64()
		}
		gamma := []float64{1, 1, 2}[trial%3]
		for _, w := range workerCounts {
			mk := func() *Solver {
				sp, err := NewDiagSplitting(p.A, 0.9)
				if err != nil {
					t.Fatal(err)
				}
				sv, err := NewSolver(p, sp, Options{
					Gamma: gamma, Eps: 1e-10, MaxIter: 200,
					S0: append([]float64(nil), s0...), Workers: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				return sv
			}
			fused, unfused := mk(), mk()
			defer fused.Close()
			defer unfused.Close()
			fusedIters, unfusedIters := 0, 0
			for k := 0; k < 200; k++ {
				dzF, errF := fused.Step()
				dzU, errU := unfused.stepUnfused()
				if (errF == nil) != (errU == nil) {
					t.Fatalf("trial %d workers %d iter %d: error mismatch %v vs %v", trial, w, k, errF, errU)
				}
				if errF != nil {
					break
				}
				if math.Float64bits(dzF) != math.Float64bits(dzU) {
					t.Fatalf("trial %d workers %d iter %d: dz %x vs %x",
						trial, w, k, math.Float64bits(dzF), math.Float64bits(dzU))
				}
				zf, zu := fused.Z(), unfused.Z()
				for i := range zf {
					if math.Float64bits(zf[i]) != math.Float64bits(zu[i]) {
						t.Fatalf("trial %d workers %d iter %d: z[%d] = %g vs %g",
							trial, w, k, i, zf[i], zu[i])
					}
				}
				if dzF < 1e-10 && k > 0 {
					fusedIters, unfusedIters = fused.Iterations(), unfused.Iterations()
					break
				}
			}
			if fusedIters != unfusedIters {
				t.Fatalf("trial %d workers %d: stopped after %d vs %d iterations",
					trial, w, fusedIters, unfusedIters)
			}
		}
	}
}

// TestFusedAndUnfusedInterleave drives one solver through an alternating mix
// of fused and unfused steps and a reference solver through fused steps only:
// both maintain the same workspace invariants, so the histories must agree
// bit for bit.
func TestFusedAndUnfusedInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	p, _ := spdProblem(rng, 9)
	mk := func() *Solver {
		sp, err := NewDiagSplitting(p.A, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := NewSolver(p, sp, Options{Eps: 1e-12, MaxIter: 100})
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	mixed, ref := mk(), mk()
	defer mixed.Close()
	defer ref.Close()
	for k := 0; k < 60; k++ {
		var dzM float64
		var errM error
		if k%3 == 1 {
			dzM, errM = mixed.stepUnfused()
		} else {
			dzM, errM = mixed.Step()
		}
		dzR, errR := ref.Step()
		if errM != nil || errR != nil {
			t.Fatalf("iter %d: errors %v / %v", k, errM, errR)
		}
		if math.Float64bits(dzM) != math.Float64bits(dzR) {
			t.Fatalf("iter %d: dz %x vs %x", k, math.Float64bits(dzM), math.Float64bits(dzR))
		}
		zm, zr := mixed.Z(), ref.Z()
		for i := range zm {
			if math.Float64bits(zm[i]) != math.Float64bits(zr[i]) {
				t.Fatalf("iter %d: z[%d] = %g vs %g", k, i, zm[i], zr[i])
			}
		}
	}
}

// TestStridedResidualNeverWeakens checks the strided-verification safety
// property: a converged strided run must satisfy exactly the residual bound
// the legacy check-every-candidate mode enforces, and striding can delay the
// stop but never accept an iterate the per-iteration check would reject.
func TestStridedResidualNeverWeakens(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(15)
		p, _ := spdProblem(rng, n)
		resTol := 1e-6
		run := func(checkEvery int) *Result {
			sp, err := NewDiagSplitting(p.A, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			// A loose Eps makes early dz-candidates fire while the residual
			// is still large, exercising the failed-check stride path.
			res, err := MMSIM(p, sp, Options{
				Eps: 1e-3, MaxIter: 50000, ResidualTol: resTol, CheckEvery: checkEvery,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		every := run(1) // legacy: check every candidate stop
		auto := run(0)  // structure-derived stride
		if !every.Converged || !auto.Converged {
			t.Fatalf("trial %d: converged %v / %v", trial, every.Converged, auto.Converged)
		}
		// The residual bound holds for both — convergence is never declared
		// without a passing check.
		if r := p.Residual(auto.Z); r >= resTol {
			t.Errorf("trial %d: strided run converged with residual %g >= %g", trial, r, resTol)
		}
		if r := p.Residual(every.Z); r >= resTol {
			t.Errorf("trial %d: per-candidate run converged with residual %g >= %g", trial, r, resTol)
		}
		// Striding only delays: the strided run can never stop earlier than
		// the per-candidate run.
		if auto.Iterations < every.Iterations {
			t.Errorf("trial %d: strided run stopped at %d, before the per-candidate run's %d",
				trial, auto.Iterations, every.Iterations)
		}
	}
}

// TestStridedResidualStillChecksFinal makes sure a run whose dz criterion
// fires between strided checkpoints still performs (and passes) a residual
// check before reporting convergence — via the context-carrying entry point,
// which is the path the legalizer uses.
func TestStridedResidualStillChecksFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	p, _ := spdProblem(rng, 10)
	sp, err := NewDiagSplitting(p.A, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MMSIMContext(context.Background(), p, sp, Options{
		Eps: 1e-9, MaxIter: 50000, ResidualTol: 1e-7, CheckEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if r := p.Residual(res.Z); r >= 1e-7 {
		t.Errorf("converged with residual %g >= 1e-7", r)
	}
}
