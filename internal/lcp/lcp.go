// Package lcp defines the linear complementarity problem LCP(q, A) —
// find w, z with w = Az + q >= 0, z >= 0, zᵀw = 0 — and three solvers:
//
//   - MMSIM: the modulus-based matrix splitting iteration method of
//     Bai (2010), the solver the paper builds its legalizer on. The
//     splitting is supplied by the caller, so the legalizer can plug in its
//     structured block lower-triangular O(n) solve while tests can use
//     simpler splittings.
//   - Lemke: the classical complementary pivoting algorithm, used as a
//     small-scale exact reference.
//   - PGS: projected Gauss–Seidel, a simple fixed-point reference for
//     symmetric positive definite systems.
package lcp

import (
	"math"

	"mclg/internal/sparse"
)

// Problem is an LCP(q, A) instance with A in CSR form.
type Problem struct {
	A *sparse.CSR
	Q []float64
}

// N returns the problem dimension.
func (p *Problem) N() int { return len(p.Q) }

// W computes w = Az + q.
func (p *Problem) W(z []float64) []float64 {
	w := make([]float64, p.N())
	p.A.MulVec(w, z)
	sparse.Axpy(w, 1, p.Q)
	return w
}

// Residual measures how far (z, w = Az+q) is from solving the LCP:
// the maximum over all i of max(-z_i, -w_i, |min(z_i, w_i)|) — i.e. the
// worst primal infeasibility, dual infeasibility, or complementarity gap.
func (p *Problem) Residual(z []float64) float64 {
	return p.ResidualInto(make([]float64, p.N()), z)
}

// ResidualInto is Residual with a caller-supplied scratch w (length N), so
// the solver's candidate-stop checks stay allocation-free. w is overwritten
// with Az + q. The SpMV, the +q update, and the componentwise max scan are
// fused into one row pass; the per-element arithmetic matches the separate
// sweeps, so the returned residual is bit-identical.
func (p *Problem) ResidualInto(w, z []float64) float64 {
	a, q := p.A, p.Q
	if len(w) != a.Rows || len(z) != a.Cols {
		panic("lcp: ResidualInto dimension mismatch")
	}
	res := 0.0
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		cols := a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
		vals := a.Val[a.RowPtr[i]:a.RowPtr[i+1]]
		for k, c := range cols {
			s += vals[k] * z[c]
		}
		wi := s + q[i]
		w[i] = wi
		if v := -z[i]; v > res {
			res = v
		}
		if v := -wi; v > res {
			res = v
		}
		if v := math.Abs(math.Min(z[i], wi)); v > res {
			res = v
		}
	}
	return res
}

// Residuals is the componentwise breakdown of the LCP residual: the three
// maxima whose overall max Residual reports. An exact solution has all
// three at zero; the audit layer reports them separately in certificates.
type Residuals struct {
	Complementarity float64 // max_i |min(z_i, w_i)|
	PrimalInfeas    float64 // max_i max(0, −z_i)
	DualInfeas      float64 // max_i max(0, −w_i)
}

// Max returns the overall residual max(Complementarity, PrimalInfeas,
// DualInfeas), identical to what Residual reports.
func (r Residuals) Max() float64 {
	return math.Max(r.Complementarity, math.Max(r.PrimalInfeas, r.DualInfeas))
}

// ResidualComponents recomputes w = Az + q and returns the componentwise
// residual breakdown of (z, w).
func (p *Problem) ResidualComponents(z []float64) Residuals {
	w := p.W(z)
	var r Residuals
	for i := range z {
		if v := -z[i]; v > r.PrimalInfeas {
			r.PrimalInfeas = v
		}
		if v := -w[i]; v > r.DualInfeas {
			r.DualInfeas = v
		}
		if v := math.Abs(math.Min(z[i], w[i])); v > r.Complementarity {
			r.Complementarity = v
		}
	}
	return r
}

// ComplementarityGap returns zᵀw clipped at zero components, a scalar
// summary of solution quality.
func (p *Problem) ComplementarityGap(z []float64) float64 {
	w := p.W(z)
	gap := 0.0
	for i := range z {
		gap += math.Abs(z[i] * w[i])
	}
	return gap
}
