package lcp

import (
	"errors"
	"fmt"
	"math"

	"mclg/internal/dense"
)

// ErrRayTermination is returned when Lemke's algorithm terminates on a
// secondary ray, i.e. it found no solution (the LCP may be infeasible for
// this matrix class).
var ErrRayTermination = errors.New("lcp: Lemke ray termination, no solution found")

// Lemke solves LCP(q, A) by complementary pivoting on a dense tableau.
// It is exponential in the worst case and O(n²) memory, so it is intended
// as an exact reference for small instances (tests, ablations) — the
// production path is MMSIM.
//
// For A positive semidefinite (which the saddle-point matrices of the
// legalizer are: zᵀAz = xᵀHx ≥ 0) Lemke terminates with a solution whenever
// one exists.
func Lemke(a *dense.Matrix, q []float64) ([]float64, error) {
	n := len(q)
	if a.R != n || a.C != n {
		return nil, fmt.Errorf("lcp: Lemke dimension mismatch: A %dx%d, q %d", a.R, a.C, n)
	}
	z := make([]float64, n)
	// Trivial case: q >= 0 means z = 0, w = q.
	minIdx, minVal := -1, 0.0
	for i, v := range q {
		if v < minVal {
			minVal, minIdx = v, i
		}
	}
	if minIdx < 0 {
		return z, nil
	}

	// Tableau for the system  w − A z − e z0 = q.
	// Columns: [0, n) = w, [n, 2n) = z, 2n = z0. rhs kept separately.
	cols := 2*n + 1
	t := dense.New(n, cols)
	rhs := make([]float64, n)
	copy(rhs, q)
	for i := 0; i < n; i++ {
		t.Set(i, i, 1)
		for j := 0; j < n; j++ {
			t.Set(i, n+j, -a.At(i, j))
		}
		t.Set(i, 2*n, -1)
	}
	basis := make([]int, n) // basis[i] = column index basic in row i
	for i := range basis {
		basis[i] = i // w_i
	}

	pivot := func(row, col int) {
		piv := t.At(row, col)
		inv := 1 / piv
		for j := 0; j < cols; j++ {
			t.Set(row, j, t.At(row, j)*inv)
		}
		rhs[row] *= inv
		for i := 0; i < n; i++ {
			if i == row {
				continue
			}
			f := t.At(i, col)
			if f == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				t.Set(i, j, t.At(i, j)-f*t.At(row, j))
			}
			rhs[i] -= f * rhs[row]
		}
		basis[row] = col
	}

	// First pivot: z0 enters, the most negative row leaves.
	leavingCol := basis[minIdx]
	pivot(minIdx, 2*n)
	entering := complementOf(leavingCol, n)

	maxPivots := 500 * (n + 10)
	for iter := 0; iter < maxPivots; iter++ {
		// Ratio test: leaving row minimizes rhs_i / t[i][entering] over
		// positive tableau entries; ties prefer the z0 row so the algorithm
		// terminates, then the lowest basis column for determinism.
		row := -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			d := t.At(i, entering)
			if d <= 1e-11 {
				continue
			}
			r := rhs[i] / d
			if r < best-1e-12 {
				best, row = r, i
			} else if r <= best+1e-12 && row >= 0 {
				if basis[i] == 2*n || (basis[row] != 2*n && basis[i] < basis[row]) {
					row = i
				}
			}
		}
		if row < 0 {
			return nil, ErrRayTermination
		}
		leavingCol = basis[row]
		pivot(row, entering)
		if leavingCol == 2*n {
			// z0 left the basis: read off the solution.
			for i := 0; i < n; i++ {
				if basis[i] >= n && basis[i] < 2*n {
					z[basis[i]-n] = rhs[i]
				}
			}
			return z, nil
		}
		entering = complementOf(leavingCol, n)
	}
	return nil, fmt.Errorf("lcp: Lemke exceeded %d pivots (likely cycling)", maxPivots)
}

// complementOf maps w_i <-> z_i column indices.
func complementOf(col, n int) int {
	if col < n {
		return col + n
	}
	return col - n
}

// PGS runs projected Gauss–Seidel on LCP(q, A): a fixed-point reference
// solver that converges for symmetric positive definite A. Returns the
// iterate after convergence (max |Δz| < eps) or maxIter sweeps.
func PGS(a *dense.Matrix, q []float64, eps float64, maxIter int) ([]float64, int, error) {
	n := len(q)
	if a.R != n || a.C != n {
		return nil, 0, fmt.Errorf("lcp: PGS dimension mismatch")
	}
	for i := 0; i < n; i++ {
		if a.At(i, i) <= 0 {
			return nil, 0, fmt.Errorf("lcp: PGS requires positive diagonal, A[%d][%d] = %g", i, i, a.At(i, i))
		}
	}
	if eps <= 0 {
		eps = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	z := make([]float64, n)
	for it := 1; it <= maxIter; it++ {
		maxd := 0.0
		for i := 0; i < n; i++ {
			s := q[i]
			for j := 0; j < n; j++ {
				if j != i {
					s += a.At(i, j) * z[j]
				}
			}
			zi := math.Max(0, -s/a.At(i, i))
			if d := math.Abs(zi - z[i]); d > maxd {
				maxd = d
			}
			z[i] = zi
		}
		if maxd < eps {
			return z, it, nil
		}
	}
	return z, maxIter, nil
}
