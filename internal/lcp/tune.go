package lcp

import (
	"fmt"
	"math"

	"mclg/internal/sparse"
)

// IterationRho estimates the spectral radius of the MMSIM linear iteration
// operator T = (M + Ω)⁻¹ N for a splitting, via a few deterministic power
// iteration steps (sparse.PowerIteration's fixed quasi-random start). ρ(T)
// bounds the asymptotic contraction of the s iterates on the smooth part of
// the dynamics — the modulus nonlinearity only tightens it for H₊-matrices
// — so comparing ρ across candidate splitting parameters ranks their
// convergence speed without running solves. The estimate is a pure function
// of the splitting structure and (maxIter, tol); n is the operator
// dimension.
func IterationRho(sp Splitting, n, maxIter int, tol float64) float64 {
	if n == 0 {
		return 0
	}
	scratch := make([]float64, n)
	rho := sparse.PowerIteration(n, func(dst, src []float64) {
		sp.ApplyN(scratch, src)
		sp.SolveMOmega(dst, scratch)
	}, maxIter, tol)
	if rho < 0 {
		rho = -rho
	}
	return rho
}

// ProbeContraction scores a candidate splitting by running a short real
// MMSIM probe against a synthetic right-hand side: a fixed Weyl-sequence q
// and start (pure functions of the dimension, same recipe as
// sparse.PowerIteration's seed), iters modulus iterations, returning the
// final ‖Δz‖∞. Smaller is better; a stalled or divergent candidate returns
// a large or +Inf score. This is deliberately not a ρ(T) power-iteration
// estimate: with a small budget the power method can badly underestimate a
// spectral radius near 1 (clustered eigenvalues), ranking a non-contracting
// candidate above a convergent one, whereas the probe exercises the true
// nonlinear iteration. The synthetic q keeps the score independent of cell
// positions, so structure-keyed caches can replay the decision exactly.
func ProbeContraction(a *sparse.CSR, sp Splitting, iters int) float64 {
	n := a.Rows
	if n == 0 || iters <= 0 {
		return 0
	}
	q := make([]float64, n)
	s0 := make([]float64, n)
	seedFrac := 0.0
	for i := range q {
		seedFrac += 0.6180339887498949
		seedFrac -= math.Floor(seedFrac)
		q[i] = seedFrac - 0.5
		s0[i] = 0.5 - seedFrac
	}
	sv, err := NewSolver(&Problem{A: a, Q: q}, sp, Options{MaxIter: iters + 1, S0: s0})
	if err != nil {
		return math.Inf(1)
	}
	defer sv.Close()
	last := math.Inf(1)
	for k := 0; k < iters; k++ {
		dz, err := sv.Step()
		if err != nil || math.IsNaN(dz) {
			return math.Inf(1)
		}
		last = dz
	}
	return last
}

// TuneDiagAlpha picks the relaxation parameter α for DiagSplitting from a
// fixed deterministic candidate grid by minimizing the estimated iteration
// spectral radius ρ((M+Ω)⁻¹N). Ties (within 1e-12) break toward the smaller
// α, keeping the choice deterministic. steps caps the power iterations per
// candidate; a couple dozen suffices to rank candidates. Returns the chosen
// α and its ρ estimate.
func TuneDiagAlpha(a *sparse.CSR, steps int) (alpha, rho float64, err error) {
	if a.Rows != a.Cols {
		return 0, 0, fmt.Errorf("lcp: TuneDiagAlpha requires square A, got %dx%d", a.Rows, a.Cols)
	}
	if steps <= 0 {
		steps = 24
	}
	// The grid spans the usual SOR-style range; values ≥ 2 break the
	// modulus convergence theory for diagonally dominant A.
	candidates := [...]float64{0.6, 0.8, 1.0, 1.2, 1.4}
	bestAlpha, bestRho := 0.0, 0.0
	for i, cand := range candidates {
		sp, err := NewDiagSplitting(a, cand)
		if err != nil {
			return 0, 0, err
		}
		r := IterationRho(sp, a.Rows, steps, 1e-3)
		if i == 0 || r < bestRho-1e-12 {
			bestAlpha, bestRho = cand, r
		}
	}
	return bestAlpha, bestRho, nil
}
