package lcp_test

import (
	"fmt"

	"mclg/internal/lcp"
	"mclg/internal/sparse"
)

// ExampleMMSIM solves the textbook LCP with A = I, q = (−3, 2):
// complementarity forces z = (3, 0), w = (0, 2).
func ExampleMMSIM() {
	p := &lcp.Problem{A: sparse.Identity(2), Q: []float64{-3, 2}}
	sp, err := lcp.NewDiagSplitting(p.A, 1)
	if err != nil {
		panic(err)
	}
	res, err := lcp.MMSIM(p, sp, lcp.Options{Eps: 1e-12})
	if err != nil {
		panic(err)
	}
	fmt.Printf("z = (%.2f, %.2f), converged in %d iterations\n",
		res.Z[0], res.Z[1], res.Iterations)
	fmt.Printf("residual: %.1e\n", p.Residual(res.Z))
	// Output:
	// z = (3.00, 0.00), converged in 2 iterations
	// residual: 0.0e+00
}
