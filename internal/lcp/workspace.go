package lcp

import (
	"math"
	"sync"
)

// Workspace owns every per-solve buffer of the MMSIM hot loop: the modulus
// iterate pair s/sNext, the |s| and rhs scratch, the z iterate and its
// predecessor, and the w scratch the residual check needs. A solve that is
// handed a Workspace performs no per-iteration allocations; reusing one
// Workspace across a sweep of same-sized solves makes the whole sequence
// allocation-free at steady state.
//
// A Workspace is not safe for concurrent use: it belongs to exactly one
// running solve at a time. Result.Z of a solve run with an explicit
// Workspace aliases the workspace's z buffer and is only valid until the
// workspace is reused or released.
type Workspace struct {
	s, sNext, absS, rhs, z, zPrev, w []float64
}

// NewWorkspace returns a workspace sized for n-dimensional problems.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.Ensure(n)
	return ws
}

// Ensure grows the workspace to hold n-dimensional iterates. Shrinking never
// reallocates: buffers are re-sliced, so a workspace sized for the largest
// instance of a sweep serves every smaller one without further allocation.
func (ws *Workspace) Ensure(n int) {
	if cap(ws.s) < n {
		ws.s = make([]float64, n)
		ws.sNext = make([]float64, n)
		ws.absS = make([]float64, n)
		ws.rhs = make([]float64, n)
		ws.z = make([]float64, n)
		ws.zPrev = make([]float64, n)
		ws.w = make([]float64, n)
		return
	}
	ws.s = ws.s[:n]
	ws.sNext = ws.sNext[:n]
	ws.absS = ws.absS[:n]
	ws.rhs = ws.rhs[:n]
	ws.z = ws.z[:n]
	ws.zPrev = ws.zPrev[:n]
	ws.w = ws.w[:n]
}

// wsPool recycles workspaces across solves that do not bring their own
// (Options.Workspace == nil): after the first few solves of a steady-state
// sweep the pool serves every Get, so the per-solve buffer cost drops to the
// one copy that detaches Result.Z from the pooled buffers.
var wsPool = sync.Pool{New: func() any { return &Workspace{} }}

// GetWorkspace takes a pooled workspace sized for n. Pair with PutWorkspace.
func GetWorkspace(n int) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.Ensure(n)
	return ws
}

// PutWorkspace returns a workspace to the pool. The caller must not retain
// any slice of it (including a Result.Z that aliases it).
func PutWorkspace(ws *Workspace) {
	if ws != nil {
		wsPool.Put(ws)
	}
}

// WarmSeed writes into dst the modulus-transform seed derived from a prior
// LCP solution pair (z, w = Az + q):
//
//	s = γ/2 · (z − Ω⁻¹ w)
//
// inverting the MMSIM substitution z = (|s| + s)/γ, w = (Ω/γ)(|s| − s). At an
// exact complementary solution the transform is exact — z_i > 0 gives
// s_i = γz_i/2 and w_i > 0 gives s_i = −γw_i/(2ω_i) — so seeding the next
// solve of a nearby problem starts the iteration at (numerically) the old
// fixed point. Negative components of z and w, which appear when the pair
// comes from a merely approximate solve or from a perturbed problem, are
// clamped to zero first; the MMSIM converges from any seed, so the clamp
// affects speed, never correctness. omega is the splitting's positive
// diagonal Ω (nil means identity), matching Splitting.Omega.
func WarmSeed(dst, z, w []float64, gamma float64, omega []float64) {
	if gamma == 0 {
		gamma = 1
	}
	for i := range dst {
		zi := z[i]
		if zi < 0 || math.IsNaN(zi) {
			zi = 0
		}
		wi := w[i]
		if wi < 0 || math.IsNaN(wi) {
			wi = 0
		}
		if omega != nil {
			wi /= omega[i]
		}
		dst[i] = gamma * (zi - wi) / 2
	}
}
