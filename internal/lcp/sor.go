package lcp

import (
	"fmt"

	"mclg/internal/sparse"
)

// SORSplitting is the modulus-based successive-overrelaxation splitting of
// Bai (2010): M = (1/α)(D − βL), N = M − A, with D = diag(A) and L the
// strict lower triangle of A, and Ω = D. For α = β it is the modulus-based
// SOR method (MSOR); α = β = 1 gives modulus-based Gauss–Seidel. For
// H₊-matrices with α ∈ (0, 1] and β ∈ [0, α] the iteration converges, and
// it typically needs far fewer sweeps than the Jacobi-like DiagSplitting.
type SORSplitting struct {
	a           *sparse.CSR
	alpha, beta float64
	diag        []float64 // D = Ω
	// Lower-triangle structure of A extracted once: for each row, the
	// column indices < row and their values.
	lowPtr []int
	lowCol []int
	lowVal []float64
}

// NewSORSplitting builds the splitting. A must have positive diagonal.
func NewSORSplitting(a *sparse.CSR, alpha, beta float64) (*SORSplitting, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("lcp: SOR alpha must be positive, got %g", alpha)
	}
	if beta < 0 {
		return nil, fmt.Errorf("lcp: SOR beta must be nonnegative, got %g", beta)
	}
	n := a.Rows
	s := &SORSplitting{a: a, alpha: alpha, beta: beta, diag: make([]float64, n)}
	s.lowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		diagSeen := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			switch {
			case j < i:
				s.lowCol = append(s.lowCol, j)
				s.lowVal = append(s.lowVal, a.Val[k])
			case j == i:
				s.diag[i] = a.Val[k]
				diagSeen = true
			}
		}
		if !diagSeen || s.diag[i] <= 0 {
			return nil, fmt.Errorf("lcp: SOR requires positive diagonal, A[%d][%d] = %g", i, i, s.diag[i])
		}
		s.lowPtr[i+1] = len(s.lowCol)
	}
	return s, nil
}

// SolveMOmega solves ((1/α)(D − βL) + D) dst = rhs by forward substitution.
func (s *SORSplitting) SolveMOmega(dst, rhs []float64) {
	invA := 1 / s.alpha
	for i := range dst {
		acc := rhs[i]
		for k := s.lowPtr[i]; k < s.lowPtr[i+1]; k++ {
			// M entry is −(β/α)·L_ij.
			acc += invA * s.beta * s.lowVal[k] * dst[s.lowCol[k]]
		}
		dst[i] = acc / (invA*s.diag[i] + s.diag[i])
	}
}

// ApplyN computes dst = (M − A) src = ((1/α)D − (β/α)L − A) src.
func (s *SORSplitting) ApplyN(dst, src []float64) {
	invA := 1 / s.alpha
	for i := range dst {
		acc := invA * s.diag[i] * src[i]
		for k := s.lowPtr[i]; k < s.lowPtr[i+1]; k++ {
			acc -= invA * s.beta * s.lowVal[k] * src[s.lowCol[k]]
		}
		dst[i] = acc
	}
	s.a.AddMulVec(dst, src, -1)
}

// Omega returns D = diag(A).
func (s *SORSplitting) Omega() []float64 { return s.diag }
