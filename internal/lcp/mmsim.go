package lcp

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"mclg/internal/mclgerr"
	"mclg/internal/par"
	"mclg/internal/sparse"
)

// Splitting supplies the pieces of the MMSIM iteration for A = M − N with a
// positive diagonal Ω:
//
//	(M + Ω) s⁽ᵏ⁺¹⁾ = N s⁽ᵏ⁾ + (Ω − A)|s⁽ᵏ⁾| − γ q          (Eq. 3)
//	z⁽ᵏ⁺¹⁾ = (|s⁽ᵏ⁺¹⁾| + s⁽ᵏ⁺¹⁾) / γ                        (Eq. 4)
//
// Implementations provide the two operator applications the iteration needs;
// SolveMOmega must solve against the fixed matrix M + Ω, so implementations
// typically factor it once.
type Splitting interface {
	// SolveMOmega computes dst with (M + Ω) dst = rhs. dst and rhs do not alias.
	SolveMOmega(dst, rhs []float64)
	// ApplyN computes dst = N * src. dst and src do not alias.
	ApplyN(dst, src []float64)
	// Omega returns the positive diagonal Ω as a vector (nil means identity).
	Omega() []float64
}

// Options controls the MMSIM iteration.
type Options struct {
	Gamma   float64 // positive constant γ; 0 means 1
	Eps     float64 // stop when ||z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾||∞ < Eps; 0 means 1e-6
	MaxIter int     // 0 means 10000
	S0      []float64

	// ResidualTol, when positive, additionally requires the LCP residual
	// (Problem.Residual) to drop below it before the iteration is declared
	// converged. The ||Δz|| criterion alone can fire spuriously when the
	// iteration takes small steps far from the solution (e.g. with a badly
	// scaled Ω); the residual check makes termination sound at the cost of
	// one extra matrix-vector product per candidate stop.
	ResidualTol float64

	// CheckEvery strides the residual verification: after a candidate stop
	// (dz < Eps) fails its residual check, the next check runs only once
	// CheckEvery further iterations have passed, instead of on every
	// subsequent candidate. The first candidate stop is always checked, and
	// convergence is never declared without a passing residual check, so
	// striding can only delay the stop — it can never accept an iterate the
	// per-iteration check would reject. 0 derives the stride from the
	// problem structure (the residual-to-iteration cost ratio, a pure
	// function of n and nnz(A)); 1 reproduces the legacy check-every-
	// candidate behavior.
	CheckEvery int
	// OnIter, if non-nil, is invoked after every iteration with the
	// iteration index and the current z-step norm; used by convergence
	// studies and progress reporting.
	OnIter func(k int, dz float64)

	// Workers shards the per-iteration vector kernels (and, when the
	// splitting supports it, the splitting's own solves) across goroutines:
	// 0 means GOMAXPROCS, 1 means serial. Every worker count produces
	// bit-identical iterates — the kernels use fixed chunking with disjoint
	// writes and order-insensitive max reductions (see internal/par).
	Workers int

	// Workspace supplies the solve's iterate buffers so repeated solves
	// allocate nothing per iteration (and nothing per solve beyond the
	// Result struct). Nil borrows a pooled workspace for the duration of
	// the solve; in that case Result.Z is detached (copied) before the
	// workspace returns to the pool. With an explicit Workspace, Result.Z
	// aliases the workspace's z buffer and is valid only until the
	// workspace is reused.
	Workspace *Workspace
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Gamma == 0 {
		out.Gamma = 1
	}
	if out.Eps == 0 {
		out.Eps = 1e-6
	}
	if out.MaxIter == 0 {
		out.MaxIter = 10000
	}
	return out
}

// Result reports the outcome of an MMSIM run.
type Result struct {
	Z          []float64
	Iterations int
	FinalStep  float64 // last ||z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾||∞
	Converged  bool
}

// ErrDiverged is returned when the iteration produced non-finite values. It
// matches mclgerr.ErrDiverged via errors.Is.
var ErrDiverged = fmt.Errorf("lcp: MMSIM diverged (non-finite iterate): %w", mclgerr.ErrDiverged)

// MMSIM runs Algorithm 1 of the paper: the modulus-based matrix splitting
// iteration for LCP(q, A) with the caller-supplied splitting.
func MMSIM(p *Problem, sp Splitting, opts Options) (*Result, error) {
	return MMSIMContext(context.Background(), p, sp, opts)
}

// cancelCheckEvery is how many MMSIM iterations pass between context polls:
// rare enough to stay off the profile, frequent enough that cancellation
// lands within a few milliseconds even on large instances.
const cancelCheckEvery = 16

// WorkerSettable is implemented by splittings whose operator applications
// can shard across goroutines (the legalizer's StructuredSplitting). MMSIM
// forwards its Workers option to such splittings before iterating.
type WorkerSettable interface {
	SetWorkers(workers int)
}

// MMSIMContext is MMSIM with cooperative cancellation: the hot loop polls
// ctx every few iterations and aborts with an mclgerr.ErrCanceled-matching
// error when the context is done.
func MMSIMContext(ctx context.Context, p *Problem, sp Splitting, opts Options) (*Result, error) {
	sv, err := NewSolver(p, sp, opts)
	if err != nil {
		return nil, err
	}
	defer sv.Close()
	return sv.Run(ctx)
}

// Solver is one MMSIM run unrolled into explicit steps: NewSolver binds the
// problem, splitting, and workspace; Step advances one iteration of
// Algorithm 1; Run drives Step to convergence with cancellation and
// divergence checks. The stepping form exists so callers (and the
// steady-state allocation gate) can drive the per-iteration hot path
// directly — at Workers <= 1 a Step performs zero heap allocations.
type Solver struct {
	p     *Problem
	sp    Splitting
	o     Options
	ws    *Workspace
	ownWS bool // workspace borrowed from the pool, returned by Close

	omega []float64
	n     int
	k     int // completed iterations

	// chunks pre-splits A's row range at grain boundaries so the fused
	// rhs pass never re-derives row pointers; the boundaries are a pure
	// function of the matrix structure, keeping every worker count
	// bit-identical (see sparse.RowChunks).
	chunks *sparse.RowChunks
	// needAbs marks that absS does not yet hold |s| for the upcoming
	// iteration: true before the first step (and after reseeding), false
	// afterwards because the fused z-update pass writes |s| as a
	// by-product.
	needAbs bool

	resStride int // iterations between residual checks after a failed one
	lastResK  int // iteration count at the last residual check (0 = never)
}

// NewSolver validates the instance and prepares a solver positioned before
// the first iteration. A non-nil Options.S0 must have exactly the problem
// dimension; a mismatch is rejected with an mclgerr.ErrInvalidInput-matching
// error rather than silently truncating or zero-padding the seed.
func NewSolver(p *Problem, sp Splitting, opts Options) (*Solver, error) {
	o := opts.withDefaults()
	n := p.N()
	if p.A.Rows != n || p.A.Cols != n {
		return nil, fmt.Errorf("lcp: A is %dx%d but q has length %d", p.A.Rows, p.A.Cols, n)
	}
	if o.S0 != nil && len(o.S0) != n {
		return nil, mclgerr.Invalidf("lcp: S0 has length %d, want problem dimension %d", len(o.S0), n)
	}
	if ws, ok := sp.(WorkerSettable); ok {
		ws.SetWorkers(o.Workers)
	}
	sv := &Solver{p: p, sp: sp, o: o, n: n, omega: sp.Omega(), needAbs: true}
	sv.chunks = p.A.RowChunks(0)
	if o.CheckEvery > 0 {
		sv.resStride = o.CheckEvery
	} else {
		sv.resStride = residualStride(p)
	}
	if opts.Workspace != nil {
		sv.ws = opts.Workspace
		sv.ws.Ensure(n)
	} else {
		sv.ws = GetWorkspace(n)
		sv.ownWS = true
	}
	// Pooled (and caller-reused) buffers are dirty: the seed and the dz
	// predecessor are the only state read before being written.
	ws := sv.ws
	for i := range ws.s {
		ws.s[i] = 0
	}
	if o.S0 != nil {
		copy(ws.s, o.S0)
	}
	for i := range ws.zPrev {
		ws.zPrev[i] = 0
	}
	return sv, nil
}

// Close releases a pooled workspace. After Close the solver must not be
// stepped; a Result.Z obtained from an explicit Options.Workspace remains
// owned by that workspace.
func (sv *Solver) Close() {
	if sv.ownWS {
		PutWorkspace(sv.ws)
		sv.ownWS = false
	}
	sv.ws = nil
}

// Iterations returns how many steps have completed.
func (sv *Solver) Iterations() int { return sv.k }

// Z returns the current z iterate (aliasing the workspace).
func (sv *Solver) Z() []float64 { return sv.ws.z }

// Step advances one MMSIM iteration (Eqs. 3–4) and returns the step norm
// ||z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾||∞. It performs no allocations when Workers resolves to
// 1: the serial branch calls the closure-free scalar kernels, while the
// parallel branch shards through internal/par with bit-identical arithmetic.
//
// The iteration body is fused into three sweeps (plus the splitting's own
// solves): the modulus rhs pass folds the Ω|s|, −A|s|, and −γq updates into
// one traversal of A's pre-chunked rows; the z pass folds the modulus
// back-transform, the finiteness scan, the ‖Δz‖∞ reduction, and the capture
// of |s| for the NEXT iteration's rhs pass into one traversal; and the
// zPrev bookkeeping is a buffer swap instead of a copy. Every per-element
// operation keeps the unfused sequence's order, so iterates are
// bit-identical to stepUnfused (pinned by TestFusedStepBitIdentical).
func (sv *Solver) Step() (float64, error) {
	ws, o := sv.ws, &sv.o
	workers := o.Workers
	if sv.needAbs {
		// First iteration (or fresh seed): |s| has not been captured by a
		// previous fused z pass yet.
		sparse.AbsP(workers, ws.absS, ws.s)
		sv.needAbs = false
	}
	// rhs = N s + Ω|s| − A|s| − γ q
	sv.sp.ApplyN(ws.rhs, ws.s)
	sv.p.A.FusedModulusRHS(workers, sv.chunks, ws.rhs, sv.omega, ws.absS, sv.p.Q, o.Gamma)

	sv.sp.SolveMOmega(ws.sNext, ws.rhs)
	ws.s, ws.sNext = ws.sNext, ws.s

	// Ping-pong z/zPrev: the previous iterate stays in place and the new one
	// is written into the other buffer, replacing the full-length copy the
	// unfused step paid. Contents after the swap are identical to
	// copy-then-overwrite.
	zNew, zOld := ws.z, ws.zPrev
	if sv.k > 0 {
		zNew, zOld = ws.zPrev, ws.z
	}
	dz, ok := sparse.FusedZUpdate(workers, zNew, zOld, ws.s, ws.absS, o.Gamma)
	if sv.k > 0 {
		ws.z, ws.zPrev = zNew, zOld
	}
	if !ok {
		return 0, ErrDiverged
	}
	sv.k++
	return dz, nil
}

// stepUnfused is the pre-fusion iteration body, kept verbatim as the
// executable specification of one MMSIM step: the property tests drive a
// solver through it and require the fused Step to reproduce the z history
// bit for bit at every worker count. It maintains the same workspace
// invariants as Step (including the |s| capture for the fused rhs pass, so
// the two can even be interleaved on one solver).
func (sv *Solver) stepUnfused() (float64, error) {
	ws, o, n := sv.ws, &sv.o, sv.n
	workers := o.Workers
	serial := par.Resolve(workers) <= 1
	if sv.k > 0 {
		copy(ws.zPrev, ws.z)
	}

	if serial {
		sparse.Abs(ws.absS, ws.s)
	} else {
		sparse.AbsP(workers, ws.absS, ws.s)
	}
	// rhs = N s + Ω|s| − A|s| − γ q
	sv.sp.ApplyN(ws.rhs, ws.s)
	if sv.omega == nil {
		if serial {
			sparse.Axpy(ws.rhs, 1, ws.absS)
		} else {
			sparse.AxpyP(workers, ws.rhs, 1, ws.absS)
		}
	} else if serial {
		rhs, omega, absS := ws.rhs, sv.omega, ws.absS
		for i := 0; i < n; i++ {
			rhs[i] += omega[i] * absS[i]
		}
	} else {
		rhs, omega, absS := ws.rhs, sv.omega, ws.absS
		par.For(workers, n, par.GrainVec, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rhs[i] += omega[i] * absS[i]
			}
		})
	}
	if serial {
		sv.p.A.AddMulVec(ws.rhs, ws.absS, -1)
		sparse.Axpy(ws.rhs, -o.Gamma, sv.p.Q)
	} else {
		sv.p.A.AddMulVecP(workers, ws.rhs, ws.absS, -1)
		sparse.AxpyP(workers, ws.rhs, -o.Gamma, sv.p.Q)
	}

	sv.sp.SolveMOmega(ws.sNext, ws.rhs)
	ws.s, ws.sNext = ws.sNext, ws.s

	gamma := o.Gamma
	if serial {
		z, s := ws.z, ws.s
		for i := 0; i < n; i++ {
			z[i] = (math.Abs(s[i]) + s[i]) / gamma
		}
	} else {
		z, s := ws.z, ws.s
		par.For(workers, n, par.GrainVec, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = (math.Abs(s[i]) + s[i]) / gamma
			}
		})
	}
	// Maintain Step's workspace invariant: absS holds |s| of the new
	// iterate so a following fused Step needs no standalone Abs pass.
	if serial {
		sparse.Abs(ws.absS, ws.s)
	} else {
		sparse.AbsP(workers, ws.absS, ws.s)
	}
	sv.needAbs = false
	if !finite(ws.z) {
		return 0, ErrDiverged
	}
	var dz float64
	if serial {
		dz = sparse.DiffNormInf(ws.z, ws.zPrev)
	} else {
		dz = sparse.DiffNormInfP(workers, ws.z, ws.zPrev)
	}
	sv.k++
	return dz, nil
}

// residualStride derives the K between residual verifications from the
// problem structure alone: one residual costs about one SpMV over A plus a
// 3n scan, an iteration costs about two SpMV-equivalents plus the splitting
// solves and three vector passes. K is chosen so strided checking adds at
// most ~25% to the convergence tail (K ≈ ⌈4·resCost/iterCost⌉ + 1) and is
// clamped to [2, 8]. Deterministic in (n, nnz), so every run — and every
// worker count — strides identically.
func residualStride(p *Problem) int {
	n := p.N()
	if n == 0 {
		return 2
	}
	nnz := p.A.NNZ()
	resCost := nnz + 3*n
	iterCost := 3*nnz + 10*n
	k := 1 + (4*resCost+iterCost-1)/iterCost
	if k < 2 {
		k = 2
	}
	if k > 8 {
		k = 8
	}
	return k
}

// pprof labels attributing CPU samples to the solve stages (goroutines
// spawned by internal/par inherit the caller's label set, so the fused
// kernels' shards are attributed too). Visible via mclgd -pprof.
var (
	labelsIterate  = pprof.Labels("mclg_stage", "mmsim-fused")
	labelsResidual = pprof.Labels("mclg_stage", "mmsim-residual")
)

// Run drives Step until convergence, divergence, iteration exhaustion, or
// cancellation, reproducing the classic MMSIMContext loop bit for bit. When
// the solver owns a pooled workspace, Result.Z is detached from it before
// the workspace can return to the pool; with an explicit Options.Workspace,
// Result.Z aliases the workspace.
//
// Residual verification is strided (Options.CheckEvery): the first candidate
// stop always runs the check, but after a failed check the next one waits
// for resStride further iterations instead of firing on every candidate in
// the convergence tail. Convergence is never declared without a passing
// residual check when ResidualTol > 0, so the stride can delay termination
// but never weaken it.
func (sv *Solver) Run(ctx context.Context) (res *Result, err error) {
	pprof.Do(ctx, labelsIterate, func(ctx context.Context) {
		res, err = sv.run(ctx)
	})
	return res, err
}

func (sv *Solver) run(ctx context.Context) (*Result, error) {
	o := &sv.o
	res := &Result{}
	for sv.k < o.MaxIter {
		if sv.k%cancelCheckEvery == 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, fmt.Errorf("lcp: MMSIM aborted at iteration %d: %w", sv.k, err)
			}
		}
		k := sv.k
		dz, err := sv.Step()
		if err != nil {
			return nil, err
		}
		res.Iterations = sv.k
		res.FinalStep = dz
		if o.OnIter != nil {
			o.OnIter(k, dz)
		}
		if k > 0 && dz < o.Eps {
			if o.ResidualTol <= 0 {
				res.Converged = true
				break
			}
			if sv.lastResK == 0 || sv.k-sv.lastResK >= sv.resStride {
				sv.lastResK = sv.k
				var rv float64
				pprof.Do(ctx, labelsResidual, func(context.Context) {
					rv = sv.p.ResidualInto(sv.ws.w, sv.ws.z)
				})
				if rv < o.ResidualTol {
					res.Converged = true
					break
				}
			}
		}
	}
	if sv.ownWS {
		res.Z = append([]float64(nil), sv.ws.z...)
	} else {
		res.Z = sv.ws.z
	}
	return res, nil
}

func finite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// DiagSplitting is the textbook splitting M = (1/α)·diag(A), N = M − A,
// with Ω = diag(A). For strictly diagonally dominant A (an H₊-matrix) and
// α in (0, 1] the modulus iteration contracts, which makes this the
// reference splitting in tests; the legalizer uses the structured block
// splitting in internal/core instead.
type DiagSplitting struct {
	a     *sparse.CSR
	alpha float64
	diag  []float64 // diag(A) = Ω
	inv   []float64 // 1 / (M_ii + Ω_ii)
}

// NewDiagSplitting builds the diagonal splitting for A with relaxation
// parameter alpha in (0, 2). A must have positive diagonal entries.
func NewDiagSplitting(a *sparse.CSR, alpha float64) (*DiagSplitting, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("lcp: alpha must be positive, got %g", alpha)
	}
	n := a.Rows
	d := &DiagSplitting{a: a, alpha: alpha, diag: make([]float64, n), inv: make([]float64, n)}
	for i := 0; i < n; i++ {
		aii := a.At(i, i)
		if aii <= 0 {
			return nil, fmt.Errorf("lcp: DiagSplitting requires positive diagonal, A[%d][%d] = %g", i, i, aii)
		}
		d.diag[i] = aii
		d.inv[i] = 1 / (aii/alpha + aii)
	}
	return d, nil
}

// SolveMOmega solves ((1/α)diag(A) + Ω) dst = rhs with Ω = diag(A).
func (d *DiagSplitting) SolveMOmega(dst, rhs []float64) {
	for i := range dst {
		dst[i] = rhs[i] * d.inv[i]
	}
}

// ApplyN computes dst = ((1/α)diag(A) − A) src.
func (d *DiagSplitting) ApplyN(dst, src []float64) {
	for i := range dst {
		dst[i] = d.diag[i] / d.alpha * src[i]
	}
	d.a.AddMulVec(dst, src, -1)
}

// Omega returns diag(A).
func (d *DiagSplitting) Omega() []float64 { return d.diag }
