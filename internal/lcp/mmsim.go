package lcp

import (
	"context"
	"fmt"
	"math"

	"mclg/internal/mclgerr"
	"mclg/internal/par"
	"mclg/internal/sparse"
)

// Splitting supplies the pieces of the MMSIM iteration for A = M − N with a
// positive diagonal Ω:
//
//	(M + Ω) s⁽ᵏ⁺¹⁾ = N s⁽ᵏ⁾ + (Ω − A)|s⁽ᵏ⁾| − γ q          (Eq. 3)
//	z⁽ᵏ⁺¹⁾ = (|s⁽ᵏ⁺¹⁾| + s⁽ᵏ⁺¹⁾) / γ                        (Eq. 4)
//
// Implementations provide the two operator applications the iteration needs;
// SolveMOmega must solve against the fixed matrix M + Ω, so implementations
// typically factor it once.
type Splitting interface {
	// SolveMOmega computes dst with (M + Ω) dst = rhs. dst and rhs do not alias.
	SolveMOmega(dst, rhs []float64)
	// ApplyN computes dst = N * src. dst and src do not alias.
	ApplyN(dst, src []float64)
	// Omega returns the positive diagonal Ω as a vector (nil means identity).
	Omega() []float64
}

// Options controls the MMSIM iteration.
type Options struct {
	Gamma   float64 // positive constant γ; 0 means 1
	Eps     float64 // stop when ||z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾||∞ < Eps; 0 means 1e-6
	MaxIter int     // 0 means 10000
	S0      []float64

	// ResidualTol, when positive, additionally requires the LCP residual
	// (Problem.Residual) to drop below it before the iteration is declared
	// converged. The ||Δz|| criterion alone can fire spuriously when the
	// iteration takes small steps far from the solution (e.g. with a badly
	// scaled Ω); the residual check makes termination sound at the cost of
	// one extra matrix-vector product per candidate stop.
	ResidualTol float64
	// OnIter, if non-nil, is invoked after every iteration with the
	// iteration index and the current z-step norm; used by convergence
	// studies and progress reporting.
	OnIter func(k int, dz float64)

	// Workers shards the per-iteration vector kernels (and, when the
	// splitting supports it, the splitting's own solves) across goroutines:
	// 0 means GOMAXPROCS, 1 means serial. Every worker count produces
	// bit-identical iterates — the kernels use fixed chunking with disjoint
	// writes and order-insensitive max reductions (see internal/par).
	Workers int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Gamma == 0 {
		out.Gamma = 1
	}
	if out.Eps == 0 {
		out.Eps = 1e-6
	}
	if out.MaxIter == 0 {
		out.MaxIter = 10000
	}
	return out
}

// Result reports the outcome of an MMSIM run.
type Result struct {
	Z          []float64
	Iterations int
	FinalStep  float64 // last ||z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾||∞
	Converged  bool
}

// ErrDiverged is returned when the iteration produced non-finite values. It
// matches mclgerr.ErrDiverged via errors.Is.
var ErrDiverged = fmt.Errorf("lcp: MMSIM diverged (non-finite iterate): %w", mclgerr.ErrDiverged)

// MMSIM runs Algorithm 1 of the paper: the modulus-based matrix splitting
// iteration for LCP(q, A) with the caller-supplied splitting.
func MMSIM(p *Problem, sp Splitting, opts Options) (*Result, error) {
	return MMSIMContext(context.Background(), p, sp, opts)
}

// cancelCheckEvery is how many MMSIM iterations pass between context polls:
// rare enough to stay off the profile, frequent enough that cancellation
// lands within a few milliseconds even on large instances.
const cancelCheckEvery = 16

// WorkerSettable is implemented by splittings whose operator applications
// can shard across goroutines (the legalizer's StructuredSplitting). MMSIM
// forwards its Workers option to such splittings before iterating.
type WorkerSettable interface {
	SetWorkers(workers int)
}

// MMSIMContext is MMSIM with cooperative cancellation: the hot loop polls
// ctx every few iterations and aborts with an mclgerr.ErrCanceled-matching
// error when the context is done.
func MMSIMContext(ctx context.Context, p *Problem, sp Splitting, opts Options) (*Result, error) {
	o := opts.withDefaults()
	n := p.N()
	if p.A.Rows != n || p.A.Cols != n {
		return nil, fmt.Errorf("lcp: A is %dx%d but q has length %d", p.A.Rows, p.A.Cols, n)
	}
	workers := o.Workers
	if ws, ok := sp.(WorkerSettable); ok {
		ws.SetWorkers(workers)
	}

	s := make([]float64, n)
	if o.S0 != nil {
		copy(s, o.S0)
	}
	sNext := make([]float64, n)
	absS := make([]float64, n)
	rhs := make([]float64, n)
	z := make([]float64, n)
	zPrev := make([]float64, n)
	omega := sp.Omega()

	res := &Result{}
	for k := 0; k < o.MaxIter; k++ {
		if k%cancelCheckEvery == 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, fmt.Errorf("lcp: MMSIM aborted at iteration %d: %w", k, err)
			}
		}
		sparse.AbsP(workers, absS, s)
		// rhs = N s + Ω|s| − A|s| − γ q
		sp.ApplyN(rhs, s)
		if omega == nil {
			sparse.AxpyP(workers, rhs, 1, absS)
		} else {
			par.For(workers, n, par.GrainVec, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					rhs[i] += omega[i] * absS[i]
				}
			})
		}
		p.A.AddMulVecP(workers, rhs, absS, -1)
		sparse.AxpyP(workers, rhs, -o.Gamma, p.Q)

		sp.SolveMOmega(sNext, rhs)
		s, sNext = sNext, s

		gamma := o.Gamma
		par.For(workers, n, par.GrainVec, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = (math.Abs(s[i]) + s[i]) / gamma
			}
		})
		if !finite(z) {
			return nil, ErrDiverged
		}
		dz := sparse.DiffNormInfP(workers, z, zPrev)
		res.Iterations = k + 1
		res.FinalStep = dz
		if o.OnIter != nil {
			o.OnIter(k, dz)
		}
		if k > 0 && dz < o.Eps {
			if o.ResidualTol <= 0 || p.Residual(z) < o.ResidualTol {
				res.Converged = true
				break
			}
		}
		copy(zPrev, z)
	}
	res.Z = z
	return res, nil
}

func finite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// DiagSplitting is the textbook splitting M = (1/α)·diag(A), N = M − A,
// with Ω = diag(A). For strictly diagonally dominant A (an H₊-matrix) and
// α in (0, 1] the modulus iteration contracts, which makes this the
// reference splitting in tests; the legalizer uses the structured block
// splitting in internal/core instead.
type DiagSplitting struct {
	a     *sparse.CSR
	alpha float64
	diag  []float64 // diag(A) = Ω
	inv   []float64 // 1 / (M_ii + Ω_ii)
}

// NewDiagSplitting builds the diagonal splitting for A with relaxation
// parameter alpha in (0, 2). A must have positive diagonal entries.
func NewDiagSplitting(a *sparse.CSR, alpha float64) (*DiagSplitting, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("lcp: alpha must be positive, got %g", alpha)
	}
	n := a.Rows
	d := &DiagSplitting{a: a, alpha: alpha, diag: make([]float64, n), inv: make([]float64, n)}
	for i := 0; i < n; i++ {
		aii := a.At(i, i)
		if aii <= 0 {
			return nil, fmt.Errorf("lcp: DiagSplitting requires positive diagonal, A[%d][%d] = %g", i, i, aii)
		}
		d.diag[i] = aii
		d.inv[i] = 1 / (aii/alpha + aii)
	}
	return d, nil
}

// SolveMOmega solves ((1/α)diag(A) + Ω) dst = rhs with Ω = diag(A).
func (d *DiagSplitting) SolveMOmega(dst, rhs []float64) {
	for i := range dst {
		dst[i] = rhs[i] * d.inv[i]
	}
}

// ApplyN computes dst = ((1/α)diag(A) − A) src.
func (d *DiagSplitting) ApplyN(dst, src []float64) {
	for i := range dst {
		dst[i] = d.diag[i] / d.alpha * src[i]
	}
	d.a.AddMulVec(dst, src, -1)
}

// Omega returns diag(A).
func (d *DiagSplitting) Omega() []float64 { return d.diag }
