package lcp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mclg/internal/mclgerr"
	"mclg/internal/sparse"
)

func TestMMSIMS0LengthValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	p, _ := spdProblem(rng, 5)
	sp, err := NewDiagSplitting(p.A, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 6, 50} {
		_, err := MMSIM(p, sp, Options{S0: make([]float64, n)})
		if err == nil {
			t.Fatalf("S0 of length %d accepted for a 5-dim problem", n)
		}
		if !errors.Is(err, mclgerr.ErrInvalidInput) {
			t.Errorf("S0 length %d: error %v does not match ErrInvalidInput", n, err)
		}
	}
	// Exact length and nil both remain accepted.
	if _, err := MMSIM(p, sp, Options{S0: make([]float64, 5)}); err != nil {
		t.Errorf("exact-length S0 rejected: %v", err)
	}
	if _, err := MMSIM(p, sp, Options{}); err != nil {
		t.Errorf("nil S0 rejected: %v", err)
	}
}

// TestWorkspaceReuseMatchesPooled pins that an explicit, reused workspace
// changes nothing about the iterates: the same problem solved through one
// workspace twice in a row — and through the pool — yields bit-identical z,
// and a workspace sized for a larger instance serves a smaller one (the
// Ensure shrink path) without disturbing the result.
func TestWorkspaceReuseMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	big, _ := spdProblem(rng, 24)
	small, _ := spdProblem(rng, 7)
	opts := Options{Eps: 1e-10, MaxIter: 100000}

	solve := func(p *Problem, ws *Workspace) *Result {
		sp, err := NewDiagSplitting(p.A, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Workspace = ws
		res, err := MMSIM(p, sp, o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		return res
	}

	ws := NewWorkspace(24)
	for name, p := range map[string]*Problem{"big": big, "small": small} {
		pooled := solve(p, nil)
		first := append([]float64(nil), solve(p, ws).Z...)
		second := solve(p, ws) // dirty buffers from the previous run
		if len(first) != p.N() || len(second.Z) != p.N() {
			t.Fatalf("%s: Z length %d/%d, want %d", name, len(first), len(second.Z), p.N())
		}
		for i := range first {
			if first[i] != pooled.Z[i] || second.Z[i] != pooled.Z[i] {
				t.Fatalf("%s: z[%d] pooled %g, workspace %g / %g — reuse changed the result",
					name, i, pooled.Z[i], first[i], second.Z[i])
			}
		}
	}
}

// TestResultZDetachedFromPool pins the ownership contract: a pooled solve's
// Result.Z must survive the workspace returning to the pool and being
// reused by a later solve.
func TestResultZDetachedFromPool(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	p, _ := spdProblem(rng, 12)
	sp, err := NewDiagSplitting(p.A, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MMSIM(p, sp, Options{Eps: 1e-10, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), res.Z...)
	// Churn the pool with solves of a different problem.
	q, _ := spdProblem(rng, 12)
	spq, _ := NewDiagSplitting(q.A, 0.9)
	for i := 0; i < 4; i++ {
		if _, err := MMSIM(q, spq, Options{Eps: 1e-10, MaxIter: 100000}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if res.Z[i] != want[i] {
			t.Fatalf("Result.Z[%d] changed from %g to %g after pool reuse", i, want[i], res.Z[i])
		}
	}
}

func TestWarmSeedExactSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(12)
		p, _ := spdProblem(rng, n)
		sp, err := NewDiagSplitting(p.A, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Eps: 1e-12, MaxIter: 100000}
		cold, err := MMSIM(p, sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !cold.Converged {
			t.Fatal("cold solve did not converge")
		}
		w := p.W(cold.Z)
		seed := make([]float64, n)
		WarmSeed(seed, cold.Z, w, opts.Gamma, sp.Omega())
		warmOpts := opts
		warmOpts.S0 = seed
		warm, err := MMSIM(p, sp, warmOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Converged {
			t.Fatal("warm solve did not converge")
		}
		if cold.Iterations > 10 && warm.Iterations*2 > cold.Iterations {
			t.Errorf("trial %d: warm restart from the exact solution took %d iterations vs %d cold",
				trial, warm.Iterations, cold.Iterations)
		}
		for i := range cold.Z {
			if math.Abs(warm.Z[i]-cold.Z[i]) > 1e-8 {
				t.Errorf("trial %d: z[%d] warm %g vs cold %g", trial, i, warm.Z[i], cold.Z[i])
			}
		}
	}
}

func TestWarmSeedTransform(t *testing.T) {
	gamma := 2.0
	z := []float64{3, 0, -1, math.NaN()}
	w := []float64{0, 4, math.NaN(), -2}
	dst := make([]float64, 4)

	// Identity Ω: z_i > 0 ⇒ s = γz/2; w_i > 0 ⇒ s = −γw/2; negative and
	// NaN components clamp to zero.
	WarmSeed(dst, z, w, gamma, nil)
	want := []float64{3, -4, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("identity omega: s[%d] = %g, want %g", i, dst[i], want[i])
		}
	}

	// Diagonal Ω scales only the w term: s = γ(z − w/ω)/2.
	WarmSeed(dst, z, w, gamma, []float64{2, 2, 2, 2})
	want = []float64{3, -2, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("omega=2: s[%d] = %g, want %g", i, dst[i], want[i])
		}
	}

	// gamma 0 means 1, matching Options.withDefaults.
	WarmSeed(dst[:1], []float64{5}, []float64{0}, 0, nil)
	if dst[0] != 2.5 {
		t.Errorf("gamma 0: s[0] = %g, want 2.5", dst[0])
	}
}

// TestSolverStepZeroAllocs is the steady-state allocation gate: after
// NewSolver binds an explicit workspace, each serial MMSIM iteration must
// perform zero heap allocations.
func TestSolverStepZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	p, _ := spdProblem(rng, 64)
	sp, err := NewDiagSplitting(p.A, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace(p.N())
	sv, err := NewSolver(p, sp, Options{Workers: 1, Workspace: ws, MaxIter: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	// Warm up once so lazy runtime state (e.g. stack growth) settles.
	if _, err := sv.Step(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sv.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MMSIM Step allocated %.1f objects per iteration, want 0", allocs)
	}
}

// TestSolverRunMatchesMMSIM pins that the stepping API and the one-shot
// entry point walk the same iterate sequence.
func TestSolverRunMatchesMMSIM(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	p, _ := spdProblem(rng, 16)
	sp, err := NewDiagSplitting(p.A, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Eps: 1e-10, MaxIter: 100000}
	whole, err := MMSIM(p, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Workspace = NewWorkspace(p.N())
	sv, err := NewSolver(p, sp, o)
	if err != nil {
		t.Fatal(err)
	}
	for sv.Iterations() < whole.Iterations {
		if _, err := sv.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, z := range sv.Z() {
		if z != whole.Z[i] {
			t.Fatalf("z[%d] stepped %g vs run %g", i, z, whole.Z[i])
		}
	}
}

func TestWorkspaceEnsure(t *testing.T) {
	ws := NewWorkspace(10)
	s := &ws.s[0]
	ws.Ensure(4)
	if len(ws.z) != 4 || len(ws.w) != 4 {
		t.Fatalf("shrink: lengths %d/%d, want 4", len(ws.z), len(ws.w))
	}
	if &ws.s[0] != s {
		t.Error("shrink reallocated the workspace")
	}
	ws.Ensure(10)
	if &ws.s[0] != s {
		t.Error("regrow within capacity reallocated the workspace")
	}
	ws.Ensure(11)
	if len(ws.sNext) != 11 || len(ws.zPrev) != 11 {
		t.Fatalf("grow: lengths %d/%d, want 11", len(ws.sNext), len(ws.zPrev))
	}
	var nilWS *Workspace
	_ = nilWS // PutWorkspace tolerates nil
	PutWorkspace(nil)
}

func TestZeroDimensionSolve(t *testing.T) {
	p := &Problem{A: &sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}, Q: nil}
	sp, err := NewDiagSplitting(p.A, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MMSIM(p, sp, Options{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Z) != 0 {
		t.Errorf("zero-dim Z has length %d", len(res.Z))
	}
}
