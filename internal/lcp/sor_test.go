package lcp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSORMatchesLemke(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		p, ad := spdProblem(rng, n)
		sp, err := NewSORSplitting(p.A, 1, 1) // modulus Gauss–Seidel
		if err != nil {
			t.Fatal(err)
		}
		res, err := MMSIM(p, sp, Options{Eps: 1e-12, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: MSOR did not converge", trial)
		}
		zl, err := Lemke(ad, p.Q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range zl {
			if math.Abs(zl[i]-res.Z[i]) > 1e-5 {
				t.Errorf("trial %d: z[%d] MSOR %g vs Lemke %g", trial, i, res.Z[i], zl[i])
			}
		}
	}
}

func TestSORComparableToJacobi(t *testing.T) {
	// On strictly diagonally dominant systems the diagonal already carries
	// most of the matrix, so the Gauss–Seidel modulus variant lands in the
	// same iteration-count ballpark as the Jacobi-like splitting (Bai's
	// MSOR advantage shows on weaker-diagonal problems). Assert both
	// converge and MSOR stays within 2× of Jacobi.
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 10; trial++ {
		p, _ := spdProblem(rng, 20)
		jac, err := NewDiagSplitting(p.A, 1)
		if err != nil {
			t.Fatal(err)
		}
		resJ, err := MMSIM(p, jac, Options{Eps: 1e-10, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		sor, err := NewSORSplitting(p.A, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		resS, err := MMSIM(p, sor, Options{Eps: 1e-10, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !resJ.Converged || !resS.Converged {
			t.Fatalf("trial %d: convergence failure", trial)
		}
		if resS.Iterations > 2*resJ.Iterations {
			t.Errorf("trial %d: MSOR %d iterations vs Jacobi %d",
				trial, resS.Iterations, resJ.Iterations)
		}
	}
}

func TestSORValidation(t *testing.T) {
	p, _ := spdProblem(rand.New(rand.NewSource(227)), 4)
	if _, err := NewSORSplitting(p.A, 0, 1); err == nil {
		t.Error("alpha = 0 accepted")
	}
	if _, err := NewSORSplitting(p.A, 1, -0.5); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestSORLowerTriangleExtraction(t *testing.T) {
	// Hand-checkable 3x3: verify SolveMOmega against a direct computation.
	p, _ := spdProblem(rand.New(rand.NewSource(229)), 3)
	sp, err := NewSORSplitting(p.A, 0.8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, -2, 3}
	dst := make([]float64, 3)
	sp.SolveMOmega(dst, rhs)
	// Direct forward substitution on M+Ω with M = (1/α)(D − βL), Ω = D.
	a := p.A.Dense()
	alpha, beta := 0.8, 0.6
	want := make([]float64, 3)
	for i := 0; i < 3; i++ {
		acc := rhs[i]
		for j := 0; j < i; j++ {
			acc += (beta / alpha) * a[i][j] * want[j]
		}
		want[i] = acc / (a[i][i]/alpha + a[i][i])
	}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}
