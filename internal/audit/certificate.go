package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Certificate is the machine-readable outcome of an audit run. All residuals
// are scale-normalized (divided by Scale = max(1, ‖q‖∞)); SubcellResidual is
// in raw database units. The field set and JSON encoding are stable: Hash is
// a SHA-256 over the canonical JSON with Hash itself blanked, so two runs
// that certify the same result produce byte-identical sealed certificates.
type Certificate struct {
	Design  string `json:"design"`
	Cells   int    `json:"cells"`
	Movable int    `json:"movable"`
	Vars    int    `json:"vars"`
	Cons    int    `json:"cons"`

	// Relaxed-problem optimality (Theorem 2).
	Scale           float64 `json:"scale"`
	Complementarity float64 `json:"complementarity"`
	PrimalInfeas    float64 `json:"primal_infeas"`
	DualInfeas      float64 `json:"dual_infeas"`
	SubcellResidual float64 `json:"subcell_residual"`
	BoundaryCells   int     `json:"boundary_cells"`
	Iterations      int     `json:"iterations"`
	Converged       bool    `json:"converged"`
	Optimal         bool    `json:"optimal"`
	// TheoremTwo reports the paper's precondition for the relaxed optimum
	// to be exact for the original problem: no cell crosses the right
	// boundary (or the exact boundary constraints were in the LCP).
	TheoremTwo bool `json:"theorem_two"`

	// Measured optimality gap — the headline number. RelaxedObjective is
	// the relaxed problem's objective at the tight audit solve, a lower
	// bound on any placement in the order-preserving class Theorem 2
	// certifies; PlacementObjective is the same objective evaluated at the
	// committed production placement. Gap is their normalized difference
	// (placement − relaxed) / placement, clamped to [0, 1]: zero means the
	// production placement provably attains the relaxed optimum, a positive
	// value measures exactly how much the site snapping and repair passes
	// gave up. (A repair pass that reorders cells can leave the
	// order-preserving class; the clamp keeps the gap a conservative
	// distance-to-bound in that case.)
	RelaxedObjective   float64 `json:"relaxed_objective"`
	PlacementObjective float64 `json:"placement_objective"`
	Gap                float64 `json:"gap"`

	// Differential cross-checks.
	Reference *Reference `json:"reference,omitempty"`
	Baselines []Baseline `json:"baselines,omitempty"`

	// Production placement verdict.
	Legal          bool    `json:"legal"`
	ViolationCount int     `json:"violations"`
	Displacement   float64 `json:"displacement_sites"`
	PosHash        string  `json:"pos_hash"`

	Pass bool   `json:"pass"`
	Hash string `json:"hash,omitempty"`
}

// Reference records the differential cross-check of the MMSIM relaxed
// solution against the independent reference solve.
type Reference struct {
	Method string  `json:"method"` // "dense-qp" or "dual-pgs"
	MaxDX  float64 `json:"max_dx"` // max_v |x_mmsim − x_ref| in DBU
	Tol    float64 `json:"tol"`
	Iters  int     `json:"iters"`
	Pass   bool    `json:"pass"`
	Err    string  `json:"err,omitempty"`
}

// Baseline records a quality-sanity comparison against one baseline
// legalizer. Ratio is ours/theirs total displacement (lower is better for
// us); Err marks baselines that could not run on this design.
type Baseline struct {
	Name         string  `json:"name"`
	Displacement float64 `json:"displacement_sites"`
	Ratio        float64 `json:"ratio"`
	Legal        bool    `json:"legal"`
	Pass         bool    `json:"pass"`
	Err          string  `json:"err,omitempty"`
}

// Seal computes and stores the certificate hash. Any later mutation
// invalidates it (Verify detects this).
func (c *Certificate) Seal() error {
	c.Hash = ""
	h, err := c.digest()
	if err != nil {
		return err
	}
	c.Hash = h
	return nil
}

// Verify recomputes the digest and reports whether the stored hash matches.
func (c *Certificate) Verify() bool {
	stored := c.Hash
	if stored == "" {
		return false
	}
	c.Hash = ""
	h, err := c.digest()
	c.Hash = stored
	return err == nil && h == stored
}

func (c *Certificate) digest() (string, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("audit: hashing certificate: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Summary renders the one-line human-readable verdict. The measured gap
// leads: it replaces the old binary optimal/theorem-two verdict as the
// headline number.
func (c *Certificate) Summary() string {
	verdict := "FAIL"
	if c.Pass {
		verdict = "PASS"
	}
	s := fmt.Sprintf("audit %s: %s — gap=%.3g legal=%v optimal=%v compl=%.3g primal=%.3g dual=%.3g subcell=%.3g boundary=%d",
		c.Design, verdict, c.Gap, c.Legal, c.Optimal,
		c.Complementarity, c.PrimalInfeas, c.DualInfeas, c.SubcellResidual, c.BoundaryCells)
	if c.Reference != nil {
		if c.Reference.Err != "" {
			s += fmt.Sprintf(" ref=%s(err)", c.Reference.Method)
		} else {
			s += fmt.Sprintf(" ref=%s|Δx|=%.3g", c.Reference.Method, c.Reference.MaxDX)
		}
	}
	return s
}
