package audit

import (
	"context"
	"math"
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

func genDesigns(t testing.TB, specs []gen.Spec) []*design.Design {
	t.Helper()
	out := make([]*design.Design, 0, len(specs))
	for _, s := range specs {
		d, err := gen.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

var metamorphicSpecs = []gen.Spec{
	{Name: "meta-single", SingleCells: 150, Density: 0.6, Seed: 7},
	{Name: "meta-mixed", SingleCells: 120, DoubleCells: 20, TripleCells: 10, FixedMacros: 2, Density: 0.7, Seed: 11},
	{Name: "meta-dense", SingleCells: 200, Density: 0.85, Seed: 13},
	{Name: "meta-double", SingleCells: 80, DoubleCells: 40, Density: 0.65, Seed: 17},
}

// TestMetamorphicSuite is the CI smoke of the fuzz harness: the standard
// transform battery on a spread of design shapes must produce zero
// invariance violations.
func TestMetamorphicSuite(t *testing.T) {
	ds := genDesigns(t, metamorphicSpecs)
	rep, err := Metamorphic(context.Background(), ds, DefaultTransforms(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		for _, v := range rep.Violations {
			t.Errorf("invariance violation: %s", v)
		}
	}
	if want := len(metamorphicSpecs) * (1 + len(DefaultTransforms())); rep.Runs != want {
		t.Errorf("runs = %d, want %d", rep.Runs, want)
	}
}

// The transforms themselves must preserve the instance: same cell count,
// valid geometry, and — since global HPWL is translation- and
// mirror-invariant and blind to numbering — identical global wirelength.
func TestTransformsPreserveInstance(t *testing.T) {
	d := genDesigns(t, metamorphicSpecs[1:2])[0]
	base := metrics.HPWLGlobal(d)
	for _, tr := range DefaultTransforms() {
		td := tr.Apply(d.Clone())
		if err := td.Validate(); err != nil {
			t.Errorf("%s: transformed design invalid: %v", tr.Name, err)
			continue
		}
		if len(td.Cells) != len(d.Cells) || len(td.Nets) != len(d.Nets) {
			t.Errorf("%s: cell/net count changed", tr.Name)
		}
		got := metrics.HPWLGlobal(td)
		if math.Abs(got-base) > 1e-6*math.Max(1, base) {
			t.Errorf("%s: global HPWL changed: %g vs %g", tr.Name, got, base)
		}
	}
}

// A far translate must keep the placement legal after legalization — the
// scale-aware alignment tolerance regression at pipeline level (with an
// absolute eps the checker flags every cell of a 1e9-site-offset core).
func TestTranslateFarOriginPipeline(t *testing.T) {
	d := genDesigns(t, metamorphicSpecs[0:1])[0]
	td := Translate(1_000_000_000, 0).Apply(d)
	td.ResetToGlobal()
	if _, err := core.New(core.DefaultOptions()).Legalize(td); err != nil {
		t.Fatal(err)
	}
	rep := design.CheckLegal(td)
	if !rep.Legal() {
		t.Errorf("far-origin pipeline result flagged illegal: %v", rep)
	}
}

// PermuteCells must be an involution-compatible relabeling: applying it and
// mapping names back reproduces the identical cell set.
func TestPermuteCellsIsRelabeling(t *testing.T) {
	d := genDesigns(t, metamorphicSpecs[3:4])[0]
	td := PermuteCells(99).Apply(d.Clone())
	byName := map[string]*design.Cell{}
	for _, c := range td.Cells {
		if _, dup := byName[c.Name]; dup {
			t.Fatalf("duplicate name %s after permute", c.Name)
		}
		byName[c.Name] = c
	}
	for _, c := range d.Cells {
		tc, ok := byName[c.Name]
		if !ok {
			t.Fatalf("cell %s lost in permutation", c.Name)
		}
		if tc.GX != c.GX || tc.GY != c.GY || tc.W != c.W || tc.H != c.H ||
			tc.Fixed != c.Fixed || tc.BottomRail != c.BottomRail {
			t.Errorf("cell %s changed under permutation", c.Name)
		}
	}
}

// FuzzMetamorphic drives the invariance harness from fuzzed design specs:
// any corpus entry that legalizes must keep its legality verdict and
// relaxed objective invariant under the standard transforms. Run in CI with
// a short -fuzztime budget.
func FuzzMetamorphic(f *testing.F) {
	f.Add(int64(1), uint8(80), uint8(10), uint8(0), uint8(60))
	f.Add(int64(7), uint8(150), uint8(0), uint8(5), uint8(80))
	f.Add(int64(42), uint8(50), uint8(20), uint8(10), uint8(70))
	f.Fuzz(func(t *testing.T, seed int64, singles, doubles, triples, density uint8) {
		if singles == 0 {
			singles = 1
		}
		dens := 0.3 + 0.6*float64(density%100)/100
		spec := gen.Spec{
			Name:        "fuzz",
			SingleCells: int(singles),
			DoubleCells: int(doubles % 40),
			TripleCells: int(triples % 20),
			Density:     dens,
			Seed:        seed,
		}
		d, err := gen.Generate(spec)
		if err != nil {
			t.Skip() // infeasible spec, not an invariance question
		}
		rep, err := Metamorphic(context.Background(), []*design.Design{d}, DefaultTransforms(), core.DefaultOptions())
		if err != nil {
			t.Skipf("pipeline failed on fuzzed spec: %v", err)
		}
		for _, v := range rep.Violations {
			t.Errorf("invariance violation: %s", v)
		}
	})
}
