package audit

import (
	"context"
	"fmt"
	"math"

	"mclg/internal/abacus"
	"mclg/internal/baselines/chow"
	"mclg/internal/core"
	"mclg/internal/dense"
	"mclg/internal/design"
	"mclg/internal/lcp"
	"mclg/internal/metrics"
	"mclg/internal/qp"
	"mclg/internal/sparse"
)

// crossCheck solves the relaxed QP with an independently coded reference and
// returns the max |Δx| against the MMSIM solution. Small instances get the
// dense active-set method; large ones a projected Gauss–Seidel on the dual
// of the *full* constraint set G = [B; I] — unlike core.SolvePGS, which
// documents dropping the x ≥ 0 complementarity, the audit reference keeps
// it, because a dropped bound is exactly the kind of discrepancy a
// differential check exists to catch.
func crossCheck(ctx context.Context, p *core.Problem, x []float64, opts Options) *Reference {
	ref := &Reference{Tol: opts.DiffTol}
	var xr []float64
	var err error
	if p.NumVars <= opts.MaxDenseVars {
		ref.Method = "dense-qp"
		xr, err = solveDenseQP(p)
	} else {
		ref.Method = "dual-pgs"
		xr, ref.Iters, err = solveDualPGS(ctx, p, opts.RefEps, opts.RefMaxIter)
	}
	if err != nil {
		ref.Err = err.Error()
		return ref
	}
	for v := range x {
		if d := math.Abs(x[v] - xr[v]); d > ref.MaxDX {
			ref.MaxDX = d
		}
	}
	ref.Pass = ref.MaxDX <= ref.Tol
	return ref
}

// solveDenseQP solves min ½xᵀHx + pᵀx s.t. Bx ≥ b, x ≥ 0 with the dense
// active-set method, assembling H = I + λEᵀE and G = [B; I] from scratch.
func solveDenseQP(p *core.Problem) ([]float64, error) {
	n, m := p.NumVars, p.NumCons
	h := dense.New(n, n)
	for i := 0; i < n; i++ {
		h.Set(i, i, 1)
	}
	for _, vars := range p.CellVars {
		for k := 0; k+1 < len(vars); k++ {
			lo, hi := vars[k], vars[k+1]
			h.Set(lo, lo, h.At(lo, lo)+p.Lambda)
			h.Set(hi, hi, h.At(hi, hi)+p.Lambda)
			h.Set(lo, hi, h.At(lo, hi)-p.Lambda)
			h.Set(hi, lo, h.At(hi, lo)-p.Lambda)
		}
	}
	g := dense.New(m+n, n)
	hv := make([]float64, m+n)
	for i, c := range p.Cons {
		g.Set(i, c.Left, -1)
		if c.Right >= 0 {
			g.Set(i, c.Right, 1)
		}
		hv[i] = p.Bv[i]
	}
	for v := 0; v < n; v++ {
		g.Set(m+v, v, 1) // x_v ≥ 0
	}
	x0, err := packLeft(p)
	if err != nil {
		return nil, err
	}
	return qp.Solve(&qp.Problem{H: h, P: append([]float64(nil), p.P...), G: g, Hv: hv}, x0)
}

// packLeft builds a feasible starting point: every row chain packed against
// the left edge with exact gap spacing. Constraints are row-major and
// left-to-right, so a single forward pass settles each chain.
func packLeft(p *core.Problem) ([]float64, error) {
	x0 := make([]float64, p.NumVars)
	for _, c := range p.Cons {
		if c.Right >= 0 {
			if v := x0[c.Left] + c.Gap; v > x0[c.Right] {
				x0[c.Right] = v
			}
		} else if -x0[c.Left] < c.Gap {
			// Boundary constraint −x ≥ Gap unsatisfiable even packed left:
			// the row is overfull, the QP is infeasible.
			return nil, fmt.Errorf("audit: row %d overfull, no feasible start", c.Row)
		}
	}
	return x0, nil
}

// solveDualPGS solves the same QP through its dual LCP over the full
// constraint set G = [B; I]:
//
//	S = G H⁻¹ Gᵀ,  q̃ = −G H⁻¹ p − h,  h = [b; 0]
//	find μ ≥ 0 with S μ + q̃ ≥ 0, μᵀ(S μ + q̃) = 0
//	x = H⁻¹ (Gᵀ μ − p)
//
// The assembly mirrors core.SolvePGS's column-by-column Schur construction
// but over the augmented constraint set, so the two implementations share no
// relaxation decisions.
func solveDualPGS(ctx context.Context, p *core.Problem, eps float64, maxIter int) ([]float64, int, error) {
	n, m := p.NumVars, p.NumCons
	// hp = H⁻¹ p.
	hp := make([]float64, n)
	p.SolveHShifted(1, p.Lambda, hp, p.P)

	// touch[v]: the augmented constraints with a nonzero at variable v.
	type gEntry struct {
		con  int
		sign float64
	}
	touch := make([][]gEntry, n)
	for i, c := range p.Cons {
		touch[c.Left] = append(touch[c.Left], gEntry{i, -1})
		if c.Right >= 0 {
			touch[c.Right] = append(touch[c.Right], gEntry{i, 1})
		}
	}
	for v := 0; v < n; v++ {
		touch[v] = append(touch[v], gEntry{m + v, 1})
	}

	// S column i = G · (H⁻¹ Gᵀ e_i); Gᵀ e_i has one or two nonzeros.
	sb := sparse.NewBuilder(m+n, m+n)
	idx := make([]int, 0, 2)
	val := make([]float64, 0, 2)
	col := func(i int) {
		p.ApplyHInvSparse(idx, val, func(v int, hv float64) {
			for _, e := range touch[v] {
				sb.Add(e.con, i, e.sign*hv)
			}
		})
	}
	for i, c := range p.Cons {
		idx, val = idx[:0], val[:0]
		idx = append(idx, c.Left)
		val = append(val, -1)
		if c.Right >= 0 {
			idx = append(idx, c.Right)
			val = append(val, 1)
		}
		col(i)
	}
	for v := 0; v < n; v++ {
		idx, val = idx[:0], val[:0]
		idx = append(idx, v)
		val = append(val, 1)
		col(m + v)
	}
	s := sb.Build()

	// q̃ = −G hp − h with h = [Bv; 0].
	qd := make([]float64, m+n)
	for i, c := range p.Cons {
		gh := -hp[c.Left]
		if c.Right >= 0 {
			gh += hp[c.Right]
		}
		qd[i] = -gh - p.Bv[i]
	}
	for v := 0; v < n; v++ {
		qd[m+v] = -hp[v]
	}

	mu, sweeps, err := lcp.PGSSparse(ctx, s, qd, nil, eps, maxIter)
	if mu == nil {
		return nil, sweeps, err
	}

	// x = H⁻¹ (Gᵀ μ − p).
	rhs := make([]float64, n)
	for i, c := range p.Cons {
		rhs[c.Left] -= mu[i]
		if c.Right >= 0 {
			rhs[c.Right] += mu[i]
		}
	}
	for v := 0; v < n; v++ {
		rhs[v] += mu[m+v]
		rhs[v] -= p.P[v]
	}
	x := make([]float64, n)
	p.SolveHShifted(1, p.Lambda, x, rhs)
	return x, sweeps, err
}

// baselineChecks legalizes fresh clones with the baseline legalizers and
// compares total displacement. A baseline that errors (abacus cannot place
// multi-row designs) is recorded but never fails the audit; a baseline that
// runs records Pass = ours ≤ BaselineFactor × theirs (checked by the caller
// against the ratio).
func baselineChecks(ctx context.Context, d *design.Design, oursLegal bool, oursDisp float64) []Baseline {
	opts := Options{}.withDefaults()
	run := func(name string, fn func(*design.Design) error) Baseline {
		b := Baseline{Name: name}
		c := d.Clone()
		c.ResetToGlobal()
		if err := fn(c); err != nil {
			b.Err = err.Error()
			return b
		}
		b.Legal = design.CheckLegal(c).Legal()
		b.Displacement = metrics.MeasureDisplacement(c).TotalSites
		if b.Displacement > 0 {
			b.Ratio = oursDisp / b.Displacement
		}
		// Quality sanity: when the baseline produced a legal result, ours
		// must not be drastically worse. An illegal baseline result carries
		// no quality information.
		b.Pass = !b.Legal || !oursLegal || b.Displacement == 0 ||
			b.Ratio <= opts.BaselineFactor
		return b
	}
	out := []Baseline{
		run("chow", func(c *design.Design) error { return chow.LegalizeContext(ctx, c) }),
		run("abacus", func(c *design.Design) error {
			if err := core.AssignRows(c); err != nil {
				return err
			}
			if err := abacus.PlaceRowsAssigned(c, false); err != nil {
				return err
			}
			// PlaceRow yields real-valued x; snap to sites for legality.
			for _, cell := range c.Cells {
				if !cell.Fixed {
					cell.X = c.SnapX(cell.X)
				}
			}
			return nil
		}),
	}
	return out
}
