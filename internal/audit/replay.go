package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// ReplayCertificate is the sealed outcome of event-sourced (ECO session)
// certification: an independent replay of the session's full delta log from
// its base design must land bit-identically on the committed placement. It
// is the incremental-path counterpart of Certificate — instead of
// re-deriving optimality residuals for one solve, it proves that the chain
// of dirty-window re-legalizations is a pure function of (base design, delta
// log), so the live session state carries no hidden drift.
//
// The JSON encoding is stable and Hash is a SHA-256 over the canonical JSON
// with Hash blanked, exactly like Certificate: two replays that certify the
// same session produce byte-identical sealed certificates regardless of
// worker count or of how the live session's applies were scheduled.
type ReplayCertificate struct {
	Design string `json:"design"`
	Cells  int    `json:"cells"`

	// Batches and Deltas count the replayed log; LogSum is a SHA-256 over
	// the canonical JSON of the full delta log, so the certificate pins
	// *which* edit history it certifies.
	Batches int    `json:"batches"`
	Deltas  int    `json:"deltas"`
	LogSum  string `json:"log_sum"`

	// BaseHash is the position hash of the session's committed state zero
	// (the legalized base design); PosHash is the live session's committed
	// placement; ReplayHash is what the independent replay produced. Match
	// means PosHash == ReplayHash.
	BaseHash   string `json:"base_hash"`
	PosHash    string `json:"pos_hash"`
	ReplayHash string `json:"replay_hash"`
	Match      bool   `json:"match"`

	// Legal is the whole-design legality verdict of the replayed placement.
	Legal bool `json:"legal"`

	Pass bool   `json:"pass"`
	Hash string `json:"hash,omitempty"`
}

// Seal computes and stores the certificate hash. Any later mutation
// invalidates it (Verify detects this).
func (c *ReplayCertificate) Seal() error {
	c.Hash = ""
	h, err := c.replayDigest()
	if err != nil {
		return err
	}
	c.Hash = h
	return nil
}

// Verify recomputes the digest and reports whether the stored hash matches.
func (c *ReplayCertificate) Verify() bool {
	stored := c.Hash
	if stored == "" {
		return false
	}
	c.Hash = ""
	h, err := c.replayDigest()
	c.Hash = stored
	return err == nil && h == stored
}

func (c *ReplayCertificate) replayDigest() (string, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("audit: hashing replay certificate: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Summary renders the one-line human-readable verdict.
func (c *ReplayCertificate) Summary() string {
	verdict := "FAIL"
	if c.Pass {
		verdict = "PASS"
	}
	return fmt.Sprintf("replay-audit %s: %s — batches=%d deltas=%d match=%v legal=%v pos=%s",
		c.Design, verdict, c.Batches, c.Deltas, c.Match, c.Legal, c.PosHash)
}

// LogDigest hashes an arbitrary JSON-encodable delta log into the canonical
// LogSum form. The eco package passes its batch slice; keeping the digest
// here means the certificate and the session log agree on one encoding.
func LogDigest(log any) (string, error) {
	b, err := json.Marshal(log)
	if err != nil {
		return "", fmt.Errorf("audit: hashing delta log: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
