package audit

import (
	"context"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
)

// trioCases mirrors the regress fixture: the three suite benchmarks at the
// scales the golden metrics pin.
var trioCases = []struct {
	bench string
	scale float64
}{
	{"des_perf_1", 0.004},
	{"fft_2", 0.004},
	{"superblue19", 0.002},
}

func trioDesign(t *testing.T, bench string, scale float64) *design.Design {
	t.Helper()
	e, err := gen.FindEntry(bench)
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAuditTrio is the acceptance fixture: certificates on the regress trio
// must show scale-normalized complementarity at most 1e-8 and an
// MMSIM-vs-reference max |Δx| within the differential tolerance, at every
// worker count of the determinism contract — and because the whole pipeline
// is deterministic, the sealed certificates of all worker counts must be
// byte-identical (equal hashes).
func TestAuditTrio(t *testing.T) {
	for _, c := range trioCases {
		c := c
		t.Run(c.bench, func(t *testing.T) {
			d := trioDesign(t, c.bench, c.scale)
			var hashes []string
			for _, workers := range []int{1, 2, 8} {
				opts := Options{}
				opts.Core.Workers = workers
				cert, err := Run(context.Background(), d, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !cert.Legal {
					t.Errorf("workers=%d: production placement illegal (%d violations)", workers, cert.ViolationCount)
				}
				if !cert.Converged {
					t.Errorf("workers=%d: audit solve did not converge in %d iterations", workers, cert.Iterations)
				}
				if cert.Complementarity > 1e-8 {
					t.Errorf("workers=%d: complementarity %g > 1e-8", workers, cert.Complementarity)
				}
				if cert.PrimalInfeas > 1e-8 || cert.DualInfeas > 1e-8 {
					t.Errorf("workers=%d: infeasibility primal=%g dual=%g", workers, cert.PrimalInfeas, cert.DualInfeas)
				}
				if !cert.Optimal {
					t.Errorf("workers=%d: certificate not optimal: %s", workers, cert.Summary())
				}
				if cert.Reference == nil {
					t.Fatalf("workers=%d: no reference cross-check", workers)
				}
				if cert.Reference.Err != "" {
					t.Fatalf("workers=%d: reference solve failed: %s", workers, cert.Reference.Err)
				}
				if !cert.Reference.Pass {
					t.Errorf("workers=%d: reference %s max|Δx| = %g > %g", workers,
						cert.Reference.Method, cert.Reference.MaxDX, cert.Reference.Tol)
				}
				if !cert.Pass {
					t.Errorf("workers=%d: certificate FAIL: %s", workers, cert.Summary())
				}
				if cert.Gap < 0 || cert.Gap > 1 {
					t.Errorf("workers=%d: gap %g outside [0, 1]", workers, cert.Gap)
				}
				if cert.RelaxedObjective <= 0 || cert.PlacementObjective <= 0 {
					t.Errorf("workers=%d: objectives not measured: relaxed=%g placement=%g",
						workers, cert.RelaxedObjective, cert.PlacementObjective)
				}
				if !cert.Verify() {
					t.Errorf("workers=%d: certificate hash does not verify", workers)
				}
				hashes = append(hashes, cert.Hash)
			}
			for i := 1; i < len(hashes); i++ {
				if hashes[i] != hashes[0] {
					t.Errorf("certificate hash differs across worker counts: %s vs %s", hashes[0], hashes[i])
				}
			}
		})
	}
}

// The subcell-equality residual ‖Ex‖∞ must be small relative to λ: the
// penalty formulation leaves a mismatch of order displacement/λ, which the
// restoration averages away. Pin the order of magnitude so a λ-handling
// regression (e.g. dropping the penalty) fails loudly.
func TestAuditSubcellResidualBounded(t *testing.T) {
	d := trioDesign(t, "des_perf_1", 0.004)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.SubcellResidual > 0.1 {
		t.Errorf("subcell residual %g > 0.1 DBU — λ penalty not binding subcells", cert.SubcellResidual)
	}
	if cert.SubcellResidual == 0 {
		t.Error("subcell residual exactly 0 on a design with multi-row cells — not measuring Ex")
	}
}

func TestCertificateSealVerify(t *testing.T) {
	d := trioDesign(t, "fft_2", 0.004)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Hash == "" {
		t.Fatal("Run returned an unsealed certificate")
	}
	if !cert.Verify() {
		t.Fatal("freshly sealed certificate fails verification")
	}
	cert.Complementarity *= 2 // tamper
	if cert.Verify() {
		t.Error("tampered certificate still verifies")
	}
}

// TestPassIndependentOfOptimal pins the Pass semantics: Pass gates on
// legality (plus the differential cross-checks when enabled), never on
// relaxed-optimality. A legal placement audited with a deliberately starved
// solve — Converged and Optimal false, lower bound untrusted — must still
// Pass while the measured gap is reported. Conflating the two was the old
// bug: every legal-but-gapped result was reported as a failed audit.
func TestPassIndependentOfOptimal(t *testing.T) {
	d := trioDesign(t, "fft_2", 0.004)
	cert, err := Run(context.Background(), d, Options{
		MaxIter: 10, SkipBaselines: true, SkipReference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Converged {
		t.Fatal("10-iteration audit solve unexpectedly converged; raise the bar")
	}
	if cert.Optimal {
		t.Error("Optimal = true without convergence")
	}
	if !cert.Legal {
		t.Fatal("production placement not legal — test premise broken")
	}
	if !cert.Pass {
		t.Errorf("Pass = false for a legal placement: %s", cert.Summary())
	}
	if cert.Gap < 0 || cert.Gap > 1 {
		t.Errorf("gap %g outside [0, 1]", cert.Gap)
	}
}

// TestGapMeasuresSnappingLoss checks the gap is a real measurement: the
// placement objective can only sit above the relaxed optimum (up to the
// conservative clamp), and on a converged audit the reported gap ties the
// two objectives together exactly.
func TestGapMeasuresSnappingLoss(t *testing.T) {
	d := trioDesign(t, "des_perf_1", 0.004)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Optimal {
		t.Fatalf("audit solve not optimal: %s", cert.Summary())
	}
	if cert.PlacementObjective < cert.RelaxedObjective {
		t.Errorf("placement objective %g below the relaxed lower bound %g",
			cert.PlacementObjective, cert.RelaxedObjective)
	}
	if cert.Gap > 0 {
		want := (cert.PlacementObjective - cert.RelaxedObjective) / cert.PlacementObjective
		if diff := cert.Gap - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("Gap = %g, want %g from the sealed objectives", cert.Gap, want)
		}
	}
}

// The certified production placement must match the regress pipeline's
// result exactly: auditing must observe, never perturb.
func TestAuditMatchesRegressPlacement(t *testing.T) {
	d := trioDesign(t, "fft_2", 0.004)
	want := regressHash(t, d)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.PosHash != want {
		t.Errorf("audit PosHash %s != pipeline hash %s", cert.PosHash, want)
	}
}
