package audit

import (
	"context"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
)

// trioCases mirrors the regress fixture: the three suite benchmarks at the
// scales the golden metrics pin.
var trioCases = []struct {
	bench string
	scale float64
}{
	{"des_perf_1", 0.004},
	{"fft_2", 0.004},
	{"superblue19", 0.002},
}

func trioDesign(t *testing.T, bench string, scale float64) *design.Design {
	t.Helper()
	e, err := gen.FindEntry(bench)
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAuditTrio is the acceptance fixture: certificates on the regress trio
// must show scale-normalized complementarity at most 1e-8 and an
// MMSIM-vs-reference max |Δx| within the differential tolerance, at every
// worker count of the determinism contract — and because the whole pipeline
// is deterministic, the sealed certificates of all worker counts must be
// byte-identical (equal hashes).
func TestAuditTrio(t *testing.T) {
	for _, c := range trioCases {
		c := c
		t.Run(c.bench, func(t *testing.T) {
			d := trioDesign(t, c.bench, c.scale)
			var hashes []string
			for _, workers := range []int{1, 2, 8} {
				opts := Options{}
				opts.Core.Workers = workers
				cert, err := Run(context.Background(), d, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !cert.Legal {
					t.Errorf("workers=%d: production placement illegal (%d violations)", workers, cert.ViolationCount)
				}
				if !cert.Converged {
					t.Errorf("workers=%d: audit solve did not converge in %d iterations", workers, cert.Iterations)
				}
				if cert.Complementarity > 1e-8 {
					t.Errorf("workers=%d: complementarity %g > 1e-8", workers, cert.Complementarity)
				}
				if cert.PrimalInfeas > 1e-8 || cert.DualInfeas > 1e-8 {
					t.Errorf("workers=%d: infeasibility primal=%g dual=%g", workers, cert.PrimalInfeas, cert.DualInfeas)
				}
				if !cert.Optimal {
					t.Errorf("workers=%d: certificate not optimal: %s", workers, cert.Summary())
				}
				if cert.Reference == nil {
					t.Fatalf("workers=%d: no reference cross-check", workers)
				}
				if cert.Reference.Err != "" {
					t.Fatalf("workers=%d: reference solve failed: %s", workers, cert.Reference.Err)
				}
				if !cert.Reference.Pass {
					t.Errorf("workers=%d: reference %s max|Δx| = %g > %g", workers,
						cert.Reference.Method, cert.Reference.MaxDX, cert.Reference.Tol)
				}
				if !cert.Pass {
					t.Errorf("workers=%d: certificate FAIL: %s", workers, cert.Summary())
				}
				if !cert.Verify() {
					t.Errorf("workers=%d: certificate hash does not verify", workers)
				}
				hashes = append(hashes, cert.Hash)
			}
			for i := 1; i < len(hashes); i++ {
				if hashes[i] != hashes[0] {
					t.Errorf("certificate hash differs across worker counts: %s vs %s", hashes[0], hashes[i])
				}
			}
		})
	}
}

// The subcell-equality residual ‖Ex‖∞ must be small relative to λ: the
// penalty formulation leaves a mismatch of order displacement/λ, which the
// restoration averages away. Pin the order of magnitude so a λ-handling
// regression (e.g. dropping the penalty) fails loudly.
func TestAuditSubcellResidualBounded(t *testing.T) {
	d := trioDesign(t, "des_perf_1", 0.004)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.SubcellResidual > 0.1 {
		t.Errorf("subcell residual %g > 0.1 DBU — λ penalty not binding subcells", cert.SubcellResidual)
	}
	if cert.SubcellResidual == 0 {
		t.Error("subcell residual exactly 0 on a design with multi-row cells — not measuring Ex")
	}
}

func TestCertificateSealVerify(t *testing.T) {
	d := trioDesign(t, "fft_2", 0.004)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Hash == "" {
		t.Fatal("Run returned an unsealed certificate")
	}
	if !cert.Verify() {
		t.Fatal("freshly sealed certificate fails verification")
	}
	cert.Complementarity *= 2 // tamper
	if cert.Verify() {
		t.Error("tampered certificate still verifies")
	}
}

// The certified production placement must match the regress pipeline's
// result exactly: auditing must observe, never perturb.
func TestAuditMatchesRegressPlacement(t *testing.T) {
	d := trioDesign(t, "fft_2", 0.004)
	want := regressHash(t, d)
	cert, err := Run(context.Background(), d, Options{SkipBaselines: true, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.PosHash != want {
		t.Errorf("audit PosHash %s != pipeline hash %s", cert.PosHash, want)
	}
}
