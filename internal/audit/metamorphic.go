package audit

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/metrics"
	"mclg/internal/tetris"
)

// A Transform rewrites a design into a provably equivalent instance. The
// metamorphic harness legalizes both and requires the legality verdict and
// the displacement objective to be invariant: the pipeline must not care
// where the core sits, how cells are numbered, or which way x points.
type Transform struct {
	Name  string
	Apply func(*design.Design) *design.Design

	// VerdictOnly limits the invariance check to the legality verdict.
	// Mirror-x sets it: the paper's relaxation is left-right asymmetric by
	// construction (x ≥ 0 is a hard LCP bound, the right boundary is
	// dropped and repaired by Tetris; BalanceRows picks cells
	// direction-dependently), so the objective is equivariant only up to
	// those heuristics, while the legality verdict must still be invariant.
	VerdictOnly bool

	// OrderSensitive marks transforms that change cell numbering.
	// PermuteCells sets it: problem construction honors the global-x order
	// with ID tie-breaks, so when a design has order ties (equal targets in
	// a row with different widths — clamped global positions produce these)
	// the relaxed optimum legitimately depends on the numbering, and the
	// harness downgrades the check to the legality verdict.
	OrderSensitive bool
}

// rebuildConfig reconstructs the constructor config of an existing design.
func rebuildConfig(d *design.Design) design.Config {
	cfg := design.Config{
		Name:      d.Name,
		NumRows:   len(d.Rows),
		RowHeight: d.RowHeight,
		SiteW:     d.SiteW,
		OriginX:   d.Core.Lo.X,
		OriginY:   d.Core.Lo.Y,
	}
	if len(d.Rows) > 0 {
		cfg.NumSites = d.Rows[0].NumSites
		cfg.BottomRail = d.Rows[0].Rail
	}
	return cfg
}

// copyCell clones src into dst's cell table preserving order (and thus IDs).
func copyCell(dst *design.Design, src *design.Cell) *design.Cell {
	c := dst.AddCell(src.Name, src.W, src.H, src.BottomRail)
	c.GX, c.GY = src.GX, src.GY
	c.X, c.Y = src.X, src.Y
	c.Fixed = src.Fixed
	c.Flipped = src.Flipped
	return c
}

// Translate shifts the whole instance — core, cells, and fixed pins — by an
// integer number of sites and rows, so every coordinate stays exactly
// representable on the shifted grid. Legalization is translation-invariant;
// this is also the transform that exposes absolute-epsilon bugs in
// coordinate checks when the offset is large (e.g. 1e9 sites).
func Translate(sites, rows int) Transform {
	return Transform{
		Name: fmt.Sprintf("translate(%d,%d)", sites, rows),
		Apply: func(d *design.Design) *design.Design {
			dx := float64(sites) * d.SiteW
			dy := float64(rows) * d.RowHeight
			cfg := rebuildConfig(d)
			cfg.OriginX += dx
			cfg.OriginY += dy
			out := design.NewDesign(cfg)
			for _, src := range d.Cells {
				c := copyCell(out, src)
				c.GX, c.GY = src.GX+dx, src.GY+dy
				c.X, c.Y = src.X+dx, src.Y+dy
			}
			out.Nets = cloneNets(d.Nets, func(p design.Pin) design.Pin {
				if p.CellID < 0 {
					p.DX += dx
					p.DY += dy
				}
				return p
			})
			return out
		},
	}
}

// PermuteCells renumbers the cells with a seeded shuffle, remapping net pin
// references. The pipeline's tie-breaks use IDs, but ties in generated
// designs have measure zero, so the placement — and certainly the objective
// and legality verdict — must not depend on the numbering.
func PermuteCells(seed int64) Transform {
	return Transform{
		Name:           fmt.Sprintf("permute(seed=%d)", seed),
		OrderSensitive: true,
		Apply: func(d *design.Design) *design.Design {
			perm := rand.New(rand.NewSource(seed)).Perm(len(d.Cells))
			out := design.NewDesign(rebuildConfig(d))
			// perm[i] is the old index of the cell placed at new ID i.
			newID := make([]int, len(d.Cells))
			for newPos, oldPos := range perm {
				newID[oldPos] = newPos
			}
			for _, oldPos := range perm {
				copyCell(out, d.Cells[oldPos])
			}
			out.Nets = cloneNets(d.Nets, func(p design.Pin) design.Pin {
				if p.CellID >= 0 {
					p.CellID = newID[p.CellID]
				}
				return p
			})
			return out
		},
	}
}

// MirrorX reflects the instance across the core's vertical center line:
// x → Lo.X + Hi.X − (x + w) for cell corners, pin x offsets mirror within
// the cell, fixed pins mirror absolutely. Row structure and rails are
// untouched, so legality and displacement are invariant.
func MirrorX() Transform {
	return Transform{
		Name:        "mirror-x",
		VerdictOnly: true,
		Apply: func(d *design.Design) *design.Design {
			lo, hi := d.Core.Lo.X, d.Core.Hi.X
			out := design.NewDesign(rebuildConfig(d))
			for _, src := range d.Cells {
				c := copyCell(out, src)
				c.GX = lo + hi - (src.GX + src.W)
				c.X = lo + hi - (src.X + src.W)
			}
			cellW := func(id int) float64 { return d.Cells[id].W }
			out.Nets = cloneNets(d.Nets, func(p design.Pin) design.Pin {
				if p.CellID < 0 {
					p.DX = lo + hi - p.DX
				} else {
					p.DX = cellW(p.CellID) - p.DX
				}
				return p
			})
			return out
		},
	}
}

func cloneNets(nets []design.Net, remap func(design.Pin) design.Pin) []design.Net {
	out := make([]design.Net, len(nets))
	for i, n := range nets {
		pins := make([]design.Pin, len(n.Pins))
		for j, p := range n.Pins {
			pins[j] = remap(p)
		}
		out[i] = design.Net{Name: n.Name, Weight: n.Weight, Pins: pins}
	}
	return out
}

// DefaultTransforms is the harness's standard battery.
func DefaultTransforms() []Transform {
	return []Transform{
		Translate(1000, 3),
		Translate(1_000_000_000, 0), // far-origin: catches absolute-eps bugs
		PermuteCells(12345),
		MirrorX(),
	}
}

// InvarianceViolation describes one metamorphic failure.
type InvarianceViolation struct {
	Design    string
	Transform string
	Detail    string
}

func (v InvarianceViolation) String() string {
	return fmt.Sprintf("%s / %s: %s", v.Design, v.Transform, v.Detail)
}

// FuzzReport summarizes a metamorphic run.
type FuzzReport struct {
	Designs    int
	Runs       int
	Violations []InvarianceViolation
}

// ObjTol is the relative tolerance on the relaxed-objective invariance. The
// relaxed QP is strictly convex, so its optimum — and hence the objective —
// is exactly invariant under the transforms in real arithmetic; the
// tolerance absorbs only the solver's stopping slack and summation-order
// round-off, both of which shrink with the tightened Eps the harness uses.
const ObjTol = 1e-6

// Metamorphic runs each design and each of its transformed variants through
// the pipeline and checks the invariants:
//
//   - the full-pipeline legality verdict is identical, and
//   - the relaxed QP objective Σ(Δx²+Δy²), measured between the MMSIM solve
//     and the Tetris snapping, matches within ObjTol (relative, with a
//     1e-6 absolute floor).
//
// The objective check targets the relaxed solution rather than the snapped
// placement deliberately: the convex problem has a unique optimum, so any
// drift is a real solver or construction bug, while the Tetris stage is a
// greedy heuristic whose repair order is not (and need not be) invariant.
// Transforms with VerdictOnly set skip the objective check (see Transform).
// Violations do not error — the caller decides.
func Metamorphic(ctx context.Context, designs []*design.Design, transforms []Transform, opts core.Options) (*FuzzReport, error) {
	if opts.Eps == 0 || opts.Eps > 1e-9 {
		opts.Eps = 1e-9
	}
	if opts.MaxIter < 200000 {
		opts.MaxIter = 200000
	}
	rep := &FuzzReport{}
	for _, d := range designs {
		rep.Designs++
		baseLegal, baseObj, err := runOnce(ctx, d, opts)
		if err != nil {
			return rep, fmt.Errorf("audit: metamorphic base run %s: %w", d.Name, err)
		}
		rep.Runs++
		ties, err := hasOrderTies(d, opts)
		if err != nil {
			return rep, fmt.Errorf("audit: metamorphic tie scan %s: %w", d.Name, err)
		}
		for _, tr := range transforms {
			td := tr.Apply(d.Clone())
			legal, obj, err := runOnce(ctx, td, opts)
			if err != nil {
				return rep, fmt.Errorf("audit: metamorphic %s/%s: %w", d.Name, tr.Name, err)
			}
			rep.Runs++
			if legal != baseLegal {
				rep.Violations = append(rep.Violations, InvarianceViolation{
					Design: d.Name, Transform: tr.Name,
					Detail: fmt.Sprintf("legality verdict flipped: base=%v transformed=%v", baseLegal, legal),
				})
			}
			checkObj := !tr.VerdictOnly && !(tr.OrderSensitive && ties)
			tol := ObjTol*math.Max(1, math.Abs(baseObj)) + 1e-6
			if checkObj && math.Abs(obj-baseObj) > tol {
				rep.Violations = append(rep.Violations, InvarianceViolation{
					Design: d.Name, Transform: tr.Name,
					Detail: fmt.Sprintf("relaxed objective drifted: base=%.12g transformed=%.12g (tol %.3g)", baseObj, obj, tol),
				})
			}
		}
	}
	return rep, nil
}

// hasOrderTies reports whether any row holds subcells of two different
// cells with identical global-x targets that are not interchangeable: the
// case where the ID tie-break picks between genuinely different constraint
// chains, so the relaxed optimum depends on the numbering (clamped global
// placements are the usual source). Two single-row subcells of equal width
// ARE interchangeable — swapping them relabels the same problem — but any
// width mismatch, or a multi-row owner (whose other slices couple the tie
// into neighboring rows), makes the order matter.
func hasOrderTies(d *design.Design, opts core.Options) (bool, error) {
	c := d.Clone()
	c.ResetToGlobal()
	if err := core.AssignRowsP(c, opts.Workers); err != nil {
		return false, err
	}
	p, err := core.BuildProblemBounded(c, opts.Lambda, false)
	if err != nil {
		return false, err
	}
	type key struct {
		row    int
		target float64
	}
	type info struct {
		width float64
		multi bool
	}
	seen := make(map[key]info)
	for _, sc := range p.Subcells {
		k := key{sc.Row, sc.Target}
		in := info{width: sc.Width, multi: len(p.CellVars[sc.Cell]) > 1}
		if prev, ok := seen[k]; ok {
			if prev.width != in.width || prev.multi || in.multi {
				return true, nil
			}
			continue
		}
		seen[k] = in
	}
	return false, nil
}

// runOnce runs the pipeline stages manually so the relaxed objective can be
// measured between the solve and the snapping, then finishes with the
// Tetris stage for the legality verdict.
func runOnce(ctx context.Context, d *design.Design, opts core.Options) (legal bool, relaxedObj float64, err error) {
	c := d.Clone()
	c.ResetToGlobal()
	leg := core.New(opts)
	o := leg.Opts
	if err := core.AssignRowsP(c, o.Workers); err != nil {
		return false, 0, err
	}
	if o.BoundRight {
		if err := core.BalanceRows(c); err != nil {
			return false, 0, err
		}
	}
	p, err := core.BuildProblemBounded(c, o.Lambda, o.BoundRight)
	if err != nil {
		return false, 0, err
	}
	x, _, err := core.SolveMMSIMContext(ctx, p, o)
	if err != nil {
		return false, 0, err
	}
	core.Restore(p, x)
	relaxedObj = metrics.MeasureDisplacement(c).SumSq
	if _, err := tetris.AllocateContextP(ctx, c, o.Workers); err != nil {
		return false, 0, err
	}
	return design.CheckLegal(c).Legal(), relaxedObj, nil
}
