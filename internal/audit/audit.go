// Package audit independently verifies legalization results. Nothing in the
// production pipeline is trusted: given a design, the auditor re-runs the
// pipeline, recomputes the LCP/KKT residuals of the relaxed problem from the
// assembled matrices (not the solver's convergence flag), cross-checks the
// MMSIM solution against an independently coded reference solve, compares
// result quality against the baseline legalizers, and emits a
// machine-readable optimality certificate (see Certificate).
//
// The certificate certifies the paper's central claim (Theorem 2): the MMSIM
// fixed point is the optimum of the relaxed problem whenever no cell crosses
// the right boundary. The residuals reported are those of a tight audit
// solve — the production solve stops at Options.Core.Eps, good enough for
// the Tetris snapping to absorb, while the audit drives the same iteration
// to numerical floor so the complementarity residual measures the problem,
// not the stopping rule.
package audit

import (
	"context"
	"math"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/lcp"
	"mclg/internal/metrics"
	"mclg/internal/regress"
)

// Options configures an audit run. The zero value audits with the paper's
// production parameters and the default audit tolerances.
type Options struct {
	// Core holds the production solver options whose result is being
	// certified; zero fields are filled with core defaults. The audit's
	// tight re-solve inherits everything but the stopping rule.
	Core core.Options

	// Eps is the audit solve's ‖Δz‖∞ stopping tolerance (default 1e-11):
	// tight enough that the reported residuals sit at the numerical floor.
	Eps float64

	// MaxIter bounds the audit solve (default 500000).
	MaxIter int

	// ResidualTol is the certificate threshold on the scale-normalized
	// complementarity / infeasibility residuals (default 1e-8).
	ResidualTol float64

	// DiffTol bounds the MMSIM-vs-reference max |Δx| in database units
	// (default 1e-6). Both solves run at audit tightness, so agreement far
	// below a site width is expected.
	DiffTol float64

	// MaxDenseVars is the largest variable count solved with the dense
	// active-set QP reference (default 160); larger instances use the
	// sparse dual-PGS reference. The dense path is O(n³) and exists to
	// anchor the sparse one on small instances.
	MaxDenseVars int

	// RefEps / RefMaxIter control the reference solve (defaults 1e-12,
	// 2000000 sweeps).
	RefEps     float64
	RefMaxIter int

	// BaselineFactor is the quality-sanity bound: our total displacement
	// must be at most this multiple of the best baseline legalizer's
	// (default 2). Baselines that fail (e.g. abacus on multi-row designs)
	// are recorded but never fail the audit.
	BaselineFactor float64

	// SkipReference / SkipBaselines drop the differential stages, leaving
	// the residual certificate only.
	SkipReference bool
	SkipBaselines bool
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 1e-11
	}
	if o.MaxIter == 0 {
		o.MaxIter = 500000
	}
	if o.ResidualTol == 0 {
		o.ResidualTol = 1e-8
	}
	if o.DiffTol == 0 {
		o.DiffTol = 1e-6
	}
	if o.MaxDenseVars == 0 {
		o.MaxDenseVars = 160
	}
	if o.RefEps == 0 {
		o.RefEps = 1e-12
	}
	if o.RefMaxIter == 0 {
		o.RefMaxIter = 2000000
	}
	if o.BaselineFactor == 0 {
		o.BaselineFactor = 2
	}
	return o
}

// Run audits the design: it legalizes a clone with the production options,
// re-solves the relaxed problem at audit tightness, recomputes residuals
// from the assembled LCP, cross-checks against the reference solve and the
// baselines, and returns the certificate. The input design is not mutated.
func Run(ctx context.Context, d *design.Design, opts Options) (*Certificate, error) {
	opts = opts.withDefaults()
	cert := &Certificate{
		Design:  d.Name,
		Cells:   len(d.Cells),
		Movable: d.NumMovable(),
	}

	// Production run: the placement being certified.
	prod := d.Clone()
	prod.ResetToGlobal()
	leg := core.New(opts.Core)
	if _, err := leg.LegalizeContext(ctx, prod); err != nil {
		return nil, err
	}
	rep := design.CheckLegal(prod)
	disp := metrics.MeasureDisplacement(prod)
	cert.Legal = rep.Legal()
	cert.ViolationCount = len(rep.Violations)
	cert.Displacement = disp.TotalSites
	cert.PosHash = regress.PositionHash(prod)

	// Audit solve: same problem construction, tight stopping rule, and an
	// independent residual recomputation from the assembled matrices.
	aud := d.Clone()
	aud.ResetToGlobal()
	ao := leg.Opts // post-default production options
	ao.Eps = opts.Eps
	ao.MaxIter = opts.MaxIter
	ao.ResidualTol = -1 // residuals are recomputed below, not gated inline
	ao.Warm = nil
	if err := core.AssignRowsP(aud, ao.Workers); err != nil {
		return nil, err
	}
	if ao.BoundRight {
		if err := core.BalanceRows(aud); err != nil {
			return nil, err
		}
	}
	p, err := core.BuildProblemBounded(aud, ao.Lambda, ao.BoundRight)
	if err != nil {
		return nil, err
	}
	cert.Vars, cert.Cons = p.NumVars, p.NumCons
	z, st, err := core.SolveMMSIMFull(ctx, p, ao)
	if err != nil {
		return nil, err
	}
	cert.Iterations = st.Iterations
	cert.Converged = st.Converged

	if p.NumVars > 0 {
		fillResiduals(cert, p, z)
		fillGap(cert, p, z[:p.NumVars], prod)
		if !opts.SkipReference {
			cert.Reference = crossCheck(ctx, p, z[:p.NumVars], opts)
		}
	} else {
		cert.Scale = 1
	}

	if !opts.SkipBaselines {
		cert.Baselines = baselineChecks(ctx, d, cert.Legal, disp.TotalSites)
	}

	// Optimal certifies the relaxed problem: the audit solve converged and
	// the independently recomputed KKT/LCP residuals sit below tolerance.
	// TheoremTwo additionally records whether the paper's precondition for
	// that relaxed optimum to be exact for the original problem holds (no
	// right-boundary crossing, Theorem 2); the production pipeline
	// deliberately relaxes the boundary and lets the Tetris stage repair
	// crossings, so TheoremTwo is informative, not a pass/fail gate.
	cert.Optimal = cert.Converged &&
		cert.Complementarity <= opts.ResidualTol &&
		cert.PrimalInfeas <= opts.ResidualTol &&
		cert.DualInfeas <= opts.ResidualTol
	cert.TheoremTwo = cert.BoundaryCells == 0 || leg.Opts.BoundRight
	// Pass gates on legality and the differential cross-checks only. Relaxed
	// optimality is deliberately NOT a pass condition: a legal placement
	// whose distance from the relaxed optimum is measured (Gap) is a
	// certified result, not a failure — Optimal stays informative, marking
	// when the lower bound behind the gap is itself trustworthy.
	cert.Pass = cert.Legal
	if r := cert.Reference; r != nil {
		cert.Pass = cert.Pass && r.Pass
	}
	for _, b := range cert.Baselines {
		if b.Err == "" && !b.Pass {
			cert.Pass = false
		}
	}
	if err := cert.Seal(); err != nil {
		return nil, err
	}
	return cert, nil
}

// fillResiduals recomputes the LCP residuals of z from a fresh assembly of
// A and q — deliberately not reusing anything the solver touched — and
// stores the scale-normalized components plus the subcell-equality residual
// ‖Ex‖∞ and the Theorem-2 boundary-cell count.
func fillResiduals(cert *Certificate, p *core.Problem, z []float64) {
	prob := &lcp.Problem{A: p.AssembleLCPMatrix(), Q: p.LCPVector()}
	res := prob.ResidualComponents(z)

	// Residuals are reported relative to the problem's magnitude: q carries
	// the −target positions (hundreds to thousands of DBU), so an absolute
	// complementarity of 1e-10 on a 1e3-scale problem is floating-point
	// floor, not suboptimality.
	scale := 1.0
	for _, v := range prob.Q {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	cert.Scale = scale
	cert.Complementarity = res.Complementarity / scale
	cert.PrimalInfeas = res.PrimalInfeas / scale
	cert.DualInfeas = res.DualInfeas / scale

	x := z[:p.NumVars]
	if p.E != nil && p.E.Rows > 0 {
		ex := make([]float64, p.E.Rows)
		p.E.MulVec(ex, x)
		for _, v := range ex {
			if a := math.Abs(v); a > cert.SubcellResidual {
				cert.SubcellResidual = a
			}
		}
	}

	// Theorem 2 precondition: optimality of the relaxed solution for the
	// original problem needs no subcell past the right boundary (unless the
	// exact boundary constraints were in the LCP to begin with).
	width := p.D.Core.Hi.X - p.D.Core.Lo.X
	seen := make(map[int]bool)
	for _, sc := range p.Subcells {
		if x[sc.Var]+sc.Width > width+1e-9 && !seen[sc.Cell] {
			seen[sc.Cell] = true
			cert.BoundaryCells++
		}
	}
}

// fillGap measures the production placement's distance from the relaxed
// optimum. Both points are scored with the relaxed objective
// Σ_v (x_v − t_v)² + λ‖Ex‖²: the audit solve x gives the lower bound, the
// committed placement (whose subcells share their cell's x, so Ex = 0
// exactly) gives the incumbent. Vertical costs are identical on both sides
// of the comparison — row assignment happens before the relaxation — so the
// horizontal objective is the whole story.
func fillGap(cert *Certificate, p *core.Problem, x []float64, prod *design.Design) {
	cert.RelaxedObjective = relaxedObjective(p, x)
	for _, sc := range p.Subcells {
		dx := (prod.Cells[sc.Cell].X - p.D.Core.Lo.X) - sc.Target
		cert.PlacementObjective += dx * dx
	}
	if gap := cert.PlacementObjective - cert.RelaxedObjective; gap > 0 && cert.PlacementObjective > 0 {
		cert.Gap = gap / cert.PlacementObjective
	}
}

// relaxedObjective evaluates the relaxed problem's objective at x.
func relaxedObjective(p *core.Problem, x []float64) float64 {
	f := 0.0
	for _, sc := range p.Subcells {
		dv := x[sc.Var] - sc.Target
		f += dv * dv
	}
	if p.E != nil && p.E.Rows > 0 {
		ex := make([]float64, p.E.Rows)
		p.E.MulVec(ex, x)
		for _, v := range ex {
			f += p.Lambda * v * v
		}
	}
	return f
}
