package audit

import (
	"context"
	"math"
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/regress"
)

func regressHash(t *testing.T, d *design.Design) string {
	t.Helper()
	c := d.Clone()
	c.ResetToGlobal()
	if _, err := core.New(core.DefaultOptions()).Legalize(c); err != nil {
		t.Fatal(err)
	}
	return regress.PositionHash(c)
}

func buildProblem(t *testing.T, d *design.Design) *core.Problem {
	t.Helper()
	c := d.Clone()
	c.ResetToGlobal()
	if err := core.AssignRows(c); err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildProblemBounded(c, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The two independently coded references must agree with each other on an
// instance small enough for the dense path — anchoring the scalable dual-PGS
// reference on the textbook active-set method.
func TestReferenceSolversAgree(t *testing.T) {
	d, err := gen.Generate(gen.Spec{Name: "ref", SingleCells: 40, DoubleCells: 8, Density: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := buildProblem(t, d)
	if p.NumVars > 160 {
		t.Fatalf("instance too big for the dense path: %d vars", p.NumVars)
	}
	xd, err := solveDenseQP(p)
	if err != nil {
		t.Fatal(err)
	}
	xp, _, err := solveDualPGS(context.Background(), p, 1e-12, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v := range xd {
		if dx := math.Abs(xd[v] - xp[v]); dx > worst {
			worst = dx
		}
	}
	if worst > 1e-7 {
		t.Errorf("dense-QP and dual-PGS references disagree: max |Δx| = %g", worst)
	}
}

// The cross-check must actually catch a wrong solution: feed it the MMSIM
// answer with one variable perturbed by a site and require a failure.
func TestCrossCheckCatchesPerturbation(t *testing.T) {
	d, err := gen.Generate(gen.Spec{Name: "perturb", SingleCells: 40, DoubleCells: 8, Density: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := buildProblem(t, d)
	opts := core.DefaultOptions()
	opts.Eps = 1e-11
	opts.MaxIter = 500000
	opts.ResidualTol = -1
	x, _, err := core.SolveMMSIM(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	aopts := Options{}.withDefaults()
	ref := crossCheck(context.Background(), p, x, aopts)
	if ref.Err != "" || !ref.Pass {
		t.Fatalf("honest solution rejected: %+v", ref)
	}
	bad := append([]float64(nil), x...)
	bad[len(bad)/2] += 1.0
	ref = crossCheck(context.Background(), p, bad, aopts)
	if ref.Err != "" {
		t.Fatal(ref.Err)
	}
	if ref.Pass || ref.MaxDX < 0.5 {
		t.Errorf("perturbed solution passed the cross-check: %+v", ref)
	}
}

// The dual-PGS reference keeps the x ≥ 0 complementarity that core.SolvePGS
// documents dropping: on a design whose leftmost cells are pushed against
// the left edge, the reference must return a nonnegative solution.
func TestDualPGSRespectsLeftBound(t *testing.T) {
	d := design.NewDesign(design.Config{Name: "left", NumRows: 1, NumSites: 40, RowHeight: 10, SiteW: 1})
	// Three cells whose targets pull hard past the left boundary.
	for i, gx := range []float64{-8, -3, 2} {
		c := d.AddCell("c", 4, 10, design.VSS)
		c.GX, c.GY = gx, 0
		_ = i
	}
	p := buildProblem(t, d)
	x, _, err := solveDualPGS(context.Background(), p, 1e-12, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	for v, xv := range x {
		if xv < -1e-9 {
			t.Errorf("reference x[%d] = %g violates x >= 0", v, xv)
		}
	}
	// And it must match the dense reference, which also enforces the bound.
	xd, err := solveDenseQP(p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range x {
		if math.Abs(x[v]-xd[v]) > 1e-7 {
			t.Errorf("x[%d]: dual-pgs %g vs dense %g", v, x[v], xd[v])
		}
	}
}

// Baseline sanity must tolerate baselines that cannot run (abacus on
// multi-row designs) without failing the audit.
func TestBaselineErrorsAreNonFatal(t *testing.T) {
	d, err := gen.Generate(gen.Spec{Name: "multi", SingleCells: 60, TripleCells: 12, Density: 0.6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Run(context.Background(), d, Options{SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for _, b := range cert.Baselines {
		if b.Name == "abacus" && b.Err != "" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("expected abacus to record an error on a triple-height design")
	}
	if !cert.Pass {
		t.Errorf("baseline error failed the audit: %s", cert.Summary())
	}
}
