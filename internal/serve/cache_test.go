package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mclg/internal/serve/report"
)

func rep(name string) *report.Report { return &report.Report{Design: name} }

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	for _, k := range []string{"a", "b"} {
		f, leader, _ := c.join(k)
		if !leader {
			t.Fatalf("join(%q): expected leadership", k)
		}
		c.complete(k, f, rep(k))
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, ok := c.lookup("a"); !ok {
		t.Fatal("lookup(a) missed")
	}
	f, _, _ := c.join("c")
	c.complete("c", f, rep("c"))

	if _, ok := c.lookup("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.lookup(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	entries, _, _, evictions := c.stats()
	if entries != 2 || evictions != 1 {
		t.Errorf("entries=%d evictions=%d, want 2, 1", entries, evictions)
	}
}

func TestCacheJoinDedupsConcurrentLeaders(t *testing.T) {
	c := newResultCache(8)
	const n = 16
	var leaders int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]*report.Report, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, leader, cached := c.join("k")
			if cached != nil {
				results[i] = cached
				return
			}
			if leader {
				mu.Lock()
				leaders++
				mu.Unlock()
				c.complete("k", f, rep("solved"))
				results[i] = f.rep
				return
			}
			<-f.done
			results[i] = f.rep
		}(i)
	}
	wg.Wait()
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	for i, r := range results {
		if r == nil || r.Design != "solved" {
			t.Fatalf("result[%d] = %+v, want the shared solve", i, r)
		}
	}
}

func TestCacheAbortDoesNotPoison(t *testing.T) {
	c := newResultCache(8)
	f, leader, _ := c.join("k")
	if !leader {
		t.Fatal("expected leadership")
	}
	boom := errors.New("boom")
	waiterErr := make(chan error, 1)
	f2, leader2, _ := c.join("k")
	if leader2 {
		t.Fatal("second join must not lead while a flight is up")
	}
	go func() {
		<-f2.done
		waiterErr <- f2.err
	}()
	c.abort("k", f, boom)
	if err := <-waiterErr; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want boom", err)
	}
	// The failure is not cached: the next join leads again.
	if _, leader3, cached := c.join("k"); !leader3 || cached != nil {
		t.Fatal("abort must leave the key solvable")
	}
	if entries, _, _, _ := c.stats(); entries != 0 {
		t.Fatalf("entries = %d after abort, want 0", entries)
	}
}

func TestCacheDisabledStillDedups(t *testing.T) {
	c := newResultCache(-1)
	f, leader, _ := c.join("k")
	if !leader {
		t.Fatal("expected leadership")
	}
	c.complete("k", f, rep("x"))
	if _, ok := c.lookup("k"); ok {
		t.Error("disabled cache must not store results")
	}
	if entries, _, _, _ := c.stats(); entries != 0 {
		t.Error("disabled cache reported entries")
	}
}

func TestCacheCapacityOne(t *testing.T) {
	c := newResultCache(1)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		f, _, _ := c.join(k)
		c.complete(k, f, rep(k))
	}
	entries, _, _, evictions := c.stats()
	if entries != 1 || evictions != 4 {
		t.Errorf("entries=%d evictions=%d, want 1, 4", entries, evictions)
	}
	if _, ok := c.lookup("k4"); !ok {
		t.Error("most recent entry should survive")
	}
}
