// Package serve turns the one-shot legalizer into a resident batching
// service: a bounded job queue with admission control, a worker pool driving
// the existing context-aware solvers, a content-addressed result cache with
// in-flight deduplication, and a Prometheus-text observability surface.
//
// Request lifecycle:
//
//	POST /v1/legalize ── validate ── cache lookup ──(hit)── 200 {cache:"hit"}
//	        │                            │
//	        │                       (in-flight join) ── wait ── 200 {cache:"hit"}
//	        │                            │
//	        │                        (leader) ── admit ──(queue full)── 429 + Retry-After
//	        │                            │
//	        └── worker: parse → solve → verify legal → cache store ── 200 {cache:"miss"}
//
// Failures map onto the mclgerr taxonomy: invalid input → 400, deadline /
// cancellation → 504, queue saturation → 429, draining → 503, every other
// solver failure → 422 with the error class in the body.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/faults"
	"mclg/internal/mclgerr"
	"mclg/internal/serve/report"
	"mclg/internal/window"
)

// Config parameterizes the daemon. The zero value is usable: 2 pool
// workers, queue capacity 8, 128 cached results, 2-minute job cap.
type Config struct {
	// Workers is the solve-pool size: how many jobs run concurrently.
	Workers int
	// QueueCap bounds the jobs admitted but not yet running; admission
	// past it is refused with 429.
	QueueCap int
	// CacheCap bounds the result cache (entries); 0 means 128, negative
	// disables caching (dedup of concurrent identical jobs still works).
	CacheCap int
	// WarmCap bounds the warm-start store (topologies whose solver state is
	// retained for near-match acceleration); 0 means 32, negative disables
	// warm starting. See warmStore.
	WarmCap int
	// DefaultJobTimeout applies when a request has no timeout_ms;
	// MaxJobTimeout caps whatever the request asks for.
	DefaultJobTimeout time.Duration
	MaxJobTimeout     time.Duration
	// MaxBodyBytes bounds an upload body; 0 means 64 MiB.
	MaxBodyBytes int64
	// AuditAll turns on audit-on-commit for every eligible job (method
	// "ours", non-resilient), as if each request had set "audit": true.
	// Ineligible jobs run unaudited rather than being refused.
	AuditAll bool
	// WindowsAll turns on fault-isolated windowed legalization for every
	// eligible job (method "ours", non-resilient, non-audit), as if each
	// request had set "windows": true. Ineligible jobs run unwindowed.
	WindowsAll bool
	// WindowRows is the server default rows-per-window for windowed jobs
	// whose request leaves window_rows unset; 0 means window.DefaultWindowRows.
	WindowRows int
	// HedgeQuantile is the server default straggler-hedging quantile for
	// windowed jobs whose request leaves hedge unset; 0 disables hedging.
	HedgeQuantile float64
	// ExactWindows is the server default exact-refinement window count for
	// windowed jobs whose request leaves exact unset; 0 disables the
	// post-pass by default (requests can still opt in per job).
	ExactWindows int
	// JournalDir, when non-empty, enables the per-job write-ahead window
	// journal: each windowed job fsyncs verified window results to
	// JournalDir/<job-key>.wal and a restarted daemon replays completed
	// windows instead of re-solving them. The journal is removed when the
	// job commits.
	JournalDir string
	// ECODir, when non-empty, makes /v1/eco sessions durable: each session
	// appends its delta log write-ahead to ECODir/<id>.ecolog, and a
	// restarted daemon rebuilds every live session by replaying its log from
	// the base design stored in the log header. Empty means sessions are
	// memory-only and die with the process.
	ECODir string
	// ECOSessionCap bounds concurrently open /v1/eco sessions; 0 means 8.
	ECOSessionCap int
	// Chaos, when non-nil, injects deterministic window-granular faults into
	// windowed jobs. Test-only.
	Chaos *faults.WindowChaos
	// Dispatcher, when non-nil, replaces the in-process windowed solve: a
	// coordinator daemon sets it to shard window jobs across worker daemons
	// (internal/cluster). Non-windowed jobs still solve locally.
	Dispatcher WindowDispatcher
	// Gate, when non-nil, applies per-tenant rate limits with priority
	// tiers ahead of the job queue; a refusal surfaces as 429 with the
	// gate's Retry-After hint.
	Gate AdmissionGate
	// ExtraMetrics, when non-nil, appends additional series (e.g. the
	// cluster registry) to the /metrics exposition.
	ExtraMetrics func(w io.Writer)
	// Logger receives structured per-job logs; nil discards them.
	Logger *slog.Logger
}

// WindowDispatcher routes a windowed job's per-window solves — the cluster
// coordinator implements it over worker daemons. The implementation must
// uphold the determinism contract: the committed placement is bit-identical
// to the local window.Legalize for the same design and options.
type WindowDispatcher interface {
	DispatchWindows(ctx context.Context, d *design.Design, opts window.Options) (*window.Stats, error)
}

// AdmissionGate decides whether a tenant's job may enter the queue at the
// given priority ("interactive" | "batch"). A refusal returns how long the
// tenant should wait, surfaced as Retry-After on the 429.
type AdmissionGate interface {
	Admit(tenant, priority string) (ok bool, retryAfter time.Duration)
}

// rateLimitedError carries a gate refusal's retry hint to the HTTP mapping.
type rateLimitedError struct {
	tenant string
	after  time.Duration
}

func (e *rateLimitedError) Error() string {
	return fmt.Sprintf("serve: tenant %q rate limit exceeded", e.tenant)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8
	}
	if c.CacheCap == 0 {
		c.CacheCap = 128
	}
	if c.WarmCap == 0 {
		c.WarmCap = 32
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 60 * time.Second
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.WindowRows <= 0 {
		c.WindowRows = window.DefaultWindowRows
	}
	if c.ECOSessionCap <= 0 {
		c.ECOSessionCap = 8
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// job is one admitted unit of work flowing from handler to worker.
type job struct {
	id     uint64
	key    string
	req    *Request
	ctx    context.Context
	cancel context.CancelFunc

	queuedAt time.Time
	done     chan struct{} // closed by the worker after rep/err are set
	rep      *report.Report
	err      error
}

// Server is the batching legalization service. Create with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg   Config
	cache *resultCache
	warm  *warmStore
	eco   *ecoRegistry
	stats *serverStats
	log   *slog.Logger

	queue chan *job

	// baseCtx parents every job context so Drain's hard stop can cancel
	// still-running solves through the usual cancellation paths.
	baseCtx  context.Context
	baseStop context.CancelFunc

	mu       sync.Mutex // guards draining + admission vs. queue close
	draining bool
	jobsWG   sync.WaitGroup // admitted jobs not yet terminal
	workers  sync.WaitGroup

	jobSeq uint64
	start  time.Time
}

// New builds and starts a server: the worker pool is live on return.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheCap),
		warm:     newWarmStore(cfg.WarmCap),
		eco:      newEcoRegistry(cfg.ECOSessionCap, cfg.ECODir),
		stats:    newServerStats(),
		log:      cfg.Logger,
		queue:    make(chan *job, cfg.QueueCap),
		baseCtx:  ctx,
		baseStop: stop,
		start:    time.Now(),
	}
	if cfg.ECODir != "" {
		s.recoverSessions()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/legalize", s.handleLegalize)
	mux.HandleFunc("POST /v1/eco", s.handleECO)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain gracefully stops the server: admission is closed immediately
// (readyz flips to 503, new jobs get 503), queued and in-flight jobs run to
// completion, and if ctx expires first the remaining jobs are canceled
// through their contexts — they then terminate with typed canceled errors
// rather than being abandoned, so no waiter hangs and no partial result is
// cached. Drain returns nil on a clean drain and ctx.Err() on a hard stop.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue) // safe: admission checks draining under mu before sending
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseStop() // hard stop: cancel remaining solves
		<-done       // workers still publish canceled results to waiters
	}
	s.workers.Wait()
	s.baseStop()
	return err
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.stats.queueDepth.add(-1)
		s.runJob(j)
	}
}

// runJob executes one admitted job and publishes the outcome to its waiters
// and, on success, the cache.
func (s *Server) runJob(j *job) {
	defer s.jobsWG.Done()
	defer j.cancel()
	s.stats.inflight.add(1)
	defer s.stats.inflight.add(-1)

	queueWait := time.Since(j.queuedAt)
	t0 := time.Now()

	var rep *report.Report
	err := mclgerr.FromContext(j.ctx)
	var parseDur, solveDur time.Duration
	if err == nil {
		tp := time.Now()
		d, derr := j.req.loadDesign()
		parseDur = time.Since(tp)
		s.stats.observeStage("parse", parseDur.Seconds())
		if derr != nil {
			err = mclgerr.Invalid(derr)
		} else {
			// Near-match acceleration: the warm store keys solver state by
			// topology, so a perturbed re-submit of a known design seeds the
			// MMSIM from the previous solution. Baseline methods carry no
			// reusable state, and windowed jobs solve per-band sub-designs
			// the whole-design warm state does not match.
			var warm *core.WarmState
			var coldIters int
			if !j.req.Windows && j.req.Method == "ours" {
				if warm = s.warm.get(j.req.topoKey()); warm != nil {
					coldIters = warm.ColdIterations()
				}
			}
			ts := time.Now()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			if j.req.Windows {
				rep, err = s.solveWindowed(j, d)
			} else {
				rep, err = j.req.solve(j.ctx, d, warm)
			}
			runtime.ReadMemStats(&m1)
			solveDur = time.Since(ts)
			s.stats.observeStage("solve", solveDur.Seconds())
			// Allocation accounting is process-wide (Mallocs is a global
			// counter), so with overlapping jobs the per-solve attribution
			// is approximate; at steady state it trends to the true
			// allocs/solve and a regression shows up as a trend break.
			s.stats.solveAllocs.add(m1.Mallocs - m0.Mallocs)
			s.stats.solveSamples.inc()
			if warm != nil && err == nil && rep != nil {
				if rep.Warm {
					s.warm.hits.inc()
					if saved := coldIters - rep.Iterations; saved > 0 {
						s.warm.iterSaved.add(uint64(saved))
					}
				} else {
					s.warm.misses.inc()
				}
			}
			// Audit-on-commit: certify the solved result before it is
			// published or cached. An audit error (including a placement
			// the audit re-run cannot reproduce) fails the job; a sealed
			// certificate that merely fails its checks is returned to the
			// caller with pass=false and counted.
			doAudit := j.req.Audit ||
				(s.cfg.AuditAll && j.req.Method == "ours" && !j.req.Resilient && !j.req.Windows)
			if err == nil && rep != nil && doAudit {
				ta := time.Now()
				cert, aerr := j.req.runAudit(j.ctx, d, rep)
				s.stats.observeStage("audit", time.Since(ta).Seconds())
				if aerr != nil {
					s.stats.auditDone("error")
					err = aerr
				} else {
					rep.Certificate = cert
					if cert.Pass {
						s.stats.auditDone("pass")
					} else {
						s.stats.auditDone("fail")
					}
				}
			}
		}
	}
	total := time.Since(t0)
	s.stats.observeStage("total", total.Seconds())

	class := mclgerr.Class(err)
	s.stats.jobDone(class)
	s.log.Info("job done",
		"id", j.id,
		"key", short(j.key),
		"class", class,
		"queue_ms", float64(queueWait)/float64(time.Millisecond),
		"parse_ms", float64(parseDur)/float64(time.Millisecond),
		"solve_ms", float64(solveDur)/float64(time.Millisecond),
		"total_ms", float64(total)/float64(time.Millisecond),
	)

	j.rep, j.err = rep, err
	close(j.done)
}

// errQueueFull / errDraining are admission-control refusals.
var (
	errQueueFull = errors.New("serve: queue at capacity")
	errDraining  = errors.New("serve: server is draining")
)

// Retry-After jitter bounds (seconds). A fixed hint synchronizes every
// refused client onto the same retry instant, re-saturating the queue in
// lockstep; a jittered hint spreads the retry storm.
const (
	retryAfterMin = 1
	retryAfterMax = 3
)

var (
	retryJitterMu sync.Mutex
	retryJitter   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// retryAfterHint returns a jittered Retry-After value in
// [retryAfterMin, retryAfterMax] whole seconds.
func retryAfterHint() string {
	retryJitterMu.Lock()
	n := retryAfterMin + retryJitter.Intn(retryAfterMax-retryAfterMin+1)
	retryJitterMu.Unlock()
	return strconv.Itoa(n)
}

// admit performs admission control: it either owns the job (nil) or refuses
// with errQueueFull / errDraining without blocking.
func (s *Server) admit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.stats.rejectedDraining.inc()
		return errDraining
	}
	select {
	case s.queue <- j:
		s.jobsWG.Add(1)
		s.stats.queueDepth.add(1)
		return nil
	default:
		s.stats.rejectedFull.inc()
		return errQueueFull
	}
}

func (s *Server) handleLegalize(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.refuse(w, http.StatusServiceUnavailable, "draining", "server is draining; resubmit elsewhere")
		s.stats.rejectedDraining.inc()
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.refuse(w, http.StatusBadRequest, "invalid_input", "malformed request body: "+err.Error())
		return
	}
	if err := req.validate(); err != nil {
		s.refuse(w, http.StatusBadRequest, "invalid_input", err.Error())
		return
	}
	// Resolve the windowed-mode defaults before the cache key is computed:
	// window_rows changes the partition (result-affecting, in the key);
	// hedge only changes scheduling (result-neutral, not in the key).
	if req.Windows || (s.cfg.WindowsAll && req.Method == "ours" && !req.Resilient && !req.Audit) {
		req.Windows = true
		if req.WindowRows == 0 {
			req.WindowRows = s.cfg.WindowRows
		}
		if req.Hedge == 0 {
			req.Hedge = s.cfg.HedgeQuantile
		}
		if req.Exact == 0 {
			req.Exact = s.cfg.ExactWindows
		}
	}

	key := req.key()
	if rep, ok := s.cache.lookup(key); ok {
		s.cache.hits.inc()
		s.respond(w, &req, rep, "hit")
		return
	}

	fl, leader, rep := s.cache.join(key)
	if rep != nil { // completed between lookup and join
		s.cache.hits.inc()
		s.respond(w, &req, rep, "hit")
		return
	}

	timeout := s.jobTimeout(&req)
	if !leader {
		// Join the in-flight solve: same design + options, so the solved
		// result is shared verbatim — one solve, N responses.
		select {
		case <-fl.done:
			if fl.err != nil {
				s.fail(w, fl.err)
				return
			}
			s.cache.hits.inc()
			s.respond(w, &req, fl.rep, "hit")
		case <-time.After(timeout):
			s.refuse(w, http.StatusGatewayTimeout, "canceled", "deadline expired waiting for the in-flight solve")
		case <-r.Context().Done():
			s.refuse(w, http.StatusGatewayTimeout, "canceled", "client went away")
		}
		return
	}

	// The tenant gate charges only leaders: joined followers share a solve
	// that is already paid for, and cache hits never reach this point.
	if s.cfg.Gate != nil {
		if ok, after := s.cfg.Gate.Admit(req.Tenant, req.priority()); !ok {
			err := &rateLimitedError{tenant: req.Tenant, after: after}
			s.stats.rejectedLimited.inc()
			s.cache.abort(key, fl, err)
			s.fail(w, err)
			return
		}
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	j := &job{
		id:       s.nextID(),
		key:      key,
		req:      &req,
		ctx:      ctx,
		cancel:   cancel,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}
	if err := s.admit(j); err != nil {
		cancel()
		s.cache.abort(key, fl, err)
		s.fail(w, err)
		return
	}
	s.log.Info("job admitted", "id", j.id, "key", short(key),
		"bench", req.Bench, "scale", req.Scale, "method", req.Method,
		"resilient", req.Resilient, "upload", len(req.Files) > 0,
		"timeout", timeout.String())

	// The worker closes j.done unconditionally; a client disconnect does
	// not cancel the solve, because joined waiters may still want it.
	<-j.done
	if j.err != nil {
		s.cache.abort(key, fl, j.err)
		s.fail(w, j.err)
		return
	}
	s.cache.misses.inc()
	s.cache.complete(key, fl, j.rep)
	s.respond(w, &req, j.rep, "miss")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(s.start).Round(time.Second))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.stats.writePrometheus(w, s.cache, s.warm)
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(w)
	}
}

// respond writes a success payload, cloning the shared report so the cache
// flag and placement stripping never mutate a cached entry.
func (s *Server) respond(w http.ResponseWriter, req *Request, rep *report.Report, cache string) {
	out := *rep
	out.Cache = cache
	if !req.IncludePlacement {
		out.Placement = nil
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&out)
}

// errorBody is the JSON failure payload.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class"`
}

// fail maps an error onto the HTTP surface via its mclgerr class.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var rl *rateLimitedError
	switch {
	case errors.As(err, &rl):
		secs := int(math.Ceil(rl.after.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.refuse(w, http.StatusTooManyRequests, "rate_limited", err.Error())
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", retryAfterHint())
		s.refuse(w, http.StatusTooManyRequests, "queue_full", err.Error())
	case errors.Is(err, errDraining):
		s.refuse(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, mclgerr.ErrInvalidInput):
		s.refuse(w, http.StatusBadRequest, mclgerr.Class(err), err.Error())
	case errors.Is(err, mclgerr.ErrCanceled):
		s.refuse(w, http.StatusGatewayTimeout, mclgerr.Class(err), err.Error())
	default:
		s.refuse(w, http.StatusUnprocessableEntity, mclgerr.Class(err), err.Error())
	}
}

func (s *Server) refuse(w http.ResponseWriter, status int, class, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(errorBody{Error: msg, Class: class})
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) jobTimeout(req *Request) time.Duration {
	t := s.cfg.DefaultJobTimeout
	if req.TimeoutMS > 0 {
		t = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if t > s.cfg.MaxJobTimeout {
		t = s.cfg.MaxJobTimeout
	}
	return t
}

func (s *Server) nextID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobSeq++
	return s.jobSeq
}

// short abbreviates a cache key for logs.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
