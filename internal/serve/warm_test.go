package serve

import (
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mclg/internal/bookshelf"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/serve/report"
)

// bookshelfFiles serializes a design into the upload-files map.
func bookshelfFiles(t *testing.T, d *design.Design) map[string]string {
	t.Helper()
	dir := t.TempDir()
	if err := bookshelf.Write(d, filepath.Join(dir, "up.aux")); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for comp, name := range map[string]string{
		"nodes": "up.nodes", "nets": "up.nets", "pl": "up.pl", "scl": "up.scl", "wts": "up.wts",
	} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		files[comp] = string(raw)
	}
	return files
}

// warmPair generates a suite design plus a ≤1%-perturbed near-match whose
// per-row orderings are unchanged (structure signature preserved).
func warmPair(t *testing.T) (base, perturbed map[string]string) {
	t.Helper()
	e, err := gen.FindEntry("pci_bridge32_b")
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, 0.004))
	if err != nil {
		t.Fatal(err)
	}
	base = bookshelfFiles(t, d)

	rng := rand.New(rand.NewSource(431))
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		c.GX += (rng.Float64()*2 - 1) * 1e-3
		c.X = c.GX
	}
	perturbed = bookshelfFiles(t, d)
	if base["pl"] == perturbed["pl"] {
		t.Fatal("perturbation did not change the pl component")
	}
	if base["nodes"] != perturbed["nodes"] || base["scl"] != perturbed["scl"] {
		t.Fatal("perturbation changed a non-pl component")
	}
	return base, perturbed
}

// TestWarmNearMatchAcceleration drives the full serving path: a perturbed
// re-submit of a known topology must be warm-seeded, converge in fewer
// iterations, and yield the placement a cold daemon produces for the same
// input, with the warm metrics reflecting the hit.
func TestWarmNearMatchAcceleration(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark twice")
	}
	base, perturbed := warmPair(t)
	_, ts := newTestServer(t, Config{})

	var cold report.Report
	if resp := post(t, ts.URL, &Request{Files: base}, &cold); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: HTTP %d", resp.StatusCode)
	}
	if cold.Warm {
		t.Fatal("first solve of a topology reported warm")
	}

	var warm report.Report
	if resp := post(t, ts.URL, &Request{Files: perturbed}, &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: HTTP %d", resp.StatusCode)
	}
	if !warm.Warm {
		t.Fatal("perturbed re-submit was not warm-seeded")
	}
	if warm.Cache != "miss" {
		t.Errorf("perturbed re-submit cache = %q, want miss (different exact key)", warm.Cache)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm solve took %d iterations, cold baseline %d", warm.Iterations, cold.Iterations)
	}

	// A fresh daemon with no warm state must produce the identical placement
	// for the perturbed input: warm seeding changes the starting iterate only.
	_, ref := newTestServer(t, Config{})
	var refRep report.Report
	if resp := post(t, ref.URL, &Request{Files: perturbed}, &refRep); resp.StatusCode != http.StatusOK {
		t.Fatalf("reference solve: HTTP %d", resp.StatusCode)
	}
	if refRep.PosHash != warm.PosHash {
		t.Fatalf("warm pos_hash %s != cold pos_hash %s", warm.PosHash, refRep.PosHash)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	metrics := string(raw)
	for _, want := range []string{
		"mclgd_warm_hits_total 1",
		"mclgd_warm_misses_total 1",
		"mclgd_warm_entries 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "mclgd_warm_iterations_saved_total") {
		t.Error("metrics missing mclgd_warm_iterations_saved_total")
	} else if strings.Contains(metrics, "mclgd_warm_iterations_saved_total 0\n") {
		t.Error("warm hit saved no iterations")
	}
	if !strings.Contains(metrics, "mclgd_solve_allocs_total") ||
		!strings.Contains(metrics, "mclgd_solve_alloc_samples_total 2") {
		t.Error("metrics missing solve allocation accounting")
	}
}

// TestWarmDisabled pins the opt-out: WarmCap < 0 turns the store off and
// every solve runs cold.
func TestWarmDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark twice")
	}
	base, perturbed := warmPair(t)
	_, ts := newTestServer(t, Config{WarmCap: -1})

	var first, second report.Report
	if resp := post(t, ts.URL, &Request{Files: base}, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL, &Request{Files: perturbed}, &second); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if first.Warm || second.Warm {
		t.Errorf("warm store disabled but Warm = %v/%v", first.Warm, second.Warm)
	}
}

// TestTopoKeyNearMatchRules pins what counts as "the same topology": cell
// positions and iteration-steering options are excluded, everything that
// shapes the assembled problem is included.
func TestTopoKeyNearMatchRules(t *testing.T) {
	base := &Request{Files: map[string]string{
		"nodes": "n", "pl": "p1", "scl": "s",
	}}
	if err := base.validate(); err != nil {
		t.Fatal(err)
	}
	k := base.topoKey()

	moved := &Request{Files: map[string]string{"nodes": "n", "pl": "p2", "scl": "s"}}
	if err := moved.validate(); err != nil {
		t.Fatal(err)
	}
	if moved.topoKey() != k {
		t.Error("a pl-only change must preserve the topology key")
	}
	if moved.key() == base.key() {
		t.Error("a pl change must still change the exact cache key")
	}

	eps := &Request{Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s"},
		Options: &OptionsJSON{Eps: 1e-6, MaxIter: 500, Workers: 4}}
	if err := eps.validate(); err != nil {
		t.Fatal(err)
	}
	if eps.topoKey() != k {
		t.Error("eps/max_iter/workers must not enter the topology key")
	}

	for name, req := range map[string]*Request{
		"nodes":      {Files: map[string]string{"nodes": "n2", "pl": "p1", "scl": "s"}},
		"scl":        {Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s2"}},
		"lambda":     {Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s"}, Options: &OptionsJSON{Lambda: 500}},
		"beta":       {Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s"}, Options: &OptionsJSON{Beta: 0.7}},
		"boundright": {Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s"}, Options: &OptionsJSON{BoundRight: true}},
		"method":     {Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s"}, Method: "dac16"},
		"resilient":  {Files: map[string]string{"nodes": "n", "pl": "p1", "scl": "s"}, Resilient: true},
	} {
		if err := req.validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if req.topoKey() == k {
			t.Errorf("changing %s must change the topology key", name)
		}
	}
}
