// Package report defines the machine-readable result payload shared by the
// mclgd serving layer and the mclg CLI's -json mode. Both surfaces emit the
// exact same schema, so a sweep harness can switch between "solve locally"
// and "submit to a daemon" without changing its result parser.
package report

import (
	"time"

	"mclg/internal/audit"
	"mclg/internal/design"
	"mclg/internal/metrics"
	"mclg/internal/regress"
	"mclg/internal/window"
)

// Placement carries the final cell state as parallel arrays indexed by cell
// ID. It is bit-exact: two reports with equal PosHash carry byte-identical
// placements.
type Placement struct {
	X       []float64 `json:"x"`
	Y       []float64 `json:"y"`
	Flipped []bool    `json:"flipped"`
}

// Report is the result of one legalization run.
type Report struct {
	Design        string `json:"design"`
	Cells         int    `json:"cells"`
	MultiRowCells int    `json:"multi_row_cells"`
	Method        string `json:"method"`

	// Rung and Attempts are set only for resilient runs: the cascade rung
	// that produced the accepted placement and how many rungs ran.
	Rung     string `json:"rung,omitempty"`
	Attempts int    `json:"attempts,omitempty"`

	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	Legal      bool `json:"legal"`
	Illegal    int  `json:"illegal"`
	Unplaced   int  `json:"unplaced"`

	DisplacementSites float64 `json:"displacement_sites"`
	MaxDispSites      float64 `json:"max_disp_sites"`
	AvgDispSites      float64 `json:"avg_disp_sites"`
	HPWL              float64 `json:"hpwl"`
	DeltaHPWL         float64 `json:"delta_hpwl"`

	BuildMS  float64 `json:"build_ms,omitempty"`
	SolveMS  float64 `json:"solve_ms,omitempty"`
	TetrisMS float64 `json:"tetris_ms,omitempty"`
	WallMS   float64 `json:"wall_ms"`

	// PosHash is the FNV-1a placement digest from internal/regress: equal
	// hashes mean bit-identical placements (the determinism contract).
	PosHash string `json:"pos_hash"`

	// Cache reports how a serving layer produced this result: "hit",
	// "miss", or empty for a local run.
	Cache string `json:"cache,omitempty"`

	// Warm reports that the MMSIM was seeded from a previous solve of the
	// same topology (a warm-store near-match). Warm affects only the
	// iteration count, never the placement: PosHash is identical to the
	// cold solve's.
	Warm bool `json:"warm,omitempty"`

	// Windows carries the fault-containment trace of a windowed run: how
	// the job was partitioned and how many windows were resumed from the
	// journal, retried, hedged, or degraded.
	Windows *WindowStats `json:"windows,omitempty"`

	// Certificate is the sealed audit certificate, present when the run was
	// audited (-audit locally, "audit": true on the wire, or a daemon
	// running with -audit). Its PosHash is the audit re-run's placement
	// digest and must equal the report's own PosHash.
	Certificate *audit.Certificate `json:"certificate,omitempty"`

	Placement *Placement `json:"placement,omitempty"`
}

// WindowStats is the windowed-run supervision trace. Total == Solved +
// Resumed on success; Resumed counts windows replayed from the write-ahead
// journal instead of being re-solved.
type WindowStats struct {
	Total        int `json:"total"`
	Solved       int `json:"solved"`
	Resumed      int `json:"resumed,omitempty"`
	Retries      int `json:"retries,omitempty"`
	Panics       int `json:"panics,omitempty"`
	HedgesIssued int `json:"hedges_issued,omitempty"`
	HedgesWon    int `json:"hedges_won,omitempty"`
	Degraded     int `json:"degraded,omitempty"`
	// Exact carries the exact refinement post-pass trace, present when the
	// run asked for it ("exact": K on the wire, -exact locally).
	Exact *ExactStats `json:"exact,omitempty"`
}

// ExactStats is the exact refinement post-pass trace: how many of the
// worst-displaced windows were re-solved with the branch-and-bound legalizer,
// how many strictly improved or were proven optimal, and the per-window
// measured optimality gaps.
type ExactStats struct {
	Selected int         `json:"selected"`
	Improved int         `json:"improved"`
	Proven   int         `json:"proven"`
	Skipped  int         `json:"skipped,omitempty"`
	MaxGap   float64     `json:"max_gap"`
	Gaps     []WindowGap `json:"gaps,omitempty"`
}

// WindowGap is one refined window's measured outcome. Gap is the normalized
// distance (cost − lower bound)/cost; Proven marks gaps that are exact (the
// search space was exhausted) rather than budget-truncated.
type WindowGap struct {
	Window        int     `json:"window"`
	Cells         int     `json:"cells"`
	Gap           float64 `json:"gap"`
	Proven        bool    `json:"proven"`
	Improved      bool    `json:"improved"`
	MaxDispBefore float64 `json:"max_disp_before"`
	MaxDispAfter  float64 `json:"max_disp_after"`
}

// WindowsFromStats converts a windowed run's supervision stats into the wire
// schema, exact refinement trace included. Both result surfaces (the mclgd
// serving layer and the mclg CLI's local -windows path) go through here so
// the schemas cannot drift.
func WindowsFromStats(st *window.Stats) *WindowStats {
	ws := &WindowStats{
		Total:        st.Windows,
		Solved:       st.Solved,
		Resumed:      st.Resumed,
		Retries:      st.Retries,
		Panics:       st.Panics,
		HedgesIssued: st.HedgesIssued,
		HedgesWon:    st.HedgesWon,
		Degraded:     st.Degraded,
	}
	if ex := st.Exact; ex != nil {
		res := &ExactStats{
			Selected: ex.Selected,
			Improved: ex.Improved,
			Proven:   ex.Proven,
			Skipped:  ex.Skipped,
			MaxGap:   ex.MaxGap,
		}
		for _, g := range ex.Gaps {
			res.Gaps = append(res.Gaps, WindowGap{
				Window:        g.Window,
				Cells:         g.Cells,
				Gap:           g.Gap,
				Proven:        g.Proven,
				Improved:      g.Improved,
				MaxDispBefore: g.MaxDispBefore,
				MaxDispAfter:  g.MaxDispAfter,
			})
		}
		ws.Exact = res
	}
	return ws
}

// FromDesign measures the design's current placement into a Report. Solver
// statistics (iterations, stage times, rung) are layered on by the caller.
func FromDesign(d *design.Design, method string, wall time.Duration) *Report {
	disp := metrics.MeasureDisplacement(d)
	multi := 0
	for _, c := range d.Cells {
		if c.RowSpan > 1 {
			multi++
		}
	}
	avg := 0.0
	if len(d.Cells) > 0 {
		avg = disp.TotalSites / float64(len(d.Cells))
	}
	return &Report{
		Design:            d.Name,
		Cells:             len(d.Cells),
		MultiRowCells:     multi,
		Method:            method,
		Legal:             design.CheckLegal(d).Legal(),
		DisplacementSites: disp.TotalSites,
		MaxDispSites:      disp.MaxSites,
		AvgDispSites:      avg,
		HPWL:              metrics.HPWL(d),
		DeltaHPWL:         metrics.DeltaHPWL(d),
		WallMS:            float64(wall) / float64(time.Millisecond),
		PosHash:           regress.PositionHash(d),
	}
}

// CapturePlacement snapshots the design's cell state into the report.
func (r *Report) CapturePlacement(d *design.Design) {
	p := &Placement{
		X:       make([]float64, len(d.Cells)),
		Y:       make([]float64, len(d.Cells)),
		Flipped: make([]bool, len(d.Cells)),
	}
	for i, c := range d.Cells {
		p.X[i], p.Y[i], p.Flipped[i] = c.X, c.Y, c.Flipped
	}
	r.Placement = p
}

// ApplyPlacement writes a report's placement back onto a design with the
// same cell count (e.g. the client's locally loaded copy). It returns false
// when the report carries no placement or the sizes disagree.
func (r *Report) ApplyPlacement(d *design.Design) bool {
	p := r.Placement
	if p == nil || len(p.X) != len(d.Cells) || len(p.Y) != len(d.Cells) || len(p.Flipped) != len(d.Cells) {
		return false
	}
	for i, c := range d.Cells {
		c.X, c.Y, c.Flipped = p.X[i], p.Y[i], p.Flipped[i]
	}
	return true
}
