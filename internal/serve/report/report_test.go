package report

import (
	"encoding/json"
	"testing"
	"time"

	"mclg/internal/design"
)

func mkDesign() *design.Design {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 100, RowHeight: 10, SiteW: 2})
	a := d.AddCell("a", 4, 10, design.VSS)
	a.GX, a.GY, a.X, a.Y = 10, 0, 12, 0
	b := d.AddCell("b", 4, 10, design.VSS)
	b.GX, b.GY, b.X, b.Y = 20, 10, 20, 10
	b.Flipped = true
	return d
}

func TestFromDesignMeasures(t *testing.T) {
	d := mkDesign()
	r := FromDesign(d, "ours", 1500*time.Microsecond)
	if r.Design != d.Name || r.Cells != 2 || r.Method != "ours" {
		t.Errorf("header fields: %+v", r)
	}
	if r.DisplacementSites != 1 { // cell a moved 2 dbu = 1 site
		t.Errorf("DisplacementSites = %g, want 1", r.DisplacementSites)
	}
	if r.AvgDispSites != 0.5 {
		t.Errorf("AvgDispSites = %g, want 0.5", r.AvgDispSites)
	}
	if r.WallMS != 1.5 {
		t.Errorf("WallMS = %g, want 1.5", r.WallMS)
	}
	if r.PosHash == "" {
		t.Error("PosHash empty")
	}
}

// TestPlacementRoundTrip pins the client contract: capture on the server,
// JSON across the wire, apply onto a fresh local copy → bit-identical
// positions and an unchanged digest.
func TestPlacementRoundTrip(t *testing.T) {
	d := mkDesign()
	r := FromDesign(d, "ours", 0)
	r.CapturePlacement(d)

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	fresh := mkDesign()
	fresh.Cells[0].X, fresh.Cells[0].Y = 0, 0 // scramble
	fresh.Cells[1].Flipped = false
	if !decoded.ApplyPlacement(fresh) {
		t.Fatal("ApplyPlacement refused a matching design")
	}
	for i, c := range fresh.Cells {
		o := d.Cells[i]
		if c.X != o.X || c.Y != o.Y || c.Flipped != o.Flipped {
			t.Errorf("cell %d: (%g,%g,%v) != (%g,%g,%v)", i, c.X, c.Y, c.Flipped, o.X, o.Y, o.Flipped)
		}
	}
	if got := FromDesign(fresh, "ours", 0).PosHash; got != r.PosHash {
		t.Errorf("pos_hash after round trip = %s, want %s", got, r.PosHash)
	}
}

func TestApplyPlacementRejectsMismatch(t *testing.T) {
	d := mkDesign()
	r := FromDesign(d, "ours", 0)
	if r.ApplyPlacement(d) {
		t.Error("ApplyPlacement must refuse when no placement is attached")
	}
	r.CapturePlacement(d)
	small := design.NewDesign(design.Config{NumRows: 4, NumSites: 100, RowHeight: 10, SiteW: 2})
	small.AddCell("only", 4, 10, design.VSS)
	if r.ApplyPlacement(small) {
		t.Error("ApplyPlacement must refuse a cell-count mismatch")
	}
}
