package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mclg/internal/bookshelf"
	"mclg/internal/cluster"
	"mclg/internal/gen"
	"mclg/internal/serve/report"
)

// newTestServer builds a server + httptest frontend; the cleanup drains it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

// post submits a request and decodes the response into out (which may be a
// *report.Report or *errorBody), returning the HTTP response for headers.
func post(t *testing.T, url string, req *Request, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/legalize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal response (HTTP %d): %v\n%s", resp.StatusCode, err, raw)
		}
	}
	return resp
}

func TestLegalizeBenchMissThenHit(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{})
	req := &Request{Bench: "fft_2", Scale: 0.004}

	var first report.Report
	if resp := post(t, ts.URL, req, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !first.Legal || first.Cache != "miss" || first.PosHash == "" {
		t.Fatalf("first response: %+v", first)
	}
	var second report.Report
	post(t, ts.URL, req, &second)
	if second.Cache != "hit" {
		t.Errorf("second response cache = %q, want hit", second.Cache)
	}
	if second.PosHash != first.PosHash {
		t.Errorf("cache hit changed pos_hash: %s vs %s", second.PosHash, first.PosHash)
	}
}

// TestConcurrentIdenticalJobsSingleSolve is the dedup acceptance test: two
// concurrent jobs of the same design+options must produce exactly one solve
// and one cache hit, with bit-identical placements.
func TestConcurrentIdenticalJobsSingleSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	s, ts := newTestServer(t, Config{Workers: 2})
	req := &Request{Bench: "des_perf_1", Scale: 0.004, IncludePlacement: true}

	var wg sync.WaitGroup
	reports := make([]*report.Report, 2)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rep report.Report
			if resp := post(t, ts.URL, req, &rep); resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: HTTP %d", i, resp.StatusCode)
				return
			}
			reports[i] = &rep
		}(i)
	}
	wg.Wait()
	if reports[0] == nil || reports[1] == nil {
		t.Fatal("a request failed")
	}

	_, hits, misses, _ := s.cache.stats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache traffic: %d misses, %d hits, want exactly 1 and 1", misses, hits)
	}
	caches := []string{reports[0].Cache, reports[1].Cache}
	if !(caches[0] == "miss" && caches[1] == "hit" || caches[0] == "hit" && caches[1] == "miss") {
		t.Errorf("cache labels = %v, want one miss + one hit", caches)
	}
	if reports[0].PosHash != reports[1].PosHash {
		t.Errorf("pos_hash diverged: %s vs %s", reports[0].PosHash, reports[1].PosHash)
	}
	if reports[0].Placement == nil || reports[1].Placement == nil {
		t.Fatal("placements missing from responses")
	}
	if !reflect.DeepEqual(reports[0].Placement, reports[1].Placement) {
		t.Error("placements are not bit-identical")
	}
}

// TestQueueSaturation is the admission-control acceptance test: with one
// busy worker and a full queue, the next job gets 429 + Retry-After; a hard
// drain then cancels the stuck jobs through their contexts, surfacing 504s
// instead of hung waiters.
func TestQueueSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("occupies a worker with a heavy solve")
	}
	s := New(Config{Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := func(scale float64) *Request {
		// eps far below achievable → the MMSIM grinds its full budget;
		// distinct scales → distinct cache keys, so no dedup interferes.
		return &Request{Bench: "superblue19", Scale: scale,
			Options: &OptionsJSON{Eps: 1e-12}, TimeoutMS: 60000}
	}

	type outcome struct {
		status int
		body   errorBody
	}
	results := make(chan outcome, 2)
	submit := func(req *Request) {
		var eb errorBody
		resp := post(t, ts.URL, req, &eb)
		results <- outcome{resp.StatusCode, eb}
	}

	go submit(slow(0.02))
	waitFor(t, "worker busy", func() bool { return s.stats.inflight.get() == 1 })
	go submit(slow(0.019))
	waitFor(t, "queue occupied", func() bool { return s.stats.queueDepth.get() == 1 })

	var eb errorBody
	resp := post(t, ts.URL, slow(0.018), &eb)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: HTTP %d, want 429 (%+v)", resp.StatusCode, eb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if eb.Class != "queue_full" {
		t.Errorf("429 class = %q, want queue_full", eb.Class)
	}
	if s.stats.rejectedFull.get() != 1 {
		t.Errorf("rejected_total{queue_full} = %d, want 1", s.stats.rejectedFull.get())
	}

	// Hard drain: the grace period expires immediately, so the in-flight
	// and queued jobs are canceled through their contexts and their
	// waiters receive typed 504s.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("hard drain should report the context error")
	}
	for i := 0; i < 2; i++ {
		select {
		case out := <-results:
			if out.status != http.StatusGatewayTimeout || out.body.Class != "canceled" {
				t.Errorf("canceled job: HTTP %d class %q, want 504 canceled", out.status, out.body.Class)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("canceled job never responded")
		}
	}
}

// TestDrainFinishesInFlight is the graceful-shutdown acceptance test: a job
// racing a drain still completes with an uncorrupted (verified-legal)
// result, and post-drain the server refuses work.
func TestDrainFinishesInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan *report.Report, 1)
	go func() {
		var rep report.Report
		if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.01}, &rep); resp.StatusCode != http.StatusOK {
			t.Errorf("in-flight job: HTTP %d", resp.StatusCode)
		}
		done <- &rep
	}()
	waitFor(t, "job admitted", func() bool {
		if s.stats.inflight.get() == 1 || s.stats.queueDepth.get() == 1 {
			return true
		}
		// The job may already have finished — that still exercises the
		// drain-after-work path below.
		c, _ := s.stats.jobs.Load("ok")
		return c.(*counter).get() >= 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	rep := <-done
	if !rep.Legal || rep.PosHash == "" {
		t.Errorf("drained job returned a corrupt result: %+v", rep)
	}

	// Readiness flips and new work is refused with 503.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: HTTP %d, want 503", resp.StatusCode)
	}
	var eb errorBody
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004}, &eb); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestMetricsSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{})
	req := &Request{Bench: "fft_2", Scale: 0.004}
	post(t, ts.URL, req, nil)
	post(t, ts.URL, req, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"mclgd_queue_depth 0",
		"mclgd_inflight_jobs 0",
		"mclgd_cache_hits_total 1",
		"mclgd_cache_misses_total 1",
		"mclgd_cache_entries 1",
		`mclgd_jobs_total{class="ok"} 1`,
		`mclgd_jobs_total{class="canceled"} 0`,
		`mclgd_rejected_total{reason="queue_full"} 0`,
		`mclgd_stage_seconds_bucket{stage="solve",le="+Inf"} 1`,
		`mclgd_stage_seconds_count{stage="parse"} 1`,
		`mclgd_stage_seconds_count{stage="total"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if resp.Header.Get("Content-Type") != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics content type = %q", resp.Header.Get("Content-Type"))
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
}

func TestInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"unknown bench", `{"bench":"nope"}`},
		{"bench and files", `{"bench":"fft_2","files":{"nodes":"x","pl":"y","scl":"z"}}`},
		{"bad method", `{"bench":"fft_2","method":"magic"}`},
		{"resilient baseline", `{"bench":"fft_2","method":"dac16","resilient":true}`},
		{"audit baseline", `{"bench":"fft_2","method":"dac16","audit":true}`},
		{"audit resilient", `{"bench":"fft_2","resilient":true,"audit":true}`},
		{"negative timeout", `{"bench":"fft_2","timeout_ms":-1}`},
		{"scale out of range", `{"bench":"fft_2","scale":99}`},
		{"files missing scl", `{"files":{"nodes":"x","pl":"y"}}`},
		{"unknown file component", `{"files":{"nodes":"x","pl":"y","scl":"z","foo":"w"}}`},
		{"unknown field", `{"bench":"fft_2","wat":1}`},
		{"malformed json", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var eb errorBody
			raw, _ := io.ReadAll(resp.Body)
			_ = json.Unmarshal(raw, &eb)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("HTTP %d, want 400 (%s)", resp.StatusCode, raw)
			}
			if eb.Class != "invalid_input" {
				t.Errorf("class = %q, want invalid_input", eb.Class)
			}
		})
	}
}

// TestUploadBookshelf round-trips a generated design through Bookshelf file
// upload and checks the daemon legalizes it.
func TestUploadBookshelf(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	e, err := gen.FindEntry("pci_bridge32_b")
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, 0.004))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aux := filepath.Join(dir, "up.aux")
	if err := bookshelf.Write(d, aux); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for comp, name := range map[string]string{
		"nodes": "up.nodes", "nets": "up.nets", "pl": "up.pl", "scl": "up.scl", "wts": "up.wts",
	} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue // optional components may not exist
		}
		files[comp] = string(raw)
	}
	_, ts := newTestServer(t, Config{})
	var rep report.Report
	if resp := post(t, ts.URL, &Request{Files: files}, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !rep.Legal {
		t.Error("uploaded design not legalized")
	}
	if rep.Cells != len(d.Cells) {
		t.Errorf("cells = %d, want %d", rep.Cells, len(d.Cells))
	}
}

// TestCacheKeyCanonicalization pins the content-addressing rules: omitted
// options hash like spelled-out defaults, Workers is result-neutral and
// excluded, and any result-affecting knob or source change changes the key.
func TestCacheKeyCanonicalization(t *testing.T) {
	base := &Request{Bench: "fft_2", Scale: 0.004}
	if err := base.validate(); err != nil {
		t.Fatal(err)
	}
	k := base.key()

	explicit := &Request{Bench: "fft_2", Scale: 0.004,
		Options: &OptionsJSON{Lambda: 1000, Beta: 0.5, Theta: 0.5, Eps: 1e-4}}
	if err := explicit.validate(); err != nil {
		t.Fatal(err)
	}
	if explicit.key() != k {
		t.Error("spelled-out defaults must hash like omitted options")
	}

	workers := &Request{Bench: "fft_2", Scale: 0.004, Options: &OptionsJSON{Workers: 8}}
	if err := workers.validate(); err != nil {
		t.Fatal(err)
	}
	if workers.key() != k {
		t.Error("workers must not enter the cache key (determinism contract)")
	}

	for name, req := range map[string]*Request{
		"lambda":    {Bench: "fft_2", Scale: 0.004, Options: &OptionsJSON{Lambda: 500}},
		"scale":     {Bench: "fft_2", Scale: 0.005},
		"bench":     {Bench: "fft_1", Scale: 0.004},
		"method":    {Bench: "fft_2", Scale: 0.004, Method: "dac16"},
		"resilient": {Bench: "fft_2", Scale: 0.004, Resilient: true},
	} {
		if err := req.validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if req.key() == k {
			t.Errorf("changing %s must change the cache key", name)
		}
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAuditOnCommit exercises the audit wiring: a job with "audit": true
// comes back with a sealed certificate whose re-run placement matches the
// served one, the certificate survives the cache, an unaudited request is a
// distinct cache entry without one, and the audit counters and stage
// histogram appear on /metrics.
func TestAuditOnCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("solves and audits a benchmark")
	}
	_, ts := newTestServer(t, Config{})
	req := &Request{Bench: "fft_2", Scale: 0.004, Audit: true}

	var first report.Report
	if resp := post(t, ts.URL, req, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	cert := first.Certificate
	if cert == nil {
		t.Fatal("audited response carries no certificate")
	}
	if !cert.Pass || !cert.Verify() {
		t.Fatalf("certificate not passing/verifying: %s", cert.Summary())
	}
	if cert.PosHash != first.PosHash {
		t.Errorf("certificate PosHash %s != report PosHash %s", cert.PosHash, first.PosHash)
	}

	var second report.Report
	post(t, ts.URL, req, &second)
	if second.Cache != "hit" || second.Certificate == nil || second.Certificate.Hash != cert.Hash {
		t.Errorf("cached audited response lost or changed the certificate (cache=%q)", second.Cache)
	}

	var plain report.Report
	post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004}, &plain)
	if plain.Cache != "miss" {
		t.Errorf("unaudited request shared the audited cache entry (cache=%q)", plain.Cache)
	}
	if plain.Certificate != nil {
		t.Error("unaudited response carries a certificate")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		`mclgd_audit_total{result="pass"} 1`,
		`mclgd_audit_total{result="fail"} 0`,
		`mclgd_audit_total{result="error"} 0`,
		`mclgd_stage_seconds_count{stage="audit"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAuditAllConfig: a daemon running with AuditAll certifies eligible jobs
// without the request asking, and skips ineligible (baseline) jobs instead
// of refusing them.
func TestAuditAllConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("solves and audits a benchmark")
	}
	_, ts := newTestServer(t, Config{AuditAll: true})

	var rep report.Report
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004}, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if rep.Certificate == nil || !rep.Certificate.Pass {
		t.Fatal("AuditAll did not attach a passing certificate to an eligible job")
	}

	var base report.Report
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004, Method: "dac16"}, &base); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline under AuditAll: HTTP %d", resp.StatusCode)
	}
	if base.Certificate != nil {
		t.Error("AuditAll audited a baseline method")
	}
}

// TestTenantGate429 pins the admission-gate surface: a tenant past its
// token-bucket limit gets 429 with the gate's Retry-After hint, interactive
// priority keeps its reserved headroom when batch is refused, cache hits are
// never charged, and tenant identity stays out of the cache key.
func TestTenantGate429(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	// Burst 2.5 at 0.5 tokens/s: batch needs 1 + 0.25*2.5 = 1.625 tokens, so
	// the first batch job is admitted (2.5 -> 1.5) and the second refused,
	// while an interactive job (need 1) still fits the remaining 1.5.
	gate := cluster.NewTenantGate(map[string]cluster.TenantLimit{
		"acme": {Rate: 0.5, Burst: 2.5},
	})
	_, ts := newTestServer(t, Config{Gate: gate})

	var rep report.Report
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004, Tenant: "acme"}, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch job: HTTP %d", resp.StatusCode)
	}

	var eb errorBody
	resp := post(t, ts.URL, &Request{Bench: "des_perf_1", Scale: 0.004, Tenant: "acme"}, &eb)
	if resp.StatusCode != http.StatusTooManyRequests || eb.Class != "rate_limited" {
		t.Fatalf("second batch job: HTTP %d class %q, want 429 rate_limited", resp.StatusCode, eb.Class)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After hint")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer second count", ra)
	}

	// The refused job at interactive priority fits the reserved headroom.
	var irep report.Report
	if resp := post(t, ts.URL, &Request{Bench: "des_perf_1", Scale: 0.004, Tenant: "acme", Priority: "interactive"}, &irep); resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive job: HTTP %d", resp.StatusCode)
	}

	// A repeat of the first job is a cache hit: served without a charge, and
	// under a different tenant name — tenant is not part of the cache key.
	admittedBefore, _ := gate.Counts()
	var hit report.Report
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004, Tenant: "someone-else"}, &hit); resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit job: HTTP %d", resp.StatusCode)
	}
	if hit.Cache != "hit" || hit.PosHash != rep.PosHash {
		t.Fatalf("repeat job: cache=%q pos_hash match=%v, want a hit with the same placement", hit.Cache, hit.PosHash == rep.PosHash)
	}
	if admittedAfter, _ := gate.Counts(); admittedAfter != admittedBefore {
		t.Fatalf("cache hit charged the tenant gate (%d -> %d admissions)", admittedBefore, admittedAfter)
	}

	// Refusals are visible on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), `mclgd_rejected_total{reason="rate_limited"} 1`) {
		t.Error("/metrics missing the rate_limited rejection count")
	}

	// A malformed priority is an input error, not a gate decision.
	var bad errorBody
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004, Priority: "urgent"}, &bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("priority \"urgent\": HTTP %d, want 400", resp.StatusCode)
	}
}
