package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mclg/internal/audit"
	"mclg/internal/baselines/chow"
	"mclg/internal/baselines/wang"
	"mclg/internal/bookshelf"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/mclgerr"
	"mclg/internal/serve/report"
	"mclg/internal/tetris"
)

// OptionsJSON is the wire form of the solver knobs a job may override.
// Zero/omitted fields take the paper defaults (core.DefaultOptions), exactly
// as the CLI flags do, so `{}` and a fully spelled-out default request hash
// to the same cache key.
type OptionsJSON struct {
	Lambda     float64 `json:"lambda,omitempty"`
	Beta       float64 `json:"beta,omitempty"`
	Theta      float64 `json:"theta,omitempty"`
	Eps        float64 `json:"eps,omitempty"`
	MaxIter    int     `json:"max_iter,omitempty"`
	AutoTheta  bool    `json:"autotheta,omitempty"`
	AutoTune   bool    `json:"autotune,omitempty"`
	BoundRight bool    `json:"boundright,omitempty"`
	// Workers shards the solver's hot stages. It deliberately does NOT
	// enter the cache key: the parallel hot path is bit-deterministic, so
	// any worker count yields the same placement.
	Workers int `json:"workers,omitempty"`
}

// Request is one legalization job. The design comes either from the named
// synthetic suite benchmark (Bench + Scale) or from inline Bookshelf
// component files (Files, keyed "nodes", "nets", "pl", "scl", "wts").
type Request struct {
	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// Files maps Bookshelf component extensions to file contents. "nodes",
	// "pl" and "scl" are required when used; "nets" and "wts" are optional.
	Files map[string]string `json:"files,omitempty"`

	Method    string       `json:"method,omitempty"` // ours | dac16 | dac16imp | aspdac17 (default ours)
	Resilient bool         `json:"resilient,omitempty"`
	Options   *OptionsJSON `json:"options,omitempty"`

	// TimeoutMS bounds the job's total time in the daemon, queue wait
	// included; 0 takes the server default. The deadline feeds the solver's
	// context-cancellation paths, so an expired job aborts mid-iteration
	// with a typed canceled error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// IncludePlacement asks for the full per-cell placement in the
	// response (the pos_hash digest is always included).
	IncludePlacement bool `json:"placement,omitempty"`

	// Audit asks for audit-on-commit: after the solve, the auditor re-runs
	// the pipeline independently, recomputes the optimality residuals,
	// cross-checks the relaxed solution against a reference solve, and the
	// response carries the sealed certificate. Requires method "ours"
	// without resilient (the certificate covers the standard pipeline).
	Audit bool `json:"audit,omitempty"`

	// Windows asks for fault-isolated windowed legalization: the design is
	// partitioned into row bands solved independently under supervision
	// (retry, hedging, degradation) and stitched deterministically. Requires
	// method "ours" without resilient or audit.
	Windows bool `json:"windows,omitempty"`
	// WindowRows overrides the rows per window; 0 takes the server default.
	// Result-affecting (it changes the partition), so it enters the cache
	// key after resolution.
	WindowRows int `json:"window_rows,omitempty"`
	// Exact asks for the exact refinement post-pass on a windowed job: after
	// stitch, the Exact windows with the worst committed displacement are
	// re-solved with the branch-and-bound legalizer and their measured
	// optimality gaps are reported. Result-affecting (verified improvements
	// commit), so it enters the cache key; 0 disables the pass.
	Exact int `json:"exact,omitempty"`
	// Hedge sets the straggler-hedging quantile in (0,1]; 0 takes the
	// server default. Like Workers it is result-neutral — hedged and
	// primary solves compute identical placements — so it does NOT enter
	// the cache key.
	Hedge float64 `json:"hedge,omitempty"`

	// Tenant names the submitting tenant for admission-queue rate limiting;
	// empty is the anonymous tenant. Priority picks the admission tier:
	// "interactive" may drain the tenant's token bucket, "batch" (the
	// default) must leave the interactive reserve standing. Both are
	// result-neutral — they decide *whether* a job is admitted, never what
	// it computes — so neither enters the cache key.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// priority resolves the admission tier, defaulting to batch.
func (r *Request) priority() string {
	if r.Priority == "" {
		return "batch"
	}
	return r.Priority
}

var validMethods = map[string]bool{"ours": true, "dac16": true, "dac16imp": true, "aspdac17": true}

// validate normalizes defaults in place and rejects malformed requests with
// ErrInvalidInput-matching errors.
func (r *Request) validate() error {
	if r.Method == "" {
		r.Method = "ours"
	}
	if !validMethods[r.Method] {
		return mclgerr.Invalidf("serve: unknown method %q", r.Method)
	}
	if r.Resilient && r.Method != "ours" {
		return mclgerr.Invalidf("serve: resilient mode requires method \"ours\"")
	}
	if r.Audit && (r.Method != "ours" || r.Resilient) {
		return mclgerr.Invalidf("serve: audit certifies the standard pipeline; it requires method \"ours\" without resilient")
	}
	if r.Windows && (r.Method != "ours" || r.Resilient || r.Audit) {
		return mclgerr.Invalidf("serve: windowed mode requires method \"ours\" without resilient or audit")
	}
	if !r.Windows && (r.WindowRows != 0 || r.Hedge != 0 || r.Exact != 0) {
		return mclgerr.Invalidf("serve: window_rows, hedge and exact require \"windows\": true")
	}
	if r.WindowRows < 0 {
		return mclgerr.Invalidf("serve: window_rows %d must be non-negative", r.WindowRows)
	}
	if r.Exact < 0 {
		return mclgerr.Invalidf("serve: exact %d must be non-negative", r.Exact)
	}
	if r.Hedge < 0 || r.Hedge > 1 {
		return mclgerr.Invalidf("serve: hedge %g out of range [0, 1]", r.Hedge)
	}
	switch r.Priority {
	case "", "batch", "interactive":
	default:
		return mclgerr.Invalidf("serve: priority %q must be \"batch\" or \"interactive\"", r.Priority)
	}
	switch {
	case r.Bench != "" && len(r.Files) > 0:
		return mclgerr.Invalidf("serve: request has both bench and files; pick one")
	case r.Bench != "":
		if _, err := gen.FindEntry(r.Bench); err != nil {
			return mclgerr.Invalid(err)
		}
		if r.Scale == 0 {
			r.Scale = 0.01
		}
		if r.Scale < 0 || r.Scale > 2 {
			return mclgerr.Invalidf("serve: scale %g out of range (0, 2]", r.Scale)
		}
	case len(r.Files) > 0:
		for _, req := range []string{"nodes", "pl", "scl"} {
			if r.Files[req] == "" {
				return mclgerr.Invalidf("serve: files upload missing %q component", req)
			}
		}
		for k := range r.Files {
			switch k {
			case "nodes", "nets", "pl", "scl", "wts":
			default:
				return mclgerr.Invalidf("serve: unknown files component %q", k)
			}
		}
	default:
		return mclgerr.Invalidf("serve: request needs bench or files")
	}
	if r.TimeoutMS < 0 {
		return mclgerr.Invalidf("serve: timeout_ms %d must be non-negative", r.TimeoutMS)
	}
	return nil
}

// coreOptions resolves the wire options against the paper defaults.
func (r *Request) coreOptions() core.Options {
	o := core.Options{}
	if j := r.Options; j != nil {
		o.Lambda, o.Beta, o.Theta, o.Eps = j.Lambda, j.Beta, j.Theta, j.Eps
		o.MaxIter, o.AutoTheta, o.BoundRight, o.Workers = j.MaxIter, j.AutoTheta, j.BoundRight, j.Workers
		o.AutoTune = j.AutoTune
	}
	return core.New(o).Opts
}

// key derives the content-addressed cache key: a SHA-256 over the design
// source (benchmark identity or uploaded file bytes) and every
// result-affecting option, resolved to post-default values. Workers is
// excluded — the determinism contract makes it result-neutral — so a sweep
// that varies only parallelism always hits.
func (r *Request) key() string {
	h := sha256.New()
	o := r.coreOptions()
	fmt.Fprintf(h, "method=%s|resilient=%v|audit=%v|windows=%v|window_rows=%d|exact=%d|",
		r.Method, r.Resilient, r.Audit, r.Windows, r.WindowRows, r.Exact)
	fmt.Fprintf(h, "lambda=%g|beta=%g|theta=%g|gamma=%g|eps=%g|maxiter=%d|restol=%g|autotheta=%v|autotune=%v|boundright=%v|",
		o.Lambda, o.Beta, o.Theta, o.Gamma, o.Eps, o.MaxIter, o.ResidualTol, o.AutoTheta, o.AutoTune, o.BoundRight)
	if r.Bench != "" {
		fmt.Fprintf(h, "bench=%s@%g", r.Bench, r.Scale)
	} else {
		comps := make([]string, 0, len(r.Files))
		for k := range r.Files {
			comps = append(comps, k)
		}
		sort.Strings(comps)
		for _, k := range comps {
			sum := sha256.Sum256([]byte(r.Files[k]))
			fmt.Fprintf(h, "file:%s=%x|", k, sum)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// topoKey derives the warm-store key: a SHA-256 over everything that shapes
// the solved problem's *structure* — the design source minus cell positions
// (the "pl" component is excluded from uploads; a suite benchmark's identity
// is bench+scale) and the structural options (λ enters the penalty matrix,
// β*/θ*/autotheta shape the cached splitting, boundright changes the
// constraint set, method/resilient select the solver). Iteration-steering
// options (eps, max_iter, timeout) are deliberately excluded: they change
// when the solve stops, not what problem it solves, so an eps sweep over one
// design shares a single warm state. Two requests with equal topoKey but
// different exact keys are exactly the near-matches the warm store exists
// for.
func (r *Request) topoKey() string {
	h := sha256.New()
	o := r.coreOptions()
	fmt.Fprintf(h, "method=%s|resilient=%v|", r.Method, r.Resilient)
	fmt.Fprintf(h, "lambda=%g|beta=%g|theta=%g|autotheta=%v|autotune=%v|boundright=%v|",
		o.Lambda, o.Beta, o.Theta, o.AutoTheta, o.AutoTune, o.BoundRight)
	if r.Bench != "" {
		fmt.Fprintf(h, "bench=%s@%g", r.Bench, r.Scale)
	} else {
		comps := make([]string, 0, len(r.Files))
		for k := range r.Files {
			if k == "pl" {
				continue // positions are exactly what a near-match perturbs
			}
			comps = append(comps, k)
		}
		sort.Strings(comps)
		for _, k := range comps {
			sum := sha256.Sum256([]byte(r.Files[k]))
			fmt.Fprintf(h, "file:%s=%x|", k, sum)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// loadDesign materializes the job's design. Uploaded Bookshelf components
// are staged into a throwaway directory for the hardened reader.
func (r *Request) loadDesign() (*design.Design, error) {
	if r.Bench != "" {
		e, err := gen.FindEntry(r.Bench)
		if err != nil {
			return nil, mclgerr.Invalid(err)
		}
		return gen.Generate(gen.SuiteSpec(e, r.Scale))
	}
	dir, err := os.MkdirTemp("", "mclgd-upload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var files bookshelf.Files
	for comp, content := range r.Files {
		p := filepath.Join(dir, "design."+comp)
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			return nil, err
		}
		switch comp {
		case "nodes":
			files.Nodes = p
		case "nets":
			files.Nets = p
		case "pl":
			files.Pl = p
		case "scl":
			files.Scl = p
		case "wts":
			files.Wts = p
		}
	}
	return bookshelf.ReadFiles(files, "upload")
}

// solve runs the requested legalizer on d and returns the report. The
// context carries the job deadline; every solver stage polls it. A non-nil
// warm carries solver state across same-topology jobs (method "ours" only;
// the baseline methods have no iterative state to reuse) — it accelerates
// the solve when the structure matches and is inert otherwise, never
// changing the final placement.
func (r *Request) solve(ctx context.Context, d *design.Design, warm *core.WarmState) (*report.Report, error) {
	t0 := time.Now()
	var (
		stats    *core.Stats
		rung     string
		attempts int
	)
	switch r.Method {
	case "ours":
		opts := r.coreOptions()
		opts.Warm = warm
		if r.Resilient {
			rs, err := core.NewResilient(core.ResilientOptions{Base: opts}).LegalizeContext(ctx, d)
			if err != nil {
				return nil, err
			}
			stats, rung, attempts = &rs.Stats, string(rs.Rung), len(rs.Attempts)
		} else {
			st, err := core.New(opts).LegalizeContext(ctx, d)
			if err != nil {
				return nil, err
			}
			stats = st
		}
	case "dac16":
		if err := chow.LegalizeContext(ctx, d); err != nil {
			return nil, err
		}
	case "dac16imp":
		if err := chow.LegalizeImprovedContext(ctx, d, chow.Options{}); err != nil {
			return nil, err
		}
	case "aspdac17":
		if err := wang.LegalizeContext(ctx, d, wang.Options{}); err != nil {
			return nil, err
		}
		if _, err := tetris.AllocateContext(ctx, d); err != nil {
			return nil, err
		}
	}
	rep := report.FromDesign(d, r.Method, time.Since(t0))
	rep.Rung, rep.Attempts = rung, attempts
	if stats != nil {
		rep.Iterations = stats.Iterations
		rep.Converged = stats.Converged
		rep.Warm = stats.WarmSeeded
		rep.Illegal = stats.Illegal
		rep.Unplaced = stats.Unplaced
		rep.BuildMS = float64(stats.BuildTime) / float64(time.Millisecond)
		rep.SolveMS = float64(stats.SolveTime) / float64(time.Millisecond)
		rep.TetrisMS = float64(stats.TetrisTime) / float64(time.Millisecond)
	}
	if !rep.Legal {
		return rep, &mclgerr.StageError{
			Stage:  r.Method,
			Err:    mclgerr.ErrUnplacedCells,
			Detail: "solver returned but the placement failed the legality checker",
		}
	}
	rep.CapturePlacement(d)
	return rep, nil
}

// runAudit certifies a solved job: the auditor re-runs the pipeline from the
// design's global positions (d's solved state is not trusted or reused) and
// the returned certificate's PosHash must reproduce the served placement —
// a mismatch means the determinism contract broke and fails the job.
func (r *Request) runAudit(ctx context.Context, d *design.Design, rep *report.Report) (*audit.Certificate, error) {
	cert, err := audit.Run(ctx, d, audit.Options{Core: r.coreOptions()})
	if err != nil {
		return nil, mclgerr.Stage("audit", err)
	}
	if cert.PosHash != rep.PosHash {
		return nil, &mclgerr.StageError{
			Stage:  "audit",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: fmt.Sprintf("audit re-run placement %s does not reproduce served placement %s", cert.PosHash, rep.PosHash),
		}
	}
	return cert, nil
}
