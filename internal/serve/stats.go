package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"mclg/internal/mclgerr"
	"mclg/internal/window"
)

// counter is a monotonically increasing uint64.
type counter struct{ v atomic.Uint64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n uint64) { c.v.Add(n) }
func (c *counter) get() uint64  { return c.v.Load() }

// gauge is a signed instantaneous value (queue depth, in-flight jobs).
type gauge struct{ v atomic.Int64 }

func (g *gauge) add(d int64) { g.v.Add(d) }
func (g *gauge) get() int64  { return g.v.Load() }

// stageBuckets are the upper bounds (seconds) of the per-stage latency
// histograms: 1 ms to 60 s, roughly ×2.5 per step — wide enough to cover
// both a cache-warm parse and a full superblue solve.
var stageBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram in Prometheus semantics:
// counts[i] observations ≤ stageBuckets[i], plus a +Inf overflow.
type histogram struct {
	mu     sync.Mutex
	counts []uint64
	inf    uint64
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(stageBuckets))}
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range stageBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.inf++
	h.sum += seconds
	h.total++
}

// serverStats is the daemon's observability registry. Everything it exposes
// is required by the serving contract: queue depth, in-flight jobs, cache
// traffic, admission rejections, terminal jobs by mclgerr class, and
// per-stage latency histograms.
type serverStats struct {
	queueDepth gauge
	inflight   gauge

	rejectedFull     counter // 429: queue at capacity
	rejectedDraining counter // 503: submitted during drain
	rejectedLimited  counter // 429: tenant over its admission rate limit

	// solveAllocs accumulates the process-wide Mallocs delta observed
	// around each solve; solveSamples counts the solves sampled, so
	// allocs/solve = solveAllocs / solveSamples. Approximate under
	// concurrency (see runJob), exact when jobs do not overlap.
	solveAllocs  counter
	solveSamples counter

	jobs sync.Map // class string -> *counter

	windows sync.Map // event string -> *counter (windowed-run supervision)

	// Exact refinement post-pass surface: outcome counters plus the worst
	// measured optimality gap seen since start (atomic float64 bits).
	exacts      sync.Map // event string -> *counter
	exactMaxGap atomic.Uint64

	audits sync.Map // result string ("pass" | "fail" | "error") -> *counter

	stages sync.Map // stage string -> *histogram

	// ECO session surface: live session gauge, lifecycle event counters,
	// and per-apply outcomes by mclgerr class.
	ecoSessions gauge
	ecoEvents   sync.Map // event string -> *counter
	ecoApplies  sync.Map // class string -> *counter
}

func newServerStats() *serverStats {
	s := &serverStats{}
	// Pre-register every class and stage so the series exist (at zero)
	// from the first scrape — dashboards should never see gaps appear.
	for _, class := range mclgerr.Classes() {
		s.jobs.Store(class, &counter{})
	}
	for _, result := range []string{"pass", "fail", "error"} {
		s.audits.Store(result, &counter{})
	}
	for _, ev := range windowEvents {
		s.windows.Store(ev, &counter{})
	}
	for _, ev := range exactEvents {
		s.exacts.Store(ev, &counter{})
	}
	for _, st := range []string{"parse", "solve", "audit", "total", "eco_create", "eco_apply", "eco_commit"} {
		s.stages.Store(st, newHistogram())
	}
	for _, ev := range ecoEventNames {
		s.ecoEvents.Store(ev, &counter{})
	}
	for _, class := range mclgerr.Classes() {
		s.ecoApplies.Store(class, &counter{})
	}
	return s
}

// ecoEventNames are the pre-registered ECO session lifecycle series.
var ecoEventNames = []string{
	"created", "resumed", "deltas", "committed", "commit_failed", "closed",
}

// ecoEvent bumps one session lifecycle counter by n.
func (s *serverStats) ecoEvent(event string, n int) {
	if n <= 0 {
		return
	}
	c, _ := s.ecoEvents.LoadOrStore(event, &counter{})
	c.(*counter).add(uint64(n))
}

// ecoApplyDone records one delta-batch apply outcome by mclgerr class.
func (s *serverStats) ecoApplyDone(class string) {
	c, _ := s.ecoApplies.LoadOrStore(class, &counter{})
	c.(*counter).inc()
}

func (s *serverStats) jobDone(class string) {
	c, _ := s.jobs.LoadOrStore(class, &counter{})
	c.(*counter).inc()
}

func (s *serverStats) auditDone(result string) {
	c, _ := s.audits.LoadOrStore(result, &counter{})
	c.(*counter).inc()
}

// windowEvents are the pre-registered windowed-run supervision series.
var windowEvents = []string{
	"solved", "resumed", "retried", "panicked",
	"hedge_issued", "hedge_won", "degraded",
}

// windowAdd bumps one windowed-run event counter by n.
func (s *serverStats) windowAdd(event string, n int) {
	if n <= 0 {
		return
	}
	c, _ := s.windows.LoadOrStore(event, &counter{})
	c.(*counter).add(uint64(n))
}

// windowDone folds one windowed run's supervision stats into the registry.
func (s *serverStats) windowDone(st *window.Stats) {
	s.windowAdd("solved", st.Solved)
	s.windowAdd("resumed", st.Resumed)
	s.windowAdd("retried", st.Retries)
	s.windowAdd("panicked", st.Panics)
	s.windowAdd("hedge_issued", st.HedgesIssued)
	s.windowAdd("hedge_won", st.HedgesWon)
	s.windowAdd("degraded", st.Degraded)
	if st.Exact != nil {
		s.exactDone(st.Exact)
	}
}

// exactEvents are the pre-registered exact refinement post-pass series.
var exactEvents = []string{"selected", "improved", "proven", "skipped"}

// exactAdd bumps one exact post-pass event counter by n.
func (s *serverStats) exactAdd(event string, n int) {
	if n <= 0 {
		return
	}
	c, _ := s.exacts.LoadOrStore(event, &counter{})
	c.(*counter).add(uint64(n))
}

// exactDone folds one exact refinement post-pass into the registry.
func (s *serverStats) exactDone(ex *window.ExactStats) {
	s.exactAdd("selected", ex.Selected)
	s.exactAdd("improved", ex.Improved)
	s.exactAdd("proven", ex.Proven)
	s.exactAdd("skipped", ex.Skipped)
	// High-water max over the measured gaps: CAS so concurrent jobs never
	// lose a larger observation.
	for {
		old := s.exactMaxGap.Load()
		if ex.MaxGap <= math.Float64frombits(old) {
			return
		}
		if s.exactMaxGap.CompareAndSwap(old, math.Float64bits(ex.MaxGap)) {
			return
		}
	}
}

func (s *serverStats) observeStage(stage string, seconds float64) {
	h, _ := s.stages.LoadOrStore(stage, newHistogram())
	h.(*histogram).observe(seconds)
}

// writePrometheus renders the registry (and the cache and warm-store
// counters) in the Prometheus text exposition format, series sorted for
// scrape stability.
func (s *serverStats) writePrometheus(w io.Writer, cache *resultCache, warm *warmStore) {
	entries, hits, misses, evictions := cache.stats()
	wEntries, wHits, wMisses, wEvictions, wSaved := warm.stats()

	fmt.Fprintf(w, "# HELP mclgd_queue_depth Jobs admitted but not yet picked up by a worker.\n")
	fmt.Fprintf(w, "# TYPE mclgd_queue_depth gauge\n")
	fmt.Fprintf(w, "mclgd_queue_depth %d\n", s.queueDepth.get())
	fmt.Fprintf(w, "# HELP mclgd_inflight_jobs Jobs currently being solved.\n")
	fmt.Fprintf(w, "# TYPE mclgd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "mclgd_inflight_jobs %d\n", s.inflight.get())

	fmt.Fprintf(w, "# HELP mclgd_cache_entries Completed results resident in the LRU.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cache_entries gauge\n")
	fmt.Fprintf(w, "mclgd_cache_entries %d\n", entries)
	fmt.Fprintf(w, "# HELP mclgd_cache_hits_total Requests served without a new solve (store hit or in-flight join).\n")
	fmt.Fprintf(w, "# TYPE mclgd_cache_hits_total counter\n")
	fmt.Fprintf(w, "mclgd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP mclgd_cache_misses_total Requests that required a new solve.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cache_misses_total counter\n")
	fmt.Fprintf(w, "mclgd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP mclgd_cache_evictions_total LRU entries dropped past capacity.\n")
	fmt.Fprintf(w, "# TYPE mclgd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "mclgd_cache_evictions_total %d\n", evictions)

	fmt.Fprintf(w, "# HELP mclgd_warm_entries Topologies with resident warm-start solver state.\n")
	fmt.Fprintf(w, "# TYPE mclgd_warm_entries gauge\n")
	fmt.Fprintf(w, "mclgd_warm_entries %d\n", wEntries)
	fmt.Fprintf(w, "# HELP mclgd_warm_hits_total Solves seeded from a previous same-topology solution.\n")
	fmt.Fprintf(w, "# TYPE mclgd_warm_hits_total counter\n")
	fmt.Fprintf(w, "mclgd_warm_hits_total %d\n", wHits)
	fmt.Fprintf(w, "# HELP mclgd_warm_misses_total Solves through the warm store that ran cold (first sight or structure change).\n")
	fmt.Fprintf(w, "# TYPE mclgd_warm_misses_total counter\n")
	fmt.Fprintf(w, "mclgd_warm_misses_total %d\n", wMisses)
	fmt.Fprintf(w, "# HELP mclgd_warm_evictions_total Warm states dropped past capacity.\n")
	fmt.Fprintf(w, "# TYPE mclgd_warm_evictions_total counter\n")
	fmt.Fprintf(w, "mclgd_warm_evictions_total %d\n", wEvictions)
	fmt.Fprintf(w, "# HELP mclgd_warm_iterations_saved_total MMSIM iterations saved by warm seeding vs the cold baseline of each topology.\n")
	fmt.Fprintf(w, "# TYPE mclgd_warm_iterations_saved_total counter\n")
	fmt.Fprintf(w, "mclgd_warm_iterations_saved_total %d\n", wSaved)

	fmt.Fprintf(w, "# HELP mclgd_solve_allocs_total Heap allocations attributed to solves (process-wide Mallocs delta; approximate under concurrency).\n")
	fmt.Fprintf(w, "# TYPE mclgd_solve_allocs_total counter\n")
	fmt.Fprintf(w, "mclgd_solve_allocs_total %d\n", s.solveAllocs.get())
	fmt.Fprintf(w, "# HELP mclgd_solve_alloc_samples_total Solves sampled for allocation accounting (allocs/solve = allocs_total / samples_total).\n")
	fmt.Fprintf(w, "# TYPE mclgd_solve_alloc_samples_total counter\n")
	fmt.Fprintf(w, "mclgd_solve_alloc_samples_total %d\n", s.solveSamples.get())

	fmt.Fprintf(w, "# HELP mclgd_rejected_total Admissions refused, by reason.\n")
	fmt.Fprintf(w, "# TYPE mclgd_rejected_total counter\n")
	fmt.Fprintf(w, "mclgd_rejected_total{reason=\"queue_full\"} %d\n", s.rejectedFull.get())
	fmt.Fprintf(w, "mclgd_rejected_total{reason=\"draining\"} %d\n", s.rejectedDraining.get())
	fmt.Fprintf(w, "mclgd_rejected_total{reason=\"rate_limited\"} %d\n", s.rejectedLimited.get())

	fmt.Fprintf(w, "# HELP mclgd_audit_total Audit-on-commit outcomes (pass/fail = sealed certificate verdict, error = audit could not complete).\n")
	fmt.Fprintf(w, "# TYPE mclgd_audit_total counter\n")
	for _, result := range sortedKeys(&s.audits) {
		c, _ := s.audits.Load(result)
		fmt.Fprintf(w, "mclgd_audit_total{result=%q} %d\n", result, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_windows_total Windowed-run supervision events (solved/resumed = how each window completed; retried/panicked/hedge_issued/hedge_won/degraded = fault handling).\n")
	fmt.Fprintf(w, "# TYPE mclgd_windows_total counter\n")
	for _, ev := range sortedKeys(&s.windows) {
		c, _ := s.windows.Load(ev)
		fmt.Fprintf(w, "mclgd_windows_total{event=%q} %d\n", ev, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_exact_total Exact refinement post-pass outcomes (selected = windows re-solved by branch-and-bound; improved = checker-verified strict improvements committed; proven = windows proven optimal; skipped = solver could not finish).\n")
	fmt.Fprintf(w, "# TYPE mclgd_exact_total counter\n")
	for _, ev := range sortedKeys(&s.exacts) {
		c, _ := s.exacts.Load(ev)
		fmt.Fprintf(w, "mclgd_exact_total{event=%q} %d\n", ev, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_exact_max_gap Largest normalized optimality gap measured by any exact post-pass since start (0 = every refined window proven optimal).\n")
	fmt.Fprintf(w, "# TYPE mclgd_exact_max_gap gauge\n")
	fmt.Fprintf(w, "mclgd_exact_max_gap %g\n", math.Float64frombits(s.exactMaxGap.Load()))

	fmt.Fprintf(w, "# HELP mclgd_eco_sessions Live ECO delta sessions.\n")
	fmt.Fprintf(w, "# TYPE mclgd_eco_sessions gauge\n")
	fmt.Fprintf(w, "mclgd_eco_sessions %d\n", s.ecoSessions.get())

	fmt.Fprintf(w, "# HELP mclgd_eco_events_total ECO session lifecycle events (created/resumed/closed = sessions; deltas = accepted deltas; committed/commit_failed = replay-certification verdicts).\n")
	fmt.Fprintf(w, "# TYPE mclgd_eco_events_total counter\n")
	for _, ev := range sortedKeys(&s.ecoEvents) {
		c, _ := s.ecoEvents.Load(ev)
		fmt.Fprintf(w, "mclgd_eco_events_total{event=%q} %d\n", ev, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_eco_applies_total Delta-batch applies by mclgerr class (ok = committed checker-verified).\n")
	fmt.Fprintf(w, "# TYPE mclgd_eco_applies_total counter\n")
	for _, class := range sortedKeys(&s.ecoApplies) {
		c, _ := s.ecoApplies.Load(class)
		fmt.Fprintf(w, "mclgd_eco_applies_total{class=%q} %d\n", class, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_jobs_total Terminal jobs by mclgerr class (ok = verified legal).\n")
	fmt.Fprintf(w, "# TYPE mclgd_jobs_total counter\n")
	for _, class := range sortedKeys(&s.jobs) {
		c, _ := s.jobs.Load(class)
		fmt.Fprintf(w, "mclgd_jobs_total{class=%q} %d\n", class, c.(*counter).get())
	}

	fmt.Fprintf(w, "# HELP mclgd_stage_seconds Per-stage job latency.\n")
	fmt.Fprintf(w, "# TYPE mclgd_stage_seconds histogram\n")
	for _, stage := range sortedKeys(&s.stages) {
		v, _ := s.stages.Load(stage)
		h := v.(*histogram)
		h.mu.Lock()
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "mclgd_stage_seconds_bucket{stage=%q,le=%q} %d\n", stage, trimFloat(ub), h.counts[i])
		}
		fmt.Fprintf(w, "mclgd_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, h.inf)
		fmt.Fprintf(w, "mclgd_stage_seconds_sum{stage=%q} %g\n", stage, h.sum)
		fmt.Fprintf(w, "mclgd_stage_seconds_count{stage=%q} %d\n", stage, h.total)
		h.mu.Unlock()
	}
}

func sortedKeys(m *sync.Map) []string {
	var keys []string
	m.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

// trimFloat formats a bucket bound the way Prometheus clients expect
// (no exponent, no trailing zeros).
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
