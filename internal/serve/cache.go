package serve

import (
	"container/list"
	"sync"

	"mclg/internal/serve/report"
)

// cacheEntry is one completed result resident in the LRU.
type cacheEntry struct {
	key string
	rep *report.Report
}

// flight is one in-progress solve that concurrent identical requests join.
// The leader closes done exactly once after filling rep or err.
type flight struct {
	done chan struct{}
	rep  *report.Report
	err  error
}

// resultCache is a content-addressed result store with LRU eviction plus
// singleflight semantics: while a key is being solved, identical requests
// wait for the in-flight solve instead of enqueueing a duplicate job. Only
// successful results are cached; a failed flight propagates its error to the
// joined waiters and leaves the cache unchanged, so a transient failure
// (deadline, saturation) does not poison the key.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits, misses, evictions counter
}

// newResultCache builds a cache holding up to cap completed results.
// cap <= 0 disables storage (every lookup misses) but dedup still works.
func newResultCache(cap int) *resultCache {
	return &resultCache{
		cap:      cap,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// lookup returns the cached report for key, bumping it to most recently
// used. The boolean reports a hit; counters are the caller's job (a hit here
// is counted by the handler so dedup-joins and store-hits share one meaning:
// "served without a new solve").
func (c *resultCache) lookup(key string) (*report.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// join registers interest in key. The first caller since the last completion
// becomes the leader (leader == true) and must eventually call complete or
// abort exactly once; every other caller gets the existing flight to wait
// on. If the key completed while the caller was deciding, the cached report
// is returned directly (rep != nil).
func (c *resultCache) join(key string) (f *flight, leader bool, rep *report.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return nil, false, el.Value.(*cacheEntry).rep
	}
	if f, ok := c.inflight[key]; ok {
		return f, false, nil
	}
	f = &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return f, true, nil
}

// complete publishes the leader's successful result: it is stored in the
// LRU (evicting the least recently used entry past capacity) and broadcast
// to every joined waiter.
func (c *resultCache) complete(key string, f *flight, rep *report.Report) {
	c.mu.Lock()
	f.rep = rep
	delete(c.inflight, key)
	if c.cap > 0 {
		if el, ok := c.entries[key]; ok {
			el.Value.(*cacheEntry).rep = rep
			c.ll.MoveToFront(el)
		} else {
			c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, rep: rep})
			for c.ll.Len() > c.cap {
				last := c.ll.Back()
				c.ll.Remove(last)
				delete(c.entries, last.Value.(*cacheEntry).key)
				c.evictions.inc()
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// abort publishes the leader's failure to the joined waiters without
// caching anything.
func (c *resultCache) abort(key string, f *flight, err error) {
	c.mu.Lock()
	f.err = err
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// stats returns the current entry count alongside lifetime counters.
func (c *resultCache) stats() (entries int, hits, misses, evictions uint64) {
	c.mu.Lock()
	entries = c.ll.Len()
	c.mu.Unlock()
	return entries, c.hits.get(), c.misses.get(), c.evictions.get()
}
