package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mclg/internal/eco"
	"mclg/internal/gen"
)

// serveHTTP wraps an existing Server in an httptest frontend and returns
// its base URL; cleanup closes the frontend and drains the server.
func serveHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return ts.URL
}

// postECO submits one /v1/eco action and decodes the response.
func postECO(t *testing.T, url string, req *ecoRequest) (*ecoResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/eco", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out ecoResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("unmarshal eco response: %v\n%s", err, raw)
		}
	}
	return &out, resp
}

// ecoMoves builds a valid move batch for the fft_2@0.004 bench: the first n
// movable cells pushed to distinct legal-ish targets inside the core.
func ecoMoves(t *testing.T, n int) []eco.Delta {
	t.Helper()
	e, err := gen.FindEntry("fft_2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, 0.004))
	if err != nil {
		t.Fatal(err)
	}
	var out []eco.Delta
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		out = append(out, eco.Delta{
			Op: eco.OpMove, Cell: c.ID,
			X: d.Core.Lo.X + float64(4+2*len(out))*d.SiteW,
			Y: d.Core.Lo.Y + float64(1+len(out)%3)*d.RowHeight,
		})
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("bench has fewer than %d movable cells", n)
	return nil
}

// TestECOSessionLifecycle drives the full create → apply → commit → close
// loop over HTTP against an in-memory (non-durable) registry.
func TestECOSessionLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{})

	created, resp := postECO(t, ts.URL, &ecoRequest{Action: "create", Bench: "fft_2", Scale: 0.004})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	if created.Session == "" || created.Seq != 0 || created.PosHash == "" {
		t.Fatalf("create response: %+v", created)
	}

	applied, resp := postECO(t, ts.URL, &ecoRequest{
		Action: "apply", Session: created.Session, Deltas: ecoMoves(t, 3),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: HTTP %d", resp.StatusCode)
	}
	if applied.Seq != 1 || applied.Apply == nil || applied.Apply.Runs == 0 {
		t.Fatalf("apply response: %+v", applied)
	}
	if applied.PosHash == created.PosHash {
		t.Fatalf("apply did not change the placement hash")
	}

	committed, resp := postECO(t, ts.URL, &ecoRequest{
		Action: "commit", Session: created.Session, IncludePlacement: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: HTTP %d", resp.StatusCode)
	}
	cert := committed.Certificate
	if cert == nil || !cert.Pass || !cert.Match || !cert.Legal {
		t.Fatalf("commit certificate: %+v", cert)
	}
	if cert.PosHash != applied.PosHash {
		t.Fatalf("certificate hash %s != applied hash %s", cert.PosHash, applied.PosHash)
	}
	if committed.Placement == nil || len(committed.Placement.X) != committed.Cells {
		t.Fatalf("commit placement missing or wrong size: %+v", committed.Placement)
	}

	if _, resp = postECO(t, ts.URL, &ecoRequest{Action: "close", Session: created.Session}); resp.StatusCode != http.StatusOK {
		t.Fatalf("close: HTTP %d", resp.StatusCode)
	}
	// The session is gone: further applies are invalid input.
	if _, resp = postECO(t, ts.URL, &ecoRequest{
		Action: "apply", Session: created.Session, Deltas: ecoMoves(t, 1),
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("apply after close: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestECOInvalidRequests pins the request validation and typed rejection
// surface: malformed actions, missing sessions, and invalid deltas all fail
// with 400 and never create state.
func TestECOInvalidRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []*ecoRequest{
		{Action: "mutate"},
		{Action: "create", Bench: "fft_2", Scale: 0.004, Session: "bad id!"},
		{Action: "create", Bench: "fft_2", Scale: 0.004, Deltas: []eco.Delta{{Op: eco.OpDelete, Cell: 1}}},
		{Action: "apply", Deltas: []eco.Delta{{Op: eco.OpDelete, Cell: 1}}},
		{Action: "apply", Session: "nope", Deltas: []eco.Delta{{Op: eco.OpDelete, Cell: 1}}},
		{Action: "commit"},
		{Action: "close", Session: "nope"},
	}
	for _, req := range cases {
		if _, resp := postECO(t, ts.URL, req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: HTTP %d, want 400", req, resp.StatusCode)
		}
	}
	if n := s.eco.count(); n != 0 {
		t.Fatalf("invalid requests left %d sessions", n)
	}
}

// TestECORestartRecovery is the durability acceptance test: a daemon restart
// mid-session must resume the session from its delta log bit-identically —
// the recovered hash matches the pre-crash hash, subsequent applies continue
// the sequence, and the replay certificate still passes.
func TestECORestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("solves benchmarks across a restart")
	}
	dir := t.TempDir()
	moves := ecoMoves(t, 4)

	// First daemon: durable create + two applied batches, then it "dies"
	// (the test server goes away without closing the session).
	s1 := New(Config{ECODir: dir})
	ts1 := serveHTTP(t, s1)
	created, resp := postECO(t, ts1, &ecoRequest{Action: "create", Session: "r1", Bench: "fft_2", Scale: 0.004})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	a1, resp := postECO(t, ts1, &ecoRequest{Action: "apply", Session: "r1", Deltas: moves[:2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply 1: HTTP %d", resp.StatusCode)
	}
	a2, resp := postECO(t, ts1, &ecoRequest{Action: "apply", Session: "r1", Deltas: moves[2:3]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply 2: HTTP %d", resp.StatusCode)
	}

	// Second daemon over the same log dir: the session must come back.
	s2 := New(Config{ECODir: dir})
	ts2 := serveHTTP(t, s2)
	if n := s2.eco.count(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	sess, err := s2.eco.get("r1")
	if err != nil {
		t.Fatalf("recovered session: %v", err)
	}
	if sess.Resumed() != 2 || sess.Seq() != 2 {
		t.Fatalf("resumed=%d seq=%d, want 2/2", sess.Resumed(), sess.Seq())
	}
	if h := sess.PosHash(); h != a2.PosHash {
		t.Fatalf("recovered hash %s != pre-crash hash %s", h, a2.PosHash)
	}
	if sess.BaseHash() != created.PosHash {
		t.Fatalf("recovered base hash %s != created hash %s", sess.BaseHash(), created.PosHash)
	}

	// The resumed session keeps going: a third batch, then a passing commit.
	a3, resp := postECO(t, ts2, &ecoRequest{Action: "apply", Session: "r1", Deltas: moves[3:]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart apply: HTTP %d", resp.StatusCode)
	}
	if a3.Seq != 3 || a3.PosHash == a1.PosHash {
		t.Fatalf("post-restart apply response: %+v", a3)
	}
	committed, resp := postECO(t, ts2, &ecoRequest{Action: "commit", Session: "r1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: HTTP %d", resp.StatusCode)
	}
	if c := committed.Certificate; c == nil || !c.Pass || c.Batches != 3 {
		t.Fatalf("post-restart certificate: %+v", committed.Certificate)
	}

	// Close removes the log: a third daemon finds nothing to recover.
	if _, resp := postECO(t, ts2, &ecoRequest{Action: "close", Session: "r1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("close: HTTP %d", resp.StatusCode)
	}
	s3 := New(Config{ECODir: dir})
	serveHTTP(t, s3)
	if n := s3.eco.count(); n != 0 {
		t.Fatalf("closed session resurrected: %d sessions after restart", n)
	}
}

// TestECOMetricsSurface checks the eco series are pre-registered and move.
func TestECOMetricsSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{})
	if _, resp := postECO(t, ts.URL, &ecoRequest{Action: "create", Bench: "fft_2", Scale: 0.004}); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"mclgd_eco_sessions 1",
		`mclgd_eco_events_total{event="created"} 1`,
		`mclgd_eco_applies_total{class="ok"} 0`,
		`mclgd_stage_seconds_count{stage="eco_create"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
