package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"time"

	"mclg/internal/audit"
	"mclg/internal/eco"
	"mclg/internal/mclgerr"
	"mclg/internal/serve/report"
)

// ecoRequest is the wire form of POST /v1/eco. Action selects the session
// verb; create carries a design source exactly like /v1/legalize (bench or
// files), apply carries the delta batch, commit and close address an
// existing session.
type ecoRequest struct {
	Action  string `json:"action"`
	Session string `json:"session,omitempty"`

	// Tenant names the submitting tenant for admission rate limiting. ECO
	// traffic is always charged at the interactive tier (sessions exist for
	// latency-bound incremental work), so there is no priority field.
	Tenant string `json:"tenant,omitempty"`

	// Create: design source and solver/window knobs.
	Bench      string            `json:"bench,omitempty"`
	Scale      float64           `json:"scale,omitempty"`
	Files      map[string]string `json:"files,omitempty"`
	Options    *OptionsJSON      `json:"options,omitempty"`
	WindowRows int               `json:"window_rows,omitempty"`
	MarginRows int               `json:"margin_rows,omitempty"`

	// Apply: the delta batch.
	Deltas []eco.Delta `json:"deltas,omitempty"`

	// Commit: include the full per-cell placement in the response.
	IncludePlacement bool `json:"placement,omitempty"`
}

// ecoResponse is the wire result of every /v1/eco action.
type ecoResponse struct {
	Session string `json:"session"`
	Action  string `json:"action"`
	Seq     int    `json:"seq"`
	Cells   int    `json:"cells"`
	PosHash string `json:"pos_hash"`

	// Resumed (create) counts batches replayed from the durable log after a
	// daemon restart.
	Resumed int `json:"resumed,omitempty"`

	Apply *eco.ApplyResult `json:"apply,omitempty"`

	// Certificate (commit) is the sealed replay certificate: the session's
	// delta log, replayed from the base design, reproduces the committed
	// placement bit-identically.
	Certificate *audit.ReplayCertificate `json:"certificate,omitempty"`
	Stats       *eco.Stats               `json:"stats,omitempty"`
	Placement   *report.Placement        `json:"placement,omitempty"`
}

var ecoIDPattern = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// validate normalizes and rejects malformed eco requests.
func (r *ecoRequest) validate() error {
	switch r.Action {
	case "create":
		if r.Session != "" && !ecoIDPattern.MatchString(r.Session) {
			return mclgerr.Invalidf("serve: session id %q must match %s", r.Session, ecoIDPattern)
		}
		if r.WindowRows < 0 || r.MarginRows < 0 {
			return mclgerr.Invalidf("serve: window_rows and margin_rows must be non-negative")
		}
		if len(r.Deltas) > 0 {
			return mclgerr.Invalidf("serve: create does not take deltas; apply them after the session exists")
		}
		// Delegate design-source validation (bench/scale vs files) to the
		// /v1/legalize request rules.
		lr := r.legalizeView()
		return lr.validate()
	case "apply":
		if r.Session == "" {
			return mclgerr.Invalidf("serve: apply needs a session id")
		}
		if len(r.Deltas) == 0 {
			return mclgerr.Invalidf("serve: apply needs a non-empty deltas array")
		}
		return nil
	case "commit", "close":
		if r.Session == "" {
			return mclgerr.Invalidf("serve: %s needs a session id", r.Action)
		}
		if len(r.Deltas) > 0 {
			return mclgerr.Invalidf("serve: %s does not take deltas", r.Action)
		}
		return nil
	default:
		return mclgerr.Invalidf("serve: unknown eco action %q (want create|apply|commit|close)", r.Action)
	}
}

// legalizeView adapts the create fields onto the /v1/legalize Request so
// design-source validation and loading are shared, not duplicated.
func (r *ecoRequest) legalizeView() *Request {
	return &Request{Bench: r.Bench, Scale: r.Scale, Files: r.Files, Options: r.Options}
}

// ecoOptions resolves the session options from a create request.
func (r *ecoRequest) ecoOptions() eco.Options {
	return eco.Options{
		Core:       r.legalizeView().coreOptions(),
		WindowRows: r.WindowRows,
		MarginRows: r.MarginRows,
	}
}

// ecoRegistry owns the live sessions. Sessions bypass the job queue —
// applies are interactive, latency-bound, and already serialized per
// session — so the registry provides its own capacity gate.
type ecoRegistry struct {
	mu       sync.Mutex
	cap      int
	dir      string
	sessions map[string]*eco.Session
	seq      uint64
}

func newEcoRegistry(cap int, dir string) *ecoRegistry {
	if dir != "" {
		_ = os.MkdirAll(dir, 0o755)
	}
	return &ecoRegistry{cap: cap, dir: dir, sessions: map[string]*eco.Session{}}
}

func (r *ecoRegistry) get(id string) (*eco.Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return nil, mclgerr.Invalidf("serve: unknown eco session %q", id)
	}
	return s, nil
}

func (r *ecoRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// reserve claims a session slot and ID before the (slow) create runs, so
// two concurrent creates cannot race past the cap or onto the same ID.
func (r *ecoRegistry) reserve(id string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.sessions) >= r.cap {
		return "", mclgerr.Invalidf("serve: eco session capacity %d reached; close a session first", r.cap)
	}
	if id == "" {
		r.seq++
		id = fmt.Sprintf("s%d", r.seq)
	}
	if _, exists := r.sessions[id]; exists {
		return "", mclgerr.Invalidf("serve: eco session %q already exists", id)
	}
	r.sessions[id] = nil // placeholder holds the slot
	return id, nil
}

// install replaces the reservation with the live session (or releases it on
// failed create).
func (r *ecoRegistry) install(id string, s *eco.Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s == nil {
		delete(r.sessions, id)
		return
	}
	r.sessions[id] = s
}

func (r *ecoRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, id)
}

// logPath returns the durable log path for a session, or "" when the
// registry is memory-only.
func (r *ecoRegistry) logPath(id string) string {
	if r.dir == "" {
		return ""
	}
	return filepath.Join(r.dir, id+".ecolog")
}

// recoverSessions scans the log directory and resumes every durable session
// left by a previous process: the log header's meta payload is the original
// create request, so the base design is rebuilt from it and the logged
// batches replay on top. An unreadable or unreplayable log is skipped (and
// logged), never fatal — the daemon must come up.
func (s *Server) recoverSessions() {
	dir := s.eco.dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.log.Warn("eco recover: cannot read log dir", "dir", dir, "err", err)
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ecolog") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		id := strings.TrimSuffix(e.Name(), ".ecolog")
		_, meta, err := eco.ReadLogMeta(path)
		if err != nil {
			s.log.Warn("eco recover: unreadable log header", "path", path, "err", err)
			continue
		}
		var req ecoRequest
		if err := json.Unmarshal(meta, &req); err != nil || req.validate() != nil {
			s.log.Warn("eco recover: log meta is not a valid create request", "path", path)
			continue
		}
		if _, err := s.eco.reserve(id); err != nil {
			s.log.Warn("eco recover: cannot reserve slot", "id", id, "err", err)
			continue
		}
		sess, err := s.createSession(s.baseCtx, id, &req)
		if err != nil {
			s.eco.install(id, nil)
			s.log.Warn("eco recover: replay failed", "id", id, "err", err)
			continue
		}
		s.eco.install(id, sess)
		s.stats.ecoSessions.add(1)
		s.stats.ecoEvent("resumed", 1)
		s.log.Info("eco session recovered", "id", id, "seq", sess.Seq(), "resumed", sess.Resumed())
	}
}

// createSession builds an eco session from a validated create request. When
// the registry is durable the original request is stored as the log's meta
// payload, closing the recovery loop.
func (s *Server) createSession(ctx context.Context, id string, req *ecoRequest) (*eco.Session, error) {
	d, err := req.legalizeView().loadDesign()
	if err != nil {
		return nil, mclgerr.Invalid(err)
	}
	opts := req.ecoOptions()
	if p := s.eco.logPath(id); p != "" {
		meta := *req
		meta.Session = id
		raw, err := json.Marshal(&meta)
		if err != nil {
			return nil, err
		}
		opts.LogPath = p
		opts.LogMeta = raw
	}
	return eco.Create(ctx, id, d, opts)
}

func (s *Server) handleECO(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.refuse(w, http.StatusServiceUnavailable, "draining", "server is draining; durable sessions resume on restart")
		s.stats.rejectedDraining.inc()
		return
	}
	var req ecoRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.refuse(w, http.StatusBadRequest, "invalid_input", "malformed request body: "+err.Error())
		return
	}
	if err := req.validate(); err != nil {
		s.refuse(w, http.StatusBadRequest, "invalid_input", err.Error())
		return
	}

	// Create and apply do real solver work, so they pass the tenant gate at
	// the interactive tier; commit/close only read or release state.
	if s.cfg.Gate != nil && (req.Action == "create" || req.Action == "apply") {
		if ok, after := s.cfg.Gate.Admit(req.Tenant, "interactive"); !ok {
			s.stats.rejectedLimited.inc()
			s.fail(w, &rateLimitedError{tenant: req.Tenant, after: after})
			return
		}
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, s.jobTimeout(&Request{}))
	defer cancel()

	switch req.Action {
	case "create":
		s.ecoCreate(ctx, w, &req)
	case "apply":
		s.ecoApply(ctx, w, &req)
	case "commit":
		s.ecoCommit(ctx, w, &req)
	case "close":
		s.ecoClose(w, &req)
	}
}

func (s *Server) ecoCreate(ctx context.Context, w http.ResponseWriter, req *ecoRequest) {
	id, err := s.eco.reserve(req.Session)
	if err != nil {
		s.fail(w, err)
		return
	}
	t0 := time.Now()
	sess, err := s.createSession(ctx, id, req)
	if err != nil {
		s.eco.install(id, nil)
		s.fail(w, err)
		return
	}
	s.eco.install(id, sess)
	s.stats.ecoSessions.add(1)
	s.stats.ecoEvent("created", 1)
	s.stats.observeStage("eco_create", time.Since(t0).Seconds())
	s.log.Info("eco session created", "id", id, "cells", sess.Statistics().Cells,
		"resumed", sess.Resumed(), "durable", s.eco.dir != "")
	s.ecoRespond(w, req.Action, sess, &ecoResponse{Resumed: sess.Resumed()})
}

func (s *Server) ecoApply(ctx context.Context, w http.ResponseWriter, req *ecoRequest) {
	sess, err := s.eco.get(req.Session)
	if err != nil {
		s.fail(w, err)
		return
	}
	t0 := time.Now()
	res, err := sess.Apply(ctx, req.Deltas)
	s.stats.observeStage("eco_apply", time.Since(t0).Seconds())
	s.stats.ecoApplyDone(mclgerr.Class(err))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.stats.ecoEvent("deltas", len(req.Deltas))
	s.log.Info("eco batch applied", "id", req.Session, "seq", res.Seq,
		"deltas", res.Deltas, "bands", res.Bands, "runs", res.Runs, "repaired", res.Repaired,
		"ms", float64(time.Since(t0))/float64(time.Millisecond))
	s.ecoRespond(w, req.Action, sess, &ecoResponse{Apply: res})
}

func (s *Server) ecoCommit(ctx context.Context, w http.ResponseWriter, req *ecoRequest) {
	sess, err := s.eco.get(req.Session)
	if err != nil {
		s.fail(w, err)
		return
	}
	t0 := time.Now()
	cert, err := sess.Certify(ctx)
	s.stats.observeStage("eco_commit", time.Since(t0).Seconds())
	if err != nil {
		s.fail(w, err)
		return
	}
	if cert.Pass {
		s.stats.ecoEvent("committed", 1)
	} else {
		s.stats.ecoEvent("commit_failed", 1)
	}
	st := sess.Statistics()
	resp := &ecoResponse{Certificate: cert, Stats: &st}
	if req.IncludePlacement {
		rep := &report.Report{}
		rep.CapturePlacement(sess.Design())
		resp.Placement = rep.Placement
	}
	s.ecoRespond(w, req.Action, sess, resp)
}

func (s *Server) ecoClose(w http.ResponseWriter, req *ecoRequest) {
	sess, err := s.eco.get(req.Session)
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := sess.Close(); err != nil {
		s.fail(w, err)
		return
	}
	s.eco.remove(req.Session)
	s.stats.ecoSessions.add(-1)
	s.stats.ecoEvent("closed", 1)
	s.log.Info("eco session closed", "id", req.Session)
	s.ecoRespond(w, req.Action, sess, &ecoResponse{})
}

// ecoRespond fills the common session fields and writes the response.
func (s *Server) ecoRespond(w http.ResponseWriter, action string, sess *eco.Session, resp *ecoResponse) {
	st := sess.Statistics()
	resp.Session = sess.ID()
	resp.Action = action
	resp.Seq = st.Seq
	resp.Cells = st.Cells
	resp.PosHash = st.PosHash
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
