package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"mclg/internal/faults"
	"mclg/internal/gen"
	"mclg/internal/serve/report"
	"mclg/internal/window"
)

// TestRetryAfterJitterBounds pins the 429 backpressure hint: always within
// [retryAfterMin, retryAfterMax] whole seconds, and actually jittered — a
// fixed hint would synchronize every refused client onto one retry instant.
func TestRetryAfterJitterBounds(t *testing.T) {
	distinct := map[string]bool{}
	for i := 0; i < 300; i++ {
		v := retryAfterHint()
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", v, err)
		}
		if n < retryAfterMin || n > retryAfterMax {
			t.Fatalf("Retry-After %d out of [%d, %d]", n, retryAfterMin, retryAfterMax)
		}
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Errorf("300 hints yielded %d distinct value(s); the hint is not jittered", len(distinct))
	}
}

// TestWindowedJob runs a windowed solve through the full HTTP surface: the
// response carries the supervision trace, the result caches, and the window
// counters reach /metrics.
func TestWindowedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{})
	req := &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: 4}

	var first report.Report
	if resp := post(t, ts.URL, req, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !first.Legal || first.PosHash == "" {
		t.Fatalf("windowed job: %+v", first)
	}
	ws := first.Windows
	if ws == nil {
		t.Fatal("windowed response carries no window stats")
	}
	if ws.Total < 2 || ws.Solved+ws.Resumed != ws.Total {
		t.Fatalf("window stats %+v: want multiple windows, all accounted for", ws)
	}

	var second report.Report
	post(t, ts.URL, req, &second)
	if second.Cache != "hit" || second.PosHash != first.PosHash || second.Windows == nil {
		t.Errorf("cached windowed response: cache=%q hash=%s windows=%v",
			second.Cache, second.PosHash, second.Windows)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if !strings.Contains(body, `mclgd_windows_total{event="solved"} `+strconv.Itoa(ws.Solved)) {
		t.Errorf("/metrics missing solved window counter (stats %+v):\n%s", ws, body)
	}
	if !strings.Contains(body, `mclgd_windows_total{event="degraded"} 0`) {
		t.Error("/metrics missing pre-registered degraded counter")
	}
}

// TestWindowsAllConfig: a daemon running with WindowsAll windows eligible
// jobs without the request asking and leaves baseline methods alone.
func TestWindowsAllConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{WindowsAll: true, WindowRows: 4})

	var rep report.Report
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004}, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if rep.Windows == nil || rep.Windows.Total < 2 {
		t.Fatalf("WindowsAll did not window an eligible job: %+v", rep.Windows)
	}

	var base report.Report
	if resp := post(t, ts.URL, &Request{Bench: "fft_2", Scale: 0.004, Method: "dac16"}, &base); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline under WindowsAll: HTTP %d", resp.StatusCode)
	}
	if base.Windows != nil {
		t.Error("WindowsAll windowed a baseline method")
	}
}

// TestWindowedRequestValidation covers the windowed-mode request rules.
func TestWindowedRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"windows resilient":        `{"bench":"fft_2","windows":true,"resilient":true}`,
		"windows audit":            `{"bench":"fft_2","windows":true,"audit":true}`,
		"windows baseline":         `{"bench":"fft_2","windows":true,"method":"dac16"}`,
		"window_rows sans windows": `{"bench":"fft_2","window_rows":4}`,
		"hedge sans windows":       `{"bench":"fft_2","hedge":0.5}`,
		"negative window_rows":     `{"bench":"fft_2","windows":true,"window_rows":-1}`,
		"hedge out of range":       `{"bench":"fft_2","windows":true,"hedge":1.5}`,
		"exact sans windows":       `{"bench":"fft_2","exact":2}`,
		"negative exact":           `{"bench":"fft_2","windows":true,"exact":-1}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/legalize", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("HTTP %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestWindowedCacheKey pins the windowed content-addressing rules: windows
// and window_rows change the result, so they change the key; hedge is pure
// scheduling and must not.
func TestWindowedCacheKey(t *testing.T) {
	plain := &Request{Bench: "fft_2", Scale: 0.004}
	windowed := &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: 4}
	rows8 := &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: 8}
	hedged := &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: 4, Hedge: 0.5}
	exact := &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: 4, Exact: 2}
	for _, r := range []*Request{plain, windowed, rows8, hedged, exact} {
		if err := r.validate(); err != nil {
			t.Fatal(err)
		}
	}
	if plain.key() == windowed.key() {
		t.Error("windows must change the cache key")
	}
	if windowed.key() == rows8.key() {
		t.Error("window_rows must change the cache key")
	}
	if windowed.key() != hedged.key() {
		t.Error("hedge must not change the cache key (result-neutral)")
	}
	if windowed.key() == exact.key() {
		t.Error("exact must change the cache key (verified improvements commit)")
	}
}

// TestExactWindowedJob drives the exact refinement post-pass through the full
// HTTP surface: the response's window stats carry the per-window gap trace
// and the mclgd_exact_* series reach /metrics.
func TestExactWindowedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a benchmark")
	}
	_, ts := newTestServer(t, Config{})
	req := &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: 4, Exact: 2}

	var rep report.Report
	if resp := post(t, ts.URL, req, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !rep.Legal {
		t.Fatal("exact-refined placement not legal")
	}
	if rep.Windows == nil || rep.Windows.Exact == nil {
		t.Fatalf("response carries no exact stats: %+v", rep.Windows)
	}
	ex := rep.Windows.Exact
	if ex.Selected == 0 || ex.Selected > 2 {
		t.Errorf("selected %d windows, want 1..2", ex.Selected)
	}
	if len(ex.Gaps) != ex.Selected-ex.Skipped {
		t.Errorf("%d gap entries for %d finished windows", len(ex.Gaps), ex.Selected-ex.Skipped)
	}
	for _, g := range ex.Gaps {
		if g.Gap < 0 || g.Gap > 1 {
			t.Errorf("window %d gap %g outside [0, 1]", g.Window, g.Gap)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if !strings.Contains(body, `mclgd_exact_total{event="selected"} `+strconv.Itoa(ex.Selected)) {
		t.Errorf("/metrics missing exact selected counter (stats %+v)", ex)
	}
	if !strings.Contains(body, `mclgd_exact_total{event="proven"} `+strconv.Itoa(ex.Proven)) {
		t.Errorf("/metrics missing exact proven counter (stats %+v)", ex)
	}
	if !strings.Contains(body, "mclgd_exact_max_gap ") {
		t.Error("/metrics missing mclgd_exact_max_gap gauge")
	}
}

// stallSeed finds a seed under which exactly one of the job's windows stalls
// persistently, so one worker wedges on it while the other commits the rest.
func stallSeed(t *testing.T, windows int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10000; seed++ {
		c := &faults.WindowChaos{Seed: seed, StallFrac: 0.15, MaxAttempt: 1 << 30}
		n := 0
		for w := 0; w < windows; w++ {
			if c.Fault(w, 0) == faults.FaultStall {
				n++
			}
		}
		if n == 1 {
			return seed
		}
	}
	t.Fatal("no seed stalls exactly one window")
	return 0
}

// TestDrainUnderChaosJournalResume is the crash-recovery acceptance test,
// driven through the daemon lifecycle: a windowed job runs under active
// fault injection (one window stalled persistently), the server is drained
// on a short deadline — the SIGTERM path — mid-job, and the write-ahead
// journal must hold only checker-verified window commits. A restarted
// daemon pointed at the same journal directory then resumes the job,
// re-solving only the incomplete windows (verified by the window counters)
// and landing on the placement the fault-free windowed run produces.
func TestDrainUnderChaosJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("solves benchmarks across daemon restarts")
	}
	const windowRows = 2
	req := func() *Request {
		return &Request{Bench: "fft_2", Scale: 0.004, Windows: true, WindowRows: windowRows,
			Options: &OptionsJSON{Workers: 2}}
	}

	// Fault-free reference run on a throwaway server.
	var want report.Report
	_, tsRef := newTestServer(t, Config{})
	if resp := post(t, tsRef.URL, req(), &want); resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: HTTP %d", resp.StatusCode)
	}

	e, err := gen.FindEntry("fft_2")
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Generate(gen.SuiteSpec(e, 0.004))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := window.Partition(d, windowRows, window.DefaultContextRows)
	if err != nil {
		t.Fatal(err)
	}
	windows := len(plan.Bands)
	if windows < 3 {
		t.Fatalf("need several windows, got %d", windows)
	}

	journalDir := t.TempDir()
	chaos := &faults.WindowChaos{Seed: stallSeed(t, windows), StallFrac: 0.15, MaxAttempt: 1 << 30}
	s1 := New(Config{Workers: 1, JournalDir: journalDir, Chaos: chaos})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	vreq := req()
	if err := vreq.validate(); err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(journalDir, vreq.key()+".wal")

	done := make(chan int, 1)
	go func() {
		var eb errorBody
		resp := post(t, ts1.URL, req(), &eb)
		done <- resp.StatusCode
	}()

	// Wait until the healthy windows have committed (header + records); the
	// stalled window keeps its worker wedged in the chaos injection.
	waitFor(t, "journal to fill with verified commits", func() bool {
		raw, err := os.ReadFile(journalPath)
		return err == nil && strings.Count(string(raw), "\n") >= windows-1
	})

	// SIGTERM path: drain with a grace period the stalled window cannot
	// meet, so the job is canceled through its context mid-injection.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s1.Drain(ctx); err == nil {
		t.Error("drain under a persistent stall should hit the grace deadline")
	}
	if status := <-done; status != http.StatusGatewayTimeout {
		t.Fatalf("chaos-stalled job: HTTP %d, want 504 (canceled, nothing committed)", status)
	}

	// The journal survived the drain and holds only verified-legal window
	// results — replaying it must succeed and resume all committed windows.
	sig := window.Sig(d, windowRows, window.DefaultContextRows, vreq.coreOptions())
	fj, err := window.OpenFileJournal(journalPath, sig, windows)
	if err != nil {
		t.Fatalf("journal unreadable after drain: %v", err)
	}
	resumed := fj.Resumed()
	fj.Close()
	if resumed < 1 || resumed >= windows {
		t.Fatalf("journal holds %d of %d windows; want the healthy ones only", resumed, windows)
	}

	// Daemon restart: same journal directory, chaos gone (the fault was
	// transient infrastructure trouble). The job resumes from the journal.
	s2 := New(Config{Workers: 1, JournalDir: journalDir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Drain(ctx)
	})

	var rep report.Report
	if resp := post(t, ts2.URL, req(), &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed job: HTTP %d", resp.StatusCode)
	}
	ws := rep.Windows
	if ws == nil {
		t.Fatal("resumed response carries no window stats")
	}
	if ws.Resumed != resumed {
		t.Errorf("resumed %d windows, want %d (stats %+v)", ws.Resumed, resumed, ws)
	}
	if ws.Solved != windows-resumed {
		t.Errorf("re-solved %d windows, want only the %d incomplete ones (stats %+v)",
			ws.Solved, windows-resumed, ws)
	}
	if !rep.Legal {
		t.Error("resumed placement not legal")
	}
	if rep.PosHash != want.PosHash {
		t.Errorf("resumed hash %s != fault-free hash %s", rep.PosHash, want.PosHash)
	}
	// The job committed, so its journal is gone.
	if _, err := os.Stat(journalPath); !os.IsNotExist(err) {
		t.Errorf("journal not removed after successful commit: %v", err)
	}
}
