package serve

import (
	"container/list"
	"sync"

	"mclg/internal/core"
)

// warmEntry pairs a topology key with its solver state in the LRU.
type warmEntry struct {
	key   string
	state *core.WarmState
}

// warmStore keys core.WarmState by topology fingerprint, so a re-submit of a
// perturbed design — same netlist, same row structure, moved cells — lands on
// the WarmState primed by the previous solve and is seeded from its solution.
// It sits beside the exact-match result cache: the result cache answers
// bit-identical requests without solving at all, the warm store accelerates
// the near-matches that do have to solve. Eviction is LRU on the topology
// key; an evicted state is simply garbage-collected (it holds no external
// resources).
//
// Each WarmState serializes the solves that share it (see core.WarmState), so
// two concurrent jobs on the same topology run one after the other through
// the warm path; jobs on different topologies are unaffected.
type warmStore struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *warmEntry
	entries map[string]*list.Element

	hits, misses, evictions counter // hit = a solve that was warm-seeded
	iterSaved               counter // cold-baseline iterations minus warm iterations
}

// newWarmStore builds a store holding up to cap warm states; cap <= 0
// disables warm starting entirely (get returns nil).
func newWarmStore(cap int) *warmStore {
	return &warmStore{
		cap:     cap,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the warm state for the topology key, creating (and LRU-bumping)
// it as needed. A nil return means warm starting is disabled.
func (w *warmStore) get(key string) *core.WarmState {
	if w == nil || w.cap <= 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if el, ok := w.entries[key]; ok {
		w.ll.MoveToFront(el)
		return el.Value.(*warmEntry).state
	}
	st := core.NewWarmState()
	w.entries[key] = w.ll.PushFront(&warmEntry{key: key, state: st})
	for w.ll.Len() > w.cap {
		last := w.ll.Back()
		w.ll.Remove(last)
		delete(w.entries, last.Value.(*warmEntry).key)
		w.evictions.inc()
	}
	return st
}

// stats returns the resident state count alongside lifetime counters.
func (w *warmStore) stats() (entries int, hits, misses, evictions, iterSaved uint64) {
	if w == nil {
		return 0, 0, 0, 0, 0
	}
	w.mu.Lock()
	entries = w.ll.Len()
	w.mu.Unlock()
	return entries, w.hits.get(), w.misses.get(), w.evictions.get(), w.iterSaved.get()
}
