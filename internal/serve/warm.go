package serve

import (
	"mclg/internal/core"
)

// warmStore keys core.WarmState by topology fingerprint, so a re-submit of a
// perturbed design — same netlist, same row structure, moved cells — lands on
// the WarmState primed by the previous solve and is seeded from its solution.
// It sits beside the exact-match result cache: the result cache answers
// bit-identical requests without solving at all, the warm store accelerates
// the near-matches that do have to solve. Storage and LRU eviction live in
// core.WarmPool (shared with the ECO session engine, which pools states per
// dirty-window row range); this wrapper layers the serving metrics on top.
//
// Each WarmState serializes the solves that share it (see core.WarmState), so
// two concurrent jobs on the same topology run one after the other through
// the warm path; jobs on different topologies are unaffected.
type warmStore struct {
	pool *core.WarmPool

	hits, misses counter // hit = a solve that was warm-seeded
	iterSaved    counter // cold-baseline iterations minus warm iterations
}

// newWarmStore builds a store holding up to cap warm states; cap <= 0
// disables warm starting entirely (get returns nil).
func newWarmStore(cap int) *warmStore {
	return &warmStore{pool: core.NewWarmPool(cap)}
}

// get returns the warm state for the topology key, creating (and LRU-bumping)
// it as needed. A nil return means warm starting is disabled.
func (w *warmStore) get(key string) *core.WarmState {
	if w == nil {
		return nil
	}
	return w.pool.Get(key)
}

// stats returns the resident state count alongside lifetime counters.
func (w *warmStore) stats() (entries int, hits, misses, evictions, iterSaved uint64) {
	if w == nil {
		return 0, 0, 0, 0, 0
	}
	return w.pool.Len(), w.hits.get(), w.misses.get(), w.pool.Evictions(), w.iterSaved.get()
}
