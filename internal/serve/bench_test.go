package serve

import (
	"fmt"
	"testing"
)

// BenchmarkRequestKey measures content-address derivation — the per-request
// overhead every submission pays before the cache lookup.
func BenchmarkRequestKey(b *testing.B) {
	req := &Request{Bench: "fft_2", Scale: 0.004,
		Options: &OptionsJSON{Lambda: 1000, Eps: 1e-4}}
	if err := req.validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = req.key()
	}
}

// BenchmarkCacheLookupHit measures the hot serving path: a resident key
// looked up under the cache mutex.
func BenchmarkCacheLookupHit(b *testing.B) {
	c := newResultCache(128)
	for i := 0; i < 128; i++ {
		k := fmt.Sprintf("k%d", i)
		f, _, _ := c.join(k)
		c.complete(k, f, rep(k))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.lookup("k64"); !ok {
			b.Fatal("lookup missed")
		}
	}
}
