package serve

import (
	"os"
	"path/filepath"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/serve/report"
	"mclg/internal/window"
)

// solveWindowed runs a windowed job through the fault-isolated supervisor.
// When the server has a journal directory, verified window results are
// fsync'd to <JournalDir>/<job-key>.wal as they commit, so a daemon killed
// mid-job replays the completed windows on restart instead of re-solving
// them. The journal is removed once the job commits; on failure it is kept
// for the retry.
func (s *Server) solveWindowed(j *job, d *design.Design) (*report.Report, error) {
	t0 := time.Now()
	base := j.req.coreOptions()
	opts := window.Options{
		Cascade:       core.ResilientOptions{Base: base},
		WindowRows:    j.req.WindowRows,
		HedgeQuantile: j.req.Hedge,
		ExactWindows:  j.req.Exact,
		Chaos:         s.cfg.Chaos,
	}
	if opts.WindowRows == 0 {
		opts.WindowRows = s.cfg.WindowRows // direct (non-HTTP) submissions
	}

	var journal *window.FileJournal
	if s.cfg.JournalDir != "" {
		// The journal is content-addressed twice over: the file name is the
		// job's cache key, and the header signature covers the design
		// geometry plus every result-affecting option, so a stale or
		// mismatched journal resets instead of replaying.
		if plan, perr := window.Partition(d, opts.WindowRows, window.DefaultContextRows); perr == nil {
			sig := window.Sig(d, opts.WindowRows, window.DefaultContextRows, base)
			path := filepath.Join(s.cfg.JournalDir, j.key+".wal")
			if err := os.MkdirAll(s.cfg.JournalDir, 0o755); err != nil {
				s.log.Warn("window journal disabled", "err", err)
			} else if fj, err := window.OpenFileJournal(path, sig, len(plan.Bands)); err != nil {
				s.log.Warn("window journal disabled", "path", path, "err", err)
			} else {
				journal = fj
				opts.Journal = fj
			}
		}
	}

	// A configured dispatcher (cluster coordinator role) ships window solves
	// to remote workers; the supervisor, journal, and stitch semantics are
	// identical either way, so the placement is too.
	var st *window.Stats
	var err error
	if s.cfg.Dispatcher != nil {
		st, err = s.cfg.Dispatcher.DispatchWindows(j.ctx, d, opts)
	} else {
		st, err = window.Legalize(j.ctx, d, opts)
	}
	if journal != nil {
		if err == nil {
			_ = journal.Remove()
		} else {
			_ = journal.Close() // keep the file: a resubmit resumes from it
		}
	}
	if err != nil {
		return nil, err
	}

	s.stats.windowDone(st)
	rep := report.FromDesign(d, j.req.Method, time.Since(t0))
	rep.Windows = report.WindowsFromStats(st)
	rep.CapturePlacement(d)
	return rep, nil
}
